"""Smoke tests: every example script must run to completion.

Examples are documentation that executes; these tests keep them honest.
The Groth16-heavy ones are marked slow.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list | None = None):
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "MATCH" in out
    assert "MISMATCH" not in out


def test_kernel_tuning(capsys):
    run_example("kernel_tuning.py")
    out = capsys.readouterr().out
    assert "exhaustive search -> 7" in out  # PACC optimal
    assert "matches the reference: True" in out


def test_multi_gpu_scaling(capsys):
    run_example("multi_gpu_scaling.py")
    out = capsys.readouterr().out
    assert "optimal s = 20" in out
    assert "bucket-split" in out


def test_baseline_comparison(capsys):
    run_example("baseline_comparison.py", ["BN254", "24"])
    out = capsys.readouterr().out
    assert "Sppark" in out
    assert "BG =" in out


@pytest.mark.slow
def test_zksnark_proof(capsys):
    run_example("zksnark_proof.py")
    out = capsys.readouterr().out
    assert "-> True" in out
    assert "forged public input rejected" in out


@pytest.mark.slow
def test_zk_merkle_membership(capsys):
    run_example("zk_merkle_membership.py")
    out = capsys.readouterr().out
    assert "a forged root is rejected: True" in out
