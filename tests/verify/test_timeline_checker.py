"""The timeline checker: valid schedules pass, each broken invariant bites."""

import pytest

from repro.engine.resources import GPU_COMPUTE, HOST_CPU, Resource
from repro.engine.timeline import Task, TaskSpan, Timeline, simulate
from repro.verify.fixtures import broken_timeline_check
from repro.verify.timelinecheck import verify_timeline

GPU = Resource("gpu0", GPU_COMPUTE, 0)
CPU = Resource("cpu", HOST_CPU)


def _valid_timeline() -> Timeline:
    return simulate([
        Task("a", GPU, 3.0),
        Task("b", GPU, 2.0),
        Task("c", CPU, 1.0, deps=("a", "b")),
    ])


class TestValidSchedules:
    def test_simulated_timeline_passes(self):
        checked = verify_timeline(_valid_timeline(), subject="valid")
        assert checked.ok, [str(v) for v in checked.violations]
        assert checked.tasks == 3
        assert checked.resources == 2

    def test_empty_timeline_passes(self):
        assert verify_timeline(simulate([]), subject="empty").ok


def _tamper(timeline: Timeline, **replacements) -> Timeline:
    spans = dict(timeline.spans)
    spans.update(replacements)
    return Timeline(
        tasks=timeline.tasks,
        spans=spans,
        total_ms=timeline.total_ms,
        stages=timeline.stages,
        binding=timeline.binding,
    )


class TestBrokenInvariants:
    def test_resource_overlap_detected(self):
        t = _tamper(
            _valid_timeline(), b=TaskSpan("b", GPU, 2.0, 4.0)
        )
        checked = verify_timeline(t, subject="overlap")
        assert any("overlap" in str(v) for v in checked.violations)
        assert any(v.address == "resource:gpu0" for v in checked.violations)

    def test_start_before_dependency_detected(self):
        t = _tamper(
            _valid_timeline(), c=TaskSpan("c", CPU, 1.0, 2.0)
        )
        checked = verify_timeline(t, subject="early start")
        assert any("before dependency" in str(v) for v in checked.violations)

    def test_duration_mismatch_detected(self):
        t = _tamper(
            _valid_timeline(), a=TaskSpan("a", GPU, 0.0, 1.0)
        )
        checked = verify_timeline(t, subject="short span")
        assert any("duration" in str(v) for v in checked.violations)

    def test_missing_span_detected(self):
        base = _valid_timeline()
        spans = {k: v for k, v in base.spans.items() if k != "c"}
        t = Timeline(base.tasks, spans, base.total_ms)
        checked = verify_timeline(t, subject="missing span")
        assert any("never scheduled" in str(v) for v in checked.violations)

    def test_wrong_makespan_detected(self):
        base = _valid_timeline()
        t = Timeline(base.tasks, dict(base.spans), base.total_ms + 1.0)
        checked = verify_timeline(t, subject="stale makespan")
        assert any("makespan" in str(v) for v in checked.violations)

    def test_negative_start_detected(self):
        t = _tamper(
            _valid_timeline(), a=TaskSpan("a", GPU, -3.0, 0.0)
        )
        checked = verify_timeline(t, subject="negative start")
        assert any("before t=0" in str(v) for v in checked.violations)


class TestFixture:
    def test_fixture_reports_all_three_faults(self):
        checked = broken_timeline_check()
        assert not checked.ok
        messages = [str(v) for v in checked.violations]
        assert any("overlap" in m for m in messages)
        assert any("before dependency" in m for m in messages)
        assert any("makespan" in m for m in messages)

    def test_fixture_violations_name_the_cpu(self):
        checked = broken_timeline_check()
        assert any(
            v.address == "resource:cpu" for v in checked.violations
        )
