"""The integrity auditor: conservation of verified mass, end to end."""

from dataclasses import replace

import pytest

from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm
from repro.curves.sampling import msm_instance
from repro.engine.faults import ByzantineWorker, FaultPlan, GpuFailure
from repro.faults.byzantine import (
    VERDICT_ACCEPTED,
    VERDICT_LOST,
    VERDICT_REJECTED,
)
from repro.gpu.cluster import MultiGpuSystem
from repro.verify.fixtures import run_fixture
from repro.verify.integritycheck import verify_msm_integrity

from tests.conftest import TOY_CURVE
from tests.verify.test_cli import run_cli

FAST = dict(window_size=4, threads_per_block=32, points_per_thread=4)


@pytest.fixture(scope="module")
def cheated():
    scalars, points = msm_instance(TOY_CURVE, 32, seed=41)
    engine = DistMsm(MultiGpuSystem(4), DistMsmConfig(**FAST))
    return engine.execute(
        scalars, points, TOY_CURVE,
        faults=FaultPlan.of(ByzantineWorker(1, mode="wrong-result", seed=5)),
    )


def _tamper(result, **report_overrides):
    return replace(
        result, byzantine_report=replace(result.byzantine_report, **report_overrides)
    )


class TestCleanTrails:
    def test_real_cheater_run_passes(self, cheated):
        checked = verify_msm_integrity(cheated, subject="cheater run")
        assert checked.ok, [str(v) for v in checked.violations]
        assert checked.rejected >= 1 and checked.quarantined >= 1
        assert checked.consumed > 0

    def test_death_plus_cheater_passes(self):
        scalars, points = msm_instance(TOY_CURVE, 32, seed=41)
        engine = DistMsm(MultiGpuSystem(4), DistMsmConfig(**FAST))
        result = engine.execute(
            scalars, points, TOY_CURVE,
            faults=FaultPlan.of(GpuFailure(0.0, 2), ByzantineWorker(0, seed=9)),
        )
        checked = verify_msm_integrity(result)
        assert checked.ok, [str(v) for v in checked.violations]

    def test_unverified_run_with_honest_report_passes(self):
        scalars, points = msm_instance(TOY_CURVE, 32, seed=41)
        engine = DistMsm(
            MultiGpuSystem(4), DistMsmConfig(**FAST, verify_chunks=False)
        )
        result = engine.execute(
            scalars, points, TOY_CURVE,
            faults=FaultPlan.of(ByzantineWorker(1, seed=5)),
        )
        assert not result.byzantine_report.verified
        checked = verify_msm_integrity(result)
        assert checked.ok, [str(v) for v in checked.violations]


class TestTamperedTrails:
    def test_missing_report_fails(self):
        scalars, points = msm_instance(TOY_CURVE, 32, seed=41)
        engine = DistMsm(MultiGpuSystem(4), DistMsmConfig(**FAST))
        plain = engine.execute(scalars, points, TOY_CURVE)
        checked = verify_msm_integrity(plain)
        assert not checked.ok
        assert "no ByzantineReport" in checked.violations[0].message

    def test_laundered_verdict_fails(self, cheated):
        report = cheated.byzantine_report
        forged = next(c for c in report.chunks if c.verdict == VERDICT_REJECTED)
        doctored = _tamper(
            cheated,
            chunks=tuple(
                replace(c, verdict=VERDICT_ACCEPTED) if c is forged else c
                for c in report.chunks
            ),
            rejected=report.rejected - 1,
        )
        checked = verify_msm_integrity(doctored)
        assert not checked.ok
        assert any("soundness" in str(v) for v in checked.violations)

    def test_consuming_a_rejected_chunk_fails(self, cheated):
        report = cheated.byzantine_report
        forged = next(c for c in report.chunks if c.verdict == VERDICT_REJECTED)
        slot = forged.slots[0]
        doctored = _tamper(
            cheated,
            consumed=tuple(
                (s, forged.round, forged.gpu) if s == slot else (s, r, g)
                for s, r, g in report.consumed
            ),
        )
        checked = verify_msm_integrity(doctored)
        assert not checked.ok
        assert any("rejected" in str(v) for v in checked.violations)

    def test_missing_slot_fails(self, cheated):
        doctored = _tamper(cheated, consumed=cheated.byzantine_report.consumed[1:])
        checked = verify_msm_integrity(doctored)
        assert not checked.ok
        assert any("never consumed" in str(v) for v in checked.violations)

    def test_double_counted_slot_fails(self, cheated):
        consumed = cheated.byzantine_report.consumed
        doctored = _tamper(cheated, consumed=consumed + (consumed[0],))
        checked = verify_msm_integrity(doctored)
        assert not checked.ok
        assert any("twice" in str(v) for v in checked.violations)

    def test_forgotten_quarantine_fails(self, cheated):
        doctored = _tamper(cheated, quarantined=())
        checked = verify_msm_integrity(doctored)
        assert not checked.ok
        assert any("never quarantined" in str(v) for v in checked.violations)

    def test_dishonest_rejected_counter_fails(self, cheated):
        doctored = _tamper(cheated, rejected=0)
        checked = verify_msm_integrity(doctored)
        assert not checked.ok
        assert any("claims 0 rejected" in str(v) for v in checked.violations)

    def test_lost_chunk_with_accept_verdict_fails(self, cheated):
        report = cheated.byzantine_report
        victim = report.chunks[0]
        doctored = _tamper(
            cheated,
            chunks=(
                replace(victim, delivered=False),
                *report.chunks[1:],
            ),
        )
        checked = verify_msm_integrity(doctored)
        assert not checked.ok
        assert any(VERDICT_LOST in str(v) for v in checked.violations)


class TestFixtureAndCli:
    def test_forged_result_fixture_is_caught(self):
        report = run_fixture("forged-result")
        assert not report.ok
        assert any(v.checker == "integrity" for v in report.violations)

    def test_cli_inject_fault_exits_nonzero(self):
        proc = run_cli("--inject-fault", "forged-result")
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "FAIL" in proc.stdout
        assert "integrity" in proc.stdout
