"""``python -m repro.verify`` — exit codes and diagnostics, end to end."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]


def run_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.verify", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
        timeout=300,
    )


class TestCleanPass:
    def test_exit_zero_on_all_registered_configs(self):
        proc = run_cli()
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "PASS" in proc.stdout
        assert "0 violations" in proc.stdout

    def test_verbose_lists_checks(self):
        proc = run_cli("-v")
        assert proc.returncode == 0
        # the kernel schedules, spill plans, and scatter checks all appear
        assert "PADD" in proc.stdout
        assert "spill@" in proc.stdout
        assert "scatter" in proc.stdout
        assert "bucket-sum" in proc.stdout


class TestInjectedFaults:
    @pytest.mark.parametrize(
        "fixture",
        [
            "register-peak",
            "use-before-reload",
            "scatter-race",
            "timeline-overlap",
            "serve-before-arrival",
            "trace-drift",
            "cluster-double-serve",
        ],
    )
    def test_fault_is_caught_with_nonzero_exit(self, fixture):
        proc = run_cli("--inject-fault", fixture)
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "FAIL" in proc.stdout

    def test_register_peak_diagnostic_names_the_op(self):
        proc = run_cli("--inject-fault", "register-peak")
        assert "claimed peak 7" in proc.stdout
        assert "op " in proc.stdout

    def test_use_before_reload_diagnostic_names_the_address(self):
        proc = run_cli("--inject-fault", "use-before-reload")
        assert "shared:spill[" in proc.stdout

    def test_scatter_race_diagnostic_names_the_address(self):
        proc = run_cli("--inject-fault", "scatter-race")
        assert "global:bucket_sizes[" in proc.stdout

    def test_timeline_overlap_diagnostic_names_the_resource(self):
        proc = run_cli("--inject-fault", "timeline-overlap")
        assert "resource:cpu" in proc.stdout
        assert "overlap" in proc.stdout

    def test_unknown_fixture_is_a_usage_error(self):
        proc = run_cli("--inject-fault", "no-such-fixture")
        assert proc.returncode == 2
        assert "invalid choice" in proc.stderr
