"""Report rendering and race-detector edge cases.

The cheap paths nobody exercises until they break: empty traces,
single-task timelines, the per-location violation cap (the race
detector's own suppression), and violation formatting with and without
op/address context.
"""

from repro.engine.resources import GPU_COMPUTE, Resource
from repro.engine.timeline import Task, simulate
from repro.gpu.trace import Kind, MemoryTrace, Space
from repro.verify.races import detect_races
from repro.verify.report import VerificationReport, Violation
from repro.verify.timelinecheck import verify_timeline


class TestViolationRendering:
    def test_plain_violation(self):
        v = Violation("schedule", "PACC", "peak exceeded")
        assert str(v) == "[schedule] PACC: peak exceeded"

    def test_op_context(self):
        v = Violation("spill", "PACC@5", "use before reload", op="mul3")
        assert str(v) == "[spill] PACC@5: use before reload (op mul3)"

    def test_address_context(self):
        v = Violation(
            "race", "scatter", "conflict", address="global:counts[3]"
        )
        assert str(v).endswith("(address global:counts[3])")

    def test_op_and_address_context(self):
        v = Violation("race", "s", "m", op="w", address="shared:a[0]")
        assert "(op w, address shared:a[0])" in str(v)


class TestReportRendering:
    def test_empty_report_passes(self):
        report = VerificationReport()
        assert report.ok
        assert report.render() == "PASS: 0 checks, 0 violations"

    def test_checks_hidden_unless_verbose_or_clean(self):
        report = VerificationReport()
        report.add_check("something held")
        report.extend([Violation("x", "y", "broke")])
        assert "something held" not in report.render(verbose=False)
        assert "something held" in report.render(verbose=True)
        assert "VIOLATION [x] y: broke" in report.render()
        assert report.render().endswith("FAIL: 1 checks, 1 violations")

    def test_merge_concatenates(self):
        a = VerificationReport()
        a.add_check("a")
        b = VerificationReport()
        b.extend([Violation("c", "s", "m")])
        merged = a.merge(b)
        assert merged is a
        assert len(a.checks) == 1 and len(a.violations) == 1


def _racy_trace(threads: int) -> MemoryTrace:
    """``threads`` plain RMWs on one global address, no synchronisation."""
    trace = MemoryTrace()
    for t in range(threads):
        trace.record(
            Space.GLOBAL, "counts", 0, Kind.RMW,
            atomic=False, block=t, thread=0,
        )
    return trace


class TestRaceDetectorEdges:
    def test_empty_trace_is_clean(self):
        result = detect_races(MemoryTrace(), subject="empty")
        assert result.ok
        assert result.events == 0
        assert result.locations == 0

    def test_single_access_cannot_race(self):
        trace = MemoryTrace()
        trace.record(
            Space.GLOBAL, "out", 7, Kind.WRITE, atomic=False, block=0, thread=0
        )
        result = detect_races(trace)
        assert result.ok
        assert result.locations == 1

    def test_per_location_cap_suppresses_duplicate_pairs(self):
        # 4 threads -> 6 racing pairs, but one per location is reported
        result = detect_races(_racy_trace(4))
        assert len(result.violations) == 1

    def test_cap_is_adjustable(self):
        result = detect_races(_racy_trace(4), max_violations_per_location=3)
        assert len(result.violations) == 3

    def test_atomic_pairs_do_not_race(self):
        trace = MemoryTrace()
        for b in range(3):
            trace.record(
                Space.GLOBAL, "counts", 0, Kind.RMW,
                atomic=True, block=b, thread=0,
            )
        assert detect_races(trace).ok

    def test_barrier_separated_accesses_do_not_race(self):
        trace = MemoryTrace()
        trace.record(
            Space.SHARED, "buf", 0, Kind.WRITE, atomic=False, block=0, thread=0
        )
        trace.barrier(0)
        trace.record(
            Space.SHARED, "buf", 0, Kind.READ, atomic=False, block=0, thread=1
        )
        assert detect_races(trace).ok

    def test_reads_never_conflict(self):
        trace = MemoryTrace()
        for t in range(2):
            trace.record(
                Space.GLOBAL, "points", 5, Kind.READ,
                atomic=False, block=0, thread=t,
            )
        assert detect_races(trace).ok


class TestSingleTaskTimeline:
    def test_single_task_timeline_verifies(self):
        gpu = Resource("gpu0", GPU_COMPUTE, 0)
        timeline = simulate((Task("only", gpu, 2.5),))
        checked = verify_timeline(timeline, subject="one task")
        assert checked.ok
        assert timeline.total_ms == 2.5
