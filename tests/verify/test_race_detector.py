"""The race detector: the shipped kernels are clean, the broken one is not."""

from repro.core.config import DistMsmConfig
from repro.curves.sampling import sample_points
from repro.curves.toy import toy_curve
from repro.gpu.trace import Kind, MemoryTrace, Space
from repro.verify import (
    detect_races,
    trace_bucket_sum,
    trace_hierarchical_scatter,
    trace_naive_scatter,
)
from repro.verify.fixtures import broken_scatter_check

DIGITS = [1 + (i % 3) for i in range(96)]


class TestMemoryModel:
    """Unit tests of the happens-before relation on hand-built traces."""

    def test_same_thread_accesses_never_race(self):
        t = MemoryTrace()
        t.record(Space.GLOBAL, "g", 0, Kind.WRITE, atomic=False, block=0, thread=0)
        t.record(Space.GLOBAL, "g", 0, Kind.WRITE, atomic=False, block=0, thread=0)
        assert detect_races(t).ok

    def test_two_reads_never_race(self):
        t = MemoryTrace()
        t.record(Space.GLOBAL, "g", 0, Kind.READ, atomic=False, block=0, thread=0)
        t.record(Space.GLOBAL, "g", 0, Kind.READ, atomic=False, block=1, thread=5)
        assert detect_races(t).ok

    def test_plain_cross_thread_writes_race(self):
        t = MemoryTrace()
        t.record(Space.GLOBAL, "g", 7, Kind.WRITE, atomic=False, block=0, thread=0)
        t.record(Space.GLOBAL, "g", 7, Kind.WRITE, atomic=False, block=0, thread=1)
        result = detect_races(t)
        assert not result.ok
        assert result.violations[0].address == "global:g[7]"

    def test_atomic_pair_does_not_race(self):
        t = MemoryTrace()
        t.record(Space.GLOBAL, "g", 7, Kind.RMW, atomic=True, block=0, thread=0)
        t.record(Space.GLOBAL, "g", 7, Kind.RMW, atomic=True, block=3, thread=9)
        assert detect_races(t).ok

    def test_atomic_against_plain_still_races(self):
        t = MemoryTrace()
        t.record(Space.GLOBAL, "g", 7, Kind.RMW, atomic=True, block=0, thread=0)
        t.record(Space.GLOBAL, "g", 7, Kind.WRITE, atomic=False, block=0, thread=1)
        assert not detect_races(t).ok

    def test_block_barrier_orders_accesses(self):
        t = MemoryTrace()
        t.record(Space.SHARED, "s", 0, Kind.WRITE, atomic=False, block=0, thread=0)
        t.barrier(0)
        t.record(Space.SHARED, "s", 0, Kind.READ, atomic=False, block=0, thread=1)
        assert detect_races(t).ok

    def test_barrier_does_not_order_other_blocks(self):
        t = MemoryTrace()
        t.record(Space.GLOBAL, "g", 0, Kind.WRITE, atomic=False, block=0, thread=0)
        t.barrier(0)  # block 0's barrier is irrelevant to block 1
        t.record(Space.GLOBAL, "g", 0, Kind.WRITE, atomic=False, block=1, thread=0)
        assert not detect_races(t).ok

    def test_shared_memory_is_per_block(self):
        t = MemoryTrace()
        t.record(Space.SHARED, "s", 0, Kind.WRITE, atomic=False, block=0, thread=0)
        t.record(Space.SHARED, "s", 0, Kind.WRITE, atomic=False, block=1, thread=0)
        assert detect_races(t).ok  # same address, different physical memory

    def test_warp_lockstep_option_orders_warp_mates(self):
        t = MemoryTrace()
        t.record(Space.SHARED, "s", 0, Kind.WRITE, atomic=False, block=0, thread=0)
        t.record(Space.SHARED, "s", 0, Kind.WRITE, atomic=False, block=0, thread=1)
        assert not detect_races(t).ok  # default: no warp-synchronous model
        assert detect_races(t, warp_lockstep=True).ok

    def test_violation_cap_per_location(self):
        t = MemoryTrace()
        for thread in range(8):
            t.record(
                Space.GLOBAL, "g", 0, Kind.WRITE, atomic=False, block=0, thread=thread
            )
        result = detect_races(t, max_violations_per_location=1)
        assert len(result.violations) == 1
        uncapped = detect_races(t, max_violations_per_location=100)
        assert len(uncapped.violations) > 1


class TestShippedKernels:
    def test_naive_scatter_with_atomics_is_race_free(self):
        trace = trace_naive_scatter(DIGITS, num_buckets=4)
        result = detect_races(trace, subject="naive scatter")
        assert result.ok, [str(v) for v in result.violations]
        assert result.events > 0

    def test_hierarchical_scatter_is_race_free(self):
        trace = trace_hierarchical_scatter(DIGITS, num_buckets=4)
        result = detect_races(trace, subject="hierarchical scatter")
        assert result.ok, [str(v) for v in result.violations]
        assert result.events > 0

    def test_hierarchical_scatter_multi_block_is_race_free(self):
        config = DistMsmConfig(
            scatter="hierarchical", threads_per_block=32, points_per_thread=2
        )
        trace = trace_hierarchical_scatter(DIGITS, num_buckets=4, config=config)
        result = detect_races(trace)
        assert result.ok, [str(v) for v in result.violations]

    def test_bucket_sum_tree_reduction_is_race_free(self):
        curve = toy_curve()
        points = sample_points(curve, 12, seed=5)
        buckets = [[0, 1, 2, 3], [4, 5, 6, 7, 8], [9, 10, 11]]
        for n_threads in (2, 4):
            trace = trace_bucket_sum(buckets, points, curve, n_threads)
            result = detect_races(trace)
            assert result.ok, [str(v) for v in result.violations]


class TestBrokenScatter:
    def test_scatter_without_atomics_is_caught_with_address(self):
        result = broken_scatter_check()
        assert not result.ok
        violation = result.violations[0]
        assert violation.address is not None
        assert violation.address.startswith("global:bucket_sizes[")

    def test_diagnostic_names_the_conflicting_threads(self):
        result = broken_scatter_check()
        message = result.violations[0].message
        assert "thread" in message
        assert "rmw" in message or "write" in message
