"""clustercheck: the cluster-level audit catches what node audits cannot."""

from dataclasses import replace

from repro.cluster import ProofCluster
from repro.core.config import DistMsmConfig
from repro.curves.params import curve_by_name
from repro.engine.faults import FaultPlan, GpuFailure
from repro.serve import ProofRequest
from repro.verify.clustercheck import verify_cluster
from repro.verify.fixtures import FIXTURES, broken_cluster_check

BLS = curve_by_name("BLS12-381")
CONFIG = DistMsmConfig(window_size=10)


def _run(num_nodes: int = 2, count: int = 8, faults: FaultPlan | None = None):
    requests = [
        ProofRequest(
            req_id=i, curve=BLS, n=1 << 16, arrival_ms=i * 1.0,
            label=f"r{i}", tenant="acme" if i % 2 else "zkmart",
        )
        for i in range(count)
    ]
    cluster = ProofCluster(num_nodes, gpus_per_node=2, config=CONFIG)
    return cluster.serve(requests, faults=faults)


class TestCleanRuns:
    def test_plain_run_is_clean(self):
        checked = verify_cluster(_run(), subject="clean")
        assert checked.ok
        assert not checked.all_violations()
        assert checked.served == 8
        assert checked.submitted == 8

    def test_node_kill_run_is_clean(self):
        kill = FaultPlan.of(GpuFailure(5.0, 2), GpuFailure(5.0, 3))
        result = _run(count=10, faults=kill)
        checked = verify_cluster(result, subject="kill")
        assert checked.ok, [str(v) for v in checked.all_violations()]
        # per-node sub-audits ran too
        assert set(checked.node_checks) == {0, 1}


class TestDoctoredRuns:
    def test_double_serve_is_flagged(self):
        result = _run()
        victim = result.node_results[0].records[0]
        result.node_results[1].records.append(replace(victim))
        checked = verify_cluster(result, subject="doctored")
        assert not checked.ok
        assert any("served by" in v.message for v in checked.all_violations())

    def test_vanished_request_is_flagged(self):
        result = _run()
        result.node_results[0].records.pop()
        checked = verify_cluster(result, subject="doctored")
        assert not checked.ok
        assert any(
            "neither served nor shed" in v.message
            for v in checked.all_violations()
        )

    def test_fixture_is_registered_and_fails(self):
        assert "cluster-double-serve" in FIXTURES
        checked = broken_cluster_check()
        assert not checked.ok
        assert any("served by" in v.message for v in checked.all_violations())
