"""faultcheck: post-mortem scheduling, backoff spacing, honest makespan."""

import pytest

from repro.engine.faults import (
    FaultPlan,
    GpuFailure,
    RetryPolicy,
    TransferError,
)
from repro.engine.resources import system_resources
from repro.engine.timeline import Task, simulate
from repro.verify.faultcheck import verify_fault_timeline
from repro.verify.fixtures import FIXTURES

from tests.verify.test_cli import run_cli


@pytest.fixture()
def rig():
    res = system_resources(2)
    tasks = [
        Task("a", res.gpus[0], 2.0),
        Task("t_a", res.channels[0], 1.0, ("a",), requires_alive=("gpu0",)),
        Task("b", res.gpus[1], 1.0, ("t_a",)),
    ]
    return res, tasks


class TestCleanTimelines:
    def test_fault_free_timeline_passes(self, rig):
        _, tasks = rig
        plan = FaultPlan.of(GpuFailure(100.0, 0))
        checked = verify_fault_timeline(simulate(tasks, faults=plan), plan)
        assert checked.ok
        assert checked.tasks == 3
        assert checked.failures == 0

    def test_killed_run_still_passes(self, rig):
        # the simulator's own output under a kill must be internally
        # consistent: failures recorded, no post-mortem spans
        _, tasks = rig
        plan = FaultPlan.of(GpuFailure(1.0, 0))
        checked = verify_fault_timeline(simulate(tasks, faults=plan), plan)
        assert checked.ok
        assert checked.failures == 3

    def test_retried_run_passes(self, rig):
        _, tasks = rig
        plan = FaultPlan.of(TransferError(0, 2.5))
        policy = RetryPolicy(max_retries=2, backoff_base_ms=0.25)
        checked = verify_fault_timeline(
            simulate(tasks, faults=plan, retry=policy), plan, policy
        )
        assert checked.ok
        assert checked.attempts == 1


class TestViolationDetection:
    def test_fixture_post_mortem_schedule_caught(self):
        checked = FIXTURES["post-mortem-schedule"]()
        assert not checked.ok
        messages = " ".join(v.message for v in checked.violations)
        assert "death" in messages

    def test_fixture_backoff_violation_caught(self):
        checked = FIXTURES["backoff-violation"]()
        assert not checked.ok
        assert any("backoff" in v.message for v in checked.violations)

    def test_dishonest_makespan_caught(self, rig):
        _, tasks = rig
        plan = FaultPlan.of(GpuFailure(1.0, 0))
        timeline = simulate(tasks, faults=plan)
        trimmed = type(timeline)(
            tasks=timeline.tasks,
            spans=timeline.spans,
            total_ms=0.5,
            failures=timeline.failures,
            attempts=timeline.attempts,
        )
        checked = verify_fault_timeline(trimmed, plan)
        assert any("hides work" in v.message for v in checked.violations)

    def test_excess_retries_caught(self, rig):
        _, tasks = rig
        plan = FaultPlan.of(TransferError(0, 2.5), TransferError(0, 3.0))
        generous = RetryPolicy(max_retries=3, backoff_base_ms=0.25)
        timeline = simulate(tasks, faults=plan, retry=generous)
        assert len(timeline.attempts) == 2
        strict = RetryPolicy(max_retries=1, backoff_base_ms=0.25)
        checked = verify_fault_timeline(timeline, plan, strict)
        assert any("max_retries" in v.message for v in checked.violations)


class TestCliIntegration:
    @pytest.mark.parametrize(
        "fixture", ["post-mortem-schedule", "backoff-violation"]
    )
    def test_fault_fixture_is_caught_with_nonzero_exit(self, fixture):
        proc = run_cli("--inject-fault", fixture)
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "FAIL" in proc.stdout

    def test_post_mortem_diagnostic_names_the_resource(self):
        proc = run_cli("--inject-fault", "post-mortem-schedule")
        assert "resource:gpu0" in proc.stdout

    def test_backoff_diagnostic_names_the_attempt(self):
        proc = run_cli("--inject-fault", "backoff-violation")
        assert "backoff" in proc.stdout
