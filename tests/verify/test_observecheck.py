"""The observe auditor: clean traces pass, every drift class is caught."""

from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm
from repro.curves.params import curve_by_name
from repro.engine.resources import GPU_COMPUTE, Resource
from repro.engine.timeline import Task, simulate
from repro.gpu.cluster import MultiGpuSystem
from repro.observe import Span, Tracer, record_timeline
from repro.verify.fixtures import FIXTURES, broken_trace_check, run_fixture
from repro.verify.observecheck import (
    verify_trace,
    verify_trace_against_timeline,
)

BLS = curve_by_name("BLS12-381")


def _simulated():
    gpu0 = Resource("gpu0", GPU_COMPUTE, 0)
    gpu1 = Resource("gpu1", GPU_COMPUTE, 1)
    tasks = (
        Task("msm:scatter:g0", gpu0, 2.0),
        Task("msm:scatter:g1", gpu1, 2.5),
        Task("msm:sum:g1", gpu1, 3.0, deps=("msm:scatter:g1",)),
    )
    trace = Tracer("unit")
    timeline = simulate(tasks, tracer=trace)
    return trace, timeline


class TestVerifyTrace:
    def test_recorded_trace_is_well_formed(self):
        trace, _ = _simulated()
        result = verify_trace(trace)
        assert result.ok, [str(v) for v in result.violations]
        assert result.spans == 3 and result.tracks == 2

    def test_open_span_flagged(self):
        trace = Tracer()
        trace.begin("leak", "gpu0", 0.0)
        result = verify_trace(trace)
        assert not result.ok
        assert any("never ended" in str(v) for v in result.violations)

    def test_partial_overlap_on_one_track_flagged(self):
        trace = Tracer()
        trace.add_span("a", "gpu0", 0.0, 2.0)
        trace.add_span("b", "gpu0", 1.0, 3.0)
        result = verify_trace(trace)
        assert not result.ok

    def test_proper_nesting_allowed(self):
        trace = Tracer()
        trace.add_span("outer", "cpu", 0.0, 5.0)
        trace.add_span("inner", "cpu", 0.0, 2.0)  # same start: still nested
        trace.add_span("inner2", "cpu", 2.0, 5.0)  # same end: still nested
        assert verify_trace(trace).ok

    def test_disjoint_tracks_never_conflict(self):
        trace = Tracer()
        trace.add_span("a", "gpu0", 0.0, 2.0)
        trace.add_span("b", "gpu1", 1.0, 3.0)
        assert verify_trace(trace).ok


class TestVerifyAgainstTimeline:
    def test_faithful_transcription_passes(self):
        trace, timeline = _simulated()
        result = verify_trace_against_timeline(trace, timeline)
        assert result.ok, [str(v) for v in result.violations]

    def test_missing_task_span_caught(self):
        _, timeline = _simulated()
        partial = Tracer("partial")
        record_timeline(partial, timeline)
        partial.spans[:] = [s for s in partial.spans if s.name != "msm:sum:g1"]
        result = verify_trace_against_timeline(partial, timeline)
        assert not result.ok

    def test_stretched_span_caught(self):
        trace, timeline = _simulated()
        idx = next(i for i, s in enumerate(trace.spans) if s.name == "msm:sum:g1")
        s = trace.spans[idx]
        trace.spans[idx] = Span(
            s.name, s.track, s.start_ms, s.end_ms + 0.5, s.cat, dict(s.args)
        )
        result = verify_trace_against_timeline(trace, timeline)
        assert not result.ok

    def test_fabricated_extra_span_caught(self):
        trace, timeline = _simulated()
        trace.add_span("ghost-task", "gpu0", 0.0, 1.0)
        result = verify_trace_against_timeline(trace, timeline)
        assert not result.ok

    def test_phase_serial_tiling_on_real_msm(self):
        """The acceptance criterion: per-stage envelopes tile the makespan
        exactly (sum of phase wall-times == reported makespan within 1e-9)."""
        trace = Tracer("msm")
        result = DistMsm(MultiGpuSystem(2), DistMsmConfig(window_size=10)).estimate(
            BLS, 1 << 16, trace=trace
        )
        checked = verify_trace_against_timeline(
            trace, result.timeline, phase_serial=True
        )
        assert checked.ok, [str(v) for v in checked.violations]

    def test_retry_spans_excluded_from_busy_accounting(self):
        """Timeline.busy_ms excludes aborted attempts; the auditor must
        apply the same exclusion to cat='retry' spans."""
        from repro.engine.faults import FaultPlan, GpuFailure

        trace = Tracer("chaos")
        result = DistMsm(MultiGpuSystem(4), DistMsmConfig(window_size=10)).estimate(
            BLS, 1 << 16, faults=FaultPlan.of(GpuFailure(0.05, 2)), trace=trace
        )
        assert any(s.cat == "retry" for s in trace.spans) or result.fault_report
        checked = verify_trace_against_timeline(trace, result.timeline)
        assert checked.ok, [str(v) for v in checked.violations]


class TestDriftFixture:
    def test_broken_trace_check_fails(self):
        result = broken_trace_check()
        assert not result.ok
        assert all(v.checker == "observe" for v in result.violations)

    def test_registered_and_runnable(self):
        assert "trace-drift" in FIXTURES
        report = run_fixture("trace-drift")
        assert not report.ok
