"""The schedule verifier: paper peaks, and every invariant it enforces."""

import pytest

from repro.curves.point import PACC_MODMULS, PADD_MODMULS
from repro.kernels.dag import Op, OpDag, build_pacc_dag, build_padd_dag, peak_live
from repro.kernels.scheduler import find_optimal_schedule
from repro.verify import live_intervals, verify_schedule
from repro.verify.fixtures import broken_schedule_check


class TestPaperPeaks:
    """The §4.2.1 numbers, recomputed by the independent interval sweep."""

    def test_padd_written_order_peaks_at_11(self):
        result = verify_schedule(build_padd_dag(), max_modmuls=PADD_MODMULS)
        assert result.ok
        assert result.peak == 11
        assert result.modmuls == PADD_MODMULS

    def test_padd_optimal_order_peaks_at_9(self):
        dag = build_padd_dag()
        schedule = find_optimal_schedule(dag)
        result = verify_schedule(
            dag,
            order=list(schedule.order),
            claimed_peak=schedule.peak,
            max_modmuls=PADD_MODMULS,
        )
        assert result.ok
        assert result.peak == 9
        assert schedule.peak == 9

    def test_pacc_written_order_peaks_at_9(self):
        result = verify_schedule(build_pacc_dag(), max_modmuls=PACC_MODMULS)
        assert result.ok
        assert result.peak == 9
        assert result.modmuls == PACC_MODMULS

    def test_pacc_optimal_order_peaks_at_7(self):
        dag = build_pacc_dag()
        schedule = find_optimal_schedule(dag)
        result = verify_schedule(
            dag, order=list(schedule.order), claimed_peak=schedule.peak
        )
        assert result.ok
        assert result.peak == 7

    def test_sweep_agrees_with_simulation_on_all_kernels(self):
        # two structurally different liveness implementations, one answer
        for dag in (build_padd_dag(), build_pacc_dag()):
            schedule = find_optimal_schedule(dag)
            for order in (None, list(schedule.order)):
                swept = verify_schedule(dag, order=order).peak
                simulated = peak_live(dag, order)
                assert swept == simulated


class TestInvariants:
    def simple_dag(self) -> OpDag:
        ops = [
            Op("m", "M", ("a", "b"), "mul"),
            Op("n", "N", ("M", "a"), "mul"),
            Op("d", "D", ("N", "M"), "sub", inplace=True),
        ]
        return OpDag(
            name="simple",
            ops=ops,
            live_at_start=frozenset({"a", "b"}),
            live_at_end=frozenset({"D"}),
        )

    def test_non_permutation_order_is_rejected(self):
        result = verify_schedule(self.simple_dag(), order=["m", "n"])
        assert not result.ok
        assert "permutation" in result.violations[0].message

    def test_use_before_def_is_rejected_and_names_the_op(self):
        result = verify_schedule(self.simple_dag(), order=["n", "m", "d"])
        assert not result.ok
        assert any(
            v.op == "n" and "before it is produced" in v.message
            for v in result.violations
        )

    def test_double_assignment_is_rejected(self):
        ops = [
            Op("m", "M", ("a", "a"), "mul"),
            Op("m2", "M", ("a", "a"), "mul"),
        ]
        with pytest.raises(ValueError):
            # the DAG layer itself refuses duplicate outputs...
            OpDag("dup", ops, frozenset({"a"}), frozenset({"M"}))

    def test_redefining_entry_value_is_rejected(self):
        ops = [Op("m", "a", ("a", "a"), "mul")]
        dag = OpDag("redef", ops, frozenset({"a"}), frozenset({"a"}))
        result = verify_schedule(dag)
        assert not result.ok
        assert any("kernel-entry" in v.message for v in result.violations)

    def test_inplace_destroying_live_value_is_rejected(self):
        ops = [
            Op("m", "M", ("a", "b"), "mul"),
            Op("d", "D", ("M", "b"), "sub", inplace=True),  # destroys M
            Op("n", "N", ("M", "a"), "mul"),  # ...but M is used again
        ]
        dag = OpDag(
            "hazard", ops, frozenset({"a", "b"}), frozenset({"D", "N"})
        )
        result = verify_schedule(dag)
        assert not result.ok
        assert any(
            v.op == "d" and "in-place" in v.message for v in result.violations
        )

    def test_inplace_destroying_kernel_output_is_rejected(self):
        ops = [
            Op("m", "M", ("a", "b"), "mul"),
            Op("d", "D", ("M", "b"), "sub", inplace=True),
        ]
        dag = OpDag(
            "hazard2", ops, frozenset({"a", "b"}), frozenset({"M", "D"})
        )
        result = verify_schedule(dag)
        assert not result.ok
        assert any("kernel output" in v.message for v in result.violations)

    def test_modmul_budget_overrun_is_reported(self):
        result = verify_schedule(build_padd_dag(), max_modmuls=PADD_MODMULS - 1)
        assert not result.ok
        assert any("budget" in v.message for v in result.violations)

    def test_peak_violation_names_the_peak_op(self):
        result = broken_schedule_check()
        assert not result.ok
        assert result.peak == 9
        violation = result.violations[0]
        assert "claimed peak 7" in violation.message
        assert violation.op is not None  # the op where the peak occurs


class TestLiveIntervals:
    def test_entry_values_start_before_the_schedule(self):
        dag = build_pacc_dag()
        intervals = live_intervals(dag, list(dag.ops))
        assert intervals["Xa"].start == -1

    def test_outputs_live_to_infinity(self):
        dag = build_pacc_dag()
        intervals = live_intervals(dag, list(dag.ops))
        for v in dag.live_at_end:
            assert intervals[v].end == float("inf")

    def test_loaded_operand_starts_at_first_use(self):
        dag = build_pacc_dag()
        intervals = live_intervals(dag, list(dag.ops))
        # XP is loaded from memory by op u2 at position 0
        assert intervals["XP"].start == 0
