"""The serving auditor: clean runs pass, doctored artifacts are caught."""

from repro.core.config import DistMsmConfig
from repro.curves.params import curve_by_name
from repro.gpu.cluster import MultiGpuSystem
from repro.serve import (
    MsmProofServer,
    ServeConfig,
    poisson_trace,
)
from repro.serve.metrics import RequestRecord
from repro.verify.fixtures import FIXTURES, broken_serving_check
from repro.verify.servecheck import request_id_of, verify_serving

BLS = curve_by_name("BLS12-381")


def _serve():
    server = MsmProofServer(
        MultiGpuSystem(4),
        DistMsmConfig(window_size=10),
        ServeConfig(gpu_groups=2, max_batch_size=4),
    )
    trace = poisson_trace(BLS, 10, 400.0, seed=11, sizes=1 << 14)
    return server.serve(trace)


class TestTaskNameParsing:
    def test_serve_names_parse(self):
        assert request_id_of("req7.a0:gpu3") == 7
        assert request_id_of("req12.a2:reduce") == 12

    def test_foreign_names_ignored(self):
        assert request_id_of("gpu0:scatter") is None
        assert request_id_of("req:reduce") is None


class TestCleanRun:
    def test_real_serving_run_passes(self):
        result = _serve()
        checked = verify_serving(
            result.requests, result.records, result.shed, result.timeline
        )
        assert checked.ok, [str(v) for v in checked.violations]
        assert checked.requests == 10
        assert checked.served == 10 and checked.shed == 0


class TestDoctoredArtifacts:
    def test_fabricated_record_is_caught(self):
        result = _serve()
        forged = result.records + [
            RequestRecord(
                req_id=999,
                label="forged",
                n=1 << 14,
                arrival_ms=0.0,
                formed_ms=0.0,
                admit_ms=0.0,
                start_ms=0.0,
                complete_ms=1.0,
                batch_id=0,
                group=0,
            )
        ]
        checked = verify_serving(
            result.requests, forged, result.shed, result.timeline
        )
        messages = " ".join(str(v) for v in checked.violations)
        assert "unknown request 999" in messages

    def test_lost_request_is_caught(self):
        result = _serve()
        dropped = [r for r in result.records if r.req_id != 0]
        checked = verify_serving(
            result.requests, dropped, result.shed, result.timeline
        )
        messages = " ".join(str(v) for v in checked.violations)
        assert "neither served nor shed" in messages

    def test_dishonest_completion_is_caught(self):
        import dataclasses

        result = _serve()
        first = result.records[0]
        doctored = [
            dataclasses.replace(r, complete_ms=r.complete_ms - 1.0)
            if r.req_id == first.req_id
            else r
            for r in result.records
        ]
        checked = verify_serving(
            result.requests, doctored, result.shed, result.timeline
        )
        assert not checked.ok
        messages = " ".join(str(v) for v in checked.violations)
        assert "final reduce end" in messages or "precedes" in messages


class TestFixture:
    def test_registered_in_cli_registry(self):
        assert FIXTURES["serve-before-arrival"] is broken_serving_check

    def test_fixture_yields_precise_violations(self):
        checked = broken_serving_check()
        assert not checked.ok
        messages = " ".join(str(v) for v in checked.violations)
        assert "before" in messages  # pre-arrival execution
        assert "shed request" in messages  # shed-but-executed
