"""The spill-plan checker: honest plans pass, every corruption is caught."""

from repro.curves.params import curve_by_name
from repro.gpu.specs import NVIDIA_A100
from repro.kernels.dag import build_pacc_dag, build_padd_dag
from repro.kernels.scheduler import find_optimal_schedule
from repro.kernels.spill import SpillPlan, plan_spills
from repro.verify import max_spill_threads, spill_bytes_per_thread, verify_spill_plan
from repro.verify.fixtures import broken_spill_check


def pacc_at_5():
    dag = build_pacc_dag()
    order = list(find_optimal_schedule(dag).order)
    plan = plan_spills(dag, order, register_budget=5)
    return dag, order, plan


class TestHonestPlans:
    def test_pacc_spill_at_5_verifies_and_peaks_at_5(self):
        dag, order, plan = pacc_at_5()
        result = verify_spill_plan(dag, order, plan)
        assert result.ok, [str(v) for v in result.violations]
        # the paper's §4.2.2 claim: PACC fits a 5-register budget
        assert plan.peak_registers == 5
        assert result.peak_registers <= 5

    def test_padd_spill_verifies(self):
        dag = build_padd_dag()
        order = list(find_optimal_schedule(dag).order)
        plan = plan_spills(dag, order, register_budget=7)
        result = verify_spill_plan(dag, order, plan)
        assert result.ok, [str(v) for v in result.violations]

    def test_all_distmsm_curve_limb_counts_fit(self):
        dag, order, plan = pacc_at_5()
        for name in ("BN254", "BLS12-377", "BLS12-381", "MNT4753"):
            curve = curve_by_name(name)
            result = verify_spill_plan(dag, order, plan, num_limbs=curve.num_limbs)
            assert result.ok, (name, [str(v) for v in result.violations])


class TestCorruptions:
    def test_deleted_reload_is_use_before_reload(self):
        result = broken_spill_check()
        assert not result.ok
        violation = next(
            v for v in result.violations if "use before reload" in v.message
        )
        assert violation.op is not None
        assert violation.address is not None
        assert violation.address.startswith("shared:spill[")

    def test_double_spill_is_caught(self):
        dag, order, plan = pacc_at_5()
        first_spill = next(m for m in plan.moves if m[1] == "spill")
        broken = SpillPlan(
            register_budget=plan.register_budget,
            transfers=plan.transfers + 1,
            peak_shm_bigints=plan.peak_shm_bigints,
            peak_registers=plan.peak_registers,
            moves=[first_spill] + list(plan.moves),
        )
        result = verify_spill_plan(dag, order, broken)
        assert any("double-spill" in v.message for v in result.violations)

    def test_ghost_reload_is_caught(self):
        dag, order, plan = pacc_at_5()
        broken = SpillPlan(
            register_budget=plan.register_budget,
            transfers=plan.transfers + 1,
            peak_shm_bigints=plan.peak_shm_bigints,
            peak_registers=plan.peak_registers,
            moves=list(plan.moves) + [("<end>", "reload", "XP")],
        )
        result = verify_spill_plan(dag, order, broken)
        assert any(
            "not in shared memory" in v.message for v in result.violations
        )

    def test_lying_transfer_count_is_caught(self):
        dag, order, plan = pacc_at_5()
        broken = SpillPlan(
            register_budget=plan.register_budget,
            transfers=plan.transfers - 3,
            peak_shm_bigints=plan.peak_shm_bigints,
            peak_registers=plan.peak_registers,
            moves=list(plan.moves),
        )
        result = verify_spill_plan(dag, order, broken)
        assert any("claims" in v.message for v in result.violations)

    def test_unknown_op_in_moves_is_caught(self):
        dag, order, plan = pacc_at_5()
        broken = SpillPlan(
            register_budget=plan.register_budget,
            transfers=plan.transfers,
            peak_shm_bigints=plan.peak_shm_bigints,
            peak_registers=plan.peak_registers,
            moves=[("no_such_op", "spill", "Xa")] + list(plan.moves)[1:],
        )
        result = verify_spill_plan(dag, order, broken)
        assert any("unknown op" in v.message for v in result.violations)


class TestCapacity:
    def test_spill_bytes_accounting(self):
        assert spill_bytes_per_thread(2, 12) == 96
        assert spill_bytes_per_thread(0, 24) == 0

    def test_max_threads_is_warp_granular(self):
        threads = max_spill_threads(2, 12)
        assert threads % NVIDIA_A100.warp_size == 0
        assert threads > 0

    def test_zero_spill_allows_full_occupancy(self):
        assert max_spill_threads(0, 12) == NVIDIA_A100.max_threads_per_sm

    def test_oversized_block_overflows_shared_memory(self):
        dag, order, plan = pacc_at_5()
        # MNT4753's 24 limbs with a full 1024-thread block per SM cannot
        # fit: 2 bigints x 96 B x 1024 threads = 196 KiB > 164 KiB.
        result = verify_spill_plan(
            dag, order, plan, num_limbs=24, threads_per_block=1024
        )
        assert any("capacity" in v.message for v in result.violations)

    def test_capacity_exactly_at_boundary_passes(self):
        dag, order, plan = pacc_at_5()
        num_limbs = 24
        result_probe = verify_spill_plan(dag, order, plan, num_limbs=num_limbs)
        fitting = max_spill_threads(result_probe.peak_shm_bigints, num_limbs)
        at_boundary = verify_spill_plan(
            dag, order, plan, num_limbs=num_limbs, threads_per_block=fitting
        )
        assert at_boundary.ok, [str(v) for v in at_boundary.violations]
        over = verify_spill_plan(
            dag,
            order,
            plan,
            num_limbs=num_limbs,
            threads_per_block=fitting + NVIDIA_A100.warp_size,
        )
        assert not over.ok
