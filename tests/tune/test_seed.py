"""Plan-cache seeding: tuned plans must actually reach the serving path.

The whole point of :mod:`repro.tune.seed` is key discipline — a tuned
plan is built with a *tuned* engine but installed under the key the
*serving* engine looks up with.  These tests prove the handoff: after
seeding, server lookups are hits carrying tuned stage times, a served
workload runs off the seeded entries without planning latency, and a
cluster's nodes and router agree on the tuned estimates.
"""

import pytest

from repro.cluster import ProofCluster
from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm
from repro.curves.params import curve_by_name
from repro.gpu.cluster import MultiGpuSystem
from repro.serve import MsmProofServer, PlanCache, ServeConfig, poisson_trace
from repro.tune import seed_cluster, seed_server, tuned_cached_plan

BLS = curve_by_name("BLS12-381")
N = 1 << 18
BUDGET = 32


class TestInstall:
    def test_install_then_lookup_is_a_hit(self):
        system = MultiGpuSystem(4)
        engine = DistMsm(system)
        cache = PlanCache()
        _, cached = tuned_cached_plan(system, BLS, N, budget=BUDGET)
        cache.install(engine, BLS, N, cached)
        assert cache.stats.lookups == 0  # install is neither hit nor miss
        got, hit = cache.lookup(engine, BLS, N)
        assert hit and got is cached
        assert cache.stats.hits == 1 and cache.stats.misses == 0

    def test_seeded_entry_beats_the_default_build(self):
        system = MultiGpuSystem(4)
        _, cached = tuned_cached_plan(system, BLS, N, budget=BUDGET)
        default = PlanCache.build_plan(DistMsm(system), BLS, N)
        assert cached.total_ms < default.total_ms
        assert cached.total_ms <= default.total_ms / 1.1  # the tuner pays here

    def test_install_respects_capacity(self):
        system = MultiGpuSystem(2)
        engine = DistMsm(system)
        cache = PlanCache(capacity=1)
        _, a = tuned_cached_plan(system, BLS, 1 << 16, budget=8)
        _, b = tuned_cached_plan(system, BLS, 1 << 17, budget=8)
        cache.install(engine, BLS, 1 << 16, a)
        cache.install(engine, BLS, 1 << 17, b)
        assert len(cache) == 1
        assert cache.stats.evictions == 1
        assert cache.peek(engine, BLS, 1 << 17) is b


class TestSeedServer:
    def test_server_lookups_hit_tuned_plans(self):
        server = MsmProofServer(MultiGpuSystem(4))
        report = seed_server(server, [(BLS, N)], budget=BUDGET)
        assert report.installed == 1
        assert report.best_speedup >= 1.1
        cached, hit = server.plan_cache.lookup(server._engine_for(4), BLS, N)
        assert hit
        assert cached.window_size == report.entries[0].plan.window_size

    def test_grouped_server_seeds_every_group_size(self):
        server = MsmProofServer(
            MultiGpuSystem(4), serve_config=ServeConfig(gpu_groups=2)
        )
        report = seed_server(server, [(BLS, N)], budget=BUDGET)
        # 4 GPUs in 2 groups -> one group size (2), one entry per workload
        assert {e.scope for e in report.entries} == {"server/group2"}
        _, hit = server.plan_cache.lookup(server._engine_for(2), BLS, N)
        assert hit

    def test_served_workload_runs_off_seeded_plans(self):
        config = DistMsmConfig()
        serve_config = ServeConfig(plan_ms=5.0)
        workload = poisson_trace(BLS, count=4, rate_rps=100.0, seed=3, sizes=N)

        cold = MsmProofServer(MultiGpuSystem(4), config, serve_config)
        cold_result = cold.serve(list(workload))

        seeded = MsmProofServer(MultiGpuSystem(4), config, serve_config)
        seed_server(seeded, [(BLS, N)], budget=BUDGET)
        seeded_result = seeded.serve(list(workload))

        assert seeded.plan_cache.stats.misses == 0  # every lookup hit
        assert cold.plan_cache.stats.misses > 0
        # tuned stage times + no planning latency: strictly better p95
        assert seeded_result.metrics.p95_ms < cold_result.metrics.p95_ms

    def test_unseeded_shapes_fall_back_to_analytic_default(self):
        server = MsmProofServer(MultiGpuSystem(4))
        seed_server(server, [(BLS, N)], budget=BUDGET)
        other = 1 << 16  # never tuned
        cached, hit = server.plan_cache.lookup(server._engine_for(4), BLS, other)
        assert not hit
        default = PlanCache.build_plan(server._engine_for(4), BLS, other)
        assert cached.window_size == default.window_size
        assert cached.total_ms == pytest.approx(default.total_ms)


class TestSeedCluster:
    def test_nodes_and_router_all_seeded(self):
        cluster = ProofCluster(2, gpus_per_node=2)
        report = seed_cluster(cluster, [(BLS, N)], budget=BUDGET)
        scopes = {e.scope for e in report.entries}
        assert {"node0/group2", "node1/group2", "router/2gpu"} <= scopes
        # router estimates now come from the tuned entry, not a rebuild
        est_engine = DistMsm(
            MultiGpuSystem(2, gpus_per_node=2), cluster.config
        )
        assert cluster.router_cache.peek(est_engine, BLS, N) is not None
        for node in cluster.nodes:
            node_engine = DistMsm(node.system, node.config)
            assert node.plan_cache.peek(node_engine, BLS, N) is not None

    def test_identical_nodes_share_tuning_work(self):
        cluster = ProofCluster(3, gpus_per_node=2)
        report = seed_cluster(cluster, [(BLS, N)], budget=BUDGET)
        # 3 nodes + router = 4 installs, but the tuned plans are identical
        assert report.installed == 4
        plans = {e.plan.as_dict()["tuned_ms"] for e in report.entries}
        assert len(plans) == 1
