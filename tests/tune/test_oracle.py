"""Bottleneck oracle: classification rules, Chrome ingestion, golden reports.

The golden files under ``tests/tune/golden/`` are committed
:class:`BottleneckReport` exports computed over the *observe* layer's
committed Chrome traces (``tests/observe/golden/``), so oracle
classification drift is caught byte-for-byte the same way Chrome-export
drift already is.  Regenerate after an intentional change with::

    PYTHONPATH=src python tests/tune/test_oracle.py regen
"""

import json
from pathlib import Path

import pytest

from repro.core.distmsm import DistMsm
from repro.curves.params import curve_by_name
from repro.gpu.cluster import MultiGpuSystem
from repro.gpu.counters import EventCounters
from repro.observe import Tracer
from repro.tune import (
    BOUND_ATOMICS,
    BOUND_MEMORY,
    BOUND_SYNC,
    analyze_result,
    analyze_trace,
    classify_phase,
    tracer_from_chrome,
)

GOLDEN_DIR = Path(__file__).parent / "golden"
OBSERVE_GOLDEN_DIR = Path(__file__).parent.parent / "observe" / "golden"

#: (observe golden chrome trace, committed oracle report) pairs
GOLDEN_REPORTS = [
    ("msm_2gpu.json", "bottleneck_msm_2gpu.json"),
    ("serve_3req.json", "bottleneck_serve_3req.json"),
]


def golden_report_json(chrome_name: str) -> str:
    """The oracle report of one committed Chrome trace, as canonical JSON."""
    doc = json.loads((OBSERVE_GOLDEN_DIR / chrome_name).read_text())
    subject = chrome_name.removesuffix(".json")
    report = analyze_trace(tracer_from_chrome(doc), subject=subject)
    return report.to_json(indent=2) + "\n"


class TestClassification:
    def test_semantic_defaults(self):
        assert classify_phase("scatter", 1, 1.0) == BOUND_ATOMICS
        assert classify_phase("bucket-sum", 1, 1.0) == BOUND_MEMORY
        assert classify_phase("transfer", 1, 1.0) == BOUND_MEMORY
        assert classify_phase("launch", 1, 1.0) == BOUND_SYNC
        assert classify_phase("sync", 1, 1.0) == BOUND_SYNC

    def test_low_parallel_efficiency_means_sync_bound(self):
        # multi-track phase whose tracks mostly waited: coordination binds
        assert classify_phase("bucket-sum", 4, 0.2) == BOUND_SYNC
        # a single track cannot wait on itself
        assert classify_phase("bucket-sum", 1, 0.2) == BOUND_MEMORY
        # saturated tracks keep the semantic default
        assert classify_phase("bucket-sum", 4, 0.95) == BOUND_MEMORY

    def test_shared_atomics_refine_scatter_to_memory(self):
        hier = EventCounters(global_atomics=5, shared_atomics=995)
        naive = EventCounters(global_atomics=1000, shared_atomics=0)
        assert classify_phase("scatter", 2, 1.0, hier) == BOUND_MEMORY
        assert classify_phase("scatter", 2, 1.0, naive) == BOUND_ATOMICS
        # counters never override the sync re-classification
        assert classify_phase("scatter", 2, 0.1, hier) == BOUND_SYNC


class TestAnalyzeTrace:
    def build(self) -> Tracer:
        trace = Tracer("unit")
        trace.add_span("scatter w0", "gpu0", 0.0, 2.0, cat="scatter")
        trace.add_span("scatter w1", "gpu1", 0.0, 2.0, cat="scatter")
        trace.add_span("bucket sum w0", "gpu0", 2.0, 6.0, cat="bucket-sum")
        trace.add_span("d2h", "nic", 6.0, 8.0, cat="transfer")
        return trace

    def test_phase_folding(self):
        report = analyze_trace(self.build(), subject="unit")
        assert report.makespan_ms == 8.0
        assert report.audit_ok and report.audit_violations == 0
        scatter = report.phase("scatter")
        assert scatter.busy_ms == 4.0
        assert scatter.span_count == 2
        assert scatter.tracks == ("gpu0", "gpu1")
        # busy 4 over makespan 8 x 2 tracks
        assert scatter.utilization == pytest.approx(0.25)
        # busy 4 over envelope 2 x 2 tracks: fully saturated
        assert scatter.parallel_efficiency == pytest.approx(1.0)
        # busiest resource phase wins primary
        assert report.primary == "bucket-sum"
        assert report.primary_bound == BOUND_MEMORY

    def test_bound_totals_and_ordering(self):
        report = analyze_trace(self.build(), subject="unit")
        assert [p.phase for p in report.phases] == [
            "bucket-sum", "scatter", "transfer"
        ]
        assert report.bound_ms() == {"atomics": 4.0, "memory": 6.0}

    def test_audit_failure_is_reported_not_silent(self):
        trace = self.build()
        trace.begin("never closed", "gpu0", 9.0)
        report = analyze_trace(trace, subject="bad")
        assert not report.audit_ok
        assert report.audit_violations >= 1
        with pytest.raises(ValueError, match="unauditable"):
            analyze_trace(trace, subject="bad", strict=True)

    def test_analyze_result_reconciles_against_timeline(self):
        result = DistMsm(MultiGpuSystem(2)).estimate(curve_by_name("BN254"), 1 << 16)
        report = analyze_result(result, subject="estimate")
        assert report.audit_ok
        assert report.makespan_ms == pytest.approx(result.time_ms)
        assert report.primary  # some resource phase was elected


class TestChromeIngestion:
    def test_roundtrip_preserves_spans_and_meta(self):
        from tests.observe.test_chrome_export import build_msm_trace

        original = build_msm_trace()
        rebuilt = tracer_from_chrome(json.loads(original.to_chrome_json()))
        assert rebuilt.label == original.label
        assert rebuilt.tracks == original.tracks
        assert rebuilt.makespan_ms() == pytest.approx(original.makespan_ms())
        assert len(rebuilt.spans) == len(original.spans)
        assert rebuilt.category_ms().keys() == original.category_ms().keys()
        for cat, ms in original.category_ms().items():
            assert rebuilt.category_ms()[cat] == pytest.approx(ms)

    def test_reports_agree_between_live_and_roundtripped(self):
        from tests.observe.test_chrome_export import build_msm_trace

        live = build_msm_trace()
        rebuilt = tracer_from_chrome(json.loads(live.to_chrome_json()))
        assert (
            analyze_trace(live, subject="x").to_json()
            == analyze_trace(rebuilt, subject="x").to_json()
        )


class TestGoldenReports:
    @pytest.mark.parametrize("chrome_name,report_name", GOLDEN_REPORTS)
    def test_byte_stable(self, chrome_name, report_name):
        expected = (GOLDEN_DIR / report_name).read_text()
        assert golden_report_json(chrome_name) == expected, (
            f"oracle report for {chrome_name} drifted from its golden; "
            f"regenerate with: PYTHONPATH=src python {__file__} regen"
        )

    def test_export_is_deterministic(self):
        name = GOLDEN_REPORTS[0][0]
        assert golden_report_json(name) == golden_report_json(name)


def regen() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for chrome_name, report_name in GOLDEN_REPORTS:
        path = GOLDEN_DIR / report_name
        path.write_text(golden_report_json(chrome_name))
        print(f"wrote {path}")


if __name__ == "__main__":
    import sys

    if "regen" in sys.argv:
        regen()
    else:
        print(__doc__)
