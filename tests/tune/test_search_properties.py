"""Property tier for the plan auto-tuner (ISSUE 10 satellite).

Four invariants make a search trustworthy enough to seed serving plan
caches from, and all four are load-bearing:

* **never worse** — under its own cost model, the tuner's winner never
  scores above the initial/default state;
* **deterministic per seed** — same knobs, same cost table, same seed,
  same budget => identical result (plans seeded into a cluster must not
  depend on run order);
* **valid by construction** — every emitted config passes
  ``DistMsmConfig.__post_init__`` validation;
* **exact on small grids** — with a single window-size knob the search
  degenerates to brute force, so its answer must equal the literal
  argmin over the grid.

The generic :func:`coordinate_search` properties run against synthetic
deterministic cost tables (fast, fully explorable); the MSM-level
properties run the real analytic cost model on small budgets.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm
from repro.curves.params import curve_by_name
from repro.gpu.cluster import MultiGpuSystem
from repro.tune import Knob, coordinate_search, evaluate_config, msm_knobs, tune_msm

# -- synthetic cost tables -----------------------------------------------------

#: small knob spaces the search can fully explore within its budget
knob_space = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c", "d"]),
        st.lists(st.integers(0, 5), min_size=1, max_size=4, unique=True),
    ),
    min_size=1,
    max_size=3,
    unique_by=lambda kv: kv[0],
).map(lambda kvs: tuple(Knob(name, tuple(values)) for name, values in kvs))


def table_cost(table_seed: int):
    """A deterministic pseudo-random cost table over assignments."""

    def cost(assignment: dict) -> float:
        key = (table_seed, tuple(sorted(assignment.items())))
        return float(hash(key) % 10_000) / 100.0

    return cost


@given(knobs=knob_space, table_seed=st.integers(0, 2**16), seed=st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_never_worse_than_initial(knobs, table_seed, seed):
    initial = {k.name: k.values[0] for k in knobs}
    result = coordinate_search(knobs, initial, table_cost(table_seed), seed=seed)
    assert result.best_cost <= result.initial_cost
    assert result.improvement >= 1.0


@given(knobs=knob_space, table_seed=st.integers(0, 2**16), seed=st.integers(0, 2**16),
       budget=st.integers(1, 24))
@settings(max_examples=60, deadline=None)
def test_deterministic_per_seed_and_budget_capped(knobs, table_seed, seed, budget):
    initial = {k.name: k.values[0] for k in knobs}
    cost = table_cost(table_seed)
    first = coordinate_search(knobs, initial, cost, seed=seed, budget=budget)
    second = coordinate_search(knobs, initial, cost, seed=seed, budget=budget)
    assert first == second
    assert first.evaluations <= budget
    # the winner is the argmin over everything actually evaluated
    assert first.best_cost == min(c for _, c in first.history)


@given(knobs=knob_space, table_seed=st.integers(0, 2**16), seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_exhaustive_budget_finds_the_grid_optimum_single_knob(
    knobs, table_seed, seed
):
    # restrict to ONE knob: coordinate descent's first sweep IS brute force
    knob = knobs[0]
    cost = table_cost(table_seed)
    result = coordinate_search(
        (knob,), {knob.name: knob.values[0]}, cost, seed=seed, budget=len(knob.values)
    )
    brute = min(cost({knob.name: v}) for v in knob.values)
    assert result.best_cost == brute


# -- the real MSM knob space ---------------------------------------------------

GPUS = st.sampled_from([1, 2, 4])
LOG_N = st.sampled_from([14, 16, 18])


@given(gpus=GPUS, log_n=LOG_N, seed=st.integers(0, 99))
@settings(max_examples=8, deadline=None)
def test_tuned_config_is_valid_and_never_worse(gpus, log_n, seed):
    system = MultiGpuSystem(gpus)
    curve = curve_by_name("BN254")
    plan = tune_msm(system, curve, 1 << log_n, seed=seed, budget=24)
    # valid by construction: re-validating must not raise
    replace(plan.config)
    assert 1 <= plan.window_size <= 30
    assert plan.tuned_ms <= plan.default_ms
    assert plan.speedup >= 1.0
    # the reported scores are honest re-evaluations of the cost model
    assert plan.tuned_ms == pytest.approx(
        evaluate_config(system, curve, 1 << log_n, plan.config)
    )


@given(seed=st.integers(0, 99))
@settings(max_examples=5, deadline=None)
def test_tune_msm_deterministic_per_seed(seed):
    system = MultiGpuSystem(2)
    curve = curve_by_name("BN254")
    a = tune_msm(system, curve, 1 << 16, seed=seed, budget=24)
    b = tune_msm(system, curve, 1 << 16, seed=seed, budget=24)
    assert a.as_dict() == b.as_dict()
    assert a.config == b.config


@given(gpus=GPUS, log_n=LOG_N)
@settings(max_examples=6, deadline=None)
def test_window_knob_matches_brute_force_argmin(gpus, log_n):
    """On a window-only grid the tuner must return the literal argmin."""
    system = MultiGpuSystem(gpus)
    curve = curve_by_name("BLS12-381")
    n = 1 << log_n
    grid = (8, 10, 12, 14)
    base = DistMsmConfig()
    knob = Knob("window_size", grid)
    plan = tune_msm(
        system, curve, n, base=replace(base, window_size=grid[0]),
        knobs=(knob,), budget=len(grid),
    )
    brute = {
        s: evaluate_config(system, curve, n, replace(base, window_size=s))
        for s in grid
    }
    assert plan.tuned_ms == min(brute.values())
    assert brute[plan.config.window_size] == min(brute.values())


def test_default_grids_contain_the_base_values():
    base = DistMsmConfig(window_size=7, threads_per_bucket_min=3)
    for knob in msm_knobs(base):
        current = getattr(base, knob.name)
        assert any(current == v for v in knob.values)


def test_off_grid_initial_is_rejected():
    knob = Knob("x", (1, 2, 3))
    with pytest.raises(ValueError, match="not on its grid"):
        coordinate_search((knob,), {"x": 9}, lambda a: 0.0)


def test_infeasible_points_score_inf_not_crash():
    # s=16 hierarchical overflows shared memory: must not be elected
    system = MultiGpuSystem(2)
    curve = curve_by_name("BN254")
    cfg = DistMsmConfig(window_size=16, scatter="hierarchical")
    assert evaluate_config(system, curve, 1 << 16, cfg) == float("inf")
    plan = tune_msm(
        system, curve, 1 << 16,
        knobs=(Knob("window_size", (None, 12, 16)),), budget=8,
    )
    assert plan.tuned_ms < float("inf")
    assert plan.config.window_size != 16
