"""Differential tier: tuning changes the schedule, never the answer.

Analytic-default and tuned configs are executed through the bit-exact
:class:`~repro.core.backends.FunctionalBackend` on toy curves and the
resulting group elements compared for exact equality — on healthy runs
and under fault plans (a tuned plan must survive recovery identically).
The knob grids are chosen so the "tuned" config genuinely differs from
the default; a trivially-equal comparison would prove nothing.
"""

from dataclasses import replace

import pytest

from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm
from repro.curves.sampling import msm_instance
from repro.curves.toy import toy_curve
from repro.faults import FaultPlan, GpuFailure, Straggler, TransferError
from repro.gpu.cluster import MultiGpuSystem
from repro.tune import Knob, tune_msm, validate_tuned

TOY = toy_curve()
N = 96

#: grids that EXCLUDE the default values, so the winner must differ
FORCED_KNOBS = (
    Knob("window_size", (6, 8)),
    Knob("scatter", ("naive",)),
    Knob("threads_per_bucket_min", (1, 8)),
)


def tuned_config(system: MultiGpuSystem, seed: int = 0) -> DistMsmConfig:
    base = replace(
        DistMsmConfig(),
        window_size=6,
        scatter="naive",
        threads_per_bucket_min=1,
    )
    plan = tune_msm(system, TOY, N, base=base, knobs=FORCED_KNOBS, seed=seed, budget=12)
    return plan.config


class TestBitExactHealthy:
    @pytest.mark.parametrize("gpus", [1, 2, 4])
    def test_tuned_equals_default_result(self, gpus):
        system = MultiGpuSystem(gpus)
        default = DistMsmConfig()
        tuned = tuned_config(system)
        assert tuned != default  # the comparison must not be vacuous
        scalars, points = msm_instance(TOY, N, seed=3)
        ref = DistMsm(system, default).execute(scalars, points, TOY)
        got = DistMsm(system, tuned).execute(scalars, points, TOY)
        assert ref.point == got.point
        # the schedule DID change: both engines planned differently
        assert (ref.window_size, ref.times.as_dict()) != (
            got.window_size,
            got.times.as_dict(),
        )

    def test_validate_tuned_helper_accepts_sound_plans(self):
        system = MultiGpuSystem(2)
        assert validate_tuned(
            system, TOY, N, DistMsmConfig(), tuned_config(system), seed=5
        )

    def test_every_knob_point_on_the_forced_grid_is_bitexact(self):
        # exhaustive over the small grid: no winner can be unsound
        system = MultiGpuSystem(2)
        scalars, points = msm_instance(TOY, N, seed=7)
        ref = DistMsm(system).execute(scalars, points, TOY).point
        for s in (6, 8):
            for tpb in (1, 8):
                cfg = replace(
                    DistMsmConfig(),
                    window_size=s,
                    scatter="naive",
                    threads_per_bucket_min=tpb,
                )
                got = DistMsm(system, cfg).execute(scalars, points, TOY).point
                assert got == ref, f"s={s} tpb={tpb} changed the MSM result"


class TestBitExactUnderFaults:
    @pytest.mark.parametrize(
        "faults",
        [
            FaultPlan.of(GpuFailure(0.0, 1)),
            FaultPlan.of(Straggler(0, 3.0)),
            FaultPlan.of(GpuFailure(0.0, 3), Straggler(1, 2.0)),
            FaultPlan.of(TransferError(node=0, at_ms=0.01)),
        ],
        ids=["gpu-death", "straggler", "death+straggler", "transfer-error"],
    )
    def test_tuned_equals_default_under_fault_plan(self, faults):
        system = MultiGpuSystem(4)
        tuned = tuned_config(system)
        scalars, points = msm_instance(TOY, N, seed=11)
        ref = DistMsm(system).execute(scalars, points, TOY, faults=faults)
        got = DistMsm(system, tuned).execute(scalars, points, TOY, faults=faults)
        assert ref.point == got.point

    def test_fault_free_and_faulted_tuned_runs_agree(self):
        # recovery must not change the tuned plan's answer either
        system = MultiGpuSystem(4)
        tuned = tuned_config(system)
        scalars, points = msm_instance(TOY, N, seed=13)
        engine = DistMsm(system, tuned)
        healthy = engine.execute(scalars, points, TOY)
        faulted = engine.execute(
            scalars, points, TOY, faults=FaultPlan.of(GpuFailure(0.0, 2))
        )
        assert healthy.point == faulted.point
