"""Edge-case tests for the unified atomic contention-model validation."""

import pytest

from repro.gpu.atomics import (
    expected_conflicts,
    global_serialization_ms,
    scatter_atomic_time_ms,
    validate_contention,
)
from repro.gpu.specs import NVIDIA_A100


class TestValidateContention:
    def test_accepts_minimal_valid_inputs(self):
        validate_contention(1)
        validate_contention(1, active_threads=0, global_atomics=0.0, shared_atomics=0.0)

    def test_rejects_zero_addresses(self):
        with pytest.raises(ValueError, match="num_addresses"):
            validate_contention(0)

    def test_rejects_negative_addresses(self):
        with pytest.raises(ValueError, match="num_addresses"):
            validate_contention(-4)

    def test_rejects_negative_threads(self):
        with pytest.raises(ValueError, match="active_threads"):
            validate_contention(16, active_threads=-1)

    def test_rejects_negative_atomic_counts(self):
        with pytest.raises(ValueError, match="global_atomics"):
            validate_contention(16, global_atomics=-0.5)
        with pytest.raises(ValueError, match="shared_atomics"):
            validate_contention(16, shared_atomics=-1.0)

    def test_rejects_zero_threads_per_block(self):
        with pytest.raises(ValueError, match="threads_per_block"):
            validate_contention(16, threads_per_block=0)


class TestEntryPoints:
    def test_expected_conflicts_zero_threads(self):
        assert expected_conflicts(0, 1024) == 0.0

    def test_expected_conflicts_rejects_zero_addresses(self):
        with pytest.raises(ValueError):
            expected_conflicts(1024, 0)

    def test_serialization_zero_atomics_is_free(self):
        assert global_serialization_ms(0.0, 256) == 0.0

    def test_serialization_rejects_negative_atomics(self):
        with pytest.raises(ValueError):
            global_serialization_ms(-1.0, 256)

    def test_scatter_time_rejects_zero_buckets(self):
        with pytest.raises(ValueError, match="num_addresses"):
            scatter_atomic_time_ms(
                NVIDIA_A100,
                global_atomics=1e6,
                shared_atomics=1e6,
                active_threads=1 << 16,
                num_buckets=0,
            )

    def test_scatter_time_rejects_zero_block_size(self):
        with pytest.raises(ValueError, match="threads_per_block"):
            scatter_atomic_time_ms(
                NVIDIA_A100,
                global_atomics=1e6,
                shared_atomics=1e6,
                active_threads=1 << 16,
                num_buckets=256,
                threads_per_block=0,
            )

    def test_scatter_time_zero_work_is_free(self):
        ms = scatter_atomic_time_ms(
            NVIDIA_A100,
            global_atomics=0.0,
            shared_atomics=0.0,
            active_threads=0,
            num_buckets=256,
        )
        assert ms == 0.0

    def test_more_buckets_never_slower(self):
        few = scatter_atomic_time_ms(NVIDIA_A100, 1e7, 1e7, 1 << 20, 64)
        many = scatter_atomic_time_ms(NVIDIA_A100, 1e7, 1e7, 1 << 20, 4096)
        assert many <= few
