"""Atomics contention model, event counters, devices and the cluster."""

import pytest

from repro.gpu.atomics import (
    expected_conflicts,
    global_serialization_ms,
    scatter_atomic_time_ms,
)
from repro.gpu.cluster import MultiGpuSystem
from repro.gpu.counters import EventCounters
from repro.gpu.device import SharedMemoryExceeded, SimulatedGpu
from repro.gpu.specs import NVIDIA_A100


class TestAtomicsModel:
    def test_conflicts_scale_with_thread_count(self):
        assert expected_conflicts(1024, 256) == 4.0

    def test_conflicts_validate_inputs(self):
        with pytest.raises(ValueError):
            expected_conflicts(10, 0)
        with pytest.raises(ValueError):
            expected_conflicts(-1, 10)

    def test_serialization_grows_as_buckets_shrink(self):
        """The paper's core scatter observation: fewer buckets -> more
        concurrent writers per counter -> slower atomics."""
        n = 1 << 26
        t_small_s = global_serialization_ms(n, 1 << 9)
        t_large_s = global_serialization_ms(n, 1 << 16)
        assert t_small_s > 100 * t_large_s

    def test_scatter_time_positive_and_monotonic_in_ops(self):
        t1 = scatter_atomic_time_ms(NVIDIA_A100, 10_000, 0, 1 << 16, 1 << 11)
        t2 = scatter_atomic_time_ms(NVIDIA_A100, 1_000_000, 0, 1 << 16, 1 << 11)
        assert 0 < t1 < t2

    def test_shared_atomics_cheaper_than_global(self):
        kwargs = dict(active_threads=1 << 16, num_buckets=1 << 11)
        t_global = scatter_atomic_time_ms(NVIDIA_A100, 1 << 20, 0, **kwargs)
        t_shared = scatter_atomic_time_ms(NVIDIA_A100, 0, 1 << 20, **kwargs)
        assert t_shared < t_global


class TestEventCounters:
    def test_merge(self):
        a = EventCounters(pacc=1, global_atomics=5)
        b = EventCounters(pacc=2, padd=7)
        a.merge(b)
        assert a.pacc == 3
        assert a.padd == 7
        assert a.global_atomics == 5

    def test_merge_returns_self(self):
        a = EventCounters()
        assert a.merge(EventCounters(pdbl=1)) is a

    def test_scaled(self):
        c = EventCounters(pacc=100, padd=10)
        half = c.scaled(0.5)
        assert half.pacc == 50
        assert half.padd == 5
        assert c.pacc == 100  # original untouched

    def test_gpu_ec_ops(self):
        assert EventCounters(pacc=1, padd=2, pdbl=3).gpu_ec_ops == 6

    def test_repr_shows_only_nonzero(self):
        assert "pacc" in repr(EventCounters(pacc=5))
        assert "padd" not in repr(EventCounters(pacc=5))


class TestSimulatedGpu:
    def test_global_atomic_counts_and_returns_old(self):
        gpu = SimulatedGpu(NVIDIA_A100)
        arr = [0, 0]
        assert gpu.global_atomic_add(arr, 1, 5) == 0
        assert gpu.global_atomic_add(arr, 1, 2) == 5
        assert arr[1] == 7
        assert gpu.counters.global_atomics == 2

    def test_block_shared_memory_capacity(self):
        gpu = SimulatedGpu(NVIDIA_A100, scatter_shm_bytes=1024)
        block = gpu.new_block(0, 32)
        block.shared.alloc_words(200)
        with pytest.raises(SharedMemoryExceeded):
            block.shared.alloc_words(200)

    def test_block_size_must_be_warp_multiple(self):
        gpu = SimulatedGpu(NVIDIA_A100)
        with pytest.raises(ValueError):
            gpu.new_block(0, 100)

    def test_shared_atomic_inc(self):
        gpu = SimulatedGpu(NVIDIA_A100)
        block = gpu.new_block(0, 32)
        arr = block.shared.alloc_words(4)
        assert block.shared.atomic_inc(arr, 2) == 0
        assert block.shared.atomic_inc(arr, 2) == 1
        assert gpu.counters.shared_atomics == 2

    def test_prefix_sum(self):
        gpu = SimulatedGpu(NVIDIA_A100)
        block = gpu.new_block(0, 32)
        assert block.parallel_prefix_sum([1, 2, 3]) == [0, 1, 3]
        assert gpu.counters.prefix_sums == 1

    def test_launch_counted(self):
        gpu = SimulatedGpu(NVIDIA_A100)
        gpu.launch()
        assert gpu.counters.kernel_launches == 1


class TestCluster:
    def test_rejects_zero_gpus(self):
        with pytest.raises(ValueError):
            MultiGpuSystem(0)

    def test_node_counting(self):
        assert MultiGpuSystem(1).nodes == 1
        assert MultiGpuSystem(8).nodes == 1
        assert MultiGpuSystem(9).nodes == 2
        assert MultiGpuSystem(32).nodes == 4

    def test_counter_aggregation(self):
        system = MultiGpuSystem(2)
        system.gpus[0].counters.pacc = 3
        system.gpus[1].counters.pacc = 4
        assert system.total_counters().pacc == 7
        system.reset_counters()
        assert system.total_counters().pacc == 0

    def test_cpu_rate_uses_paper_ratio(self):
        system = MultiGpuSystem(1)
        from repro.gpu.timing import reference_gpu_padd_rate

        expected = reference_gpu_padd_rate(system.spec) / 128.0
        assert system.cpu_padd_rate() == pytest.approx(expected)

    def test_repr(self):
        assert "A100" in repr(MultiGpuSystem(4))
