"""GPU specs, occupancy rules, and the efficiency mapping."""

import pytest

from repro.gpu.occupancy import occupancy_for
from repro.gpu.specs import (
    AMD_6900XT,
    DGX_A100,
    NVIDIA_A100,
    RTX_4090,
    spec_by_name,
)
from repro.gpu.tensor_core import mma_tile_ops, tc_advantage, tc_available
from repro.gpu.timing import occupancy_efficiency


class TestSpecs:
    def test_a100_paper_figures(self):
        assert NVIDIA_A100.int32_tops == 19.5
        assert NVIDIA_A100.tc_int8_tops == 624.0
        # paper: "624 TOPS, equivalent to 156 int32 TOPS ... 8x"
        assert NVIDIA_A100.tc_int32_equiv_tops == 156.0
        assert tc_advantage(NVIDIA_A100) == pytest.approx(8.0)

    def test_rtx4090_int_advantage(self):
        # paper: RTX4090 delivers 2.12x the A100's CUDA int throughput
        assert RTX_4090.int32_tops / NVIDIA_A100.int32_tops == pytest.approx(2.12, rel=0.01)

    def test_amd_has_no_usable_tc(self):
        assert not tc_available(AMD_6900XT)
        assert tc_advantage(AMD_6900XT) == 0.0
        assert AMD_6900XT.platform == "hip"

    def test_concurrent_threads(self):
        assert NVIDIA_A100.concurrent_threads == 108 * 2048

    def test_dgx_platform(self):
        assert DGX_A100["gpus_per_node"] == 8
        assert DGX_A100["gpu"] is NVIDIA_A100

    def test_spec_lookup(self):
        assert spec_by_name("a100") is NVIDIA_A100
        assert spec_by_name("6900") is AMD_6900XT
        with pytest.raises(KeyError):
            spec_by_name("H100")

    def test_mma_tile(self):
        assert mma_tile_ops() == 16 * 8 * 32


class TestOccupancy:
    def test_paper_register_examples(self):
        """132 regs (BLS12-377 straightforward PADD) vs 60 (spilled PACC)."""
        low = occupancy_for(NVIDIA_A100, 132)
        high = occupancy_for(NVIDIA_A100, 60)
        assert low.occupancy < high.occupancy
        assert low.limited_by == "registers"

    def test_register_maths(self):
        res = occupancy_for(NVIDIA_A100, 64)
        # 65536 / 64 = 1024 threads, warp-aligned
        assert res.threads_per_sm == 1024
        assert res.occupancy == pytest.approx(0.5)

    def test_small_kernels_hit_thread_limit(self):
        res = occupancy_for(NVIDIA_A100, 16)
        assert res.limited_by == "threads"
        assert res.occupancy == 1.0

    def test_shared_memory_limit(self):
        res = occupancy_for(
            NVIDIA_A100, 32, shm_per_block_bytes=80 * 1024, threads_per_block=256
        )
        assert res.limited_by == "shared_memory"
        # 164 KB / 80 KB -> 2 blocks -> 512 threads
        assert res.threads_per_sm == 512

    def test_register_cap_flags_forced_spill(self):
        res = occupancy_for(NVIDIA_A100, 264)  # MNT4753 straightforward PADD
        assert res.forced_local_spill
        capped = occupancy_for(NVIDIA_A100, 255)
        assert res.threads_per_sm == capped.threads_per_sm

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            occupancy_for(NVIDIA_A100, 0)
        with pytest.raises(ValueError):
            occupancy_for(NVIDIA_A100, 64, threads_per_block=100)  # not warp multiple


class TestEfficiencyMapping:
    def test_full_occupancy_is_unity(self):
        assert occupancy_efficiency(1.0) == pytest.approx(1.0)

    def test_monotonic(self):
        values = [occupancy_efficiency(x / 10) for x in range(1, 11)]
        assert values == sorted(values)

    def test_saturating(self):
        """Going 0.5 -> 1.0 helps much less than 0.05 -> 0.1."""
        low_gain = occupancy_efficiency(0.10) / occupancy_efficiency(0.05)
        high_gain = occupancy_efficiency(1.0) / occupancy_efficiency(0.5)
        assert low_gain > high_gain

    def test_reg_cap_penalty(self):
        clean = occupancy_efficiency(0.11)
        spilled = occupancy_efficiency(0.11, forced_spill=True, regs=264, cap=255)
        assert spilled < clean

    def test_occupancy_bounds_checked(self):
        with pytest.raises(ValueError):
            occupancy_efficiency(0.0)
        with pytest.raises(ValueError):
            occupancy_efficiency(1.5)

    def test_pacc_occupancy_gain_mnt4753(self):
        """Paper: PACC's register drop gives MNT4753 a 27.3% throughput
        boost (264 -> 216 registers); reproduce within tolerance."""
        from repro.gpu.occupancy import occupancy_for

        def eff(regs):
            occ = occupancy_for(NVIDIA_A100, regs)
            return occupancy_efficiency(
                occ.occupancy, occ.forced_local_spill, regs, 255
            )

        gain = eff(216) / eff(264)
        assert gain == pytest.approx(1.273, rel=0.10)

    def test_pacc_occupancy_gain_small_curves(self):
        """Paper: the same drop yields only 6.27% on 12-limb curves."""
        def eff(regs):
            occ = occupancy_for(NVIDIA_A100, regs)
            return occupancy_efficiency(occ.occupancy)

        gain = eff(108) / eff(132)
        assert gain == pytest.approx(1.0627, rel=0.05)
