"""Device-memory footprint model."""

import pytest

from repro.core.config import DistMsmConfig
from repro.curves.params import curve_by_name
from repro.gpu.memory import (
    DEVICE_MEMORY_BYTES,
    affine_point_bytes,
    max_feasible_log_n,
    msm_footprint,
    xyzz_point_bytes,
)
from repro.gpu.specs import AMD_6900XT, NVIDIA_A100, RTX_4090

BN254 = curve_by_name("BN254")
BLS377 = curve_by_name("BLS12-377")
MNT = curve_by_name("MNT4753")


class TestPointSizes:
    def test_bn254(self):
        assert affine_point_bytes(BN254) == 64
        assert xyzz_point_bytes(BN254) == 128

    def test_mnt4753(self):
        assert affine_point_bytes(MNT) == 192


class TestFootprint:
    def test_inputs_validated(self):
        with pytest.raises(ValueError):
            msm_footprint(BN254, 0)
        with pytest.raises(ValueError):
            msm_footprint(BN254, 16, num_gpus=0)

    def test_paper_scale_fits_a100(self):
        """The paper runs N=2^28 on 80 GB A100s — it must fit."""
        for curve in (BN254, BLS377, MNT):
            fp = msm_footprint(curve, 1 << 28, DistMsmConfig(window_size=14))
            assert fp.fits(NVIDIA_A100), curve.name

    def test_precompute_multiplies_point_storage(self):
        cfg = DistMsmConfig(window_size=16, precompute=True, scatter="naive")
        plain = msm_footprint(BLS377, 1 << 26, DistMsmConfig(window_size=16))
        pre = msm_footprint(BLS377, 1 << 26, cfg, window_size=16)
        assert pre.points_bytes > 10 * plain.points_bytes

    def test_precompute_at_753_bits_overflows(self):
        """The capacity wall behind the precompute trade-off: 2^28 753-bit
        points with full tables do not fit even in 80 GB."""
        cfg = DistMsmConfig(window_size=16, precompute=True, scatter="naive")
        fp = msm_footprint(MNT, 1 << 28, cfg, window_size=16)
        assert not fp.fits(NVIDIA_A100)

    def test_ndim_slices_points(self):
        one = msm_footprint(BN254, 1 << 26, DistMsmConfig(multi_gpu="ndim", window_size=14), num_gpus=1)
        eight = msm_footprint(BN254, 1 << 26, DistMsmConfig(multi_gpu="ndim", window_size=14), num_gpus=8)
        assert eight.points_bytes == pytest.approx(one.points_bytes / 8, rel=0.01)

    def test_window_strategies_replicate_points(self):
        cfg = DistMsmConfig(window_size=14)
        one = msm_footprint(BN254, 1 << 26, cfg, num_gpus=1)
        eight = msm_footprint(BN254, 1 << 26, cfg, num_gpus=8)
        assert eight.points_bytes == one.points_bytes

    def test_unknown_gpu_capacity(self):
        from dataclasses import replace

        fp = msm_footprint(BN254, 1 << 20)
        with pytest.raises(KeyError):
            fp.fits(replace(NVIDIA_A100, name="H100"))

    def test_capacity_table_covers_evaluated_gpus(self):
        for spec in (NVIDIA_A100, RTX_4090, AMD_6900XT):
            assert spec.name in DEVICE_MEMORY_BYTES


class TestFeasibility:
    def test_a100_handles_at_least_2_28_bn254(self):
        assert max_feasible_log_n(BN254, DistMsmConfig(window_size=14)) >= 28

    def test_rtx_smaller_than_a100(self):
        a100 = max_feasible_log_n(MNT, DistMsmConfig(window_size=14), spec=NVIDIA_A100)
        rtx = max_feasible_log_n(MNT, DistMsmConfig(window_size=14), spec=RTX_4090)
        assert rtx < a100
