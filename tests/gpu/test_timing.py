"""The analytic timing model: EC op costs, rates, platform effects."""

import pytest

from repro.curves.params import curve_by_name
from repro.gpu.specs import AMD_6900XT, NVIDIA_A100, RTX_4090
from repro.gpu.timing import (
    cpu_ec_time_ms,
    ec_op_cost,
    ec_op_rate,
    ec_ops_time_ms,
    host_transfer_time_ms,
    kernel_occupancy,
    launch_overhead_ms,
    memory_read_time_ms,
    reference_gpu_padd_rate,
    sustained_int32_rate,
)
from repro.kernels.padd_kernel import KernelDescriptor, KernelOptimisations

BN254 = curve_by_name("BN254")
MNT = curve_by_name("MNT4753")
BLS377 = curve_by_name("BLS12-377")

FULL = KernelOptimisations.all()
NONE = KernelOptimisations.none()


class TestEcOpCost:
    def test_pacc_cheaper_than_padd(self):
        desc = KernelDescriptor(BN254, FULL)
        pacc = ec_op_cost(desc, "pacc", NVIDIA_A100)
        padd = ec_op_cost(desc, "padd", NVIDIA_A100)
        assert pacc.cuda_instructions < padd.cuda_instructions

    def test_tc_moves_work_off_cuda(self):
        with_tc = KernelDescriptor(BN254, FULL)
        without = KernelDescriptor(
            BN254, KernelOptimisations(True, True, True, False, False)
        )
        c_tc = ec_op_cost(with_tc, "pacc", NVIDIA_A100)
        c_no = ec_op_cost(without, "pacc", NVIDIA_A100)
        assert c_tc.cuda_instructions < c_no.cuda_instructions
        assert c_tc.tc_int8_ops > 0
        assert c_no.tc_int8_ops == 0

    def test_no_tc_offload_on_amd(self):
        desc = KernelDescriptor(BN254, FULL)
        cost = ec_op_cost(desc, "pacc", AMD_6900XT)
        assert cost.tc_int8_ops == 0

    def test_naive_tc_pays_fragment_traffic(self):
        naive = KernelDescriptor(BN254, KernelOptimisations(True, True, True, True, False))
        compact = KernelDescriptor(BN254, FULL)
        t_naive = ec_op_cost(naive, "pacc", NVIDIA_A100).device_traffic_bytes
        t_compact = ec_op_cost(compact, "pacc", NVIDIA_A100).device_traffic_bytes
        assert t_naive > t_compact

    def test_spill_traffic_present_when_spilling(self):
        spilling = KernelDescriptor(BN254, KernelOptimisations(True, True, True))
        plain = KernelDescriptor(BN254, KernelOptimisations(True, True))
        assert ec_op_cost(spilling, "pacc", NVIDIA_A100).shm_traffic_bytes > 0
        assert ec_op_cost(plain, "pacc", NVIDIA_A100).shm_traffic_bytes == 0


class TestRates:
    def test_mnt_slower_per_op(self):
        """Paper: DistMSM's PADD kernel takes ~5.2x longer on MNT4753 than
        on BLS12-377 (4x the arithmetic + register pressure)."""
        mnt_rate = ec_op_rate(KernelDescriptor(MNT, FULL), "pacc", NVIDIA_A100)
        bls_rate = ec_op_rate(KernelDescriptor(BLS377, FULL), "pacc", NVIDIA_A100)
        ratio = bls_rate / mnt_rate
        assert 4.0 < ratio < 6.5

    def test_hip_platform_penalty(self):
        """HIP-compiled kernels pay the toolchain penalty on AMD; OpenCL
        kernels on the same GPU do not (paper Fig. 9's asymmetry)."""
        desc = KernelDescriptor(BN254, NONE)
        hip_rate = sustained_int32_rate(desc, "pacc", AMD_6900XT, api="hip")
        opencl_rate = sustained_int32_rate(desc, "pacc", AMD_6900XT, api="opencl")
        assert hip_rate < opencl_rate
        # on a CUDA platform the HIP path is native — no penalty
        cuda_hip = sustained_int32_rate(desc, "pacc", NVIDIA_A100, api="hip")
        cuda_native = sustained_int32_rate(desc, "pacc", NVIDIA_A100, api="cuda")
        assert cuda_hip == cuda_native

    def test_underfilled_gpu_loses_rate(self):
        desc = KernelDescriptor(BN254, FULL)
        full = sustained_int32_rate(desc, "pacc", NVIDIA_A100)
        starved = sustained_int32_rate(desc, "pacc", NVIDIA_A100, active_threads=1000)
        assert starved < full / 10

    def test_rtx4090_faster_than_a100(self):
        """Paper Fig. 9: RTX4090's higher int throughput wins for MSM."""
        desc = KernelDescriptor(BN254, FULL)
        assert ec_op_rate(desc, "pacc", RTX_4090) > ec_op_rate(desc, "pacc", NVIDIA_A100)

    def test_reference_rate_positive(self):
        assert reference_gpu_padd_rate(NVIDIA_A100) > 1e8


class TestTimeHelpers:
    def test_zero_count_zero_time(self):
        desc = KernelDescriptor(BN254, FULL)
        assert ec_ops_time_ms(desc, "pacc", 0, NVIDIA_A100) == 0.0

    def test_time_linear_in_count(self):
        desc = KernelDescriptor(BN254, FULL)
        t1 = ec_ops_time_ms(desc, "pacc", 1e6, NVIDIA_A100)
        t2 = ec_ops_time_ms(desc, "pacc", 2e6, NVIDIA_A100)
        assert t2 == pytest.approx(2 * t1)

    def test_cpu_time(self):
        assert cpu_ec_time_ms(1000, 0, 1e6) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            cpu_ec_time_ms(1, 1, 0)

    def test_transfer_and_launch(self):
        assert host_transfer_time_ms(25e9, NVIDIA_A100) == pytest.approx(1000.0)
        assert launch_overhead_ms(10, NVIDIA_A100) == pytest.approx(0.12)
        assert memory_read_time_ms(NVIDIA_A100.mem_bw_gbps * 1e9, NVIDIA_A100) == pytest.approx(1000.0)

    def test_occupancy_includes_spill_shm(self):
        spilling = KernelDescriptor(BLS377, FULL)
        occ = kernel_occupancy(spilling, "pacc", NVIDIA_A100)
        assert occ.occupancy > 0
