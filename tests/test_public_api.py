"""Top-level package API and the command-line interface."""

import pytest

import repro
from repro.__main__ import main


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_msm_convenience(self):
        from repro.curves.sampling import msm_instance
        from repro.msm.naive import naive_msm

        curve = repro.curve_by_name("BN254")
        scalars, points = msm_instance(curve, 8, seed=3)
        assert repro.msm(scalars, points, curve) == naive_msm(scalars, points, curve)

    def test_msm_defaults_to_bn254(self):
        from repro.curves.sampling import msm_instance

        curve = repro.curve_by_name("BN254")
        scalars, points = msm_instance(curve, 4, seed=4)
        assert not repro.msm(scalars, points).infinity


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out
        assert "fig11" in out

    def test_unknown_experiment(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_msm_command(self, capsys):
        assert main(["msm", "--curve", "BN254", "--log-n", "18", "--gpus", "4"]) == 0
        out = capsys.readouterr().out
        assert "BN254" in out
        assert "bucket_sum" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "MNT4753" in capsys.readouterr().out

    def test_fig11_with_size(self, capsys):
        assert main(["fig11", "--log-n", "22"]) == 0
        assert "FAIL" in capsys.readouterr().out

    @pytest.mark.slow
    def test_table3_runs(self, capsys):
        assert main(["table3"]) == 0
        assert "average multi-GPU speedup" in capsys.readouterr().out
