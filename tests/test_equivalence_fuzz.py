"""Cross-implementation fuzzing: every MSM path must agree, always.

One hypothesis-driven suite that throws randomly shaped instances at every
MSM implementation in the repository — serial Pippenger (both recodings),
precomputation, batched-affine, the DistMSM engine under random
configurations, and the baselines — and insists they all equal the naive
reference.  This is the repository's strongest single invariant.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm
from repro.curves.sampling import sample_points
from repro.gpu.cluster import MultiGpuSystem
from repro.msm.batch_affine import msm_batch_affine
from repro.msm.naive import naive_msm
from repro.msm.pippenger import pippenger_msm
from repro.msm.precompute import msm_with_precompute, precompute_tables

from tests.conftest import TOY_CURVE

# pools of deterministic points, reused across hypothesis examples
POINTS = sample_points(TOY_CURVE, 64, seed=123)

instance = st.builds(
    lambda n, seed: (n, seed),
    st.integers(1, 48),
    st.integers(0, 10_000),
)


def _make_instance(n, seed):
    import random

    rng = random.Random(seed)
    scalars = [rng.randrange(TOY_CURVE.r) for _ in range(n)]
    points = [POINTS[rng.randrange(len(POINTS))] for _ in range(n)]
    return scalars, points


@given(instance, st.integers(2, 6), st.booleans())
@settings(max_examples=40, deadline=None)
def test_pippenger_always_matches_naive(inst, window, signed):
    scalars, points = _make_instance(*inst)
    expected = naive_msm(scalars, points, TOY_CURVE)
    assert pippenger_msm(scalars, points, TOY_CURVE, window, signed) == expected


@given(instance, st.integers(2, 5))
@settings(max_examples=20, deadline=None)
def test_batch_affine_always_matches_naive(inst, window):
    scalars, points = _make_instance(*inst)
    expected = naive_msm(scalars, points, TOY_CURVE)
    assert msm_batch_affine(scalars, points, TOY_CURVE, window) == expected


@given(instance, st.integers(2, 5), st.booleans())
@settings(max_examples=12, deadline=None)
def test_precompute_always_matches_naive(inst, window, signed):
    scalars, points = _make_instance(*inst)
    expected = naive_msm(scalars, points, TOY_CURVE)
    from repro.curves.scalar import num_windows

    windows = num_windows(TOY_CURVE.scalar_bits, window) + 1
    tables = precompute_tables(points, TOY_CURVE, window, windows)
    got = msm_with_precompute(scalars, tables, TOY_CURVE, window, signed)
    assert got == expected


engine_config = st.builds(
    DistMsmConfig,
    window_size=st.integers(3, 6),
    scatter=st.sampled_from(["hierarchical", "naive"]),
    bucket_reduce_on_cpu=st.booleans(),
    multi_gpu=st.sampled_from(["bucket-split", "windows", "ndim"]),
    signed_digits=st.booleans(),
    precompute=st.booleans(),
    gpu_reduce=st.sampled_from(["scan", "simd"]),
    threads_per_block=st.just(32),
    points_per_thread=st.just(4),
)


@given(instance, engine_config, st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_engine_always_matches_naive(inst, config, gpus):
    scalars, points = _make_instance(*inst)
    expected = naive_msm(scalars, points, TOY_CURVE)
    engine = DistMsm(MultiGpuSystem(gpus), config)
    assert engine.execute(scalars, points, TOY_CURVE).point == expected


@given(instance, st.integers(1, 4))
@settings(max_examples=10, deadline=None)
def test_baselines_always_match_naive(inst, gpus):
    """Every Table 2 baseline configuration computes correct results."""
    from dataclasses import replace

    from repro.baselines.registry import all_baselines
    from repro.curves.params import curve_by_name

    curve = curve_by_name("BN254")
    import random

    rng = random.Random(inst[1])
    n = min(inst[0], 6)  # keep BN254 instances tiny
    from repro.curves.sampling import sample_points as sp

    points = sp(curve, n, seed=inst[1] % 7)
    scalars = [rng.randrange(1 << 32) for _ in range(n)]
    expected = naive_msm(scalars, points, curve)
    system = MultiGpuSystem(gpus)
    for baseline in all_baselines():
        if not baseline.supports(curve):
            continue
        small = replace(baseline, config=replace(baseline.config, window_size=5))
        assert small.execute(scalars, points, curve, system).point == expected
