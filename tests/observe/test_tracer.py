"""Tracer core: span collection, stacks, aggregation, the null tracer."""

import pytest

from repro.observe import NULL_TRACER, NullTracer, Span, Tracer


class TestSpan:
    def test_duration(self):
        assert Span("t", "gpu0", 1.0, 3.5).duration_ms == 2.5

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Span("t", "gpu0", 3.0, 1.0)

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            Span("t", "gpu0", 0.0, float("inf"))


class TestTracer:
    def test_add_span_collects(self):
        t = Tracer()
        t.add_span("a", "gpu0", 0.0, 1.0, cat="scatter")
        t.add_span("b", "gpu1", 0.5, 2.0)
        assert [s.name for s in t.spans] == ["a", "b"]
        assert t.tracks == ["gpu0", "gpu1"]
        assert t.makespan_ms() == 2.0

    def test_begin_end_stack(self):
        t = Tracer()
        t.begin("outer", "cpu", 0.0, cat="request")
        t.begin("inner", "cpu", 1.0)
        inner = t.end("cpu", 2.0)
        outer = t.end("cpu", 5.0)
        assert (inner.name, inner.start_ms, inner.end_ms) == ("inner", 1.0, 2.0)
        assert (outer.name, outer.start_ms, outer.end_ms) == ("outer", 0.0, 5.0)
        assert t.open_spans() == []

    def test_end_without_begin_raises(self):
        with pytest.raises(ValueError):
            Tracer().end("cpu", 1.0)

    def test_open_spans_reported(self):
        t = Tracer()
        t.begin("leak", "gpu0", 0.0)
        assert t.open_spans() == [("gpu0", "leak")]

    def test_busy_and_category_totals(self):
        t = Tracer()
        t.add_span("a", "gpu0", 0.0, 1.0, cat="scatter")
        t.add_span("b", "gpu0", 1.0, 4.0, cat="bucket-sum")
        t.add_span("c", "gpu1", 0.0, 2.0, cat="scatter")
        assert t.busy_ms() == {"gpu0": 4.0, "gpu1": 2.0}
        assert t.category_ms() == {"scatter": 3.0, "bucket-sum": 3.0}

    def test_instants_and_counters(self):
        t = Tracer()
        t.instant("fault", "gpu0", 3.0, cat="fault", args={"reason": "killed"})
        t.counter("queue_depth", 1.0, 4.0)
        assert t.instants[0].args == {"reason": "killed"}
        assert t.counters[0].value == 4.0
        # instants extend the makespan even with no spans
        assert t.makespan_ms() == 3.0

    def test_annotate_merges_meta(self):
        t = Tracer()
        t.annotate(curve="BLS12-381", gpus=2)
        t.annotate(gpus=4)
        assert t.meta == {"curve": "BLS12-381", "gpus": 4}

    def test_empty_makespan_is_zero(self):
        assert Tracer().makespan_ms() == 0.0

    def test_summary_mentions_phases(self):
        t = Tracer("demo")
        t.add_span("a", "gpu0", 0.0, 1.0, cat="scatter")
        t.add_span("b", "gpu0", 1.0, 2.0, cat="transfer")
        text = t.summary()
        assert "demo" in text
        assert "scatter" in text and "transfer" in text
        assert "gpu0" in text


class TestNullTracer:
    def test_every_emission_is_a_noop(self):
        t = NullTracer()
        assert not t.enabled
        t.add_span("a", "gpu0", 0.0, 1.0)
        t.begin("b", "gpu0", 0.0)
        t.end("gpu0", 1.0)
        t.instant("c", "gpu0", 0.5)
        t.counter("d", 0.0, 1.0)
        t.annotate(x=1)
        assert t.spans == [] and t.instants == [] and t.counters == []
        assert t.meta == {} and t.open_spans() == []

    def test_shared_singleton_disabled(self):
        assert not NULL_TRACER.enabled
