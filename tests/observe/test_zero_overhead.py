"""Tracing disabled must cost nothing: no spans, no dicts, same timelines."""

import pytest

import repro.observe.tracer as tracer_mod
from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm
from repro.engine.resources import GPU_COMPUTE, Resource
from repro.engine.timeline import Task, simulate
from repro.gpu.cluster import MultiGpuSystem
from repro.observe import NULL_TRACER, Tracer


class _Exploding:
    """Stands in for Span: any construction proves the hot path allocated."""

    def __init__(self, *args, **kwargs):
        raise AssertionError("tracing object allocated with tracing disabled")


@pytest.fixture
def no_span_allocations(monkeypatch):
    """Make every Span construction fail for the duration of the test."""
    monkeypatch.setattr(tracer_mod, "Span", _Exploding)


def _tasks():
    gpu0 = Resource("gpu0", GPU_COMPUTE, 0)
    gpu1 = Resource("gpu1", GPU_COMPUTE, 1)
    return (
        Task("a:g0", gpu0, 2.0),
        Task("a:g1", gpu1, 3.0),
        Task("b:g0", gpu0, 1.0, deps=("a:g0", "a:g1")),
    )


class TestZeroOverhead:
    def test_simulate_without_tracer_allocates_nothing(self, no_span_allocations):
        timeline = simulate(_tasks())
        assert timeline.total_ms == 4.0

    def test_simulate_with_null_tracer_allocates_nothing(self, no_span_allocations):
        timeline = simulate(_tasks(), tracer=NULL_TRACER)
        assert timeline.total_ms == 4.0
        assert NULL_TRACER.spans == []

    def test_estimate_without_trace_allocates_nothing(
        self, no_span_allocations, bn254
    ):
        engine = DistMsm(MultiGpuSystem(2), DistMsmConfig(window_size=10))
        result = engine.estimate(bn254, 1 << 14)
        assert result.time_ms > 0

    def test_serve_without_trace_allocates_nothing(self, no_span_allocations, bn254):
        from repro.serve import MsmProofServer, ServeConfig, poisson_trace

        server = MsmProofServer(
            MultiGpuSystem(2), DistMsmConfig(window_size=10), ServeConfig()
        )
        served = server.serve(
            poisson_trace(bn254, count=2, rate_rps=100.0, seed=3, sizes=1 << 12)
        )
        assert served.metrics.served == 2

    def test_tracing_does_not_change_the_timeline(self, bn254):
        """The trace is a transcription; the schedule must be identical."""
        engine = DistMsm(MultiGpuSystem(2), DistMsmConfig(window_size=10))
        plain = engine.estimate(bn254, 1 << 14)
        traced = engine.estimate(bn254, 1 << 14, trace=Tracer())
        assert plain.time_ms == traced.time_ms
        assert plain.timeline.spans.keys() == traced.timeline.spans.keys()
        for name, span in plain.timeline.spans.items():
            other = traced.timeline.spans[name]
            assert (span.start_ms, span.end_ms) == (other.start_ms, other.end_ms)
