"""Differential: functional and analytic runs build the SAME task DAG.

Estimate-mode traces are only trustworthy stand-ins for execute-mode ones
if both paths emit identical graph *structure* (task names, dependency
edges, resources, stages) — durations legitimately differ (measured vs
closed-form counts), but the shape may not.
"""

import pytest

from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm
from repro.curves.sampling import msm_instance
from repro.engine.faults import FaultPlan, GpuFailure
from repro.gpu.cluster import MultiGpuSystem
from repro.observe import Tracer


def _dag_shape(timeline):
    """The structural fingerprint of a timeline's task graph."""
    return sorted(
        (task.name, tuple(sorted(task.deps)), task.resource.name, task.stage)
        for task in timeline.tasks
    )


@pytest.mark.parametrize("gpus", [1, 2, 4])
@pytest.mark.parametrize("n", [24, 64])
def test_functional_and_analytic_dags_identical(toy_curve_fixture, gpus, n):
    config = DistMsmConfig(window_size=4, threads_per_block=32, points_per_thread=4)
    engine = DistMsm(MultiGpuSystem(gpus), config)
    scalars, points = msm_instance(toy_curve_fixture, n, seed=n + gpus)
    executed = engine.execute(scalars, points, toy_curve_fixture)
    estimated = engine.estimate(toy_curve_fixture, n)
    assert _dag_shape(executed.timeline) == _dag_shape(estimated.timeline)


def test_faulted_dags_identical_too(toy_curve_fixture):
    """Recovery re-planning is backend-independent as well."""
    config = DistMsmConfig(window_size=4, threads_per_block=32, points_per_thread=4)
    faults = FaultPlan.of(GpuFailure(0.0, 1))
    engine = DistMsm(MultiGpuSystem(4), config)
    scalars, points = msm_instance(toy_curve_fixture, 24, seed=5)
    executed = engine.execute(scalars, points, toy_curve_fixture, faults=faults)
    estimated = engine.estimate(toy_curve_fixture, 24, faults=faults)
    assert _dag_shape(executed.timeline) == _dag_shape(estimated.timeline)


def test_traces_share_span_names(toy_curve_fixture):
    """Consequence for observe: both traces carry the same span names."""
    config = DistMsmConfig(window_size=4, threads_per_block=32, points_per_thread=4)
    engine = DistMsm(MultiGpuSystem(2), config)
    scalars, points = msm_instance(toy_curve_fixture, 24, seed=9)
    t_exec, t_est = Tracer("exec"), Tracer("est")
    engine.execute(scalars, points, toy_curve_fixture, trace=t_exec)
    engine.estimate(toy_curve_fixture, 24, trace=t_est)
    assert sorted(s.name for s in t_exec.spans) == sorted(s.name for s in t_est.spans)
    assert t_exec.meta["mode"] == "execute" and t_est.meta["mode"] == "estimate"
