"""Chrome trace-event export: format, determinism, golden-trace regression.

The golden files under ``tests/observe/golden/`` are committed canonical
exports of a 2-GPU MSM estimate and a 3-request serve run; the tests
assert the export reproduces them *byte for byte* (sorted keys, Python's
deterministic float repr), so any change to the trace schema or to the
recorded schedules is a visible diff, not a silent drift.
"""

import json
from pathlib import Path

from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm
from repro.curves.params import curve_by_name
from repro.gpu.cluster import MultiGpuSystem
from repro.observe import Tracer, to_chrome_trace

GOLDEN_DIR = Path(__file__).parent / "golden"


def build_msm_trace() -> Tracer:
    """The canonical traced 2-GPU MSM estimate (fully deterministic)."""
    curve = curve_by_name("BLS12-381")
    trace = Tracer("golden-msm-2gpu")
    DistMsm(MultiGpuSystem(2), DistMsmConfig(window_size=10)).estimate(
        curve, 1 << 16, trace=trace
    )
    return trace


def build_serve_trace() -> Tracer:
    """The canonical traced 3-request serve run (fully deterministic)."""
    from repro.serve import MsmProofServer, ServeConfig, poisson_trace

    curve = curve_by_name("BLS12-381")
    trace = Tracer("golden-serve-3req")
    server = MsmProofServer(
        MultiGpuSystem(2), DistMsmConfig(window_size=10), ServeConfig(max_batch_size=2)
    )
    server.serve(
        poisson_trace(curve, count=3, rate_rps=200.0, seed=7, sizes=1 << 14),
        trace=trace,
    )
    return trace


class TestChromeFormat:
    def test_event_structure(self):
        trace = Tracer("fmt")
        trace.add_span("work", "gpu0", 1.0, 3.0, cat="scatter", args={"gpu": 0})
        trace.instant("died", "gpu0", 2.5, cat="fault")
        trace.counter("depth", 0.5, 2.0)
        trace.annotate(curve="BLS12-381")
        doc = to_chrome_trace(trace)
        assert doc["displayTimeUnit"] == "ms"
        assert doc["metadata"]["label"] == "fmt"
        assert doc["metadata"]["curve"] == "BLS12-381"
        by_ph = {}
        for event in doc["traceEvents"]:
            by_ph.setdefault(event["ph"], []).append(event)
        # one thread_name metadata event per track
        assert [m["args"]["name"] for m in by_ph["M"]] == ["gpu0"]
        (x,) = by_ph["X"]
        assert x["ts"] == 1000.0 and x["dur"] == 2000.0  # ms -> us
        assert x["cat"] == "scatter" and x["args"] == {"gpu": 0}
        (i,) = by_ph["i"]
        assert i["ts"] == 2500.0 and i["s"] == "t"
        (c,) = by_ph["C"]
        assert c["args"] == {"value": 2.0}

    def test_tids_follow_sorted_tracks(self):
        trace = Tracer()
        trace.add_span("b", "zeta", 0.0, 1.0)
        trace.add_span("a", "alpha", 0.0, 1.0)
        doc = to_chrome_trace(trace)
        names = {m["tid"]: m["args"]["name"] for m in doc["traceEvents"] if m["ph"] == "M"}
        assert names == {1: "alpha", 2: "zeta"}

    def test_export_parses_and_counts_spans(self):
        trace = build_msm_trace()
        doc = json.loads(trace.to_chrome_json())
        x_events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(x_events) == len(trace.spans)


class TestGoldenTraces:
    def test_export_is_deterministic(self):
        assert build_msm_trace().to_chrome_json() == build_msm_trace().to_chrome_json()

    def test_msm_golden_byte_stable(self):
        golden = (GOLDEN_DIR / "msm_2gpu.json").read_text()
        assert build_msm_trace().to_chrome_json(indent=2) + "\n" == golden

    def test_serve_golden_byte_stable(self):
        golden = (GOLDEN_DIR / "serve_3req.json").read_text()
        assert build_serve_trace().to_chrome_json(indent=2) + "\n" == golden

    def test_goldens_are_valid_chrome_traces(self):
        for name in ("msm_2gpu.json", "serve_3req.json"):
            doc = json.loads((GOLDEN_DIR / name).read_text())
            assert "traceEvents" in doc
            for event in doc["traceEvents"]:
                assert event["ph"] in {"M", "X", "i", "C"}
                if event["ph"] == "X":
                    assert event["dur"] >= 0.0
