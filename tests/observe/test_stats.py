"""observe.stats: the shared percentile, summaries, and the registry."""

import pytest

from repro.gpu.counters import EventCounters
from repro.observe.stats import MetricsRegistry, percentile, summarize


class TestPercentile:
    def test_nearest_rank_no_interpolation(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 50.0) == 20.0
        assert percentile(values, 75.0) == 30.0
        assert percentile(values, 100.0) == 40.0
        # nearest-rank always returns a value that occurred
        assert percentile(values, 60.0) in values

    def test_p0_returns_minimum(self):
        assert percentile([3.0, 1.0, 2.0], 0.0) == 1.0

    def test_empty_returns_zero(self):
        assert percentile([], 95.0) == 0.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError):
            percentile([1.0], -1.0)

    def test_pinned_p50_p95_p99_on_known_series(self):
        """Explicit nearest-rank regression pins (ISSUE 10 satellite).

        These exact values are what the serving SLO report and the tuner's
        p95 objective are built on; any interpolation creeping into
        ``percentile`` shows up here, not as a subtle SLO shift.
        """
        # 1..100: percentiles land exactly on their rank
        century = [float(v) for v in range(1, 101)]
        assert percentile(century, 50.0) == 50.0
        assert percentile(century, 95.0) == 95.0
        assert percentile(century, 99.0) == 99.0
        # 5 values, unsorted input: rank = ceil(q/100 * 5)
        five = [12.0, 7.0, 42.0, 3.0, 99.0]
        assert percentile(five, 50.0) == 12.0  # rank 3 of [3,7,12,42,99]
        assert percentile(five, 95.0) == 99.0  # rank 5
        assert percentile(five, 99.0) == 99.0  # rank 5
        # 20 values: p99 rounds UP to the max (nearest rank, never below)
        twenty = [float(v) for v in range(10, 210, 10)]
        assert percentile(twenty, 50.0) == 100.0  # rank 10
        assert percentile(twenty, 95.0) == 190.0  # rank 19
        assert percentile(twenty, 99.0) == 200.0  # rank 20
        # duplicates: ranks fall on repeated values, not blends
        dupes = [1.0, 1.0, 1.0, 10.0]
        assert percentile(dupes, 50.0) == 1.0
        assert percentile(dupes, 75.0) == 1.0
        assert percentile(dupes, 76.0) == 10.0

    def test_summarize_pins_match_percentile(self):
        series = [12.0, 7.0, 42.0, 3.0, 99.0]
        s = summarize(series)
        assert s["p50"] == 12.0 and s["p95"] == 99.0 and s["p99"] == 99.0

    def test_serve_shim_removed(self):
        """The deprecated serve-layer aliases are gone; stats is the home."""
        import repro.serve as serve_pkg

        assert "percentile" not in serve_pkg.__all__
        assert not hasattr(serve_pkg, "percentile")


class TestSummarize:
    def test_empty(self):
        s = summarize([])
        assert s["count"] == 0.0 and s["p99"] == 0.0

    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s["count"] == 4.0
        assert s["mean"] == 2.5
        assert s["min"] == 1.0 and s["max"] == 4.0
        assert s["p50"] == 2.0


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.count("sheds")
        reg.count("sheds", 2.0)
        assert reg.counter("sheds") == 3.0
        assert reg.counter("missing") == 0.0

    def test_series_and_percentiles(self):
        reg = MetricsRegistry()
        reg.observe_many("latency_ms", [10.0, 20.0, 30.0, 40.0])
        reg.observe("latency_ms", 50.0)
        assert reg.percentile("latency_ms", 100.0) == 50.0
        assert reg.summary("latency_ms")["count"] == 5.0
        assert reg.series("latency_ms")[-1] == 50.0

    def test_event_counters_fold_both_directions(self):
        """The gpu/serve unification: EventCounters land as counters."""
        counters = EventCounters(pacc=10, padd=5, kernel_launches=2)
        reg = MetricsRegistry()
        reg.record_event_counters(counters, prefix="gpu0.")
        assert reg.counter("gpu0.pacc") == 10.0
        assert reg.counter("gpu0.kernel_launches") == 2.0
        # and the duck-typed bridge on the counters side agrees
        reg2 = MetricsRegistry()
        counters.record_into(reg2, prefix="gpu0.")
        assert reg2.as_dict() == {**reg.as_dict(), "label": reg2.label}

    def test_export_deterministic(self):
        reg = MetricsRegistry("run")
        reg.count("b"), reg.count("a")
        reg.observe("z", 1.0)
        d = reg.as_dict()
        assert list(d["counters"]) == ["a", "b"]
        assert reg.to_json() == reg.to_json()
