"""BLS12-381 ate pairing: tower fast tests + slow bilinearity checks."""

import pytest

from repro.curves.params import curve_by_name
from repro.curves.point import AffinePoint, affine_neg, pmul
from repro.zksnark.pairing_bls import (
    ATE_LOOP_COUNT_BLS,
    B2_BLS,
    FQ2B,
    FQ12B,
    G1_GENERATOR_BLS,
    G2_GENERATOR_BLS,
    g2_mul_bls,
    is_on_curve_fq,
    pairing_bls,
    pairing_check_bls,
    twist_bls,
)

BLS = curve_by_name("BLS12-381")


class TestTower:
    def test_i_squared(self):
        i = FQ2B([0, 1])
        assert i * i == FQ2B([-1, 0])

    def test_w6_is_one_plus_i(self):
        """The embedded i = w^6 - 1 must square to -1."""
        w = FQ12B([0, 1] + [0] * 10)
        i_embedded = w**6 - 1
        assert i_embedded * i_embedded == FQ12B.from_int(-1)

    def test_inverse(self):
        a = FQ12B(list(range(1, 13)))
        assert a * a.inverse() == FQ12B.one()

    def test_distinct_from_bn_classes(self):
        from repro.zksnark.pairing import FQ2

        assert FQ2B.prime != FQ2.prime


class TestG2:
    def test_generator_on_twist(self):
        assert is_on_curve_fq(G2_GENERATOR_BLS, B2_BLS)

    def test_twist_lands_on_fq12_curve(self):
        tx, ty = twist_bls(G2_GENERATOR_BLS)
        assert ty * ty - tx * tx * tx == FQ12B.from_int(4)

    def test_scalar_mul_homomorphic(self):
        lhs = g2_mul_bls(g2_mul_bls(G2_GENERATOR_BLS, 2), 3)
        rhs = g2_mul_bls(G2_GENERATOR_BLS, 6)
        assert lhs == rhs

    @pytest.mark.slow
    def test_generator_order(self):
        assert g2_mul_bls(G2_GENERATOR_BLS, BLS.r) is None


class TestLoopCount:
    def test_is_abs_curve_parameter(self):
        from repro.curves.params import BLS12_381_U

        assert ATE_LOOP_COUNT_BLS == -BLS12_381_U
        assert ATE_LOOP_COUNT_BLS == 0xD201000000010000


class TestInputValidation:
    def test_off_curve_g1_rejected(self):
        with pytest.raises(ValueError):
            pairing_bls(G2_GENERATOR_BLS, (1, 1))

    def test_off_twist_g2_rejected(self):
        bad = (G2_GENERATOR_BLS[0], G2_GENERATOR_BLS[0])
        with pytest.raises(ValueError):
            pairing_bls(bad, G1_GENERATOR_BLS)


@pytest.mark.slow
class TestPairingProperties:
    @pytest.fixture(scope="class")
    def e_gen(self):
        return pairing_bls(G2_GENERATOR_BLS, G1_GENERATOR_BLS)

    def test_non_degenerate(self, e_gen):
        assert e_gen != FQ12B.one()

    def test_bilinear_in_g1(self, e_gen):
        g = AffinePoint(BLS.gx, BLS.gy)
        p3 = pmul(g, 3, BLS)
        assert pairing_bls(G2_GENERATOR_BLS, (p3.x, p3.y)) == e_gen**3

    def test_bilinear_in_g2(self, e_gen):
        q2 = g2_mul_bls(G2_GENERATOR_BLS, 2)
        assert pairing_bls(q2, G1_GENERATOR_BLS) == e_gen * e_gen

    def test_inverse_pair_cancels(self):
        g = AffinePoint(BLS.gx, BLS.gy)
        neg = affine_neg(g, BLS)
        assert pairing_check_bls(
            [
                ((neg.x, neg.y), G2_GENERATOR_BLS),
                ((g.x, g.y), G2_GENERATOR_BLS),
            ]
        )

    def test_unbalanced_product_fails(self):
        g = AffinePoint(BLS.gx, BLS.gy)
        p2 = pmul(g, 2, BLS)
        assert not pairing_check_bls(
            [
                ((p2.x, p2.y), G2_GENERATOR_BLS),
                ((g.x, g.y), G2_GENERATOR_BLS),
            ]
        )

    def test_identity_inputs(self):
        assert pairing_bls(None, G1_GENERATOR_BLS) == FQ12B.one()
        assert pairing_bls(G2_GENERATOR_BLS, None) == FQ12B.one()
