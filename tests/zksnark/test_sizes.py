"""Artifact size accounting: succinct proofs, linear proving keys."""

import pytest

from repro.curves.params import curve_by_name
from repro.zksnark.serialize import PROOF_BYTES
from repro.zksnark.sizes import (
    g1_bytes,
    g2_bytes,
    groth16_sizes,
    paper_scale_proving_key_mb,
)
from repro.zksnark.workloads import hash_chain_circuit

BN254 = curve_by_name("BN254")


class TestPointSizes:
    def test_bn254_compressed(self):
        assert g1_bytes(BN254) == 32
        assert g2_bytes(BN254) == 64

    def test_uncompressed_doubles(self):
        assert g1_bytes(BN254, compressed=False) == 64

    def test_bls12_381_larger(self):
        bls = curve_by_name("BLS12-381")
        assert g1_bytes(bls) == 48


class TestCrsSizes:
    def test_proof_is_succinct(self):
        r1cs, _ = hash_chain_circuit(16)
        sizes = groth16_sizes(r1cs)
        assert sizes.proof_bytes == PROOF_BYTES
        # the paper's headline: "proof sizes under 1 KB"
        assert sizes.proof_bytes < 1024

    def test_verifying_key_small(self):
        r1cs, _ = hash_chain_circuit(16)
        sizes = groth16_sizes(r1cs)
        assert sizes.verifying_key_bytes < 1024

    def test_proving_key_linear_in_circuit(self):
        small, _ = hash_chain_circuit(8)
        large, _ = hash_chain_circuit(64)
        s = groth16_sizes(small).proving_key_bytes
        l = groth16_sizes(large).proving_key_bytes
        assert 4 < l / s < 12  # ~8x the circuit -> ~8x the key

    def test_model_matches_real_pk(self):
        """The byte model must track the actual proving-key element count."""
        import random

        from repro.zksnark.groth16 import Groth16

        r1cs, _ = hash_chain_circuit(6)
        pk, vk = Groth16(r1cs).setup(random.Random(3))
        g1, g2 = g1_bytes(BN254), g2_bytes(BN254)
        actual = (
            3 * g1 + 2 * g2
            + (len(pk.a_query) + len(pk.b_g1_query) + len(pk.l_query) + len(pk.h_query)) * g1
            + len(pk.b_g2_query) * g2
        )
        modelled = groth16_sizes(r1cs).proving_key_bytes
        assert modelled == pytest.approx(actual, rel=0.05)

    def test_witness_bytes(self):
        r1cs, assignment = hash_chain_circuit(5)
        sizes = groth16_sizes(r1cs)
        assert sizes.witness_bytes == len(assignment) * 32


class TestPaperScale:
    def test_zen_lenet_key_is_gigabytes(self):
        """ZEN-LeNet's 77.7M constraints imply a multi-GB proving key —
        why the paper's CRS handling matters."""
        mb = paper_scale_proving_key_mb(77_689_757)
        assert 10_000 < mb < 60_000  # 10-60 GB band

    def test_zcash_key_hundreds_of_mb(self):
        mb = paper_scale_proving_key_mb(2_585_747)
        assert 300 < mb < 2000
