"""Groth16 over the BLS12-381 backend — the protocol is curve-generic."""

import random

import pytest

from repro.curves.params import curve_by_name
from repro.zksnark.backend import backend_by_name
from repro.zksnark.groth16 import Groth16
from repro.zksnark.r1cs import R1cs

BLS_R = curve_by_name("BLS12-381").r


def bls_cubic_circuit():
    r1cs = R1cs(modulus=BLS_R)
    out = r1cs.declare_public(1)[0]
    x = r1cs.new_variable()
    x2 = r1cs.new_variable()
    x3 = r1cs.new_variable()
    r1cs.enforce_product(x, x, x2)
    r1cs.enforce_product(x2, x, x3)
    r1cs.enforce_linear({x3: 1, x: 1, 0: 5}, out)
    return r1cs, [1, 35, 3, 9, 27]


class TestBackendRegistry:
    def test_bn254_default(self):
        assert backend_by_name("BN254").curve.name == "BN254"

    def test_bls12_381(self):
        backend = backend_by_name("BLS12-381")
        assert backend.curve.name == "BLS12-381"
        assert backend.g2_generator is not None

    def test_unknown(self):
        with pytest.raises(KeyError):
            backend_by_name("MNT4753")  # no pairing implemented

    def test_wrong_field_rejected(self):
        r1cs, _ = bls_cubic_circuit()
        with pytest.raises(ValueError):
            Groth16(r1cs, backend="BN254")


@pytest.mark.slow
class TestGroth16OverBls:
    @pytest.fixture(scope="class")
    def system(self):
        r1cs, assignment = bls_cubic_circuit()
        groth = Groth16(r1cs, backend="BLS12-381")
        pk, vk = groth.setup(random.Random(71))
        return groth, pk, vk, r1cs, assignment

    def test_honest_proof_verifies(self, system):
        groth, pk, vk, r1cs, assignment = system
        proof = groth.prove(pk, assignment, random.Random(72))
        assert groth.verify(vk, proof, r1cs.public_inputs(assignment))

    def test_wrong_public_input_rejected(self, system):
        groth, pk, vk, r1cs, assignment = system
        proof = groth.prove(pk, assignment, random.Random(73))
        assert not groth.verify(vk, proof, [36])

    def test_bad_witness_rejected_at_prove(self, system):
        groth, pk, _, _, assignment = system
        bad = list(assignment)
        bad[2] = 4
        with pytest.raises(ValueError):
            groth.prove(pk, bad)
