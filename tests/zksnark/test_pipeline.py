"""End-to-end pipeline model: Table 4 reproduction."""

import pytest

from repro.zksnark.pipeline import (
    EndToEndEstimate,
    estimate_end_to_end,
    libsnark_cpu_seconds,
    stage_distribution,
    table4,
)
from repro.zksnark.workloads import ALL_WORKLOADS, OTTI_SGD, ZCASH_SPROUT, ZEN_LENET


class TestCpuModel:
    def test_per_constraint_fit(self):
        """The calibrated rate lands within ~40% of every CPU row (the
        paper's per-constraint cost varies 42-65 us across workloads)."""
        for spec in ALL_WORKLOADS:
            modelled = libsnark_cpu_seconds(spec.paper_constraints)
            assert modelled == pytest.approx(spec.paper_libsnark_seconds, rel=0.40)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            libsnark_cpu_seconds(0)


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return table4()

    def test_three_rows(self, result):
        assert [r.workload for r in result.rows] == [
            "Zcash-Sprout", "Otti-SGD", "Zen_acc-LeNet",
        ]

    def test_paper_speedup_band(self, result):
        """Paper: ~25.5x average end-to-end speedup, 24.9-26.7x per row."""
        for row in result.rows:
            assert 22 <= row.speedup <= 29

    def test_absolute_times_close_to_paper(self, result):
        paper = {"Zcash-Sprout": 5.8, "Otti-SGD": 11.7, "Zen_acc-LeNet": 188.7}
        for row in result.rows:
            assert row.distmsm_seconds == pytest.approx(paper[row.workload], rel=0.15)

    def test_others_dominates_gpu_time(self, result):
        """Amdahl: with MSM on 8 GPUs, the un-accelerated 'others' share
        dominates the remaining proving time."""
        for row in result.rows:
            assert row.others_seconds > row.msm_seconds
            assert row.others_seconds > row.ntt_seconds

    def test_render_contains_rows(self, result):
        text = result.render()
        assert "Zcash-Sprout" in text
        assert "libsnark" in text


class TestEstimates:
    def test_more_gpus_less_msm_time(self):
        t8 = estimate_end_to_end(ZEN_LENET, num_gpus=8)
        t32 = estimate_end_to_end(ZEN_LENET, num_gpus=32)
        assert t32.msm_seconds < t8.msm_seconds

    def test_estimate_fields(self):
        est = estimate_end_to_end(ZCASH_SPROUT)
        assert isinstance(est, EndToEndEstimate)
        assert est.distmsm_seconds == pytest.approx(
            est.msm_seconds + est.ntt_seconds + est.others_seconds
        )

    def test_stage_distribution_shifts_with_gpus(self):
        """§5.1.1: with 8-GPU MSM the NTT becomes the dominant stage."""
        dist = stage_distribution(num_gpus=8)
        assert dist["ntt"] > dist["msm"]
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_stage_distribution_single_gpu(self):
        """With single-GPU MSM the distribution stays MSM-heavy."""
        dist = stage_distribution(num_gpus=1)
        assert dist["msm"] > dist["ntt"]

    def test_modeled_ntt_close_to_paper_factor(self):
        """Our GPU NTT model lands in the same band as the published 898x
        factor (independent cross-check of both)."""
        paper = estimate_end_to_end(ZCASH_SPROUT, ntt_model="paper")
        modeled = estimate_end_to_end(ZCASH_SPROUT, ntt_model="modeled")
        assert 0.1 < modeled.ntt_seconds / paper.ntt_seconds < 3.0
        # the end-to-end number barely moves ('others' dominates)
        assert modeled.speedup == pytest.approx(paper.speedup, rel=0.10)

    def test_unknown_ntt_model_rejected(self):
        with pytest.raises(ValueError):
            estimate_end_to_end(ZCASH_SPROUT, ntt_model="magic")
