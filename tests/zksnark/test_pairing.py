"""BN254 pairing: tower arithmetic fast tests + slow bilinearity checks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.curves.params import curve_by_name
from repro.curves.point import AffinePoint, affine_neg, pmul
from repro.zksnark.pairing import (
    ATE_LOOP_COUNT,
    B2,
    FQ2,
    FQ12,
    G1_GENERATOR,
    G2_GENERATOR,
    cast_g1_to_fq12,
    g2_add,
    g2_mul,
    is_on_curve_fq,
    pairing,
    pairing_check,
    point_add,
    point_double,
    point_mul,
    point_neg,
    twist,
)

BN254 = curve_by_name("BN254")
P = BN254.p

small = st.integers(0, P - 1)


class TestFQ2:
    def test_i_squared_is_minus_one(self):
        i = FQ2([0, 1])
        assert i * i == FQ2([-1, 0])

    def test_add_sub(self):
        a, b = FQ2([3, 4]), FQ2([10, 20])
        assert a + b == FQ2([13, 24])
        assert b - a == FQ2([7, 16])
        assert a + 1 == FQ2([4, 4])
        assert 1 - a == FQ2([-2, -4])

    @given(small, small)
    @settings(max_examples=20, deadline=None)
    def test_inverse(self, x, y):
        a = FQ2([x, y])
        if a.is_zero():
            return
        assert a * a.inverse() == FQ2.one()

    def test_zero_inverse_raises(self):
        with pytest.raises(ZeroDivisionError):
            FQ2.zero().inverse()

    def test_division(self):
        a, b = FQ2([3, 4]), FQ2([5, 6])
        assert (a / b) * b == a

    def test_pow(self):
        a = FQ2([3, 4])
        assert a**3 == a * a * a
        assert a**0 == FQ2.one()
        assert a**-1 == a.inverse()

    def test_coefficient_count_checked(self):
        with pytest.raises(ValueError):
            FQ2([1, 2, 3])

    def test_frobenius_via_pow_p(self):
        """x^p is the conjugate in FQ2."""
        a = FQ2([3, 4])
        assert a**P == FQ2([3, -4])


class TestFQ12:
    def test_tower_relation(self):
        """w^6 = 9 + i: the embedded i = w^6 - 9 must square to -1."""
        w = FQ12([0, 1] + [0] * 10)
        i_embedded = w**6 - 9
        assert i_embedded * i_embedded == FQ12.from_int(-1)

    def test_mul_associative(self):
        a = FQ12(list(range(1, 13)))
        b = FQ12(list(range(13, 25)))
        c = FQ12([7, 0, 3, 0, 1, 0, 4, 0, 1, 0, 5, 9])
        assert (a * b) * c == a * (b * c)

    def test_inverse(self):
        a = FQ12(list(range(1, 13)))
        assert a * a.inverse() == FQ12.one()

    def test_distributive(self):
        a = FQ12(list(range(1, 13)))
        b = FQ12(list(range(2, 14)))
        c = FQ12(list(range(3, 15)))
        assert a * (b + c) == a * b + a * c


class TestG2:
    def test_generator_on_twist(self):
        assert is_on_curve_fq(G2_GENERATOR, B2)

    def test_double_and_add_consistent(self):
        d = point_double(G2_GENERATOR)
        a = point_add(G2_GENERATOR, G2_GENERATOR)
        assert d == a
        assert is_on_curve_fq(d, B2)

    def test_identity_handling(self):
        assert point_add(None, G2_GENERATOR) == G2_GENERATOR
        assert point_add(G2_GENERATOR, None) == G2_GENERATOR
        assert point_double(None) is None
        assert point_mul(G2_GENERATOR, 0) is None

    def test_inverse_addition(self):
        assert point_add(G2_GENERATOR, point_neg(G2_GENERATOR)) is None

    def test_scalar_mul_homomorphic(self):
        assert g2_mul(g2_mul(G2_GENERATOR, 3), 5) == g2_mul(G2_GENERATOR, 15)

    def test_negative_scalar(self):
        assert point_mul(G2_GENERATOR, -2) == point_neg(g2_mul(G2_GENERATOR, 2))

    @pytest.mark.slow
    def test_generator_order(self):
        assert g2_mul(G2_GENERATOR, BN254.r) is None

    def test_twist_lands_on_fq12_curve(self):
        tx, ty = twist(G2_GENERATOR)
        assert ty * ty - tx * tx * tx == FQ12.from_int(3)

    def test_twist_identity(self):
        assert twist(None) is None


class TestPairingStructure:
    def test_ate_loop_count(self):
        from repro.curves.params import BN254_T

        assert ATE_LOOP_COUNT == 6 * BN254_T + 2

    def test_cast_g1(self):
        x, y = cast_g1_to_fq12(G1_GENERATOR)
        assert y * y - x * x * x == FQ12.from_int(3)
        assert cast_g1_to_fq12(None) is None

    def test_off_curve_inputs_rejected(self):
        with pytest.raises(ValueError):
            pairing(G2_GENERATOR, (1, 3))
        bad_g2 = (G2_GENERATOR[0], G2_GENERATOR[0])
        with pytest.raises(ValueError):
            pairing(bad_g2, G1_GENERATOR)


@pytest.mark.slow
class TestPairingProperties:
    @pytest.fixture(scope="class")
    def e_gen(self):
        return pairing(G2_GENERATOR, G1_GENERATOR)

    def test_non_degenerate(self, e_gen):
        assert e_gen != FQ12.one()

    def test_bilinear_in_g1(self, e_gen):
        g = AffinePoint(BN254.gx, BN254.gy)
        p2 = pmul(g, 2, BN254)
        assert pairing(G2_GENERATOR, (p2.x, p2.y)) == e_gen * e_gen

    def test_bilinear_in_g2(self, e_gen):
        q2 = g2_mul(G2_GENERATOR, 2)
        assert pairing(q2, G1_GENERATOR) == e_gen * e_gen

    def test_full_bilinearity(self, e_gen):
        """e(aP, bQ) == e(P, Q)^(ab)."""
        g = AffinePoint(BN254.gx, BN254.gy)
        a, b = 3, 5
        pa = pmul(g, a, BN254)
        qb = g2_mul(G2_GENERATOR, b)
        assert pairing(qb, (pa.x, pa.y)) == e_gen ** (a * b)

    def test_inverse_pair_cancels(self):
        g = AffinePoint(BN254.gx, BN254.gy)
        neg = affine_neg(g, BN254)
        assert pairing_check(
            [((neg.x, neg.y), G2_GENERATOR), ((g.x, g.y), G2_GENERATOR)]
        )

    def test_unbalanced_product_fails(self):
        g = AffinePoint(BN254.gx, BN254.gy)
        p2 = pmul(g, 2, BN254)
        assert not pairing_check(
            [((p2.x, p2.y), G2_GENERATOR), ((g.x, g.y), G2_GENERATOR)]
        )

    def test_identity_inputs_give_one(self):
        assert pairing(None, G1_GENERATOR) == FQ12.one()
        assert pairing(G2_GENERATOR, None) == FQ12.one()
