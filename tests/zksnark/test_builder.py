"""Circuit-builder DSL: constraints and witnesses stay in lockstep."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.curves.params import curve_by_name
from repro.zksnark.builder import CircuitBuilder

BN_R = curve_by_name("BN254").r


class TestBasics:
    def test_docstring_cubic(self):
        c = CircuitBuilder()
        x = c.private(3)
        c.public_output(x * x * x + x + 5)
        r1cs, assignment = c.synthesize()
        assert r1cs.is_satisfied(assignment)
        assert r1cs.public_inputs(assignment) == [35]

    def test_additions_are_free(self):
        c = CircuitBuilder()
        x = c.private(3)
        y = c.private(4)
        c.public_output(x + y + 7 - 2)
        r1cs, assignment = c.synthesize()
        # only the public-binding constraint; no gates for + / constants
        assert r1cs.num_constraints == 1
        assert r1cs.public_inputs(assignment) == [12]

    def test_constant_multiplication_free(self):
        c = CircuitBuilder()
        x = c.private(5)
        c.public_output(3 * x)
        r1cs, assignment = c.synthesize()
        assert r1cs.num_constraints == 1
        assert r1cs.public_inputs(assignment) == [15]

    def test_each_wire_product_is_one_constraint(self):
        c = CircuitBuilder()
        x = c.private(2)
        y = x * x
        z = y * x
        c.public_output(z)
        r1cs, assignment = c.synthesize()
        assert r1cs.num_constraints == 3  # two muls + the output binding
        assert r1cs.is_satisfied(assignment)

    def test_constant_times_wire_optimised(self):
        c = CircuitBuilder()
        x = c.private(2)
        c.public_output(x * c.constant(6))
        r1cs, assignment = c.synthesize()
        assert r1cs.num_constraints == 1
        assert r1cs.public_inputs(assignment) == [12]

    def test_negation_and_rsub(self):
        c = CircuitBuilder()
        x = c.private(9)
        c.public_output(10 - x)
        c.public_output(-x)
        r1cs, assignment = c.synthesize()
        assert r1cs.public_inputs(assignment) == [1, (BN_R - 9) % BN_R]

    def test_bad_wire_type(self):
        c = CircuitBuilder()
        with pytest.raises(TypeError):
            c.wire_of("five")

    def test_synthesize_once(self):
        c = CircuitBuilder()
        c.public_output(c.private(1))
        c.synthesize()
        with pytest.raises(RuntimeError):
            c.synthesize()


class TestAssertions:
    def test_assert_equal(self):
        c = CircuitBuilder()
        x = c.private(4)
        c.assert_equal(x * x, 16)
        r1cs, assignment = c.synthesize()
        assert r1cs.is_satisfied(assignment)

    def test_assert_equal_refuses_falsehood(self):
        c = CircuitBuilder()
        x = c.private(4)
        with pytest.raises(ValueError):
            c.assert_equal(x, 5)

    def test_assert_boolean(self):
        c = CircuitBuilder()
        bit = c.private(1)
        c.assert_boolean(bit)
        r1cs, assignment = c.synthesize()
        assert r1cs.is_satisfied(assignment)

    def test_assert_boolean_refuses_non_bit(self):
        c = CircuitBuilder()
        with pytest.raises(ValueError):
            c.assert_boolean(c.private(2))

    def test_boolean_constraint_actually_binds(self):
        """Tampering the witness bit must violate the system."""
        c = CircuitBuilder()
        bit = c.private(1)
        c.assert_boolean(bit)
        c.public_output(bit)
        r1cs, assignment = c.synthesize()
        bad = list(assignment)
        bad_idx = assignment.index(1, 2)  # the private bit variable
        bad[bad_idx] = 2
        assert not r1cs.is_satisfied(bad)

    def test_inverse(self):
        c = CircuitBuilder()
        x = c.private(7)
        inv = c.inverse(x)
        c.public_output(x * inv)
        r1cs, assignment = c.synthesize()
        assert r1cs.is_satisfied(assignment)
        assert r1cs.public_inputs(assignment) == [1]

    def test_inverse_of_zero(self):
        c = CircuitBuilder()
        with pytest.raises(ZeroDivisionError):
            c.inverse(c.private(0))


class TestWitnessSoundness:
    @given(st.integers(0, BN_R - 1), st.integers(0, BN_R - 1))
    @settings(max_examples=25, deadline=None)
    def test_random_polynomial_circuits(self, a, b):
        c = CircuitBuilder()
        x = c.private(a)
        y = c.private(b)
        expr = x * y + x * 3 + y * y - 7
        c.public_output(expr)
        r1cs, assignment = c.synthesize()
        assert r1cs.is_satisfied(assignment)
        expected = (a * b + 3 * a + b * b - 7) % BN_R
        assert r1cs.public_inputs(assignment) == [expected]

    def test_tampered_witness_rejected(self):
        c = CircuitBuilder()
        x = c.private(6)
        c.public_output(x * x)
        r1cs, assignment = c.synthesize()
        bad = list(assignment)
        bad[-1] = (bad[-1] + 1) % BN_R
        assert not r1cs.is_satisfied(bad)


@pytest.mark.slow
class TestBuilderThroughGroth16:
    def test_built_circuit_proves_and_verifies(self):
        from repro.zksnark.groth16 import Groth16

        c = CircuitBuilder()
        x = c.private(3)
        bit = c.private(1)
        c.assert_boolean(bit)
        c.public_output(x * x * x + bit * x + 5)
        r1cs, assignment = c.synthesize()

        groth = Groth16(r1cs)
        pk, vk = groth.setup(random.Random(41))
        proof = groth.prove(pk, assignment, random.Random(42))
        assert groth.verify(vk, proof, r1cs.public_inputs(assignment))
