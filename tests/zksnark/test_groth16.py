"""Groth16 end-to-end: setup, prove (through our MSM), verify (pairing)."""

import random

import pytest

from repro.curves.params import curve_by_name
from repro.zksnark.groth16 import Groth16
from repro.zksnark.r1cs import R1cs
from repro.zksnark.workloads import (
    ALL_WORKLOADS,
    hash_chain_circuit,
    lenet_style_circuit,
    sgd_step_circuit,
    workload_circuit,
)

BN_R = curve_by_name("BN254").r


def cubic_circuit():
    r1cs = R1cs(modulus=BN_R)
    out = r1cs.declare_public(1)[0]
    x = r1cs.new_variable()
    x2 = r1cs.new_variable()
    x3 = r1cs.new_variable()
    r1cs.enforce_product(x, x, x2)
    r1cs.enforce_product(x2, x, x3)
    r1cs.enforce_linear({x3: 1, x: 1, 0: 5}, out)
    assignment = [1, 35, 3, 9, 27]
    return r1cs, assignment


class TestWorkloadCircuits:
    @pytest.mark.parametrize(
        "builder,kwargs",
        [
            (hash_chain_circuit, {"length": 10}),
            (sgd_step_circuit, {"features": 3, "samples": 2}),
            (lenet_style_circuit, {"channels": 2, "width": 3}),
        ],
    )
    def test_generators_produce_satisfying_witnesses(self, builder, kwargs):
        r1cs, assignment = builder(**kwargs)
        assert r1cs.is_satisfied(assignment)
        assert r1cs.num_constraints > 0
        assert r1cs.num_public >= 1

    def test_workload_specs(self):
        """Table 4 metadata."""
        sizes = {w.name: w.paper_constraints for w in ALL_WORKLOADS}
        assert sizes["Zcash-Sprout"] == 2_585_747
        assert sizes["Otti-SGD"] == 6_968_254
        assert sizes["Zen_acc-LeNet"] == 77_689_757

    def test_workload_circuit_dispatch(self):
        for spec in ALL_WORKLOADS:
            r1cs, assignment = workload_circuit(spec, scale=8)
            assert r1cs.is_satisfied(assignment)
        with pytest.raises(KeyError):
            from repro.zksnark.workloads import WorkloadSpec

            workload_circuit(WorkloadSpec("nope", 1, 1.0, ""), 1)

    def test_hash_chain_size_scales(self):
        small, _ = hash_chain_circuit(5)
        large, _ = hash_chain_circuit(50)
        assert large.num_constraints > 5 * small.num_constraints


class TestGroth16Construction:
    def test_requires_bn254_scalar_field(self):
        with pytest.raises(ValueError):
            Groth16(R1cs(modulus=17))

    def test_prove_rejects_bad_witness(self):
        r1cs, assignment = cubic_circuit()
        g = Groth16(r1cs)
        pk, _ = g.setup(random.Random(1))
        bad = list(assignment)
        bad[2] = 4
        with pytest.raises(ValueError):
            g.prove(pk, bad)

    def test_verify_checks_public_count(self):
        r1cs, assignment = cubic_circuit()
        g = Groth16(r1cs)
        pk, vk = g.setup(random.Random(1))
        proof = g.prove(pk, assignment, random.Random(2))
        with pytest.raises(ValueError):
            g.verify(vk, proof, [1, 2])


@pytest.mark.slow
class TestGroth16EndToEnd:
    @pytest.fixture(scope="class")
    def system(self):
        r1cs, assignment = cubic_circuit()
        g = Groth16(r1cs)
        pk, vk = g.setup(random.Random(11))
        return g, pk, vk, r1cs, assignment

    def test_honest_proof_verifies(self, system):
        g, pk, vk, r1cs, assignment = system
        proof = g.prove(pk, assignment, random.Random(12))
        assert g.verify(vk, proof, r1cs.public_inputs(assignment))

    def test_wrong_public_input_rejected(self, system):
        g, pk, vk, r1cs, assignment = system
        proof = g.prove(pk, assignment, random.Random(13))
        assert not g.verify(vk, proof, [36])

    def test_tampered_proof_rejected(self, system):
        g, pk, vk, r1cs, assignment = system
        from dataclasses import replace

        from repro.curves.point import AffinePoint, pmul

        proof = g.prove(pk, assignment, random.Random(14))
        bn = curve_by_name("BN254")
        tampered = replace(proof, c=pmul(proof.c, 2, bn))
        assert not g.verify(vk, tampered, r1cs.public_inputs(assignment))

    def test_zero_knowledge_blinding(self, system):
        """Two proofs of the same statement differ (fresh blinding)."""
        g, pk, vk, r1cs, assignment = system
        p1 = g.prove(pk, assignment, random.Random(15))
        p2 = g.prove(pk, assignment, random.Random(16))
        assert p1.a != p2.a
        assert g.verify(vk, p1, r1cs.public_inputs(assignment))
        assert g.verify(vk, p2, r1cs.public_inputs(assignment))

    def test_hash_chain_workload_proves(self):
        r1cs, assignment = hash_chain_circuit(6, seed=7)
        g = Groth16(r1cs)
        pk, vk = g.setup(random.Random(21))
        proof = g.prove(pk, assignment, random.Random(22))
        assert g.verify(vk, proof, r1cs.public_inputs(assignment))
