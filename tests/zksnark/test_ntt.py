"""NTT correctness: transforms, cosets, polynomial products."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.curves.params import curve_by_name
from repro.zksnark.ntt import NttDomain, poly_eval, poly_mul, two_adicity

BN_R = curve_by_name("BN254").r
BLS381_R = curve_by_name("BLS12-381").r


class TestTwoAdicity:
    def test_bn254_is_28(self):
        assert two_adicity(BN_R) == 28

    def test_bls12_381_is_32(self):
        assert two_adicity(BLS381_R) == 32

    def test_small(self):
        assert two_adicity(17) == 4

    def test_rejects_small_modulus(self):
        with pytest.raises(ValueError):
            two_adicity(2)


class TestDomain:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            NttDomain(17, 3)

    def test_rejects_oversized_domain(self):
        with pytest.raises(ValueError):
            NttDomain(17, 32)  # 2-adicity of 17 is 4

    def test_omega_has_exact_order(self):
        dom = NttDomain(BN_R, 64)
        assert pow(dom.omega, 64, BN_R) == 1
        assert pow(dom.omega, 32, BN_R) != 1

    def test_elements(self):
        dom = NttDomain(17, 4)
        elems = dom.elements
        assert len(set(elems)) == 4
        assert elems[0] == 1

    def test_ntt_matches_naive_dft(self):
        dom = NttDomain(BN_R, 8)
        rng = random.Random(1)
        coeffs = [rng.randrange(BN_R) for _ in range(8)]
        expected = [poly_eval(coeffs, x, BN_R) for x in dom.elements]
        assert dom.ntt(coeffs) == expected

    def test_round_trip(self):
        dom = NttDomain(BN_R, 16)
        rng = random.Random(2)
        coeffs = [rng.randrange(BN_R) for _ in range(16)]
        assert dom.intt(dom.ntt(coeffs)) == coeffs

    @given(st.lists(st.integers(0, BN_R - 1), min_size=32, max_size=32))
    @settings(max_examples=15, deadline=None)
    def test_round_trip_property(self, coeffs):
        dom = NttDomain(BN_R, 32)
        assert dom.intt(dom.ntt(coeffs)) == [c % BN_R for c in coeffs]

    def test_length_checked(self):
        dom = NttDomain(BN_R, 8)
        with pytest.raises(ValueError):
            dom.ntt([1, 2, 3])

    def test_coset_round_trip(self):
        dom = NttDomain(BN_R, 16)
        rng = random.Random(3)
        coeffs = [rng.randrange(BN_R) for _ in range(16)]
        shift = 5
        assert dom.coset_intt(dom.coset_ntt(coeffs, shift), shift) == coeffs

    def test_coset_evaluates_at_shifted_points(self):
        dom = NttDomain(BN_R, 8)
        coeffs = [3, 1, 4, 1, 5, 9, 2, 6]
        shift = 7
        got = dom.coset_ntt(coeffs, shift)
        expected = [
            poly_eval(coeffs, shift * w % BN_R, BN_R) for w in dom.elements
        ]
        assert got == expected

    def test_vanishing_constant_on_coset(self):
        dom = NttDomain(BN_R, 16)
        shift = 5
        z = dom.vanishing_on_coset(shift)
        for w in dom.elements[:4]:
            x = shift * w % BN_R
            assert (pow(x, 16, BN_R) - 1) % BN_R == z

    def test_vanishing_zero_on_domain(self):
        dom = NttDomain(BN_R, 16)
        for w in dom.elements[:4]:
            assert (pow(w, 16, BN_R) - 1) % BN_R == 0


class TestPolyOps:
    def test_poly_mul_small(self):
        # (1 + x)(1 + x) = 1 + 2x + x^2
        assert poly_mul([1, 1], [1, 1], BN_R) == [1, 2, 1]

    def test_poly_mul_empty(self):
        assert poly_mul([], [1, 2], BN_R) == []

    @given(
        st.lists(st.integers(0, BN_R - 1), min_size=1, max_size=20),
        st.lists(st.integers(0, BN_R - 1), min_size=1, max_size=20),
    )
    @settings(max_examples=15, deadline=None)
    def test_poly_mul_matches_schoolbook(self, a, b):
        expected = [0] * (len(a) + len(b) - 1)
        for i, x in enumerate(a):
            for j, y in enumerate(b):
                expected[i + j] = (expected[i + j] + x * y) % BN_R
        assert poly_mul(a, b, BN_R) == expected

    def test_poly_eval_horner(self):
        assert poly_eval([1, 2, 3], 10, 10**9) == 321
