"""Circuit gadgets: range checks, selects, Merkle membership."""

import random

import pytest

from repro.curves.params import curve_by_name
from repro.zksnark.builder import CircuitBuilder
from repro.zksnark.gadgets import (
    assert_in_range,
    merkle_membership_circuit,
    merkle_path,
    merkle_root,
    select,
    swap_on_bit,
    to_bits,
)
from repro.zksnark.poseidon import hash2

P = curve_by_name("BN254").r


class TestBits:
    def test_decomposition_round_trip(self):
        builder = CircuitBuilder()
        x = builder.private(0b101101)
        bits = to_bits(builder, x, 8)
        builder.public_output(x)
        r1cs, assignment = builder.synthesize()
        assert r1cs.is_satisfied(assignment)
        assert [b.value for b in bits] == [1, 0, 1, 1, 0, 1, 0, 0]

    def test_width_enforced_at_build(self):
        builder = CircuitBuilder()
        x = builder.private(256)
        with pytest.raises(ValueError):
            to_bits(builder, x, 8)

    def test_bad_width(self):
        builder = CircuitBuilder()
        with pytest.raises(ValueError):
            to_bits(builder, builder.private(0), 0)

    def test_range_check_binds_witness(self):
        """Tampering any bit (or the value) breaks satisfiability."""
        builder = CircuitBuilder()
        x = builder.private(77)
        assert_in_range(builder, x, 7)
        builder.public_output(x)
        r1cs, assignment = builder.synthesize()
        assert r1cs.is_satisfied(assignment)
        bad = list(assignment)
        bad[2] = (bad[2] + 1) % P  # first decomposition bit
        assert not r1cs.is_satisfied(bad)


class TestSelect:
    @pytest.mark.parametrize("bit,expected", [(0, 20), (1, 10)])
    def test_select(self, bit, expected):
        builder = CircuitBuilder()
        b = builder.private(bit)
        builder.assert_boolean(b)
        out = select(builder, b, builder.constant(10), builder.constant(20))
        builder.public_output(out)
        r1cs, assignment = builder.synthesize()
        assert r1cs.is_satisfied(assignment)
        assert r1cs.public_inputs(assignment) == [expected]

    @pytest.mark.parametrize("bit", [0, 1])
    def test_swap(self, bit):
        builder = CircuitBuilder()
        b = builder.private(bit)
        left, right = swap_on_bit(
            builder, b, builder.constant(3), builder.constant(7)
        )
        assert (left.value, right.value) == ((3, 7) if bit == 0 else (7, 3))


class TestMerkleNative:
    def test_root_of_two(self):
        assert merkle_root([5, 9]) == hash2(5, 9)

    def test_power_of_two_enforced(self):
        with pytest.raises(ValueError):
            merkle_root([1, 2, 3])
        with pytest.raises(ValueError):
            merkle_root([])

    def test_path_authenticates(self):
        leaves = [10, 20, 30, 40, 50, 60, 70, 80]
        for index in (0, 3, 7):
            path = merkle_path(leaves, index)
            acc = leaves[index]
            idx = index
            for sibling in path:
                acc = hash2(acc, sibling) if idx % 2 == 0 else hash2(sibling, acc)
                idx //= 2
            assert acc == merkle_root(leaves)

    def test_path_index_checked(self):
        with pytest.raises(ValueError):
            merkle_path([1, 2], 5)


class TestMembershipCircuit:
    @pytest.fixture(scope="class")
    def tree(self):
        rng = random.Random(13)
        return [rng.randrange(P) for _ in range(8)]

    @pytest.mark.parametrize("index", [0, 5, 7])
    def test_satisfying(self, tree, index):
        r1cs, assignment, root = merkle_membership_circuit(tree, index)
        assert r1cs.is_satisfied(assignment)
        assert r1cs.public_inputs(assignment) == [root]

    def test_constraint_budget(self, tree):
        """Three tree levels -> three Poseidon evaluations dominate."""
        r1cs, _, _ = merkle_membership_circuit(tree, 2)
        assert 3 * 200 < r1cs.num_constraints < 3 * 300

    def test_forged_leaf_rejected(self, tree):
        r1cs, assignment, _ = merkle_membership_circuit(tree, 2)
        bad = list(assignment)
        leaf_var = 1 + r1cs.num_public  # first private variable
        bad[leaf_var] = (bad[leaf_var] + 1) % P
        assert not r1cs.is_satisfied(bad)

    @pytest.mark.slow
    def test_zero_knowledge_membership_proof(self, tree):
        """The flagship application: prove membership without revealing the
        leaf — real Groth16 over the Merkle/Poseidon circuit."""
        from repro.zksnark.groth16 import Groth16

        r1cs, assignment, root = merkle_membership_circuit(tree, 5)
        groth = Groth16(r1cs)
        pk, vk = groth.setup(random.Random(81))
        proof = groth.prove(pk, assignment, random.Random(82))
        assert groth.verify(vk, proof, [root])
        # a different root (different tree) must not verify
        assert not groth.verify(vk, proof, [(root + 1) % P])
