"""Proof compression: the paper's ~127-byte proof encoding."""

import random

import pytest

from repro.curves.params import curve_by_name
from repro.curves.point import AffinePoint, pmul
from repro.zksnark import pairing as pr
from repro.zksnark.serialize import (
    PROOF_BYTES,
    SerializationError,
    compress_g1,
    compress_g2,
    decompress_g1,
    decompress_g2,
    deserialize_proof,
    serialize_proof,
)

BN254 = curve_by_name("BN254")
G1 = AffinePoint(BN254.gx, BN254.gy)


class TestG1Compression:
    @pytest.mark.parametrize("k", [1, 2, 7, 123456789, 2**200 + 17])
    def test_round_trip(self, k):
        pt = pmul(G1, k, BN254)
        assert decompress_g1(compress_g1(pt)) == pt

    def test_infinity(self):
        data = compress_g1(AffinePoint.identity())
        assert decompress_g1(data).infinity

    def test_length_checked(self):
        with pytest.raises(SerializationError):
            decompress_g1(b"\x00" * 31)

    def test_off_curve_x_rejected(self):
        # x = 0 -> rhs = 3, which is a QR? pick an x known off-curve
        for x in range(1, 50):
            rhs = (x**3 + 3) % BN254.p
            if pow(rhs, (BN254.p - 1) // 2, BN254.p) != 1:
                data = x.to_bytes(32, "big")
                with pytest.raises(SerializationError):
                    decompress_g1(data)
                return
        pytest.skip("no small off-curve x found")

    def test_oversized_x_rejected(self):
        data = (BN254.p + 1).to_bytes(32, "big")
        with pytest.raises(SerializationError):
            decompress_g1(data)

    def test_malformed_infinity_rejected(self):
        bad = bytes([0x40]) + bytes(30) + b"\x01"
        with pytest.raises(SerializationError):
            decompress_g1(bad)


class TestG2Compression:
    @pytest.mark.parametrize("k", [1, 3, 99, 2**60 + 5])
    def test_round_trip(self, k):
        pt = pr.g2_mul(pr.G2_GENERATOR, k)
        assert decompress_g2(compress_g2(pt)) == pt

    def test_infinity(self):
        assert decompress_g2(compress_g2(None)) is None

    def test_length_checked(self):
        with pytest.raises(SerializationError):
            decompress_g2(b"\x00" * 63)

    def test_decompressed_point_on_twist(self):
        pt = pr.g2_mul(pr.G2_GENERATOR, 42)
        got = decompress_g2(compress_g2(pt))
        assert pr.is_on_curve_fq(got, pr.B2)


@pytest.mark.slow
class TestProofSerialization:
    @pytest.fixture(scope="class")
    def proven(self):
        from repro.zksnark.groth16 import Groth16
        from repro.zksnark.workloads import hash_chain_circuit

        r1cs, assignment = hash_chain_circuit(6, seed=2)
        groth = Groth16(r1cs)
        pk, vk = groth.setup(random.Random(31))
        proof = groth.prove(pk, assignment, random.Random(32))
        return groth, vk, r1cs, assignment, proof

    def test_proof_size_matches_paper(self, proven):
        _, _, _, _, proof = proven
        data = serialize_proof(proof)
        assert len(data) == PROOF_BYTES == 128  # paper: "127 bytes"

    def test_round_trip_verifies(self, proven):
        groth, vk, r1cs, assignment, proof = proven
        restored = deserialize_proof(serialize_proof(proof))
        assert restored == proof
        assert groth.verify(vk, restored, r1cs.public_inputs(assignment))

    def test_bit_flip_detected_or_rejected(self, proven):
        """A tampered byte either fails decoding or fails verification."""
        groth, vk, r1cs, assignment, proof = proven
        data = bytearray(serialize_proof(proof))
        data[5] ^= 0x01
        try:
            forged = deserialize_proof(bytes(data))
        except SerializationError:
            return  # rejected at decode time: fine
        assert not groth.verify(vk, forged, r1cs.public_inputs(assignment))
