"""Poseidon-style hash: native vs gadget, structural properties."""

import random

import pytest

from repro.curves.params import curve_by_name
from repro.zksnark.builder import CircuitBuilder
from repro.zksnark.poseidon import (
    CONSTRAINTS_PER_HASH,
    FULL_ROUNDS,
    PARTIAL_ROUNDS,
    hash2,
    hash2_gadget,
    hash_chain,
    mds_matrix,
    permute,
    poseidon_chain_circuit,
    round_constants,
)

P = curve_by_name("BN254").r


class TestParameters:
    def test_constants_deterministic_and_in_field(self):
        consts = round_constants()
        assert consts == round_constants()
        assert len(consts) == (FULL_ROUNDS + PARTIAL_ROUNDS) * 3
        assert all(0 <= c < P for c in consts)

    def test_mds_is_invertible(self):
        """A Cauchy matrix is MDS; at minimum its determinant is non-zero."""
        m = mds_matrix()
        det = (
            m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
        ) % P
        assert det != 0

    def test_mds_no_zero_entries(self):
        assert all(all(e for e in row) for row in mds_matrix())


class TestPermutation:
    def test_width_checked(self):
        with pytest.raises(ValueError):
            permute([1, 2])

    def test_deterministic(self):
        assert permute([1, 2, 3]) == permute([1, 2, 3])

    def test_not_identity(self):
        assert permute([0, 0, 0]) != [0, 0, 0]

    def test_avalanche(self):
        """Single-input change flips the whole state."""
        a = permute([1, 2, 3])
        b = permute([1, 2, 4])
        assert all(x != y for x, y in zip(a, b))

    def test_hash2_collision_resistance_smoke(self):
        rng = random.Random(5)
        seen = set()
        for _ in range(200):
            h = hash2(rng.randrange(P), rng.randrange(P))
            assert h not in seen
            seen.add(h)

    def test_hash_chain_iterates(self):
        assert hash_chain(7, 0) == 7
        assert hash_chain(7, 2) == hash2(hash2(7, 0), 1)


class TestGadget:
    def test_matches_native(self):
        builder = CircuitBuilder()
        a = builder.private(123456789)
        b = builder.private(987654321)
        out = hash2_gadget(builder, a, b)
        builder.public_output(out)
        r1cs, assignment = builder.synthesize()
        assert r1cs.is_satisfied(assignment)
        assert r1cs.public_inputs(assignment) == [hash2(123456789, 987654321)]

    def test_constraint_count(self):
        builder = CircuitBuilder()
        a = builder.private(1)
        b = builder.private(2)
        builder.public_output(hash2_gadget(builder, a, b))
        r1cs, _ = builder.synthesize()
        # all S-boxes plus the public binding, minus the first round's
        # capacity-lane S-box: its input is the constant 0, which the
        # builder folds away for free (3 constraints)
        assert r1cs.num_constraints == CONSTRAINTS_PER_HASH + 1 - 3

    def test_tampered_witness_rejected(self):
        builder = CircuitBuilder()
        a = builder.private(5)
        builder.public_output(hash2_gadget(builder, a, builder.constant(0)))
        r1cs, assignment = builder.synthesize()
        bad = list(assignment)
        bad[3] = (bad[3] + 1) % P  # corrupt an internal S-box wire
        assert not r1cs.is_satisfied(bad)


class TestChainCircuit:
    def test_satisfying_and_correct(self):
        r1cs, assignment = poseidon_chain_circuit(3, seed=9)
        assert r1cs.is_satisfied(assignment)

    def test_constraint_density(self):
        """~240 constraints per chain link — Zcash-Sprout-class density.

        Each link saves up to two round-1 S-boxes (the constant capacity
        lane and the constant chain index), so density sits just below the
        nominal figure.
        """
        r1cs, _ = poseidon_chain_circuit(4, seed=2)
        per_link = r1cs.num_constraints / 4
        assert CONSTRAINTS_PER_HASH - 7 <= per_link <= CONSTRAINTS_PER_HASH + 2

    @pytest.mark.slow
    def test_proves_through_groth16(self):
        from repro.zksnark.groth16 import Groth16

        r1cs, assignment = poseidon_chain_circuit(2, seed=3)
        groth = Groth16(r1cs)
        pk, vk = groth.setup(random.Random(61))
        proof = groth.prove(pk, assignment, random.Random(62))
        assert groth.verify(vk, proof, r1cs.public_inputs(assignment))
