"""R1CS construction and the R1CS -> QAP lift."""

import pytest

from repro.curves.params import curve_by_name
from repro.zksnark.qap import Qap
from repro.zksnark.r1cs import R1cs
from repro.zksnark.workloads import hash_chain_circuit

BN_R = curve_by_name("BN254").r


def cubic_circuit():
    """The classic x^3 + x + 5 = out example."""
    r1cs = R1cs(modulus=BN_R)
    out = r1cs.declare_public(1)[0]
    x = r1cs.new_variable()
    x2 = r1cs.new_variable()
    x3 = r1cs.new_variable()
    r1cs.enforce_product(x, x, x2)
    r1cs.enforce_product(x2, x, x3)
    r1cs.enforce_linear({x3: 1, x: 1, 0: 5}, out)
    x_val = 3
    assignment = [1, (x_val**3 + x_val + 5) % BN_R, x_val, x_val**2, x_val**3]
    return r1cs, assignment


class TestR1cs:
    def test_cubic_satisfied(self):
        r1cs, assignment = cubic_circuit()
        assert r1cs.is_satisfied(assignment)
        assert r1cs.first_violation(assignment) is None

    def test_wrong_witness_detected(self):
        r1cs, assignment = cubic_circuit()
        bad = list(assignment)
        bad[2] = 4  # x no longer matches x^2
        assert not r1cs.is_satisfied(bad)
        assert r1cs.first_violation(bad) == 0

    def test_public_inputs_extracted(self):
        r1cs, assignment = cubic_circuit()
        assert r1cs.public_inputs(assignment) == [35]

    def test_assignment_length_checked(self):
        r1cs, _ = cubic_circuit()
        with pytest.raises(ValueError):
            r1cs.is_satisfied([1, 2])

    def test_constant_wire_checked(self):
        r1cs, assignment = cubic_circuit()
        bad = [7] + assignment[1:]
        with pytest.raises(ValueError):
            r1cs.is_satisfied(bad)

    def test_unknown_variable_rejected(self):
        r1cs = R1cs(modulus=BN_R)
        with pytest.raises(ValueError):
            r1cs.add_constraint({5: 1}, {0: 1}, {0: 1})

    def test_publics_before_privates(self):
        r1cs = R1cs(modulus=BN_R)
        r1cs.new_variable()
        with pytest.raises(ValueError):
            r1cs.declare_public(1)

    def test_zero_coefficients_dropped(self):
        r1cs = R1cs(modulus=BN_R)
        x = r1cs.new_variable()
        r1cs.add_constraint({x: BN_R}, {0: 1}, {0: 0})  # coeff == 0 mod r
        assert r1cs.constraints[0].a == {}

    def test_enforce_constant(self):
        r1cs = R1cs(modulus=BN_R)
        x = r1cs.new_variable()
        r1cs.enforce_constant(x, 42)
        assert r1cs.is_satisfied([1, 42])
        assert not r1cs.is_satisfied([1, 43])

    def test_repr(self):
        r1cs, _ = cubic_circuit()
        assert "3 constraints" in repr(r1cs)


class TestQap:
    def test_domain_size_padding(self):
        r1cs, _ = cubic_circuit()
        qap = Qap.from_r1cs(r1cs)
        assert qap.domain.size == 4  # 3 constraints -> next power of two

    def test_combined_evaluations_match_rows(self):
        r1cs, assignment = cubic_circuit()
        qap = Qap.from_r1cs(r1cs)
        a_e, b_e, c_e = qap.combined_evaluations(assignment)
        for k, constraint in enumerate(r1cs.constraints):
            assert a_e[k] == r1cs.row_dot(constraint.a, assignment)
            assert (a_e[k] * b_e[k] - c_e[k]) % BN_R == 0

    def test_quotient_divisibility(self):
        """(A*B - C) == h * Z as polynomials — the core QAP identity."""
        from repro.zksnark.ntt import poly_eval

        r1cs, assignment = cubic_circuit()
        qap = Qap.from_r1cs(r1cs)
        h = qap.quotient_coefficients(assignment)
        a_e, b_e, c_e = qap.combined_evaluations(assignment)
        a_c = qap.domain.intt(a_e)
        b_c = qap.domain.intt(b_e)
        c_c = qap.domain.intt(c_e)
        n = qap.domain.size
        # check at a few random off-domain points
        import random

        rng = random.Random(1)
        for _ in range(5):
            x = rng.randrange(BN_R)
            lhs = (
                poly_eval(a_c, x, BN_R) * poly_eval(b_c, x, BN_R)
                - poly_eval(c_c, x, BN_R)
            ) % BN_R
            z = (pow(x, n, BN_R) - 1) % BN_R
            rhs = poly_eval(h, x, BN_R) * z % BN_R
            assert lhs == rhs

    def test_bad_witness_rejected(self):
        r1cs, assignment = cubic_circuit()
        qap = Qap.from_r1cs(r1cs)
        bad = list(assignment)
        bad[2] = 7
        with pytest.raises(ValueError):
            qap.quotient_coefficients(bad)

    def test_variable_polynomials_interpolate_columns(self):
        r1cs, _ = cubic_circuit()
        qap = Qap.from_r1cs(r1cs)
        a_polys, b_polys, c_polys = qap.variable_polynomials()
        from repro.zksnark.ntt import poly_eval

        for k, constraint in enumerate(r1cs.constraints):
            w = qap.domain.elements[k]
            for var in range(r1cs.num_variables):
                assert poly_eval(a_polys[var], w, BN_R) == constraint.a.get(var, 0)
                assert poly_eval(b_polys[var], w, BN_R) == constraint.b.get(var, 0)
                assert poly_eval(c_polys[var], w, BN_R) == constraint.c.get(var, 0)

    def test_larger_circuit(self):
        r1cs, assignment = hash_chain_circuit(20, seed=9)
        qap = Qap.from_r1cs(r1cs)
        h = qap.quotient_coefficients(assignment)
        assert len(h) == qap.domain.size - 1
