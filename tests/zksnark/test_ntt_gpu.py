"""GPU-style NTT: functional stage-parallel execution and timing model."""

import random

import pytest

from repro.curves.params import curve_by_name
from repro.gpu.specs import NVIDIA_A100, RTX_4090
from repro.zksnark.ntt import NttDomain
from repro.zksnark.ntt_gpu import (
    ntt_counts,
    ntt_time_ms,
    simulate_gpu_ntt,
)

BN_R = curve_by_name("BN254").r


class TestFunctionalSimulation:
    @pytest.mark.parametrize("log_n", [3, 6, 10])
    def test_matches_serial_ntt(self, log_n):
        n = 1 << log_n
        dom = NttDomain(BN_R, n)
        rng = random.Random(log_n)
        values = [rng.randrange(BN_R) for _ in range(n)]
        got, _ = simulate_gpu_ntt(dom, values)
        assert got == dom.ntt(values)

    def test_length_checked(self):
        dom = NttDomain(BN_R, 8)
        with pytest.raises(ValueError):
            simulate_gpu_ntt(dom, [1, 2, 3])

    def test_stage_count(self):
        dom = NttDomain(BN_R, 64)
        _, counters = simulate_gpu_ntt(dom, [0] * 64)
        assert counters.stages == 6
        assert counters.butterflies == 6 * 32

    def test_wide_stages_force_global_sync(self):
        dom = NttDomain(BN_R, 1 << 10)
        _, counters = simulate_gpu_ntt(dom, [0] * (1 << 10), threads_per_block=256)
        # spans 256..512 -> stages with half >= 256: lengths 512 and 1024
        assert counters.global_syncs == 2

    def test_small_transform_stays_in_block(self):
        dom = NttDomain(BN_R, 64)
        _, counters = simulate_gpu_ntt(dom, [0] * 64, threads_per_block=256)
        assert counters.global_syncs == 0
        assert counters.kernel_launches == 1


class TestAnalyticCounts:
    def test_matches_functional(self):
        dom = NttDomain(BN_R, 1 << 10)
        _, functional = simulate_gpu_ntt(dom, [0] * (1 << 10))
        analytic = ntt_counts(10)
        assert analytic.butterflies == functional.butterflies
        assert analytic.stages == functional.stages
        assert analytic.device_bytes == functional.device_bytes
        assert analytic.global_syncs == functional.global_syncs


class TestTimingModel:
    def test_time_grows_loglinearly(self):
        t20 = ntt_time_ms(20)
        t24 = ntt_time_ms(24)
        # n log n scaling: 2^24 is 16x the points and 1.2x the stages
        assert 14 < t24 / t20 < 25

    def test_rtx_faster_or_memory_bound(self):
        # NTT is bandwidth-heavy; A100's HBM can beat the RTX
        assert ntt_time_ms(24, RTX_4090) > 0
        assert ntt_time_ms(24, NVIDIA_A100) > 0

    def test_magnitude_sane(self):
        """A 2^24 NTT on an A100 lands in the few-ms band (Sppark-class)."""
        t = ntt_time_ms(24)
        assert 0.5 < t < 50
