"""Prime-field element API tests."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.fields.prime_field import PrimeField

F13 = PrimeField(13)
F_BN = PrimeField(21888242871839275222246405745257275088696311157297823662689037894645226208583)


class TestBasics:
    def test_rejects_bad_modulus(self):
        with pytest.raises(ValueError):
            PrimeField(1)

    def test_constants(self):
        assert int(F13.zero) == 0
        assert int(F13.one) == 1

    def test_arithmetic(self):
        assert int(F13(7) + F13(8)) == 2
        assert int(F13(7) - F13(8)) == 12
        assert int(F13(7) * F13(8)) == 4
        assert int(-F13(1)) == 12

    def test_int_coercion(self):
        assert F13(7) + 8 == F13(2)
        assert 8 + F13(7) == F13(2)
        assert 1 - F13(2) == F13(12)
        assert F13(5) == 18  # int equality mod p

    def test_mixed_fields_rejected(self):
        with pytest.raises(ValueError):
            F13(1) + PrimeField(17)(1)

    def test_division_and_inverse(self):
        x = F13(5)
        assert int(x * x.inverse()) == 1
        assert int(F13(10) / F13(5)) == 2

    def test_zero_inverse_raises(self):
        with pytest.raises(ZeroDivisionError):
            F13.zero.inverse()

    def test_pow_negative_exponent(self):
        assert F13(5) ** -1 == F13(5).inverse()

    def test_hash_and_eq(self):
        assert len({F13(5), F13(5 + 13)}) == 1

    def test_repr_mentions_modulus(self):
        assert "mod" in repr(F13(5))


class TestFieldAxioms:
    @given(st.integers(0, 10**9), st.integers(0, 10**9), st.integers(0, 10**9))
    def test_distributivity(self, a, b, c):
        x, y, z = F_BN(a), F_BN(b), F_BN(c)
        assert x * (y + z) == x * y + x * z

    @given(st.integers(1, 10**9))
    def test_inverse_cancels(self, a):
        x = F_BN(a)
        assert x * x.inverse() == F_BN.one


class TestSqrt:
    def test_sqrt_of_zero(self):
        assert int(F13.zero.sqrt()) == 0

    def test_sqrt_of_square(self):
        for v in range(1, 13):
            sq = F13(v * v)
            root = sq.sqrt()
            assert root is not None
            assert root * root == sq

    def test_non_residue_returns_none(self):
        # 2 is a non-residue mod 13
        assert F13(2).sqrt() is None

    def test_tonelli_shanks_path(self):
        # p = 17 has p % 4 == 1, forcing the Tonelli–Shanks branch
        f17 = PrimeField(17)
        for v in range(1, 17):
            sq = f17(v * v)
            root = sq.sqrt()
            assert root * root == sq

    def test_large_field_sqrt(self):
        rng = random.Random(7)
        for _ in range(5):
            v = F_BN(rng.randrange(1, F_BN.modulus))
            sq = v * v
            root = sq.sqrt()
            assert root * root == sq

    def test_random_sampler(self):
        rng = random.Random(0)
        assert 0 <= int(F_BN.random(rng)) < F_BN.modulus
