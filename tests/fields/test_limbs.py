"""Unit and property tests for 32-bit limb arithmetic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fields.limbs import (
    OpCounter,
    WORD_MASK,
    from_limbs,
    limb_count,
    limbs_add,
    limbs_cmp,
    limbs_mul,
    limbs_mul_word,
    limbs_sub,
    to_limbs,
)

values_256 = st.integers(min_value=0, max_value=(1 << 256) - 1)
words = st.integers(min_value=0, max_value=WORD_MASK)


class TestConversions:
    def test_round_trip_zero(self):
        assert from_limbs(to_limbs(0, 4)) == 0

    def test_round_trip_max(self):
        value = (1 << 128) - 1
        assert from_limbs(to_limbs(value, 4)) == value

    def test_to_limbs_little_endian(self):
        assert to_limbs(1 << 32, 2) == [0, 1]

    def test_to_limbs_rejects_overflow(self):
        with pytest.raises(ValueError):
            to_limbs(1 << 64, 2)

    def test_to_limbs_rejects_negative(self):
        with pytest.raises(ValueError):
            to_limbs(-1, 2)

    def test_from_limbs_rejects_bad_limb(self):
        with pytest.raises(ValueError):
            from_limbs([1 << 32])

    @given(values_256)
    def test_round_trip_property(self, value):
        assert from_limbs(to_limbs(value, 8)) == value


class TestLimbCount:
    @pytest.mark.parametrize(
        "bits,expected",
        [(1, 1), (32, 1), (33, 2), (254, 8), (377, 12), (381, 12), (753, 24)],
    )
    def test_paper_curve_limb_counts(self, bits, expected):
        assert limb_count(bits) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            limb_count(0)


class TestAddSub:
    @given(values_256, values_256)
    def test_add_matches_int(self, a, b):
        la, lb = to_limbs(a, 8), to_limbs(b, 8)
        out, carry = limbs_add(la, lb)
        assert from_limbs(out) + (carry << 256) == a + b

    @given(values_256, values_256)
    def test_sub_matches_int(self, a, b):
        la, lb = to_limbs(a, 8), to_limbs(b, 8)
        out, borrow = limbs_sub(la, lb)
        assert from_limbs(out) - (borrow << 256) == a - b

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            limbs_add([0], [0, 0])

    def test_add_counts_one_add_per_limb(self):
        counter = OpCounter()
        limbs_add([1] * 8, [2] * 8, counter)
        assert counter.add == 8
        assert counter.mul == 0


class TestMul:
    @given(values_256, values_256)
    def test_mul_matches_int(self, a, b):
        la, lb = to_limbs(a, 8), to_limbs(b, 8)
        assert from_limbs(limbs_mul(la, lb)) == a * b

    @given(values_256, words)
    def test_mul_word_matches_int(self, a, w):
        assert from_limbs(limbs_mul_word(to_limbs(a, 8), w)) == a * w

    def test_mul_counts_quadratic_mults(self):
        counter = OpCounter()
        limbs_mul([1] * 8, [1] * 8, counter)
        assert counter.mul == 64

    def test_mul_word_rejects_oversized_word(self):
        with pytest.raises(ValueError):
            limbs_mul_word([0], 1 << 32)


class TestKaratsuba:
    @given(
        st.integers(0, (1 << 768) - 1),
        st.integers(0, (1 << 768) - 1),
        st.sampled_from([8, 12, 16, 24]),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_schoolbook(self, a, b, n):
        from repro.fields.limbs import limbs_mul_karatsuba

        mask = (1 << (32 * n)) - 1
        a, b = a & mask, b & mask
        la, lb = to_limbs(a, n), to_limbs(b, n)
        assert from_limbs(limbs_mul_karatsuba(la, lb)) == a * b

    def test_saves_multiplies_at_24_limbs(self):
        """MNT4753-width operands: ~44% fewer word multiplies."""
        from repro.fields.limbs import limbs_mul_karatsuba

        school, kara = OpCounter(), OpCounter()
        a = to_limbs((1 << 753) - 19, 24)
        limbs_mul(a, a, school)
        limbs_mul_karatsuba(a, a, kara)
        assert kara.mul == 324  # 3^2 * 36 vs 24^2 = 576
        assert kara.mul < 0.6 * school.mul

    def test_falls_back_below_threshold(self):
        from repro.fields.limbs import limbs_mul_karatsuba

        school, kara = OpCounter(), OpCounter()
        a = to_limbs((1 << 250) - 1, 8)
        limbs_mul(a, a, school)
        limbs_mul_karatsuba(a, a, kara)
        assert kara.mul == school.mul  # 8 limbs: schoolbook path

    def test_odd_limb_count_falls_back(self):
        from repro.fields.limbs import limbs_mul_karatsuba

        a = to_limbs((1 << 200) - 1, 9)
        assert from_limbs(limbs_mul_karatsuba(a, a)) == ((1 << 200) - 1) ** 2

    def test_length_mismatch(self):
        from repro.fields.limbs import limbs_mul_karatsuba

        with pytest.raises(ValueError):
            limbs_mul_karatsuba([0] * 4, [0] * 8)


class TestCmp:
    @given(values_256, values_256)
    def test_cmp_matches_int(self, a, b):
        expected = (a > b) - (a < b)
        assert limbs_cmp(to_limbs(a, 8), to_limbs(b, 8)) == expected


class TestOpCounter:
    def test_merge_accumulates(self):
        a = OpCounter(mul=1, add=2, mov=3, extra={"x": 1})
        b = OpCounter(mul=10, add=20, mov=30, extra={"x": 2, "y": 5})
        a.merge(b)
        assert (a.mul, a.add, a.mov) == (11, 22, 33)
        assert a.extra == {"x": 3, "y": 5}

    def test_total_and_reset(self):
        c = OpCounter(mul=1, add=2, mov=3)
        assert c.total == 6
        c.reset()
        assert c.total == 0
