"""Montgomery multiplication: SOS / CIOS / FIOS vs integer reference."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.curves.params import curve_by_name, list_curves
from repro.fields.limbs import OpCounter, from_limbs, to_limbs
from repro.fields.montgomery import MontgomeryContext

BN254_P = curve_by_name("BN254").p

METHODS = ["sos", "cios", "fios"]


@pytest.fixture(scope="module")
def ctx():
    return MontgomeryContext(BN254_P)


class TestContextSetup:
    def test_rejects_even_modulus(self):
        with pytest.raises(ValueError):
            MontgomeryContext(100)

    def test_rejects_tiny_modulus(self):
        with pytest.raises(ValueError):
            MontgomeryContext(1)

    def test_rejects_undersized_limb_count(self):
        with pytest.raises(ValueError):
            MontgomeryContext(BN254_P, num_limbs=4)

    def test_n0_prime_identity(self, ctx):
        # n * n' == -1 mod 2^32  <=>  n * n0' == 2^32 - 1 mod 2^32
        assert (BN254_P * ctx.n0_prime) % (1 << 32) == (1 << 32) - 1

    def test_domain_round_trip(self, ctx):
        for x in [0, 1, 12345, BN254_P - 1]:
            assert ctx.from_mont(ctx.to_mont(x)) == x


class TestCorrectness:
    @pytest.mark.parametrize("method", METHODS)
    def test_small_product(self, ctx, method):
        a, b = 3, 5
        am, bm = ctx.to_mont(a), ctx.to_mont(b)
        product = ctx.mul(am, bm, method=method)
        assert ctx.from_mont(product) == 15

    @pytest.mark.parametrize("method", METHODS)
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, BN254_P - 1), st.integers(0, BN254_P - 1))
    def test_matches_integer_reference(self, ctx, method, a, b):
        am, bm = ctx.to_mont(a), ctx.to_mont(b)
        assert ctx.from_mont(ctx.mul(am, bm, method=method)) == (a * b) % BN254_P

    @pytest.mark.parametrize("method", METHODS)
    def test_matches_mont_mul_int(self, ctx, method):
        am, bm = ctx.to_mont(0xDEADBEEF), ctx.to_mont(0xC0FFEE)
        assert ctx.mul(am, bm, method=method) == ctx.mont_mul_int(am, bm)

    @pytest.mark.parametrize("method", METHODS)
    def test_edge_operands(self, ctx, method):
        for a, b in [(0, 0), (0, BN254_P - 1), (BN254_P - 1, BN254_P - 1)]:
            am, bm = ctx.to_mont(a), ctx.to_mont(b)
            assert ctx.from_mont(ctx.mul(am, bm, method=method)) == (a * b) % BN254_P

    def test_all_paper_curves(self):
        for curve in list_curves():
            ctx = MontgomeryContext(curve.p)
            a, b = curve.p // 3, curve.p // 7
            am, bm = ctx.to_mont(a), ctx.to_mont(b)
            for method in METHODS:
                assert ctx.from_mont(ctx.mul(am, bm, method=method)) == (a * b) % curve.p

    def test_unknown_method_rejected(self, ctx):
        with pytest.raises(ValueError):
            ctx.mul(1, 1, method="karatsuba")

    def test_operand_length_checked(self, ctx):
        with pytest.raises(ValueError):
            ctx.mont_mul_sos([0] * 4, [0] * 8)


class TestOpCounts:
    """Word-op counts drive the GPU cost model; pin their structure."""

    def test_sos_mul_count(self, ctx):
        n = ctx.num_limbs
        counter = OpCounter()
        a = to_limbs(ctx.to_mont(123), n)
        b = to_limbs(ctx.to_mont(456), n)
        ctx.mont_mul_sos(a, b, counter)
        # N^2 (product) + N (m_i) + N^2 (m x n), Koc et al.'s 2N^2 + N
        assert counter.mul == 2 * n * n + n

    def test_cios_mul_count(self, ctx):
        n = ctx.num_limbs
        counter = OpCounter()
        a = to_limbs(ctx.to_mont(123), n)
        b = to_limbs(ctx.to_mont(456), n)
        ctx.mont_mul_cios(a, b, counter)
        assert counter.mul == 2 * n * n + n

    def test_fios_mul_count(self, ctx):
        n = ctx.num_limbs
        counter = OpCounter()
        a = to_limbs(ctx.to_mont(123), n)
        b = to_limbs(ctx.to_mont(456), n)
        ctx.mont_mul_fios(a, b, counter)
        assert counter.mul == 2 * n * n + n

    def test_counts_scale_quadratically_with_limbs(self):
        counts = {}
        for name in ("BN254", "MNT4753"):
            curve = curve_by_name(name)
            ctx = MontgomeryContext(curve.p)
            counter = OpCounter()
            x = to_limbs(ctx.to_mont(7), ctx.num_limbs)
            ctx.mont_mul_sos(x, x, counter)
            counts[name] = counter.mul
        # 24 limbs vs 8 limbs: multiply count ratio == (2*24^2+24)/(2*8^2+8)
        assert counts["MNT4753"] / counts["BN254"] == pytest.approx(1176 / 136)
