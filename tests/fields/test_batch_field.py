"""Differential: batch field arithmetic vs ``PrimeField``, lane for lane.

Every :class:`~repro.fields.batch.BatchPrimeField` operation must agree
elementwise with the scalar field it vectorizes — on the single-limb
fast path (toy modulus, ``p < 2^32``) and on the multi-limb Montgomery
path (every registered curve's base field).  Hypothesis drives the lane
values; the moduli are the ones the repo actually computes over.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.curves.params import list_curves
from repro.fields.prime_field import PrimeField
from tests.conftest import TOY_CURVE

#: one small-path modulus, one boundary-ish small prime, and every
#: registered curve's base field (all multi-limb)
MODULI = {
    "toy": TOY_CURVE.p,
    "mersenne31": (1 << 31) - 1,
    **{c.name: c.p for c in list_curves()},
}

lane_lists = st.lists(st.integers(min_value=0, max_value=1 << 512), min_size=1, max_size=8)


@pytest.fixture(scope="module", params=sorted(MODULI))
def field(request):
    return PrimeField(MODULI[request.param])


class TestBatchMatchesScalar:
    @given(a=lane_lists, b=lane_lists)
    @settings(max_examples=20, deadline=None)
    def test_add_sub_mul(self, field, a, b):
        p = field.modulus
        n = min(len(a), len(b))
        a, b = [v % p for v in a[:n]], [v % p for v in b[:n]]
        f = field.batch()
        ea, eb = f.encode(a), f.encode(b)
        assert f.decode(f.add(ea, eb)) == [(x + y) % p for x, y in zip(a, b)]
        assert f.decode(f.sub(ea, eb)) == [(x - y) % p for x, y in zip(a, b)]
        assert f.decode(f.mul(ea, eb)) == [(x * y) % p for x, y in zip(a, b)]

    @given(a=lane_lists)
    @settings(max_examples=20, deadline=None)
    def test_unary_ops(self, field, a):
        p = field.modulus
        a = [v % p for v in a]
        f = field.batch()
        ea = f.encode(a)
        assert f.decode(f.neg(ea)) == [(-x) % p for x in a]
        assert f.decode(f.square(ea)) == [x * x % p for x in a]
        assert f.decode(f.double(ea)) == [2 * x % p for x in a]
        assert f.decode(f.triple(ea)) == [3 * x % p for x in a]
        assert f.is_zero(ea).tolist() == [x == 0 for x in a]

    @given(a=lane_lists)
    @settings(max_examples=10, deadline=None)
    def test_batch_inverse(self, field, a):
        p = field.modulus
        a = [v % p for v in a if v % p != 0]
        f = field.batch()
        assert f.inv(a) == [pow(x, -1, p) for x in a]

    @given(a=lane_lists, b=lane_lists, data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_select(self, field, a, b, data):
        p = field.modulus
        n = min(len(a), len(b))
        a, b = [v % p for v in a[:n]], [v % p for v in b[:n]]
        mask = data.draw(st.lists(st.booleans(), min_size=n, max_size=n))
        f = field.batch()
        picked = f.decode(f.select(np.asarray(mask), f.encode(a), f.encode(b)))
        assert picked == [x if m else y for m, x, y in zip(mask, a, b)]


class TestEncodeDecodeRoundTrip:
    @given(a=lane_lists)
    @settings(max_examples=20, deadline=None)
    def test_round_trip(self, field, a):
        p = field.modulus
        a = [v % p for v in a]
        f = field.batch()
        assert f.decode(f.encode(a)) == a

    def test_non_canonical_inputs_reduce(self, field):
        """Unreduced/negative ints keep mod-p semantics where accepted."""
        p = field.modulus
        f = field.batch()
        values = [-1, -p, p, p + 7, 2 * p + 5, (1 << 520) + 3]
        if f.small:
            # the single-limb encode fast path falls back to per-element
            # reduction for anything uint64 conversion rejects
            assert f.decode(f.encode(values)) == [v % p for v in values]
        for v in values:  # constant() reduces on every path
            assert f.decode(f.constant(v)) == [v % p]


def test_batch_is_cached_per_field():
    field = PrimeField(MODULI["toy"])
    assert field.batch() is field.batch()
