"""Tower extension fields and their isomorphism to the flat pairing basis."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.fields.extension import (
    Fp2,
    Fp6,
    Fp12,
    P,
    flat_to_tower,
    tower_to_flat,
)
from repro.zksnark.pairing import FQ12

ints = st.integers(0, P - 1)


def _rand_fp2(rng):
    return Fp2(rng.randrange(P), rng.randrange(P))


def _rand_fp6(rng):
    return Fp6(_rand_fp2(rng), _rand_fp2(rng), _rand_fp2(rng))


def _rand_fp12(rng):
    return Fp12(_rand_fp6(rng), _rand_fp6(rng))


class TestFp2:
    def test_u_squared(self):
        u = Fp2(0, 1)
        assert u * u == Fp2(-1, 0)

    @given(ints, ints, ints, ints)
    @settings(max_examples=25, deadline=None)
    def test_mul_commutative(self, a, b, c, d):
        x, y = Fp2(a, b), Fp2(c, d)
        assert x * y == y * x

    @given(ints, ints)
    @settings(max_examples=25, deadline=None)
    def test_square_matches_mul(self, a, b):
        x = Fp2(a, b)
        assert x.square() == x * x

    @given(ints, ints)
    @settings(max_examples=25, deadline=None)
    def test_inverse(self, a, b):
        x = Fp2(a, b)
        if x.is_zero():
            return
        assert x * x.inverse() == Fp2.one()

    def test_zero_inverse_raises(self):
        with pytest.raises(ZeroDivisionError):
            Fp2.zero().inverse()

    def test_mul_by_xi(self):
        x = Fp2(3, 7)
        assert x.mul_by_xi() == x * Fp2(9, 1)

    def test_conjugate_norm(self):
        x = Fp2(3, 7)
        n = x * x.conjugate()
        assert n.b == 0
        assert n.a == (3 * 3 + 7 * 7) % P


class TestFp6:
    def test_v_cubed_is_xi(self):
        v = Fp6(Fp2.zero(), Fp2.one(), Fp2.zero())
        v3 = v * v * v
        assert v3 == Fp6(Fp2(9, 1), Fp2.zero(), Fp2.zero())

    def test_mul_by_v_matches(self):
        rng = random.Random(1)
        x = _rand_fp6(rng)
        v = Fp6(Fp2.zero(), Fp2.one(), Fp2.zero())
        assert x.mul_by_v() == x * v

    def test_associative(self):
        rng = random.Random(2)
        x, y, z = (_rand_fp6(rng) for _ in range(3))
        assert (x * y) * z == x * (y * z)

    def test_inverse(self):
        rng = random.Random(3)
        for _ in range(5):
            x = _rand_fp6(rng)
            assert x * x.inverse() == Fp6.one()

    def test_distributive(self):
        rng = random.Random(4)
        x, y, z = (_rand_fp6(rng) for _ in range(3))
        assert x * (y + z) == x * y + x * z


class TestFp12:
    def test_w_squared_is_v(self):
        w = Fp12(Fp6.zero(), Fp6.one())
        v = Fp12(Fp6(Fp2.zero(), Fp2.one(), Fp2.zero()), Fp6.zero())
        assert w * w == v

    def test_inverse(self):
        rng = random.Random(5)
        x = _rand_fp12(rng)
        assert x * x.inverse() == Fp12.one()

    def test_pow(self):
        rng = random.Random(6)
        x = _rand_fp12(rng)
        assert x.pow(5) == x * x * x * x * x
        assert x.pow(0) == Fp12.one()
        assert x.pow(-1) == x.inverse()

    def test_conjugate_involution(self):
        rng = random.Random(7)
        x = _rand_fp12(rng)
        assert x.conjugate().conjugate() == x


class TestIsomorphism:
    """tower_to_flat must be a ring isomorphism onto the pairing's FQ12."""

    def test_round_trip(self):
        rng = random.Random(8)
        x = _rand_fp12(rng)
        assert flat_to_tower(tower_to_flat(x)) == x

    def test_one_maps_to_one(self):
        assert tower_to_flat(Fp12.one()) == FQ12.one().coeffs

    def test_w_maps_to_w(self):
        w_tower = Fp12(Fp6.zero(), Fp6.one())
        assert tower_to_flat(w_tower) == tuple([0, 1] + [0] * 10)

    def test_addition_homomorphism(self):
        rng = random.Random(9)
        x, y = _rand_fp12(rng), _rand_fp12(rng)
        lhs = FQ12(list(tower_to_flat(x))) + FQ12(list(tower_to_flat(y)))
        rhs = FQ12(list(tower_to_flat(x + y)))
        assert lhs == rhs

    def test_multiplication_homomorphism(self):
        """The load-bearing cross-check: tower mul == flat-basis mul."""
        rng = random.Random(10)
        for _ in range(5):
            x, y = _rand_fp12(rng), _rand_fp12(rng)
            lhs = FQ12(list(tower_to_flat(x))) * FQ12(list(tower_to_flat(y)))
            rhs = FQ12(list(tower_to_flat(x * y)))
            assert lhs == rhs

    def test_inverse_homomorphism(self):
        rng = random.Random(11)
        x = _rand_fp12(rng)
        lhs = FQ12(list(tower_to_flat(x))).inverse()
        rhs = FQ12(list(tower_to_flat(x.inverse())))
        assert lhs == rhs

    def test_flat_to_tower_validates_length(self):
        with pytest.raises(ValueError):
            flat_to_tower([1, 2, 3])
