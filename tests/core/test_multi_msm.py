"""Cross-MSM pipelining (§3.2.3): scheduler properties and the closed form."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.distmsm import DistMsm
from repro.core.multi_msm import (
    MsmJob,
    groth16_msm_jobs,
    identical_jobs_makespan,
    msm_job_from_estimate,
    proof_msm_schedule,
    schedule_pipeline,
)
from repro.curves.params import curve_by_name
from repro.gpu.cluster import MultiGpuSystem

BN254 = curve_by_name("BN254")

times = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


class TestScheduler:
    def test_empty(self):
        sched = schedule_pipeline([])
        assert sched.pipelined_ms == 0.0
        assert sched.speedup == 1.0

    def test_single_job_no_overlap(self):
        sched = schedule_pipeline([MsmJob("a", 10, 3)])
        assert sched.pipelined_ms == 13.0
        assert sched.serial_ms == 13.0

    def test_cpu_hides_behind_gpu(self):
        """CPU reduces shorter than GPU stages vanish except the tail."""
        jobs = [MsmJob(f"m{i}", 10, 2) for i in range(4)]
        sched = schedule_pipeline(jobs)
        assert sched.pipelined_ms == pytest.approx(4 * 10 + 2)
        assert sched.serial_ms == pytest.approx(48)

    def test_cpu_bound_pipeline(self):
        jobs = [MsmJob(f"m{i}", 2, 10) for i in range(4)]
        sched = schedule_pipeline(jobs)
        assert sched.pipelined_ms == pytest.approx(2 + 4 * 10)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            schedule_pipeline([MsmJob("bad", -1, 0)])

    def test_timeline_ordering(self):
        jobs = [MsmJob("a", 5, 4), MsmJob("b", 5, 4)]
        sched = schedule_pipeline(jobs)
        (_, ga0, ga1, ca0, ca1), (_, gb0, gb1, cb0, cb1) = sched.timeline
        assert ga1 == gb0  # GPU back to back
        assert ca0 >= ga1  # CPU waits for its GPU stage
        assert cb0 >= ca1  # CPU stages in order

    @given(st.lists(st.tuples(times, times), min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_pipelined_never_worse_than_serial(self, raw):
        jobs = [MsmJob(str(i), g, c) for i, (g, c) in enumerate(raw)]
        sched = schedule_pipeline(jobs)
        assert sched.pipelined_ms <= sched.serial_ms + 1e-9

    @given(st.lists(st.tuples(times, times), min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_lower_bound_is_bottleneck_resource(self, raw):
        jobs = [MsmJob(str(i), g, c) for i, (g, c) in enumerate(raw)]
        sched = schedule_pipeline(jobs)
        gpu_total = sum(j.gpu_ms for j in jobs)
        cpu_total = sum(j.cpu_ms for j in jobs)
        assert sched.pipelined_ms >= max(gpu_total, cpu_total) - 1e-9

    @given(times, times, st.integers(1, 20))
    @settings(max_examples=40, deadline=None)
    def test_closed_form_matches_simulation(self, g, c, k):
        jobs = [MsmJob(str(i), g, c) for i in range(k)]
        assert schedule_pipeline(jobs).pipelined_ms == pytest.approx(
            identical_jobs_makespan(g, c, k)
        )

    def test_closed_form_empty(self):
        assert identical_jobs_makespan(1, 1, 0) == 0.0


class TestGroth16Schedule:
    @pytest.fixture(scope="class")
    def engine(self):
        return DistMsm(MultiGpuSystem(8))

    def test_five_msm_jobs(self, engine):
        jobs = groth16_msm_jobs(engine, BN254, 1 << 20)
        assert [j.label for j in jobs] == [
            "A-query", "B-query(G1)", "B-query(G2)", "C-query", "H-query",
        ]
        assert all(j.gpu_ms > 0 for j in jobs)

    def test_g2_msm_triple_cost(self, engine):
        jobs = groth16_msm_jobs(engine, BN254, 1 << 20)
        g1 = next(j for j in jobs if j.label == "B-query(G1)")
        g2 = next(j for j in jobs if j.label == "B-query(G2)")
        assert g2.gpu_ms == pytest.approx(3 * g1.gpu_ms)

    def test_pipelining_pays(self, engine):
        """The §3.2.3 claim: overlapping reduces beats running serially."""
        sched = proof_msm_schedule(engine, BN254, 1 << 20)
        assert sched.speedup > 1.0

    def test_rejects_bad_constraints(self, engine):
        with pytest.raises(ValueError):
            groth16_msm_jobs(engine, BN254, 0)

    def test_job_split_reconstructs_estimate(self, engine):
        """GPU + raw CPU stages bound the engine's own overlapped total."""
        job = msm_job_from_estimate(engine, BN254, 1 << 20)
        est = engine.estimate(BN254, 1 << 20)
        assert job.gpu_ms <= est.time_ms + 1e-6
        assert job.gpu_ms + job.cpu_ms >= est.time_ms - 1e-6


class TestGantt:
    def test_empty(self):
        from repro.core.multi_msm import render_gantt

        assert "empty" in render_gantt(schedule_pipeline([]))

    def test_renders_all_jobs(self):
        from repro.core.multi_msm import render_gantt

        sched = schedule_pipeline([MsmJob("alpha", 5, 2), MsmJob("beta", 3, 1)])
        out = render_gantt(sched)
        assert "alpha" in out and "beta" in out
        assert "#" in out and "~" in out
        assert "makespan" in out

    def test_proof_schedule_renders(self):
        from repro.core.multi_msm import proof_msm_schedule, render_gantt

        engine = DistMsm(MultiGpuSystem(8))
        out = render_gantt(proof_msm_schedule(engine, BN254, 1 << 18))
        assert "H-query" in out
