"""Differential: the vectorized MSM backend vs the scalar loops it replaced.

Three layers of parity, all bit-exact:

* :func:`repro.core.vectorized.window_digit_matrix` row-for-row against
  the scalar ``signed_windows`` / ``unsigned_windows`` decompositions,
  including error parity (Hypothesis-driven);
* full ``DistMsm.execute`` with ``vectorized=True`` vs ``False`` —
  result point, event counters, and the modelled ``time_ms`` — on the
  toy curve across config ablations and on every registered curve;
* the ``"auto"`` routing policy and its config validation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.backends import FunctionalBackend
from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm
from repro.core.vectorized import window_digit_matrix
from repro.curves.params import curve_by_name, list_curves
from repro.curves.sampling import msm_instance
from repro.curves.scalar import reassemble, signed_windows, unsigned_windows
from repro.gpu.cluster import MultiGpuSystem
from repro.observe import Tracer
from tests.conftest import TOY_CURVE

window_cfg = st.tuples(
    st.integers(min_value=2, max_value=16),  # window size s
    st.integers(min_value=1, max_value=12),  # window count
)


class TestWindowDigitMatrix:
    @given(cfg=window_cfg, data=st.data(), signed=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar_decomposition(self, cfg, data, signed):
        s, count = cfg
        scalars = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=(1 << (s * count)) - 1),
                min_size=1,
                max_size=16,
            )
        )
        matrix = window_digit_matrix(scalars, s, count, signed)
        ref = signed_windows if signed else unsigned_windows
        assert matrix.shape == (len(scalars), count + (1 if signed else 0))
        for row, k in zip(matrix.tolist(), scalars):
            assert row == ref(k, s, count)
            assert reassemble(row, s) == k

    @given(cfg=window_cfg, signed=st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_error_parity_overflow(self, cfg, signed):
        s, count = cfg
        too_big = 1 << (s * count)
        with pytest.raises(ValueError, match="does not fit"):
            window_digit_matrix([0, too_big], s, count, signed)

    @pytest.mark.parametrize("signed", [False, True])
    def test_error_parity_negative(self, signed):
        with pytest.raises(ValueError, match="non-negative"):
            window_digit_matrix([3, -1], 4, 8, signed)

    def test_digit_range(self):
        matrix = window_digit_matrix(list(range(256)), 4, 2, signed=True)
        assert int(matrix.min()) >= -(1 << 3)
        assert int(matrix.max()) <= 1 << 3


def _engines(curve, window, **overrides):
    system = MultiGpuSystem(num_gpus=2)
    return (
        DistMsm(system, DistMsmConfig(window_size=window, vectorized=False, **overrides)),
        DistMsm(system, DistMsmConfig(window_size=window, vectorized=True, **overrides)),
    )


class TestExecuteParity:
    """Whole-pipeline runs must be indistinguishable between the paths."""

    @pytest.mark.parametrize(
        "overrides",
        [
            {},
            {"signed_digits": True},
            {"precompute": True},
            {"signed_digits": True, "precompute": True},
            {"scatter": "naive"},
            {"multi_gpu": "windows"},
        ],
        ids=["default", "signed", "precompute", "signed+precompute", "naive", "windows"],
    )
    @pytest.mark.parametrize("seed", [0, 1])
    def test_toy_ablations(self, overrides, seed):
        scalars, points = msm_instance(TOY_CURVE, 256, seed=seed)
        scalar_engine, vector_engine = _engines(TOY_CURVE, 6, **overrides)
        res_s = scalar_engine.execute(scalars, points, TOY_CURVE)
        res_v = vector_engine.execute(scalars, points, TOY_CURVE)
        assert res_s.point == res_v.point
        assert res_s.counters == res_v.counters
        assert res_s.time_ms == res_v.time_ms

    def test_all_registered_curves(self, any_curve):
        scalars, points = msm_instance(any_curve, 48, seed=5)
        scalar_engine, vector_engine = _engines(any_curve, 8)
        res_s = scalar_engine.execute(scalars, points, any_curve)
        res_v = vector_engine.execute(scalars, points, any_curve)
        assert res_s.point == res_v.point
        assert res_s.counters == res_v.counters
        assert res_s.time_ms == res_v.time_ms

    def test_edge_scalars(self):
        """Zero, one, r-1 and duplicate-point lanes through both paths."""
        _, points = msm_instance(TOY_CURVE, 8, seed=2)
        points = points[:4] * 2  # duplicates stress bucket accumulation
        scalars = [0, 1, TOY_CURVE.r - 1, 0, TOY_CURVE.r - 1, 1, 2, 3]
        scalar_engine, vector_engine = _engines(TOY_CURVE, 6)
        res_s = scalar_engine.execute(scalars, points, TOY_CURVE)
        res_v = vector_engine.execute(scalars, points, TOY_CURVE)
        assert res_s.point == res_v.point
        assert res_s.counters == res_v.counters

    def test_traced_run_falls_back_but_matches(self):
        """A memory tracer forces the scalar loops; results stay identical."""
        scalars, points = msm_instance(TOY_CURVE, 128, seed=9)
        _, vector_engine = _engines(TOY_CURVE, 6)
        plain = vector_engine.execute(scalars, points, TOY_CURVE)
        traced = vector_engine.execute(scalars, points, TOY_CURVE, trace=Tracer())
        assert plain.point == traced.point
        assert plain.time_ms == traced.time_ms


class TestFaultParity:
    """Fault injection through the vectorized path: same points, same plans."""

    @pytest.mark.parametrize("gpu", [0, 1])
    @pytest.mark.parametrize("at", [0.0, 0.02])
    def test_kill_sweep_matches_scalar_path(self, gpu, at):
        from repro.engine.faults import FaultPlan, GpuFailure

        scalars, points = msm_instance(TOY_CURVE, 64, seed=3)
        scalar_engine, vector_engine = _engines(TOY_CURVE, 6)
        expected = scalar_engine.execute(scalars, points, TOY_CURVE).point
        plan = FaultPlan.of(GpuFailure(at, gpu))
        res_s = scalar_engine.execute(scalars, points, TOY_CURVE, faults=plan)
        res_v = vector_engine.execute(scalars, points, TOY_CURVE, faults=plan)
        assert res_s.point == expected
        assert res_v.point == expected
        assert res_s.time_ms == res_v.time_ms
        assert res_s.timeline.spans == res_v.timeline.spans

    @pytest.mark.parametrize("seed", range(4))
    def test_chaos_sweep_matches_scalar_path(self, seed):
        from repro.faults import random_fault_plan

        scalars, points = msm_instance(TOY_CURVE, 64, seed=7)
        scalar_engine, vector_engine = _engines(TOY_CURVE, 6)
        horizon = max(scalar_engine.execute(scalars, points, TOY_CURVE).time_ms, 0.05)
        plan = random_fault_plan(
            seed, 2, horizon, max_gpu_failures=1, byzantine_probability=0.5
        )
        res_s = scalar_engine.execute(scalars, points, TOY_CURVE, faults=plan)
        res_v = vector_engine.execute(scalars, points, TOY_CURVE, faults=plan)
        assert res_s.point == res_v.point
        assert res_s.time_ms == res_v.time_ms
        assert len(res_s.timeline.attempts) == len(res_v.timeline.attempts)

    def test_byzantine_cheater_caught_identically(self):
        from repro.engine.faults import ByzantineWorker, FaultPlan

        scalars, points = msm_instance(TOY_CURVE, 64, seed=3)
        scalar_engine, vector_engine = _engines(TOY_CURVE, 6)
        expected = scalar_engine.execute(scalars, points, TOY_CURVE).point
        plan = FaultPlan.of(ByzantineWorker(0, mode="wrong-result", seed=5))
        res_s = scalar_engine.execute(scalars, points, TOY_CURVE, faults=plan)
        res_v = vector_engine.execute(scalars, points, TOY_CURVE, faults=plan)
        assert res_s.point == expected and res_v.point == expected
        assert res_s.byzantine_report.caught
        assert res_v.byzantine_report.caught
        assert (
            res_s.byzantine_report.to_json() == res_v.byzantine_report.to_json()
        )


class TestAutoRouting:
    def _backend(self, curve, vectorized):
        system = MultiGpuSystem(num_gpus=1)
        msm = DistMsm(system, DistMsmConfig(window_size=6, vectorized=vectorized))
        scalars, points = msm_instance(curve, 8, seed=1)
        return FunctionalBackend(msm, scalars, points, curve)

    def test_auto_vectorizes_small_fields(self):
        assert TOY_CURVE.p < (1 << 32)
        assert self._backend(TOY_CURVE, "auto")._vectorize() is True

    @pytest.mark.parametrize("name", [c.name for c in list_curves()])
    def test_auto_keeps_scalar_for_multi_limb(self, name):
        curve = curve_by_name(name)
        assert curve.p >= (1 << 32)
        assert self._backend(curve, "auto")._vectorize() is False

    def test_forced_modes_override_auto(self):
        assert self._backend(TOY_CURVE, False)._vectorize() is False
        assert self._backend(curve_by_name("BN254"), True)._vectorize() is True

    def test_auto_matches_forced_result(self):
        scalars, points = msm_instance(TOY_CURVE, 128, seed=4)
        system = MultiGpuSystem(num_gpus=2)
        results = [
            DistMsm(system, DistMsmConfig(window_size=6, vectorized=mode)).execute(
                scalars, points, TOY_CURVE
            )
            for mode in ("auto", True, False)
        ]
        assert results[0].point == results[1].point == results[2].point
        assert results[0].time_ms == results[1].time_ms == results[2].time_ms

    def test_config_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="vectorized"):
            DistMsmConfig(vectorized="sometimes")
