"""Bucket-sum and bucket-reduce: functional correctness + count models."""

import pytest

from repro.core.bucket_reduce import (
    cpu_bucket_reduce,
    cpu_bucket_reduce_counts,
    cpu_window_reduce,
    gpu_bucket_reduce_counts,
    gpu_bucket_reduce_per_thread_ops,
)
from repro.core.bucket_sum import (
    bucket_sum,
    bucket_sum_counts,
    expected_active_buckets,
    intra_bucket_overhead,
    per_thread_pacc,
    threads_per_bucket,
)
from repro.curves.point import XyzzPoint, to_affine, xyzz_acc
from repro.curves.sampling import sample_points

from tests.conftest import TOY_CURVE


def _reference_bucket_sums(buckets, points, negate=None):
    from repro.curves.point import affine_neg

    sums = []
    for members in buckets:
        acc = XyzzPoint.identity()
        for pid in members:
            pt = points[pid]
            if negate and negate[pid]:
                pt = affine_neg(pt, TOY_CURVE)
            acc = xyzz_acc(acc, pt, TOY_CURVE)
        sums.append(acc)
    return sums


class TestThreadsPerBucket:
    def test_minimum_is_warp(self):
        assert threads_per_bucket(1 << 20, 1 << 16) == 32

    def test_scales_when_buckets_scarce(self):
        # paper: 2^s < N_T -> N_T / 2^s threads per bucket
        assert threads_per_bucket(2048, 1 << 16) == 32
        assert threads_per_bucket(128, 1 << 16) == 512

    def test_warp_granularity(self):
        assert threads_per_bucket(100, 1 << 16) % 32 == 0

    def test_rejects_zero_buckets(self):
        with pytest.raises(ValueError):
            threads_per_bucket(0, 1 << 16)


class TestBucketSum:
    def test_matches_serial_reference(self):
        points = sample_points(TOY_CURVE, 30, seed=1)
        buckets = [[0, 3, 6], [], [1, 2, 4, 5], [7]]
        for n_threads in (1, 2, 4, 32):
            out = bucket_sum(buckets, points, TOY_CURVE, n_threads)
            expected = _reference_bucket_sums(buckets, points)
            got = [to_affine(p, TOY_CURVE) for p in out.sums]
            want = [to_affine(p, TOY_CURVE) for p in expected]
            assert got == want

    def test_negation_flags(self):
        points = sample_points(TOY_CURVE, 6, seed=2)
        negate = [False, True, False, True, False, False]
        buckets = [[0, 1, 2, 3]]
        out = bucket_sum(buckets, points, TOY_CURVE, 2, negate)
        expected = _reference_bucket_sums(buckets, points, negate)
        assert to_affine(out.sums[0], TOY_CURVE) == to_affine(expected[0], TOY_CURVE)

    def test_pacc_count_is_membership(self):
        points = sample_points(TOY_CURVE, 10, seed=3)
        buckets = [[0, 1], [2, 3, 4], []]
        out = bucket_sum(buckets, points, TOY_CURVE, 4)
        assert out.counters.pacc == 5

    def test_tree_padd_count(self):
        points = sample_points(TOY_CURVE, 16, seed=4)
        buckets = [list(range(16))]
        out = bucket_sum(buckets, points, TOY_CURVE, 8)
        # 8 partials reduce with 7 PADDs
        assert out.counters.padd == 7

    def test_rejects_bad_thread_count(self):
        with pytest.raises(ValueError):
            bucket_sum([[]], [], TOY_CURVE, 0)

    def test_negating_identity_point_is_noop(self):
        """Regression (found by fuzzing): negating the point at infinity
        must not fabricate the garbage point (0, 0)."""
        from repro.curves.point import AffinePoint

        points = sample_points(TOY_CURVE, 2, seed=12) + [AffinePoint.identity()]
        negate = [True, True, True]
        out = bucket_sum([[0, 1, 2]], points, TOY_CURVE, 2, negate)
        expected = _reference_bucket_sums([[0, 1, 2]], points, negate)
        assert to_affine(out.sums[0], TOY_CURVE) == to_affine(
            expected[0], TOY_CURVE
        )

    def test_empty_bucket_is_identity(self):
        out = bucket_sum([[]], [], TOY_CURVE, 4)
        assert out.sums[0].is_identity


class TestBucketSumCounts:
    def test_analytic_close_to_functional(self):
        import random

        rng = random.Random(9)
        points = sample_points(TOY_CURVE, 64, seed=5)
        num_buckets = 8
        digits = [rng.randrange(num_buckets) for _ in range(64)]
        buckets = [[] for _ in range(num_buckets)]
        for pid, d in enumerate(digits):
            if d:
                buckets[d].append(pid)
        out = bucket_sum(buckets, points, TOY_CURVE, 2)
        analytic = bucket_sum_counts(64, num_buckets, 2)
        assert analytic.pacc == pytest.approx(out.counters.pacc, rel=0.2)
        assert analytic.padd == pytest.approx(out.counters.padd, rel=0.5)

    def test_expected_active_buckets(self):
        assert expected_active_buckets(0, 8) == 0
        assert expected_active_buckets(10_000, 8) == pytest.approx(7, rel=0.01)
        assert expected_active_buckets(5, 1) == 0

    def test_per_thread_pacc_shrinks_with_threads(self):
        few = per_thread_pacc(1 << 20, 2048, 32)
        many = per_thread_pacc(1 << 20, 2048, 128)
        assert many < few

    def test_intra_bucket_overhead_paper_example(self):
        """Paper §3.2.2: N_thread=32, N=2^26, 2^11 buckets -> ~0.49%."""
        overhead = intra_bucket_overhead(1 << 26, 1 << 11, 32)
        assert overhead == pytest.approx(0.0049, rel=0.01)

    def test_intra_bucket_overhead_128_buckets_case(self):
        """1024 threads/bucket over 128 buckets at N=2^28 stays small.

        The paper quotes "a mere 4%" for this configuration; a log-depth
        tree gives 0.5% (their figure appears to count a partially
        serialised reduction) — either way, the overhead is minor.
        """
        overhead = intra_bucket_overhead(1 << 28, 128, 1024)
        assert overhead == pytest.approx((1024 * 128 * 10) / (1 << 28))
        assert overhead < 0.04

    def test_zero_points(self):
        assert intra_bucket_overhead(0, 8, 32) == 0.0


class TestBucketReduce:
    def test_cpu_reduce_matches_weighted_sum(self):
        points = sample_points(TOY_CURVE, 5, seed=7)
        sums = [XyzzPoint.identity()] + [XyzzPoint.from_affine(p) for p in points]
        out = cpu_bucket_reduce(sums, TOY_CURVE)
        # expected: sum(i * B_i) for i = 1..5
        from repro.curves.point import pmul, xyzz_add

        acc = XyzzPoint.identity()
        for i, pt in enumerate(points, start=1):
            acc = xyzz_add(acc, XyzzPoint.from_affine(pmul(pt, i, TOY_CURVE)), TOY_CURVE)
        assert to_affine(out.result, TOY_CURVE) == to_affine(acc, TOY_CURVE)

    def test_cpu_reduce_padd_count(self):
        sums = [XyzzPoint.identity()] * 9
        out = cpu_bucket_reduce(sums, TOY_CURVE)
        assert out.counters.cpu_padd == 16  # 2 * (9 - 1)
        assert cpu_bucket_reduce_counts(9).cpu_padd == 16

    def test_window_reduce_matches_shift(self):
        points = sample_points(TOY_CURVE, 2, seed=8)
        windows = [XyzzPoint.from_affine(p) for p in points]
        s = 3
        out = cpu_window_reduce(windows, s, TOY_CURVE)
        from repro.curves.point import pmul, xyzz_add

        expected = xyzz_add(
            XyzzPoint.from_affine(points[0]),
            XyzzPoint.from_affine(pmul(points[1], 1 << s, TOY_CURVE)),
            TOY_CURVE,
        )
        assert to_affine(out.result, TOY_CURVE) == to_affine(expected, TOY_CURVE)
        assert out.counters.cpu_pdbl == 2 * s

    def test_gpu_reduce_modes(self):
        scan = gpu_bucket_reduce_counts(1 << 11, 11, 1 << 16, "scan")
        simd = gpu_bucket_reduce_counts(1 << 11, 11, 1 << 16, "simd")
        assert scan.padd < simd.padd + simd.pdbl
        with pytest.raises(ValueError):
            gpu_bucket_reduce_counts(8, 3, 64, "magic")

    def test_simd_per_thread_formula(self):
        """§3.1: 2s * ceil(2^s/N_T) + min(ceil(2^s/N_T) + log2(N_T), s)."""
        import math

        b, s, nt = 1 << 20, 20, 1 << 16
        expected = 2 * s * 16 + min(16 + math.log2(nt), s)
        assert gpu_bucket_reduce_per_thread_ops(b, s, nt) == expected
