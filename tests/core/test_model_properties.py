"""Property tests on the timing model's structural invariants.

The analytic model backs every reproduced number, so its *shape* must be
trustworthy independently of calibration: times positive, monotone in
problem size, non-increasing in GPU count (at large N), and stable across
repeated evaluation.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm
from repro.curves.params import curve_by_name, list_curves
from repro.gpu.cluster import MultiGpuSystem
from repro.gpu.device import SharedMemoryExceeded

CURVES = {c.name: c for c in list_curves()}

configs = st.builds(
    DistMsmConfig,
    window_size=st.integers(8, 14),
    scatter=st.sampled_from(["hierarchical", "naive"]),
    bucket_reduce_on_cpu=st.booleans(),
    multi_gpu=st.sampled_from(["bucket-split", "windows", "ndim"]),
    signed_digits=st.booleans(),
    gpu_reduce=st.sampled_from(["scan", "simd"]),
)


class TestEstimateInvariants:
    @given(
        configs,
        st.sampled_from(sorted(CURVES)),
        st.integers(1, 32),
        st.integers(16, 26),
    )
    @settings(max_examples=50, deadline=None)
    def test_time_positive_and_finite(self, config, curve_name, gpus, log_n):
        engine = DistMsm(MultiGpuSystem(gpus), config)
        result = engine.estimate(CURVES[curve_name], 1 << log_n)
        assert 0 < result.time_ms < 1e9
        assert all(v >= 0 for v in result.times.as_dict().values())

    @given(configs, st.integers(1, 16), st.integers(18, 25))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_problem_size(self, config, gpus, log_n):
        engine = DistMsm(MultiGpuSystem(gpus), config)
        curve = CURVES["BLS12-381"]
        small = engine.estimate(curve, 1 << log_n).time_ms
        large = engine.estimate(curve, 1 << (log_n + 2)).time_ms
        assert large > small

    @given(st.integers(18, 26))
    @settings(max_examples=15, deadline=None)
    def test_deterministic(self, log_n):
        engine = DistMsm(MultiGpuSystem(8))
        curve = CURVES["BN254"]
        assert (
            engine.estimate(curve, 1 << log_n).time_ms
            == engine.estimate(curve, 1 << log_n).time_ms
        )

    @given(st.sampled_from(sorted(CURVES)))
    @settings(max_examples=8, deadline=None)
    def test_more_gpus_never_hurt_at_scale(self, curve_name):
        """At N=2^26 the default engine must benefit from more GPUs."""
        curve = CURVES[curve_name]
        times = [
            DistMsm(MultiGpuSystem(g)).estimate(curve, 1 << 26).time_ms
            for g in (1, 4, 16)
        ]
        assert times[0] > times[1] > times[2]

    @given(st.sampled_from(sorted(CURVES)), st.integers(1, 32))
    @settings(max_examples=20, deadline=None)
    def test_wider_curves_cost_more(self, curve_name, gpus):
        curve = CURVES[curve_name]
        if curve.name == "BN254":
            return
        engine_args = (MultiGpuSystem(gpus),)
        t_bn = DistMsm(*engine_args).estimate(CURVES["BN254"], 1 << 24).time_ms
        t_curve = DistMsm(*engine_args).estimate(curve, 1 << 24).time_ms
        assert t_curve > t_bn


class TestFeasibilityBoundaries:
    def test_hierarchical_scatter_window_cap_enforced_functionally(self):
        """A fixed window beyond the shared-memory wall fails loudly in the
        functional path — the Fig. 11 failure mode surfaces as an
        exception, not silent corruption."""
        from repro.curves.sampling import msm_instance

        curve = curve_by_name("BN254")
        scalars, points = msm_instance(curve, 4, seed=1)
        cfg = DistMsmConfig(window_size=16, scatter="hierarchical")
        engine = DistMsm(MultiGpuSystem(1), cfg)
        with pytest.raises(SharedMemoryExceeded):
            engine.execute(scalars, points, curve)

    def test_analytic_path_same_failure(self):
        cfg = DistMsmConfig(window_size=16, scatter="hierarchical")
        engine = DistMsm(MultiGpuSystem(1), cfg)
        with pytest.raises(SharedMemoryExceeded):
            engine.estimate(curve_by_name("BN254"), 1 << 20)

    def test_naive_scatter_unaffected_by_wall(self):
        cfg = DistMsmConfig(window_size=16, scatter="naive")
        engine = DistMsm(MultiGpuSystem(1), cfg)
        assert engine.estimate(curve_by_name("BN254"), 1 << 20).time_ms > 0
