"""Per-thread workload model (§3.1) and the multi-GPU work planner."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.planner import (
    Assignment,
    gpus_sharing_window,
    make_plan,
    windows_per_gpu,
)
from repro.core.workload import (
    figure3_series,
    optimal_window_size,
    per_thread_workload,
)


class TestWorkloadFormulas:
    def test_inputs_validated(self):
        with pytest.raises(ValueError):
            per_thread_workload(0, 253, 11, 1, 1 << 16)

    def test_single_gpu_optimum_is_20(self):
        """Paper Fig. 3: with N=2^26, N_T=2^16, λ=253, one GPU prefers s=20."""
        assert optimal_window_size(1 << 26, 253, 1, 1 << 16) == 20

    def test_optimum_shrinks_with_gpus(self):
        """The qualitative Fig. 3 claim: more GPUs -> smaller optimal s.

        (The paper quotes s=11 for 16 GPUs; the published formulas as
        written give 16 — see EXPERIMENTS.md for the discussion.)
        """
        one = optimal_window_size(1 << 26, 253, 1, 1 << 16)
        sixteen = optimal_window_size(1 << 26, 253, 16, 1 << 16)
        assert sixteen < one

    def test_bucket_reduce_term_grows_linearly_in_s(self):
        """§3.1: bucket-reduce's per-thread cost rises with s and does not
        shrink with more GPUs."""
        big_s = per_thread_workload(1 << 26, 253, 22, 16, 1 << 16)
        big_s_more_gpus = per_thread_workload(1 << 26, 253, 22, 16 * 2, 1 << 16)
        # doubling GPUs at huge s barely helps: the reduce term dominates
        assert big_s_more_gpus > big_s / 2

    def test_bucket_split_branch(self):
        """With more GPUs than windows the modified formula applies."""
        cost = per_thread_workload(1 << 26, 253, 16, 32, 1 << 16)
        assert cost > 0
        # doubling GPUs in this regime halves the main term
        cost2 = per_thread_workload(1 << 26, 253, 16, 64, 1 << 16)
        assert cost2 < cost

    @given(st.integers(1, 32), st.integers(5, 22))
    @settings(max_examples=40, deadline=None)
    def test_workload_positive(self, gpus, s):
        assert per_thread_workload(1 << 20, 253, s, gpus, 1 << 16) > 0


class TestFigure3Series:
    def test_paper_parameters(self):
        series = figure3_series()
        assert [c.num_gpus for c in series] == [1, 2, 4, 8, 16]

    def test_normalised_to_global_minimum(self):
        series = figure3_series()
        assert min(min(c.normalised_costs) for c in series) == pytest.approx(1.0)

    def test_monotone_improvement_with_gpus(self):
        series = figure3_series()
        minima = [min(c.normalised_costs) for c in series]
        assert minima == sorted(minima, reverse=True)


class TestPlanner:
    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            make_plan(0, 4)
        with pytest.raises(ValueError):
            make_plan(4, 0)
        with pytest.raises(ValueError):
            make_plan(4, 2, "diagonal")

    @pytest.mark.parametrize("strategy", ["bucket-split", "windows", "ndim"])
    @pytest.mark.parametrize("windows,gpus", [(16, 1), (16, 8), (13, 8), (16, 32), (3, 2)])
    def test_full_coverage(self, strategy, windows, gpus):
        plan = make_plan(windows, gpus, strategy)
        plan.validate()  # exact coverage of every window

    def test_windows_strategy_leaves_surplus_gpus_idle(self):
        plan = make_plan(4, 16, "windows")
        used = {a.gpu for a in plan.assignments}
        assert len(used) == 4

    def test_bucket_split_uses_all_gpus(self):
        plan = make_plan(4, 16, "bucket-split")
        used = {a.gpu for a in plan.assignments}
        assert len(used) == 16
        assert gpus_sharing_window(plan, 0) == 4

    def test_paper_fractional_example(self):
        """Three GPUs, two windows: every GPU ends up with 2/3 of a window's
        worth of buckets (the paper's flexible-distribution example; our
        slicing assigns contiguous ranges but the same balanced load)."""
        plan = make_plan(2, 3, "bucket-split")
        plan.validate()
        for g in range(3):
            load = sum(a.bucket_share * a.point_share for a in plan.for_gpu(g))
            assert load == pytest.approx(2 / 3)
        # the middle GPU straddles the window boundary: a piece of each
        assert {a.window for a in plan.for_gpu(1)} == {0, 1}

    def test_ndim_splits_points_not_buckets(self):
        plan = make_plan(4, 8, "ndim")
        for a in plan.assignments:
            assert a.bucket_share == 1.0
            assert a.point_share == pytest.approx(1 / 8)

    def test_balanced_load(self):
        plan = make_plan(13, 8, "bucket-split")
        assert plan.max_gpu_load == pytest.approx(13 / 8, rel=1e-6)

    def test_validation_catches_gaps(self):
        plan = make_plan(2, 2, "windows")
        plan.assignments.pop()
        with pytest.raises(ValueError):
            plan.validate()

    def test_windows_per_gpu(self):
        assert windows_per_gpu(253, 11, 16) == pytest.approx(23 / 16)

    def test_assignment_shares(self):
        a = Assignment(gpu=0, window=0, bucket_lo=0.25, bucket_hi=0.75)
        assert a.bucket_share == pytest.approx(0.5)
        assert a.point_share == 1.0
