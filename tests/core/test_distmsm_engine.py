"""DistMSM engine: bit-exact correctness and model consistency."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm
from repro.curves.params import curve_by_name
from repro.curves.sampling import msm_instance
from repro.gpu.cluster import MultiGpuSystem
from repro.kernels.padd_kernel import KernelOptimisations
from repro.msm.naive import naive_msm

from tests.conftest import TOY_CURVE

BN254 = curve_by_name("BN254")

FAST_SCATTER = dict(threads_per_block=32, points_per_thread=4)


class TestConfig:
    def test_defaults_are_distmsm(self):
        cfg = DistMsmConfig()
        assert cfg.scatter == "hierarchical"
        assert cfg.bucket_reduce_on_cpu
        assert cfg.multi_gpu == "bucket-split"
        assert cfg.kernel_opts == KernelOptimisations.all()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"scatter": "telepathic"},
            {"multi_gpu": "diagonal"},
            {"window_size": 0},
            {"efficiency": 0.0},
            {"efficiency": 1.5},
            {"gpu_reduce": "magic"},
            {"threads_per_block": 0},
            {"points_per_thread": -1},
            {"threads_per_bucket_min": 0},
            {"max_retries": -1},
            {"backoff_base_ms": 0.0},
            {"heartbeat_ms": 0.0},
            {"node_sync_ms": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            DistMsmConfig(**kwargs)


class TestFunctionalCorrectness:
    """Every engine configuration must agree with the naive reference."""

    @pytest.fixture(scope="class")
    def instance(self):
        scalars, points = msm_instance(TOY_CURVE, 32, seed=41)
        return scalars, points, naive_msm(scalars, points, TOY_CURVE)

    @pytest.mark.parametrize("gpus", [1, 2, 5, 8])
    def test_default_config(self, instance, gpus):
        scalars, points, expected = instance
        engine = DistMsm(
            MultiGpuSystem(gpus), DistMsmConfig(window_size=4, **FAST_SCATTER)
        )
        assert engine.execute(scalars, points, TOY_CURVE).point == expected

    @pytest.mark.parametrize("scatter", ["naive", "hierarchical"])
    @pytest.mark.parametrize("multi_gpu", ["bucket-split", "windows", "ndim"])
    def test_strategy_matrix(self, instance, scatter, multi_gpu):
        scalars, points, expected = instance
        cfg = DistMsmConfig(
            window_size=3, scatter=scatter, multi_gpu=multi_gpu, **FAST_SCATTER
        )
        engine = DistMsm(MultiGpuSystem(3), cfg)
        assert engine.execute(scalars, points, TOY_CURVE).point == expected

    @pytest.mark.parametrize("signed", [False, True])
    @pytest.mark.parametrize("precompute", [False, True])
    def test_recoding_matrix(self, instance, signed, precompute):
        scalars, points, expected = instance
        cfg = DistMsmConfig(
            window_size=3, signed_digits=signed, precompute=precompute, **FAST_SCATTER
        )
        engine = DistMsm(MultiGpuSystem(2), cfg)
        assert engine.execute(scalars, points, TOY_CURVE).point == expected

    def test_gpu_bucket_reduce_path(self, instance):
        scalars, points, expected = instance
        cfg = DistMsmConfig(
            window_size=3, bucket_reduce_on_cpu=False, **FAST_SCATTER
        )
        engine = DistMsm(MultiGpuSystem(2), cfg)
        assert engine.execute(scalars, points, TOY_CURVE).point == expected

    def test_empty_input(self):
        engine = DistMsm(MultiGpuSystem(1))
        assert engine.execute([], [], TOY_CURVE).point.infinity

    def test_length_mismatch(self):
        engine = DistMsm(MultiGpuSystem(1))
        with pytest.raises(ValueError):
            engine.execute([1], [], TOY_CURVE)

    def test_bn254_small_instance(self):
        scalars, points = msm_instance(BN254, 12, seed=17)
        expected = naive_msm(scalars, points, BN254)
        engine = DistMsm(
            MultiGpuSystem(4), DistMsmConfig(window_size=8, **FAST_SCATTER)
        )
        assert engine.execute(scalars, points, BN254).point == expected

    @given(st.integers(1, 6), st.integers(2, 40))
    @settings(max_examples=15, deadline=None)
    def test_property_gpus_and_sizes(self, gpus, n):
        scalars, points = msm_instance(TOY_CURVE, n, seed=n * 31 + gpus)
        expected = naive_msm(scalars, points, TOY_CURVE)
        engine = DistMsm(
            MultiGpuSystem(gpus), DistMsmConfig(window_size=4, **FAST_SCATTER)
        )
        assert engine.execute(scalars, points, TOY_CURVE).point == expected


class TestCounters:
    def test_pacc_counts_match_nonzero_digits(self):
        scalars, points = msm_instance(TOY_CURVE, 50, seed=5)
        from repro.curves.scalar import num_windows, unsigned_windows

        s = 3
        n_win = num_windows(TOY_CURVE.scalar_bits, s)
        nonzero = sum(
            1 for k in scalars for d in unsigned_windows(k, s, n_win) if d
        )
        engine = DistMsm(
            MultiGpuSystem(2), DistMsmConfig(window_size=s, **FAST_SCATTER)
        )
        result = engine.execute(scalars, points, TOY_CURVE)
        assert result.counters.pacc == nonzero

    def test_functional_vs_analytic_counts(self):
        """The analytic estimator must track functional event counts."""
        n = 512
        scalars, points = msm_instance(TOY_CURVE, n, seed=6)
        cfg = DistMsmConfig(window_size=4, **FAST_SCATTER)
        engine = DistMsm(MultiGpuSystem(2), cfg)
        functional = engine.execute(scalars, points, TOY_CURVE)
        analytic = engine.estimate(TOY_CURVE, n)
        assert analytic.counters.pacc == pytest.approx(
            functional.counters.pacc, rel=0.1
        )
        assert analytic.counters.shared_atomics == pytest.approx(
            functional.counters.shared_atomics, rel=0.15
        )
        assert analytic.counters.cpu_padd == pytest.approx(
            functional.counters.cpu_padd, rel=0.25
        )

    def test_phase_times_reported(self):
        scalars, points = msm_instance(TOY_CURVE, 16, seed=7)
        engine = DistMsm(
            MultiGpuSystem(1), DistMsmConfig(window_size=4, **FAST_SCATTER)
        )
        result = engine.execute(scalars, points, TOY_CURVE)
        assert result.time_ms == pytest.approx(result.times.total)
        assert set(result.times.as_dict()) == {
            "scatter", "bucket_sum", "bucket_reduce", "window_reduce",
            "transfer", "launch", "total",
        }


class TestEstimator:
    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            DistMsm(MultiGpuSystem(1)).estimate(BN254, 0)

    def test_time_grows_with_n(self):
        engine = DistMsm(MultiGpuSystem(8))
        t_small = engine.estimate(BN254, 1 << 22).time_ms
        t_large = engine.estimate(BN254, 1 << 26).time_ms
        assert t_large > 4 * t_small

    def test_time_shrinks_with_gpus(self):
        n = 1 << 26
        t1 = DistMsm(MultiGpuSystem(1)).estimate(BN254, n).time_ms
        t8 = DistMsm(MultiGpuSystem(8)).estimate(BN254, n).time_ms
        t32 = DistMsm(MultiGpuSystem(32)).estimate(BN254, n).time_ms
        assert t8 < t1 / 4
        assert t32 < t8

    def test_near_linear_scaling_at_large_n(self):
        """Paper: at N=2^28, 32 GPUs reach ~31x over one GPU."""
        n = 1 << 28
        t1 = DistMsm(MultiGpuSystem(1)).estimate(BN254, n).time_ms
        t32 = DistMsm(MultiGpuSystem(32)).estimate(BN254, n).time_ms
        assert t1 / t32 > 20

    def test_window_autotune_adapts_to_gpus(self):
        engine1 = DistMsm(MultiGpuSystem(1))
        engine32 = DistMsm(MultiGpuSystem(32))
        s1 = engine1.window_size_for(BN254, 1 << 26)
        s32 = engine32.window_size_for(BN254, 1 << 26)
        assert s32 <= s1
        assert s1 <= 14  # hierarchical scatter feasibility

    def test_window_cache_stable(self):
        engine = DistMsm(MultiGpuSystem(4))
        assert engine.window_size_for(BN254, 1 << 24) == engine.window_size_for(
            BN254, 1 << 24
        )

    def test_mnt_slower_than_bn254(self):
        mnt = curve_by_name("MNT4753")
        n = 1 << 24
        t_mnt = DistMsm(MultiGpuSystem(8)).estimate(mnt, n).time_ms
        t_bn = DistMsm(MultiGpuSystem(8)).estimate(BN254, n).time_ms
        assert t_mnt > 10 * t_bn
