"""Byzantine-tolerant orchestration: catch, quarantine, stay bit-exact.

The acceptance bar: under any seeded :class:`ByzantineWorker` plan — up to
all-but-one GPU cheating, in any corruption mode, adaptively or not — the
functional result equals the honest point bit-for-bit, the cheaters are
rejected and quarantined, and the attached audit trail passes the
end-to-end integrity checker.
"""

import pytest

from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm
from repro.curves.params import curve_by_name
from repro.curves.sampling import msm_instance
from repro.engine.faults import (
    BYZANTINE_MODES,
    ByzantineWorker,
    FaultPlan,
    GpuFailure,
    Straggler,
)
from repro.faults import FaultRecoveryError, random_fault_plan
from repro.faults.byzantine import VERDICT_ACCEPTED, VERDICT_REJECTED
from repro.gpu.cluster import MultiGpuSystem
from repro.msm.naive import naive_msm
from repro.verify.integritycheck import verify_msm_integrity
from repro.verify.timelinecheck import verify_timeline

from tests.conftest import TOY_CURVE

FAST = dict(window_size=4, threads_per_block=32, points_per_thread=4)


@pytest.fixture(scope="module")
def instance():
    scalars, points = msm_instance(TOY_CURVE, 32, seed=41)
    return scalars, points, naive_msm(scalars, points, TOY_CURVE)


def _engine(num_gpus=4, **overrides):
    return DistMsm(MultiGpuSystem(num_gpus), DistMsmConfig(**{**FAST, **overrides}))


def _audit(result, plan):
    checked = verify_timeline(result.timeline, subject="byzantine", faults=plan)
    assert checked.ok, [v.message for v in checked.violations]
    ichecked = verify_msm_integrity(result)
    assert ichecked.ok, [str(v) for v in ichecked.violations]


class TestCheaterCaught:
    @pytest.mark.parametrize("mode", BYZANTINE_MODES)
    def test_each_mode_rejected_quarantined_bit_exact(self, instance, mode):
        scalars, points, expected = instance
        engine = _engine(4)
        plan = FaultPlan.of(ByzantineWorker(1, mode=mode, seed=7))
        result = engine.execute(scalars, points, TOY_CURVE, faults=plan)
        assert result.point == expected
        report = result.byzantine_report
        assert report is not None and report.verified
        assert report.cheaters == (1,)
        assert report.caught
        assert report.quarantined_gpus == (1,)
        # the forged round-0 chunk was rejected; its slots were re-served
        assert report.outcome_for(0, 1).verdict == VERDICT_REJECTED
        rejected_slots = set(report.outcome_for(0, 1).slots)
        consumed = {slot: (rnd, gpu) for slot, rnd, gpu in report.consumed}
        assert all(consumed[s][1] != 1 for s in rejected_slots)
        _audit(result, plan)

    def test_quarantined_gpu_gets_no_further_dispatch(self, instance):
        scalars, points, _ = instance
        engine = _engine(4)
        result = engine.execute(
            scalars, points, TOY_CURVE,
            faults=FaultPlan.of(ByzantineWorker(2, seed=3)),
        )
        report = result.byzantine_report
        (at,) = [t for g, t in report.quarantined if g == 2]
        for chunk in report.chunks:
            if chunk.gpu == 2:
                assert chunk.dispatched_at_ms <= at + 1e-9

    def test_all_but_one_cheating_still_converges(self, instance):
        scalars, points, expected = instance
        engine = _engine(4)
        plan = FaultPlan.of(*[ByzantineWorker(g, seed=g + 1) for g in range(3)])
        result = engine.execute(scalars, points, TOY_CURVE, faults=plan)
        assert result.point == expected
        report = result.byzantine_report
        assert report.quarantined_gpus == (0, 1, 2)
        # every consumed slot came from the one honest survivor eventually
        final = {gpu for _, _, gpu in report.consumed}
        assert 0 not in final and 1 not in final and 2 not in final or final == {3}
        _audit(result, plan)

    def test_every_gpu_cheating_raises(self, instance):
        scalars, points, _ = instance
        engine = _engine(4)
        plan = FaultPlan.of(*[ByzantineWorker(g, seed=g) for g in range(4)])
        with pytest.raises(FaultRecoveryError, match="quarantined"):
            engine.execute(scalars, points, TOY_CURVE, faults=plan)

    def test_adaptive_round_one_cheater(self, instance):
        scalars, points, expected = instance
        engine = _engine(4)
        # gpu 0 dies so a recovery round happens; gpu 1 plays honest in
        # round 0 and forges only the re-dispatched round-1 chunk
        plan = FaultPlan.of(
            GpuFailure(0.0, 0), ByzantineWorker(1, round=1, seed=11)
        )
        result = engine.execute(scalars, points, TOY_CURVE, faults=plan)
        assert result.point == expected
        report = result.byzantine_report
        assert report.outcome_for(0, 1).verdict == VERDICT_ACCEPTED
        r1 = report.outcome_for(1, 1)
        assert r1 is not None and r1.verdict == VERDICT_REJECTED
        assert report.quarantined_gpus == (1,)
        _audit(result, plan)

    def test_out_of_range_byzantine_rejected(self, instance):
        scalars, points, _ = instance
        with pytest.raises(ValueError):
            _engine(4).execute(
                scalars, points, TOY_CURVE,
                faults=FaultPlan.of(ByzantineWorker(9)),
            )


class TestVerificationPolicy:
    def test_verify_off_lets_the_forgery_through(self, instance):
        scalars, points, expected = instance
        engine = _engine(4, verify_chunks=False)
        result = engine.execute(
            scalars, points, TOY_CURVE,
            faults=FaultPlan.of(ByzantineWorker(1, mode="wrong-result", seed=5)),
        )
        # the attack works: this is exactly what the protocol prevents
        assert result.point != expected
        report = result.byzantine_report
        assert report is not None and not report.verified
        assert not report.caught and not report.quarantined

    def test_verify_on_without_cheaters_is_honest_overhead(self, instance):
        scalars, points, expected = instance
        engine = _engine(4, verify_chunks=True)
        result = engine.execute(scalars, points, TOY_CURVE)
        assert result.point == expected
        report = result.byzantine_report
        assert report.verified and not report.caught
        assert all(c.verdict == VERDICT_ACCEPTED for c in report.chunks)
        assert report.batch_checks >= 1
        _audit(result, FaultPlan())

    def test_auto_mode_only_verifies_under_byzantine_plans(self, instance):
        scalars, points, _ = instance
        engine = _engine(4)  # verify_chunks="auto"
        plain = engine.execute(
            scalars, points, TOY_CURVE, faults=FaultPlan.of(Straggler(1, 2.0))
        )
        assert plain.byzantine_report is None
        cheated = engine.execute(
            scalars, points, TOY_CURVE,
            faults=FaultPlan.of(ByzantineWorker(1, seed=5)),
        )
        assert cheated.byzantine_report is not None

    def test_per_chunk_scheme_when_batching_disabled(self, instance):
        scalars, points, expected = instance
        engine = _engine(4, verify_chunks=True, verify_batch=False)
        result = engine.execute(scalars, points, TOY_CURVE)
        assert result.point == expected
        report = result.byzantine_report
        assert report.scheme == "2g2t"
        assert report.batch_checks == 0 and report.chunk_checks >= 1

    def test_commit_and_verify_tasks_on_the_timeline(self, instance):
        scalars, points, _ = instance
        engine = _engine(4, verify_chunks=True)
        result = engine.execute(scalars, points, TOY_CURVE)
        commits = [n for n in result.timeline.spans if ":commit:" in n]
        verifies = [n for n in result.timeline.spans if ":verify:" in n]
        assert commits and verifies
        # accumulation gated behind every live chunk's response check
        reduce_start = result.timeline.spans["msm:host-reduce"].start_ms
        for name in verifies:
            assert reduce_start >= result.timeline.spans[name].end_ms - 1e-9

    def test_verification_tax_shows_in_the_makespan(self, instance):
        scalars, points, _ = instance
        base = _engine(4).execute(scalars, points, TOY_CURVE)
        taxed = _engine(4, verify_chunks=True).execute(scalars, points, TOY_CURVE)
        assert taxed.time_ms > base.time_ms


class TestSeededSweeps:
    @pytest.mark.parametrize("seed", range(6))
    def test_chaos_with_byzantine_stays_bit_exact(self, instance, seed):
        scalars, points, expected = instance
        engine = _engine(4)
        fault_free = engine.execute(scalars, points, TOY_CURVE)
        plan = random_fault_plan(
            seed, 4, max(fault_free.time_ms, 0.05),
            max_gpu_failures=1, byzantine_probability=0.5,
        )
        result = engine.execute(scalars, points, TOY_CURVE, faults=plan)
        assert result.point == expected, seed
        if plan.byzantine_workers():
            assert result.byzantine_report is not None
            _audit(result, plan)

    def test_deterministic_replay(self, instance):
        scalars, points, _ = instance
        engine = _engine(4)
        plan = FaultPlan.of(ByzantineWorker(1, seed=9), Straggler(2, 1.5))
        a = engine.execute(scalars, points, TOY_CURVE, faults=plan)
        b = engine.execute(scalars, points, TOY_CURVE, faults=plan)
        assert a.point == b.point
        assert a.timeline.spans == b.timeline.spans
        assert a.byzantine_report.to_json() == b.byzantine_report.to_json()


class TestAnalyticByzantinePath:
    def test_estimate_models_detection_and_requarantine(self):
        curve = curve_by_name("BLS12-381")
        engine = DistMsm(MultiGpuSystem(8), DistMsmConfig(window_size=10))
        base = engine.estimate(curve, 1 << 16)
        plan = FaultPlan.of(ByzantineWorker(3, seed=2))
        result = engine.estimate(curve, 1 << 16, faults=plan)
        report = result.byzantine_report
        assert report is not None and report.caught
        assert report.quarantined_gpus == (3,)
        assert report.soundness_bits == curve.r.bit_length() - 1
        assert result.time_ms > base.time_ms
        ichecked = verify_msm_integrity(result)
        assert ichecked.ok, [str(v) for v in ichecked.violations]

    def test_estimate_verify_overhead_is_modelled(self):
        curve = curve_by_name("BLS12-381")
        base = DistMsm(MultiGpuSystem(8), DistMsmConfig(window_size=10)).estimate(
            curve, 1 << 16
        )
        taxed = DistMsm(
            MultiGpuSystem(8), DistMsmConfig(window_size=10, verify_chunks=True)
        ).estimate(curve, 1 << 16)
        assert taxed.time_ms > base.time_ms
        assert taxed.byzantine_report is not None
        assert taxed.byzantine_report.verified
