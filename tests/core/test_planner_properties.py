"""Property-based tier for the §3.1 cost model, planner, and re-planning.

Hypothesis searches the parameter space for counterexamples to the
invariants the analytic layers promise:

* :func:`repro.core.workload.optimal_window_size` is the exact argmin of
  :func:`repro.core.workload.per_thread_workload` over the searched range
  (first minimum wins on ties);
* the per-thread cost never *increases* when GPUs are added — pointwise at
  any fixed window size, and for the min-over-``s`` optimum;
* :func:`repro.core.planner.make_plan` always yields a validated plan with
  the balance each strategy promises;
* :func:`repro.faults.recovery.redistribute_assignments` preserves the
  covered (window, bucket-range, point-range) cells exactly and balances
  round-robin over the survivors;
* re-planning after a failure picks the same window size fresh planning
  would pick on the survivor set.

Note the *literal* "optimal s shrinks as GPUs are added" reading of §3.1 is
false in general (the ceil terms produce local plateaus where adding GPUs
can raise the optimum by a step); what holds — and what the paper's Fig. 3
shows — is the weak *cost* monotonicity tested here plus the concrete
regime regressions pinned at the bottom.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm
from repro.core.planner import Assignment, gpus_sharing_window, make_plan
from repro.core.workload import optimal_window_size, per_thread_workload
from repro.curves.params import curve_by_name
from repro.engine.faults import FaultPlan, GpuFailure
from repro.faults.recovery import (
    FaultRecoveryError,
    detection_time_ms,
    redistribute_assignments,
)
from repro.gpu.cluster import MultiGpuSystem

# The cost model is exact integer/float arithmetic; tolerances only absorb
# float rounding in the second (shared-window) branch.
REL_EPS = 1e-12
ABS_EPS = 1e-9

log_n = st.integers(min_value=10, max_value=28)
scalar_bits = st.sampled_from([64, 128, 253, 255, 753])
num_gpus = st.integers(min_value=1, max_value=32)
threads = st.sampled_from([1 << 10, 1 << 13, 1 << 16, 1 << 17])
window = st.integers(min_value=4, max_value=24)


class TestCostModelProperties:
    @given(log_n=log_n, bits=scalar_bits, gpus=num_gpus, nt=threads)
    @settings(max_examples=200, deadline=None)
    def test_optimal_window_size_is_exact_argmin(self, log_n, bits, gpus, nt):
        """Differential against a brute-force scan of the same range."""
        n = 1 << log_n
        chosen = optimal_window_size(n, bits, gpus, nt)
        costs = {
            s: per_thread_workload(n, bits, s, gpus, nt) for s in range(4, 25)
        }
        best = min(costs.values())
        assert costs[chosen] == best
        # first-minimum tie-break: no smaller s achieves the same cost
        assert chosen == min(s for s, c in costs.items() if c == best)

    @given(log_n=log_n, bits=scalar_bits, s=window, nt=threads)
    @settings(max_examples=200, deadline=None)
    def test_cost_pointwise_weakly_decreasing_in_gpus(self, log_n, bits, s, nt):
        """At any fixed window size, more GPUs never cost more per thread."""
        n = 1 << log_n
        prev = None
        for gpus in (1, 2, 3, 4, 6, 8, 12, 16, 24, 32):
            cost = per_thread_workload(n, bits, s, gpus, nt)
            if prev is not None:
                assert cost <= prev * (1 + REL_EPS) + ABS_EPS
            prev = cost

    @given(log_n=log_n, bits=scalar_bits, nt=threads)
    @settings(max_examples=100, deadline=None)
    def test_optimal_cost_weakly_decreasing_in_gpus(self, log_n, bits, nt):
        """The min-over-s cost is weakly decreasing even where the argmin
        jumps around (the Fig. 3 'weak shrink' that actually holds)."""
        n = 1 << log_n
        prev = None
        for gpus in (1, 2, 3, 4, 6, 8, 12, 16, 24, 32):
            best = min(
                per_thread_workload(n, bits, s, gpus, nt) for s in range(4, 25)
            )
            if prev is not None:
                assert best <= prev * (1 + REL_EPS) + ABS_EPS
            prev = best

    @given(
        n=st.integers(min_value=-4, max_value=0),
        bits=scalar_bits,
        gpus=num_gpus,
        nt=threads,
    )
    @settings(max_examples=20, deadline=None)
    def test_non_positive_inputs_rejected(self, n, bits, gpus, nt):
        with pytest.raises(ValueError):
            per_thread_workload(n, bits, 16, gpus, nt)


class TestPlanProperties:
    @given(
        num_windows=st.integers(min_value=1, max_value=40),
        gpus=st.integers(min_value=1, max_value=16),
        strategy=st.sampled_from(["bucket-split", "windows", "ndim"]),
    )
    @settings(max_examples=200, deadline=None)
    def test_every_plan_validates_with_promised_balance(
        self, num_windows, gpus, strategy
    ):
        plan = make_plan(num_windows, gpus, strategy)  # validate() runs inside
        if strategy == "bucket-split":
            # perfectly even fractional split
            assert plan.max_gpu_load == pytest.approx(num_windows / gpus)
        elif strategy == "windows":
            # whole windows only; surplus GPUs idle
            assert plan.max_gpu_load == math.ceil(num_windows / gpus)
        else:  # ndim: every GPU takes 1/gpus of every window
            assert plan.max_gpu_load == pytest.approx(num_windows / gpus)
            for w in range(num_windows):
                assert gpus_sharing_window(plan, w) == gpus

    @given(
        num_windows=st.integers(min_value=1, max_value=24),
        gpus=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=100, deadline=None)
    def test_bucket_split_covers_each_window_once(self, num_windows, gpus):
        plan = make_plan(num_windows, gpus, "bucket-split")
        for w in range(num_windows):
            parts = sorted(plan.for_window(w), key=lambda a: a.bucket_lo)
            assert parts[0].bucket_lo == pytest.approx(0.0)
            assert parts[-1].bucket_hi == pytest.approx(1.0)
            for left, right in zip(parts, parts[1:]):
                assert left.bucket_hi == pytest.approx(right.bucket_lo)


# Strategy for random assignment lists: cells need not tile a window here —
# redistribute_assignments must preserve *whatever* cells it is given.
assignments_st = st.lists(
    st.builds(
        Assignment,
        gpu=st.integers(min_value=0, max_value=15),
        window=st.integers(min_value=0, max_value=30),
        bucket_lo=st.just(0.0),
        bucket_hi=st.floats(min_value=0.125, max_value=1.0, width=32),
    ),
    min_size=1,
    max_size=40,
)


class TestRedistributionProperties:
    @given(
        assignments=assignments_st,
        survivors=st.lists(
            st.integers(min_value=0, max_value=15),
            min_size=1,
            max_size=8,
            unique=True,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_cells_preserved_and_round_robin_balanced(
        self, assignments, survivors
    ):
        moved = redistribute_assignments(assignments, survivors)

        # Only the gpu field may change: the covered cells are identical.
        def cell(a):
            return (a.window, a.bucket_lo, a.bucket_hi, a.point_lo, a.point_hi)

        assert sorted(map(cell, moved)) == sorted(map(cell, assignments))
        # Every target is a survivor, and counts differ by at most one.
        counts = {g: 0 for g in survivors}
        for a in moved:
            assert a.gpu in counts
            counts[a.gpu] += 1
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_no_survivors_raises(self):
        with pytest.raises(FaultRecoveryError):
            redistribute_assignments([Assignment(gpu=0, window=0)], [])

    @given(
        at=st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        hb=st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_detection_is_the_next_heartbeat_tick(self, at, hb):
        detected = detection_time_ms(at, hb)
        assert detected > at - 1e-9
        assert detected <= at + hb + 1e-9
        # it is an integer number of ticks
        assert detected / hb == pytest.approx(round(detected / hb))


class TestReplanningMatchesFreshPlanning:
    def test_replanned_s_equals_fresh_autotune_on_survivors(self):
        """Killing a GPU and re-planning must agree with planning from
        scratch for the survivor count (DESIGN.md §9 policy)."""
        curve = curve_by_name("BLS12-381")
        config = DistMsmConfig()  # window_size=None -> auto-tune
        engine = DistMsm(MultiGpuSystem(8), config)
        result = engine.estimate(
            curve, 1 << 20, faults=FaultPlan.of(GpuFailure(0.0, 3))
        )
        report = result.fault_report
        assert report is not None and report.dead_gpus == (3,)
        fresh = DistMsm(MultiGpuSystem(len(report.surviving_gpus)), config)
        assert report.replanned_window_size == fresh.window_size_for(curve, 1 << 20)

    def test_fixed_window_size_is_never_replanned(self):
        """With an explicit s configured, faults keep it (partial bucket
        sums are s-bound; mixing sizes would discard them)."""
        curve = curve_by_name("BLS12-381")
        engine = DistMsm(MultiGpuSystem(4), DistMsmConfig(window_size=12))
        result = engine.estimate(
            curve, 1 << 18, faults=FaultPlan.of(GpuFailure(0.0, 1))
        )
        report = result.fault_report
        assert report is not None and report.degraded
        assert report.window_size == 12
        assert report.replanned_window_size == 12


class TestFigure3Regimes:
    """Pinned regressions for the regimes Fig. 3 actually plots. These are
    the deterministic face of the 'weak shrink': within each regime the
    optimum is non-increasing, even though that is not a theorem globally."""

    def test_paper_figure3_column(self):
        series = [
            optimal_window_size(1 << 26, 253, g, 1 << 16) for g in (1, 2, 4, 8, 16)
        ]
        assert series == [20, 19, 16, 16, 16]
        assert series == sorted(series, reverse=True)

    def test_engine_autotune_column(self):
        curve = curve_by_name("BLS12-381")
        series = [
            DistMsm(MultiGpuSystem(g), DistMsmConfig()).window_size_for(
                curve, 1 << 22
            )
            for g in (1, 2, 4, 8, 16)
        ]
        assert series == [13, 13, 12, 11, 8]
        assert series == sorted(series, reverse=True)
