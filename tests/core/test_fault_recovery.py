"""Failure-aware re-planning and bit-exact recovery of DistMsm.

The acceptance bar: killing any single GPU at any event boundary of an
8-GPU ``execute`` run must yield a bit-exact MSM result, a timeline that
passes both the schedule checker and the fault checker, and an honest
recovery overhead; transient transfer errors must succeed within
``max_retries`` with correct backoff spacing.
"""

import pytest

from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm
from repro.curves.params import curve_by_name
from repro.curves.sampling import msm_instance
from repro.engine.faults import (
    FaultPlan,
    GpuFailure,
    RetryPolicy,
    Straggler,
    TransferError,
)
from repro.faults import FaultRecoveryError, random_fault_plan
from repro.gpu.cluster import MultiGpuSystem
from repro.msm.naive import naive_msm
from repro.verify.faultcheck import verify_fault_timeline
from repro.verify.timelinecheck import verify_timeline

from tests.conftest import TOY_CURVE

FAST = dict(window_size=4, threads_per_block=32, points_per_thread=4)


@pytest.fixture(scope="module")
def instance():
    scalars, points = msm_instance(TOY_CURVE, 32, seed=41)
    return scalars, points, naive_msm(scalars, points, TOY_CURVE)


def _engine(num_gpus=8, **overrides):
    return DistMsm(MultiGpuSystem(num_gpus), DistMsmConfig(**{**FAST, **overrides}))


def _audit(result, plan, config):
    retry = RetryPolicy(config.max_retries, config.backoff_base_ms)
    checked = verify_timeline(result.timeline, subject="recovered", faults=plan)
    assert checked.ok, [v.message for v in checked.violations]
    fchecked = verify_fault_timeline(result.timeline, plan, retry)
    assert fchecked.ok, [v.message for v in fchecked.violations]


class TestKillSweep:
    """Single-GPU kills at every event boundary: the acceptance criterion."""

    def test_kill_any_gpu_at_any_event_boundary(self, instance):
        scalars, points, expected = instance
        engine = _engine(8)
        # harvest the fault-path event boundaries from a never-triggering run
        probe = engine.execute(
            scalars, points, TOY_CURVE, faults=FaultPlan.of(GpuFailure(1e9, 0))
        )
        boundaries = sorted(
            {s.start_ms for s in probe.timeline.spans.values()}
            | {s.end_ms for s in probe.timeline.spans.values()}
        )
        assert len(boundaries) >= 4
        for gpu in range(8):
            for at in boundaries:
                plan = FaultPlan.of(GpuFailure(at, gpu))
                result = engine.execute(scalars, points, TOY_CURVE, faults=plan)
                assert result.point == expected, (gpu, at)
                assert result.fault_report is not None
                assert result.fault_report.recovery_overhead_ms >= -1e-9, (gpu, at)
                _audit(result, plan, engine.config)

    def test_kill_at_zero_replans_onto_survivors(self, instance):
        scalars, points, expected = instance
        engine = _engine(8)
        plan = FaultPlan.of(GpuFailure(0.0, 2))
        result = engine.execute(scalars, points, TOY_CURVE, faults=plan)
        assert result.point == expected
        report = result.fault_report
        assert report.dead_gpus == (2,)
        assert 2 not in report.surviving_gpus
        assert len(report.rounds) == 2
        replan = report.rounds[1]
        assert 2 not in replan.gpus
        assert replan.detected_at_ms == pytest.approx(engine.config.heartbeat_ms)
        # no re-planned task may touch the dead GPU
        assert not any(
            ":g2" in name and ":r1:" in name for name in result.timeline.spans
        )


class TestRecoveryProperties:
    """Property-style: random seeded fault plans stay bit-exact and honest."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_plan_bit_exact(self, instance, seed):
        scalars, points, expected = instance
        engine = _engine(4)
        fault_free = engine.execute(scalars, points, TOY_CURVE)
        plan = random_fault_plan(seed, 4, max(fault_free.time_ms, 0.05))
        if plan.empty:
            return
        result = engine.execute(scalars, points, TOY_CURVE, faults=plan)
        assert result.point == expected
        report = result.fault_report
        assert report.recovered_ms >= report.fault_free_ms - 1e-9
        assert report.recovered_ms == result.time_ms
        _audit(result, plan, engine.config)

    def test_deterministic_replay(self, instance):
        scalars, points, _ = instance
        engine = _engine(4)
        plan = random_fault_plan(3, 4, 0.5)
        a = engine.execute(scalars, points, TOY_CURVE, faults=plan)
        b = engine.execute(scalars, points, TOY_CURVE, faults=plan)
        assert a.time_ms == b.time_ms
        assert a.timeline.spans == b.timeline.spans
        assert a.point == b.point

    def test_degrades_to_one_gpu(self, instance):
        scalars, points, expected = instance
        engine = _engine(8)
        plan = FaultPlan.of(*[GpuFailure(0.0, g) for g in range(7)])
        result = engine.execute(scalars, points, TOY_CURVE, faults=plan)
        assert result.point == expected
        assert result.fault_report.surviving_gpus == (7,)

    def test_all_gpus_dead_raises(self, instance):
        scalars, points, _ = instance
        engine = _engine(4)
        plan = FaultPlan.of(*[GpuFailure(0.0, g) for g in range(4)])
        with pytest.raises(FaultRecoveryError):
            engine.execute(scalars, points, TOY_CURVE, faults=plan)

    def test_out_of_range_fault_rejected(self, instance):
        scalars, points, _ = instance
        engine = _engine(4)
        with pytest.raises(ValueError):
            engine.execute(
                scalars, points, TOY_CURVE, faults=FaultPlan.of(GpuFailure(0.0, 9))
            )
        with pytest.raises(ValueError):
            engine.execute(
                scalars, points, TOY_CURVE, faults=FaultPlan.of(TransferError(5, 0.0))
            )

    def test_empty_plan_matches_fault_free_path(self, instance):
        scalars, points, expected = instance
        engine = _engine(4)
        result = engine.execute(scalars, points, TOY_CURVE, faults=FaultPlan())
        assert result.fault_report is None
        assert result.point == expected


class TestTransferRetries:
    def test_transient_error_retries_with_backoff(self, instance):
        scalars, points, expected = instance
        engine = _engine(8, backoff_base_ms=0.01)
        # place the error inside an actual transfer span
        probe = engine.execute(
            scalars, points, TOY_CURVE, faults=FaultPlan.of(GpuFailure(1e9, 0))
        )
        transfer = next(
            s for name, s in sorted(probe.timeline.spans.items())
            if ":transfer:" in name and s.duration_ms > 0
        )
        at = (transfer.start_ms + transfer.end_ms) / 2
        plan = FaultPlan.of(TransferError(0, at))
        result = engine.execute(scalars, points, TOY_CURVE, faults=plan)
        assert result.point == expected
        report = result.fault_report
        assert report.retries == 1
        assert not report.dead_gpus
        (attempt,) = result.timeline.attempts
        assert attempt.retry_at_ms == pytest.approx(attempt.end_ms + 0.01)
        _audit(result, plan, engine.config)

    def test_straggler_only_plan_keeps_result(self, instance):
        scalars, points, expected = instance
        engine = _engine(4)
        plan = FaultPlan.of(Straggler(1, 3.0))
        result = engine.execute(scalars, points, TOY_CURVE, faults=plan)
        assert result.point == expected
        assert result.fault_report.recovery_overhead_ms > 0
        _audit(result, plan, engine.config)


class TestAnalyticFaultPath:
    def test_estimate_recovers_and_reports(self):
        curve = curve_by_name("BLS12-381")
        engine = DistMsm(MultiGpuSystem(8), DistMsmConfig(window_size=10))
        base = engine.estimate(curve, 1 << 16)
        plan = FaultPlan.of(GpuFailure(base.time_ms * 0.1, 3))
        result = engine.estimate(curve, 1 << 16, faults=plan)
        report = result.fault_report
        assert report is not None
        assert report.recovered_ms >= report.fault_free_ms - 1e-9
        _audit(result, plan, engine.config)

    def test_replanned_window_size_for_survivors(self):
        # auto-tuned window: losing GPUs must re-derive the §3.1 optimum
        curve = curve_by_name("BLS12-381")
        engine = DistMsm(MultiGpuSystem(4), DistMsmConfig())
        base = engine.estimate(curve, 1 << 14)
        plan = FaultPlan.of(GpuFailure(0.0, 0), GpuFailure(0.0, 1))
        result = engine.estimate(curve, 1 << 14, faults=plan)
        report = result.fault_report
        expected = DistMsm(MultiGpuSystem(2), DistMsmConfig()).window_size_for(
            curve, 1 << 14
        )
        assert report.window_size == base.window_size
        assert report.replanned_window_size == expected
