"""Hierarchical bucket scatter (Algorithm 3): functional and analytic."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import DistMsmConfig
from repro.core.scatter import (
    check_shared_memory_fit,
    expected_nonempty_buckets,
    hierarchical_scatter,
    hierarchical_scatter_counts,
    naive_scatter,
    naive_scatter_counts,
    scatter_time_ms,
)
from repro.gpu.device import SharedMemoryExceeded, SimulatedGpu
from repro.gpu.specs import NVIDIA_A100

SMALL_CONFIG = DistMsmConfig(threads_per_block=32, points_per_thread=4)


def _reference_buckets(digits, num_buckets):
    buckets = [[] for _ in range(num_buckets)]
    for pid, d in enumerate(digits):
        if d:
            buckets[d].append(pid)
    return buckets


def _random_digits(n, num_buckets, seed):
    rng = random.Random(seed)
    return [rng.randrange(num_buckets) for _ in range(n)]


class TestNaiveScatter:
    def test_buckets_match_reference(self):
        digits = _random_digits(200, 16, 1)
        gpu = SimulatedGpu(NVIDIA_A100)
        out = naive_scatter(gpu, digits, 16)
        assert out.buckets == _reference_buckets(digits, 16)

    def test_one_atomic_per_nonzero_digit(self):
        digits = [0, 1, 2, 0, 3, 3]
        gpu = SimulatedGpu(NVIDIA_A100)
        out = naive_scatter(gpu, digits, 4)
        assert out.counters.global_atomics == 4

    def test_zero_digits_skipped(self):
        gpu = SimulatedGpu(NVIDIA_A100)
        out = naive_scatter(gpu, [0] * 10, 4)
        assert out.counters.global_atomics == 0
        assert all(not b for b in out.buckets)


class TestHierarchicalScatter:
    @pytest.mark.parametrize("n", [10, 128, 500])
    def test_buckets_match_reference(self, n):
        digits = _random_digits(n, 8, n)
        gpu = SimulatedGpu(NVIDIA_A100)
        out = hierarchical_scatter(gpu, digits, 8, SMALL_CONFIG)
        # hierarchical order within a bucket may be block-major; compare sets
        reference = _reference_buckets(digits, 8)
        assert [sorted(b) for b in out.buckets] == [sorted(b) for b in reference]

    def test_fewer_global_atomics_than_naive(self):
        """The whole point of Algorithm 3: one global atomic per non-empty
        local bucket instead of one per point."""
        digits = _random_digits(2000, 8, 3)
        g1, g2 = SimulatedGpu(NVIDIA_A100), SimulatedGpu(NVIDIA_A100)
        hier = hierarchical_scatter(g1, digits, 8, SMALL_CONFIG)
        naive = naive_scatter(g2, digits, 8)
        assert hier.counters.global_atomics < naive.counters.global_atomics / 10

    def test_two_shared_atomics_per_point(self):
        digits = [1, 2, 3, 1] * 8
        gpu = SimulatedGpu(NVIDIA_A100)
        out = hierarchical_scatter(gpu, digits, 4, SMALL_CONFIG)
        assert out.counters.shared_atomics == 2 * len(digits)

    def test_prefix_sum_per_block(self):
        config = SMALL_CONFIG  # capacity 128 points per block
        digits = _random_digits(300, 8, 5)
        gpu = SimulatedGpu(NVIDIA_A100)
        out = hierarchical_scatter(gpu, digits, 8, config)
        assert out.counters.prefix_sums == 3  # ceil(300 / 128)

    def test_shared_memory_wall(self):
        """Paper Fig. 11: execution failure when 2^s counters + cache
        exceed shared memory."""
        gpu = SimulatedGpu(NVIDIA_A100)  # 128 KB scatter shared memory
        digits = [1] * 10
        with pytest.raises(SharedMemoryExceeded):
            hierarchical_scatter(gpu, digits, 1 << 15, DistMsmConfig())

    def test_check_shared_memory_fit(self):
        check_shared_memory_fit(1 << 14, DistMsmConfig(points_per_thread=8))
        with pytest.raises(SharedMemoryExceeded):
            check_shared_memory_fit(1 << 15, DistMsmConfig())

    @given(st.integers(1, 300), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_property_membership_preserved(self, n, log_buckets):
        num_buckets = 1 << (log_buckets + 1)
        digits = _random_digits(n, num_buckets, n * 7 + log_buckets)
        gpu = SimulatedGpu(NVIDIA_A100)
        out = hierarchical_scatter(gpu, digits, num_buckets, SMALL_CONFIG)
        for b, members in enumerate(out.buckets):
            for pid in members:
                assert digits[pid] == b
        total = sum(len(b) for b in out.buckets)
        assert total == sum(1 for d in digits if d)


class TestAnalyticCounts:
    def test_expected_nonempty_buckets_bounds(self):
        assert expected_nonempty_buckets(0, 10) == 0.0
        assert expected_nonempty_buckets(10_000, 16) == pytest.approx(16, rel=0.01)
        with pytest.raises(ValueError):
            expected_nonempty_buckets(5, 0)

    def test_naive_counts_match_functional(self):
        n, buckets = 4096, 16
        digits = _random_digits(n, buckets, 11)
        gpu = SimulatedGpu(NVIDIA_A100)
        functional = naive_scatter(gpu, digits, buckets)
        analytic = naive_scatter_counts(n, buckets)
        assert analytic.global_atomics == pytest.approx(
            functional.counters.global_atomics, rel=0.05
        )

    def test_hierarchical_counts_match_functional(self):
        n, buckets = 4096, 16
        config = DistMsmConfig(threads_per_block=32, points_per_thread=4)
        digits = _random_digits(n, buckets, 13)
        gpu = SimulatedGpu(NVIDIA_A100)
        functional = hierarchical_scatter(gpu, digits, buckets, config)
        analytic = hierarchical_scatter_counts(n, buckets, config)
        assert analytic.shared_atomics == pytest.approx(
            functional.counters.shared_atomics, rel=0.05
        )
        assert analytic.global_atomics == pytest.approx(
            functional.counters.global_atomics, rel=0.10
        )
        assert analytic.prefix_sums == functional.counters.prefix_sums

    def test_analytic_respects_shared_memory_wall(self):
        with pytest.raises(SharedMemoryExceeded):
            hierarchical_scatter_counts(1000, 1 << 15, DistMsmConfig())


class TestScatterTiming:
    def test_hierarchical_wins_at_small_windows(self):
        """Fig. 11's multi-GPU regime: small s -> hierarchical much faster."""
        n = 1 << 22
        s = 9
        naive_t = scatter_time_ms(
            NVIDIA_A100, naive_scatter_counts(n, 1 << s), 1 << s, 1 << 17
        )
        hier_t = scatter_time_ms(
            NVIDIA_A100,
            hierarchical_scatter_counts(n, 1 << s, DistMsmConfig()),
            1 << s,
            1 << 17,
        )
        assert naive_t > 5 * hier_t

    def test_naive_wins_at_large_windows(self):
        """Fig. 11's single-GPU regime: large s -> naive is fine."""
        n = 1 << 22
        s = 14
        naive_t = scatter_time_ms(
            NVIDIA_A100, naive_scatter_counts(n, 1 << s), 1 << s, 1 << 17
        )
        hier_t = scatter_time_ms(
            NVIDIA_A100,
            hierarchical_scatter_counts(n, 1 << s, DistMsmConfig()),
            1 << s,
            1 << 17,
        )
        assert naive_t < hier_t * 1.5
