"""Autoscaler: burst reaction, cool-down anti-flapping, hysteresis."""

import pytest

from repro.cluster import (
    ACTION_DOWN,
    ACTION_UP,
    AutoscaleConfig,
    Autoscaler,
    ClusterConfig,
    ProofCluster,
    replay,
)
from repro.cluster.trace import diurnal_burst_trace
from repro.core.config import DistMsmConfig

CFG = AutoscaleConfig(
    min_nodes=1,
    max_nodes=4,
    control_interval_ms=10.0,
    queue_high=4.0,
    queue_low=0.5,
    cooldown_ms=100.0,
    provision_ms=20.0,
    down_stable_ticks=3,
)


class TestConfigValidation:
    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ValueError):
            AutoscaleConfig(queue_high=1.0, queue_low=2.0)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            AutoscaleConfig(min_nodes=0)
        with pytest.raises(ValueError):
            AutoscaleConfig(min_nodes=4, max_nodes=2)
        with pytest.raises(ValueError):
            AutoscaleConfig(down_stable_ticks=0)


class TestBurstReaction:
    def test_deep_queue_scales_up(self):
        scaler = Autoscaler(CFG)
        assert scaler.tick(0.0, queued=0, active=1, p99_ms=0.0) == 1
        target = scaler.tick(10.0, queued=8, active=1, p99_ms=0.0)
        assert target > 1
        assert scaler.actions(ACTION_UP)

    def test_pressure_proportional_step(self):
        # a very deep queue jumps several nodes in ONE decision instead of
        # paying one cooldown per node
        scaler = Autoscaler(CFG)
        target = scaler.tick(0.0, queued=20, active=1, p99_ms=0.0)
        assert target >= 3

    def test_p99_trigger(self):
        scaler = Autoscaler(
            AutoscaleConfig(
                min_nodes=1, max_nodes=4, control_interval_ms=10.0,
                p99_high_ms=50.0, cooldown_ms=100.0,
            )
        )
        target = scaler.tick(0.0, queued=0, active=2, p99_ms=80.0)
        assert target == 3
        assert "p99" in scaler.decisions[-1].reason

    def test_never_exceeds_max_nodes(self):
        scaler = Autoscaler(CFG)
        assert scaler.tick(0.0, queued=100, active=4, p99_ms=0.0) == 4


class TestCooldownAntiFlapping:
    def test_scale_up_is_never_immediately_reverted(self):
        scaler = Autoscaler(CFG)
        scaler.tick(0.0, queued=8, active=1, p99_ms=0.0)  # up, cooldown to 100
        # the burst drains instantly: pressure is low on every next tick
        for t in (10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0):
            target = scaler.tick(t, queued=0, active=2, p99_ms=0.0)
            assert target == 2, f"flapped at t={t}"
        assert not scaler.actions(ACTION_DOWN)
        # once the cooldown expires AND the hysteresis is satisfied, the
        # scale-down is allowed
        assert scaler.tick(110.0, queued=0, active=2, p99_ms=0.0) == 1

    def test_cooldown_also_suppresses_second_up(self):
        scaler = Autoscaler(CFG)
        scaler.tick(0.0, queued=8, active=1, p99_ms=0.0)
        target = scaler.tick(10.0, queued=20, active=2, p99_ms=0.0)
        assert target == 2
        assert "cooldown" in scaler.decisions[-1].reason


class TestHysteresis:
    def test_single_quiet_tick_never_drops_capacity(self):
        scaler = Autoscaler(CFG)
        assert scaler.tick(0.0, queued=0, active=3, p99_ms=0.0) == 3
        assert "1/3" in scaler.decisions[-1].reason

    def test_down_requires_consecutive_low_ticks(self):
        scaler = Autoscaler(CFG)
        scaler.tick(0.0, queued=0, active=3, p99_ms=0.0)
        scaler.tick(10.0, queued=9, active=3, p99_ms=0.0)  # pressure resets
        scaler.tick(110.0, queued=0, active=3, p99_ms=0.0)
        scaler.tick(120.0, queued=0, active=3, p99_ms=0.0)
        assert not scaler.actions(ACTION_DOWN)
        assert scaler.tick(130.0, queued=0, active=3, p99_ms=0.0) == 2

    def test_never_below_min_nodes(self):
        scaler = Autoscaler(CFG)
        for t in range(10):
            assert scaler.tick(t * 10.0, queued=0, active=1, p99_ms=0.0) == 1
        assert not scaler.actions()


class TestClusterIntegration:
    def test_burst_trace_scales_up_and_cooldown_holds(self):
        trace = diurnal_burst_trace(
            name="scale-test", seed=5, rate_rps=600.0, scale=0.4
        )
        cluster = ProofCluster(
            4,
            gpus_per_node=2,
            config=DistMsmConfig(window_size=10),
            cluster_config=ClusterConfig(
                autoscale=AutoscaleConfig(
                    min_nodes=1,
                    max_nodes=4,
                    control_interval_ms=10.0,
                    cooldown_ms=40.0,
                    provision_ms=20.0,
                )
            ),
        )
        result = replay(cluster, trace)
        ups = [d for d in result.scale_decisions if d.action == ACTION_UP]
        assert ups, "the burst must trigger at least one scale-up"
        # cool-down: no two capacity actions closer than cooldown_ms
        actions = [d for d in result.scale_decisions if d.action != "hold"]
        for a, b in zip(actions, actions[1:]):
            assert b.at_ms - a.at_ms >= 40.0 - 1e-9
        # everything was still served exactly once
        assert result.metrics.served == result.metrics.submitted - len(result.shed)
