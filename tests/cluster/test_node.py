"""ProofNode: dispatch bookkeeping, load model, and health reporting."""

import pytest

from repro.cluster import DEFAULT_NODE_SERVE_CONFIG, ProofNode
from repro.core.config import DistMsmConfig
from repro.curves.params import curve_by_name
from repro.serve import ProofRequest

BLS = curve_by_name("BLS12-381")
CONFIG = DistMsmConfig(window_size=10)


def _request(req_id: int, at_ms: float = 0.0, n: int = 1 << 16) -> ProofRequest:
    return ProofRequest(
        req_id=req_id, curve=BLS, n=n, arrival_ms=at_ms, label=f"r{req_id}"
    )


class TestLoadModel:
    def test_assign_books_estimated_load(self):
        node = ProofNode(0, num_gpus=2, config=CONFIG)
        node.assign(_request(0), dispatch_ms=1.0, est_service_ms=5.0)
        assert node.est_free_ms == pytest.approx(6.0)
        assert node.backlog_ms(1.0) == pytest.approx(5.0)
        assert node.inflight(1.0) == 1
        assert node.next_est_complete_ms() == pytest.approx(6.0)

    def test_sequential_bookings_queue_behind_each_other(self):
        node = ProofNode(0, num_gpus=2, config=CONFIG)
        node.assign(_request(0), dispatch_ms=0.0, est_service_ms=4.0)
        node.assign(_request(1), dispatch_ms=1.0, est_service_ms=4.0)
        # second starts when the first frees the node, not at dispatch
        assert node.est_free_ms == pytest.approx(8.0)
        assert node.inflight(0.0) == 2
        assert node.inflight(5.0) == 1
        assert node.inflight(9.0) == 0
        assert node.backlog_ms(10.0) == 0.0
        assert node.next_est_complete_ms() is None

    def test_local_request_restamps_arrival(self):
        node = ProofNode(0, num_gpus=2, config=CONFIG)
        dispatch = node.assign(_request(0, at_ms=2.0), 7.5, est_service_ms=1.0)
        local = dispatch.local_request()
        assert local.arrival_ms == pytest.approx(7.5)
        assert local.req_id == 0
        # the cluster-clock arrival survives on the original
        assert dispatch.request.arrival_ms == pytest.approx(2.0)

    def test_local_requests_exclude(self):
        node = ProofNode(0, num_gpus=2, config=CONFIG)
        for i in range(3):
            node.assign(_request(i, at_ms=float(i)), float(i), 1.0)
        kept = node.local_requests(exclude={1})
        assert [r.req_id for r in kept] == [0, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            ProofNode(-1, num_gpus=2)
        node = ProofNode(0, num_gpus=2, config=CONFIG)
        with pytest.raises(ValueError):
            node.assign(_request(0), 0.0, est_service_ms=-1.0)


class TestHealth:
    def test_live_node_reports_live(self):
        node = ProofNode(0, num_gpus=2, config=CONFIG)
        assert node.reported_alive(100.0)
        assert node.alive_at(100.0)
        assert node.health(100.0) == "live"

    def test_dying_window_between_death_and_detection(self):
        node = ProofNode(0, num_gpus=2, config=CONFIG)
        node.death_ms, node.detect_ms = 5.0, 7.0
        assert node.health(4.0) == "live"
        # dead but not yet detected: the router still believes it is alive
        assert node.health(6.0) == "dying"
        assert node.reported_alive(6.0)
        assert not node.alive_at(6.0)
        assert node.health(8.0) == "dead"
        assert not node.reported_alive(8.0)

    def test_report_snapshot(self):
        node = ProofNode(3, num_gpus=2, config=CONFIG)
        node.assign(_request(0), 0.0, est_service_ms=4.0)
        report = node.report(1.0)
        assert report.node_id == 3
        assert report.gpus == 2
        assert report.dispatched == 1
        assert report.inflight == 1
        assert report.backlog_ms == pytest.approx(3.0)
        assert report.health == "live"


class TestServe:
    def test_serves_dispatched_requests_at_dispatch_instants(self):
        node = ProofNode(0, num_gpus=2, config=CONFIG)
        for i in range(3):
            node.assign(_request(i, at_ms=float(i)), 10.0 + i, 6.0)
        result = node.serve()
        assert len(result.records) == 3
        assert not result.shed
        for record in result.records:
            # the node sees work when the router dispatched it
            assert record.arrival_ms >= 10.0

    def test_default_serve_config_accepts_what_it_is_handed(self):
        assert DEFAULT_NODE_SERVE_CONFIG.max_queue == 256
        assert DEFAULT_NODE_SERVE_CONFIG.reject_infeasible is False
