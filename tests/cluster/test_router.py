"""ProofCluster router: queues, fairness, SLO sheds, routing policies."""

from dataclasses import replace

import pytest

from repro.cluster import ClusterConfig, ProofCluster, TenantSpec
from repro.core.config import DistMsmConfig
from repro.curves.params import curve_by_name
from repro.serve import ProofRequest
from repro.serve.admission import SHED_INFEASIBLE, SHED_QUEUE_FULL
from repro.verify.clustercheck import verify_cluster

BLS = curve_by_name("BLS12-381")
CONFIG = DistMsmConfig(window_size=10)


def _requests(
    count: int, gap_ms: float = 1.0, tenants: tuple = ("acme", "zkmart")
) -> list[ProofRequest]:
    return [
        ProofRequest(
            req_id=i,
            curve=BLS,
            n=1 << 16,
            arrival_ms=i * gap_ms,
            label=f"r{i}",
            tenant=tenants[i % len(tenants)],
        )
        for i in range(count)
    ]


class TestBasicServing:
    def test_everything_served_exactly_once(self):
        cluster = ProofCluster(3, gpus_per_node=2, config=CONFIG)
        result = cluster.serve(_requests(12))
        assert len(result.records) == 12
        assert not result.shed
        seen = [r.req_id for r in result.records]
        assert sorted(seen) == list(range(12))
        checked = verify_cluster(result, subject="3-node basic")
        assert checked.ok, [str(v) for v in checked.all_violations()]

    def test_load_spreads_over_nodes(self):
        cluster = ProofCluster(3, gpus_per_node=2, config=CONFIG)
        result = cluster.serve(_requests(12, gap_ms=0.5))
        used = {r.node_id for r in result.records}
        assert len(used) == 3

    def test_serve_is_one_shot(self):
        cluster = ProofCluster(2, gpus_per_node=2, config=CONFIG)
        cluster.serve(_requests(2))
        with pytest.raises(RuntimeError):
            cluster.serve(_requests(2))

    def test_duplicate_req_ids_rejected(self):
        cluster = ProofCluster(2, gpus_per_node=2, config=CONFIG)
        reqs = _requests(2)
        reqs[1] = replace(reqs[1], req_id=0)
        with pytest.raises(ValueError):
            cluster.serve(reqs)

    def test_empty_workload(self):
        result = ProofCluster(2, gpus_per_node=2, config=CONFIG).serve([])
        assert result.records == []
        assert result.metrics.served == 0


class TestRoutingPolicies:
    @pytest.mark.parametrize("policy", ["least-loaded", "p2c", "tenant-affinity"])
    def test_all_policies_serve_everything(self, policy):
        cluster = ProofCluster(
            3,
            gpus_per_node=2,
            config=CONFIG,
            cluster_config=ClusterConfig(routing=policy),
        )
        result = cluster.serve(_requests(9))
        assert len(result.records) == 9
        checked = verify_cluster(result, subject=policy)
        assert checked.ok, [str(v) for v in checked.all_violations()]

    def test_p2c_is_seed_deterministic(self):
        def run():
            cluster = ProofCluster(
                4,
                gpus_per_node=2,
                config=CONFIG,
                cluster_config=ClusterConfig(routing="p2c", p2c_seed=11),
            )
            result = cluster.serve(_requests(10, gap_ms=0.5))
            return [(d.req_id, d.node_id) for d in result.dispatches]

        assert run() == run()

    def test_tenant_affinity_pins_a_tenant_under_light_load(self):
        cluster = ProofCluster(
            4,
            gpus_per_node=2,
            config=CONFIG,
            cluster_config=ClusterConfig(routing="tenant-affinity"),
        )
        # 8 ms apart: each request finishes before the next arrives, so
        # the affinity target is always available and never walked past
        result = cluster.serve(_requests(8, gap_ms=8.0))
        by_tenant: dict = {}
        for record in result.records:
            by_tenant.setdefault(record.tenant, set()).add(record.node_id)
        for tenant, nodes in by_tenant.items():
            assert len(nodes) == 1, (tenant, nodes)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(routing="coin-flip")


class TestTenantQueues:
    def test_priority_class_dequeues_first(self):
        # everything arrives at once on a single 1-wide node: dispatch
        # order IS the queue order
        reqs = _requests(6, gap_ms=0.0, tenants=("bulk",))
        reqs += [
            ProofRequest(
                req_id=10, curve=BLS, n=1 << 16, arrival_ms=0.0,
                label="vip0", tenant="vip",
            )
        ]
        cluster = ProofCluster(
            1,
            gpus_per_node=2,
            config=CONFIG,
            cluster_config=ClusterConfig(max_inflight_per_node=1),
            tenants=(TenantSpec("bulk", priority=1), TenantSpec("vip", priority=0)),
        )
        result = cluster.serve(reqs)
        order = [d.req_id for d in sorted(result.dispatches, key=lambda d: d.at_ms)]
        assert order[0] == 10  # the vip request jumps the whole bulk queue

    def test_weighted_fair_share_under_contention(self):
        heavy = [
            ProofRequest(
                req_id=i, curve=BLS, n=1 << 16, arrival_ms=0.0,
                label=f"h{i}", tenant="heavy",
            )
            for i in range(8)
        ]
        light = [
            ProofRequest(
                req_id=100 + i, curve=BLS, n=1 << 16, arrival_ms=0.0,
                label=f"l{i}", tenant="light",
            )
            for i in range(8)
        ]
        cluster = ProofCluster(
            1,
            gpus_per_node=2,
            config=CONFIG,
            cluster_config=ClusterConfig(max_inflight_per_node=1),
            tenants=(TenantSpec("heavy", weight=3.0), TenantSpec("light", weight=1.0)),
        )
        result = cluster.serve(heavy + light)
        first_eight = [
            d.tenant
            for d in sorted(result.dispatches, key=lambda d: (d.at_ms, d.req_id))
        ][:8]
        # weight 3 vs 1: about three heavy dispatches per light one
        assert first_eight.count("heavy") >= 5, first_eight

    def test_queue_full_sheds_at_the_router(self):
        reqs = _requests(10, gap_ms=0.0, tenants=("bulk",))
        cluster = ProofCluster(
            1,
            gpus_per_node=2,
            config=CONFIG,
            cluster_config=ClusterConfig(max_inflight_per_node=1),
            tenants=(TenantSpec("bulk", max_queue=2),),
        )
        result = cluster.serve(reqs)
        assert result.shed
        assert all(s.reason == SHED_QUEUE_FULL for s in result.shed)
        assert len(result.records) + len(result.shed) == 10
        checked = verify_cluster(result, subject="queue-full")
        assert checked.ok, [str(v) for v in checked.all_violations()]

    def test_deadline_class_sheds_infeasible_work(self):
        reqs = _requests(10, gap_ms=0.0, tenants=("slo",))
        cluster = ProofCluster(
            1,
            gpus_per_node=2,
            config=CONFIG,
            cluster_config=ClusterConfig(max_inflight_per_node=1),
            tenants=(TenantSpec("slo", deadline_class_ms=1.0),),
        )
        result = cluster.serve(reqs)
        # the node serves ~6 ms per request: everything still queued when
        # its 1 ms deadline passes is shed, never dispatched
        infeasible = [s for s in result.shed if s.reason == SHED_INFEASIBLE]
        assert infeasible
        shed_ids = {s.request.req_id for s in result.shed}
        served_ids = {r.req_id for r in result.records}
        assert shed_ids.isdisjoint(served_ids)
        assert shed_ids | served_ids == set(range(10))
        # the deadline class was stamped onto the served records too
        assert all(r.deadline_ms is not None for r in result.records)

    def test_per_tenant_metrics_conserve_counts(self):
        cluster = ProofCluster(2, gpus_per_node=2, config=CONFIG)
        result = cluster.serve(_requests(10))
        per = result.metrics.per_tenant()
        assert sorted(per) == ["acme", "zkmart"]
        total = sum(t["served"] + t["shed"] for t in per.values())
        assert total == 10
