"""Cluster failover: plan splitting, death detection, bit-exact re-routing."""

import pytest

from repro.cluster import (
    ProofCluster,
    ProofNode,
    TenantSpec,
    node_of_gpu,
    serve_dying_node,
    split_fault_plan,
)
from repro.core.config import DistMsmConfig
from repro.curves.params import curve_by_name
from repro.curves.sampling import msm_instance
from repro.curves.toy import toy_curve
from repro.engine.faults import FaultPlan, GpuFailure, Straggler, TransferError
from repro.msm.naive import naive_msm
from repro.serve import MsmPayload, ProofRequest
from repro.verify.clustercheck import verify_cluster

BLS = curve_by_name("BLS12-381")
CONFIG = DistMsmConfig(window_size=10)


def _requests(count: int, gap_ms: float = 1.0) -> list[ProofRequest]:
    return [
        ProofRequest(
            req_id=i,
            curve=BLS,
            n=1 << 16,
            arrival_ms=i * gap_ms,
            label=f"r{i}",
            tenant="acme" if i % 2 else "zkmart",
        )
        for i in range(count)
    ]


class TestNodeOfGpu:
    def test_maps_global_to_local(self):
        counts = [2, 2, 4]
        assert node_of_gpu(0, counts) == (0, 0)
        assert node_of_gpu(1, counts) == (0, 1)
        assert node_of_gpu(2, counts) == (1, 0)
        assert node_of_gpu(4, counts) == (2, 0)
        assert node_of_gpu(7, counts) == (2, 3)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            node_of_gpu(8, [2, 2, 4])


class TestSplitFaultPlan:
    def test_empty_plan_is_all_none(self):
        plans, deaths = split_fault_plan(None, [2, 2], heartbeat_ms=5.0)
        assert plans == [None, None]
        assert deaths == []

    def test_partial_kill_stays_local_no_death(self):
        faults = FaultPlan.of(GpuFailure(3.0, 2))  # node 1's first GPU
        plans, deaths = split_fault_plan(faults, [2, 2], heartbeat_ms=5.0)
        assert deaths == []
        assert plans[0] is None
        assert plans[1] is not None
        (event,) = plans[1].events
        assert isinstance(event, GpuFailure)
        assert event.gpu_id == 0  # remapped to the node-local id

    def test_full_node_kill_becomes_death_and_kills_are_withheld(self):
        faults = FaultPlan.of(GpuFailure(3.0, 2), GpuFailure(4.0, 3))
        plans, deaths = split_fault_plan(faults, [2, 2], heartbeat_ms=5.0)
        (death,) = deaths
        assert death.node_id == 1
        assert death.at_ms == pytest.approx(4.0)  # the LAST kill stops the box
        assert death.detect_ms >= death.at_ms
        # the earlier kill stays local (intra-node recovery still runs);
        # the final kill is withheld so the node server keeps a survivor
        assert plans[1] is not None
        kills = [e for e in plans[1].events if isinstance(e, GpuFailure)]
        assert [(k.at_ms, k.gpu_id) for k in kills] == [(3.0, 0)]

    def test_simultaneous_full_kill_withholds_everything(self):
        faults = FaultPlan.of(GpuFailure(3.0, 2), GpuFailure(3.0, 3))
        plans, deaths = split_fault_plan(faults, [2, 2], heartbeat_ms=5.0)
        assert deaths[0].at_ms == pytest.approx(3.0)
        assert plans[1] is None

    def test_transfer_error_routes_to_named_node(self):
        faults = FaultPlan.of(
            TransferError(1, 2.0, transient=True), Straggler(3, 2.0)
        )
        plans, deaths = split_fault_plan(faults, [2, 2], heartbeat_ms=5.0)
        assert deaths == []
        assert plans[0] is None
        events = plans[1].events
        assert any(
            isinstance(e, TransferError) and e.node == 0 for e in events
        )
        assert any(
            isinstance(e, Straggler) and e.gpu_id == 1 for e in events
        )

    def test_transfer_error_beyond_cluster_raises(self):
        with pytest.raises(ValueError):
            split_fault_plan(
                FaultPlan.of(TransferError(5, 1.0, transient=True)),
                [2, 2],
                heartbeat_ms=5.0,
            )

    def test_bad_heartbeat_raises(self):
        with pytest.raises(ValueError):
            split_fault_plan(None, [2, 2], heartbeat_ms=0.0)


class TestServeDyingNode:
    def test_truncates_at_death(self):
        node = ProofNode(0, num_gpus=2, config=CONFIG)
        for req in _requests(6, gap_ms=2.0):
            node.assign(req, req.arrival_ms, est_service_ms=6.0)
        from repro.cluster import NodeDeath

        death = NodeDeath(node_id=0, at_ms=12.0, detect_ms=14.0)
        result, lost = serve_dying_node(node, None, death)
        assert all(r.complete_ms <= death.at_ms + 1e-9 for r in result.records)
        served = {r.req_id for r in result.records}
        assert served.isdisjoint(lost)
        assert served | lost == set(range(6))
        assert lost  # at 2 ms apart with ~6 ms service, some work is swallowed


class TestClusterFailover:
    def test_node_kill_reroutes_to_survivor_and_audits_clean(self):
        requests = _requests(12, gap_ms=1.0)
        kill = FaultPlan.of(GpuFailure(6.0, 2), GpuFailure(6.0, 3))
        cluster = ProofCluster(2, gpus_per_node=2, config=CONFIG)
        result = cluster.serve(requests, faults=kill)

        (death,) = result.deaths
        assert death.node_id == 1
        assert result.failovers, "the death swallowed in-flight work"
        for event in result.failovers:
            assert event.from_node == 1
            assert event.to_node == 0
            assert event.redispatch_ms >= death.detect_ms - 1e-9
        # everything is accounted for exactly once
        checked = verify_cluster(result, subject="kill test")
        assert checked.ok, [str(v) for v in checked.all_violations()]
        assert len(result.records) + len(result.shed) == len(requests)

    def test_failover_is_bit_exact_on_payloads(self):
        toy = toy_curve()
        cfg = DistMsmConfig(
            window_size=4, threads_per_block=32, points_per_thread=4
        )
        requests, expected = [], {}
        for i in range(6):
            scalars, points = msm_instance(toy, 16, seed=300 + i)
            requests.append(
                ProofRequest(
                    req_id=i,
                    curve=toy,
                    n=16,
                    arrival_ms=0.0,
                    payload=MsmPayload(tuple(scalars), tuple(points)),
                    label=f"f{i}",
                    tenant="acme" if i % 2 else "zkmart",
                )
            )
            expected[i] = naive_msm(scalars, points, toy)
        cluster = ProofCluster(
            2,
            gpus_per_node=2,
            config=cfg,
            tenants=(TenantSpec("acme"), TenantSpec("zkmart")),
        )
        result = cluster.serve(
            requests, faults=FaultPlan.of(GpuFailure(0.05, 2), GpuFailure(0.05, 3))
        )
        assert result.metrics.failover_count >= 1
        assert len(result.records) == 6
        for record in result.records:
            # the answer must not depend on which node computed it
            assert record.result == expected[record.req_id]
        checked = verify_cluster(result, subject="bit-exact failover")
        assert checked.ok, [str(v) for v in checked.all_violations()]
