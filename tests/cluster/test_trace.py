"""Replayable cluster traces: format round-trip and deterministic replay."""

import pytest

from repro.cluster import (
    ClusterTrace,
    ProofCluster,
    TraceSegment,
    generate_requests,
    replay,
)
from repro.cluster.trace import diurnal_burst_trace
from repro.core.config import DistMsmConfig
from repro.verify.clustercheck import verify_cluster


def _small_trace() -> ClusterTrace:
    return diurnal_burst_trace(
        name="unit", seed=3, rate_rps=300.0, scale=0.3
    )


class TestFormat:
    def test_json_round_trip_is_identity(self):
        trace = _small_trace()
        assert ClusterTrace.from_json(trace.to_json()) == trace

    def test_save_load(self, tmp_path):
        trace = _small_trace()
        path = tmp_path / "trace.json"
        trace.save(path)
        assert ClusterTrace.load(path) == trace

    def test_unknown_format_rejected(self):
        trace = _small_trace()
        doctored = trace.to_json().replace(
            "repro.cluster.trace/v1", "someone.else/v9"
        )
        with pytest.raises(ValueError):
            ClusterTrace.from_json(doctored)

    def test_segment_validation(self):
        with pytest.raises(ValueError):
            TraceSegment(name="x", kind="tsunami", duration_ms=10.0)
        with pytest.raises(ValueError):
            TraceSegment(name="x", kind="warmup", duration_ms=0.0)
        with pytest.raises(ValueError):
            TraceSegment(
                name="x", kind="warmup", duration_ms=10.0,
                tenant_mix=(("acme", -1.0),),
            )

    def test_duration_is_sum_of_segments(self):
        trace = _small_trace()
        assert trace.duration_ms == pytest.approx(
            sum(s.duration_ms for s in trace.segments)
        )


class TestGeneration:
    def test_replay_is_deterministic(self):
        a = generate_requests(_small_trace())
        b = generate_requests(_small_trace())
        assert [
            (r.req_id, r.arrival_ms, r.n, r.tenant, r.label) for r in a
        ] == [(r.req_id, r.arrival_ms, r.n, r.tenant, r.label) for r in b]

    def test_different_seed_different_arrivals(self):
        base = _small_trace()
        other = ClusterTrace(
            name=base.name, curve=base.curve, seed=base.seed + 1,
            segments=base.segments,
        )
        a = [r.arrival_ms for r in generate_requests(base)]
        b = [r.arrival_ms for r in generate_requests(other)]
        assert a != b

    def test_requests_are_ordered_and_in_window(self):
        trace = _small_trace()
        requests = generate_requests(trace)
        assert requests, "the canonical trace must generate work"
        assert [r.req_id for r in requests] == list(range(len(requests)))
        arrivals = [r.arrival_ms for r in requests]
        assert arrivals == sorted(arrivals)
        assert all(0.0 <= a < trace.duration_ms for a in arrivals)

    def test_tenants_come_from_the_mix(self):
        requests = generate_requests(_small_trace())
        tenants = {r.tenant for r in requests}
        assert tenants <= {"acme", "zkmart"}
        assert len(tenants) == 2

    def test_deadline_class_stamps_requests(self):
        trace = diurnal_burst_trace(
            name="slo", seed=3, rate_rps=200.0, deadline_ms=40.0, scale=0.3
        )
        requests = generate_requests(trace)
        for r in requests:
            assert r.deadline_ms == pytest.approx(r.arrival_ms + 40.0)


class TestReplay:
    def test_replay_serves_the_trace_and_audits_clean(self):
        cluster = ProofCluster(
            2, gpus_per_node=2, config=DistMsmConfig(window_size=10)
        )
        result = replay(cluster, _small_trace())
        assert result.metrics.submitted == len(generate_requests(_small_trace()))
        assert result.metrics.served + len(result.shed) == result.metrics.submitted
        checked = verify_cluster(result, subject="trace replay")
        assert checked.ok, [str(v) for v in checked.all_violations()]
