"""Tensor-core Montgomery multiplication and on-the-fly compaction (§4.3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.curves.params import curve_by_name, list_curves
from repro.fields.montgomery import MontgomeryContext
from repro.kernels.compaction import (
    compact_accumulators,
    compacted_bits,
    compaction_cost,
    column_permutation,
    partials_to_int,
    shuffle_columns,
    verify_compaction_round_trip,
)
from repro.kernels.montmul_tc import (
    TensorCoreMontgomery,
    accumulators_to_int,
    bytes_vector_to_int,
    constant_operand_matrix,
    int_to_bytes_vector,
    max_significant_bits,
    tensor_core_multiply,
)

BN254 = curve_by_name("BN254")


class TestByteVectors:
    def test_round_trip(self):
        v = 0x1234_5678_9ABC_DEF0
        assert bytes_vector_to_int(int_to_bytes_vector(v, 8)) == v

    def test_little_endian(self):
        vec = int_to_bytes_vector(0x0102, 4)
        assert list(vec) == [0x02, 0x01, 0, 0]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            int_to_bytes_vector(-1, 4)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            int_to_bytes_vector(1 << 32, 4)


class TestConstantMatrix:
    def test_shape(self):
        mat = constant_operand_matrix(BN254.p, 32)
        assert mat.shape == (32, 64)

    def test_banded_structure(self):
        mat = constant_operand_matrix(0x0102, 4)
        # row j holds the constant's bytes shifted right by j columns
        assert list(mat[0][:4]) == [0x02, 0x01, 0, 0]
        assert list(mat[1][1:5]) == [0x02, 0x01, 0, 0]
        assert mat[1][0] == 0

    @given(st.integers(0, (1 << 256) - 1), st.integers(0, (1 << 256) - 1))
    @settings(max_examples=25, deadline=None)
    def test_matrix_product_is_integer_product(self, a, n):
        mat = constant_operand_matrix(n, 32)
        acc = tensor_core_multiply(a, mat)
        assert accumulators_to_int(acc) == a * n

    def test_significant_bits_claim(self):
        """Paper: <= 23 significant bits per uint32 output for <= 95 bytes."""
        assert max_significant_bits(95) == 23
        # worst case operands really stay within the bound
        a = n = (1 << 256) - 1
        acc = tensor_core_multiply(a, constant_operand_matrix(n, 32))
        assert int(acc.max()) < (1 << max_significant_bits(32))


class TestTensorCoreMontgomery:
    @pytest.fixture(scope="class")
    def tc(self):
        return TensorCoreMontgomery(MontgomeryContext(BN254.p))

    def test_matches_reference(self, tc):
        ctx = tc.ctx
        a, b = 0xDEADBEEF, 0xC0FFEE
        am, bm = ctx.to_mont(a), ctx.to_mont(b)
        result = tc.multiply(am, bm)
        assert result.product == ctx.mont_mul_int(am, bm)

    @given(st.integers(0, BN254.p - 1), st.integers(0, BN254.p - 1))
    @settings(max_examples=20, deadline=None)
    def test_matches_reference_property(self, tc, a, b):
        ctx = tc.ctx
        am, bm = ctx.to_mont(a), ctx.to_mont(b)
        assert tc.multiply(am, bm).product == ctx.mont_mul_int(am, bm)

    def test_works_for_all_curves(self):
        for curve in list_curves():
            ctx = MontgomeryContext(curve.p)
            tc = TensorCoreMontgomery(ctx)
            am, bm = ctx.to_mont(curve.p // 5), ctx.to_mont(curve.p // 9)
            assert tc.multiply(am, bm).product == ctx.mont_mul_int(am, bm)

    def test_op_counts(self, tc):
        result = tc.multiply(tc.ctx.to_mont(3), tc.ctx.to_mont(5))
        n = tc.ctx.num_limbs
        assert result.mma_ops == (4 * n) ** 2
        assert result.cuda_mul_ops == n * n + n

    def test_reduction_m_is_exact(self, tc):
        """C + m*n must vanish mod R — the defining property of m."""
        c = 123456789 * BN254.p + 987654321
        m = tc.reduction_m(c)
        assert (c + m * tc.ctx.modulus) % tc.ctx.r == 0


class TestCompaction:
    def test_round_trip_random(self):
        rng = np.random.default_rng(5)
        acc = rng.integers(0, 1 << 23, size=64, dtype=np.int64).astype(np.uint32)
        assert verify_compaction_round_trip(acc)

    def test_round_trip_real_product(self):
        tc = TensorCoreMontgomery(MontgomeryContext(BN254.p))
        am = tc.ctx.to_mont(424242)
        result = tc.multiply(am, tc.ctx.to_mont(171717))
        assert verify_compaction_round_trip(result.tc_accumulators)

    def test_partial_bit_width(self):
        """Paper: compacted partials are 45-bit for 256-bit operands."""
        assert compacted_bits(32) == 45

    def test_group_divisibility_checked(self):
        with pytest.raises(ValueError):
            compact_accumulators(np.zeros(6, dtype=np.uint32))

    def test_partials_reassemble(self):
        acc = np.array([1, 2, 3, 4, 5, 6, 7, 8], dtype=np.uint32)
        partials = compact_accumulators(acc)
        assert partials_to_int(partials) == accumulators_to_int(acc)

    def test_column_permutation_is_permutation(self):
        perm = column_permutation(64)
        assert sorted(perm) == list(range(64))

    def test_shuffled_matrix_same_product_modulo_permutation(self):
        n = 0xFEDCBA9876543210FEDCBA9876543210
        a = 0x123456789ABCDEF0123456789ABCDEF
        mat = constant_operand_matrix(n, 16)
        shuffled = shuffle_columns(mat)
        perm = column_permutation(32)
        plain = tensor_core_multiply(a, mat)
        mixed = tensor_core_multiply(a, shuffled)
        assert np.array_equal(mixed, plain[perm])

    def test_traffic_model_quotes_4x(self):
        """Paper: the naive path incurs 4x the optimal memory transfer."""
        cost = compaction_cost(32)
        assert cost.bytes_naive == 4 * cost.bytes_compacted
