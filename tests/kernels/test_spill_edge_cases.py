"""Edge cases for the explicit spill planner (paper §4.2.2).

Covers the boundary behaviours the main spill tests skip over: DAGs that
need no spilling at all, a value that stays live across a multiplication
(so the planner must carry or spill it around the mul's fresh temporary),
and budgets exactly at — and just below — the feasibility boundary.
"""

import pytest

from repro.kernels.dag import Op, OpDag, build_pacc_dag, entry_live, peak_live
from repro.kernels.scheduler import find_optimal_schedule
from repro.kernels.spill import plan_spills, plan_spills_optimal
from repro.verify import verify_spill_plan


def tiny_dag() -> OpDag:
    """a, b live at entry; D = (a*b) - a must keep ``a`` across the mul."""
    ops = [
        Op("m", "M", ("a", "b"), "mul"),
        Op("d", "D", ("M", "a"), "sub"),
    ]
    return OpDag(
        name="tiny",
        ops=ops,
        live_at_start=frozenset({"a", "b"}),
        live_at_end=frozenset({"D"}),
    )


class TestZeroSpill:
    def test_generous_budget_plans_no_moves(self):
        dag = build_pacc_dag()
        order = list(dag.ops)
        names = [op.name for op in order]
        written_peak = peak_live(dag)
        plan = plan_spills(dag, names, register_budget=written_peak)
        assert plan.transfers == 0
        assert plan.moves == []
        assert plan.peak_shm_bigints == 0
        assert plan.feasible
        assert plan.peak_registers == written_peak

    def test_zero_spill_plan_verifies(self):
        dag = build_pacc_dag()
        names = [op.name for op in dag.ops]
        plan = plan_spills(dag, names, register_budget=peak_live(dag))
        result = verify_spill_plan(dag, names, plan)
        assert result.ok, [str(v) for v in result.violations]

    def test_tiny_dag_no_spill_at_its_peak(self):
        dag = tiny_dag()
        plan = plan_spills(dag, ["m", "d"], register_budget=peak_live(dag))
        assert plan.transfers == 0

    def test_optimal_matches_greedy_when_nothing_to_spill(self):
        dag = build_pacc_dag()
        names = [op.name for op in dag.ops]
        optimal = plan_spills_optimal(dag, names, register_budget=peak_live(dag))
        assert optimal.transfers == 0


class TestLiveAcrossMul:
    """A spilled value must survive a multiplication's fresh temporary."""

    def chain_dag(self) -> OpDag:
        # ``keep`` is consumed first and last, with two muls in between:
        # at budget 3 it must be spilled across them and reloaded.
        ops = [
            Op("t0", "T0", ("keep", "x"), "mul"),
            Op("t1", "T1", ("T0", "x"), "mul"),
            Op("t2", "T2", ("T1", "x"), "mul"),
            Op("out", "OUT", ("T2", "keep"), "sub"),
        ]
        return OpDag(
            name="chain",
            ops=ops,
            live_at_start=frozenset({"keep", "x"}),
            live_at_end=frozenset({"OUT"}),
        )

    def test_value_spilled_across_muls_is_reloaded_before_use(self):
        dag = self.chain_dag()
        order = ["t0", "t1", "t2", "out"]
        plan = plan_spills(dag, order, register_budget=3)
        spills = [m for m in plan.moves if m[1] == "spill"]
        reloads = [m for m in plan.moves if m[1] == "reload"]
        assert ("t1", "spill", "keep") in plan.moves
        assert ("out", "reload", "keep") in plan.moves
        assert len(spills) == len(reloads) == 1
        assert plan.transfers == 2
        assert plan.peak_shm_bigints == 1
        assert plan.feasible

    def test_spilled_plan_passes_symbolic_replay(self):
        dag = self.chain_dag()
        order = ["t0", "t1", "t2", "out"]
        plan = plan_spills(dag, order, register_budget=3)
        result = verify_spill_plan(dag, order, plan)
        assert result.ok, [str(v) for v in result.violations]

    def test_pacc_spill_preserves_value_across_muls(self):
        # the paper's own case: PACC at budget 5 spills values that are
        # live across several multiplications; replay must accept it.
        dag = build_pacc_dag()
        schedule = find_optimal_schedule(dag)
        order = list(schedule.order)
        plan = plan_spills(dag, order, register_budget=5)
        assert plan.transfers > 0
        result = verify_spill_plan(dag, order, plan)
        assert result.ok, [str(v) for v in result.violations]


class TestCapacityBoundary:
    def test_budget_exactly_at_entry_live_is_feasible_for_pacc(self):
        dag = build_pacc_dag()
        schedule = find_optimal_schedule(dag)
        order = list(schedule.order)
        budget = 5
        assert budget >= entry_live(dag)
        plan = plan_spills(dag, order, register_budget=budget)
        assert plan.feasible
        assert plan.peak_registers <= budget

    def test_budget_below_working_set_raises(self):
        dag = tiny_dag()
        # op ``m`` needs a, b live plus a fresh output: working set 3.
        with pytest.raises(ValueError, match="working set"):
            plan_spills(dag, ["m", "d"], register_budget=2)

    def test_budget_one_above_boundary_succeeds(self):
        dag = tiny_dag()
        plan = plan_spills(dag, ["m", "d"], register_budget=3)
        assert plan.feasible

    def test_pacc_floor_is_the_working_set(self):
        # two inputs plus a fresh mul output: no budget below 3 can work,
        # and 3 itself is exactly feasible (at a steep transfer cost).
        dag = build_pacc_dag()
        order = [op.name for op in dag.ops]
        with pytest.raises(ValueError, match="working set"):
            plan_spills(dag, order, register_budget=2)
        # 3 registers survive every op but can't hold the 4 end-live
        # coordinates, so the plan reports itself infeasible.
        squeezed = plan_spills(dag, order, register_budget=3)
        assert not squeezed.feasible
        assert squeezed.peak_registers == 4
        at_floor = plan_spills(dag, order, register_budget=4)
        relaxed = plan_spills(dag, order, register_budget=5)
        assert at_floor.feasible
        assert at_floor.transfers > relaxed.transfers

    def test_optimal_search_rejects_infeasible_budget(self):
        dag = tiny_dag()
        with pytest.raises(ValueError):
            plan_spills_optimal(dag, ["m", "d"], register_budget=2)
