"""Register-pressure analysis: DAGs, exhaustive scheduling, spilling.

These tests pin the paper's §4.2 numbers:
* straightforward PADD / PACC peak live big integers: 11 / 9;
* after exhaustive rescheduling: 9 / 7 (Fig. 5);
* explicit spilling takes PACC to 5 registers with at most 3 big integers
  in shared memory at any time.
"""

import pytest

from repro.kernels.dag import (
    Op,
    OpDag,
    build_pacc_dag,
    build_padd_dag,
    entry_live,
    peak_live,
)
from repro.kernels.scheduler import find_optimal_schedule, written_order_peak
from repro.kernels.spill import plan_spills


class TestDagStructure:
    def test_padd_has_14_muls(self):
        assert build_padd_dag().num_muls == 14

    def test_pacc_has_10_muls(self):
        assert build_pacc_dag().num_muls == 10

    def test_duplicate_op_names_rejected(self):
        with pytest.raises(ValueError):
            OpDag("bad", [Op("a", "X", ("A", "B"), "mul"), Op("a", "Y", ("A", "B"), "mul")])

    def test_duplicate_outputs_rejected(self):
        with pytest.raises(ValueError):
            OpDag("bad", [Op("a", "X", ("A", "B"), "mul"), Op("b", "X", ("A", "B"), "mul")])

    def test_dependencies(self):
        dag = build_pacc_dag()
        deps = dag.dependencies()
        assert deps["pp"] == {"p"}
        assert deps["u2"] == set()

    def test_entry_live(self):
        assert entry_live(build_padd_dag()) == 8
        assert entry_live(build_pacc_dag()) == 4

    def test_repr_shows_formula(self):
        op = Op("v1", "V1", ("V0", "PPP"), "sub", inplace=True)
        assert "V0 - PPP" in repr(op)
        assert "inplace" in repr(op)


class TestWrittenOrderPeaks:
    """Paper §4.2: 'peak register pressures for straightforward PADD and
    PACC implementations are 11 and 9 big integers'."""

    def test_padd_written_is_11(self):
        assert peak_live(build_padd_dag()) == 11

    def test_pacc_written_is_9(self):
        assert peak_live(build_pacc_dag()) == 9

    def test_written_order_peak_helper(self):
        assert written_order_peak(build_padd_dag()) == 11

    def test_order_permutation_checked(self):
        dag = build_pacc_dag()
        with pytest.raises(ValueError):
            peak_live(dag, order=["u2", "u2"])

    def test_order_dependency_checked(self):
        dag = build_pacc_dag()
        names = [op.name for op in dag.ops]
        bad = list(reversed(names))
        with pytest.raises(ValueError):
            peak_live(dag, order=bad)


class TestOptimalSchedule:
    """Paper §4.2.1: reordering reduces 11 -> 9 (PADD) and 9 -> 7 (PACC)."""

    def test_padd_optimal_is_9(self):
        assert find_optimal_schedule(build_padd_dag()).peak == 9

    def test_pacc_optimal_is_7(self):
        assert find_optimal_schedule(build_pacc_dag()).peak == 7

    def test_optimal_order_is_topological(self):
        dag = build_pacc_dag()
        result = find_optimal_schedule(dag)
        seen = set()
        deps = dag.dependencies()
        for name in result.order:
            assert deps[name] <= seen
            seen.add(name)

    def test_optimal_order_peak_consistent(self):
        """peak_live on the found order must agree with the DP's answer."""
        for build in (build_padd_dag, build_pacc_dag):
            dag = build()
            result = find_optimal_schedule(dag)
            assert peak_live(dag, order=list(result.order)) == result.peak

    def test_search_space_is_tractable(self):
        """The paper bounds the search at 12!; the DP visits far fewer states."""
        result = find_optimal_schedule(build_padd_dag())
        assert result.states_visited < 10_000

    def test_cycle_detection(self):
        dag = OpDag(
            "cyclic",
            [
                Op("a", "X", ("Y",), "sub"),
                Op("b", "Y", ("X",), "sub"),
            ],
        )
        with pytest.raises(ValueError):
            find_optimal_schedule(dag)


class TestSpilling:
    """Paper §4.2.2: PACC runs in 5 registers with <= 3 big ints in shm."""

    def test_pacc_budget_5_feasible(self):
        dag = build_pacc_dag()
        order = list(find_optimal_schedule(dag).order)
        plan = plan_spills(dag, order, register_budget=5)
        assert plan.feasible
        assert plan.peak_registers <= 5

    def test_pacc_shm_residency_within_paper_bound(self):
        dag = build_pacc_dag()
        order = list(find_optimal_schedule(dag).order)
        plan = plan_spills(dag, order, register_budget=5)
        assert plan.peak_shm_bigints <= 3  # paper: "maximum of 3"

    def test_pacc_transfer_count_recorded(self):
        dag = build_pacc_dag()
        order = list(find_optimal_schedule(dag).order)
        plan = plan_spills(dag, order, register_budget=5)
        spilled_vars = {v for (_, kind, v) in plan.moves if kind == "spill"}
        # the greedy Belady plan on our particular schedule moves 5 values;
        # the provable optimum is 4 (see TestOptimalSpilling)
        assert len(spilled_vars) == 5
        assert plan.transfers == 10

    def test_paper_claim_four_transferred_big_integers(self):
        """Paper §4.2.2: PACC in 5 registers costs 'transferring 4 big
        integers'.  The joint schedule+spill DP proves 4 is both achievable
        and minimal: 8 moves = 4 values stored and reloaded once each."""
        from repro.kernels.spill import schedule_and_spill

        transfers, _ = schedule_and_spill(build_pacc_dag(), register_budget=5)
        assert transfers == 8  # 4 spills + 4 reloads

    def test_optimal_spill_given_fixed_schedule(self):
        from repro.kernels.spill import plan_spills_optimal

        dag = build_pacc_dag()
        order = list(find_optimal_schedule(dag).order)
        optimal = plan_spills_optimal(dag, order, register_budget=6)
        greedy = plan_spills(dag, order, register_budget=6)
        assert optimal.transfers == 4
        assert optimal.transfers <= greedy.transfers

    def test_optimal_spill_infeasible_budget(self):
        from repro.kernels.spill import plan_spills_optimal

        dag = build_pacc_dag()
        order = list(find_optimal_schedule(dag).order)
        with pytest.raises(ValueError):
            plan_spills_optimal(dag, order, register_budget=2)

    def test_moves_balanced(self):
        """Every spill of a value that is later needed has a reload."""
        dag = build_pacc_dag()
        order = list(find_optimal_schedule(dag).order)
        plan = plan_spills(dag, order, register_budget=5)
        spills = sum(1 for (_, kind, _) in plan.moves if kind == "spill")
        reloads = sum(1 for (_, kind, _) in plan.moves if kind == "reload")
        assert spills == reloads

    def test_no_budget_no_moves(self):
        dag = build_pacc_dag()
        order = list(find_optimal_schedule(dag).order)
        plan = plan_spills(dag, order, register_budget=9)
        assert plan.transfers == 0

    def test_infeasible_budget_rejected(self):
        dag = build_pacc_dag()
        order = list(find_optimal_schedule(dag).order)
        with pytest.raises(ValueError):
            plan_spills(dag, order, register_budget=2)

    def test_padd_floor_is_entry_liveness(self):
        """PADD enters with 8 live partial-result coordinates; a budget of 8
        is feasible, below that the entry state alone overflows."""
        dag = build_padd_dag()
        order = list(find_optimal_schedule(dag).order)
        plan = plan_spills(dag, order, register_budget=8)
        assert plan.peak_registers == 8
