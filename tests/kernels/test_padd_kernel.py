"""Kernel descriptor: register, arithmetic and TC figures per optimisation."""

import pytest

from repro.curves.params import curve_by_name
from repro.kernels.padd_kernel import (
    KernelDescriptor,
    KernelOptimisations,
)

BLS377 = curve_by_name("BLS12-377")
MNT = curve_by_name("MNT4753")
BN254 = curve_by_name("BN254")


class TestOptimisationStages:
    def test_six_cumulative_stages(self):
        stages = KernelOptimisations.cumulative_stages()
        assert [name for name, _ in stages] == [
            "baseline",
            "PADD->PACC",
            "Optimal Exec Order",
            "Explicit Spill",
            "MontMul with TC",
            "On-the-fly Compact",
        ]

    def test_stages_are_cumulative(self):
        stages = [opts for _, opts in KernelOptimisations.cumulative_stages()]
        enabled_counts = [
            sum([o.use_pacc, o.optimal_order, o.explicit_spill, o.tc_montmul, o.tc_compaction])
            for o in stages
        ]
        assert enabled_counts == [0, 1, 2, 3, 4, 5]

    def test_all_and_none(self):
        assert KernelOptimisations.all().tc_compaction
        assert not KernelOptimisations.none().use_pacc


class TestRegisterFigures:
    """The paper's concrete register counts."""

    def test_baseline_padd_bls377_is_132_registers(self):
        desc = KernelDescriptor(BLS377, KernelOptimisations.none())
        assert desc.registers_per_thread("padd") == 132  # 11 x 12

    def test_baseline_padd_mnt_is_264_registers(self):
        desc = KernelDescriptor(MNT, KernelOptimisations.none())
        assert desc.registers_per_thread("padd") == 264  # 11 x 24

    def test_baseline_pacc_mnt_is_216_registers(self):
        """Intro: PACC 'demands 9 concurrent live big integers, using up to
        216 registers per thread'."""
        desc = KernelDescriptor(MNT, KernelOptimisations(use_pacc=True))
        assert desc.registers_per_thread("pacc") == 216  # 9 x 24

    def test_optimal_order_reduces_by_two(self):
        base = KernelDescriptor(BLS377, KernelOptimisations(use_pacc=True))
        opt = KernelDescriptor(BLS377, KernelOptimisations(use_pacc=True, optimal_order=True))
        assert base.live_bigints("pacc") - opt.live_bigints("pacc") == 2

    def test_spill_reaches_5_live_for_pacc(self):
        desc = KernelDescriptor(
            BLS377, KernelOptimisations(use_pacc=True, optimal_order=True, explicit_spill=True)
        )
        assert desc.live_bigints("pacc") == 5
        assert desc.registers_per_thread("pacc") == 60  # below the 64 target

    def test_padd_spill_floors_at_entry_liveness(self):
        desc = KernelDescriptor(
            BLS377, KernelOptimisations(use_pacc=True, optimal_order=True, explicit_spill=True)
        )
        assert desc.live_bigints("padd") == 8

    def test_compaction_penalises_wide_curves_only(self):
        opts = KernelOptimisations.all()
        wide = KernelDescriptor(MNT, opts)
        narrow = KernelDescriptor(BN254, opts)
        assert wide.live_bigints("pacc") == 7  # 5 + zero-padding pressure
        assert narrow.live_bigints("pacc") == 5

    def test_unknown_op_rejected(self):
        desc = KernelDescriptor(BN254, KernelOptimisations.none())
        with pytest.raises(ValueError):
            desc.live_bigints("pmul")
        with pytest.raises(ValueError):
            desc.modmuls("pmul")


class TestArithmeticFigures:
    def test_pacc_saves_4_modmuls(self):
        """Paper: dedicated PACC reduces 14 modular multiplications to 10."""
        base = KernelDescriptor(BN254, KernelOptimisations.none())
        pacc = KernelDescriptor(BN254, KernelOptimisations(use_pacc=True))
        assert base.modmuls("pacc") == 14
        assert pacc.modmuls("pacc") == 10
        assert pacc.modmuls("padd") == 14

    def test_word_ops_match_sos(self):
        desc = KernelDescriptor(BN254, KernelOptimisations.none())
        muls, adds = desc.word_ops_per_modmul()
        n = BN254.num_limbs
        assert muls == 2 * n * n + n
        assert adds > 0

    def test_mnt_word_cost_ratio(self):
        """MNT4753's modmul costs ~8.6x BLS12-377's (24 vs 12 limbs)."""
        mnt_muls, _ = KernelDescriptor(MNT, KernelOptimisations.none()).word_ops_per_modmul()
        bls_muls, _ = KernelDescriptor(BLS377, KernelOptimisations.none()).word_ops_per_modmul()
        assert mnt_muls / bls_muls == pytest.approx((2 * 576 + 24) / (2 * 144 + 12))


class TestTensorCoreFigures:
    def test_offload_share_zero_without_tc(self):
        desc = KernelDescriptor(BN254, KernelOptimisations.none())
        assert desc.tc_offload_share == 0.0
        assert desc.tc_traffic_factor == 0.0

    def test_offload_share_approx_half(self):
        desc = KernelDescriptor(BN254, KernelOptimisations(tc_montmul=True))
        n = BN254.num_limbs
        assert desc.tc_offload_share == pytest.approx(n * n / (2 * n * n + n))

    def test_traffic_factor(self):
        naive = KernelDescriptor(BN254, KernelOptimisations(tc_montmul=True))
        compacted = KernelDescriptor(
            BN254, KernelOptimisations(tc_montmul=True, tc_compaction=True)
        )
        assert naive.tc_traffic_factor == 4.0
        assert compacted.tc_traffic_factor == 1.0


class TestSpillPlans:
    def test_no_plan_without_spill(self):
        desc = KernelDescriptor(BN254, KernelOptimisations.none())
        assert desc.spill_plan("pacc") is None

    def test_pacc_plan_feasible(self):
        desc = KernelDescriptor(BN254, KernelOptimisations(True, True, True))
        plan = desc.spill_plan("pacc")
        assert plan is not None
        assert plan.feasible
        assert plan.peak_shm_bigints <= 3

    def test_describe_is_readable(self):
        info = KernelDescriptor(BN254, KernelOptimisations.all()).describe()
        assert info["curve"] == "BN254"
        assert info["modmuls_pacc"] == 10
