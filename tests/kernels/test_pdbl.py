"""PDBL operation DAG: the paper's optimisations 'also apply to PDBL'."""

import pytest

from repro.curves.params import curve_by_name
from repro.curves.point import PDBL_MODMULS
from repro.kernels.dag import build_pdbl_dag, entry_live, peak_live
from repro.kernels.padd_kernel import KernelDescriptor, KernelOptimisations
from repro.kernels.scheduler import find_optimal_schedule
from repro.kernels.spill import plan_spills


class TestPdblDag:
    def test_mul_count_matches_cost_constant(self):
        assert build_pdbl_dag().num_muls == PDBL_MODMULS

    def test_a_term_variant_has_two_more_muls(self):
        assert build_pdbl_dag(a_is_zero=False).num_muls == PDBL_MODMULS + 2

    def test_entry_liveness_is_accumulator(self):
        assert entry_live(build_pdbl_dag()) == 4

    def test_written_peak(self):
        assert peak_live(build_pdbl_dag()) == 9

    def test_optimal_peak(self):
        """Rescheduling buys PDBL the same 2-big-integer reduction."""
        assert find_optimal_schedule(build_pdbl_dag()).peak == 7

    def test_a_variant_peaks(self):
        dag = build_pdbl_dag(a_is_zero=False)
        assert peak_live(dag) == 10
        assert find_optimal_schedule(dag).peak == 8

    def test_spillable_to_five(self):
        dag = build_pdbl_dag()
        order = list(find_optimal_schedule(dag).order)
        plan = plan_spills(dag, order, register_budget=5)
        assert plan.feasible
        assert plan.peak_shm_bigints <= 3


class TestPdblKernelFigures:
    def test_descriptor_exposes_pdbl(self):
        bls = curve_by_name("BLS12-377")
        base = KernelDescriptor(bls, KernelOptimisations.none())
        tuned = KernelDescriptor(bls, KernelOptimisations.all())
        assert base.registers_per_thread("pdbl") == 9 * 12
        assert tuned.live_bigints("pdbl") == 5  # 7 scheduled - 2 spilled

    def test_pdbl_cheaper_than_pacc(self):
        bn = curve_by_name("BN254")
        desc = KernelDescriptor(bn, KernelOptimisations.all())
        assert desc.modmuls("pdbl") < desc.modmuls("pacc")
