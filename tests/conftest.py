"""Shared fixtures: real curves plus a small toy curve for exhaustive tests."""

from __future__ import annotations

import pytest

from repro.curves.params import CurveParams, curve_by_name
from repro.curves.toy import toy_curve

TOY_CURVE = toy_curve()


@pytest.fixture(scope="session")
def toy_curve_fixture() -> CurveParams:
    return TOY_CURVE


@pytest.fixture(scope="session")
def bn254() -> CurveParams:
    return curve_by_name("BN254")


@pytest.fixture(scope="session", params=["BN254", "BLS12-377", "BLS12-381", "MNT4753"])
def any_curve(request) -> CurveParams:
    return curve_by_name(request.param)
