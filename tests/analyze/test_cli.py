"""The analyzer CLI, the baseline machinery, and the report rendering."""

import json
import textwrap

import pytest

from repro.analyze import (
    Finding,
    Suppression,
    analyze_paths,
    apply_baseline,
    load_baseline,
    rule_by_name,
    rule_names,
    rules_in_family,
)
from repro.analyze.__main__ import main
from repro.analyze.finding import AnalysisReport
from repro.analyze.registry import FAMILIES

DIRTY = textwrap.dedent(
    """
    import random

    def jitter(base_ms, payload_bytes):
        noise = random.random()
        return base_ms + payload_bytes + noise
    """
)


@pytest.fixture
def dirty_file(tmp_path):
    f = tmp_path / "dirty.py"
    f.write_text(DIRTY)
    return f


class TestRegistry:
    def test_every_rule_has_a_family_and_description(self):
        for name in rule_names():
            rule = rule_by_name(name)
            assert rule.family in FAMILIES
            assert rule.description

    def test_families_partition_the_rules(self):
        total = sum(len(rules_in_family(fam)) for fam in FAMILIES)
        assert total == len(rule_names())

    def test_unknown_rule_rejected(self):
        with pytest.raises(KeyError):
            rule_by_name("no-such-rule")


class TestBaseline:
    def test_packaged_baseline_is_empty(self):
        assert load_baseline() == ()

    def test_unknown_rule_in_baseline_rejected(self, tmp_path):
        bad = tmp_path / "b.json"
        bad.write_text(
            json.dumps({"suppressions": [{"rule": "bogus", "path": "x.py"}]})
        )
        with pytest.raises(ValueError, match="unknown rule"):
            load_baseline(bad)

    def test_suffix_match_splits_active_from_suppressed(self):
        findings = [
            Finding("det-wall-clock", "src/repro/a.py", 3, "clock"),
            Finding("det-wall-clock", "src/repro/b.py", 7, "clock"),
        ]
        active, suppressed = apply_baseline(
            findings, (Suppression("det-wall-clock", "repro/a.py"),)
        )
        assert [f.path for f in active] == ["src/repro/b.py"]
        assert [f.path for f in suppressed] == ["src/repro/a.py"]

    def test_line_and_contains_narrow_the_match(self):
        finding = Finding("det-wall-clock", "a.py", 3, "time.time() read")
        assert Suppression("det-wall-clock", "a.py", line=3).matches(finding)
        assert not Suppression("det-wall-clock", "a.py", line=4).matches(finding)
        assert Suppression(
            "det-wall-clock", "a.py", contains="time.time"
        ).matches(finding)
        assert not Suppression(
            "det-wall-clock", "a.py", contains="monotonic"
        ).matches(finding)


class TestAnalyzePaths:
    def test_repro_package_is_clean(self):
        report = analyze_paths(families=("determinism", "units"))
        assert report.ok
        assert report.files > 100
        assert report.suppressed == []

    def test_dirty_file_found(self, dirty_file):
        report = analyze_paths(
            paths=[dirty_file], families=("determinism", "units")
        )
        assert not report.ok
        assert report.counts_by_rule() == {
            "det-unseeded-rng": 1,
            "unit-mixed-arith": 1,
        }

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown family"):
            analyze_paths(families=("vibes",))

    def test_baseline_suppresses_and_keeps_ok(self, dirty_file, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "suppressions": [
                        {"rule": "det-unseeded-rng", "path": "dirty.py"},
                        {"rule": "unit-mixed-arith", "path": "dirty.py"},
                    ]
                }
            )
        )
        report = analyze_paths(
            paths=[dirty_file],
            families=("determinism", "units"),
            baseline=baseline,
        )
        assert report.ok
        assert len(report.suppressed) == 2


class TestReportRendering:
    def test_clean_render_says_clean(self):
        report = AnalysisReport(files=3)
        report.add_check("interval: all good")
        text = report.render()
        assert "CLEAN: 3 files" in text
        assert "ok: interval: all good" in text

    def test_dirty_render_lists_findings_and_suppressed_count(self):
        report = AnalysisReport(
            findings=[Finding("det-wall-clock", "a.py", 3, "clock read")],
            suppressed=[Finding("det-wall-clock", "b.py", 9, "accepted")],
            files=2,
        )
        text = report.render()
        assert "DIRTY: 2 files" in text
        assert "a.py:3: [det-wall-clock]" in text
        assert "(1 suppressed)" in text
        # suppressed findings are counted, not listed as failures
        assert "b.py:9" not in text

    def test_json_roundtrip_is_sorted_and_complete(self):
        report = AnalysisReport(
            findings=[
                Finding("det-wall-clock", "b.py", 1, "zz"),
                Finding("det-wall-clock", "a.py", 1, "aa"),
            ],
            files=2,
        )
        data = json.loads(report.to_json())
        assert data["ok"] is False
        assert [f["path"] for f in data["findings"]] == ["a.py", "b.py"]
        assert data["counts_by_rule"] == {"det-wall-clock": 2}


class TestCli:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def f(a_ms, b_ms):\n    return a_ms + b_ms\n")
        code = main([str(clean), "--families", "determinism,units"])
        assert code == 0
        assert "CLEAN" in capsys.readouterr().out

    def test_dirty_run_exits_nonzero(self, dirty_file, capsys):
        code = main([str(dirty_file), "--families", "determinism,units"])
        assert code == 1
        out = capsys.readouterr().out
        assert "DIRTY" in out
        assert "det-unseeded-rng" in out

    def test_json_output_file(self, dirty_file, tmp_path, capsys):
        out_file = tmp_path / "results" / "report.json"
        code = main(
            [
                str(dirty_file),
                "--families",
                "determinism,units",
                "--json",
                "-o",
                str(out_file),
            ]
        )
        assert code == 1
        data = json.loads(out_file.read_text())
        assert data["ok"] is False
        # the status line still lands on stdout for the make target
        assert "DIRTY" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for family in FAMILIES:
            assert f"{family}:" in out
        assert "det-unseeded-rng" in out
