"""Determinism linter: each rule fires on its target and nothing else."""

import textwrap

from repro.analyze import analyze_source


def lint(source):
    return analyze_source(
        textwrap.dedent(source), path="<test>", families=("determinism",)
    )


def rules(source):
    return [f.rule for f in lint(source)]


class TestUnseededRng:
    def test_module_level_random_flagged(self):
        assert rules("import random\nx = random.random()\n") == [
            "det-unseeded-rng"
        ]

    def test_seedless_random_instance_flagged(self):
        assert rules("import random\nrng = random.Random()\n") == [
            "det-unseeded-rng"
        ]

    def test_seeded_random_instance_clean(self):
        assert rules("import random\nrng = random.Random(42)\n") == []

    def test_seedless_default_rng_flagged(self):
        src = "import numpy as np\ng = np.random.default_rng()\n"
        assert rules(src) == ["det-unseeded-rng"]

    def test_seeded_default_rng_clean(self):
        assert rules("import numpy as np\ng = np.random.default_rng(7)\n") == []

    def test_numpy_global_generator_flagged(self):
        assert rules("import numpy as np\nx = np.random.randn(3)\n") == [
            "det-unseeded-rng"
        ]

    def test_method_on_seeded_instance_clean(self):
        src = """
        import random

        rng = random.Random(1)
        x = rng.random()
        """
        assert rules(src) == []


class TestWallClock:
    def test_time_time_flagged(self):
        assert rules("import time\nt = time.time()\n") == ["det-wall-clock"]

    def test_perf_counter_flagged(self):
        assert rules("import time\nt = time.perf_counter()\n") == [
            "det-wall-clock"
        ]

    def test_datetime_now_flagged(self):
        src = "import datetime\nt = datetime.datetime.now()\n"
        assert rules(src) == ["det-wall-clock"]

    def test_engine_clock_attribute_clean(self):
        # an attribute named .time on a non-clock object is not a call
        assert rules("t = engine.clock_ms\n") == []


class TestSetIteration:
    def test_for_over_set_flagged(self):
        src = """
        names = {"a", "b"}
        for n in names:
            print(n)
        """
        assert rules(src) == ["det-set-iteration"]

    def test_list_comp_over_set_flagged(self):
        src = """
        seen = set(items)
        out = [x for x in seen]
        """
        assert rules(src) == ["det-set-iteration"]

    def test_sorted_wrap_clean(self):
        src = """
        seen = set(items)
        for x in sorted(seen):
            print(x)
        """
        assert rules(src) == []

    def test_order_insensitive_reducer_clean(self):
        src = """
        seen = set(items)
        total = sum(1 for x in seen)
        biggest = max(x for x in seen)
        """
        assert rules(src) == []

    def test_dict_iteration_clean(self):
        # dicts are insertion-ordered; dict.fromkeys is the convention fix
        src = """
        seen = dict.fromkeys(items)
        out = [x for x in seen]
        """
        assert rules(src) == []

    def test_class_field_does_not_leak_into_functions(self):
        # a frozenset dataclass field must not make a same-named function
        # parameter look like a set (per-scope inference)
        src = """
        class Dag:
            live_at_end: frozenset = frozenset()

        def count(live_at_end):
            return [v for v in live_at_end]
        """
        assert rules(src) == []

    def test_function_scope_isolated_from_module(self):
        src = """
        tags = {"x"}

        def render(tags):
            return [t for t in tags]
        """
        # the module-level set is never iterated; the parameter shadows it
        assert rules(src) == []

    def test_set_union_chain_tracked(self):
        src = """
        a = {1}
        b = a | {2}
        out = [x for x in b]
        """
        assert rules(src) == ["det-set-iteration"]


class TestMutableDefault:
    def test_list_literal_default_flagged(self):
        assert rules("def f(x=[]):\n    return x\n") == [
            "det-mutable-default"
        ]

    def test_set_call_default_flagged(self):
        assert rules("def f(x=set()):\n    return x\n") == [
            "det-mutable-default"
        ]

    def test_none_default_clean(self):
        assert rules("def f(x=None):\n    return x or []\n") == []

    def test_finding_names_the_function(self):
        (finding,) = lint("def cache(acc={}):\n    return acc\n")
        assert "cache" in finding.message
        assert finding.line == 1


class TestBareNameRng:
    """From-import spellings are caught too (the batch-module idiom)."""

    def test_bare_default_rng_seedless_flagged(self):
        src = "from numpy.random import default_rng\ng = default_rng()\n"
        assert rules(src) == ["det-unseeded-rng"]

    def test_bare_default_rng_seeded_clean(self):
        src = "from numpy.random import default_rng\ng = default_rng(7)\n"
        assert rules(src) == []

    def test_bare_random_seedless_flagged(self):
        src = "from random import Random\nrng = Random()\n"
        assert rules(src) == ["det-unseeded-rng"]

    def test_aliased_import_tracked(self):
        src = "from numpy.random import default_rng as rng\ng = rng()\n"
        assert rules(src) == ["det-unseeded-rng"]

    def test_unrelated_bare_name_clean(self):
        # a user-defined Random class is not the stdlib one
        src = """
        class Random:
            pass

        rng = Random()
        """
        assert rules(src) == []


class TestUnstableArgsort:
    def test_default_kind_flagged(self):
        src = "import numpy as np\norder = np.argsort(keys)\n"
        assert rules(src) == ["det-unstable-argsort"]

    def test_method_call_flagged(self):
        assert rules("order = keys.argsort()\n") == ["det-unstable-argsort"]

    def test_quicksort_kind_flagged(self):
        src = "import numpy as np\norder = np.argsort(keys, kind='quicksort')\n"
        assert rules(src) == ["det-unstable-argsort"]

    def test_stable_kind_clean(self):
        src = "import numpy as np\norder = np.argsort(keys, kind='stable')\n"
        assert rules(src) == []

    def test_mergesort_kind_clean(self):
        assert rules("order = keys.argsort(kind='mergesort')\n") == []
