"""Interval abstract interpretation: Montgomery bounds and peak re-derivation."""

from types import SimpleNamespace

import pytest

from repro.analyze.intervals import (
    PUBLISHED_PEAKS,
    Interval,
    analyze_kernels,
    derive_register_peaks,
    field_interval,
    interpret_dag,
    montmul_bounds,
    tc_accumulator_findings,
)
from repro.curves.params import curve_by_name, list_curves
from repro.fields.limbs import WORD_BITS
from repro.kernels.dag import build_pacc_dag, build_padd_dag


class TestInterval:
    def test_arithmetic_corners(self):
        a = Interval(1, 3)
        b = Interval(-2, 4)
        assert a + b == Interval(-1, 7)
        assert a - b == Interval(-3, 5)
        assert a * b == Interval(-6, 12)

    def test_join(self):
        assert Interval(0, 2).join(Interval(5, 9)) == Interval(0, 9)

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(3, 1)

    def test_bits(self):
        assert Interval(0, 255).bits() == 8
        assert Interval(-256, 0).bits() == 9


class TestMontgomeryBounds:
    def test_one_conditional_subtraction_suffices(self):
        # the central claim: for every registered curve p < R, so
        # t = c + m*n < 2pR and u = t/R < 2p
        for curve in list_curves():
            r = 1 << (WORD_BITS * curve.num_limbs)
            x = field_interval(curve.p)
            bounds = montmul_bounds(x, x, curve.p, r)
            assert bounds.sum_t.hi < 2 * curve.p * r
            assert bounds.pre_subtract.hi < 2 * curve.p

    def test_all_registered_curves_discharge(self):
        for curve in list_curves():
            for dag in (build_padd_dag(), build_pacc_dag()):
                assert interpret_dag(dag, curve) == []

    def test_truncated_limb_allocation_refused(self):
        # p wider than R: the single conditional subtraction cannot hold
        real = curve_by_name("BLS12-381")
        fake = SimpleNamespace(name="BLS12-381/8", p=real.p, num_limbs=8)
        findings = interpret_dag(build_padd_dag(), fake, label="<t>")
        assert findings
        assert {f.rule for f in findings} == {"interval-overflow"}
        # both mul and sub intermediates blow the 8-limb claim
        assert any("reduction sum" in f.message for f in findings)
        assert any("modular-sub" in f.message for f in findings)

    def test_findings_carry_op_index_as_line(self):
        real = curve_by_name("BLS12-381")
        fake = SimpleNamespace(name="x", p=real.p, num_limbs=8)
        findings = interpret_dag(build_padd_dag(), fake)
        assert min(f.line for f in findings) == 1
        assert max(f.line for f in findings) <= len(build_padd_dag().ops)


class TestTcAccumulator:
    def test_registered_curves_fit_uint32(self):
        for curve in list_curves():
            assert tc_accumulator_findings(curve) == []

    def test_oversized_operand_overflows(self):
        # 2^32 / (255*255) ~ 66052 bytes; push past it and the u32 claim dies
        fake = SimpleNamespace(name="huge", num_limbs=17000)
        findings = tc_accumulator_findings(fake)
        assert [f.rule for f in findings] == ["interval-tc-accumulator"]


class TestRegisterPeaks:
    def test_rederivation_matches_paper(self):
        derived, findings = derive_register_peaks()
        assert findings == []
        assert derived == PUBLISHED_PEAKS
        assert derived["PADD"] == (11, 9)
        assert derived["PACC"] == (9, 7)

    def test_full_family_is_clean(self):
        findings, checks = analyze_kernels()
        assert findings == []
        # per-curve discharges for both DAGs plus TC plus the two peaks
        assert len(checks) == len(list_curves()) * 3 + 2
