"""Unit-consistency dataflow: the lattice, the rules, the idioms."""

import textwrap

from repro.analyze import analyze_source
from repro.analyze.units import unit_of_name


def check(source):
    return analyze_source(
        textwrap.dedent(source), path="<test>", families=("units",)
    )


def rules(source):
    return [f.rule for f in check(source)]


class TestSuffixes:
    def test_known_suffixes(self):
        assert unit_of_name("duration_ms") == "ms"
        assert unit_of_name("size_bytes") == "bytes"
        assert unit_of_name("window_count") == "count"
        assert unit_of_name("delay_secs") == "sec"

    def test_longest_suffix_wins(self):
        assert unit_of_name("elapsed_seconds") == "sec"

    def test_bare_suffix_is_not_a_unit(self):
        # a name that IS the suffix carries no quantity to mislabel
        assert unit_of_name("_ms") is None
        assert unit_of_name("plain") is None


class TestMixedArith:
    def test_ms_plus_bytes_flagged(self):
        src = """
        def f(latency_ms, payload_bytes):
            return latency_ms + payload_bytes
        """
        assert rules(src) == ["unit-mixed-arith"]

    def test_same_unit_clean(self):
        src = """
        def f(a_ms, b_ms):
            return a_ms + b_ms
        """
        assert rules(src) == []

    def test_literal_offset_keeps_unit(self):
        src = """
        def f(a_ms):
            return a_ms + 5.0
        """
        assert rules(src) == []

    def test_conversion_by_literal_goes_unknown(self):
        # seconds * 1e3 is the conversion idiom: no false positive after it
        src = """
        def f(delay_sec, budget_ms):
            converted = delay_sec * 1e3
            return converted + budget_ms
        """
        assert rules(src) == []

    def test_unit_flows_through_assignment(self):
        src = """
        def f(a_ms, b_bytes):
            x = a_ms
            return x + b_bytes
        """
        assert rules(src) == ["unit-mixed-arith"]

    def test_augassign_mix_flagged(self):
        src = """
        def f(total_ms, chunk_bytes):
            total_ms += chunk_bytes
            return total_ms
        """
        assert rules(src) == ["unit-mixed-arith"]


class TestMixedCompare:
    def test_ms_vs_count_flagged(self):
        src = """
        def f(deadline_ms, retry_count):
            if deadline_ms < retry_count:
                return True
            return False
        """
        assert rules(src) == ["unit-mixed-compare"]

    def test_same_unit_compare_clean(self):
        src = """
        def f(a_ms, b_ms):
            return a_ms < b_ms
        """
        assert rules(src) == []


class TestMixedAssign:
    def test_bytes_name_bound_to_ms_flagged(self):
        src = """
        def f(elapsed_ms):
            total_bytes = elapsed_ms
            return total_bytes
        """
        assert rules(src) == ["unit-mixed-assign"]

    def test_unknown_value_clean(self):
        src = """
        def f(raw):
            total_bytes = raw
            return total_bytes
        """
        assert rules(src) == []


class TestMixedCall:
    def test_positional_arg_unit_mismatch_flagged(self):
        src = """
        def wait(delay_ms):
            return delay_ms

        def g(payload_bytes):
            return wait(payload_bytes)
        """
        assert rules(src) == ["unit-mixed-call"]

    def test_keyword_arg_unit_mismatch_flagged(self):
        src = """
        def wait(delay_ms=0.0):
            return delay_ms

        def g(payload_bytes):
            return wait(delay_ms=payload_bytes)
        """
        assert rules(src) == ["unit-mixed-call"]

    def test_matching_units_clean(self):
        src = """
        def wait(delay_ms):
            return delay_ms

        def g(budget_ms):
            return wait(budget_ms)
        """
        assert rules(src) == []


class TestReturnUnit:
    def test_ms_function_returning_bytes_flagged(self):
        src = """
        def latency_ms(payload_bytes):
            return payload_bytes
        """
        assert rules(src) == ["unit-return"]

    def test_transparent_builtin_keeps_unit(self):
        src = """
        def worst_ms(a_ms, b_ms):
            return max(a_ms, b_ms)
        """
        assert rules(src) == []

    def test_rate_product_is_unknown(self):
        # bytes / ms is a rate — neither unit, so returning it is fine
        src = """
        def throughput(size_bytes, elapsed_ms):
            return size_bytes / elapsed_ms
        """
        assert rules(src) == []
