"""Pre-flight task-graph model checking: structure, liveness, FIFO, cascades."""

import pytest

from repro.analyze.modelcheck import PlanError, check_plan
from repro.engine.resources import GPU_COMPUTE, HOST_CPU, Resource
from repro.engine.timeline import Task, TimelineBuilder, simulate

GPU0 = Resource("gpu0", GPU_COMPUTE, 0)
GPU1 = Resource("gpu1", GPU_COMPUTE, 1)
CPU = Resource("cpu", HOST_CPU)


def findings_of(exc_info):
    return {(f.rule) for f in exc_info.value.findings}


class TestStructure:
    def test_clean_plan_passes(self):
        tasks = [
            Task("a", GPU0, 1.0),
            Task("b", CPU, 1.0, deps=("a",)),
        ]
        result = check_plan(tasks, label="<t>")
        assert result.ok
        assert result.tasks == 2
        assert result.warnings == []

    def test_duplicate_name_rejected(self):
        tasks = [Task("a", GPU0, 1.0), Task("a", GPU1, 1.0)]
        with pytest.raises(PlanError) as exc:
            check_plan(tasks)
        assert findings_of(exc) == {"plan-duplicate-task"}

    def test_unknown_dep_rejected(self):
        tasks = [Task("a", GPU0, 1.0, deps=("ghost",))]
        with pytest.raises(PlanError) as exc:
            check_plan(tasks)
        assert findings_of(exc) == {"plan-unknown-dep"}
        assert "ghost" in str(exc.value)


class TestLiveness:
    def test_cycle_rejected_with_concrete_cycle(self):
        tasks = [
            Task("a", GPU0, 1.0, deps=("c",)),
            Task("b", GPU0, 1.0, deps=("a",)),
            Task("c", GPU0, 1.0, deps=("b",)),
        ]
        with pytest.raises(PlanError) as exc:
            check_plan(tasks)
        assert "plan-cycle" in findings_of(exc)
        (cycle_finding,) = [
            f for f in exc.value.findings if f.rule == "plan-cycle"
        ]
        assert "->" in cycle_finding.message

    def test_task_behind_cycle_reported_unreachable(self):
        tasks = [
            Task("a", GPU0, 1.0, deps=("b",)),
            Task("b", GPU0, 1.0, deps=("a",)),
            Task("victim", CPU, 1.0, deps=("a",)),
        ]
        with pytest.raises(PlanError) as exc:
            check_plan(tasks)
        assert findings_of(exc) == {"plan-cycle", "plan-unreachable"}

    def test_catches_what_simulate_only_finds_late(self):
        # the acceptance fixture: simulate schedules the reachable prefix
        # and only then errors; check_plan refuses before any scheduling
        tasks = [
            Task("ok", GPU1, 1.0),
            Task("a", GPU0, 1.0, deps=("b",)),
            Task("b", GPU0, 1.0, deps=("a",)),
        ]
        with pytest.raises(PlanError):
            check_plan(tasks)
        with pytest.raises(ValueError, match="[Cc]ycle|unschedulable"):
            simulate(tuple(tasks))


class TestFifoDeadlock:
    def cross_stream_tasks(self):
        # each stream's first submission waits on the other's second:
        # acyclic deps, deadlocked in-order streams
        return [
            Task("a0", GPU0, 1.0, deps=("b1",)),
            Task("a1", GPU0, 1.0),
            Task("b0", GPU1, 1.0, deps=("a1",)),
            Task("b1", GPU1, 1.0),
        ]

    def test_simulate_hides_the_deadlock(self):
        # the readiness-FIFO engine reorders within a resource and
        # resolves the plan — exactly why the static check must exist
        timeline = simulate(tuple(self.cross_stream_tasks()))
        assert timeline.total_ms > 0

    def test_check_plan_rejects_it(self):
        with pytest.raises(PlanError) as exc:
            check_plan(self.cross_stream_tasks())
        assert findings_of(exc) == {"plan-fifo-deadlock"}
        (finding,) = exc.value.findings
        assert "in-order streams" in finding.message

    def test_topological_submission_order_passes(self):
        tasks = [
            Task("a1", GPU0, 1.0),
            Task("b1", GPU1, 1.0),
            Task("b0", GPU1, 1.0, deps=("a1",)),
            Task("a0", GPU0, 1.0, deps=("b1",)),
        ]
        assert check_plan(tasks).ok


class TestRequiresAlive:
    def test_cascade_tied_to_real_hazard_is_clean(self):
        tasks = [
            Task("work", GPU0, 2.0),
            Task("xfer", CPU, 1.0, deps=("work",), requires_alive=("gpu0",)),
        ]
        result = check_plan(tasks)
        assert result.ok and result.warnings == []

    def test_own_resource_is_redundant_warning(self):
        tasks = [Task("a", GPU0, 1.0, requires_alive=("gpu0",))]
        result = check_plan(tasks)
        assert result.ok  # warnings don't fail the plan
        assert [f.rule for f in result.warnings] == [
            "plan-requires-alive-redundant"
        ]

    def test_unknown_resource_is_typo_warning(self):
        tasks = [Task("a", GPU0, 1.0, requires_alive=("gpu9",))]
        result = check_plan(tasks)
        assert [f.rule for f in result.warnings] == [
            "plan-requires-alive-unknown"
        ]

    def test_unrelated_resource_guards_nothing(self):
        tasks = [
            Task("other", GPU1, 1.0),
            Task("a", GPU0, 1.0, requires_alive=("gpu1",)),
        ]
        result = check_plan(tasks)
        assert [f.rule for f in result.warnings] == [
            "plan-requires-alive-unrelated"
        ]


class TestOrchestrationWiring:
    def test_timeline_builder_preflights(self):
        b = TimelineBuilder()
        b.add("a", GPU0, 1.0, deps=("b",))
        b.add("b", GPU0, 1.0, deps=("a",))
        with pytest.raises(PlanError):
            b.build()

    def test_batch_scheduler_emits_preflight_clean_plans(self):
        from repro.curves.params import curve_by_name
        from repro.engine.batch import BatchMsmScheduler, MsmRequest
        from repro.gpu.cluster import MultiGpuSystem

        curve = curve_by_name("BLS12-381")
        scheduler = BatchMsmScheduler(MultiGpuSystem(2), gpu_groups=2)
        requests = [MsmRequest(f"r{i}", curve, 1 << 12) for i in range(3)]
        tasks, _, _ = scheduler.emit_tasks(requests)
        assert check_plan(tasks, label="<batch>").ok
        # and schedule() itself runs the same check without complaint
        assert scheduler.schedule(requests).makespan_ms > 0
