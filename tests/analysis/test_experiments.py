"""Experiment runners: structure checks plus paper-anchored assertions.

Full-grid reproductions run in ``benchmarks/``; tests here use reduced grids
so the suite stays fast while still pinning the headline shapes.
"""

import pytest

from repro.analysis.experiments import (
    figure3,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    no_opt_config,
    table1,
    table2,
    table3,
    table4,
)
from repro.analysis.tables import format_series, format_table


class TestFormatting:
    def test_basic_table(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 10000.0]])
        assert "10,000" in text
        assert "2.50" in text

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_series(self):
        assert "speedup" in format_series("speedup", [1, 2], [1.0, 2.0])


class TestTable1:
    def test_matches_paper(self):
        rows = table1().rows
        assert rows[0] == ["BN254", 254, 254, 8]
        assert rows[3] == ["MNT4753", 753, 753, 24]

    def test_render(self):
        assert "Table 1" in table1().render()


class TestTable2:
    def test_six_baselines(self):
        result = table2()
        assert len(result.rows) == 6
        assert "BLS12-381" in result.render()


class TestFigure3:
    def test_optimal_window_shrinks(self):
        result = figure3()
        optima = [c.optimal_s for c in result.curves]
        assert optima[0] == 20  # paper: single GPU prefers s=20
        assert optima[-1] < optima[0]
        assert "Figure 3" in result.render()


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return table3(log_sizes=(24, 26), gpu_counts=(1, 8), curves=("BN254", "MNT4753"))

    def test_structure(self, result):
        assert len(result.rows) == 4
        assert all(len(r.cells) == 2 for r in result.rows)

    def test_distmsm_wins_multi_gpu(self, result):
        for row in result.rows:
            multi = row.cells[-1]
            assert multi.speedup > 1.0

    def test_mnt_speedups_largest(self, result):
        mnt = [r for r in result.rows if r.curve == "MNT4753"]
        bn = [r for r in result.rows if r.curve == "BN254"]
        assert min(c.speedup for r in mnt for c in r.cells) > max(
            c.speedup for r in bn for c in r.cells
        )

    def test_render(self, result):
        text = result.render()
        assert "2^24" in text
        assert "average multi-GPU speedup" in text


class TestFigure8:
    @pytest.fixture(scope="class")
    def result(self):
        return figure8(gpu_counts=(1, 8, 32), log_sizes=(22, 26))

    def test_distmsm_scales_best_at_32(self, result):
        by_name = {s.method: s for s in result.series}
        dist_32 = by_name["DistMSM"].speedups[-1]
        for name, series in by_name.items():
            if name != "DistMSM":
                assert series.speedups[-1] <= dist_32 * 1.05

    def test_yrrid_scales_worst(self, result):
        """Paper: 'Yrrid, despite its superior single-GPU performance,
        scales the least effectively'."""
        by_name = {s.method: s for s in result.series}
        others = [
            s.speedups[-1] for n, s in by_name.items() if n not in ("Yrrid",)
        ]
        assert by_name["Yrrid"].speedups[-1] <= min(others) * 1.3

    def test_baseline_speedup_bands(self, result):
        """Paper: at 8 GPUs the best baseline hits ~7.2x, DistMSM ~7.9x."""
        by_name = {s.method: s for s in result.series}
        assert by_name["DistMSM"].speedups[1] == pytest.approx(7.9, rel=0.25)

    def test_render(self, result):
        assert "8 GPUs" in result.render()


class TestFigure9:
    @pytest.fixture(scope="class")
    def result(self):
        return figure9(log_n=24)

    def test_three_gpus(self, result):
        assert [r.gpu for r in result.rows] == [
            "NVIDIA A100 80GB", "NVIDIA RTX 4090", "AMD Radeon 6900XT",
        ]

    def test_distmsm_beats_bellperson_everywhere(self, result):
        for row in result.rows:
            assert row.speedup > 5

    def test_amd_speedup_lower(self, result):
        """Paper: 16.5x on the NVIDIA GPUs but only 9.4x on the 6900XT."""
        a100, rtx, amd = result.rows
        assert amd.speedup < a100.speedup
        assert amd.speedup < rtx.speedup

    def test_rtx_beats_a100(self, result):
        """Paper: RTX4090's int throughput gives DistMSM 1.89x over A100."""
        a100, rtx, _ = result.rows
        ratio = a100.distmsm_ms / rtx.distmsm_ms
        assert 1.3 < ratio < 2.5

    def test_render(self, result):
        assert "Bellperson" in result.render()


class TestFigure10:
    @pytest.fixture(scope="class")
    def result(self):
        return figure10(log_n=24, gpu_counts=(1, 8, 16))

    def test_algo_speedup_grows_with_gpus(self, result):
        algo = [r.algo_speedup for r in result.rows]
        assert algo[-1] > algo[0]

    def test_kernel_benefit_diminishes_with_gpus(self, result):
        """Paper: PADD-optimisation gains shrink as GPU count grows under
        the single-GPU algorithm (bucket-reduce dominates)."""
        kern = [r.kernel_speedup for r in result.rows]
        assert kern[-1] < kern[0] * 1.1

    def test_observed_exceeds_calculated_at_scale(self, result):
        """The paper's synergy effect."""
        last = result.rows[-1]
        assert last.observed > last.calculated * 0.9

    def test_no_opt_config_shape(self):
        cfg = no_opt_config("BN254", 1 << 24)
        assert cfg.scatter == "naive"
        assert cfg.multi_gpu == "ndim"  # the paper's N-dim augmentation
        assert cfg.gpu_reduce == "simd"
        assert cfg.window_size is not None

    def test_render(self, result):
        assert "observed" in result.render()


class TestFigure11:
    @pytest.fixture(scope="class")
    def result(self):
        return figure11(log_n=26)

    def test_fails_above_14(self, result):
        """Paper: 's > 14 ... leads to execution failures'."""
        for row in result.rows:
            if row.window_size > 14:
                assert row.hierarchical_ms is None
            else:
                assert row.hierarchical_ms is not None

    def test_hierarchical_wins_small_windows(self, result):
        """Paper: 6.71x at s=11, 18.3x at s=9."""
        by_s = {r.window_size: r for r in result.rows}
        assert by_s[11].speedup == pytest.approx(6.71, rel=0.35)
        assert by_s[9].speedup == pytest.approx(18.3, rel=0.35)

    def test_naive_wins_large_windows(self, result):
        by_s = {r.window_size: r for r in result.rows}
        assert by_s[14].speedup < by_s[9].speedup
        assert by_s[14].speedup < 1.5

    def test_render_marks_failures(self, result):
        assert "FAIL" in result.render()


class TestFigure12:
    @pytest.fixture(scope="class")
    def result(self):
        return figure12()

    def test_stage_order(self, result):
        stages = [r.stage for r in result.rows if r.curve == "BN254"]
        assert stages == [
            "baseline", "PADD->PACC", "Optimal Exec Order",
            "Explicit Spill", "MontMul with TC", "On-the-fly Compact",
        ]

    def test_total_speedups_near_paper(self, result):
        """Paper: 1.61x for the small curves, 1.94x for MNT4753."""
        totals = result.totals()
        assert totals["MNT4753"] == pytest.approx(1.94, rel=0.10)
        small = [totals[c] for c in ("BN254", "BLS12-377", "BLS12-381")]
        assert sum(small) / 3 == pytest.approx(1.61, rel=0.10)

    def test_pacc_stage_saves_about_40_percent(self, result):
        rows = [r for r in result.rows if r.curve == "BLS12-377"]
        pacc = next(r for r in rows if r.stage == "PADD->PACC")
        assert pacc.cumulative_speedup == pytest.approx(1.45, rel=0.1)

    def test_naive_tc_slows_down(self, result):
        """Paper: -6.8% before on-the-fly compaction."""
        for curve in ("BLS12-377", "BLS12-381"):
            rows = {r.stage: r for r in result.rows if r.curve == curve}
            assert (
                rows["MontMul with TC"].cumulative_speedup
                < rows["Explicit Spill"].cumulative_speedup
            )
            assert (
                rows["On-the-fly Compact"].cumulative_speedup
                > rows["MontMul with TC"].cumulative_speedup
            )

    def test_compaction_hurts_mnt(self, result):
        """Paper: -8.2% for MNT4753 (zero-padding register pressure)."""
        rows = {r.stage: r for r in result.rows if r.curve == "MNT4753"}
        assert (
            rows["On-the-fly Compact"].cumulative_speedup
            < rows["MontMul with TC"].cumulative_speedup
        )

    def test_register_counts(self, result):
        rows = {r.stage: r for r in result.rows if r.curve == "BLS12-377"}
        assert rows["baseline"].registers == 132
        assert rows["Explicit Spill"].registers == 60


class TestTable4Bridge:
    def test_delegates_to_pipeline(self):
        result = table4()
        assert len(result.rows) == 3
