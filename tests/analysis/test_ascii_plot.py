"""ASCII plot renderer."""

import pytest

from repro.analysis.ascii_plot import ascii_plot


class TestAsciiPlot:
    def test_basic_render(self):
        out = ascii_plot({"up": [1, 2, 3, 4]}, width=20, height=5)
        assert "u" in out
        assert "legend: u = up" in out

    def test_extremes_on_correct_rows(self):
        out = ascii_plot({"série": [1.0, 9.0]}, width=10, height=4)
        lines = out.splitlines()
        assert "s" in lines[0]  # max on the top row
        assert "s" in lines[3]  # min on the bottom row

    def test_log_scale(self):
        out = ascii_plot({"x": [1, 10, 100]}, log_y=True, height=5)
        assert "100" in out

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_plot({"x": [0, 1]}, log_y=True)

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            ascii_plot({})
        with pytest.raises(ValueError):
            ascii_plot({"a": [1, 2], "b": [1]})
        with pytest.raises(ValueError):
            ascii_plot({"a": [1]})

    def test_x_labels_rendered(self):
        out = ascii_plot({"a": [1, 2]}, x_labels=["lo", "hi"])
        assert "lo" in out
        assert "hi" in out

    def test_constant_series(self):
        out = ascii_plot({"flat": [5, 5, 5]})
        assert "f" in out

    def test_multiple_series_markers(self):
        out = ascii_plot({"alpha": [1, 2], "beta": [2, 1]})
        assert "a = alpha" in out
        assert "b = beta" in out
