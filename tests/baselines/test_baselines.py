"""Baseline systems: Table 2 compatibility, correctness, relative ranking."""

import pytest

from repro.baselines.base import BaselineMsm
from repro.baselines.registry import (
    all_baselines,
    baseline_by_name,
    best_gpu,
    compatible_baselines,
)
from repro.core.distmsm import DistMsm
from repro.curves.params import curve_by_name
from repro.curves.sampling import msm_instance
from repro.gpu.cluster import MultiGpuSystem
from repro.msm.naive import naive_msm

BN254 = curve_by_name("BN254")
BLS377 = curve_by_name("BLS12-377")
BLS381 = curve_by_name("BLS12-381")
MNT = curve_by_name("MNT4753")


class TestTable2Matrix:
    """The paper's Table 2: which baseline supports which curve."""

    def test_identifiers(self):
        assert [b.ident for b in all_baselines()] == [1, 2, 3, 4, 5, 6]

    @pytest.mark.parametrize(
        "name,curves",
        [
            ("Bellperson", {"BLS12-381"}),
            ("cuZK", {"BLS12-377", "BLS12-381", "MNT4753"}),
            ("Icicle", {"BN254", "BLS12-377", "BLS12-381"}),
            ("Mina", {"MNT4753"}),
            ("Sppark", {"BN254", "BLS12-377", "BLS12-381"}),
            ("Yrrid", {"BLS12-377"}),
        ],
    )
    def test_supported_curves(self, name, curves):
        assert set(baseline_by_name(name).curves) == curves

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            baseline_by_name("gnark")

    def test_compatible_baselines(self):
        assert {b.name for b in compatible_baselines(MNT)} == {"cuZK", "Mina"}
        assert {b.name for b in compatible_baselines(BN254)} == {"Icicle", "Sppark"}

    def test_unsupported_curve_rejected(self):
        yrrid = baseline_by_name("Yrrid")
        with pytest.raises(ValueError):
            yrrid.estimate(BN254, 1 << 20, MultiGpuSystem(1))


class TestFunctionalCorrectness:
    """Baselines must compute correct MSMs, not just model times."""

    @pytest.mark.parametrize("name,curve", [
        ("Sppark", BN254),
        ("Icicle", BN254),
        ("cuZK", BLS381),
        ("Bellperson", BLS381),
        ("Yrrid", BLS377),
    ])
    def test_baseline_execute_matches_naive(self, name, curve):
        baseline = baseline_by_name(name)
        scalars, points = msm_instance(curve, 10, seed=3)
        expected = naive_msm(scalars, points, curve)
        # shrink the window so tiny instances stay fast
        from dataclasses import replace

        small = replace(baseline, config=replace(baseline.config, window_size=6))
        result = small.execute(scalars, points, curve, MultiGpuSystem(2))
        assert result.point == expected


class TestRanking:
    """The relative orderings the paper's Table 3 superscripts encode."""

    def test_sppark_wins_bn254(self):
        _, winner = best_gpu(BN254, 1 << 26, MultiGpuSystem(1))
        assert winner.name == "Sppark"

    def test_yrrid_wins_bls377_single_gpu(self):
        _, winner = best_gpu(BLS377, 1 << 26, MultiGpuSystem(1))
        assert winner.name == "Yrrid"

    def test_mina_wins_mnt4753(self):
        for gpus in (1, 8):
            _, winner = best_gpu(MNT, 1 << 26, MultiGpuSystem(gpus))
            assert winner.name == "Mina"

    def test_cuzk_wins_bls381_multi_gpu(self):
        _, winner = best_gpu(BLS381, 1 << 26, MultiGpuSystem(16))
        assert winner.name == "cuZK"

    def test_distmsm_beats_bg_multi_gpu(self):
        """The headline: DistMSM outperforms every baseline at scale."""
        for curve in (BN254, BLS381, MNT):
            system = MultiGpuSystem(16)
            bg, _ = best_gpu(curve, 1 << 26, system)
            dist = DistMsm(system).estimate(curve, 1 << 26)
            assert dist.time_ms < bg.time_ms

    def test_distmsm_loses_to_yrrid_at_one_gpu_28(self):
        """Paper: single-GPU DistMSM 'lags behind Yrrid for BLS12-377'."""
        system = MultiGpuSystem(1)
        yrrid = baseline_by_name("Yrrid").estimate(BLS377, 1 << 28, system)
        dist = DistMsm(system).estimate(BLS377, 1 << 28)
        # within 2x either way at one GPU; the paper's exact 0.5-0.7x ratio
        # is a known deviation recorded in EXPERIMENTS.md
        assert 0.4 < yrrid.time_ms / dist.time_ms < 2.0

    def test_mnt_speedup_band(self):
        """Paper: 10-20x over Mina on MNT4753."""
        system = MultiGpuSystem(8)
        bg, _ = best_gpu(MNT, 1 << 28, system)
        dist = DistMsm(system).estimate(MNT, 1 << 28)
        assert 8 <= bg.time_ms / dist.time_ms <= 22

    def test_efficiency_overrides(self):
        cuzk = baseline_by_name("cuZK")
        assert cuzk.efficiency_for(MNT) < cuzk.efficiency_for(BLS381)
        assert cuzk.efficiency_for(BLS381) == cuzk.config.efficiency


class TestWindowPolicies:
    def test_fixed_window(self):
        sppark = baseline_by_name("Sppark")
        assert sppark.window_size_for(BN254, 1 << 26, 1, MultiGpuSystem(1).spec) == 16

    def test_autotune_frozen_ignores_gpu_count(self):
        """Yrrid's precompute tables pin s to the single-GPU choice."""
        yrrid = baseline_by_name("Yrrid")
        spec = MultiGpuSystem(1).spec
        s1 = yrrid.window_size_for(BLS377, 1 << 26, 1, spec)
        s32 = yrrid.window_size_for(BLS377, 1 << 26, 32, spec)
        assert s1 == s32
        assert s1 is not None

    def test_system_policy_adapts(self):
        cuzk = baseline_by_name("cuZK")
        spec = MultiGpuSystem(1).spec
        s1 = cuzk.window_size_for(BLS381, 1 << 26, 1, spec)
        s32 = cuzk.window_size_for(BLS381, 1 << 26, 32, spec)
        assert s32 <= s1

    def test_repr(self):
        assert "Yrrid" in repr(baseline_by_name("Yrrid"))
