"""random_fault_plan's node_failure_probability knob (whole-box fail-stop)."""

from repro.cluster import split_fault_plan
from repro.engine.faults import GpuFailure
from repro.faults.chaos import random_fault_plan

import pytest


def _kills(plan):
    return [e for e in plan.events if isinstance(e, GpuFailure)]


class TestSeedStability:
    @pytest.mark.parametrize("seed", range(12))
    def test_zero_probability_changes_nothing(self, seed):
        """Plans for existing seeds are byte-identical when the knob is off."""
        classic = random_fault_plan(seed, num_gpus=8, horizon_ms=20.0)
        gated = random_fault_plan(
            seed, num_gpus=8, horizon_ms=20.0, node_failure_probability=0.0
        )
        assert classic.events == gated.events

    def test_same_seed_same_plan(self):
        a = random_fault_plan(
            3, num_gpus=8, horizon_ms=20.0, gpus_per_node=4,
            node_failure_probability=1.0,
        )
        b = random_fault_plan(
            3, num_gpus=8, horizon_ms=20.0, gpus_per_node=4,
            node_failure_probability=1.0,
        )
        assert a.events == b.events


class TestNodeKillShape:
    def test_whole_node_dies_at_one_event_boundary(self):
        plan = random_fault_plan(
            0,
            num_gpus=8,
            horizon_ms=20.0,
            gpus_per_node=4,
            max_gpu_failures=0,  # isolate the node kill
            straggler_probability=0.0,
            transfer_error_probability=0.0,
            node_failure_probability=1.0,
        )
        kills = _kills(plan)
        assert len(kills) == 4
        assert len({k.at_ms for k in kills}) == 1  # the SAME boundary
        nodes = {k.gpu_id // 4 for k in kills}
        assert len(nodes) == 1  # all on one box

    @pytest.mark.parametrize("seed", range(20))
    def test_never_kills_the_last_live_node(self, seed):
        plan = random_fault_plan(
            seed,
            num_gpus=8,
            horizon_ms=20.0,
            gpus_per_node=4,
            node_failure_probability=1.0,
        )
        killed = {k.gpu_id for k in _kills(plan)}
        assert killed != set(range(8)), "some GPU must survive cluster-wide"

    def test_single_node_cluster_is_never_killed(self):
        plan = random_fault_plan(
            0,
            num_gpus=4,
            horizon_ms=20.0,
            gpus_per_node=4,
            max_gpu_failures=0,
            straggler_probability=0.0,
            transfer_error_probability=0.0,
            node_failure_probability=1.0,
        )
        assert not _kills(plan)

    @pytest.mark.parametrize("seed", range(8))
    def test_split_fault_plan_sees_the_death(self, seed):
        """The knob's output is exactly the signature the cluster detects."""
        plan = random_fault_plan(
            seed,
            num_gpus=8,
            horizon_ms=20.0,
            gpus_per_node=4,
            max_gpu_failures=0,
            straggler_probability=0.0,
            transfer_error_probability=0.0,
            byzantine_probability=0.0,
            node_failure_probability=1.0,
        )
        _, deaths = split_fault_plan(plan, [4, 4], heartbeat_ms=5.0)
        assert len(deaths) == 1

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            random_fault_plan(
                0, num_gpus=8, horizon_ms=20.0, node_failure_probability=1.5
            )
