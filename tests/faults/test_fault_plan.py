"""The repro.faults facade: recovery policy and seeded chaos generation."""

import pytest

from repro.core.planner import Assignment
from repro.engine.faults import GpuFailure, Straggler, TransferError
from repro.faults import (
    FaultPlan,
    FaultRecoveryError,
    FaultReport,
    RecoveryRound,
    detection_time_ms,
    random_fault_plan,
    redistribute_assignments,
)


class TestDetection:
    def test_death_between_ticks(self):
        assert detection_time_ms(0.4, 1.0) == pytest.approx(1.0)
        assert detection_time_ms(1.7, 1.0) == pytest.approx(2.0)

    def test_death_on_a_tick_caught_next_tick(self):
        # the tick at the death time still sees the last heartbeat
        assert detection_time_ms(2.0, 1.0) == pytest.approx(3.0)
        assert detection_time_ms(0.0, 0.5) == pytest.approx(0.5)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            detection_time_ms(1.0, 0.0)
        with pytest.raises(ValueError):
            detection_time_ms(-1.0, 1.0)


class TestRedistribution:
    def test_round_robin_over_survivors(self):
        lost = [Assignment(gpu=3, window=w) for w in range(5)]
        moved = redistribute_assignments(lost, [0, 2])
        assert [a.gpu for a in moved] == [0, 2, 0, 2, 0]
        # windows and ranges are untouched: same cells, new owners
        assert [a.window for a in moved] == [0, 1, 2, 3, 4]

    def test_no_survivors_raises(self):
        with pytest.raises(FaultRecoveryError):
            redistribute_assignments([Assignment(gpu=0, window=0)], [])


class TestFaultReport:
    def _report(self, fault_free=10.0, recovered=12.5, dead=(3,), retries=2):
        return FaultReport(
            plan=FaultPlan.of(GpuFailure(1.0, 3)),
            rounds=(RecoveryRound(0, (0, 1, 2, 3), (), (), 0.0, 0.0),),
            dead_gpus=dead,
            surviving_gpus=tuple(g for g in range(4) if g not in dead),
            fault_free_ms=fault_free,
            recovered_ms=recovered,
            window_size=12,
            replanned_window_size=11,
            retries=retries,
        )

    def test_overhead_and_flags(self):
        report = self._report()
        assert report.recovery_overhead_ms == pytest.approx(2.5)
        assert report.degraded
        summary = report.summary()
        assert "1 GPU(s) lost" in summary
        assert "12->11" in summary

    def test_negative_makespan_rejected(self):
        with pytest.raises(ValueError):
            self._report(recovered=-1.0)


class TestChaosGenerator:
    def test_same_seed_same_plan(self):
        assert random_fault_plan(7, 8, 100.0) == random_fault_plan(7, 8, 100.0)

    def test_different_seeds_differ(self):
        plans = {random_fault_plan(seed, 8, 100.0) for seed in range(16)}
        assert len(plans) > 1

    def test_never_kills_every_gpu(self):
        for seed in range(64):
            plan = random_fault_plan(seed, 4, 50.0)
            dead = {e.gpu_id for e in plan.events if isinstance(e, GpuFailure)}
            assert len(dead) < 4

    def test_events_respect_bounds(self):
        for seed in range(32):
            plan = random_fault_plan(seed, 8, 25.0, gpus_per_node=4)
            for event in plan.events:
                if isinstance(event, (GpuFailure, Straggler)):
                    assert 0 <= event.gpu_id < 8
                if isinstance(event, (GpuFailure, TransferError)):
                    assert 0.0 <= event.at_ms < 25.0
                if isinstance(event, TransferError):
                    assert 0 <= event.node < 2

    def test_single_gpu_plan_never_kills(self):
        for seed in range(16):
            plan = random_fault_plan(seed, 1, 10.0)
            assert not any(isinstance(e, GpuFailure) for e in plan.events)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            random_fault_plan(0, 0, 10.0)
        with pytest.raises(ValueError):
            random_fault_plan(0, 4, 0.0)
