"""Byzantine events, deterministic forgery, audit reports, and chaos plans."""

import json

import pytest

from repro.curves.point import XyzzPoint, to_affine
from repro.curves.sampling import sample_points
from repro.engine.faults import (
    BYZANTINE_MODES,
    ByzantineWorker,
    FaultPlan,
    GpuFailure,
    Straggler,
    TransferError,
)
from repro.faults import random_fault_plan
from repro.faults.byzantine import (
    VERDICT_ACCEPTED,
    VERDICT_REJECTED,
    ByzantineReport,
    ChunkOutcome,
    corrupt_partials,
)
from repro.msm.outsource import chunk_value

from tests.conftest import TOY_CURVE


def _partials(seed=3, slots=2, buckets=8):
    points = sample_points(TOY_CURVE, slots * buckets, seed=seed)
    return [
        [XyzzPoint.from_affine(points[s * buckets + b]) for b in range(buckets)]
        for s in range(slots)
    ]


class TestByzantineEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            ByzantineWorker(-1)
        with pytest.raises(ValueError):
            ByzantineWorker(0, mode="sabotage")
        with pytest.raises(ValueError):
            ByzantineWorker(0, round=-1)

    def test_cheats_in_round(self):
        always = ByzantineWorker(0)
        assert always.cheats_in_round(0) and always.cheats_in_round(7)
        adaptive = ByzantineWorker(0, round=1)
        assert not adaptive.cheats_in_round(0)
        assert adaptive.cheats_in_round(1)

    def test_plan_rejects_duplicate_byzantine_per_gpu(self):
        with pytest.raises(ValueError):
            FaultPlan.of(ByzantineWorker(1), ByzantineWorker(1, mode="bit-flip"))

    def test_plan_accessor(self):
        ev = ByzantineWorker(2, mode="bit-flip", seed=9)
        plan = FaultPlan.of(GpuFailure(1.0, 0), ev)
        assert plan.byzantine_workers() == {2: ev}
        assert FaultPlan().byzantine_workers() == {}


class TestCorruptPartials:
    @pytest.mark.parametrize("mode", BYZANTINE_MODES)
    def test_deterministic_per_seed_round_gpu(self, mode):
        partials = _partials()
        a, ca = corrupt_partials(mode, 5, 0, 1, partials, TOY_CURVE)
        b, cb = corrupt_partials(mode, 5, 0, 1, partials, TOY_CURVE)
        assert a == b and ca == cb

    def test_wrong_result_changes_the_value(self):
        partials = _partials()
        forged, changed = corrupt_partials("wrong-result", 5, 0, 1, partials, TOY_CURVE)
        assert changed
        assert to_affine(chunk_value(forged, TOY_CURVE), TOY_CURVE) != to_affine(
            chunk_value(partials, TOY_CURVE), TOY_CURVE
        )

    def test_original_partials_never_mutated(self):
        partials = _partials()
        snapshot = [list(s) for s in partials]
        corrupt_partials("off-by-one-bucket", 5, 0, 1, partials, TOY_CURVE)
        assert partials == snapshot

    def test_bit_flip_on_all_identity_is_a_noop(self):
        partials = [[XyzzPoint.identity() for _ in range(4)]]
        forged, changed = corrupt_partials("bit-flip", 5, 0, 1, partials, TOY_CURVE)
        assert forged == partials and not changed

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            corrupt_partials("gremlin", 5, 0, 1, _partials(), TOY_CURVE)


def _report(**overrides):
    kwargs = dict(
        challenge_seed=2024,
        scheme="2g2t-rlc",
        soundness_bits=10,
        verified=True,
        cheaters=(1,),
        quarantined=((1, 0.5),),
        chunks=(
            ChunkOutcome(0, 0, (0,), False, True, VERDICT_ACCEPTED, 0.0, 0.4),
            ChunkOutcome(0, 1, (1,), True, True, VERDICT_REJECTED, 0.0, 0.5),
        ),
        consumed=((0, 0, 0), (1, 1, 0)),
        chunk_checks=2,
        batch_checks=1,
        rejected=1,
    )
    kwargs.update(overrides)
    return ByzantineReport(**kwargs)


class TestReports:
    def test_chunk_outcome_rejects_unknown_verdict(self):
        with pytest.raises(ValueError):
            ChunkOutcome(0, 0, (0,), False, True, "maybe", 0.0)

    def test_report_properties(self):
        report = _report()
        assert report.caught
        assert report.quarantined_gpus == (1,)
        assert report.outcome_for(0, 1).verdict == VERDICT_REJECTED
        assert report.outcome_for(3, 3) is None
        assert "1 chunk(s) rejected" in report.summary()
        assert "DISABLED" in _report(verified=False).summary()

    def test_byzantine_report_json_deterministic_and_sorted(self):
        a, b = _report().to_json(), _report().to_json()
        assert a == b
        decoded = json.loads(a)
        assert list(decoded) == sorted(decoded)
        assert decoded["consumed"] == [[0, 0, 0], [1, 1, 0]]
        assert decoded["chunks"][1]["verdict"] == VERDICT_REJECTED

    def test_fault_report_json_deterministic_and_sorted(self):
        from repro.faults import FaultReport, RecoveryRound

        def make():
            return FaultReport(
                plan=FaultPlan.of(GpuFailure(1.0, 3), ByzantineWorker(1, seed=4)),
                rounds=(RecoveryRound(0, (0, 1, 2, 3), (), (), 0.0, 0.0),),
                dead_gpus=(3,),
                surviving_gpus=(0, 1, 2),
                fault_free_ms=10.0,
                recovered_ms=12.5,
                window_size=12,
                replanned_window_size=11,
                retries=2,
            )

        a, b = make().to_json(), make().to_json()
        assert a == b
        decoded = json.loads(a)
        assert list(decoded) == sorted(decoded)
        types = [e["type"] for e in decoded["plan"]]
        assert types == ["GpuFailure", "ByzantineWorker"]

    def test_both_reports_exported_from_facade(self):
        import repro.faults as facade

        assert facade.ByzantineReport is ByzantineReport
        assert hasattr(facade, "FaultReport")
        assert "ByzantineReport" in facade.__all__
        assert "FaultReport" in facade.__all__


class TestChaosPlans:
    def test_reproducible_from_seed(self):
        a = random_fault_plan(5, 8, 10.0, byzantine_probability=0.5)
        b = random_fault_plan(5, 8, 10.0, byzantine_probability=0.5)
        assert a == b
        assert a != random_fault_plan(6, 8, 10.0, byzantine_probability=0.5)

    @pytest.mark.parametrize("seed", range(25))
    def test_always_recoverable_by_construction(self, seed):
        plan = random_fault_plan(seed, 8, 10.0, byzantine_probability=0.4)
        dead = set(plan.gpu_death_times())
        byz = set(plan.byzantine_workers())
        # at least one GPU alive; at least one alive GPU honest
        assert len(dead) < 8
        assert any(g not in dead and g not in byz for g in range(8))
        # transfer errors are always transient random chaos
        for event in plan.events:
            if isinstance(event, TransferError):
                assert event.transient
        # no byzantine worker on a dead GPU, valid modes only
        for g, ev in plan.byzantine_workers().items():
            assert g not in dead
            assert ev.mode in BYZANTINE_MODES
        # at most one straggler per GPU, never on a victim
        stragglers = [e.gpu_id for e in plan.events if isinstance(e, Straggler)]
        assert len(stragglers) == len(set(stragglers))
        assert not set(stragglers) & dead

    def test_kill_cap_honoured(self):
        for seed in range(10):
            plan = random_fault_plan(seed, 8, 10.0, max_gpu_failures=2)
            assert len(plan.gpu_death_times()) <= 2

    def test_byzantine_off_by_default(self):
        for seed in range(10):
            plan = random_fault_plan(seed, 8, 10.0)
            assert not plan.byzantine_workers()

    def test_validation(self):
        with pytest.raises(ValueError):
            random_fault_plan(0, 0, 10.0)
        with pytest.raises(ValueError):
            random_fault_plan(0, 4, 0.0)
        with pytest.raises(ValueError):
            random_fault_plan(0, 4, 10.0, byzantine_probability=1.5)

    def test_single_gpu_cluster_never_killed_or_cheating(self):
        for seed in range(5):
            plan = random_fault_plan(seed, 1, 10.0, byzantine_probability=1.0)
            assert not plan.gpu_death_times()
            assert not plan.byzantine_workers()
