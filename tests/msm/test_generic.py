"""Generic-group Pippenger: integers-mod-m sanity plus real G2."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.msm.generic import GroupOps, g2_msm, pippenger_generic
from repro.zksnark import pairing as pr


def int_group(modulus: int) -> GroupOps:
    """The additive group Z_m — a transparent test harness."""
    return GroupOps(
        add=lambda a, b: (a + b) % modulus,
        neg=lambda a: (-a) % modulus,
        identity=0,
    )


class TestIntegerGroup:
    @given(
        st.lists(st.integers(0, (1 << 64) - 1), min_size=1, max_size=20),
        st.integers(2, 10),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_direct_sum(self, scalars, w):
        m = (1 << 61) - 1
        points = [(i * 7919 + 13) % m for i in range(len(scalars))]
        expected = sum(k * p for k, p in zip(scalars, points)) % m
        got = pippenger_generic(scalars, points, int_group(m), 64, w)
        assert got == expected

    def test_empty(self):
        assert pippenger_generic([], [], int_group(97), 8) == 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pippenger_generic([1], [], int_group(97), 8)

    def test_window_validated(self):
        with pytest.raises(ValueError):
            pippenger_generic([1], [1], int_group(97), 8, window_size=1)


class TestG2Msm:
    @pytest.fixture(scope="class")
    def g2_points(self):
        return [pr.g2_mul(pr.G2_GENERATOR, k) for k in (1, 2, 5, 11)]

    def test_matches_naive(self, g2_points):
        rng = random.Random(3)
        scalars = [rng.randrange(1 << 64) for _ in g2_points]
        expected = None
        for k, pt in zip(scalars, g2_points):
            expected = pr.g2_add(expected, pr.g2_mul(pt, k))
        assert g2_msm(scalars, g2_points) == expected

    def test_zero_scalars(self, g2_points):
        assert g2_msm([0] * len(g2_points), g2_points) is None

    def test_single_term(self, g2_points):
        assert g2_msm([7], [g2_points[0]]) == pr.g2_mul(g2_points[0], 7)

    def test_results_on_twist(self, g2_points):
        result = g2_msm([3, 1, 4, 1], g2_points)
        assert pr.is_on_curve_fq(result, pr.B2)
