"""Batched-affine accumulation: correctness and inversion economics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.curves.point import AffinePoint, XyzzPoint, affine_neg, to_affine, xyzz_acc
from repro.curves.sampling import msm_instance, sample_points
from repro.msm.batch_affine import (
    BatchAffineStats,
    batch_affine_add_pairs,
    batch_inverse,
    bucket_sums_batch_affine,
    msm_batch_affine,
)
from repro.msm.naive import naive_msm

from tests.conftest import TOY_CURVE


class TestBatchInverse:
    @given(st.lists(st.integers(0, TOY_CURVE.p - 1), min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_inverts_all_nonzero(self, values):
        out = batch_inverse(values, TOY_CURVE.p)
        for v, inv in zip(values, out):
            if v % TOY_CURVE.p == 0:
                assert inv == 0
            else:
                assert v * inv % TOY_CURVE.p == 1

    def test_single_inversion(self):
        stats = BatchAffineStats()
        batch_inverse([3, 5, 7, 11], TOY_CURVE.p, stats)
        assert stats.inversions == 1

    def test_all_zero(self):
        assert batch_inverse([0, 0], TOY_CURVE.p) == [0, 0]


class TestBatchAdd:
    def test_matches_xyzz(self):
        pts = sample_points(TOY_CURVE, 10, seed=4)
        pairs = [(pts[i], pts[i + 1]) for i in range(0, 10, 2)]
        results = batch_affine_add_pairs(pairs, TOY_CURVE)
        for (a, b), got in zip(pairs, results):
            expected = to_affine(
                xyzz_acc(XyzzPoint.from_affine(a), b, TOY_CURVE), TOY_CURVE
            )
            assert got == expected

    def test_edge_cases_in_one_batch(self):
        pts = sample_points(TOY_CURVE, 4, seed=5)
        pairs = [
            (AffinePoint.identity(), pts[0]),  # left identity
            (pts[1], AffinePoint.identity()),  # right identity
            (pts[2], pts[2]),  # doubling
            (pts[3], affine_neg(pts[3], TOY_CURVE)),  # inverse pair
            (pts[0], pts[1]),  # ordinary add
        ]
        results = batch_affine_add_pairs(pairs, TOY_CURVE)
        assert results[0] == pts[0]
        assert results[1] == pts[1]
        from repro.curves.point import pdbl

        assert results[2] == to_affine(
            pdbl(XyzzPoint.from_affine(pts[2]), TOY_CURVE), TOY_CURVE
        )
        assert results[3].infinity
        assert not results[4].infinity

    def test_stats_counting(self):
        pts = sample_points(TOY_CURVE, 4, seed=6)
        stats = BatchAffineStats()
        batch_affine_add_pairs(
            [(pts[0], pts[1]), (pts[2], pts[2])], TOY_CURVE, stats
        )
        assert stats.additions == 1
        assert stats.doublings == 1
        assert stats.inversions == 1


class TestBucketSums:
    def test_matches_serial_accumulation(self):
        pts = sample_points(TOY_CURVE, 16, seed=7)
        buckets = [pts[:5], [], pts[5:6], pts[6:16]]
        got = bucket_sums_batch_affine(buckets, TOY_CURVE)
        for members, result in zip(buckets, got):
            acc = XyzzPoint.identity()
            for pt in members:
                acc = xyzz_acc(acc, pt, TOY_CURVE)
            assert result == to_affine(acc, TOY_CURVE)

    def test_one_inversion_per_round(self):
        pts = sample_points(TOY_CURVE, 16, seed=8)
        stats = BatchAffineStats()
        bucket_sums_batch_affine([pts], TOY_CURVE, stats)
        # 16 points halve in 4 rounds -> 4 shared inversions
        assert stats.rounds == 4
        assert stats.inversions <= stats.rounds

    def test_duplicate_points_force_doubling_path(self):
        pts = sample_points(TOY_CURVE, 1, seed=9) * 8
        got = bucket_sums_batch_affine([pts], TOY_CURVE)
        from repro.curves.point import pmul

        assert got[0] == pmul(pts[0], 8, TOY_CURVE)


class TestMsmBatchAffine:
    def test_matches_naive(self):
        scalars, points = msm_instance(TOY_CURVE, 40, seed=10)
        expected = naive_msm(scalars, points, TOY_CURVE)
        assert msm_batch_affine(scalars, points, TOY_CURVE, 3) == expected

    def test_empty(self):
        assert msm_batch_affine([], [], TOY_CURVE).infinity

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            msm_batch_affine([1], [], TOY_CURVE)

    def test_amortisation_wins(self):
        """The whole point: far fewer inversions than additions."""
        scalars, points = msm_instance(TOY_CURVE, 64, seed=11)
        stats = BatchAffineStats()
        msm_batch_affine(scalars, points, TOY_CURVE, 3, stats)
        total_adds = stats.additions + stats.doublings
        assert total_adds > 0
        assert stats.inversions < total_adds / 3
