"""2G2T verifiable outsourcing: challenge, response, and batch algebra."""

import math

import pytest

from repro.curves.point import XyzzPoint, pmul, to_affine, xyzz_add
from repro.curves.sampling import sample_points
from repro.msm.outsource import (
    RHO_BITS,
    Challenge,
    batch_verify,
    chunk_value,
    make_response,
    mask_point,
    mask_scalar,
    response_padds,
    rho_coeff,
    sample_challenge,
    soundness_bits,
    verify_chunk,
    verify_padds,
)

from tests.conftest import TOY_CURVE


def _partials(seed=3, slots=2, buckets=8):
    """Bucket partials as a worker would deliver: slots x buckets points."""
    points = sample_points(TOY_CURVE, slots * buckets, seed=seed)
    return [
        [XyzzPoint.from_affine(points[s * buckets + b]) for b in range(buckets)]
        for s in range(slots)
    ]


class TestChallenge:
    def test_deterministic_in_seed_and_curve(self):
        assert sample_challenge(TOY_CURVE, 7) == sample_challenge(TOY_CURVE, 7)
        assert sample_challenge(TOY_CURVE, 7) != sample_challenge(TOY_CURVE, 8)

    def test_challenge_is_a_unit_mod_group_order(self):
        # the toy curve's order is composite: soundness on it *requires*
        # gcd(c, r) == 1, or a forgery of small order d | c would pass
        for seed in range(50):
            c = sample_challenge(TOY_CURVE, seed).c
            assert 1 <= c < TOY_CURVE.r
            assert math.gcd(c, TOY_CURVE.r) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Challenge(seed=0, c=0)
        with pytest.raises(ValueError):
            Challenge(seed=0, c=3, rho_bits=0)

    def test_soundness_bits(self):
        assert soundness_bits(TOY_CURVE) == TOY_CURVE.r.bit_length() - 1

    def test_masks_and_rhos_replayable_from_seed(self):
        ch = sample_challenge(TOY_CURVE, 11)
        assert mask_scalar(ch, 0, 1, TOY_CURVE) == mask_scalar(ch, 0, 1, TOY_CURVE)
        assert mask_scalar(ch, 0, 1, TOY_CURVE) != mask_scalar(ch, 1, 1, TOY_CURVE)
        assert 1 <= rho_coeff(ch, 0, 2) < (1 << RHO_BITS)
        assert rho_coeff(ch, 0, 2) == rho_coeff(ch, 0, 2)


class TestChunkValue:
    def test_matches_weighted_bucket_sum(self):
        # V must be sum_{b>=1} b * B_b — the functional the host's
        # bucket-reduce consumes
        partials = _partials()
        expected = XyzzPoint.identity()
        for sums in partials:
            for b in range(1, len(sums)):
                term = pmul(to_affine(sums[b], TOY_CURVE), b, TOY_CURVE)
                expected = xyzz_add(
                    expected, XyzzPoint.from_affine(term), TOY_CURVE
                )
        got = chunk_value(partials, TOY_CURVE)
        assert to_affine(got, TOY_CURVE) == to_affine(expected, TOY_CURVE)

    def test_bucket_zero_has_no_weight(self):
        partials = _partials(slots=1)
        tampered = [list(partials[0])]
        tampered[0][0] = XyzzPoint.identity()
        assert to_affine(chunk_value(partials, TOY_CURVE), TOY_CURVE) == to_affine(
            chunk_value(tampered, TOY_CURVE), TOY_CURVE
        )


class TestResponseCheck:
    def test_honest_response_accepted(self):
        ch = sample_challenge(TOY_CURVE, 5)
        value = chunk_value(_partials(), TOY_CURVE)
        resp = make_response(ch, value, 0, 2, TOY_CURVE)
        assert verify_chunk(ch, value, resp, 0, 2, TOY_CURVE)

    def test_response_bound_to_chunk_coordinates(self):
        # the mask differs per (round, gpu): replaying another chunk's
        # honest response must fail
        ch = sample_challenge(TOY_CURVE, 5)
        value = chunk_value(_partials(), TOY_CURVE)
        resp = make_response(ch, value, 0, 2, TOY_CURVE)
        assert not verify_chunk(ch, value, resp, 0, 3, TOY_CURVE)
        assert not verify_chunk(ch, value, resp, 1, 2, TOY_CURVE)

    @pytest.mark.parametrize("seed", range(8))
    def test_forged_value_rejected(self, seed):
        ch = sample_challenge(TOY_CURVE, seed)
        honest = _partials(seed=seed + 1)
        value = chunk_value(honest, TOY_CURVE)
        resp = make_response(ch, value, 0, 0, TOY_CURVE)
        forged = [list(s) for s in honest]
        forged[0][3] = xyzz_add(forged[0][3], forged[0][4], TOY_CURVE)
        forged_value = chunk_value(forged, TOY_CURVE)
        if to_affine(forged_value, TOY_CURVE) == to_affine(value, TOY_CURVE):
            pytest.skip("corruption happened to preserve the value")
        assert not verify_chunk(ch, forged_value, resp, 0, 0, TOY_CURVE)


class TestBatchVerify:
    def _items(self, ch, count=4):
        items = []
        for i in range(count):
            value = chunk_value(_partials(seed=20 + i), TOY_CURVE)
            items.append(
                (0, i, value, make_response(ch, value, 0, i, TOY_CURVE))
            )
        return items

    def test_honest_batch_accepted(self):
        ch = sample_challenge(TOY_CURVE, 9)
        assert batch_verify(ch, self._items(ch), TOY_CURVE)

    def test_empty_batch_trivially_accepted(self):
        assert batch_verify(sample_challenge(TOY_CURVE, 9), [], TOY_CURVE)

    def test_one_forged_item_fails_the_whole_batch(self):
        ch = sample_challenge(TOY_CURVE, 9)
        items = self._items(ch)
        rnd, gpu, value, resp = items[2]
        # shift chunk 2's value by the (full-order) generator: the RLC
        # difference rho_2 * c * G cannot vanish for a 16-bit rho on the
        # toy group, so the batch must fail and the per-chunk fallback
        # must localise exactly the forged item
        from repro.curves.point import AffinePoint

        g = XyzzPoint.from_affine(AffinePoint(TOY_CURVE.gx, TOY_CURVE.gy))
        items[2] = (rnd, gpu, xyzz_add(value, g, TOY_CURVE), resp)
        assert not batch_verify(ch, items, TOY_CURVE)
        verdicts = [
            verify_chunk(ch, v, r, rd, gp, TOY_CURVE)
            for rd, gp, v, r in items
        ]
        assert verdicts == [True, True, False, True]


class TestCostModel:
    def test_response_cost_scales_with_scalar_bits(self):
        assert response_padds(256) > response_padds(10) > 0

    def test_batched_check_cheaper_than_individual(self):
        batched = verify_padds(64, 256, batched=True)
        single = verify_padds(64, 256, batched=False)
        assert batched < single
        # the bucket fold is charged either way
        assert batched > 2 * 64
