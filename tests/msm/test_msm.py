"""MSM algorithm tests: naive reference, Pippenger, precomputation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.curves.point import AffinePoint, pmul
from repro.curves.sampling import msm_instance, sample_points
from repro.curves.scalar import num_windows
from repro.msm.naive import naive_msm
from repro.msm.pippenger import PippengerStats, default_window_size, pippenger_msm
from repro.msm.precompute import msm_with_precompute, precompute_tables

from tests.conftest import TOY_CURVE


class TestNaive:
    def test_empty(self):
        assert naive_msm([], [], TOY_CURVE).infinity

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            naive_msm([1], [], TOY_CURVE)

    def test_negative_scalar_rejected(self):
        pts = sample_points(TOY_CURVE, 1, seed=0)
        with pytest.raises(ValueError):
            naive_msm([-1], pts, TOY_CURVE)

    def test_single_term_matches_pmul(self):
        pts = sample_points(TOY_CURVE, 1, seed=0)
        assert naive_msm([29], pts, TOY_CURVE) == pmul(pts[0], 29, TOY_CURVE)

    def test_two_terms(self):
        pts = sample_points(TOY_CURVE, 2, seed=1)
        expected = pmul(pts[0], 3, TOY_CURVE)
        expected2 = pmul(pts[1], 5, TOY_CURVE)
        from repro.curves.point import XyzzPoint, to_affine, xyzz_add

        combined = to_affine(
            xyzz_add(
                XyzzPoint.from_affine(expected),
                XyzzPoint.from_affine(expected2),
                TOY_CURVE,
            ),
            TOY_CURVE,
        )
        assert naive_msm([3, 5], pts, TOY_CURVE) == combined

    def test_zero_scalars_give_identity(self):
        pts = sample_points(TOY_CURVE, 4, seed=2)
        assert naive_msm([0, 0, 0, 0], pts, TOY_CURVE).infinity


class TestPippenger:
    @pytest.mark.parametrize("signed", [False, True])
    @pytest.mark.parametrize("window_size", [1, 2, 3, 5, 8])
    def test_matches_naive_toy(self, window_size, signed):
        scalars, points = msm_instance(TOY_CURVE, 40, seed=7)
        expected = naive_msm(scalars, points, TOY_CURVE)
        got = pippenger_msm(
            scalars, points, TOY_CURVE, window_size=window_size, signed=signed
        )
        assert got == expected

    @pytest.mark.parametrize("signed", [False, True])
    def test_matches_naive_bn254(self, bn254, signed):
        scalars, points = msm_instance(bn254, 16, seed=11)
        expected = naive_msm(scalars, points, bn254)
        got = pippenger_msm(scalars, points, bn254, window_size=8, signed=signed)
        assert got == expected

    def test_matches_naive_every_curve(self, any_curve):
        scalars, points = msm_instance(any_curve, 6, seed=13)
        expected = naive_msm(scalars, points, any_curve)
        assert pippenger_msm(scalars, points, any_curve, window_size=6) == expected

    def test_empty(self):
        assert pippenger_msm([], [], TOY_CURVE).infinity

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pippenger_msm([1, 2], sample_points(TOY_CURVE, 1), TOY_CURVE)

    def test_invalid_window(self):
        scalars, points = msm_instance(TOY_CURVE, 4, seed=1)
        with pytest.raises(ValueError):
            pippenger_msm(scalars, points, TOY_CURVE, window_size=0)

    def test_duplicate_points(self):
        """Duplicate base points land in the same bucket, forcing PACC's
        doubling edge case."""
        pts = sample_points(TOY_CURVE, 1, seed=3) * 6
        scalars = [5] * 6
        expected = naive_msm(scalars, pts, TOY_CURVE)
        assert pippenger_msm(scalars, pts, TOY_CURVE, window_size=3) == expected

    def test_stats_populated(self):
        scalars, points = msm_instance(TOY_CURVE, 30, seed=5)
        stats = PippengerStats()
        pippenger_msm(scalars, points, TOY_CURVE, window_size=3, stats=stats)
        assert stats.pacc > 0
        assert stats.padd > 0
        assert stats.pdbl > 0
        assert stats.window_size == 3
        assert stats.total_ec_ops == stats.pacc + stats.padd + stats.pdbl

    def test_pacc_count_bounded_by_nonzero_digits(self):
        """Each non-zero digit causes exactly one PACC."""
        scalars, points = msm_instance(TOY_CURVE, 25, seed=6)
        s = 3
        n_win = num_windows(TOY_CURVE.scalar_bits, s)
        from repro.curves.scalar import unsigned_windows

        nonzero = sum(
            1 for k in scalars for d in unsigned_windows(k, s, n_win) if d != 0
        )
        stats = PippengerStats()
        pippenger_msm(scalars, points, TOY_CURVE, window_size=s, stats=stats)
        assert stats.pacc == nonzero

    @given(st.integers(0, 2**32))
    @settings(max_examples=20, deadline=None)
    def test_property_single_scalar(self, k):
        k %= TOY_CURVE.r  # scalars must fit the curve's λ-bit windows
        pts = sample_points(TOY_CURVE, 1, seed=9)
        assert pippenger_msm([k], pts, TOY_CURVE, window_size=4) == pmul(
            pts[0], k, TOY_CURVE
        )

    def test_scalar_exceeding_lambda_rejected(self):
        pts = sample_points(TOY_CURVE, 1, seed=9)
        with pytest.raises(ValueError):
            pippenger_msm([1 << 12], pts, TOY_CURVE, window_size=4)

    def test_default_window_size_heuristic(self):
        assert default_window_size(1 << 20) == 18
        assert default_window_size(8) == 1
        assert default_window_size(0) == 1


class TestPrecompute:
    def test_matches_naive(self):
        scalars, points = msm_instance(TOY_CURVE, 20, seed=21)
        s = 3
        n_win = num_windows(TOY_CURVE.scalar_bits, s) + 1
        tables = precompute_tables(points, TOY_CURVE, s, n_win)
        expected = naive_msm(scalars, points, TOY_CURVE)
        for signed in (False, True):
            got = msm_with_precompute(
                scalars, tables, TOY_CURVE, s, signed=signed
            )
            assert got == expected

    def test_tables_shape(self):
        points = sample_points(TOY_CURVE, 4, seed=2)
        tables = precompute_tables(points, TOY_CURVE, 3, 4)
        assert len(tables) == 4
        assert all(len(t) == 4 for t in tables)

    def test_tables_content(self):
        points = sample_points(TOY_CURVE, 2, seed=2)
        tables = precompute_tables(points, TOY_CURVE, 3, 3)
        for j, table in enumerate(tables):
            for i, pt in enumerate(table):
                assert pt == pmul(points[i], 1 << (3 * j), TOY_CURVE)

    def test_insufficient_tables_rejected(self):
        scalars, points = msm_instance(TOY_CURVE, 4, seed=2)
        tables = precompute_tables(points, TOY_CURVE, 3, 1)
        with pytest.raises(ValueError):
            msm_with_precompute(scalars, tables, TOY_CURVE, 3)

    def test_empty(self):
        assert msm_with_precompute([], [], TOY_CURVE, 3).infinity

    def test_stats_single_window(self):
        scalars, points = msm_instance(TOY_CURVE, 10, seed=4)
        s = 3
        n_win = num_windows(TOY_CURVE.scalar_bits, s)
        tables = precompute_tables(points, TOY_CURVE, s, n_win)
        stats = PippengerStats()
        msm_with_precompute(scalars, tables, TOY_CURVE, s, stats=stats)
        assert stats.windows == 1
        assert stats.pdbl == 0  # no window-reduce doublings with precompute
