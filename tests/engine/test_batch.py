"""BatchMsmScheduler: request interleaving over one MultiGpuSystem."""

import pytest

from repro.core.config import DistMsmConfig
from repro.curves.params import curve_by_name
from repro.engine import BatchMsmScheduler, MsmRequest
from repro.engine.resources import HOST_CPU
from repro.gpu.cluster import MultiGpuSystem
from repro.verify.timelinecheck import verify_timeline

BLS = curve_by_name("BLS12-381")
CONFIG = DistMsmConfig(window_size=10)


def _requests(count: int, n: int = 1 << 16) -> list:
    return [MsmRequest(f"req{i}", BLS, n) for i in range(count)]


class TestBatchScheduler:
    def test_empty_batch(self):
        batch = BatchMsmScheduler(MultiGpuSystem(4), CONFIG).schedule([])
        assert batch.makespan_ms == 0.0
        assert batch.serial_ms == 0.0
        assert batch.completions_ms == []
        assert batch.speedup == 1.0

    def test_single_request_matches_serial(self):
        batch = BatchMsmScheduler(MultiGpuSystem(4), CONFIG).schedule(_requests(1))
        assert batch.makespan_ms == pytest.approx(batch.serial_ms)

    @pytest.mark.parametrize("groups", [1, 2, 4])
    def test_batching_beats_serial(self, groups):
        batch = BatchMsmScheduler(
            MultiGpuSystem(4), CONFIG, gpu_groups=groups
        ).schedule(_requests(6))
        assert batch.makespan_ms < batch.serial_ms
        assert batch.speedup > 1.0
        assert batch.throughput_rps > 0.0

    def test_completions_cover_every_request(self):
        batch = BatchMsmScheduler(MultiGpuSystem(4), CONFIG).schedule(_requests(5))
        assert len(batch.completions_ms) == 5
        assert max(batch.completions_ms) == pytest.approx(batch.makespan_ms)
        assert batch.mean_latency_ms <= batch.makespan_ms

    def test_schedule_passes_independent_audit(self):
        batch = BatchMsmScheduler(
            MultiGpuSystem(8), CONFIG, gpu_groups=2
        ).schedule(_requests(4))
        checked = verify_timeline(batch.timeline, subject="batch under test")
        assert checked.ok, [str(v) for v in checked.violations]

    def test_cpu_is_shared_across_groups(self):
        batch = BatchMsmScheduler(
            MultiGpuSystem(4), CONFIG, gpu_groups=2
        ).schedule(_requests(4))
        cpu_spans = [
            s
            for s in batch.timeline.spans.values()
            if s.resource.kind == HOST_CPU
        ]
        assert len(cpu_spans) == 4
        # one CPU: reduces never overlap even though two groups feed it
        cpu_spans.sort(key=lambda s: s.start_ms)
        for prev, cur in zip(cpu_spans, cpu_spans[1:]):
            assert cur.start_ms >= prev.end_ms - 1e-9

    def test_more_groups_raise_overlap_speedup(self):
        one = BatchMsmScheduler(MultiGpuSystem(8), CONFIG, gpu_groups=1).schedule(
            _requests(8)
        )
        four = BatchMsmScheduler(MultiGpuSystem(8), CONFIG, gpu_groups=4).schedule(
            _requests(8)
        )
        assert four.speedup >= one.speedup

    def test_invalid_group_counts_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            BatchMsmScheduler(MultiGpuSystem(4), CONFIG, gpu_groups=0)
        with pytest.raises(ValueError, match="at least as many GPUs"):
            BatchMsmScheduler(MultiGpuSystem(2), CONFIG, gpu_groups=4)


class TestGroupPolicy:
    def _mixed(self, count: int = 8) -> list:
        # alternating big/small: round-robin with 2 groups piles every big
        # MSM onto group 0 while group 1 runs only the small ones
        return [
            MsmRequest(f"r{i}", BLS, (1 << 20) if i % 2 == 0 else (1 << 12))
            for i in range(count)
        ]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            BatchMsmScheduler(MultiGpuSystem(4), CONFIG, policy="random")

    def test_policies_agree_on_uniform_requests(self):
        rr = BatchMsmScheduler(
            MultiGpuSystem(4), CONFIG, gpu_groups=2, policy="round-robin"
        ).schedule(_requests(6))
        ll = BatchMsmScheduler(
            MultiGpuSystem(4), CONFIG, gpu_groups=2, policy="least-loaded"
        ).schedule(_requests(6))
        # identical work items: both policies balance perfectly
        assert ll.makespan_ms == pytest.approx(rr.makespan_ms)

    def test_least_loaded_beats_round_robin_on_mixed_sizes(self):
        """The regression round-robin provably loses: alternating sizes."""
        reqs = self._mixed()
        rr = BatchMsmScheduler(
            MultiGpuSystem(4), CONFIG, gpu_groups=2, policy="round-robin"
        ).schedule(reqs)
        ll = BatchMsmScheduler(
            MultiGpuSystem(4), CONFIG, gpu_groups=2, policy="least-loaded"
        ).schedule(reqs)
        assert ll.makespan_ms < rr.makespan_ms

    def test_least_loaded_schedule_passes_audit(self):
        batch = BatchMsmScheduler(
            MultiGpuSystem(4), CONFIG, gpu_groups=2, policy="least-loaded"
        ).schedule(self._mixed(6))
        checked = verify_timeline(batch.timeline, subject="least-loaded batch")
        assert checked.ok, [str(v) for v in checked.violations]
