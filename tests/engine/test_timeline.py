"""The event loop itself: dispatch order, resources, stages, reporting."""

import pytest
from hypothesis import given, strategies as st

from repro.engine import (
    GPU_COMPUTE,
    HOST_CPU,
    Resource,
    Stage,
    Task,
    TimelineBuilder,
    simulate,
    system_resources,
)

GPU = Resource("gpu0", GPU_COMPUTE, 0)
GPU1 = Resource("gpu1", GPU_COMPUTE, 1)
CPU = Resource("cpu", HOST_CPU)


class TestSimulate:
    def test_empty(self):
        t = simulate([])
        assert t.total_ms == 0.0
        assert t.spans == {}
        assert t.critical_path() == []
        assert t.utilization() == {}

    def test_single_task(self):
        t = simulate([Task("a", GPU, 5.0)])
        assert t.total_ms == 5.0
        assert t.span("a").start_ms == 0.0
        assert t.span("a").end_ms == 5.0

    def test_dependency_ordering(self):
        t = simulate([
            Task("a", GPU, 3.0),
            Task("b", CPU, 2.0, deps=("a",)),
        ])
        assert t.span("b").start_ms == 3.0
        assert t.total_ms == 5.0

    def test_resource_serialises_fifo(self):
        t = simulate([Task("a", GPU, 3.0), Task("b", GPU, 2.0)])
        # same resource: b queues behind a even with no dependency
        assert t.span("b").start_ms == 3.0
        assert t.total_ms == 5.0

    def test_independent_resources_run_concurrently(self):
        t = simulate([Task("a", GPU, 3.0), Task("b", CPU, 2.0)])
        assert t.span("a").start_ms == 0.0
        assert t.span("b").start_ms == 0.0
        assert t.total_ms == 3.0

    def test_diamond(self):
        t = simulate([
            Task("src", GPU, 1.0),
            Task("left", GPU, 2.0, deps=("src",)),
            Task("right", GPU1, 4.0, deps=("src",)),
            Task("sink", CPU, 1.0, deps=("left", "right")),
        ])
        assert t.span("sink").start_ms == 5.0
        assert t.total_ms == 6.0
        assert t.critical_path() == ["src", "right", "sink"]

    def test_zero_duration_tasks_allowed(self):
        t = simulate([Task("marker", CPU, 0.0)])
        assert t.total_ms == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="negative duration"):
            Task("bad", GPU, -1.0)

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            simulate([Task("a", GPU, 1.0), Task("a", CPU, 1.0)])

    def test_unknown_dep_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            simulate([Task("a", GPU, 1.0, deps=("ghost",))])

    def test_cycle_detected(self):
        with pytest.raises(ValueError, match="cycle"):
            simulate([
                Task("a", GPU, 1.0, deps=("b",)),
                Task("b", GPU, 1.0, deps=("a",)),
            ])

    def test_deterministic_tie_break_by_submission_order(self):
        # both ready at t=0 on one resource: submission order wins
        t = simulate([Task("second", GPU, 1.0), Task("first", GPU, 1.0)])
        assert t.span("second").start_ms == 0.0
        assert t.span("first").start_ms == 1.0


class TestReporting:
    def _timeline(self):
        return simulate([
            Task("g", GPU, 4.0, stage="compute"),
            Task("c", CPU, 1.0, deps=("g",), stage="reduce"),
        ])

    def test_busy_and_utilization(self):
        t = self._timeline()
        assert t.busy_ms() == {"gpu0": 4.0, "cpu": 1.0}
        util = t.utilization()
        assert util["gpu0"] == pytest.approx(0.8)
        assert util["cpu"] == pytest.approx(0.2)

    def test_stage_spans(self):
        spans = self._timeline().stage_spans()
        assert spans["compute"] == (0.0, 4.0)
        assert spans["reduce"] == (4.0, 5.0)

    def test_render_mentions_resources(self):
        text = self._timeline().render(width=20)
        assert "gpu0" in text and "cpu" in text
        assert "makespan" in text

    def test_critical_path_follows_queue_binding(self):
        t = simulate([
            Task("a", GPU, 3.0),
            Task("b", GPU, 2.0),  # queued behind a, no dep edge
        ])
        assert t.critical_path() == ["a", "b"]


class TestBuilder:
    def test_barrier_stages_serialise_phases(self):
        b = TimelineBuilder()
        b.barrier_stage("phase1")
        b.add("p1-a", GPU, 2.0)
        b.add("p1-b", GPU1, 3.0)
        b.barrier_stage("phase2")
        b.add("p2-a", GPU, 1.0)
        t = b.build()
        # phase2 waits for the slowest phase-1 task despite a free gpu0
        assert t.span("p2-a").start_ms == 3.0
        assert [s.name for s in t.stages] == ["phase1", "phase2"]

    def test_explicit_stage_bypasses_barrier(self):
        b = TimelineBuilder()
        b.barrier_stage("phase1")
        b.add("slow", GPU, 5.0)
        b.barrier_stage("phase2")
        b.add("free", GPU1, 1.0, stage="side")
        t = b.build()
        assert t.span("free").start_ms == 0.0

    def test_stage_labels_recorded(self):
        b = TimelineBuilder()
        b.barrier_stage("only")
        b.add("x", GPU, 1.0)
        t = b.build()
        assert t.span("x").stage == "only"
        assert t.stages == (Stage("only", ("x",)),)


class TestSystemResources:
    def test_channels_per_node(self):
        r = system_resources(16)
        assert len(r.gpus) == 16
        assert len(r.channels) == 2
        assert r.channel_for_gpu(0).name == "node0-link"
        assert r.channel_for_gpu(8).name == "node1-link"
        assert len(r.all()) == 19

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            system_resources(0)


class TestScheduleProperties:
    @given(
        durations=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=12,
        ),
        chain=st.booleans(),
    )
    def test_makespan_bounds(self, durations, chain):
        """Makespan is at least the busiest resource and at most the sum."""
        tasks = []
        for i, d in enumerate(durations):
            res = GPU if i % 2 == 0 else CPU
            deps = (f"t{i-1}",) if chain and i > 0 else ()
            tasks.append(Task(f"t{i}", res, d, deps=deps))
        t = simulate(tasks)
        busiest = max(t.busy_ms().values(), default=0.0)
        assert t.total_ms >= busiest - 1e-9
        assert t.total_ms <= sum(durations) + 1e-9
        if chain:
            assert t.total_ms == pytest.approx(sum(durations))
