"""Fault injection semantics of the event-driven simulator."""

import pytest

from repro.engine.faults import (
    FaultPlan,
    GpuFailure,
    RetryPolicy,
    Straggler,
    TransferError,
    channel_resource_name,
    gpu_resource_name,
)
from repro.engine.resources import system_resources
from repro.engine.timeline import Task, simulate


@pytest.fixture()
def rig():
    """Two GPUs, one link: a -> t_a, b -> t_b, c after both transfers."""
    res = system_resources(2)
    g0, g1 = res.gpus
    link = res.channels[0]
    tasks = [
        Task("a", g0, 2.0),
        Task("b", g1, 3.0),
        Task("t_a", link, 1.0, ("a",), requires_alive=("gpu0",)),
        Task("t_b", link, 1.0, ("b",), requires_alive=("gpu1",)),
        Task("c", g0, 1.0, ("t_a", "t_b")),
    ]
    return res, tasks


class TestResourceNames:
    def test_resource_names(self):
        assert gpu_resource_name(3) == "gpu3"
        assert channel_resource_name(1) == "node1-link"
        assert GpuFailure(1.0, 3).resource == "gpu3"
        assert Straggler(2, 1.5).resource == "gpu2"
        assert TransferError(1, 0.5).resource == "node1-link"


class TestEventValidation:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: GpuFailure(-1.0, 0),
            lambda: GpuFailure(float("nan"), 0),
            lambda: GpuFailure(1.0, -1),
            lambda: Straggler(0, 0.5),
            lambda: Straggler(-1, 2.0),
            lambda: TransferError(-1, 1.0),
            lambda: TransferError(0, -1.0),
            lambda: RetryPolicy(max_retries=-1),
            lambda: RetryPolicy(backoff_base_ms=0.0),
        ],
    )
    def test_rejected(self, make):
        with pytest.raises(ValueError):
            make()

    def test_duplicate_gpu_failure_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.of(GpuFailure(1.0, 0), GpuFailure(2.0, 0))

    def test_duplicate_straggler_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.of(Straggler(0, 2.0), Straggler(0, 3.0))

    def test_plan_accessors(self):
        plan = FaultPlan.of(
            GpuFailure(2.0, 1),
            Straggler(0, 1.5),
            TransferError(0, 4.0),
            TransferError(0, 1.0),
        )
        assert plan.death_times() == {"gpu1": 2.0}
        assert plan.gpu_death_times() == {1: 2.0}
        assert plan.slowdowns() == {"gpu0": 1.5}
        errors = plan.transfer_errors()["node0-link"]
        assert [e.at_ms for e in errors] == [1.0, 4.0]
        assert not plan.empty
        assert FaultPlan().empty

    def test_backoff_is_exponential(self):
        policy = RetryPolicy(max_retries=3, backoff_base_ms=0.5)
        assert [policy.delay_ms(k) for k in (1, 2, 3)] == [0.5, 1.0, 2.0]


class TestGpuDeath:
    def test_kill_mid_task(self, rig):
        _, tasks = rig
        tl = simulate(tasks, faults=FaultPlan.of(GpuFailure(1.0, 0)))
        assert not tl.ok
        killed = tl.failure_for("a")
        assert killed is not None
        assert killed.reason == "killed"
        assert killed.at_ms == 1.0
        assert killed.start_ms == 0.0
        # the chain behind the dead GPU cascades
        assert tl.failure_for("t_a").reason == "dep-failed"
        assert tl.failure_for("c").reason == "dep-failed"
        # the other GPU is untouched
        assert "b" in tl.spans and "t_b" in tl.spans

    def test_death_before_start_is_resource_dead(self, rig):
        _, tasks = rig
        tl = simulate(tasks, faults=FaultPlan.of(GpuFailure(0.0, 0)))
        assert tl.failure_for("a").reason == "resource-dead"

    def test_requires_alive_kills_inflight_transfer(self, rig):
        # gpu0 dies at 2.5: task a (ends 2.0) completed, but its transfer
        # [2.0, 3.0) holds gpu0 memory and dies with it
        _, tasks = rig
        tl = simulate(tasks, faults=FaultPlan.of(GpuFailure(2.5, 0)))
        assert "a" in tl.spans
        failure = tl.failure_for("t_a")
        assert failure.reason == "killed"
        assert failure.at_ms == 2.5
        # the link frees at the abort time, so t_b proceeds afterwards
        assert tl.spans["t_b"].start_ms >= 2.5

    def test_makespan_includes_aborted_work(self, rig):
        _, tasks = rig
        tl = simulate(tasks, faults=FaultPlan.of(GpuFailure(10.0, 1)))
        # everything completes before the far-future death: no failures
        assert tl.ok

    def test_failure_total_counts(self, rig):
        _, tasks = rig
        tl = simulate(tasks, faults=FaultPlan.of(GpuFailure(2.9, 1)))
        assert tl.failure_for("b").at_ms == 2.9
        assert tl.total_ms >= 2.9


class TestStraggler:
    def test_slowdown_stretches_duration(self, rig):
        _, tasks = rig
        tl = simulate(tasks, faults=FaultPlan.of(Straggler(1, 2.0)))
        assert tl.spans["b"].duration_ms == pytest.approx(6.0)
        assert tl.spans["a"].duration_ms == pytest.approx(2.0)
        assert tl.ok

    def test_slower_makespan(self, rig):
        _, tasks = rig
        base = simulate(tasks).total_ms
        slow = simulate(tasks, faults=FaultPlan.of(Straggler(1, 3.0))).total_ms
        assert slow > base


class TestTransferErrors:
    def test_transient_retry_with_backoff(self, rig):
        _, tasks = rig
        policy = RetryPolicy(max_retries=3, backoff_base_ms=0.5)
        # t_a runs [2.0, 3.0); the error at 2.2 aborts attempt 1
        tl = simulate(
            tasks, faults=FaultPlan.of(TransferError(0, 2.2)), retry=policy
        )
        assert tl.ok
        (attempt,) = tl.attempts_for("t_a")
        assert attempt.attempt == 1
        assert attempt.start_ms == 2.0
        assert attempt.end_ms == 2.2
        assert attempt.retry_at_ms == pytest.approx(2.7)
        assert tl.spans["t_a"].start_ms >= 2.7

    def test_exhausted_retries_fail(self, rig):
        _, tasks = rig
        policy = RetryPolicy(max_retries=1, backoff_base_ms=0.1)
        # errors at every retry window: attempt 1 at 2.05, attempt 2 after
        plan = FaultPlan.of(
            TransferError(0, 2.05), TransferError(0, 2.5), TransferError(0, 3.5)
        )
        tl = simulate(tasks, faults=plan, retry=policy)
        failure = tl.failure_for("t_a")
        assert failure is not None
        assert failure.reason == "transfer-error"
        assert tl.failure_for("c").reason == "dep-failed"

    def test_permanent_error_fails_immediately(self, rig):
        _, tasks = rig
        plan = FaultPlan.of(TransferError(0, 2.2, transient=False))
        tl = simulate(tasks, faults=plan)
        assert tl.failure_for("t_a").reason == "transfer-error"
        assert tl.attempts_for("t_a") == ()

    def test_error_on_idle_link_expires_silently(self, rig):
        _, tasks = rig
        plan = FaultPlan.of(TransferError(0, 0.5))  # no transfer in flight
        tl = simulate(tasks, faults=plan)
        assert tl.ok
        assert tl.attempts == ()

    def test_each_event_consumed_once(self, rig):
        _, tasks = rig
        # one error, two queued transfers: only the in-flight one aborts
        tl = simulate(tasks, faults=FaultPlan.of(TransferError(0, 2.2)))
        assert len(tl.attempts) == 1


class TestDeterminism:
    def test_identical_replay(self, rig):
        _, tasks = rig
        plan = FaultPlan.of(
            GpuFailure(2.5, 0), Straggler(1, 1.5), TransferError(0, 4.6)
        )
        a = simulate(tasks, faults=plan)
        b = simulate(tasks, faults=plan)
        assert a.spans == b.spans
        assert a.failures == b.failures
        assert a.attempts == b.attempts
        assert a.total_ms == b.total_ms

    def test_no_faults_matches_plain_simulate(self, rig):
        _, tasks = rig
        assert simulate(tasks).spans == simulate(tasks, faults=FaultPlan()).spans


class TestTaskFields:
    def test_not_before_delays_start(self, rig):
        res, _ = rig
        tl = simulate([Task("late", res.gpus[0], 1.0, not_before_ms=5.0)])
        assert tl.spans["late"].start_ms == 5.0

    def test_negative_not_before_rejected(self, rig):
        res, _ = rig
        with pytest.raises(ValueError):
            Task("bad", res.gpus[0], 1.0, not_before_ms=-1.0)
