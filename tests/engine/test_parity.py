"""Engine-vs-legacy parity: the refactor must not move a single number.

* legacy mode: the emitted timeline's makespan equals ``PhaseTimes.total``
  (time within 1e-9, counters bitwise the same across backends);
* ``schedule_pipeline`` rebuilt on the engine reproduces the classic
  two-machine flow-shop recurrence and closed form exactly.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm
from repro.core.msm_timeline import TIMELINE_MODES, build_msm_timeline
from repro.core.multi_msm import (
    MsmJob,
    identical_jobs_makespan,
    schedule_pipeline,
)
from repro.curves.params import curve_by_name
from repro.curves.sampling import sample_points, sample_scalars
from repro.curves.toy import toy_curve
from repro.gpu.cluster import MultiGpuSystem

BLS = curve_by_name("BLS12-381")

CONFIGS = {
    "default": DistMsmConfig(window_size=10),
    "gpu-reduce": DistMsmConfig(window_size=10, bucket_reduce_on_cpu=False),
    "ndim": DistMsmConfig(window_size=10, multi_gpu="ndim"),
    "windows": DistMsmConfig(window_size=10, multi_gpu="windows"),
    "signed": DistMsmConfig(window_size=10, signed_digits=True),
    "precompute": DistMsmConfig(
        window_size=10, signed_digits=True, precompute=True
    ),
    "naive-scatter": DistMsmConfig(window_size=10, scatter="naive"),
}


class TestEstimateTimelineParity:
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    @pytest.mark.parametrize("gpus", [1, 3, 8, 16])
    def test_legacy_timeline_total_equals_phase_times(self, name, gpus):
        engine = DistMsm(MultiGpuSystem(gpus), CONFIGS[name])
        result = engine.estimate(BLS, 1 << 18)
        assert result.timeline is not None
        assert result.timeline.total_ms == pytest.approx(
            result.times.total, abs=1e-9
        )
        assert result.time_ms == pytest.approx(result.times.total)

    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_all_modes_schedule_the_same_work(self, name):
        engine = DistMsm(MultiGpuSystem(4), CONFIGS[name])
        result = engine.estimate(BLS, 1 << 16)
        assert result.breakdown is not None
        resources = engine.system.resources()
        serial = build_msm_timeline(result.breakdown, resources, mode="serial")
        overlap = build_msm_timeline(result.breakdown, resources, mode="overlap")
        # overlap can only help; serial is the pessimistic bound
        assert overlap.total_ms <= serial.total_ms + 1e-9
        assert result.timeline.total_ms <= serial.total_ms + 1e-9

    def test_unknown_mode_rejected(self):
        engine = DistMsm(MultiGpuSystem(2), CONFIGS["default"])
        result = engine.estimate(BLS, 1 << 16)
        with pytest.raises(ValueError, match="unknown timeline mode"):
            build_msm_timeline(
                result.breakdown, engine.system.resources(), mode="bogus"
            )

    def test_modes_tuple_is_exhaustive(self):
        assert TIMELINE_MODES == ("legacy", "serial", "overlap")


class TestExecuteTimelineParity:
    @pytest.mark.parametrize(
        "name", ["default", "gpu-reduce", "ndim", "signed", "precompute"]
    )
    def test_functional_run_carries_matching_timeline(self, name):
        curve = toy_curve()
        cfg_small = DistMsmConfig(
            window_size=4,
            scatter=CONFIGS[name].scatter,
            bucket_reduce_on_cpu=CONFIGS[name].bucket_reduce_on_cpu,
            multi_gpu=CONFIGS[name].multi_gpu,
            signed_digits=CONFIGS[name].signed_digits,
            precompute=CONFIGS[name].precompute,
        )
        engine = DistMsm(MultiGpuSystem(2), cfg_small)
        scalars = sample_scalars(curve, 24, seed=5)
        points = sample_points(curve, 24, seed=6)
        result = engine.execute(scalars, points, curve)
        assert result.timeline is not None
        assert result.timeline.total_ms == pytest.approx(
            result.times.total, abs=1e-9
        )

    def test_empty_input_has_empty_timeline(self):
        engine = DistMsm(MultiGpuSystem(2), CONFIGS["default"])
        result = engine.execute([], [], toy_curve())
        assert result.timeline is not None
        assert result.timeline.total_ms == 0.0
        assert result.timeline.spans == {}


class TestNodeSyncConfig:
    def test_default_matches_legacy_constant(self):
        assert DistMsmConfig().node_sync_ms == 0.2

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="node_sync_ms"):
            DistMsmConfig(node_sync_ms=-0.1)

    def test_sweeping_node_sync_shifts_transfer_phase(self):
        base = DistMsm(
            MultiGpuSystem(8), DistMsmConfig(window_size=10, node_sync_ms=0.0)
        )
        slow = DistMsm(
            MultiGpuSystem(8), DistMsmConfig(window_size=10, node_sync_ms=1.5)
        )
        t0 = base.estimate(BLS, 1 << 18)
        t1 = slow.estimate(BLS, 1 << 18)
        assert t1.times.transfer == pytest.approx(t0.times.transfer + 1.5)
        assert t1.time_ms == pytest.approx(t0.time_ms + 1.5)


def _legacy_flow_shop(jobs):
    """The pre-engine recurrence, verbatim, as the parity oracle."""
    gpu_free = cpu_free = 0.0
    timeline = []
    for job in jobs:
        gpu_start = gpu_free
        gpu_end = gpu_start + job.gpu_ms
        cpu_start = max(gpu_end, cpu_free)
        cpu_end = cpu_start + job.cpu_ms
        gpu_free, cpu_free = gpu_end, cpu_end
        timeline.append((job.label, gpu_start, gpu_end, cpu_start, cpu_end))
    return timeline, (cpu_free if jobs else 0.0)


class TestFlowShopParity:
    @given(
        stages=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            ),
            max_size=10,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_engine_reproduces_legacy_recurrence(self, stages):
        jobs = [MsmJob(f"j{i}", g, c) for i, (g, c) in enumerate(stages)]
        schedule = schedule_pipeline(jobs)
        expected_timeline, expected_makespan = _legacy_flow_shop(jobs)
        assert schedule.timeline == expected_timeline  # bitwise, no approx
        assert schedule.pipelined_ms == expected_makespan

    @given(
        gpu_ms=st.floats(min_value=0.01, max_value=40.0, allow_nan=False),
        cpu_ms=st.floats(min_value=0.01, max_value=40.0, allow_nan=False),
        count=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_identical_jobs_closed_form(self, gpu_ms, cpu_ms, count):
        jobs = [MsmJob(f"j{i}", gpu_ms, cpu_ms) for i in range(count)]
        schedule = schedule_pipeline(jobs)
        assert schedule.pipelined_ms == pytest.approx(
            identical_jobs_makespan(gpu_ms, cpu_ms, count)
        )

    def test_engine_timeline_attached(self):
        schedule = schedule_pipeline([MsmJob("a", 2.0, 1.0)])
        assert schedule.engine_timeline is not None
        assert schedule.engine_timeline.total_ms == pytest.approx(3.0)

    def test_negative_job_rejected(self):
        with pytest.raises(ValueError, match="negative stage time"):
            schedule_pipeline([MsmJob("bad", -1.0, 1.0)])
