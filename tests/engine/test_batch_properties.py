"""Property tests for BatchMsmScheduler's least-loaded policy.

The cluster router trusts the scheduler's group assignment to be
deterministic and fair, so the tie-breaking contract is pinned down by
Hypothesis: under equal loads the policy must break ties by the lowest
group index (making it reproducible run to run), and as long as there
are at least as many requests as groups, no group may starve.
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import DistMsmConfig
from repro.curves.params import curve_by_name
from repro.engine import BatchMsmScheduler, MsmRequest
from repro.gpu.cluster import MultiGpuSystem

BLS = curve_by_name("BLS12-381")
CONFIG = DistMsmConfig(window_size=10)


def _assignment(tasks) -> dict[int, int]:
    """request index -> gpu group, parsed from the emitted GPU tasks."""
    groups = {}
    for task in tasks:
        if task.name.endswith(":gpu"):
            index = int(task.name.rsplit("#", 1)[1].split(":")[0])
            groups[index] = task.resource.index
    return groups


def _schedule(log_ns: list[int], gpu_groups: int) -> dict[int, int]:
    scheduler = BatchMsmScheduler(
        MultiGpuSystem(4),
        CONFIG,
        gpu_groups=gpu_groups,
        policy="least-loaded",
    )
    requests = [MsmRequest(f"r{i}", BLS, 1 << ln) for i, ln in enumerate(log_ns)]
    tasks, _, _ = scheduler.emit_tasks(requests)
    return _assignment(tasks)


@settings(max_examples=30, deadline=None)
@given(
    gpu_groups=st.sampled_from([1, 2, 4]),
    log_ns=st.lists(st.integers(min_value=12, max_value=18), min_size=1, max_size=10),
)
def test_least_loaded_is_deterministic(gpu_groups, log_ns):
    """The same requests always land on the same groups."""
    assert _schedule(log_ns, gpu_groups) == _schedule(log_ns, gpu_groups)


@settings(max_examples=30, deadline=None)
@given(
    gpu_groups=st.sampled_from([2, 4]),
    log_ns=st.lists(st.integers(min_value=12, max_value=18), min_size=4, max_size=12),
)
def test_least_loaded_never_starves_a_group(gpu_groups, log_ns):
    """With >= one request per group, every group receives work."""
    assignment = _schedule(log_ns, gpu_groups)
    assert set(assignment.values()) == set(range(gpu_groups))


@settings(max_examples=30, deadline=None)
@given(
    gpu_groups=st.sampled_from([2, 4]),
    count=st.integers(min_value=2, max_value=12),
    log_n=st.integers(min_value=12, max_value=18),
)
def test_equal_loads_break_ties_by_group_index(gpu_groups, count, log_n):
    """Identical requests degrade to round-robin: ties go to the lowest
    group, so after each full cycle the loads equalise again."""
    assignment = _schedule([log_n] * count, gpu_groups)
    for i in range(count):
        assert assignment[i] == i % gpu_groups


@settings(max_examples=20, deadline=None)
@given(
    log_ns=st.lists(st.integers(min_value=12, max_value=18), min_size=2, max_size=10),
)
def test_first_requests_fan_out_before_any_group_doubles_up(log_ns):
    """From an idle start the first G requests land on G distinct groups."""
    gpu_groups = 4
    assignment = _schedule(log_ns, gpu_groups)
    head = [assignment[i] for i in range(min(gpu_groups, len(log_ns)))]
    assert head == list(range(len(head)))
