"""Differential: the int-indexed ``simulate`` loop vs the frozen reference.

``repro.engine.timeline.simulate`` was rewritten around a ready-heap over
integer task ids; ``repro.engine._reference.reference_simulate`` preserves
the original dict-keyed loop verbatim.  These tests pin the rewrite to the
reference across seeded random DAGs — fault-free and under fault plans
with retry backoff — over the *whole* observable Timeline surface: span
insertion order, makespan, bindings, failures, attempts, per-resource
busy time, critical path, stage envelopes, rendering, and the audit
lookups.  A Chrome-trace export of both timelines must serialize to the
same bytes.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

import pytest

from repro.engine._reference import reference_simulate
from repro.engine.faults import (
    FaultPlan,
    GpuFailure,
    RetryPolicy,
    Straggler,
    TransferError,
)
from repro.engine.resources import GPU_COMPUTE, HOST_CPU, TRANSFER, Resource
from repro.engine.timeline import Stage, Task, simulate
from repro.observe import Tracer, record_timeline, to_chrome_json

NUM_GPUS = 4


def _resources() -> list[Resource]:
    gpus = [Resource(f"gpu{i}", GPU_COMPUTE, i) for i in range(NUM_GPUS)]
    links = [Resource(f"node{n}-link", TRANSFER, n) for n in range(2)]
    return gpus + links + [Resource("cpu", HOST_CPU, 0)]


def _random_tasks(n: int, seed: int) -> tuple[list[Task], tuple[Stage, ...]]:
    """A random DAG exercising stages, release times and liveness deps."""
    rng = random.Random(seed)
    resources = _resources()
    tasks = []
    for i in range(n):
        lo = max(0, i - 20)
        deps = (
            tuple({f"t{rng.randrange(lo, i)}" for _ in range(rng.randrange(0, 3))})
            if i
            else ()
        )
        duration = rng.choice([0.0, rng.uniform(0.01, 3.0), rng.uniform(0.01, 3.0)])
        requires = (
            (f"gpu{rng.randrange(NUM_GPUS)}",) if rng.random() < 0.15 else ()
        )
        tasks.append(
            Task(
                f"t{i}",
                resources[rng.randrange(len(resources))],
                duration,
                deps,
                stage=f"s{i * 3 // max(n, 1)}",
                not_before_ms=rng.choice([0.0, 0.0, rng.uniform(0.0, 5.0)]),
                requires_alive=requires,
            )
        )
    stages = tuple(
        Stage(f"s{k}", tuple(t.name for t in tasks if t.stage == f"s{k}"))
        for k in range(3)
    )
    return tasks, stages


def _random_faults(seed: int) -> tuple[FaultPlan, RetryPolicy]:
    """A fault plan with deduped GPU events plus transfer errors."""
    rng = random.Random(f"faults-{seed}")
    events: list = []
    dead, slow = set(), set()
    for _ in range(rng.randrange(1, 4)):
        kind = rng.randrange(3)
        gpu = rng.randrange(NUM_GPUS)
        if kind == 0 and gpu not in dead:
            dead.add(gpu)
            events.append(GpuFailure(at_ms=rng.uniform(0.0, 20.0), gpu_id=gpu))
        elif kind == 1 and gpu not in slow:
            slow.add(gpu)
            events.append(Straggler(gpu_id=gpu, slowdown=rng.uniform(1.1, 4.0)))
        else:
            events.append(
                TransferError(
                    node=rng.randrange(2),
                    at_ms=rng.uniform(0.0, 30.0),
                    transient=rng.random() < 0.7,
                )
            )
    retry = RetryPolicy(
        max_retries=rng.randrange(0, 4), backoff_base_ms=rng.choice([0.25, 0.5, 2.0])
    )
    return FaultPlan(tuple(events)), retry


def _assert_identical(got, want) -> None:
    """Every observable of the two timelines, including iteration order."""
    assert list(got.spans.items()) == list(want.spans.items())
    assert got.total_ms == want.total_ms
    assert got.binding == want.binding
    assert got.failures == want.failures
    assert got.attempts == want.attempts
    assert got.ok == want.ok
    assert got.busy_ms() == want.busy_ms()
    assert got.critical_path() == want.critical_path()
    assert got.stage_spans() == want.stage_spans()
    assert got.render() == want.render()
    for task in want.tasks:
        assert got.failure_for(task.name) == want.failure_for(task.name)
        assert got.attempts_for(task.name) == want.attempts_for(task.name)


@pytest.mark.parametrize("seed", range(10))
def test_fault_free_random_dags(seed):
    tasks, stages = _random_tasks(120, seed)
    _assert_identical(simulate(tasks, stages), reference_simulate(tasks, stages))


@pytest.mark.parametrize("seed", range(10))
def test_faulted_random_dags(seed):
    tasks, stages = _random_tasks(120, seed)
    plan, retry = _random_faults(seed)
    _assert_identical(
        simulate(tasks, stages, faults=plan, retry=retry),
        reference_simulate(tasks, stages, faults=plan, retry=retry),
    )


def test_retry_backoff_chain():
    """A serial transfer chain hammered by transient errors retries the
    same way through both loops (attempt numbering and backoff release)."""
    link = Resource("node0-link", TRANSFER, 0)
    tasks = [Task(f"t{i}", link, 1.0, (f"t{i - 1}",) if i else ()) for i in range(40)]
    rng = random.Random(3)
    plan = FaultPlan(
        tuple(TransferError(node=0, at_ms=rng.uniform(0, 40.0)) for _ in range(10))
    )
    retry = RetryPolicy(max_retries=2, backoff_base_ms=0.5)
    got = simulate(tasks, faults=plan, retry=retry)
    want = reference_simulate(tasks, faults=plan, retry=retry)
    assert got.attempts, "fault plan failed to trigger any retries"
    _assert_identical(got, want)


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n=st.integers(min_value=1, max_value=60),
    faulted=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_hypothesis_random_dags(seed, n, faulted):
    tasks, stages = _random_tasks(n, seed)
    if faulted:
        plan, retry = _random_faults(seed)
    else:
        plan, retry = None, None
    _assert_identical(
        simulate(tasks, stages, faults=plan, retry=retry),
        reference_simulate(tasks, stages, faults=plan, retry=retry),
    )


def test_tracer_matches_reference_chrome_trace():
    """The traces transcribed from both loops serialize identically."""
    tasks, stages = _random_tasks(80, seed=21)
    plan, retry = _random_faults(21)

    new_tracer = Tracer(label="simulate")
    simulate(tasks, stages, faults=plan, retry=retry, tracer=new_tracer)

    ref_tracer = Tracer(label="simulate")
    record_timeline(
        ref_tracer, reference_simulate(tasks, stages, faults=plan, retry=retry)
    )

    assert to_chrome_json(new_tracer, indent=2) == to_chrome_json(ref_tracer, indent=2)


def test_empty_and_single_task():
    _assert_identical(simulate([]), reference_simulate([]))
    one = [Task("only", Resource("gpu0", GPU_COMPUTE, 0), 1.5)]
    _assert_identical(simulate(one), reference_simulate(one))
