"""Curve registry validation — including the paper's Table 1 bit widths."""

import pytest

from repro.curves.numtheory import is_probable_prime
from repro.curves.params import curve_by_name, list_curves
from repro.curves.point import AffinePoint, pmul


class TestRegistry:
    def test_four_curves_registered(self):
        assert [c.name for c in list_curves()] == [
            "BN254",
            "BLS12-377",
            "BLS12-381",
            "MNT4753",
        ]

    def test_lookup_case_insensitive(self):
        assert curve_by_name("bn254").name == "BN254"

    def test_unknown_curve_raises(self):
        with pytest.raises(KeyError):
            curve_by_name("secp256k1")

    def test_module_level_constants(self):
        from repro.curves import params

        assert params.BLS12_377.name == "BLS12-377"
        with pytest.raises(AttributeError):
            params.NOPE  # noqa: B018


class TestTable1BitWidths:
    """Paper Table 1: scalar and point bit counts per curve."""

    @pytest.mark.parametrize(
        "name,scalar_bits,field_bits",
        [
            ("BN254", 254, 254),
            ("BLS12-377", 253, 377),
            ("BLS12-381", 255, 381),
            ("MNT4753", 753, 753),
        ],
    )
    def test_bit_widths(self, name, scalar_bits, field_bits):
        curve = curve_by_name(name)
        assert curve.scalar_bits == scalar_bits
        assert curve.field_bits == field_bits

    @pytest.mark.parametrize(
        "name,limbs", [("BN254", 8), ("BLS12-377", 12), ("BLS12-381", 12), ("MNT4753", 24)]
    )
    def test_limb_counts(self, name, limbs):
        assert curve_by_name(name).num_limbs == limbs


class TestParameterSoundness:
    @pytest.mark.parametrize("name", ["BN254", "BLS12-377", "BLS12-381", "MNT4753"])
    def test_field_modulus_prime(self, name):
        assert is_probable_prime(curve_by_name(name).p)

    @pytest.mark.parametrize("name", ["BN254", "BLS12-377", "BLS12-381"])
    def test_scalar_modulus_prime(self, name):
        assert is_probable_prime(curve_by_name(name).r)

    def test_generators_on_curve(self, any_curve):
        assert any_curve.is_on_curve(any_curve.gx, any_curve.gy)

    @pytest.mark.parametrize("name", ["BN254", "BLS12-377", "BLS12-381"])
    @pytest.mark.slow
    def test_generator_has_order_r(self, name):
        curve = curve_by_name(name)
        generator = AffinePoint(curve.gx, curve.gy)
        assert pmul(generator, curve.r, curve).infinity

    def test_synthetic_flag(self):
        assert curve_by_name("MNT4753").synthetic
        assert not curve_by_name("BN254").synthetic

    def test_is_on_curve_rejects_off_curve(self, bn254):
        assert not bn254.is_on_curve(1, 3)

    def test_repr(self, bn254):
        assert "BN254" in repr(bn254)
