"""Window decomposition and signed-digit recoding."""

import pytest
from hypothesis import given, strategies as st

from repro.curves.scalar import (
    num_windows,
    reassemble,
    signed_windows,
    unsigned_windows,
)

scalars_253 = st.integers(0, (1 << 253) - 1)
window_sizes = st.integers(1, 24)


class TestNumWindows:
    @pytest.mark.parametrize(
        "bits,s,expected", [(253, 11, 23), (253, 16, 16), (254, 20, 13), (753, 11, 69)]
    )
    def test_paper_window_counts(self, bits, s, expected):
        assert num_windows(bits, s) == expected

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            num_windows(253, 0)


class TestUnsigned:
    def test_docstring_example(self):
        assert unsigned_windows(0b101101, 2, 3) == [1, 3, 2]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            unsigned_windows(-1, 4, 2)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            unsigned_windows(1 << 16, 4, 4)

    @given(scalars_253, window_sizes)
    def test_round_trip(self, k, s):
        digits = unsigned_windows(k, s, num_windows(253, s))
        assert reassemble(digits, s) == k
        assert all(0 <= d < (1 << s) for d in digits)


class TestSigned:
    @given(scalars_253, window_sizes)
    def test_round_trip(self, k, s):
        digits = signed_windows(k, s, num_windows(253, s))
        assert reassemble(digits, s) == k

    @given(scalars_253, window_sizes)
    def test_digit_range(self, k, s):
        digits = signed_windows(k, s, num_windows(253, s))
        half = 1 << (s - 1)
        assert all(-half < d <= half for d in digits[:-1])
        assert digits[-1] in (0, 1)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            signed_windows(-5, 4, 2)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            signed_windows(1 << 20, 4, 4)

    def test_carry_chain(self):
        # all-ones digits force carries through every window
        s = 4
        k = int("f" * 8, 16)
        digits = signed_windows(k, s, 8)
        assert reassemble(digits, s) == k
        assert digits[-1] == 1  # the final carry spills into the extra digit
