"""Instance sampling and batch affine normalisation."""

from repro.curves.point import XyzzPoint, pdbl, to_affine, xyzz_add
from repro.curves.sampling import (
    batch_to_affine,
    msm_instance,
    sample_points,
    sample_scalars,
)

from tests.conftest import TOY_CURVE


class TestScalars:
    def test_deterministic(self, bn254):
        assert sample_scalars(bn254, 10, seed=1) == sample_scalars(bn254, 10, seed=1)

    def test_seed_changes_output(self, bn254):
        assert sample_scalars(bn254, 10, seed=1) != sample_scalars(bn254, 10, seed=2)

    def test_range(self, bn254):
        assert all(0 <= k < bn254.r for k in sample_scalars(bn254, 50, seed=0))


class TestPoints:
    def test_empty(self):
        assert sample_points(TOY_CURVE, 0) == []

    def test_points_on_curve(self):
        for pt in sample_points(TOY_CURVE, 20, seed=3):
            assert TOY_CURVE.is_on_curve(pt.x, pt.y)

    def test_points_on_curve_bn254(self, bn254):
        for pt in sample_points(bn254, 8, seed=3):
            assert bn254.is_on_curve(pt.x, pt.y)

    def test_deterministic(self):
        assert sample_points(TOY_CURVE, 5, seed=9) == sample_points(TOY_CURVE, 5, seed=9)

    def test_walk_structure(self):
        """Consecutive sampled points differ by a constant stride."""
        pts = sample_points(TOY_CURVE, 4, seed=1)
        d01 = xyzz_add(
            XyzzPoint.from_affine(pts[1]),
            XyzzPoint(pts[0].x, (-pts[0].y) % TOY_CURVE.p, 1, 1),
            TOY_CURVE,
        )
        d12 = xyzz_add(
            XyzzPoint.from_affine(pts[2]),
            XyzzPoint(pts[1].x, (-pts[1].y) % TOY_CURVE.p, 1, 1),
            TOY_CURVE,
        )
        assert to_affine(d01, TOY_CURVE) == to_affine(d12, TOY_CURVE)


class TestBatchToAffine:
    def test_empty(self):
        assert batch_to_affine([], TOY_CURVE) == []

    def test_identity_preserved(self):
        out = batch_to_affine([XyzzPoint.identity()], TOY_CURVE)
        assert out[0].infinity

    def test_matches_individual_conversion(self):
        pts = sample_points(TOY_CURVE, 6, seed=2)
        xyzz = [XyzzPoint.from_affine(p) for p in pts]
        doubled = [pdbl(p, TOY_CURVE) for p in xyzz]
        batch = batch_to_affine(doubled, TOY_CURVE)
        individual = [to_affine(p, TOY_CURVE) for p in doubled]
        assert batch == individual

    def test_mixed_identity_and_finite(self):
        pts = sample_points(TOY_CURVE, 3, seed=2)
        mixed = [
            XyzzPoint.identity(),
            pdbl(XyzzPoint.from_affine(pts[0]), TOY_CURVE),
            XyzzPoint.identity(),
            pdbl(XyzzPoint.from_affine(pts[1]), TOY_CURVE),
        ]
        out = batch_to_affine(mixed, TOY_CURVE)
        assert out[0].infinity and out[2].infinity
        assert out[1] == to_affine(mixed[1], TOY_CURVE)
        assert out[3] == to_affine(mixed[3], TOY_CURVE)


class TestInstance:
    def test_shapes(self):
        scalars, points = msm_instance(TOY_CURVE, 12, seed=5)
        assert len(scalars) == len(points) == 12
