"""Jacobian coordinates and wNAF recoding — cross-validated against XYZZ."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.curves.jacobian import (
    JacobianPoint,
    jacobian_add,
    jacobian_double,
    jacobian_mixed_add,
    jacobian_pmul,
    jacobian_to_affine,
)
from repro.curves.point import AffinePoint, pmul, pmul_wnaf
from repro.curves.sampling import sample_points
from repro.curves.scalar import wnaf, wnaf_density

from tests.conftest import TOY_CURVE


@pytest.fixture(scope="module")
def pts():
    return sample_points(TOY_CURVE, 12, seed=77)


class TestJacobian:
    def test_identity_round_trip(self):
        assert jacobian_to_affine(JacobianPoint.identity(), TOY_CURVE).infinity

    def test_affine_round_trip(self, pts):
        j = JacobianPoint.from_affine(pts[0])
        assert jacobian_to_affine(j, TOY_CURVE) == pts[0]

    def test_add_matches_xyzz(self, pts):
        """The load-bearing cross-check between the two coordinate systems."""
        from repro.curves.point import XyzzPoint, to_affine, xyzz_add

        for i in range(len(pts) - 1):
            a, b = pts[i], pts[i + 1]
            via_jac = jacobian_to_affine(
                jacobian_add(
                    JacobianPoint.from_affine(a),
                    JacobianPoint.from_affine(b),
                    TOY_CURVE,
                ),
                TOY_CURVE,
            )
            via_xyzz = to_affine(
                xyzz_add(
                    XyzzPoint.from_affine(a), XyzzPoint.from_affine(b), TOY_CURVE
                ),
                TOY_CURVE,
            )
            assert via_jac == via_xyzz

    def test_double_matches_add(self, pts):
        j = JacobianPoint.from_affine(pts[3])
        via_dbl = jacobian_to_affine(jacobian_double(j, TOY_CURVE), TOY_CURVE)
        via_add = jacobian_to_affine(jacobian_add(j, j, TOY_CURVE), TOY_CURVE)
        assert via_dbl == via_add

    def test_mixed_add_matches_general(self, pts):
        acc = jacobian_double(JacobianPoint.from_affine(pts[0]), TOY_CURVE)
        via_mixed = jacobian_to_affine(
            jacobian_mixed_add(acc, pts[1], TOY_CURVE), TOY_CURVE
        )
        via_general = jacobian_to_affine(
            jacobian_add(acc, JacobianPoint.from_affine(pts[1]), TOY_CURVE),
            TOY_CURVE,
        )
        assert via_mixed == via_general

    def test_inverse_pair_gives_identity(self, pts):
        from repro.curves.point import affine_neg

        a = JacobianPoint.from_affine(pts[2])
        b = JacobianPoint.from_affine(affine_neg(pts[2], TOY_CURVE))
        assert jacobian_add(a, b, TOY_CURVE).is_identity
        assert jacobian_mixed_add(a, affine_neg(pts[2], TOY_CURVE), TOY_CURVE).is_identity

    def test_identity_operands(self, pts):
        j = JacobianPoint.from_affine(pts[0])
        assert jacobian_add(JacobianPoint.identity(), j, TOY_CURVE) == j
        assert jacobian_add(j, JacobianPoint.identity(), TOY_CURVE) == j
        assert jacobian_mixed_add(j, AffinePoint.identity(), TOY_CURVE) == j

    @given(st.integers(0, 5000))
    @settings(max_examples=30, deadline=None)
    def test_pmul_matches_xyzz_pmul(self, k):
        pts = sample_points(TOY_CURVE, 1, seed=5)
        assert jacobian_pmul(pts[0], k, TOY_CURVE) == pmul(pts[0], k, TOY_CURVE)

    def test_negative_scalar(self, pts):
        assert jacobian_pmul(pts[0], -7, TOY_CURVE) == pmul(pts[0], -7, TOY_CURVE)

    def test_order_two_point_doubles_to_identity(self):
        # y == 0 points have order two; synthesise via the curve registry
        for x in range(TOY_CURVE.p):
            if (x**3 + TOY_CURVE.a * x + TOY_CURVE.b) % TOY_CURVE.p == 0:
                pt = JacobianPoint(x, 0, 1)
                assert jacobian_double(pt, TOY_CURVE).is_identity
                return


class TestWnaf:
    @given(st.integers(0, (1 << 128) - 1), st.integers(2, 8))
    @settings(max_examples=40, deadline=None)
    def test_reassembles(self, k, w):
        assert sum(d << i for i, d in enumerate(wnaf(k, w))) == k

    @given(st.integers(1, (1 << 64) - 1), st.integers(2, 6))
    @settings(max_examples=40, deadline=None)
    def test_digit_constraints(self, k, w):
        digits = wnaf(k, w)
        half = 1 << (w - 1)
        for d in digits:
            assert d == 0 or (d % 2 == 1 and -half < d < half)

    @given(st.integers(1, (1 << 64) - 1))
    @settings(max_examples=30, deadline=None)
    def test_nonadjacency(self, k):
        """Width-w NAF: within any w consecutive digits at most one is
        non-zero."""
        w = 3
        digits = wnaf(k, w)
        for i, d in enumerate(digits):
            if d:
                assert all(x == 0 for x in digits[i + 1 : i + w])

    def test_docstring_example(self):
        assert wnaf(7, 2) == [-1, 0, 0, 1]

    def test_negative(self):
        assert wnaf(-7, 2) == [1, 0, 0, -1]

    def test_rejects_narrow_width(self):
        with pytest.raises(ValueError):
            wnaf(5, 1)

    def test_density_sparse(self):
        digits = wnaf((1 << 253) - 12345, 4)
        # expected density 1/(w+1) = 0.2
        assert wnaf_density(digits) < 0.3

    def test_density_empty(self):
        assert wnaf_density([]) == 0.0


class TestPmulWnaf:
    @given(st.integers(0, 5000), st.integers(2, 5))
    @settings(max_examples=30, deadline=None)
    def test_matches_double_and_add(self, k, w):
        pts = sample_points(TOY_CURVE, 1, seed=9)
        assert pmul_wnaf(pts[0], k, TOY_CURVE, w) == pmul(pts[0], k, TOY_CURVE)

    def test_zero_and_identity(self):
        pts = sample_points(TOY_CURVE, 1, seed=9)
        assert pmul_wnaf(pts[0], 0, TOY_CURVE).infinity
        assert pmul_wnaf(AffinePoint.identity(), 5, TOY_CURVE).infinity

    def test_negative(self):
        pts = sample_points(TOY_CURVE, 1, seed=9)
        assert pmul_wnaf(pts[0], -9, TOY_CURVE) == pmul(pts[0], -9, TOY_CURVE)

    def test_bn254(self, bn254):
        g = AffinePoint(bn254.gx, bn254.gy)
        assert pmul_wnaf(g, 123456789, bn254) == pmul(g, 123456789, bn254)


class TestPmulLadder:
    @given(st.integers(0, 5000))
    @settings(max_examples=30, deadline=None)
    def test_matches_double_and_add(self, k):
        from repro.curves.point import pmul_ladder

        pts = sample_points(TOY_CURVE, 1, seed=11)
        assert pmul_ladder(pts[0], k, TOY_CURVE) == pmul(pts[0], k, TOY_CURVE)

    def test_zero_and_identity(self):
        from repro.curves.point import pmul_ladder

        pts = sample_points(TOY_CURVE, 1, seed=11)
        assert pmul_ladder(pts[0], 0, TOY_CURVE).infinity
        assert pmul_ladder(AffinePoint.identity(), 3, TOY_CURVE).infinity

    def test_negative(self):
        from repro.curves.point import pmul_ladder

        pts = sample_points(TOY_CURVE, 1, seed=11)
        assert pmul_ladder(pts[0], -5, TOY_CURVE) == pmul(pts[0], -5, TOY_CURVE)

    def test_bn254(self, bn254):
        from repro.curves.point import pmul_ladder

        g = AffinePoint(bn254.gx, bn254.gy)
        assert pmul_ladder(g, 987654321, bn254) == pmul(g, 987654321, bn254)
