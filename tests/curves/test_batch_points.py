"""Differential: batch XYZZ group law vs the scalar reference, lane for lane.

:class:`repro.curves.batch.BatchCurve` must reproduce ``xyzz_add`` /
``xyzz_acc`` / ``pdbl`` *exactly* — same canonical XYZZ coordinates, not
just the same affine point — on every lane, including the degenerate ones
(identity operands, doubling, cancellation) that bucket columns on small
curves hit routinely.  An exhaustive pool×pool sweep covers the special
cases deterministically on every registered curve; Hypothesis shuffles
random lane mixes on the toy curve.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.curves.batch import batch_curve
from repro.curves.point import (
    AffinePoint,
    XyzzPoint,
    pdbl,
    xyzz_acc,
    xyzz_add,
    xyzz_neg,
)
from repro.curves.sampling import sample_points
from tests.conftest import TOY_CURVE


def _xyzz_pool(curve, n_base: int = 4) -> list[XyzzPoint]:
    """Identity + affine-lifted + non-trivial-ZZ + negated lanes."""
    base = [XyzzPoint.from_affine(p) for p in sample_points(curve, n_base, seed=7)]
    mixed = [xyzz_add(a, b, curve) for a, b in zip(base, base[1:])]
    return (
        [XyzzPoint.identity()]
        + base
        + mixed
        + [xyzz_neg(q, curve) for q in base[:2] + mixed[:1]]
    )


def _affine_pool(curve, n_base: int = 4) -> list[AffinePoint]:
    pts = sample_points(curve, n_base, seed=11)
    return (
        [AffinePoint.identity()]
        + pts
        + [AffinePoint(p.x, (-p.y) % curve.p) for p in pts[:2]]
    )


class TestExhaustivePairs:
    """Every (lane1, lane2) pool combination in one batch call per op."""

    def test_add_all_pairs(self, any_curve):
        bc = batch_curve(any_curve)
        pool = _xyzz_pool(any_curve)
        p1 = [a for a in pool for _ in pool]
        p2 = [b for _ in pool for b in pool]
        got = bc.decode(bc.add(bc.encode_xyzz(p1), bc.encode_xyzz(p2)))
        want = [xyzz_add(a, b, any_curve) for a, b in zip(p1, p2)]
        assert got == want

    def test_acc_all_pairs(self, any_curve):
        bc = batch_curve(any_curve)
        accs = _xyzz_pool(any_curve)
        pts = _affine_pool(any_curve)
        a_lanes = [a for a in accs for _ in pts]
        p_lanes = [p for _ in accs for p in pts]
        got = bc.decode(bc.acc(bc.encode_xyzz(a_lanes), bc.encode_affine(p_lanes)))
        want = [xyzz_acc(a, p, any_curve) for a, p in zip(a_lanes, p_lanes)]
        assert got == want

    def test_acc_cancellation_pairs(self, any_curve):
        """acc(P, -P) must cancel to the identity on every lane."""
        bc = batch_curve(any_curve)
        pts = sample_points(any_curve, 4, seed=3)
        accs = [XyzzPoint.from_affine(p) for p in pts]
        negs = [AffinePoint(p.x, (-p.y) % any_curve.p) for p in pts]
        got = bc.decode(bc.acc(bc.encode_xyzz(accs), bc.encode_affine(negs)))
        assert got == [XyzzPoint.identity()] * len(pts)

    def test_pdbl_all_lanes(self, any_curve):
        bc = batch_curve(any_curve)
        pool = _xyzz_pool(any_curve)
        got = bc.decode(bc.pdbl(bc.encode_xyzz(pool)))
        assert got == [pdbl(a, any_curve) for a in pool]

    def test_from_affine_and_neg_affine(self, any_curve):
        bc = batch_curve(any_curve)
        pts = _affine_pool(any_curve)
        lifted = bc.decode(bc.from_affine(bc.encode_affine(pts)))
        assert lifted == [XyzzPoint.from_affine(p) for p in pts]
        mask = np.asarray([i % 2 == 0 for i in range(len(pts))])
        neg = bc.neg_affine(bc.encode_affine(pts), mask)
        xs = bc.field.decode(neg.x)
        ys = bc.field.decode(neg.y)
        for i, p in enumerate(pts):
            assert xs[i] == p.x
            assert ys[i] == ((-p.y) % any_curve.p if mask[i] else p.y)
            assert bool(neg.infinity[i]) == p.infinity


_TOY_POOL = _xyzz_pool(TOY_CURVE, n_base=6)
_TOY_AFFINE = _affine_pool(TOY_CURVE, n_base=6)

lane_idx = st.lists(
    st.integers(min_value=0, max_value=len(_TOY_POOL) - 1), min_size=1, max_size=32
)
aff_idx = st.lists(
    st.integers(min_value=0, max_value=len(_TOY_AFFINE) - 1), min_size=1, max_size=32
)


class TestHypothesisLanes:
    @given(i1=lane_idx, i2=lane_idx)
    @settings(max_examples=40, deadline=None)
    def test_add_random_lanes(self, i1, i2):
        n = min(len(i1), len(i2))
        p1 = [_TOY_POOL[i] for i in i1[:n]]
        p2 = [_TOY_POOL[i] for i in i2[:n]]
        bc = batch_curve(TOY_CURVE)
        got = bc.decode(bc.add(bc.encode_xyzz(p1), bc.encode_xyzz(p2)))
        assert got == [xyzz_add(a, b, TOY_CURVE) for a, b in zip(p1, p2)]

    @given(ia=lane_idx, ip=aff_idx)
    @settings(max_examples=40, deadline=None)
    def test_acc_random_lanes(self, ia, ip):
        n = min(len(ia), len(ip))
        accs = [_TOY_POOL[i] for i in ia[:n]]
        pts = [_TOY_AFFINE[i] for i in ip[:n]]
        bc = batch_curve(TOY_CURVE)
        got = bc.decode(bc.acc(bc.encode_xyzz(accs), bc.encode_affine(pts)))
        assert got == [xyzz_acc(a, p, TOY_CURVE) for a, p in zip(accs, pts)]

    @given(i1=lane_idx)
    @settings(max_examples=40, deadline=None)
    def test_pdbl_random_lanes(self, i1):
        pts = [_TOY_POOL[i] for i in i1]
        bc = batch_curve(TOY_CURVE)
        got = bc.decode(bc.pdbl(bc.encode_xyzz(pts)))
        assert got == [pdbl(a, TOY_CURVE) for a in pts]


def test_take_put_round_trip():
    bc = batch_curve(TOY_CURVE)
    lanes = bc.encode_xyzz(_TOY_POOL)
    idx = np.asarray([0, 2, 4])
    sub = lanes.take(idx)
    assert bc.decode(sub) == [_TOY_POOL[i] for i in idx]
    lanes.put(idx, sub)
    assert bc.decode(lanes) == list(_TOY_POOL)


def test_batch_curve_is_cached():
    assert batch_curve(TOY_CURVE) is batch_curve(TOY_CURVE)
