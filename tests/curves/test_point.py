"""Group-law tests: PADD / PACC / PDBL in XYZZ coordinates."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.curves.point import (
    AffinePoint,
    XyzzPoint,
    affine_neg,
    pdbl,
    pmul,
    to_affine,
    xyzz_acc,
    xyzz_add,
    xyzz_neg,
)

from tests.conftest import TOY_CURVE


def _toy_points():
    """All affine points of the toy curve (excluding infinity)."""
    pts = []
    for x in range(TOY_CURVE.p):
        rhs = (x**3 + TOY_CURVE.a * x + TOY_CURVE.b) % TOY_CURVE.p
        for y in range(TOY_CURVE.p):
            if (y * y) % TOY_CURVE.p == rhs:
                pts.append(AffinePoint(x, y))
    return pts


TOY_POINTS = _toy_points()
point_indices = st.integers(0, len(TOY_POINTS) - 1)


def _as_xyzz_scaled(pt: AffinePoint, z: int) -> XyzzPoint:
    """Re-express an affine point with a non-trivial ZZ/ZZZ denominator."""
    p = TOY_CURVE.p
    zz = (z * z) % p
    zzz = (zz * z) % p
    return XyzzPoint(pt.x * zz % p, pt.y * zzz % p, zz, zzz)


class TestIdentity:
    def test_identity_round_trip(self):
        assert to_affine(XyzzPoint.identity(), TOY_CURVE).infinity

    def test_add_identity_left(self):
        pt = XyzzPoint.from_affine(TOY_POINTS[0])
        assert xyzz_add(XyzzPoint.identity(), pt, TOY_CURVE) == pt

    def test_add_identity_right(self):
        pt = XyzzPoint.from_affine(TOY_POINTS[0])
        assert xyzz_add(pt, XyzzPoint.identity(), TOY_CURVE) == pt

    def test_acc_infinity_point_is_noop(self):
        acc = XyzzPoint.from_affine(TOY_POINTS[0])
        assert xyzz_acc(acc, AffinePoint.identity(), TOY_CURVE) == acc

    def test_acc_into_identity(self):
        pt = TOY_POINTS[3]
        result = to_affine(xyzz_acc(XyzzPoint.identity(), pt, TOY_CURVE), TOY_CURVE)
        assert result == pt

    def test_double_identity(self):
        assert pdbl(XyzzPoint.identity(), TOY_CURVE).is_identity


class TestGroupLaw:
    @given(point_indices, point_indices)
    @settings(max_examples=60, deadline=None)
    def test_add_commutative(self, i, j):
        a = XyzzPoint.from_affine(TOY_POINTS[i])
        b = XyzzPoint.from_affine(TOY_POINTS[j])
        lhs = to_affine(xyzz_add(a, b, TOY_CURVE), TOY_CURVE)
        rhs = to_affine(xyzz_add(b, a, TOY_CURVE), TOY_CURVE)
        assert lhs == rhs

    @given(point_indices, point_indices, point_indices)
    @settings(max_examples=60, deadline=None)
    def test_add_associative(self, i, j, k):
        a = XyzzPoint.from_affine(TOY_POINTS[i])
        b = XyzzPoint.from_affine(TOY_POINTS[j])
        c = XyzzPoint.from_affine(TOY_POINTS[k])
        lhs = to_affine(xyzz_add(xyzz_add(a, b, TOY_CURVE), c, TOY_CURVE), TOY_CURVE)
        rhs = to_affine(xyzz_add(a, xyzz_add(b, c, TOY_CURVE), TOY_CURVE), TOY_CURVE)
        assert lhs == rhs

    @given(point_indices)
    @settings(max_examples=40, deadline=None)
    def test_inverse_sums_to_identity(self, i):
        pt = TOY_POINTS[i]
        a = XyzzPoint.from_affine(pt)
        b = XyzzPoint.from_affine(affine_neg(pt, TOY_CURVE))
        assert xyzz_add(a, b, TOY_CURVE).is_identity

    @given(point_indices)
    @settings(max_examples=40, deadline=None)
    def test_add_equal_points_doubles(self, i):
        pt = XyzzPoint.from_affine(TOY_POINTS[i])
        via_add = to_affine(xyzz_add(pt, pt, TOY_CURVE), TOY_CURVE)
        via_dbl = to_affine(pdbl(pt, TOY_CURVE), TOY_CURVE)
        assert via_add == via_dbl

    @given(point_indices, point_indices)
    @settings(max_examples=60, deadline=None)
    def test_results_stay_on_curve(self, i, j):
        a = XyzzPoint.from_affine(TOY_POINTS[i])
        b = XyzzPoint.from_affine(TOY_POINTS[j])
        result = to_affine(xyzz_add(a, b, TOY_CURVE), TOY_CURVE)
        assert result.infinity or TOY_CURVE.is_on_curve(result.x, result.y)

    @given(point_indices, st.integers(2, 100))
    @settings(max_examples=40, deadline=None)
    def test_add_handles_projective_denominators(self, i, z):
        """Addition must be independent of the XYZZ representative chosen."""
        pt = TOY_POINTS[i]
        other = XyzzPoint.from_affine(TOY_POINTS[(i + 7) % len(TOY_POINTS)])
        scaled = _as_xyzz_scaled(pt, z % TOY_CURVE.p or 2)
        plain = XyzzPoint.from_affine(pt)
        lhs = to_affine(xyzz_add(scaled, other, TOY_CURVE), TOY_CURVE)
        rhs = to_affine(xyzz_add(plain, other, TOY_CURVE), TOY_CURVE)
        assert lhs == rhs


class TestPacc:
    @given(point_indices, point_indices)
    @settings(max_examples=60, deadline=None)
    def test_acc_matches_general_add(self, i, j):
        acc = XyzzPoint.from_affine(TOY_POINTS[i])
        pt = TOY_POINTS[j]
        via_acc = to_affine(xyzz_acc(acc, pt, TOY_CURVE), TOY_CURVE)
        via_add = to_affine(
            xyzz_add(acc, XyzzPoint.from_affine(pt), TOY_CURVE), TOY_CURVE
        )
        assert via_acc == via_add

    @given(point_indices)
    @settings(max_examples=30, deadline=None)
    def test_acc_same_point_doubles(self, i):
        pt = TOY_POINTS[i]
        via_acc = to_affine(
            xyzz_acc(XyzzPoint.from_affine(pt), pt, TOY_CURVE), TOY_CURVE
        )
        via_dbl = to_affine(pdbl(XyzzPoint.from_affine(pt), TOY_CURVE), TOY_CURVE)
        assert via_acc == via_dbl

    @given(point_indices)
    @settings(max_examples=30, deadline=None)
    def test_acc_inverse_gives_identity(self, i):
        pt = TOY_POINTS[i]
        acc = XyzzPoint.from_affine(affine_neg(pt, TOY_CURVE))
        assert xyzz_acc(acc, pt, TOY_CURVE).is_identity


class TestPdbl:
    def test_order_two_point_doubles_to_identity(self):
        # y == 0 points have order 2; synthesise one if the toy curve has any
        for pt in TOY_POINTS:
            if pt.y == 0:
                assert pdbl(XyzzPoint.from_affine(pt), TOY_CURVE).is_identity
                return
        # No order-2 point on this curve; the guard is covered by pmul tests.

    def test_negation_helpers(self):
        pt = XyzzPoint.from_affine(TOY_POINTS[0])
        assert xyzz_neg(xyzz_neg(pt, TOY_CURVE), TOY_CURVE) == pt
        assert xyzz_neg(XyzzPoint.identity(), TOY_CURVE).is_identity
        assert affine_neg(AffinePoint.identity(), TOY_CURVE).infinity


class TestPmul:
    def test_zero_scalar(self):
        assert pmul(TOY_POINTS[0], 0, TOY_CURVE).infinity

    def test_one_scalar(self):
        assert pmul(TOY_POINTS[5], 1, TOY_CURVE) == TOY_POINTS[5]

    def test_negative_scalar(self):
        pt = TOY_POINTS[5]
        assert pmul(pt, -3, TOY_CURVE) == affine_neg(pmul(pt, 3, TOY_CURVE), TOY_CURVE)

    @given(point_indices, st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_matches_repeated_addition_mod_order(self, i, k):
        pt = TOY_POINTS[i]
        direct = pmul(pt, k, TOY_CURVE)
        reduced = pmul(pt, k % TOY_CURVE.r, TOY_CURVE)
        # scalar multiplication is periodic with the group order
        assert direct == reduced

    def test_order_annihilates(self):
        assert pmul(TOY_POINTS[0], TOY_CURVE.r, TOY_CURVE).infinity

    def test_distributes_over_scalar_addition(self):
        rng = random.Random(3)
        pt = TOY_POINTS[2]
        a, b = rng.randrange(500), rng.randrange(500)
        lhs = pmul(pt, a + b, TOY_CURVE)
        rhs = to_affine(
            xyzz_add(
                XyzzPoint.from_affine(pmul(pt, a, TOY_CURVE)),
                XyzzPoint.from_affine(pmul(pt, b, TOY_CURVE)),
                TOY_CURVE,
            ),
            TOY_CURVE,
        )
        assert lhs == rhs


class TestRealCurves:
    def test_generator_small_multiples_on_curve(self, any_curve):
        generator = AffinePoint(any_curve.gx, any_curve.gy)
        pt = XyzzPoint.from_affine(generator)
        for _ in range(5):
            pt = xyzz_add(pt, XyzzPoint.from_affine(generator), any_curve)
            affine = to_affine(pt, any_curve)
            assert any_curve.is_on_curve(affine.x, affine.y)

    def test_pmul_homomorphism_bn254(self, bn254):
        generator = AffinePoint(bn254.gx, bn254.gy)
        lhs = pmul(pmul(generator, 7, bn254), 11, bn254)
        rhs = pmul(generator, 77, bn254)
        assert lhs == rhs
