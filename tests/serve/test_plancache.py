"""Plan and precompute caches: memoization, LRU, and stats honesty."""

import pytest

from repro.core.backends import FunctionalBackend
from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm
from repro.curves.params import curve_by_name
from repro.curves.sampling import msm_instance, sample_points
from repro.curves.toy import toy_curve
from repro.gpu.cluster import MultiGpuSystem
from repro.msm.naive import naive_msm
from repro.msm.precompute import (
    PrecomputeTableCache,
    precompute_cache,
    precompute_tables,
)
from repro.serve import PlanCache, cache_report

BLS = curve_by_name("BLS12-381")
CONFIG = DistMsmConfig(window_size=10)


def _engine(gpus=4):
    return DistMsm(MultiGpuSystem(gpus), CONFIG)


class TestPlanCache:
    def test_miss_then_hit(self):
        cache = PlanCache()
        engine = _engine()
        first, hit1 = cache.lookup(engine, BLS, 1 << 16)
        again, hit2 = cache.lookup(engine, BLS, 1 << 16)
        assert (hit1, hit2) == (False, True)
        assert again is first
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_cached_plan_matches_engine_estimate(self):
        cache = PlanCache()
        engine = _engine()
        plan, _ = cache.lookup(engine, BLS, 1 << 16)
        est = engine.estimate(BLS, 1 << 16)
        assert plan.window_size == est.window_size
        assert plan.total_ms == pytest.approx(est.time_ms)
        assert plan.gpu_ms == pytest.approx(
            est.times.scatter + est.times.bucket_sum + est.times.launch
        )
        assert plan.transfer_ms == pytest.approx(est.times.transfer)
        assert plan.service_ms == pytest.approx(
            plan.gpu_ms + plan.transfer_ms + plan.cpu_ms
        )

    def test_key_distinguishes_gpu_count_and_size(self):
        cache = PlanCache()
        cache.lookup(_engine(4), BLS, 1 << 16)
        _, hit_gpus = cache.lookup(_engine(2), BLS, 1 << 16)
        _, hit_size = cache.lookup(_engine(4), BLS, 1 << 14)
        assert not hit_gpus and not hit_size
        assert len(cache) == 3

    def test_peek_is_read_only(self):
        cache = PlanCache()
        engine = _engine()
        assert cache.peek(engine, BLS, 1 << 16) is None
        assert cache.stats.lookups == 0
        plan, _ = cache.lookup(engine, BLS, 1 << 16)
        assert cache.peek(engine, BLS, 1 << 16) is plan
        assert cache.stats.lookups == 1

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        engine = _engine()
        cache.lookup(engine, BLS, 1 << 10)
        cache.lookup(engine, BLS, 1 << 11)
        cache.lookup(engine, BLS, 1 << 10)  # refresh 2^10
        cache.lookup(engine, BLS, 1 << 12)  # evicts 2^11
        assert cache.stats.evictions == 1
        assert cache.peek(engine, BLS, 1 << 11) is None
        assert cache.peek(engine, BLS, 1 << 10) is not None

    def test_clear_resets(self):
        cache = PlanCache()
        cache.lookup(_engine(), BLS, 1 << 12)
        cache.clear()
        assert len(cache) == 0 and cache.stats.lookups == 0

    def test_report_folds_both_caches(self):
        cache = PlanCache()
        cache.lookup(_engine(), BLS, 1 << 12)
        report = cache_report(cache)
        assert report["plan"]["misses"] == 1
        assert report["plan_entries"] == 1
        assert set(report["precompute"]) >= {"hits", "misses", "hit_rate"}


class TestPrecomputeTableCache:
    def test_hit_returns_identical_tables(self):
        toy = toy_curve()
        points = sample_points(toy, 8, seed=3)
        cache = PrecomputeTableCache()
        first = cache.tables_for(points, toy, 4, 3)
        second = cache.tables_for(points, toy, 4, 3)
        assert (cache.stats.misses, cache.stats.hits) == (1, 1)
        assert second == first
        assert first == precompute_tables(points, toy, 4, 3)

    def test_prefix_served_from_larger_entry(self):
        toy = toy_curve()
        points = sample_points(toy, 8, seed=3)
        cache = PrecomputeTableCache()
        full = cache.tables_for(points, toy, 4, 5)
        prefix = cache.tables_for(points, toy, 4, 2)
        assert cache.stats.hits == 1
        assert prefix == full[:2]

    def test_more_windows_recomputes(self):
        toy = toy_curve()
        points = sample_points(toy, 8, seed=3)
        cache = PrecomputeTableCache()
        cache.tables_for(points, toy, 4, 2)
        grown = cache.tables_for(points, toy, 4, 4)
        assert cache.stats.misses == 2
        assert len(grown) == 4
        assert len(cache) == 1  # replaced, not duplicated

    def test_distinct_point_vectors_do_not_collide(self):
        toy = toy_curve()
        cache = PrecomputeTableCache()
        cache.tables_for(sample_points(toy, 8, seed=3), toy, 4, 2)
        cache.tables_for(sample_points(toy, 8, seed=4), toy, 4, 2)
        assert cache.stats.misses == 2 and len(cache) == 2

    def test_lru_eviction(self):
        toy = toy_curve()
        cache = PrecomputeTableCache(capacity=1)
        cache.tables_for(sample_points(toy, 4, seed=1), toy, 4, 2)
        cache.tables_for(sample_points(toy, 4, seed=2), toy, 4, 2)
        assert cache.stats.evictions == 1
        assert len(cache) == 1


class TestBackendRoutesThroughCache:
    def test_functional_backend_hits_cache_on_repeat_msm(self):
        """The satellite claim: precompute callers go through the cache."""
        toy = toy_curve()
        cfg = DistMsmConfig(
            window_size=4, precompute=True, threads_per_block=32, points_per_thread=4
        )
        engine = DistMsm(MultiGpuSystem(2), cfg)
        scalars, points = msm_instance(toy, 12, seed=5)
        shared = precompute_cache()
        shared.clear()
        first = engine.execute(scalars, points, toy)
        after_first = (shared.stats.hits, shared.stats.misses)
        second = engine.execute(scalars, points, toy)
        assert shared.stats.misses == after_first[1]  # no new table build
        assert shared.stats.hits > after_first[0]  # served from cache
        expected = naive_msm(scalars, points, toy)
        assert first.point == expected and second.point == expected
        shared.clear()

    def test_prepare_precompute_uses_shared_cache(self):
        toy = toy_curve()
        cfg = DistMsmConfig(window_size=4, precompute=True)
        engine = DistMsm(MultiGpuSystem(2), cfg)
        scalars, points = msm_instance(toy, 8, seed=6)
        shared = precompute_cache()
        shared.clear()
        backend = FunctionalBackend(engine, scalars, points, toy)
        backend.prepare_precompute(4, 3, 3)
        assert shared.stats.misses == 1
        backend2 = FunctionalBackend(engine, scalars, points, toy)
        backend2.prepare_precompute(4, 3, 3)
        assert shared.stats.hits >= 1
        shared.clear()
