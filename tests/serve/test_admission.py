"""Admission control: backpressure, deadline shedding, fault degrade."""

import pytest

from repro.curves.params import curve_by_name
from repro.serve import (
    SHED_INFEASIBLE,
    SHED_QUEUE_FULL,
    AdmissionConfig,
    AdmissionController,
    ProofRequest,
    ShedEvent,
    degraded_batch_size,
)

BLS = curve_by_name("BLS12-381")


def _req(rid, at=0.0, deadline=None):
    return ProofRequest(rid, BLS, 1 << 12, arrival_ms=at, deadline_ms=deadline)


class TestAdmissionController:
    def test_admits_when_room_and_feasible(self):
        ctl = AdmissionController(AdmissionConfig(max_queue=2))
        assert ctl.decide(_req(0), 0, 0.0, 1.0) is None
        assert ctl.shed == []

    def test_sheds_on_full_queue(self):
        ctl = AdmissionController(AdmissionConfig(max_queue=2))
        event = ctl.decide(_req(0, at=3.0), 2, 0.0, 1.0)
        assert event is not None and event.reason == SHED_QUEUE_FULL
        assert event.at_ms == 3.0
        assert ctl.shed_count(SHED_QUEUE_FULL) == 1

    def test_sheds_infeasible_deadline(self):
        ctl = AdmissionController(AdmissionConfig(max_queue=8))
        # starting at 10 with 5 ms of service overshoots a deadline of 12
        event = ctl.decide(_req(0, deadline=12.0), 0, 10.0, 5.0)
        assert event is not None and event.reason == SHED_INFEASIBLE
        # a deadline of 15 is feasible
        assert ctl.decide(_req(1, deadline=15.0), 0, 10.0, 5.0) is None

    def test_slack_tightens_feasibility(self):
        ctl = AdmissionController(AdmissionConfig(max_queue=8, slack_ms=2.0))
        assert ctl.decide(_req(0, deadline=15.0), 0, 10.0, 4.0) is not None

    def test_infeasible_shedding_can_be_disabled(self):
        ctl = AdmissionController(
            AdmissionConfig(max_queue=8, reject_infeasible=False)
        )
        assert ctl.decide(_req(0, deadline=1.0), 0, 10.0, 5.0) is None

    def test_best_effort_requests_never_deadline_shed(self):
        ctl = AdmissionController(AdmissionConfig(max_queue=8))
        assert ctl.decide(_req(0, deadline=None), 0, 1e6, 1e6) is None

    def test_unknown_reason_rejected(self):
        with pytest.raises(ValueError, match="unknown shed reason"):
            ShedEvent(_req(0), 0.0, "because")


class TestDegradedBatchSize:
    def test_full_capacity_keeps_batch(self):
        assert degraded_batch_size(8, 4, 4) == 8

    def test_half_capacity_halves_batch(self):
        assert degraded_batch_size(8, 2, 4) == 4

    def test_floor_at_one(self):
        assert degraded_batch_size(2, 1, 8) == 1
        assert degraded_batch_size(4, 0, 8) == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="base_batch_size"):
            degraded_batch_size(0, 1, 2)
        with pytest.raises(ValueError, match="out of range"):
            degraded_batch_size(4, 5, 4)
