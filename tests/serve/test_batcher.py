"""Batch triggers and task emission."""

import pytest

from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm
from repro.curves.params import curve_by_name
from repro.engine.resources import system_resources
from repro.engine.timeline import simulate
from repro.gpu.cluster import MultiGpuSystem
from repro.serve import (
    BatchPolicy,
    ContinuousBatcher,
    PlanCache,
    ProofRequest,
    RequestQueue,
    emit_request_tasks,
    request_task_names,
)

BLS = curve_by_name("BLS12-381")
CONFIG = DistMsmConfig(window_size=10)


def _req(rid, at=0.0, deadline=None):
    return ProofRequest(rid, BLS, 1 << 14, arrival_ms=at, deadline_ms=deadline)


def _plan():
    return PlanCache().lookup(DistMsm(MultiGpuSystem(2), CONFIG), BLS, 1 << 14)[0]


class TestTriggers:
    def setup_method(self):
        self.batcher = ContinuousBatcher(
            BatchPolicy(max_batch_size=3, max_wait_ms=5.0)
        )
        self.queue = RequestQueue(16)

    def test_empty_queue_never_closes(self):
        assert (
            self.batcher.next_close_ms(self.queue, 0.0, 3, lambda r: 1.0) is None
        )

    def test_size_trigger_closes_immediately(self):
        for i in range(3):
            self.queue.push(_req(i, at=1.0))
        assert self.batcher.next_close_ms(self.queue, 2.0, 3, lambda r: 1.0) == 2.0

    def test_age_trigger_waits_from_oldest_arrival(self):
        self.queue.push(_req(0, at=2.0))
        self.queue.push(_req(1, at=4.0))
        close = self.batcher.next_close_ms(self.queue, 4.0, 3, lambda r: 1.0)
        assert close == pytest.approx(7.0)  # oldest (2.0) + max_wait (5.0)

    def test_degraded_batch_size_triggers_earlier(self):
        for i in range(2):
            self.queue.push(_req(i, at=1.0))
        # full batch of 3 not reached, but degraded capacity of 2 is
        assert self.batcher.next_close_ms(self.queue, 1.5, 2, lambda r: 1.0) == 1.5

    def test_deadline_trigger_preempts_age(self):
        self.queue.push(_req(0, at=0.0, deadline=4.0))
        close = self.batcher.next_close_ms(self.queue, 0.0, 3, lambda r: 1.5)
        assert close == pytest.approx(2.5)  # deadline - service estimate

    def test_unknown_shapes_exert_no_deadline_pressure(self):
        self.queue.push(_req(0, at=0.0, deadline=4.0))
        close = self.batcher.next_close_ms(self.queue, 0.0, 3, lambda r: None)
        assert close == pytest.approx(5.0)  # pure age trigger

    def test_close_never_before_now(self):
        self.queue.push(_req(0, at=0.0, deadline=1.0))
        close = self.batcher.next_close_ms(self.queue, 9.0, 3, lambda r: 1.0)
        assert close == 9.0

    def test_form_drains_in_urgency_order_and_records(self):
        for i, deadline in ((0, None), (1, 9.0), (2, 5.0)):
            self.queue.push(_req(i, at=1.0, deadline=deadline))
        batch = self.batcher.form(
            self.queue, group=1, formed_ms=3.0, admit_ms=3.5,
            effective_max_batch=2, window_sizes={1: 10, 2: 10}, plan_misses=1,
        )
        assert [r.req_id for r in batch.requests] == [2, 1]
        assert batch.group == 1 and batch.plan_misses == 1
        assert len(self.queue) == 1
        assert self.batcher.batches == [batch]


class TestEmission:
    def test_task_names_cover_every_unit(self):
        names = request_task_names(7, 2, [4, 5])
        assert names["gpu"] == ["req7.a2:gpu4", "req7.a2:gpu5"]
        assert names["xfer"] == "req7.a2:xfer"
        assert names["reduce"] == "req7.a2:reduce"

    def test_emitted_tasks_schedule_and_respect_structure(self):
        resources = system_resources(4)
        plan = _plan()
        tasks = emit_request_tasks(
            _req(0), 0, plan, [resources.gpu(2), resources.gpu(3)],
            resources, not_before_ms=2.0, stage="b0",
        )
        assert len(tasks) == 4  # one per GPU, plus xfer and reduce
        timeline = simulate(tasks)
        gpu_spans = [timeline.span(f"req0.a0:gpu{i}") for i in (2, 3)]
        xfer = timeline.span("req0.a0:xfer")
        reduce = timeline.span("req0.a0:reduce")
        for s in gpu_spans:
            assert s.start_ms >= 2.0
            assert xfer.start_ms >= s.end_ms
        assert reduce.start_ms >= xfer.end_ms
        assert xfer.resource.name == "node0-link"
        assert reduce.resource.name == "cpu"

    def test_transfer_requires_group_gpus_alive(self):
        resources = system_resources(4)
        tasks = emit_request_tasks(
            _req(0), 0, _plan(), [resources.gpu(0), resources.gpu(1)],
            resources, 0.0, stage="b0",
        )
        xfer = next(t for t in tasks if t.name.endswith(":xfer"))
        assert set(xfer.requires_alive) == {"gpu0", "gpu1"}

    def test_extra_deps_serialise_requests(self):
        resources = system_resources(2)
        plan = _plan()
        tasks = emit_request_tasks(
            _req(0), 0, plan, [resources.gpu(0)], resources, 0.0, stage="b0"
        )
        tasks += emit_request_tasks(
            _req(1), 0, plan, [resources.gpu(0)], resources, 0.0, stage="b0",
            extra_deps=("req0.a0:reduce",),
        )
        timeline = simulate(tasks)
        assert (
            timeline.span("req1.a0:gpu0").start_ms
            >= timeline.span("req0.a0:reduce").end_ms
        )

    def test_empty_group_rejected(self):
        resources = system_resources(2)
        with pytest.raises(ValueError, match="empty GPU group"):
            emit_request_tasks(_req(0), 0, _plan(), [], resources, 0.0, "b0")
