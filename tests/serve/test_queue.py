"""Request model, bounded queue, and the seeded arrival generators."""

import pytest

from repro.curves.params import curve_by_name
from repro.serve import (
    ClosedLoopSource,
    MsmPayload,
    ProofRequest,
    RequestQueue,
    bursty_trace,
    poisson_trace,
)

BLS = curve_by_name("BLS12-381")


def _req(rid, at=0.0, **kw):
    return ProofRequest(rid, BLS, kw.pop("n", 1 << 12), arrival_ms=at, **kw)


class TestProofRequest:
    def test_validation(self):
        with pytest.raises(ValueError, match="n must be positive"):
            _req(0, n=0)
        with pytest.raises(ValueError, match="negative arrival"):
            _req(0, at=-1.0)
        with pytest.raises(ValueError, match="deadline"):
            _req(0, at=5.0, deadline_ms=4.0)

    def test_payload_length_must_match_n(self):
        from repro.curves.sampling import msm_instance
        from repro.curves.toy import toy_curve

        toy = toy_curve()
        scalars, points = msm_instance(toy, 8, seed=1)
        payload = MsmPayload(tuple(scalars), tuple(points))
        ProofRequest(0, toy, 8, arrival_ms=0.0, payload=payload)
        with pytest.raises(ValueError, match="payload has"):
            ProofRequest(1, toy, 16, arrival_ms=0.0, payload=payload)

    def test_urgency_orders_priority_then_deadline_then_fifo(self):
        urgent = _req(0, at=2.0, priority=-1)
        tight = _req(1, at=2.0, deadline_ms=5.0)
        loose = _req(2, at=2.0, deadline_ms=9.0)
        early = _req(3, at=1.0)
        assert sorted(
            [loose, early, urgent, tight], key=lambda r: r.urgency
        ) == [urgent, tight, loose, early]


class TestRequestQueue:
    def test_bounded_push(self):
        q = RequestQueue(2)
        q.push(_req(0))
        q.push(_req(1))
        assert q.full
        with pytest.raises(OverflowError, match="admission must shed"):
            q.push(_req(2))

    def test_pop_batch_in_urgency_order(self):
        q = RequestQueue(8)
        for r in (_req(0, at=3.0), _req(1, at=1.0), _req(2, at=2.0)):
            q.push(r)
        batch = q.pop_batch(2)
        assert [r.req_id for r in batch] == [1, 2]
        assert len(q) == 1
        assert q.oldest_arrival_ms() == 3.0

    def test_earliest_deadline(self):
        q = RequestQueue(8)
        q.push(_req(0))
        assert q.earliest_deadline_ms() is None
        q.push(_req(1, deadline_ms=7.0))
        q.push(_req(2, deadline_ms=4.0))
        assert q.earliest_deadline_ms() == 4.0


class TestTraces:
    def test_poisson_trace_deterministic_and_sorted(self):
        a = poisson_trace(BLS, 32, rate_rps=200.0, seed=9)
        b = poisson_trace(BLS, 32, rate_rps=200.0, seed=9)
        assert [r.arrival_ms for r in a] == [r.arrival_ms for r in b]
        assert all(x.arrival_ms <= y.arrival_ms for x, y in zip(a, a[1:]))
        c = poisson_trace(BLS, 32, rate_rps=200.0, seed=10)
        assert [r.arrival_ms for r in a] != [r.arrival_ms for r in c]

    def test_poisson_rate_roughly_honoured(self):
        trace = poisson_trace(BLS, 400, rate_rps=100.0, seed=3)
        mean_gap = trace[-1].arrival_ms / len(trace)
        assert mean_gap == pytest.approx(10.0, rel=0.25)

    def test_mixed_sizes_cycle(self):
        trace = poisson_trace(BLS, 6, 100.0, seed=1, sizes=(1 << 10, 1 << 14))
        assert [r.n for r in trace] == [1 << 10, 1 << 14] * 3

    def test_relative_deadline_attached(self):
        trace = poisson_trace(BLS, 5, 100.0, seed=1, deadline_ms=25.0)
        for r in trace:
            assert r.deadline_ms == pytest.approx(r.arrival_ms + 25.0)

    def test_bursty_trace_synchronised_bursts(self):
        trace = bursty_trace(BLS, bursts=3, burst_size=4, gap_ms=10.0)
        assert len(trace) == 12
        for b in range(3):
            burst = trace[4 * b : 4 * b + 4]
            assert {r.arrival_ms for r in burst} == {b * 10.0}

    def test_bursty_jitter_spreads_within_window(self):
        trace = bursty_trace(
            BLS, bursts=2, burst_size=8, gap_ms=20.0, seed=5, jitter_ms=3.0
        )
        for r in trace[:8]:
            assert 0.0 <= r.arrival_ms <= 3.0


class TestClosedLoop:
    def test_clients_pace_themselves(self):
        src = ClosedLoopSource(BLS, clients=3, requests_per_client=2, think_ms=1.5)
        first = src.initial_arrivals()
        assert len(first) == 3
        assert all(r.arrival_ms == 0.0 for r in first)
        nxt = src.on_complete(first[0], complete_ms=4.0)
        assert nxt is not None
        assert nxt.arrival_ms == pytest.approx(5.5)
        assert nxt.client == first[0].client
        # the client has now issued its 2 requests: no third
        assert src.on_complete(nxt, complete_ms=9.0) is None

    def test_open_loop_requests_never_follow_up(self):
        src = ClosedLoopSource(BLS, clients=1, requests_per_client=5)
        open_req = _req(99)
        assert src.on_complete(open_req, 1.0) is None
