"""MsmProofServer: the serving loop end to end (fault-free paths)."""

import pytest

from repro.core.config import DistMsmConfig
from repro.curves.params import curve_by_name
from repro.gpu.cluster import MultiGpuSystem
from repro.serve import (
    SHED_INFEASIBLE,
    SHED_QUEUE_FULL,
    ClosedLoopSource,
    MsmProofServer,
    PlanCache,
    ProofRequest,
    ServeConfig,
    bursty_trace,
    poisson_trace,
    serve_one_at_a_time,
)
from repro.verify.servecheck import verify_serving
from repro.verify.timelinecheck import verify_timeline

BLS = curve_by_name("BLS12-381")
CONFIG = DistMsmConfig(window_size=10)


def _server(gpus=4, **kw):
    return MsmProofServer(
        MultiGpuSystem(gpus), CONFIG, ServeConfig(**kw)
    )


def _trace(count=12, rate=300.0, **kw):
    return poisson_trace(BLS, count, rate, seed=7, sizes=1 << 14, **kw)


def _assert_audit_clean(result):
    checked = verify_serving(
        result.requests, result.records, result.shed, result.timeline
    )
    assert checked.ok, [str(v) for v in checked.violations]
    tchecked = verify_timeline(result.timeline, faults=result.faults)
    assert tchecked.ok, [str(v) for v in tchecked.violations]


class TestOpenLoopServing:
    def test_every_request_served_and_audited(self):
        result = _server(gpu_groups=2, max_batch_size=4).serve(_trace())
        assert len(result.records) == 12
        assert result.shed == []
        _assert_audit_clean(result)

    def test_deterministic(self):
        a = _server(gpu_groups=2).serve(_trace())
        b = _server(gpu_groups=2).serve(_trace())
        assert a.metrics.as_dict() == b.metrics.as_dict()

    def test_no_request_starts_before_arrival(self):
        result = _server(gpu_groups=2, max_batch_size=4).serve(_trace())
        arrivals = {r.req_id: r.arrival_ms for r in result.requests}
        for record in result.records:
            assert record.start_ms >= arrivals[record.req_id] - 1e-9
            assert record.complete_ms > record.start_ms

    def test_life_cycle_monotone(self):
        for record in _server(gpu_groups=2).serve(_trace()).records:
            assert record.arrival_ms <= record.formed_ms <= record.admit_ms
            assert record.admit_ms <= record.start_ms <= record.complete_ms

    def test_batches_respect_max_size(self):
        result = _server(gpu_groups=1, max_batch_size=3).serve(_trace(15, 2000.0))
        assert result.batches
        assert max(b.size for b in result.batches) <= 3
        # a dense trace actually exercises the size trigger
        assert any(b.size == 3 for b in result.batches)

    def test_age_trigger_bounds_queue_wait(self):
        # sparse arrivals: batches close by age, never by size
        result = _server(gpu_groups=1, max_batch_size=8, max_wait_ms=2.0).serve(
            _trace(6, rate=50.0)
        )
        for record in result.records:
            assert record.queue_ms <= 2.0 + 1e-9

    def test_plan_cache_reused_across_batches(self):
        result = _server(gpu_groups=1, max_batch_size=2).serve(_trace())
        stats = result.metrics.caches["plan"]
        assert stats["misses"] == 1  # one shape, one group size
        assert stats["hits"] >= 11

    def test_plan_misses_charge_batch_form_latency(self):
        cold = _server(gpu_groups=1, max_batch_size=4, plan_ms=0.7)
        result = cold.serve(_trace(4, rate=5000.0))
        first = min(result.records, key=lambda r: r.req_id)
        assert first.batch_form_ms >= 0.7 - 1e-9
        # batches after the first hit the cache: no planning charge
        later = [r for r in result.records if r.batch_id != first.batch_id]
        for record in later:
            assert record.batch_form_ms == pytest.approx(0.0, abs=1e-9)

    def test_duplicate_request_ids_rejected(self):
        requests = [
            ProofRequest(0, BLS, 1 << 12, arrival_ms=0.0),
            ProofRequest(0, BLS, 1 << 12, arrival_ms=1.0),
        ]
        with pytest.raises(ValueError, match="duplicate request id"):
            _server().serve(requests)

    def test_empty_workload(self):
        result = _server().serve([])
        assert result.records == [] and result.metrics.served == 0


class TestAdmissionIntegration:
    def test_queue_overflow_sheds(self):
        # a burst far beyond the queue bound must shed, not crash
        trace = bursty_trace(BLS, bursts=1, burst_size=12, gap_ms=1.0, sizes=1 << 14)
        result = MsmProofServer(
            MultiGpuSystem(2),
            CONFIG,
            ServeConfig(gpu_groups=1, max_batch_size=2, max_queue=4),
        ).serve(trace)
        assert result.metrics.shed_count(SHED_QUEUE_FULL) > 0
        assert result.metrics.served + result.metrics.shed_count() == 12
        _assert_audit_clean(result)

    def test_infeasible_deadlines_shed_once_service_known(self):
        # warm the plan cache so admission can judge feasibility, then
        # submit a request whose deadline is impossible
        cache = PlanCache()
        server = MsmProofServer(
            MultiGpuSystem(4),
            CONFIG,
            ServeConfig(gpu_groups=1, max_batch_size=2),
            plan_cache=cache,
        )
        warm = server.serve(_trace(2, rate=100.0))
        assert warm.metrics.served == 2
        service = cache.peek(
            server._engine_for(4), BLS, 1 << 14
        ).service_ms
        impossible = ProofRequest(
            100, BLS, 1 << 14, arrival_ms=0.0, deadline_ms=service * 0.5
        )
        result = server.serve([impossible])
        assert result.metrics.shed_count(SHED_INFEASIBLE) == 1
        assert result.records == []

    def test_shed_requests_never_execute(self):
        trace = bursty_trace(BLS, bursts=1, burst_size=10, gap_ms=1.0, sizes=1 << 14)
        result = MsmProofServer(
            MultiGpuSystem(2),
            CONFIG,
            ServeConfig(gpu_groups=1, max_batch_size=2, max_queue=3),
        ).serve(trace)
        shed_ids = {e.request.req_id for e in result.shed}
        assert shed_ids
        for name in result.timeline.spans:
            for rid in shed_ids:
                assert not name.startswith(f"req{rid}.")


class TestBaselineComparison:
    def test_batching_beats_serial_p95_under_load(self):
        """The acceptance claim, in miniature."""
        trace = _trace(24, rate=2000.0)
        batched = _server(gpu_groups=1, max_batch_size=4, max_wait_ms=1.0).serve(
            trace
        )
        serial = serve_one_at_a_time(MultiGpuSystem(4), trace, CONFIG)
        assert batched.metrics.p95_ms < serial.metrics.p95_ms
        assert (
            batched.metrics.throughput_rps >= serial.metrics.throughput_rps - 1e-9
        )
        _assert_audit_clean(batched)
        _assert_audit_clean(serial)

    def test_serial_baseline_truly_serialises(self):
        trace = _trace(5, rate=3000.0)
        result = serve_one_at_a_time(MultiGpuSystem(2), trace, CONFIG)
        spans = result.timeline.spans
        ordered = sorted(
            (r.req_id for r in result.records),
            key=lambda rid: spans[f"req{rid}.a0:reduce"].end_ms,
        )
        for prev, cur in zip(ordered, ordered[1:]):
            reduce_end = spans[f"req{prev}.a0:reduce"].end_ms
            for name, span in spans.items():
                if name.startswith(f"req{cur}.") and ":gpu" in name:
                    assert span.start_ms >= reduce_end - 1e-9

    def test_overlap_false_requires_serial_shape(self):
        with pytest.raises(ValueError, match="one-at-a-time baseline"):
            ServeConfig(overlap=False, gpu_groups=2)
        with pytest.raises(ValueError, match="one-at-a-time baseline"):
            ServeConfig(overlap=False, max_batch_size=4)


class TestClosedLoop:
    def test_population_fully_served(self):
        source = ClosedLoopSource(
            BLS, clients=3, requests_per_client=3, think_ms=0.5, sizes=1 << 14
        )
        result = _server(gpu_groups=1, max_batch_size=3, max_wait_ms=0.5).serve(
            source
        )
        assert result.metrics.served == source.total_requests
        _assert_audit_clean(result)

    def test_followups_arrive_after_predecessor_completes(self):
        source = ClosedLoopSource(
            BLS, clients=2, requests_per_client=2, think_ms=1.0, sizes=1 << 14
        )
        result = _server(gpu_groups=1, max_batch_size=2, max_wait_ms=0.5).serve(
            source
        )
        by_client: dict[int, list] = {}
        for request in result.requests:
            by_client.setdefault(request.client, []).append(request)
        completes = {r.req_id: r.complete_ms for r in result.records}
        for client_requests in by_client.values():
            client_requests.sort(key=lambda r: r.req_id)
            for prev, nxt in zip(client_requests, client_requests[1:]):
                assert nxt.arrival_ms >= completes[prev.req_id] - 1e-9


class TestConfigValidation:
    def test_groups_bounded_by_gpus(self):
        with pytest.raises(ValueError, match="at least as many"):
            MsmProofServer(
                MultiGpuSystem(2), CONFIG, ServeConfig(gpu_groups=4)
            )

    def test_group_partition_is_contiguous_and_complete(self):
        server = MsmProofServer(
            MultiGpuSystem(7), CONFIG, ServeConfig(gpu_groups=3)
        )
        flat = [g for group in server.groups for g in group]
        assert flat == list(range(7))
        sizes = [len(g) for g in server.groups]
        assert max(sizes) - min(sizes) <= 1
