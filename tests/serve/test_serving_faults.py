"""Serving through GPU failures: bit-exact results at honest latency."""

import pytest

from repro.core.config import DistMsmConfig
from repro.curves.params import curve_by_name
from repro.curves.sampling import msm_instance
from repro.curves.toy import toy_curve
from repro.engine.faults import ByzantineWorker, FaultPlan, GpuFailure
from repro.faults.recovery import FaultRecoveryError
from repro.gpu.cluster import MultiGpuSystem
from repro.msm.naive import naive_msm
from repro.serve import (
    MsmPayload,
    MsmProofServer,
    ProofRequest,
    ServeConfig,
)
from repro.verify.servecheck import verify_serving
from repro.verify.timelinecheck import verify_timeline

BLS = curve_by_name("BLS12-381")
TOY_CONFIG = DistMsmConfig(
    window_size=4, threads_per_block=32, points_per_thread=4
)


def _payload_trace(toy, count=10, spacing_ms=0.4):
    """Open-loop trace of real toy-curve MSMs plus their true answers."""
    requests, expected = [], {}
    at = 0.0
    for i in range(count):
        scalars, points = msm_instance(toy, 16, seed=100 + i)
        requests.append(
            ProofRequest(
                req_id=i,
                curve=toy,
                n=16,
                arrival_ms=at,
                payload=MsmPayload(tuple(scalars), tuple(points)),
            )
        )
        expected[i] = naive_msm(scalars, points, toy)
        at += spacing_ms
    return requests, expected


def _serve(requests, faults=None, gpus=4, **kw):
    kw.setdefault("gpu_groups", 2)
    kw.setdefault("max_batch_size", 4)
    kw.setdefault("max_wait_ms", 0.5)
    server = MsmProofServer(
        MultiGpuSystem(gpus), TOY_CONFIG, ServeConfig(**kw)
    )
    return server.serve(requests, faults=faults)


class TestBitExactUnderFaults:
    """Satellite: GpuFailure mid-serve, results bit-exact, latency honest."""

    def test_all_requests_complete_bit_exactly(self):
        toy = toy_curve()
        requests, expected = _payload_trace(toy)
        result = _serve(requests, faults=FaultPlan.of(GpuFailure(1.0, 1)))
        assert len(result.records) == len(requests)
        assert result.shed == []
        for record in result.records:
            assert record.result == expected[record.req_id]

    def test_failure_actually_forced_retries(self):
        toy = toy_curve()
        requests, _ = _payload_trace(toy)
        result = _serve(requests, faults=FaultPlan.of(GpuFailure(1.0, 1)))
        assert result.metrics.retried_requests > 0
        retried = [r for r in result.records if r.retries > 0]
        assert all(r.retries >= 1 for r in retried)

    def test_latency_is_honestly_higher_than_fault_free(self):
        toy = toy_curve()
        requests, _ = _payload_trace(toy)
        clean = _serve(requests)
        faulty = _serve(requests, faults=FaultPlan.of(GpuFailure(1.0, 1)))
        assert clean.metrics.retried_requests == 0
        # the same trace through a failure must not report equal-or-better
        # tail latency: retries and lost capacity show up in the metrics
        assert faulty.metrics.p99_ms > clean.metrics.p99_ms
        assert faulty.metrics.makespan_ms > clean.metrics.makespan_ms
        clean_by_id = {r.req_id: r for r in clean.records}
        for record in faulty.records:
            if record.retries > 0:
                assert record.total_ms > clean_by_id[record.req_id].total_ms

    def test_results_identical_with_and_without_faults(self):
        toy = toy_curve()
        requests, _ = _payload_trace(toy, count=8)
        clean = _serve(requests)
        faulty = _serve(requests, faults=FaultPlan.of(GpuFailure(1.0, 1)))
        for record in faulty.records:
            assert record.result == clean.record_for(record.req_id).result

    def test_audits_pass_under_faults(self):
        toy = toy_curve()
        requests, _ = _payload_trace(toy)
        result = _serve(requests, faults=FaultPlan.of(GpuFailure(1.0, 1)))
        checked = verify_serving(
            result.requests, result.records, result.shed, result.timeline
        )
        assert checked.ok, [str(v) for v in checked.violations]
        tchecked = verify_timeline(result.timeline, faults=result.faults)
        assert tchecked.ok, [str(v) for v in tchecked.violations]

    def test_no_span_on_dead_gpu_after_detection(self):
        toy = toy_curve()
        requests, _ = _payload_trace(toy)
        faults = FaultPlan.of(GpuFailure(1.0, 1))
        result = _serve(requests, faults=faults)
        death = faults.gpu_death_times()[1]
        for name, span in result.timeline.spans.items():
            if span.resource.name == "gpu1":
                assert span.start_ms < death or span.end_ms <= death + 1e-9


class TestGroupDeathAndMigration:
    def test_whole_group_death_migrates_to_survivor(self):
        toy = toy_curve()
        requests, expected = _payload_trace(toy, count=8)
        # group 0 = {gpu0, gpu1}; kill both, survivors are group 1
        faults = FaultPlan.of(GpuFailure(0.8, 0), GpuFailure(0.8, 1))
        result = _serve(requests, faults=faults)
        assert len(result.records) == 8
        for record in result.records:
            assert record.result == expected[record.req_id]

    def test_all_gpus_dead_is_rejected_up_front(self):
        toy = toy_curve()
        requests, _ = _payload_trace(toy, count=4)
        faults = FaultPlan.of(*(GpuFailure(0.5, g) for g in range(4)))
        with pytest.raises(FaultRecoveryError, match="no survivor"):
            _serve(requests, faults=faults)

    def test_degraded_capacity_shrinks_batches_after_death(self):
        trace = [
            ProofRequest(i, BLS, 1 << 14, arrival_ms=float(i) * 0.2)
            for i in range(12)
        ]
        server = MsmProofServer(
            MultiGpuSystem(2),
            DistMsmConfig(window_size=10),
            ServeConfig(gpu_groups=1, max_batch_size=4, max_wait_ms=0.5),
        )
        result = server.serve(trace, faults=FaultPlan.of(GpuFailure(0.1, 1)))
        assert len(result.records) == 12
        late = [b for b in result.batches if b.formed_ms > 1.0]
        assert late and max(b.size for b in late) <= 2


class TestByzantineServing:
    """Cheating workers under the serving loop: quarantine, retry, shed."""

    def test_cheater_quarantined_results_stay_bit_exact(self):
        toy = toy_curve()
        requests, expected = _payload_trace(toy)
        result = _serve(
            requests, faults=FaultPlan.of(ByzantineWorker(1, seed=5))
        )
        assert 1 in result.quarantined
        assert result.metrics.retried_requests > 0
        assert result.shed == []
        assert len(result.records) == len(requests)
        for record in result.records:
            assert record.result == expected[record.req_id]

    def test_audits_pass_with_a_cheater(self):
        toy = toy_curve()
        requests, _ = _payload_trace(toy)
        result = _serve(
            requests, faults=FaultPlan.of(ByzantineWorker(1, seed=5))
        )
        checked = verify_serving(
            result.requests, result.records, result.shed, result.timeline
        )
        assert checked.ok, [str(v) for v in checked.violations]
        tchecked = verify_timeline(result.timeline, faults=result.faults)
        assert tchecked.ok, [str(v) for v in tchecked.violations]

    def test_no_span_on_quarantined_gpu_after_quarantine(self):
        toy = toy_curve()
        requests, _ = _payload_trace(toy)
        result = _serve(
            requests, faults=FaultPlan.of(ByzantineWorker(1, seed=5))
        )
        at = result.quarantined[1]
        for span in result.timeline.spans.values():
            if span.resource.name == "gpu1":
                assert span.start_ms <= at + 1e-9

    def test_all_cheating_sheds_untrusted_capacity(self):
        from repro.serve.admission import SHED_UNTRUSTED

        toy = toy_curve()
        requests, _ = _payload_trace(toy, count=6)
        faults = FaultPlan.of(*(ByzantineWorker(g, seed=g) for g in range(4)))
        result = _serve(requests, faults=faults)
        assert result.records == []
        assert len(result.shed) == len(requests)
        assert {s.reason for s in result.shed} == {SHED_UNTRUSTED}

    def test_verification_disabled_means_no_quarantine(self):
        toy = toy_curve()
        requests, _ = _payload_trace(toy, count=6)
        server = MsmProofServer(
            MultiGpuSystem(4),
            DistMsmConfig(
                window_size=4,
                threads_per_block=32,
                points_per_thread=4,
                verify_chunks=False,
            ),
            ServeConfig(gpu_groups=2, max_batch_size=4, max_wait_ms=0.5),
        )
        result = server.serve(
            requests, faults=FaultPlan.of(ByzantineWorker(1, seed=5))
        )
        assert result.quarantined == {}
        assert result.metrics.retried_requests == 0

    def test_round_restricted_cheater_quarantined_after_first_forgery(self):
        toy = toy_curve()
        requests, expected = _payload_trace(toy)
        result = _serve(
            requests, faults=FaultPlan.of(ByzantineWorker(0, round=0, seed=7))
        )
        assert 0 in result.quarantined
        assert len(result.records) == len(requests)
        for record in result.records:
            assert record.result == expected[record.req_id]

    def test_death_and_cheater_together(self):
        toy = toy_curve()
        requests, expected = _payload_trace(toy)
        faults = FaultPlan.of(GpuFailure(1.0, 3), ByzantineWorker(0, seed=5))
        result = _serve(requests, faults=faults)
        assert 0 in result.quarantined
        assert len(result.records) == len(requests)
        for record in result.records:
            assert record.result == expected[record.req_id]
        checked = verify_serving(
            result.requests, result.records, result.shed, result.timeline
        )
        assert checked.ok, [str(v) for v in checked.violations]

    def test_deterministic_replay(self):
        toy = toy_curve()
        requests, _ = _payload_trace(toy, count=6)
        faults = FaultPlan.of(ByzantineWorker(1, seed=9))
        a = _serve(requests, faults=faults)
        b = _serve(requests, faults=faults)
        assert a.quarantined == b.quarantined
        assert a.metrics.makespan_ms == b.metrics.makespan_ms
        assert [r.total_ms for r in a.records] == [
            r.total_ms for r in b.records
        ]

