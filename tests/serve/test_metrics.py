"""SLO metrics: percentiles, breakdowns, and the JSON export."""

import json

import pytest

from repro.curves.params import curve_by_name
from repro.observe.stats import percentile
from repro.serve import (
    SHED_QUEUE_FULL,
    ProofRequest,
    RequestRecord,
    ServeMetrics,
    ShedEvent,
)

BLS = curve_by_name("BLS12-381")


def _record(rid, arrival, complete, **kw):
    return RequestRecord(
        req_id=rid,
        label=f"r{rid}",
        n=1 << 12,
        arrival_ms=arrival,
        formed_ms=kw.pop("formed", arrival + 1.0),
        admit_ms=kw.pop("admit", arrival + 1.5),
        start_ms=kw.pop("start", arrival + 2.0),
        complete_ms=complete,
        batch_id=kw.pop("batch_id", 0),
        group=kw.pop("group", 0),
        **kw,
    )


class TestPercentile:
    def test_nearest_rank_values_occur_in_input(self):
        values = [5.0, 1.0, 9.0, 3.0]
        for q in (0.0, 25.0, 50.0, 75.0, 95.0, 100.0):
            assert percentile(values, q) in values

    def test_metrics_module_uses_the_stats_percentile(self):
        """serve/metrics must not regrow a private percentile (ISSUE 10).

        The serving layer's SLO numbers are defined to be the
        ``observe.stats`` nearest-rank percentile — the import must be the
        very same function object, not a copy that could drift.
        """
        import repro.observe.stats as stats
        import repro.serve.metrics as metrics

        assert metrics.percentile is stats.percentile

    def test_pinned_slo_percentiles_on_known_latencies(self):
        """Explicit nearest-rank p50/p95/p99 pins through ServeMetrics."""
        # 10 requests with latencies 10, 20, ..., 100 ms
        records = [
            _record(i, 0.0, float((i + 1) * 10)) for i in range(10)
        ]
        metrics = ServeMetrics(records=records)
        assert metrics.p50_ms == 50.0  # rank ceil(5.0)  = 5  -> 50
        assert metrics.p95_ms == 100.0  # rank ceil(9.5)  = 10 -> 100
        assert metrics.p99_ms == 100.0  # rank ceil(9.9)  = 10 -> 100
        # and they agree with calling the shared helper directly
        lat = metrics.latencies_ms()
        assert metrics.p50_ms == percentile(lat, 50.0)
        assert metrics.p95_ms == percentile(lat, 95.0)
        assert metrics.p99_ms == percentile(lat, 99.0)

    def test_known_points(self):
        values = [float(i) for i in range(1, 11)]
        assert percentile(values, 50.0) == 5.0
        assert percentile(values, 95.0) == 10.0
        assert percentile(values, 100.0) == 10.0
        assert percentile(values, 0.0) == 1.0

    def test_empty_and_invalid(self):
        assert percentile([], 95.0) == 0.0
        with pytest.raises(ValueError, match="q must be in"):
            percentile([1.0], 101.0)


class TestRequestRecord:
    def test_breakdown_sums_to_total(self):
        r = _record(0, arrival=10.0, complete=20.0)
        assert r.queue_ms + r.batch_form_ms + r.execute_ms == pytest.approx(
            r.total_ms
        )
        assert r.total_ms == pytest.approx(10.0)

    def test_deadline_violation(self):
        assert _record(0, 0.0, 10.0, deadline_ms=9.0).deadline_violated
        assert not _record(1, 0.0, 10.0, deadline_ms=11.0).deadline_violated
        assert not _record(2, 0.0, 10.0).deadline_violated

    def test_as_dict_round_trips_through_json(self):
        d = json.loads(json.dumps(_record(3, 0.0, 4.0).as_dict()))
        assert d["req_id"] == 3 and d["total_ms"] == 4.0


class TestServeMetrics:
    def _metrics(self):
        records = [_record(i, float(i), float(i) + 4.0 + i) for i in range(10)]
        shed = [
            ShedEvent(
                ProofRequest(99, BLS, 1 << 12, arrival_ms=1.0), 1.0, SHED_QUEUE_FULL
            )
        ]
        return ServeMetrics(
            records=records,
            shed=shed,
            makespan_ms=50.0,
            utilization={"gpu0": 0.5, "gpu1": 0.3, "cpu": 0.9, "node0-link": 0.1},
        )

    def test_counts_and_throughput(self):
        m = self._metrics()
        assert m.served == 10 and m.submitted == 11
        assert m.shed_count() == 1 and m.shed_count(SHED_QUEUE_FULL) == 1
        assert m.shed_count("deadline-infeasible") == 0
        assert m.throughput_rps == pytest.approx(10 / 50.0 * 1e3)

    def test_percentiles_over_latencies(self):
        m = self._metrics()
        # latencies are 4+i for i in 0..9: 4, 5, ..., 13
        assert m.p50_ms == pytest.approx(8.0)
        assert m.p99_ms == pytest.approx(13.0)
        assert m.mean_ms == pytest.approx(8.5)

    def test_gpu_utilization_averages_gpus_only(self):
        assert self._metrics().gpu_utilization() == pytest.approx(0.4)

    def test_breakdown_means(self):
        b = self._metrics().mean_breakdown_ms()
        assert b["queue_ms"] == pytest.approx(1.0)
        assert b["batch_form_ms"] == pytest.approx(0.5)

    def test_json_export_complete(self):
        d = json.loads(self._metrics().to_json())
        assert d["served"] == 10
        assert d["shed_by_reason"] == {SHED_QUEUE_FULL: 1}
        assert len(d["requests"]) == 10
        assert set(d["latency_ms"]) == {"p50", "p95", "p99", "mean"}

    def test_render_mentions_the_slo_story(self):
        text = self._metrics().render()
        assert "p95" in text and "req/s" in text and "shed 1" in text

    def test_empty_metrics_do_not_crash(self):
        m = ServeMetrics()
        assert m.p95_ms == 0.0 and m.throughput_rps == 0.0
        assert m.gpu_utilization() == 0.0
        assert m.mean_breakdown_ms()["queue_ms"] == 0.0
