"""Tuned-vs-analytic plan benchmark: does the auto-tuner actually pay?

For a grid of (curve, GPU count, MSM size) workloads, runs the
:mod:`repro.tune` coordinate search and records the modelled makespan of
the analytic-default plan vs the tuned plan.  Both sides are scored by
the same :class:`~repro.core.backends.AnalyticBackend` cost model in the
same process, so every ``tuned_speedup`` is a machine-independent ratio
— exactly what ``compare_bench.py`` gates.  The bottleneck oracle's
verdict on the default plan is recorded per cell as context (what the
tuner was attacking).

Writes ``results/tune.txt`` (rendered table) and
``results/BENCH_tune.json``.  Runs under pytest-benchmark (``make
bench``) and standalone::

    PYTHONPATH=src python benchmarks/bench_tune.py [--smoke]
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from conftest import save_result

from repro import DistMsm, MultiGpuSystem, curve_by_name
from repro.analysis.tables import format_table
from repro.tune import analyze_result, tune_msm, tune_serve_policy

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

#: (curve, gpus, log_n) cells; the smoke subset keeps `make ci` fast
SMOKE_GRID = [
    ("BLS12-381", 1, 18),
    ("BLS12-381", 4, 18),
    ("BN254", 8, 18),
]
FULL_GRID = SMOKE_GRID + [
    ("BN254", 4, 20),
    ("BLS12-381", 8, 20),
    ("MNT4753", 4, 18),
]

SEED = 0
BUDGET = 64


def run_grid(smoke: bool) -> dict:
    """Tune every grid cell; returns the full benchmark record."""
    cells = []
    for curve_name, gpus, log_n in (SMOKE_GRID if smoke else FULL_GRID):
        curve = curve_by_name(curve_name)
        system = MultiGpuSystem(gpus)
        n = 1 << log_n
        plan = tune_msm(system, curve, n, seed=SEED, budget=BUDGET)
        oracle = analyze_result(
            DistMsm(system).estimate(curve, n),
            subject=f"{curve_name}-{gpus}gpu-2^{log_n}",
        )
        cells.append(
            {
                **plan.as_dict(),
                "log_n": log_n,
                "default_primary": f"{oracle.primary} ({oracle.primary_bound})",
                "audit_ok": oracle.audit_ok,
            }
        )
    policy = tune_serve_policy(
        4, curve_by_name("BLS12-381"), request_count=8, seed=SEED, budget=8
    )
    return {
        "bench": "tune",
        "smoke": smoke,
        "seed": SEED,
        "budget": BUDGET,
        "cells": {
            f"{c['curve']}_{c['num_gpus']}gpu_2e{c['log_n']}": c for c in cells
        },
        "best_tuned_speedup": max(c["tuned_speedup"] for c in cells),
        "serve_policy": policy.as_dict(),
    }


def render(record: dict) -> str:
    headers = [
        "curve", "gpus", "n", "s", "scatter", "tpb_min", "cpu-reduce",
        "default ms", "tuned ms", "speedup", "default bottleneck",
    ]
    rows = []
    for cell in record["cells"].values():
        rows.append(
            [
                cell["curve"],
                cell["num_gpus"],
                f"2^{cell['log_n']}",
                cell["window_size"],
                cell["scatter"],
                cell["threads_per_bucket_min"],
                str(cell["bucket_reduce_on_cpu"]),
                f"{cell['default_ms']:.3f}",
                f"{cell['tuned_ms']:.3f}",
                f"{cell['tuned_speedup']:.3f}x",
                cell["default_primary"],
            ]
        )
    policy = record["serve_policy"]
    footer = (
        f"\nbest tuned speedup: {record['best_tuned_speedup']:.3f}x "
        f"(seed {record['seed']}, budget {record['budget']} evals/cell)\n"
        f"serve batch triggers: max_batch_size={policy['max_batch_size']} "
        f"max_wait_ms={policy['max_wait_ms']} -> p95 "
        f"{policy['default_p95_ms']:.3f} -> {policy['tuned_p95_ms']:.3f} ms "
        f"({policy['p95_improvement']:.3f}x)"
    )
    return (
        format_table(headers, rows, title="Auto-tuned vs analytic-default plans")
        + footer
    )


def check_invariants(record: dict) -> None:
    for name, cell in record["cells"].items():
        assert cell["tuned_speedup"] >= 1.0, f"{name}: tuner lost to the default"
        assert cell["audit_ok"], f"{name}: oracle audit failed"
    # the ISSUE acceptance gate: tuning must pay >= 1.1x somewhere
    assert record["best_tuned_speedup"] >= 1.1, (
        f"no cell reached 1.1x (best {record['best_tuned_speedup']:.3f}x)"
    )
    assert record["serve_policy"]["p95_improvement"] >= 1.0


def write_bench_json(payload: dict) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_tune.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def test_tune(benchmark):
    record = benchmark.pedantic(run_grid, args=(True,), rounds=1, iterations=1)
    save_result("tune", render(record))
    check_invariants(record)
    write_bench_json(record)


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    start = time.perf_counter()
    record = run_grid(smoke)
    wall_s = time.perf_counter() - start
    check_invariants(record)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "tune.txt").write_text(render(record) + "\n")
    path = write_bench_json(record)
    print(
        f"tune: best speedup {record['best_tuned_speedup']:.3f}x over "
        f"{len(record['cells'])} cells ({wall_s:.2f}s)"
    )
    print(f"[saved to {path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
