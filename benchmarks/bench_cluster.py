"""Cluster-scaling study: throughput/p99 vs node count, failover, autoscale.

Replays the canonical diurnal+burst two-tenant trace
(:func:`repro.cluster.trace.diurnal_burst_trace`) on 1/2/4/8-node
clusters (4 GPUs per node) and reports the SLO tail per node count, with
a node-kill failover column: each multi-node row is re-run with the last
node's GPUs all killed at the same mid-trace event boundary, the
heartbeat detecting it and the swallowed requests failing over — the
re-run is audited by :mod:`repro.verify.clustercheck` (zero double-served
requests) before its numbers are allowed into the table.

Three more sections ride along:

* a tenant-mix table at 4 nodes — weighted fair shares (2:1) plus a
  deadline class on one tenant, so the SLO-budget shed accounting shows;
* a functional toy-curve failover run — real payloads, one node killed,
  every surviving response checked bit-exact against ``naive_msm``
  (failover must not change a single result bit);
* an autoscale demo — the burst trace on an autoscaled cluster, showing
  the scale-up reaction and the cool-down holding.

Writes the table to ``results/cluster_scaling.txt`` and the gated record
to ``results/BENCH_cluster.json``; ``p99_scaling_speedup`` (p99 at 1
node / p99 at 4 nodes, simulated time, machine-speed free) is
regression-gated by ``benchmarks/compare_bench.py``.  Runs under
pytest-benchmark (``make bench``) and standalone:

    PYTHONPATH=src python benchmarks/bench_cluster.py [--smoke]

``--smoke`` (the ``make cluster-smoke`` CI hook) shrinks the trace and
drops the 8-node row while asserting the same invariants.
"""

from __future__ import annotations

import sys

from repro.cluster import (
    AutoscaleConfig,
    ClusterConfig,
    ClusterTrace,
    ProofCluster,
    TenantSpec,
    generate_requests,
    replay,
)
from repro.cluster.trace import diurnal_burst_trace
from repro.core.config import DistMsmConfig
from repro.curves.sampling import msm_instance
from repro.curves.toy import toy_curve
from repro.engine.faults import FaultPlan, GpuFailure
from repro.msm.naive import naive_msm
from repro.serve import MsmPayload, ProofRequest
from repro.verify.clustercheck import verify_cluster

GPUS_PER_NODE = 4
NODE_SWEEP = (1, 2, 4, 8)
RATE_RPS = 700.0
SEED = 7

#: fixed window so no auto-tune sweep runs inside the benchmark loop
CONFIG = DistMsmConfig(window_size=10)

TENANTS = (TenantSpec("acme", weight=2.0), TenantSpec("zkmart", weight=1.0))


def _study_trace(smoke: bool) -> ClusterTrace:
    return diurnal_burst_trace(
        name="cluster-study",
        seed=SEED,
        rate_rps=RATE_RPS,
        scale=0.4 if smoke else 1.0,
    )


def _cluster(nodes: int, tenants: tuple[TenantSpec, ...] = TENANTS) -> ProofCluster:
    return ProofCluster(
        nodes, gpus_per_node=GPUS_PER_NODE, config=CONFIG, tenants=tenants
    )


def _kill_last_node_plan(nodes: int, at_ms: float) -> FaultPlan:
    """Every GPU of the last node dies at the same event boundary."""
    first = (nodes - 1) * GPUS_PER_NODE
    return FaultPlan.of(
        *(GpuFailure(at_ms, g) for g in range(first, first + GPUS_PER_NODE))
    )


def _node_sweep(lines: list[str], metrics: dict, trace: ClusterTrace, smoke: bool) -> None:
    sweep = NODE_SWEEP[:-1] if smoke else NODE_SWEEP
    requests = generate_requests(trace)
    kill_ms = trace.duration_ms * 0.3
    lines.append(
        f"node sweep — trace {trace.name!r} ({len(requests)} requests, "
        f"{trace.duration_ms:.0f} ms, peak {RATE_RPS:.0f} req/s), "
        f"{GPUS_PER_NODE} GPUs/node, least-loaded routing"
    )
    lines.append(
        f"  {'nodes':>5}  {'served':>6}  {'shed':>4}  {'thr':>8}  "
        f"{'p50':>8}  {'p95':>8}  {'p99':>9}  "
        f"{'p99+kill':>9}  {'failovers':>9}"
    )
    for nodes in sweep:
        result = _cluster(nodes).serve(list(requests))
        m = result.metrics
        metrics[f"n{nodes}_p99_ms"] = m.p99_ms
        metrics[f"n{nodes}_thr_rps"] = m.throughput_rps
        metrics[f"n{nodes}_shed"] = m.shed_count()
        if nodes > 1:
            killed = _cluster(nodes).serve(
                list(requests), faults=_kill_last_node_plan(nodes, kill_ms)
            )
            audit = verify_cluster(
                killed, subject=f"{nodes}-node kill run", eps=1e-6
            )
            double = sum(
                1 for v in audit.all_violations() if "served by" in v.message
            )
            metrics[f"n{nodes}_kill_p99_ms"] = killed.metrics.p99_ms
            metrics[f"n{nodes}_kill_failovers"] = killed.metrics.failover_count
            metrics[f"n{nodes}_kill_violations"] = len(audit.all_violations())
            metrics[f"n{nodes}_kill_double_serves"] = double
            kill_p99 = f"{killed.metrics.p99_ms:>9.3f}"
            kill_fo = f"{killed.metrics.failover_count:>9d}"
        else:
            kill_p99, kill_fo = f"{'—':>9}", f"{'—':>9}"
        lines.append(
            f"  {nodes:>5}  {m.served:>6}  {m.shed_count():>4}  "
            f"{m.throughput_rps:>6.1f}/s  {m.p50_ms:>8.3f}  {m.p95_ms:>8.3f}  "
            f"{m.p99_ms:>9.3f}  {kill_p99}  {kill_fo}"
        )
    # scaling claims, in simulated time (machine speed cancels)
    metrics["p99_scaling_speedup"] = metrics["n1_p99_ms"] / metrics["n4_p99_ms"]
    metrics["thr_scaling_1_to_4"] = (
        metrics["n4_thr_rps"] / metrics["n1_thr_rps"]
    )
    lines.append(
        f"  1 -> 4 nodes: p99 {metrics['p99_scaling_speedup']:.2f}x lower, "
        f"throughput {metrics['thr_scaling_1_to_4']:.2f}x"
    )


def _tenant_mix(lines: list[str], metrics: dict, trace: ClusterTrace) -> None:
    """Weighted shares and a deadline class, at 4 nodes."""
    tenants = (
        TenantSpec("acme", weight=2.0),
        TenantSpec("zkmart", weight=1.0, deadline_class_ms=60.0),
    )
    result = _cluster(4, tenants=tenants).serve(generate_requests(trace))
    lines += ["", "tenant mix at 4 nodes — acme weight 2.0, zkmart weight 1.0 "
              "with a 60 ms deadline class:"]
    for tenant, stats in sorted(result.metrics.per_tenant().items()):
        lines.append(
            f"  {tenant:<8s} served {stats['served']:>4d}  "
            f"shed {stats['shed']:>3d}  p50 {stats['p50_ms']:>8.3f}  "
            f"p99 {stats['p99_ms']:>8.3f} ms  "
            f"violations {stats['deadline_violations']}"
        )
        metrics[f"tenant_{tenant}_served"] = stats["served"]
        metrics[f"tenant_{tenant}_shed"] = stats["shed"]


def _functional_failover(lines: list[str], metrics: dict, count: int) -> None:
    """Toy-curve payloads, one node killed: bit-exact across failover."""
    toy = toy_curve()
    cfg = DistMsmConfig(window_size=4, threads_per_block=32, points_per_thread=4)
    requests, expected = [], {}
    for i in range(count):
        scalars, points = msm_instance(toy, 16, seed=200 + i)
        # simultaneous arrivals so the load spreads over both nodes and
        # node 1 genuinely has work in flight when it dies
        requests.append(
            ProofRequest(
                req_id=i,
                curve=toy,
                n=16,
                arrival_ms=0.0,
                payload=MsmPayload(tuple(scalars), tuple(points)),
                label=f"func{i}",
                tenant="acme" if i % 2 else "zkmart",
            )
        )
        expected[i] = naive_msm(scalars, points, toy)
    cluster = ProofCluster(2, gpus_per_node=2, config=cfg, tenants=TENANTS)
    # global GPUs 2 and 3 are node 1's: the box dies just after dispatch
    result = cluster.serve(
        requests, faults=FaultPlan.of(GpuFailure(0.05, 2), GpuFailure(0.05, 3))
    )
    audit = verify_cluster(result, subject="functional failover", eps=1e-6)
    exact = sum(
        1 for r in result.records if r.result == expected[r.req_id]
    )
    lines += [
        "",
        f"functional failover — toy curve, {count} payload requests on 2 "
        f"nodes, node 1 killed at 0.05 ms:",
        f"  {exact}/{len(result.records)} responses bit-exact against the "
        f"naive reference across {result.metrics.failover_count} failovers; "
        f"cluster audit: {len(audit.all_violations())} violations",
    ]
    metrics["functional_served"] = len(result.records)
    metrics["functional_exact"] = exact
    metrics["functional_failovers"] = result.metrics.failover_count
    metrics["functional_violations"] = len(audit.all_violations())


def _autoscale_demo(lines: list[str], metrics: dict, smoke: bool) -> None:
    """The burst trace on an autoscaled cluster: ramp up, hold, no flap."""
    trace = diurnal_burst_trace(
        name="autoscale-demo",
        seed=SEED + 1,
        rate_rps=RATE_RPS,
        scale=0.4 if smoke else 1.0,
    )
    cluster = ProofCluster(
        4,
        gpus_per_node=GPUS_PER_NODE,
        config=CONFIG,
        cluster_config=ClusterConfig(
            autoscale=AutoscaleConfig(
                min_nodes=1,
                max_nodes=4,
                control_interval_ms=10.0,
                queue_high=4.0,
                queue_low=0.5,
                cooldown_ms=40.0,
                provision_ms=20.0,
                down_stable_ticks=3,
            )
        ),
        tenants=TENANTS,
    )
    result = replay(cluster, trace)
    m = result.metrics
    actions = [d for d in result.scale_decisions if d.action != "hold"]
    lines += [
        "",
        f"autoscale demo — trace {trace.name!r}, 1..4 nodes, 10 ms control "
        f"interval, 40 ms cooldown:",
        f"  {m.render()}",
        f"  {m.scale_ups} scale-ups, {m.scale_downs} scale-downs; actions:",
    ]
    for d in actions[:8]:
        lines.append(
            f"    t={d.at_ms:>7.1f} ms  {d.action:<4s} {d.active} -> "
            f"{d.target}  ({d.reason})"
        )
    metrics["autoscale_scale_ups"] = m.scale_ups
    metrics["autoscale_scale_downs"] = m.scale_downs
    metrics["autoscale_p99_ms"] = m.p99_ms


def cluster_report(smoke: bool = False) -> tuple[str, dict]:
    """Build the cluster-scaling table and its gated metrics."""
    lines: list[str] = [
        "Cluster serving study — sharded proof serving on the event engine",
        "",
    ]
    metrics: dict = {}
    trace = _study_trace(smoke)
    _node_sweep(lines, metrics, trace, smoke)
    _tenant_mix(lines, metrics, trace)
    _functional_failover(lines, metrics, 6 if smoke else 10)
    _autoscale_demo(lines, metrics, smoke)
    return "\n".join(lines), metrics


def check_invariants(metrics: dict) -> None:
    """The cluster claims this PR stands on."""
    # scaling: p99 must improve 1 -> 4 nodes under the diurnal+burst trace
    assert metrics["p99_scaling_speedup"] > 1.0, metrics
    # node-kill runs: audited clean, zero double-serves, failover happened
    for nodes in (2, 4):
        assert metrics[f"n{nodes}_kill_violations"] == 0, metrics
        assert metrics[f"n{nodes}_kill_double_serves"] == 0, metrics
        assert metrics[f"n{nodes}_kill_failovers"] >= 0, metrics
    # functional failover is bit-exact and audited clean
    assert metrics["functional_served"] > 0, metrics
    assert metrics["functional_exact"] == metrics["functional_served"], metrics
    assert metrics["functional_violations"] == 0, metrics
    assert metrics["functional_failovers"] >= 1, metrics
    # the autoscaler reacted to the burst
    assert metrics["autoscale_scale_ups"] >= 1, metrics


def write_output(text: str, metrics: dict, smoke: bool) -> "pathlib.Path":
    import json
    import pathlib

    results = pathlib.Path(__file__).resolve().parent.parent / "results"
    results.mkdir(exist_ok=True)
    (results / "cluster_scaling.txt").write_text(text + "\n")
    payload = {"bench": "cluster", "smoke": smoke, "metrics": metrics}
    path = results / "BENCH_cluster.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def test_cluster(benchmark):
    text, metrics = benchmark.pedantic(cluster_report, rounds=1, iterations=1)
    from conftest import save_result

    save_result("cluster_scaling", text)
    write_output(text, metrics, smoke=False)
    check_invariants(metrics)


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    text, metrics = cluster_report(smoke=smoke)
    check_invariants(metrics)
    path = write_output(text, metrics, smoke=smoke)
    if smoke:
        print(
            f"cluster-smoke: p99 {metrics['p99_scaling_speedup']:.2f}x lower "
            f"1->4 nodes, kill runs audited clean "
            f"(0 double-serves), functional "
            f"{metrics['functional_exact']}/{metrics['functional_served']} "
            f"bit-exact across {metrics['functional_failovers']} failovers, "
            f"{metrics['autoscale_scale_ups']} autoscale up(s)"
        )
    else:
        print(text)
    print(f"[saved to {path.parent / 'cluster_scaling.txt'} and {path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
