"""Regenerate paper Fig. 11: naive vs hierarchical bucket scatter."""

from conftest import save_result

import pytest

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.experiments import figure11


def test_figure11(benchmark):
    result = benchmark.pedantic(figure11, kwargs={"log_n": 26}, rounds=1, iterations=1)
    feasible = [r for r in result.rows if r.hierarchical_ms is not None]
    plot = ascii_plot(
        {
            "naive": [r.naive_ms for r in feasible],
            "hierarchical": [r.hierarchical_ms for r in feasible],
        },
        title="bucket-scatter time (ms, log scale) vs window size",
        log_y=True,
        x_labels=[r.window_size for r in feasible],
    )
    save_result("figure11", result.render() + "\n\n" + plot)

    by_s = {r.window_size: r for r in result.rows}
    # paper anchors: 6.71x at s=11 and 18.3x at s=9
    assert by_s[11].speedup == pytest.approx(6.71, rel=0.35)
    assert by_s[9].speedup == pytest.approx(18.3, rel=0.35)
    # execution failures above s = 14
    assert by_s[15].hierarchical_ms is None
    assert by_s[14].hierarchical_ms is not None
    # naive preferred at single-GPU window sizes
    assert by_s[14].speedup < 1.5
