"""Traced reference runs: Chrome exports plus the observe audit.

Usage::

    PYTHONPATH=src python benchmarks/bench_trace.py [--smoke]

Produces ``results/trace_msm.json`` and ``results/trace_serve.json``
(Chrome trace-event files — load them in ``about:tracing`` or Perfetto)
and ``results/trace_summary.txt`` (the ASCII flamegraph summaries).  Both
traces are audited with :mod:`repro.verify.observecheck` before anything
is written; any reconciliation violation exits nonzero.  ``--smoke`` (the
``make trace-smoke`` CI hook) runs the same pipeline at reduced sizes.
"""

from __future__ import annotations

import pathlib
import sys

from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm
from repro.curves.params import curve_by_name
from repro.gpu.cluster import MultiGpuSystem
from repro.observe import Tracer
from repro.serve import MsmProofServer, ServeConfig, poisson_trace
from repro.verify.observecheck import verify_trace, verify_trace_against_timeline

BLS381 = curve_by_name("BLS12-381")


def traced_runs(smoke: bool = False):
    """One traced MSM estimate and one traced serve run, both audited."""
    log_n = 18 if smoke else 24
    msm_trace = Tracer(f"msm-2gpu-2^{log_n}")
    msm = DistMsm(MultiGpuSystem(2), DistMsmConfig(window_size=10)).estimate(
        BLS381, 1 << log_n, trace=msm_trace
    )

    serve_trace = Tracer("serve-4req")
    server = MsmProofServer(
        MultiGpuSystem(2), DistMsmConfig(window_size=10), ServeConfig(max_batch_size=2)
    )
    served = server.serve(
        poisson_trace(
            BLS381,
            count=4 if smoke else 16,
            rate_rps=200.0,
            seed=7,
            sizes=1 << (12 if smoke else 16),
        ),
        trace=serve_trace,
    )

    violations = []
    audit = verify_trace_against_timeline(
        msm_trace, msm.timeline, subject="bench-msm", phase_serial=True
    )
    violations += audit.violations
    for check in (
        verify_trace(serve_trace, subject="bench-serve"),
        verify_trace(msm_trace, subject="bench-msm"),
    ):
        violations += check.violations
    return msm_trace, serve_trace, msm, served, violations


def write_outputs(msm_trace, serve_trace) -> tuple[pathlib.Path, str]:
    results = pathlib.Path(__file__).resolve().parent.parent / "results"
    results.mkdir(exist_ok=True)
    (results / "trace_msm.json").write_text(
        msm_trace.to_chrome_json(indent=2) + "\n"
    )
    (results / "trace_serve.json").write_text(
        serve_trace.to_chrome_json(indent=2) + "\n"
    )
    summary = msm_trace.summary() + "\n\n" + serve_trace.summary()
    (results / "trace_summary.txt").write_text(summary + "\n")
    return results, summary


def test_traced_runs(benchmark):
    msm_trace, serve_trace, msm, served, violations = benchmark.pedantic(
        traced_runs, rounds=1, iterations=1
    )
    assert not violations, [str(v) for v in violations]
    assert len(msm_trace.spans) > 0 and len(serve_trace.spans) > 0
    write_outputs(msm_trace, serve_trace)


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    msm_trace, serve_trace, msm, served, violations = traced_runs(smoke=smoke)
    results, summary = write_outputs(msm_trace, serve_trace)
    if violations:
        for v in violations:
            print(f"VIOLATION: {v}", file=sys.stderr)
        return 1
    if smoke:
        print(
            f"trace-smoke: {len(msm_trace.spans)} MSM spans reconcile with "
            f"makespan {msm.time_ms:.3f} ms; {len(serve_trace.spans)} serve "
            f"spans over {served.metrics.served} requests; audit clean"
        )
    else:
        print(summary)
    print(f"[saved to {results}/trace_msm.json, trace_serve.json, trace_summary.txt]")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
