"""Ablations of DistMSM's design choices (DESIGN.md §5).

Each ablation toggles one decision while holding the rest of the system
fixed, quantifying what that choice buys; results land in
``results/ablations.txt``.
"""

from conftest import save_result

from repro.analysis.tables import format_table
from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm
from repro.core.multi_msm import proof_msm_schedule, render_gantt
from repro.curves.params import curve_by_name
from repro.fields.limbs import OpCounter, to_limbs
from repro.fields.montgomery import MontgomeryContext
from repro.gpu.cluster import MultiGpuSystem
from repro.kernels.dag import build_pacc_dag, build_padd_dag, peak_live
from repro.kernels.scheduler import find_optimal_schedule

BLS381 = curve_by_name("BLS12-381")
N = 1 << 26


def test_window_policy_ablation(benchmark):
    """Model-optimal window vs fixed choices, at 16 GPUs."""

    def run():
        system = MultiGpuSystem(16)
        rows = []
        auto = DistMsm(system).estimate(BLS381, N)
        rows.append(["auto-tuned", auto.window_size, auto.time_ms])
        for s in (8, 11, 14):
            t = DistMsm(system, DistMsmConfig(window_size=s)).estimate(BLS381, N)
            rows.append([f"fixed s={s}", s, t.time_ms])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["policy", "s", "time (ms)"], rows,
        title="Ablation: window-size policy (BLS12-381, 2^26, 16 GPUs)",
    )
    auto_time = rows[0][2]
    assert all(auto_time <= r[2] * 1.001 for r in rows[1:])
    save_result("ablation_window_policy", text)


def test_scatter_ablation(benchmark):
    """Hierarchical vs naive scatter inside the full engine, multi-GPU."""

    def run():
        rows = []
        for gpus in (1, 16):
            system = MultiGpuSystem(gpus)
            for scatter in ("hierarchical", "naive"):
                cfg = DistMsmConfig(scatter=scatter)
                t = DistMsm(system, cfg).estimate(BLS381, N)
                rows.append([gpus, scatter, t.window_size, t.times.scatter, t.time_ms])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["GPUs", "scatter", "s", "scatter ms", "total ms"], rows,
        title="Ablation: scatter strategy (BLS12-381, 2^26)",
    )
    save_result("ablation_scatter", text)


def test_multi_gpu_strategy_ablation(benchmark):
    """bucket-split vs whole-windows vs N-dim at 8/32 GPUs."""

    def run():
        rows = []
        for gpus in (8, 32):
            system = MultiGpuSystem(gpus)
            for strategy in ("bucket-split", "windows", "ndim"):
                cfg = DistMsmConfig(multi_gpu=strategy)
                t = DistMsm(system, cfg).estimate(BLS381, N).time_ms
                rows.append([gpus, strategy, t])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["GPUs", "strategy", "time (ms)"], rows,
        title="Ablation: multi-GPU work distribution (BLS12-381, 2^26)",
    )
    # bucket-split (DistMSM's choice) must win at 32 GPUs
    at32 = {r[1]: r[2] for r in rows if r[0] == 32}
    assert at32["bucket-split"] <= min(at32.values()) * 1.001
    save_result("ablation_multi_gpu_strategy", text)


def test_bucket_reduce_placement_ablation(benchmark):
    """CPU offload vs on-GPU scan vs on-GPU naive SIMD."""

    def run():
        system = MultiGpuSystem(16)
        rows = []
        for label, kwargs in (
            ("CPU offload", {"bucket_reduce_on_cpu": True}),
            ("GPU scan", {"bucket_reduce_on_cpu": False, "gpu_reduce": "scan"}),
            ("GPU naive SIMD", {"bucket_reduce_on_cpu": False, "gpu_reduce": "simd"}),
        ):
            t = DistMsm(system, DistMsmConfig(**kwargs)).estimate(BLS381, N)
            rows.append([label, t.times.bucket_reduce, t.time_ms])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["placement", "reduce ms", "total ms"], rows,
        title="Ablation: bucket-reduce placement (BLS12-381, 2^26, 16 GPUs)",
    )
    save_result("ablation_bucket_reduce", text)


def test_montgomery_method_ablation(benchmark):
    """SOS vs CIOS vs FIOS word-operation profiles (Koc et al. analysis)."""

    def run():
        ctx = MontgomeryContext(BLS381.p)
        a = to_limbs(ctx.to_mont(BLS381.p // 3), ctx.num_limbs)
        b = to_limbs(ctx.to_mont(BLS381.p // 7), ctx.num_limbs)
        rows = []
        for method in ("sos", "cios", "fios"):
            counter = OpCounter()
            getattr(ctx, f"mont_mul_{method}")(a, b, counter)
            rows.append([method.upper(), counter.mul, counter.add, counter.total])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["method", "word muls", "word adds", "total ops"], rows,
        title="Ablation: Montgomery multiplication method (BLS12-381 limbs)",
    )
    # all variants share the multiply count; they differ in add handling
    assert len({r[1] for r in rows}) == 1
    save_result("ablation_montgomery", text)


def test_scheduler_ablation(benchmark):
    """As-written execution order vs the exhaustive optimum."""

    def run():
        rows = []
        for dag in (build_padd_dag(), build_pacc_dag()):
            written = peak_live(dag)
            optimal = find_optimal_schedule(dag)
            rows.append([dag.name, written, optimal.peak, optimal.states_visited])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["op", "as written (live)", "optimal (live)", "DP states"], rows,
        title="Ablation: instruction scheduling (peak live big integers)",
    )
    assert rows[0][1:3] == [11, 9]
    assert rows[1][1:3] == [9, 7]
    save_result("ablation_scheduler", text)


def test_msm_pipelining_ablation(benchmark):
    """Cross-MSM pipelining of the CPU bucket-reduce (§3.2.3)."""

    def run():
        engine = DistMsm(MultiGpuSystem(8))
        rows = []
        for log_n in (20, 24):
            sched = proof_msm_schedule(engine, curve_by_name("BN254"), 1 << log_n)
            rows.append(
                [f"2^{log_n}", sched.serial_ms, sched.pipelined_ms, f"{sched.speedup:.2f}x"]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    gantt = render_gantt(
        proof_msm_schedule(
            DistMsm(MultiGpuSystem(8)), curve_by_name("BN254"), 1 << 24
        )
    )
    text = format_table(
        ["constraints", "serial ms", "pipelined ms", "speedup"], rows,
        title="Ablation: cross-MSM pipelining of bucket-reduce (Groth16 MSMs)",
    ) + "\n\n" + gantt
    save_result("ablation_pipelining", text)
