"""Regenerate paper Table 4: end-to-end zkSNARK proving times.

Also proves a reduced-scale instance of each workload for real (through the
full Groth16 pipeline) so the modelled rows rest on an executed code path.
"""

import random

from conftest import save_result

from repro.zksnark.groth16 import Groth16
from repro.zksnark.pipeline import table4
from repro.zksnark.workloads import ALL_WORKLOADS, workload_circuit


def test_table4_model(benchmark):
    result = benchmark.pedantic(table4, rounds=1, iterations=1)
    save_result("table4", result.render())
    for row in result.rows:
        assert 20 < row.speedup < 30  # paper band: 24.9x - 26.7x


def test_real_proof_of_each_workload(benchmark):
    """Prove + verify one reduced-scale instance per workload."""

    def prove_all():
        outcomes = []
        for spec in ALL_WORKLOADS:
            r1cs, assignment = workload_circuit(spec, scale=6)
            groth = Groth16(r1cs)
            pk, vk = groth.setup(random.Random(1))
            proof = groth.prove(pk, assignment, random.Random(2))
            outcomes.append(
                groth.verify(vk, proof, r1cs.public_inputs(assignment))
            )
        return outcomes

    outcomes = benchmark.pedantic(prove_all, rounds=1, iterations=1)
    assert outcomes == [True, True, True]
