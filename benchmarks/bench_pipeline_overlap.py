"""Pipeline overlap study: serial vs overlapped vs batched MSM serving.

Quantifies the §3.2.3 claim on the engine's timelines:

* **serial** — every stage back to back (no CPU/GPU overlap anywhere);
* **overlapped** — the cross-MSM flow shop (one proof's MSM sequence, the
  CPU reducing MSM *i* while the GPUs run MSM *i+1*);
* **batched** — :class:`repro.engine.batch.BatchMsmScheduler` interleaving
  an independent request stream over GPU groups with the shared host CPU.

Writes the comparison to ``results/pipeline_overlap.txt`` and the
machine-readable metrics to ``results/BENCH_pipeline_overlap.json`` (the
``benchmarks/compare_bench.py`` regression gate reads the latter).  Runs
under pytest-benchmark (``make bench``) and standalone:

    PYTHONPATH=src python benchmarks/bench_pipeline_overlap.py [--smoke]

``--smoke`` (the ``make bench-smoke`` CI hook) skips the timer harness and
just regenerates the table while asserting the pipelining invariants.
"""

from __future__ import annotations

import sys

from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm
from repro.core.multi_msm import groth16_msm_jobs, render_gantt, schedule_pipeline
from repro.curves.params import curve_by_name
from repro.engine.batch import BatchMsmScheduler, MsmRequest
from repro.gpu.cluster import MultiGpuSystem

CURVE = curve_by_name("BLS12-381")
NUM_GPUS = 8
CONSTRAINTS = 1 << 20
BATCH_REQUESTS = 8

#: fixed window so the study measures scheduling, not the autotune sweep
CONFIG = DistMsmConfig(window_size=12)


def pipeline_overlap_report() -> tuple[str, dict]:
    """Build the three schedules and render the comparison table."""
    system = MultiGpuSystem(NUM_GPUS)
    engine = DistMsm(system, CONFIG)

    jobs = groth16_msm_jobs(engine, CURVE, CONSTRAINTS)
    flow = schedule_pipeline(jobs)

    lines = [
        f"Pipeline overlap study — {NUM_GPUS}x {system.spec.name}, "
        f"{CURVE.name}, 2^{CONSTRAINTS.bit_length() - 1} constraints",
        "",
        f"one proof, {len(jobs)} MSMs (Groth16 A/B/B-G2/C/H):",
        f"  serial (no overlap)      : {flow.serial_ms:9.2f} ms",
        f"  overlapped (flow shop)   : {flow.pipelined_ms:9.2f} ms  "
        f"({flow.speedup:.2f}x)",
        "",
        render_gantt(flow),
    ]

    metrics = {
        "serial_ms": flow.serial_ms,
        "pipelined_ms": flow.pipelined_ms,
        "flow_speedup": flow.speedup,
    }

    lines += ["", f"batched serving, {BATCH_REQUESTS} independent requests:"]
    requests = [
        MsmRequest(f"req{i}", CURVE, CONSTRAINTS) for i in range(BATCH_REQUESTS)
    ]
    for groups in (1, 2, 4):
        batch = BatchMsmScheduler(system, CONFIG, gpu_groups=groups).schedule(requests)
        lines.append(
            f"  {groups} GPU group(s): makespan {batch.makespan_ms:9.2f} ms  "
            f"({batch.speedup:.2f}x over serial, "
            f"{batch.throughput_rps:.1f} req/s, "
            f"mean latency {batch.mean_latency_ms:.2f} ms)"
        )
        metrics[f"batch{groups}_makespan_ms"] = batch.makespan_ms
        metrics[f"batch{groups}_speedup"] = batch.speedup

    busiest = max(batch.timeline.utilization().items(), key=lambda kv: kv[1])
    lines.append(
        f"  busiest resource at 4 groups: {busiest[0]} ({busiest[1]:.0%} busy)"
    )
    return "\n".join(lines), metrics


def check_invariants(metrics: dict) -> None:
    """The pipelining claims the paper (and this PR) stand on."""
    # pipelined multi-MSM execution is strictly faster than serial
    assert metrics["pipelined_ms"] < metrics["serial_ms"], metrics
    assert metrics["flow_speedup"] > 1.0, metrics
    # batched serving beats running its stages back to back at every group
    # count (more groups raise the relative speedup — cross-request GPU
    # overlap — even where per-request GPU stages slow down)
    for groups in (1, 2, 4):
        assert metrics[f"batch{groups}_speedup"] > 1.0, (groups, metrics)
    assert metrics["batch4_speedup"] >= metrics["batch1_speedup"], metrics


def bench_record(metrics: dict) -> dict:
    """The BENCH json record: deterministic model metrics, gate-ready."""
    return {
        "bench": "pipeline_overlap",
        "curve": CURVE.name,
        "num_gpus": NUM_GPUS,
        "log2_constraints": CONSTRAINTS.bit_length() - 1,
        "batch_requests": BATCH_REQUESTS,
        "smoke": True,  # metrics are model outputs; one mode fits all
        **{k: round(v, 4) for k, v in metrics.items()},
    }


def write_bench_json(metrics: dict) -> "pathlib.Path":
    import json
    import pathlib

    results = pathlib.Path(__file__).resolve().parent.parent / "results"
    results.mkdir(exist_ok=True)
    path = results / "BENCH_pipeline_overlap.json"
    path.write_text(
        json.dumps(bench_record(metrics), indent=2, sort_keys=True) + "\n"
    )
    return path


def test_pipeline_overlap(benchmark):
    text, metrics = benchmark.pedantic(
        pipeline_overlap_report, rounds=1, iterations=1
    )
    from conftest import save_result

    save_result("pipeline_overlap", text)
    check_invariants(metrics)
    write_bench_json(metrics)


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    text, metrics = pipeline_overlap_report()
    check_invariants(metrics)
    if smoke:
        print(
            f"bench-smoke: pipelined {metrics['pipelined_ms']:.2f} ms < "
            f"serial {metrics['serial_ms']:.2f} ms "
            f"({metrics['flow_speedup']:.2f}x); invariants hold"
        )
    import pathlib

    results = pathlib.Path(__file__).resolve().parent.parent / "results"
    results.mkdir(exist_ok=True)
    out = results / "pipeline_overlap.txt"
    out.write_text(text + "\n")
    json_path = write_bench_json(metrics)
    if not smoke:
        print(text)
    print(f"[saved to {out} and {json_path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
