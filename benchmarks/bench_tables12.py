"""Regenerate paper Tables 1 and 2 (curve widths, baseline matrix)."""

from conftest import save_result

from repro.analysis.experiments import table1, table2


def test_table1(benchmark):
    result = benchmark.pedantic(table1, rounds=1, iterations=1)
    save_result("table1", result.render())
    assert [r[0] for r in result.rows] == [
        "BN254", "BLS12-377", "BLS12-381", "MNT4753",
    ]


def test_table2(benchmark):
    result = benchmark.pedantic(table2, rounds=1, iterations=1)
    save_result("table2", result.render())
    assert len(result.rows) == 6
