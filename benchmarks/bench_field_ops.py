"""Real timings of the arithmetic substrate (pytest-benchmark).

These measure this library's actual Python throughput — useful for spotting
regressions in the hot paths every experiment leans on.
"""

import pytest

from repro.curves.params import curve_by_name
from repro.curves.point import XyzzPoint, pdbl, xyzz_acc, xyzz_add
from repro.curves.sampling import batch_to_affine, sample_points
from repro.fields.limbs import to_limbs
from repro.fields.montgomery import MontgomeryContext

BN254 = curve_by_name("BN254")
MNT = curve_by_name("MNT4753")


@pytest.fixture(scope="module")
def bn_ctx():
    return MontgomeryContext(BN254.p)


@pytest.fixture(scope="module")
def bn_operands(bn_ctx):
    a = bn_ctx.to_mont(BN254.p // 3)
    b = bn_ctx.to_mont(BN254.p // 7)
    n = bn_ctx.num_limbs
    return to_limbs(a, n), to_limbs(b, n)


@pytest.mark.parametrize("method", ["sos", "cios", "fios"])
def test_montgomery_word_level(benchmark, bn_ctx, bn_operands, method):
    """Word-level Montgomery multiplication, all three variants."""
    func = getattr(bn_ctx, f"mont_mul_{method}")
    a, b = bn_operands
    benchmark(func, a, b)


def test_montgomery_int_reference(benchmark, bn_ctx):
    am = bn_ctx.to_mont(123456789)
    bm = bn_ctx.to_mont(987654321)
    benchmark(bn_ctx.mont_mul_int, am, bm)


@pytest.fixture(scope="module")
def bn_points():
    return sample_points(BN254, 8, seed=1)


def test_pacc_bn254(benchmark, bn_points):
    acc = XyzzPoint.from_affine(bn_points[0])
    benchmark(xyzz_acc, acc, bn_points[1], BN254)


def test_padd_bn254(benchmark, bn_points):
    p1 = XyzzPoint.from_affine(bn_points[0])
    p2 = pdbl(XyzzPoint.from_affine(bn_points[1]), BN254)
    benchmark(xyzz_add, p1, p2, BN254)


def test_pdbl_bn254(benchmark, bn_points):
    pt = XyzzPoint.from_affine(bn_points[0])
    benchmark(pdbl, pt, BN254)


def test_pacc_mnt4753(benchmark):
    """753-bit arithmetic: the paper's register-pressure stress point."""
    points = sample_points(MNT, 2, seed=2)
    acc = XyzzPoint.from_affine(points[0])
    benchmark(xyzz_acc, acc, points[1], MNT)


def test_batch_to_affine(benchmark, bn_points):
    xyzz = [pdbl(XyzzPoint.from_affine(p), BN254) for p in bn_points] * 8
    benchmark(batch_to_affine, xyzz, BN254)
