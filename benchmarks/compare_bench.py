"""Benchmark regression gate: current BENCH_*.json vs committed baselines.

Usage::

    PYTHONPATH=src python benchmarks/compare_bench.py [--tolerance 0.25]

For every baseline record under ``benchmarks/baselines/``, loads the
matching ``results/BENCH_<name>.json`` (produced by the ``make ci`` smoke
benchmarks) and gates two kinds of metrics, found by walking the nested
record:

* keys ending in ``_speedup`` — ratios of old-vs-new implementations
  measured in the same process, so they cancel machine speed; the gate
  fails when the current ratio drops more than ``--tolerance`` (default
  25%) below the baseline;
* ``within_budget`` booleans — absolute wall-clock budgets the benchmark
  itself asserts (e.g. the 2^20-point MSM's 60 s CI budget); the gate
  fails if any went false.

Raw ``*_s`` / ``*_ms`` wall times are reported for context but never
gated — they track the machine, not the code.  A baseline whose
``smoke`` flag disagrees with the current record is a configuration
error (the numbers are not comparable) and fails loudly.

Exit status 0 when every gate holds, 1 otherwise — ``make bench-compare``
wires this into the CI chain.
"""

from __future__ import annotations

import json
import pathlib
import sys

BASELINE_DIR = pathlib.Path(__file__).resolve().parent / "baselines"
RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

DEFAULT_TOLERANCE = 0.25


def walk_metrics(record: dict, prefix: str = "") -> dict[str, object]:
    """Flatten a nested record to ``section.key -> leaf value``."""
    flat: dict[str, object] = {}
    for key, value in record.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(walk_metrics(value, f"{path}."))
        else:
            flat[path] = value
    return flat


def compare_record(
    name: str, baseline: dict, current: dict, tolerance: float
) -> list[str]:
    """All gate violations for one benchmark record (empty = pass)."""
    problems: list[str] = []
    if baseline.get("smoke") != current.get("smoke"):
        return [
            f"{name}: baseline smoke={baseline.get('smoke')} but current "
            f"smoke={current.get('smoke')} — regenerate the baseline with "
            f"the matching mode"
        ]

    base_flat = walk_metrics(baseline)
    cur_flat = walk_metrics(current)
    gated = 0
    for key, base_value in base_flat.items():
        if key.endswith("_speedup"):
            gated += 1
            cur_value = cur_flat.get(key)
            if not isinstance(cur_value, (int, float)):
                problems.append(f"{name}: {key} missing from current results")
                continue
            floor = float(base_value) * (1.0 - tolerance)
            if cur_value < floor:
                problems.append(
                    f"{name}: {key} regressed to {cur_value:.2f}x "
                    f"(baseline {float(base_value):.2f}x, floor {floor:.2f}x)"
                )
        elif key.endswith("within_budget"):
            gated += 1
            if cur_flat.get(key) is not True:
                problems.append(f"{name}: {key} is no longer true")
    if gated == 0:
        print(f"  {name}: no gated metrics in baseline (nothing to compare)")
    return problems


def main(argv: list[str]) -> int:
    tolerance = DEFAULT_TOLERANCE
    if "--tolerance" in argv:
        tolerance = float(argv[argv.index("--tolerance") + 1])

    baselines = sorted(BASELINE_DIR.glob("BENCH_*.json"))
    if not baselines:
        print(f"no baselines under {BASELINE_DIR}; nothing to gate")
        return 0

    problems: list[str] = []
    for path in baselines:
        current_path = RESULTS_DIR / path.name
        if not current_path.exists():
            problems.append(
                f"{path.name}: no current record at {current_path} "
                f"(run the smoke benchmarks first)"
            )
            continue
        baseline = json.loads(path.read_text())
        current = json.loads(current_path.read_text())
        record_problems = compare_record(path.name, baseline, current, tolerance)
        if not record_problems:
            speedups = {
                k: v
                for k, v in walk_metrics(current).items()
                if k.endswith("_speedup")
            }
            detail = ", ".join(f"{k}={v:.2f}x" for k, v in speedups.items())
            print(f"  {path.name}: ok" + (f" ({detail})" if detail else ""))
        problems.extend(record_problems)

    if problems:
        print(f"bench-compare: {len(problems)} regression(s) at {tolerance:.0%} tolerance:")
        for p in problems:
            print(f"  FAIL {p}")
        return 1
    print(f"bench-compare: all {len(baselines)} baseline(s) hold at {tolerance:.0%} tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
