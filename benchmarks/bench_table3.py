"""Regenerate paper Table 3: DistMSM vs Best-GPU across the full grid.

The full 4-curve x 4-size x 4-GPU-count grid is produced and written to
``results/table3.txt``; the benchmark timer wraps a representative cell so
the harness also reports how long one modelled estimate takes.
"""

from conftest import save_result

from repro.analysis import paper_data
from repro.analysis.experiments import table3
from repro.core.distmsm import DistMsm
from repro.curves.params import curve_by_name
from repro.gpu.cluster import MultiGpuSystem


def test_table3_full_grid(benchmark):
    result = benchmark.pedantic(table3, rounds=1, iterations=1)
    save_result("table3", result.render())

    # headline sanity against the paper
    assert result.average_multi_gpu_speedup > 3.0
    for row in result.rows:
        paper_bg, paper_dist, _ = paper_data.TABLE3[(row.curve, row.log_n)]
        for i, cell in enumerate(row.cells):
            # modelled DistMSM times track the paper within ~2x everywhere
            assert 0.3 < cell.dist_ms / paper_dist[i] < 2.5


def test_single_estimate_cost(benchmark):
    engine = DistMsm(MultiGpuSystem(8))
    benchmark(engine.estimate, curve_by_name("BLS12-381"), 1 << 26)
