"""Real timings of the kernel-level machinery (pytest-benchmark).

The exhaustive scheduler and the tensor-core byte-matrix path are real
computations; their costs matter because they run at import/experiment time.
"""

import pytest

from repro.curves.params import curve_by_name
from repro.fields.montgomery import MontgomeryContext
from repro.kernels.dag import build_pacc_dag, build_padd_dag, peak_live
from repro.kernels.montmul_tc import TensorCoreMontgomery, constant_operand_matrix, tensor_core_multiply
from repro.kernels.scheduler import find_optimal_schedule
from repro.kernels.spill import plan_spills

BN254 = curve_by_name("BN254")


def test_exhaustive_schedule_padd(benchmark):
    dag = build_padd_dag()
    result = benchmark(find_optimal_schedule, dag)
    assert result.peak == 9


def test_exhaustive_schedule_pacc(benchmark):
    dag = build_pacc_dag()
    result = benchmark(find_optimal_schedule, dag)
    assert result.peak == 7


def test_liveness_analysis(benchmark):
    dag = build_padd_dag()
    assert benchmark(peak_live, dag) == 11


def test_spill_planning(benchmark):
    dag = build_pacc_dag()
    order = list(find_optimal_schedule(dag).order)
    plan = benchmark(plan_spills, dag, order, 5)
    assert plan.feasible


@pytest.fixture(scope="module")
def tc():
    return TensorCoreMontgomery(MontgomeryContext(BN254.p))


def test_tc_matrix_build(benchmark):
    benchmark(constant_operand_matrix, BN254.p, 32)


def test_tc_multiply(benchmark, tc):
    m = BN254.p // 3
    benchmark(tensor_core_multiply, m, tc.mat_n)


def test_tc_full_montgomery(benchmark, tc):
    am = tc.ctx.to_mont(123456789)
    bm = tc.ctx.to_mont(987654321)
    result = benchmark(tc.multiply, am, bm)
    assert result.product == tc.ctx.mont_mul_int(am, bm)
