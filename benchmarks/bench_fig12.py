"""Regenerate paper Fig. 12: cumulative PADD-kernel optimisation speedups."""

from conftest import save_result

import pytest

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.experiments import figure12


def test_figure12(benchmark):
    result = benchmark.pedantic(figure12, rounds=1, iterations=1)
    stages = [r.stage for r in result.rows if r.curve == "BN254"]
    series = {}
    for curve in ("BN254", "BLS12-377", "MNT4753"):
        series[curve] = [
            r.cumulative_speedup for r in result.rows if r.curve == curve
        ]
    plot = ascii_plot(
        series,
        title="cumulative kernel speedup per optimisation stage",
        x_labels=[s[:6] for s in stages],
    )
    save_result("figure12", result.render() + "\n\n" + plot)

    totals = result.totals()
    # paper: 1.94x for MNT4753, 1.61x average for the other three
    assert totals["MNT4753"] == pytest.approx(1.94, rel=0.10)
    small = [totals[c] for c in ("BN254", "BLS12-377", "BLS12-381")]
    assert sum(small) / 3 == pytest.approx(1.61, rel=0.12)

    # per-stage shape: naive TC hurts, compaction recovers (except MNT)
    for curve in ("BLS12-377", "BLS12-381"):
        stages = {r.stage: r.cumulative_speedup for r in result.rows if r.curve == curve}
        assert stages["MontMul with TC"] < stages["Explicit Spill"]
        assert stages["On-the-fly Compact"] > stages["MontMul with TC"]
    mnt = {r.stage: r.cumulative_speedup for r in result.rows if r.curve == "MNT4753"}
    assert mnt["On-the-fly Compact"] < mnt["MontMul with TC"]
