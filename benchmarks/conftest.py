"""Shared benchmark helpers: persist regenerated tables under results/."""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def save_result(name: str, text: str) -> None:
    """Write a regenerated table/figure to results/<name>.txt and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
