"""Byzantine-tolerance cost study: what chunk verification buys and costs.

Three questions, one file:

* **Does the tax amortize?**  The dispatcher's verify pass folds the
  delivered buckets (O(buckets) point-adds per chunk) plus one O(1)
  response check — independent of the points behind them — so its share
  of the makespan must *fall* as the MSM grows.  Swept analytically on
  BLS12-381 at 2^20/2^22/2^24 points; the ratio of the smallest run's
  overhead fraction to the largest's is the gated ``amortization_speedup``.

* **Does per-chunk cost shrink with the cluster?**  More GPUs means more,
  smaller chunks; the per-chunk verify cost must scale down with them
  (gated ``per_chunk_scaling_speedup`` over 4/8/16 GPUs).  Note the
  verify tasks serialize on the host CPU while the work they check runs
  GPU-parallel, so the *absolute* tax is real — the gate holds the
  2^24-point overhead under ``OVERHEAD_CEILING`` times the unverified
  makespan, the documented price of not trusting the workers.

* **What do cheaters cost?**  Makespan of an honest verified run vs one
  cheater vs 25% of the cluster cheating: every forged chunk is caught
  on receipt, its GPU quarantined, the rejected slots re-served by the
  survivors — slower, never wrong.  A functional toy-curve column rides
  along proving bit-exactness and quarantine on every plan, with the
  audit trail passing the end-to-end integrity checker.

Writes ``results/BENCH_byzantine.json`` for the CI regression gate
(``benchmarks/compare_bench.py`` gates the ``*_speedup`` ratios and
``within_budget`` booleans).  Runs under pytest-benchmark (``make
bench``) and standalone:

    PYTHONPATH=src python benchmarks/bench_byzantine.py [--smoke]

``--smoke`` (the ``make byzantine-smoke`` CI hook) trims the functional
sweep while still exercising every verdict path and invariant; the
analytic sweeps are closed-form and run in full either way.
"""

from __future__ import annotations

import json
import pathlib
import sys

from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm
from repro.curves.params import curve_by_name
from repro.curves.sampling import msm_instance
from repro.curves.toy import toy_curve
from repro.engine.faults import ByzantineWorker, FaultPlan
from repro.gpu.cluster import MultiGpuSystem
from repro.msm.naive import naive_msm
from repro.verify.integritycheck import verify_msm_integrity

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

CURVE = curve_by_name("BLS12-381")
LOG_SIZES = (20, 22, 24)
GPU_COUNTS = (4, 8, 16)
SCALING_LOG_N = 22

#: fixed window so the study measures verification, not the autotune sweep
WINDOW = 10

#: at 2^24 points the (CPU-serial) verification tax may cost at most
#: this multiple of the unverified makespan
OVERHEAD_CEILING = 2.0

#: quarantining 25% of the cluster may cost at most this slowdown over
#: the honest verified run (survivors re-serve the rejected chunks)
CHEATER_SLOWDOWN_BUDGET = 2.5

#: functional column (bit-exactness proof riding along)
FUNC_GPUS = 4
FUNC_SEEDS = 6


def _engine(gpus: int, **overrides) -> DistMsm:
    return DistMsm(
        MultiGpuSystem(gpus), DistMsmConfig(window_size=WINDOW, **overrides)
    )


def _overhead_pair(gpus: int, n: int) -> tuple[float, float, int]:
    """(base_ms, verified_ms, chunk count) for one analytic configuration."""
    base = _engine(gpus, verify_chunks=False).estimate(CURVE, n)
    taxed = _engine(gpus, verify_chunks=True).estimate(CURVE, n)
    report = taxed.byzantine_report
    assert report is not None and report.verified
    return base.time_ms, taxed.time_ms, len(report.chunks)


def _amortization_sweep(payload: dict) -> None:
    """Verify-on vs off across MSM sizes at 8 GPUs: the tax must fade."""
    rows = {}
    fractions = {}
    for log_n in LOG_SIZES:
        base_ms, taxed_ms, chunks = _overhead_pair(8, 1 << log_n)
        fraction = (taxed_ms - base_ms) / base_ms
        fractions[log_n] = fraction
        rows[f"n{log_n}"] = {
            "chunks": chunks,
            "base_ms": round(base_ms, 3),
            "verified_ms": round(taxed_ms, 3),
            "overhead_fraction": round(fraction, 4),
        }
    largest = fractions[LOG_SIZES[-1]]
    payload["amortization"] = {
        **rows,
        "gpus": 8,
        "amortization_speedup": round(fractions[LOG_SIZES[0]] / largest, 2),
        "ceiling": OVERHEAD_CEILING,
        "overhead_within_budget": bool(largest < OVERHEAD_CEILING),
    }


def _chunk_scaling_sweep(payload: dict) -> None:
    """Per-chunk verify cost across cluster sizes at 2^22 points."""
    rows = {}
    per_chunk = {}
    n = 1 << SCALING_LOG_N
    for gpus in GPU_COUNTS:
        base_ms, taxed_ms, chunks = _overhead_pair(gpus, n)
        per_chunk[gpus] = (taxed_ms - base_ms) / chunks
        rows[f"g{gpus}"] = {
            "chunks": chunks,
            "overhead_ms": round(taxed_ms - base_ms, 3),
            "per_chunk_ms": round(per_chunk[gpus], 4),
        }
    payload["chunk_scaling"] = {
        **rows,
        "log2_points": SCALING_LOG_N,
        "per_chunk_scaling_speedup": round(
            per_chunk[GPU_COUNTS[0]] / per_chunk[GPU_COUNTS[-1]], 2
        ),
    }


def _cheater_makespans(payload: dict) -> None:
    """Honest vs 1-cheater vs 25%-cheaters on the 8-GPU analytic path."""
    gpus = 8
    n = 1 << SCALING_LOG_N
    engine = _engine(gpus)  # verify_chunks="auto"
    honest = _engine(gpus, verify_chunks=True).estimate(CURVE, n)
    one = engine.estimate(
        CURVE, n, faults=FaultPlan.of(ByzantineWorker(gpus - 1, seed=2))
    )
    quarter_plan = FaultPlan.of(
        *(ByzantineWorker(g, seed=g + 1) for g in range(gpus // 4))
    )
    quarter = engine.estimate(CURVE, n, faults=quarter_plan)
    for result, cheaters in ((one, 1), (quarter, gpus // 4)):
        report = result.byzantine_report
        assert report is not None and report.caught
        assert len(report.quarantined_gpus) == cheaters
        checked = verify_msm_integrity(result)
        assert checked.ok, [str(v) for v in checked.violations]
    slowdown = quarter.time_ms / honest.time_ms
    payload["cheater_makespans"] = {
        "gpus": gpus,
        "log2_points": SCALING_LOG_N,
        "honest_verified_ms": round(honest.time_ms, 3),
        "one_cheater_ms": round(one.time_ms, 3),
        "quarter_cheaters_ms": round(quarter.time_ms, 3),
        "quarter_slowdown": round(slowdown, 3),
        "slowdown_budget": CHEATER_SLOWDOWN_BUDGET,
        "cheaters_within_budget": bool(slowdown < CHEATER_SLOWDOWN_BUDGET),
    }


def _functional_column(payload: dict, seeds: int) -> None:
    """Toy-curve proof: every seeded cheater plan stays bit-exact."""
    toy = toy_curve()
    cfg = DistMsmConfig(window_size=4, threads_per_block=32, points_per_thread=4)
    engine = DistMsm(MultiGpuSystem(FUNC_GPUS), cfg)
    scalars, points = msm_instance(toy, 32, seed=97)
    expected = naive_msm(scalars, points, toy)
    exact = caught = 0
    modes = ("wrong-result", "bit-flip", "off-by-one-bucket")
    for seed in range(seeds):
        plan = FaultPlan.of(
            ByzantineWorker(seed % FUNC_GPUS, mode=modes[seed % 3], seed=seed)
        )
        result = engine.execute(scalars, points, toy, faults=plan)
        report = result.byzantine_report
        checked = verify_msm_integrity(result)
        assert checked.ok, [str(v) for v in checked.violations]
        if result.point == expected:
            exact += 1
        if report.caught and report.quarantined_gpus == (seed % FUNC_GPUS,):
            caught += 1
    payload["functional"] = {
        "gpus": FUNC_GPUS,
        "plans": seeds,
        "bit_exact": exact,
        "cheaters_caught": caught,
    }


def byzantine_report(smoke: bool = False) -> dict:
    payload: dict = {
        "bench": "byzantine",
        "curve": CURVE.name,
        "window_size": WINDOW,
        "smoke": smoke,
    }
    _amortization_sweep(payload)
    _chunk_scaling_sweep(payload)
    _cheater_makespans(payload)
    _functional_column(payload, seeds=2 if smoke else FUNC_SEEDS)
    return payload


def check_invariants(payload: dict) -> None:
    """The robustness claims this PR stands on."""
    amort = payload["amortization"]
    # verification is never free, and its share strictly falls with size
    fracs = [amort[f"n{log_n}"]["overhead_fraction"] for log_n in LOG_SIZES]
    assert all(f > 0.0 for f in fracs), amort
    assert all(a > b for a, b in zip(fracs, fracs[1:])), amort
    assert amort["overhead_within_budget"], amort
    scaling = payload["chunk_scaling"]
    per_chunk = [scaling[f"g{g}"]["per_chunk_ms"] for g in GPU_COUNTS]
    assert all(a > b for a, b in zip(per_chunk, per_chunk[1:])), scaling
    mk = payload["cheater_makespans"]
    # catching cheaters costs time, never correctness
    assert mk["one_cheater_ms"] >= mk["honest_verified_ms"], mk
    assert mk["quarter_cheaters_ms"] >= mk["one_cheater_ms"], mk
    assert mk["cheaters_within_budget"], mk
    func = payload["functional"]
    assert func["bit_exact"] == func["plans"], func
    assert func["cheaters_caught"] == func["plans"], func


def write_output(payload: dict) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_byzantine.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def test_bench_byzantine(benchmark):
    payload = benchmark.pedantic(
        byzantine_report, args=(True,), rounds=1, iterations=1
    )
    write_output(payload)
    check_invariants(payload)


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    payload = byzantine_report(smoke=smoke)
    check_invariants(payload)
    path = write_output(payload)
    amort = payload["amortization"]
    scaling = payload["chunk_scaling"]
    mk = payload["cheater_makespans"]
    func = payload["functional"]
    print(
        f"byzantine: verify tax fades {amort['amortization_speedup']:.1f}x "
        f"from 2^{LOG_SIZES[0]} to 2^{LOG_SIZES[-1]} "
        f"(share {amort[f'n{LOG_SIZES[-1]}']['overhead_fraction']:.2f} vs "
        f"ceiling {amort['ceiling']:.1f}); per-chunk cost scales "
        f"{scaling['per_chunk_scaling_speedup']:.1f}x over "
        f"{GPU_COUNTS[0]}->{GPU_COUNTS[-1]} GPUs; 25% cheaters "
        f"{mk['quarter_slowdown']:.2f}x honest (budget "
        f"{mk['slowdown_budget']:.1f}x); functional "
        f"{func['bit_exact']}/{func['plans']} bit-exact, "
        f"{func['cheaters_caught']}/{func['plans']} cheaters quarantined"
    )
    print(f"[saved to {path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
