"""Vectorized-backend and heap-engine speedup benchmark.

Usage::

    PYTHONPATH=src python benchmarks/bench_vectorized.py [--smoke]

Measures the two rewrites this repo's "vectorized execution" layer is
built from, always against the scalar implementations they replaced, and
writes machine-readable records for the CI regression gate
(``benchmarks/compare_bench.py``):

* ``results/BENCH_msm_backend.json`` — the functional MSM backend.
  Window sums (digit decomposition + scatter + segmented bucket
  accumulation, the per-point hot path) timed scalar-vs-array on the toy
  curve; end-to-end ``DistMsm.execute`` at the same sizes; a 2^20-point
  4-GPU vectorized run against the 60 s CI budget; and the honest
  multi-limb numbers on BLS12-381 showing why ``vectorized="auto"``
  keeps the scalar loops for big fields.  Every timed pair is asserted
  bit-identical (points and event counters) before its time is reported.

* ``results/BENCH_engine.json`` — ``engine.simulate`` against the frozen
  pre-rewrite loop (``repro.engine._reference``), the 10^6-task wall
  time against its 10 s budget, and the O(1)-vs-O(failures) audit-lookup
  comparison (``Timeline.failure_for`` / ``attempts_for``).

GC note: the timed sections run with the collector disabled (recorded as
``"gc_disabled": true``) — at 10^6 tasks collector pauses add ~40% of
pure allocation-tracking overhead to an allocation-heavy loop that
creates no cycles.

``--smoke`` (the ``make bench-smoke`` hook) shrinks the instance sizes
so the whole file stays under ~2 minutes while still exercising every
code path and identity assertion.
"""

from __future__ import annotations

import gc
import json
import pathlib
import random
import sys
import time

from repro.core.backends import FunctionalBackend
from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm, _GpuWork
from repro.core.planner import Assignment
from repro.curves.params import curve_by_name
from repro.curves.sampling import msm_instance
from repro.curves.toy import toy_curve
from repro.engine._reference import reference_simulate
from repro.engine.faults import FaultPlan, RetryPolicy, TransferError
from repro.engine.resources import GPU_COMPUTE, TRANSFER, Resource
from repro.engine.timeline import Task, simulate
from repro.gpu.cluster import MultiGpuSystem

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

NUM_GPUS = 4
TOY_WINDOW = 6
#: acceptance budgets the CI gate holds this machine to
MSM_2POW20_BUDGET_S = 60.0
SIMULATE_1M_BUDGET_S = 10.0


def _timed(fn, *args):
    """(wall seconds, result) with GC off around the measured call."""
    gc_was_on = gc.isenabled()
    gc.collect()  # drain garbage from earlier sections before timing
    gc.disable()
    try:
        start = time.perf_counter()
        out = fn(*args)
        elapsed = time.perf_counter() - start
    finally:
        if gc_was_on:
            gc.enable()
    return elapsed, out


# -- MSM backend ---------------------------------------------------------------


def _window_sums(curve, scalars, points, vectorized):
    """Run prepare + every window's full-range scatter/bucket-sum.

    This is exactly the per-point work ``FunctionalBackend`` does for one
    GPU that owns the whole point vector and bucket range — the paths the
    vectorized layer replaces — with the orchestration, timeline and
    bucket-reduce phases excluded.
    """
    system = MultiGpuSystem(num_gpus=1)
    msm = DistMsm(system, DistMsmConfig(window_size=TOY_WINDOW, vectorized=vectorized))
    backend = FunctionalBackend(msm, scalars, points, curve)
    n_win = -(-curve.scalar_bits // TOY_WINDOW)
    backend.prepare(TOY_WINDOW, n_win, n_win)
    work = _GpuWork()
    sums = [
        backend.run_assignment(
            work, Assignment(gpu=0, window=w), msm.num_buckets(TOY_WINDOW)
        )
        for w in range(n_win)
    ]
    return sums, work


def bench_msm_backend(smoke: bool) -> dict:
    toy = toy_curve()
    log_kernel = 16 if smoke else 18
    log_large = 18 if smoke else 20

    payload: dict = {
        "bench": "msm_backend",
        "curve": toy.name,
        "num_gpus": NUM_GPUS,
        "window_size": TOY_WINDOW,
        "gc_disabled": True,
        "smoke": smoke,
    }

    # window sums: the per-point hot path, scalar loops vs array passes
    scalars, points = msm_instance(toy, 1 << log_kernel, seed=7)
    t_scalar, (sums_s, work_s) = _timed(_window_sums, toy, scalars, points, False)
    t_vector, (sums_v, work_v) = _timed(_window_sums, toy, scalars, points, True)
    assert sums_s == sums_v, "vectorized window sums diverge from scalar"
    assert (work_s.scatter, work_s.sums) == (work_v.scatter, work_v.sums), (
        "vectorized event counters diverge from scalar"
    )
    payload["window_sums"] = {
        "log2_points": log_kernel,
        "scalar_s": round(t_scalar, 3),
        "vectorized_s": round(t_vector, 3),
        "window_sums_speedup": round(t_scalar / t_vector, 2),
    }

    # end to end, same instance: orchestration + reduce phases included
    system = MultiGpuSystem(num_gpus=NUM_GPUS)
    scalar_engine = DistMsm(
        system, DistMsmConfig(window_size=TOY_WINDOW, vectorized=False)
    )
    vector_engine = DistMsm(
        system, DistMsmConfig(window_size=TOY_WINDOW, vectorized=True)
    )
    t_scalar, res_s = _timed(scalar_engine.execute, scalars, points, toy)
    t_vector, res_v = _timed(vector_engine.execute, scalars, points, toy)
    assert res_s.point == res_v.point, "end-to-end MSM results diverge"
    payload["end_to_end"] = {
        "log2_points": log_kernel,
        "scalar_s": round(t_scalar, 3),
        "vectorized_s": round(t_vector, 3),
        "end_to_end_speedup": round(t_scalar / t_vector, 2),
    }

    # bit-identity cross-check at 2^14 (results, counters, modelled time)
    xs, xp = msm_instance(toy, 1 << 14, seed=11)
    res_s = scalar_engine.execute(xs, xp, toy)
    res_v = vector_engine.execute(xs, xp, toy)
    assert (res_s.point, res_s.counters, res_s.time_ms) == (
        res_v.point,
        res_v.counters,
        res_v.time_ms,
    ), "2^14 cross-check: vectorized run is not bit-identical"
    payload["cross_check"] = {"log2_points": 14, "bit_identical": True}

    # the large-MSM budget: 2^20 points, 4 GPUs, vectorized path.  The
    # base points tile a 2^14 sample (point sampling costs ~20 s at 2^20,
    # which would swamp the run being measured); the scalars are fresh.
    rng = random.Random(13)
    _, tile = msm_instance(toy, 1 << 14, seed=13)
    reps = (1 << log_large) >> 14
    big_points = tile * reps
    big_scalars = [rng.randrange(1, toy.r) for _ in range(1 << log_large)]
    t_large, res = _timed(vector_engine.execute, big_scalars, big_points, toy)
    payload["large_run"] = {
        "log2_points": log_large,
        "vectorized_s": round(t_large, 3),
        "budget_s": MSM_2POW20_BUDGET_S,
        "within_budget": bool(t_large < MSM_2POW20_BUDGET_S),
        "msm_time_model_ms": round(res.time_ms, 3),
    }
    assert t_large < MSM_2POW20_BUDGET_S, (
        f"2^{log_large} vectorized MSM took {t_large:.1f}s "
        f"(budget {MSM_2POW20_BUDGET_S:.0f}s)"
    )

    # honesty section: multi-limb fields.  CPython big ints beat the
    # 26-bit-limb numpy Montgomery kernels at benchmark sizes, which is
    # why vectorized="auto" routes big curves to the scalar loops.
    bls = curve_by_name("BLS12-381")
    log_big = 10 if smoke else 12
    bs, bp = msm_instance(bls, 1 << log_big, seed=7)
    scalar_engine = DistMsm(system, DistMsmConfig(window_size=8, vectorized=False))
    forced_engine = DistMsm(system, DistMsmConfig(window_size=8, vectorized=True))
    t_scalar, res_s = _timed(scalar_engine.execute, bs, bp, bls)
    t_vector, res_v = _timed(forced_engine.execute, bs, bp, bls)
    assert res_s.point == res_v.point, "forced-vectorized BLS12-381 run diverges"
    payload["multi_limb"] = {
        "curve": bls.name,
        "log2_points": log_big,
        "scalar_s": round(t_scalar, 3),
        "forced_vectorized_s": round(t_vector, 3),
        "auto_routes_to": "scalar",
    }
    return payload


# -- engine --------------------------------------------------------------------


def _random_dag(n: int, seed: int = 0) -> list[Task]:
    """A layered random DAG over 16 GPU streams (≤2 deps per task)."""
    rng = random.Random(seed)
    resources = [Resource(f"gpu{i}", GPU_COMPUTE, i) for i in range(16)]
    tasks = []
    for i in range(n):
        lo = max(0, i - 200)
        deps = (
            tuple({f"t{rng.randrange(lo, i)}" for _ in range(rng.randrange(0, 3))})
            if i
            else ()
        )
        tasks.append(Task(f"t{i}", resources[rng.randrange(16)], rng.uniform(0.01, 2.0), deps))
    return tasks


def _faulted_timeline(n: int, seed: int = 0):
    """A timeline rich in attempts/failures for the audit-lookup bench."""
    rng = random.Random(seed)
    link = Resource("node0-link", TRANSFER, 0)
    tasks = [
        Task(f"t{i}", link, 1.0, (f"t{i - 1}",) if i else ())
        for i in range(n)
    ]
    errors = tuple(
        TransferError(node=0, at_ms=rng.uniform(0, n * 1.0), transient=True)
        for _ in range(n // 4)
    )
    plan = FaultPlan(errors)
    return simulate(tasks, faults=plan, retry=RetryPolicy(max_retries=2))


def _audit_all(tl, names):
    return [tl.failure_for(t) for t in names], [tl.attempts_for(t) for t in names]


def _audit_all_linear(tl, names):
    """The pre-index implementation: one full scan per query."""
    failures = [next((f for f in tl.failures if f.task == t), None) for t in names]
    attempts = [
        tuple(sorted((a for a in tl.attempts if a.task == t), key=lambda a: a.attempt))
        for t in names
    ]
    return failures, attempts


def bench_engine(smoke: bool) -> dict:
    payload: dict = {"bench": "engine", "gc_disabled": True, "smoke": smoke}

    # head-to-head vs the frozen reference loop
    n_small = 30_000 if smoke else 100_000
    tasks = _random_dag(n_small)
    t_new, tl_new = _timed(simulate, tasks)
    t_ref, tl_ref = _timed(reference_simulate, tasks)
    assert list(tl_new.spans.items()) == list(tl_ref.spans.items())
    assert tl_new.total_ms == tl_ref.total_ms
    payload["simulate"] = {
        "tasks": n_small,
        "new_s": round(t_new, 3),
        "reference_s": round(t_ref, 3),
        "simulate_speedup": round(t_ref / t_new, 2),
    }

    # the 10^6-task budget the rewrite exists for
    n_large = 200_000 if smoke else 1_000_000
    tasks = _random_dag(n_large, seed=1)
    t_large, tl = _timed(simulate, tasks)
    budget = SIMULATE_1M_BUDGET_S * (n_large / 1_000_000)
    payload["large_run"] = {
        "tasks": n_large,
        "wall_s": round(t_large, 3),
        "budget_s": round(budget, 3),
        "within_budget": bool(t_large < budget),
        "makespan_ms": round(tl.total_ms, 3),
    }
    assert t_large < budget, (
        f"{n_large}-task simulate took {t_large:.1f}s (budget {budget:.1f}s)"
    )

    # audit lookups: lazy per-task indexes vs the old per-query scan
    n_audit = 2_000 if smoke else 10_000
    tl = _faulted_timeline(n_audit, seed=2)
    names = [t.name for t in tl.tasks]
    t_index, indexed = _timed(_audit_all, tl, names)
    t_linear, linear = _timed(_audit_all_linear, tl, names)
    assert indexed == linear, "indexed audit lookups diverge from linear scans"
    payload["audit_lookup"] = {
        "tasks": n_audit,
        "failures": len(tl.failures),
        "attempts": len(tl.attempts),
        "indexed_s": round(t_index, 4),
        "linear_scan_s": round(t_linear, 4),
        "audit_speedup": round(t_linear / t_index, 1),
    }
    return payload


# -- driver --------------------------------------------------------------------


def write_output(name: str, payload: dict) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def _print_summary(msm: dict, eng: dict) -> None:
    ws = msm["window_sums"]
    ee = msm["end_to_end"]
    lr = msm["large_run"]
    print(
        f"msm-backend: window sums 2^{ws['log2_points']} "
        f"{ws['scalar_s']:.2f}s -> {ws['vectorized_s']:.2f}s "
        f"({ws['window_sums_speedup']:.1f}x); end-to-end "
        f"{ee['end_to_end_speedup']:.1f}x; 2^{lr['log2_points']} run "
        f"{lr['vectorized_s']:.2f}s (budget {lr['budget_s']:.0f}s)"
    )
    sim = eng["simulate"]
    big = eng["large_run"]
    audit = eng["audit_lookup"]
    print(
        f"engine: simulate {sim['tasks']} tasks "
        f"{sim['reference_s']:.2f}s -> {sim['new_s']:.2f}s "
        f"({sim['simulate_speedup']:.2f}x); {big['tasks']} tasks in "
        f"{big['wall_s']:.2f}s (budget {big['budget_s']:.1f}s); audit "
        f"lookups {audit['audit_speedup']:.0f}x"
    )


def test_bench_vectorized(benchmark):
    eng = bench_engine(True)
    msm = benchmark.pedantic(bench_msm_backend, args=(True,), rounds=1, iterations=1)
    write_output("BENCH_msm_backend", msm)
    write_output("BENCH_engine", eng)
    assert msm["large_run"]["within_budget"]
    assert eng["large_run"]["within_budget"]


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    # engine first: the MSM section leaves hundreds of MB of long-lived
    # allocations that would slow the allocation-heavy simulate timings
    eng = bench_engine(smoke)
    path_eng = write_output("BENCH_engine", eng)
    msm = bench_msm_backend(smoke)
    path_msm = write_output("BENCH_msm_backend", msm)
    _print_summary(msm, eng)
    print(f"[saved to {path_msm} and {path_eng}]")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
