"""Regenerate paper Fig. 10: optimisation breakdown vs the NO-OPT baseline."""

from conftest import save_result

from repro.analysis.experiments import figure10


def test_figure10(benchmark):
    result = benchmark.pedantic(
        figure10,
        kwargs={"log_n": 26, "gpu_counts": (1, 2, 4, 8, 16, 32)},
        rounds=1,
        iterations=1,
    )
    save_result("figure10", result.render())

    first, last = result.rows[0], result.rows[-1]
    # the multi-GPU algorithm's advantage grows with GPU count
    assert last.algo_speedup > first.algo_speedup
    # PADD optimisations alone lose steam at scale (paper's observation)
    assert last.kernel_speedup <= first.kernel_speedup * 1.2
    # full DistMSM beats NO-OPT everywhere
    assert all(r.observed > 1.0 for r in result.rows)
