"""Fault-recovery overhead study: cost of losing a GPU mid-MSM.

Sweeps single-GPU failures over 4/8/16-GPU systems at three failure
times (25/50/75% of the fault-free makespan) and reports the recovery
overhead the re-planner pays: detection latency (the next heartbeat
tick), redistribution of the lost chunks over the survivors, and the
re-executed work.  A functional chaos column double-checks that every
recovered run stays bit-exact against the fault-free reference.

Writes the table to ``results/fault_recovery.txt``.  Runs under
pytest-benchmark (``make bench``) and standalone:

    PYTHONPATH=src python benchmarks/bench_fault_recovery.py [--smoke]

``--smoke`` (the ``make chaos-smoke`` CI hook) trims the functional
sweep and just regenerates the table while asserting the recovery
invariants.
"""

from __future__ import annotations

import sys

from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm
from repro.curves.params import curve_by_name
from repro.curves.sampling import msm_instance
from repro.curves.toy import toy_curve
from repro.engine.faults import FaultPlan, GpuFailure
from repro.faults import random_fault_plan
from repro.gpu.cluster import MultiGpuSystem
from repro.msm.naive import naive_msm

CURVE = curve_by_name("BLS12-381")
N = 1 << 20
GPU_COUNTS = (4, 8, 16)
FAIL_FRACTIONS = (0.25, 0.50, 0.75)

#: fixed window so the study measures recovery, not the autotune sweep
CONFIG = DistMsmConfig(window_size=12)

#: functional chaos sweep (bit-exactness proof riding along)
CHAOS_SEEDS = 8
CHAOS_GPUS = 4


def _analytic_sweep(lines: list[str], metrics: dict) -> None:
    lines.append(
        f"analytic sweep — {CURVE.name}, 2^{N.bit_length() - 1} points, "
        f"single GPU killed at a fraction of the fault-free GPU phase"
    )
    lines.append(
        "(kills beyond the last transfer lose nothing: the host reduce "
        "already owns the data):"
    )
    lines.append(
        f"  {'gpus':>4}  {'fail@':>6}  {'fault-free':>10}  "
        f"{'recovered':>10}  {'overhead':>9}  {'detect':>7}"
    )
    for gpus in GPU_COUNTS:
        engine = DistMsm(MultiGpuSystem(gpus), CONFIG)
        # probe with a never-triggering kill to find the GPU-phase end
        # (the last transfer): failures only matter before that point
        probe = engine.estimate(
            CURVE, N, faults=FaultPlan.of(GpuFailure(1e9, 0))
        )
        gpu_phase_ms = max(
            s.end_ms
            for name, s in probe.timeline.spans.items()
            if ":transfer:" in name
        )
        for frac in FAIL_FRACTIONS:
            at = gpu_phase_ms * frac
            plan = FaultPlan.of(GpuFailure(at, gpus - 1))
            report = engine.estimate(CURVE, N, faults=plan).fault_report
            overhead = report.recovery_overhead_ms
            detect = report.rounds[-1].detected_at_ms if report.dead_gpus else at
            lines.append(
                f"  {gpus:>4}  {frac:>5.0%}  {report.fault_free_ms:>10.3f}  "
                f"{report.recovered_ms:>10.3f}  {overhead:>9.3f}  "
                f"{detect:>7.3f}"
            )
            metrics[f"g{gpus}_f{int(frac * 100)}_overhead_ms"] = overhead
            metrics[f"g{gpus}_f{int(frac * 100)}_recovered_ms"] = report.recovered_ms
            metrics[f"g{gpus}_f{int(frac * 100)}_base_ms"] = report.fault_free_ms


def _functional_chaos(lines: list[str], metrics: dict, seeds: int) -> None:
    toy = toy_curve()
    cfg = DistMsmConfig(window_size=4, threads_per_block=32, points_per_thread=4)
    engine = DistMsm(MultiGpuSystem(CHAOS_GPUS), cfg)
    scalars, points = msm_instance(toy, 32, seed=97)
    expected = naive_msm(scalars, points, toy)
    base = engine.execute(scalars, points, toy)
    exact = faulted = 0
    for seed in range(seeds):
        plan = random_fault_plan(seed, CHAOS_GPUS, max(base.time_ms, 0.05))
        if plan.empty:
            continue
        faulted += 1
        result = engine.execute(scalars, points, toy, faults=plan)
        assert result.fault_report.recovered_ms >= base.time_ms - 1e-9, seed
        if result.point == expected:
            exact += 1
    lines += [
        "",
        f"functional chaos — toy curve, {CHAOS_GPUS} GPUs, "
        f"{seeds} seeded random fault plans:",
        f"  {faulted} plans injected faults; {exact}/{faulted} recovered "
        f"bit-exact against the fault-free reference",
    ]
    metrics["chaos_plans"] = faulted
    metrics["chaos_bit_exact"] = exact


def fault_recovery_report(smoke: bool = False) -> tuple[str, dict]:
    """Build the recovery-overhead table and the chaos check."""
    lines: list[str] = ["Fault recovery study — failure-aware re-planning", ""]
    metrics: dict = {}
    _analytic_sweep(lines, metrics)
    _functional_chaos(lines, metrics, seeds=2 if smoke else CHAOS_SEEDS)
    return "\n".join(lines), metrics


def check_invariants(metrics: dict) -> None:
    """The recovery claims this PR stands on."""
    for gpus in GPU_COUNTS:
        for frac in FAIL_FRACTIONS:
            key = f"g{gpus}_f{int(frac * 100)}"
            # losing a GPU can never make the run faster, and the
            # overhead must be finite (recovery always converges)
            assert metrics[f"{key}_overhead_ms"] >= 0.0, (key, metrics)
            assert (
                metrics[f"{key}_recovered_ms"] >= metrics[f"{key}_base_ms"]
            ), (key, metrics)
    # every chaos plan that injected faults recovered bit-exact
    assert metrics["chaos_plans"] > 0, metrics
    assert metrics["chaos_bit_exact"] == metrics["chaos_plans"], metrics


def test_fault_recovery(benchmark):
    text, metrics = benchmark.pedantic(
        fault_recovery_report, rounds=1, iterations=1
    )
    from conftest import save_result

    save_result("fault_recovery", text)
    check_invariants(metrics)


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    text, metrics = fault_recovery_report(smoke=smoke)
    check_invariants(metrics)
    if smoke:
        print(
            f"chaos-smoke: {metrics['chaos_bit_exact']}/"
            f"{metrics['chaos_plans']} chaos plans bit-exact; "
            f"recovery overhead finite at all GPU counts; invariants hold"
        )
    import pathlib

    results = pathlib.Path(__file__).resolve().parent.parent / "results"
    results.mkdir(exist_ok=True)
    out = results / "fault_recovery.txt"
    out.write_text(text + "\n")
    if not smoke:
        print(text)
    print(f"[saved to {out}]")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
