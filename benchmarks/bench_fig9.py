"""Regenerate paper Fig. 9: DistMSM vs Bellperson across GPU models."""

import pytest

from conftest import save_result

from repro.analysis.experiments import figure9


def test_figure9(benchmark):
    result = benchmark.pedantic(figure9, kwargs={"log_n": 26}, rounds=1, iterations=1)
    save_result("figure9", result.render())

    a100, rtx, amd = result.rows
    # paper: ~16.5x over Bellperson on the NVIDIA GPUs, lower (~9.4x) on AMD
    assert a100.speedup > 5
    assert amd.speedup < a100.speedup
    # paper: both systems run faster on the RTX4090 than the A100
    assert rtx.distmsm_ms < a100.distmsm_ms
    assert rtx.bellperson_ms < a100.bellperson_ms
    # paper: DistMSM gains 1.89x from the RTX's int throughput; our model
    # gives 1.80x (Bellperson's 1.61x vs our 2.14x is a recorded deviation
    # — see EXPERIMENTS.md)
    assert a100.distmsm_ms / rtx.distmsm_ms == pytest.approx(1.89, rel=0.15)
