"""Static-analysis benchmark: rule counts and wall time per family.

Usage::

    PYTHONPATH=src python benchmarks/bench_analyze.py [--smoke]

Runs the full ``repro.analyze`` pass over ``src/repro`` — once per family
so the cost split is visible — and writes ``results/BENCH_analyze.json``:
files analyzed, discharged checks, active/suppressed finding counts per
rule, and the wall time of each family plus the whole pass.  Timing lives
here and not in the analyzer because the analyzer scans its own source:
a ``time.perf_counter()`` call inside ``src/repro`` would trip its own
``det-wall-clock`` rule.

The exit status mirrors the CLI contract: non-zero if the tree is dirty,
so a regression cannot hide behind the benchmark.  ``--smoke`` runs the
source families only (the program families import and search the kernel
DAG schedule space, which dominates the full run).
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.analyze import FAMILIES, analyze_paths

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"
SRC_ROOT = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


def timed_analysis(families: tuple[str, ...]) -> dict:
    """Run each family separately, then the combined pass, all timed."""
    per_family: dict[str, dict] = {}
    for family in families:
        start = time.perf_counter()
        report = analyze_paths(paths=[SRC_ROOT], families=(family,))
        elapsed = time.perf_counter() - start
        per_family[family] = {
            "wall_ms": round(elapsed * 1e3, 3),
            "files": report.files,
            "checks": len(report.checks),
            "findings": len(report.findings),
        }

    start = time.perf_counter()
    combined = analyze_paths(paths=[SRC_ROOT], families=families)
    total_ms = (time.perf_counter() - start) * 1e3

    return {
        "bench": "analyze",
        "root": "src/repro",
        "families": list(families),
        "files": combined.files,
        "checks": len(combined.checks),
        "ok": combined.ok,
        "active_findings": len(combined.findings),
        "suppressed_findings": len(combined.suppressed),
        "counts_by_rule": combined.counts_by_rule(),
        "per_family": per_family,
        "total_wall_ms": round(total_ms, 3),
    }


def write_output(payload: dict) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_analyze.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def test_analyze_benchmark(benchmark):
    payload = benchmark.pedantic(
        timed_analysis, args=(FAMILIES,), rounds=1, iterations=1
    )
    assert payload["ok"], payload["counts_by_rule"]
    assert payload["files"] > 100
    write_output(payload)


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    families = ("determinism", "units") if smoke else FAMILIES
    payload = timed_analysis(families)
    path = write_output(payload)
    label = "analyze-smoke" if smoke else "analyze"
    print(
        f"{label}: {payload['files']} files, {payload['checks']} checks, "
        f"{payload['active_findings']} findings in "
        f"{payload['total_wall_ms']:.1f} ms"
    )
    for family, stats in payload["per_family"].items():
        print(
            f"  {family:<12} {stats['wall_ms']:>9.1f} ms  "
            f"{stats['checks']} checks, {stats['findings']} findings"
        )
    print(f"[saved to {path}]")
    return 0 if payload["ok"] else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
