"""Serving-latency study: continuous batching vs one-request-at-a-time.

Sweeps offered load (seeded Poisson arrivals) over 1/2/4 GPU-group
deployments of a 4-GPU system and reports the SLO tail — p50/p95/p99
latency and achieved throughput — then runs the head-to-head the serving
layer stands on: at high offered load, continuous batching must beat the
serial one-request-at-a-time baseline on p95 latency at equal-or-better
throughput.  A functional column rides along: toy-curve requests with
real payloads served mid-GPU-failure, every response checked bit-exact
against the naive reference.

Writes the table to ``results/serving_latency.txt`` (secondary, human
eyes) and the gated record to ``results/BENCH_serving.json`` — the
``showdown_p95_speedup`` ratio (serial p95 / batched p95, machine-speed
free) is regression-gated by ``benchmarks/compare_bench.py`` against
``benchmarks/baselines/BENCH_serving.json``.  Runs under pytest-benchmark
(``make bench``) and standalone:

    PYTHONPATH=src python benchmarks/bench_serving.py [--smoke]

``--smoke`` (the ``make serve-smoke`` CI hook) trims the sweep and just
regenerates the table while asserting the serving invariants.
"""

from __future__ import annotations

import sys

from repro.core.config import DistMsmConfig
from repro.curves.params import curve_by_name
from repro.curves.sampling import msm_instance
from repro.curves.toy import toy_curve
from repro.engine.faults import FaultPlan, GpuFailure
from repro.gpu.cluster import MultiGpuSystem
from repro.msm.naive import naive_msm
from repro.serve import (
    MsmPayload,
    MsmProofServer,
    PlanCache,
    ProofRequest,
    ServeConfig,
    poisson_trace,
    serve_one_at_a_time,
)

CURVE = curve_by_name("BLS12-381")
N = 1 << 16
GPUS = 4
GROUP_SWEEP = (1, 2, 4)
LOAD_SWEEP_RPS = (100.0, 200.0, 300.0, 450.0)
#: the head-to-head load: near the serial baseline's saturation point
SHOWDOWN_RPS = 450.0
REQUESTS = 48
SEED = 7

#: the production config (§3.1 auto-tuned window); the plan cache pays the
#: autotune sweep once per (curve, n, group size) and memoizes it
CONFIG = DistMsmConfig()


def _serve_once(rate_rps: float, groups: int, count: int, cache: PlanCache):
    trace = poisson_trace(CURVE, count, rate_rps, seed=SEED, sizes=N)
    server = MsmProofServer(
        MultiGpuSystem(GPUS),
        CONFIG,
        ServeConfig(gpu_groups=groups, max_batch_size=4, max_wait_ms=1.0),
        plan_cache=cache,
    )
    return server.serve(trace)


def _load_sweep(lines: list[str], metrics: dict, count: int) -> None:
    lines.append(
        f"load sweep — {CURVE.name}, 2^{N.bit_length() - 1} points/request, "
        f"{GPUS} GPUs, seeded Poisson arrivals, {count} requests"
    )
    lines.append(
        f"  {'groups':>6}  {'offered':>8}  {'achieved':>8}  "
        f"{'p50':>8}  {'p95':>8}  {'p99':>8}  {'util':>5}"
    )
    cache = PlanCache()
    for groups in GROUP_SWEEP:
        for rate in LOAD_SWEEP_RPS:
            m = _serve_once(rate, groups, count, cache).metrics
            lines.append(
                f"  {groups:>6}  {rate:>6.0f}/s  {m.throughput_rps:>6.1f}/s  "
                f"{m.p50_ms:>8.3f}  {m.p95_ms:>8.3f}  {m.p99_ms:>8.3f}  "
                f"{m.gpu_utilization():>5.0%}"
            )
            key = f"g{groups}_r{int(rate)}"
            metrics[f"{key}_p95_ms"] = m.p95_ms
            metrics[f"{key}_thr_rps"] = m.throughput_rps
    stats = cache.stats
    lines.append(
        f"  plan cache over the sweep: {stats.hits} hits / "
        f"{stats.misses} misses (hit rate {stats.hit_rate:.0%})"
    )
    metrics["plan_hit_rate"] = stats.hit_rate


def _showdown(lines: list[str], metrics: dict, count: int) -> None:
    """Batched vs serial at the same offered load (the acceptance claim)."""
    trace = poisson_trace(CURVE, count, SHOWDOWN_RPS, seed=SEED, sizes=N)
    # same GPU width as the baseline (one group of all four GPUs), so the
    # delta is continuous batching itself: cross-request overlap of GPU
    # compute, node transfers, and host bucket-reduce
    batched = MsmProofServer(
        MultiGpuSystem(GPUS),
        CONFIG,
        ServeConfig(gpu_groups=1, max_batch_size=4, max_wait_ms=1.0),
    ).serve(trace)
    serial = serve_one_at_a_time(MultiGpuSystem(GPUS), trace, CONFIG)
    b, s = batched.metrics, serial.metrics
    lines += [
        "",
        f"head-to-head at {SHOWDOWN_RPS:.0f} req/s offered "
        f"({count} requests, same trace):",
        f"  continuous batching: {b.render()}",
        f"  one-at-a-time:       {s.render()}",
        f"  p95 win: {s.p95_ms / b.p95_ms:.2f}x lower with batching at "
        f"{b.throughput_rps / s.throughput_rps:.2f}x the throughput",
    ]
    metrics["showdown_batched_p95_ms"] = b.p95_ms
    metrics["showdown_serial_p95_ms"] = s.p95_ms
    metrics["showdown_batched_thr_rps"] = b.throughput_rps
    metrics["showdown_serial_thr_rps"] = s.throughput_rps
    # simulated-time ratio of the two paths in the same process: machine
    # speed cancels, so compare_bench.py can gate it against the baseline
    metrics["showdown_p95_speedup"] = s.p95_ms / b.p95_ms


def _functional_serving(lines: list[str], metrics: dict, count: int) -> None:
    """Real payloads served through a mid-run GPU death, checked bit-exact."""
    toy = toy_curve()
    cfg = DistMsmConfig(window_size=4, threads_per_block=32, points_per_thread=4)
    requests, expected = [], {}
    at = 0.0
    for i in range(count):
        scalars, points = msm_instance(toy, 16, seed=100 + i)
        requests.append(
            ProofRequest(
                req_id=i,
                curve=toy,
                n=16,
                arrival_ms=at,
                payload=MsmPayload(tuple(scalars), tuple(points)),
                label=f"func{i}",
            )
        )
        expected[i] = naive_msm(scalars, points, toy)
        at += 0.4
    server = MsmProofServer(
        MultiGpuSystem(GPUS),
        cfg,
        ServeConfig(gpu_groups=2, max_batch_size=4, max_wait_ms=0.5),
    )
    served = server.serve(requests, faults=FaultPlan.of(GpuFailure(1.0, 1)))
    exact = sum(
        1 for r in served.records if r.result == expected[r.req_id]
    )
    retried = served.metrics.retried_requests
    lines += [
        "",
        f"functional serving — toy curve, {count} payload requests, "
        f"gpu1 killed at 1.0 ms:",
        f"  {exact}/{len(served.records)} responses bit-exact against the "
        f"naive reference; {retried} requests re-executed after the death",
    ]
    metrics["functional_served"] = len(served.records)
    metrics["functional_exact"] = exact


def serving_report(smoke: bool = False) -> tuple[str, dict]:
    """Build the serving-latency table and the bit-exactness check."""
    lines: list[str] = ["Serving study — continuous batching on the event engine", ""]
    metrics: dict = {}
    count = 24 if smoke else REQUESTS
    _load_sweep(lines, metrics, count)
    _showdown(lines, metrics, count)
    _functional_serving(lines, metrics, 6 if smoke else 12)
    return "\n".join(lines), metrics


def check_invariants(metrics: dict) -> None:
    """The serving claims this PR stands on."""
    # at high load, batching beats one-at-a-time on p95 at >= throughput
    assert (
        metrics["showdown_batched_p95_ms"] < metrics["showdown_serial_p95_ms"]
    ), metrics
    assert (
        metrics["showdown_batched_thr_rps"]
        >= metrics["showdown_serial_thr_rps"] - 1e-9
    ), metrics
    # the plan cache carries the sweep (identical shapes repeat)
    assert metrics["plan_hit_rate"] > 0.5, metrics
    # every functional response matched the naive reference exactly
    assert metrics["functional_served"] > 0, metrics
    assert metrics["functional_exact"] == metrics["functional_served"], metrics


def write_output(text: str, metrics: dict, smoke: bool) -> "pathlib.Path":
    """Write the human table and the gated JSON record."""
    import json
    import pathlib

    results = pathlib.Path(__file__).resolve().parent.parent / "results"
    results.mkdir(exist_ok=True)
    (results / "serving_latency.txt").write_text(text + "\n")
    payload = {"bench": "serving", "smoke": smoke, "metrics": metrics}
    path = results / "BENCH_serving.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def test_serving(benchmark):
    text, metrics = benchmark.pedantic(serving_report, rounds=1, iterations=1)
    from conftest import save_result

    save_result("serving_latency", text)
    write_output(text, metrics, smoke=False)
    check_invariants(metrics)


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    text, metrics = serving_report(smoke=smoke)
    check_invariants(metrics)
    if smoke:
        print(
            f"serve-smoke: batched p95 "
            f"{metrics['showdown_batched_p95_ms']:.3f} ms < serial "
            f"{metrics['showdown_serial_p95_ms']:.3f} ms "
            f"({metrics['showdown_p95_speedup']:.2f}x) at equal "
            f"throughput; {metrics['functional_exact']}/"
            f"{metrics['functional_served']} functional responses bit-exact"
        )
    path = write_output(text, metrics, smoke=smoke)
    if not smoke:
        print(text)
    print(f"[saved to {path.parent / 'serving_latency.txt'} and {path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
