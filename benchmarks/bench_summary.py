"""The reproduction scorecard: every headline, computed in one pass."""

from conftest import save_result

from repro.analysis.summary import render_summary, run_summary


def test_summary_scorecard(benchmark):
    rows = benchmark.pedantic(run_summary, rounds=1, iterations=1)
    save_result("summary", render_summary(rows))
    by_quantity = {r.quantity: r for r in rows}
    assert by_quantity["single-GPU optimal window"].measured == "s = 20"
    assert by_quantity["worst-scaling method at 32 GPUs"].measured == "Yrrid"
    assert by_quantity[
        "big integers transferred (PACC in 5 registers)"
    ].measured.startswith("4")
