"""Real timings of the MSM algorithms (pytest-benchmark).

Shows the classic algorithmic ladder on actual executions: naive
double-and-add, serial Pippenger (unsigned / signed), precomputation, and
the DistMSM engine's functional path.
"""

import pytest

from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm
from repro.curves.params import curve_by_name
from repro.curves.sampling import msm_instance
from repro.curves.scalar import num_windows
from repro.gpu.cluster import MultiGpuSystem
from repro.msm.naive import naive_msm
from repro.msm.pippenger import pippenger_msm
from repro.msm.precompute import msm_with_precompute, precompute_tables

from repro.curves.toy import toy_curve

TOY_CURVE = toy_curve()

BN254 = curve_by_name("BN254")


@pytest.fixture(scope="module")
def toy_instance():
    return msm_instance(TOY_CURVE, 128, seed=3)


@pytest.fixture(scope="module")
def bn_instance():
    return msm_instance(BN254, 48, seed=4)


def test_naive_msm_toy(benchmark, toy_instance):
    scalars, points = toy_instance
    benchmark(naive_msm, scalars, points, TOY_CURVE)


def test_pippenger_unsigned_toy(benchmark, toy_instance):
    scalars, points = toy_instance
    benchmark(pippenger_msm, scalars, points, TOY_CURVE, 4)


def test_pippenger_signed_toy(benchmark, toy_instance):
    scalars, points = toy_instance
    benchmark(pippenger_msm, scalars, points, TOY_CURVE, 4, True)


def test_pippenger_bn254(benchmark, bn_instance):
    scalars, points = bn_instance
    benchmark(pippenger_msm, scalars, points, BN254, 8)


def test_precompute_msm_toy(benchmark, toy_instance):
    scalars, points = toy_instance
    s = 4
    windows = num_windows(TOY_CURVE.scalar_bits, s) + 1
    tables = precompute_tables(points, TOY_CURVE, s, windows)
    benchmark(msm_with_precompute, scalars, tables, TOY_CURVE, s, True)


def test_distmsm_functional_toy(benchmark, toy_instance):
    scalars, points = toy_instance
    engine = DistMsm(
        MultiGpuSystem(4),
        DistMsmConfig(window_size=4, threads_per_block=32, points_per_thread=4),
    )
    benchmark(engine.execute, scalars, points, TOY_CURVE)


def test_distmsm_estimate_speed(benchmark):
    """The analytic estimator itself must stay cheap (it runs thousands of
    times across the experiment grids)."""
    engine = DistMsm(MultiGpuSystem(8), DistMsmConfig(window_size=12))
    benchmark(engine.estimate, BN254, 1 << 26)
