"""Regenerate paper Fig. 8: multi-GPU speedup over single GPU per method."""

from conftest import save_result

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.experiments import figure8


def test_figure8(benchmark):
    result = benchmark.pedantic(
        figure8,
        kwargs={"gpu_counts": (1, 2, 4, 8, 16, 32), "log_sizes": (22, 24, 26, 28)},
        rounds=1,
        iterations=1,
    )
    plot = ascii_plot(
        {s.method: list(s.speedups) for s in result.series},
        title="speedup over one GPU (log scale)",
        log_y=True,
        x_labels=list(result.gpu_counts),
    )
    save_result("figure8", result.render() + "\n\n" + plot)

    by_name = {s.method: s for s in result.series}
    # paper: most methods scale well to 4 GPUs (~3.54x average)
    four_gpu = [s.speedups[2] for s in result.series]
    assert sum(four_gpu) / len(four_gpu) > 2.5
    # paper: Yrrid scales the least effectively
    final = {n: s.speedups[-1] for n, s in by_name.items()}
    assert final["Yrrid"] == min(final.values())
    # paper: DistMSM maintains near-linear scalability
    assert final["DistMSM"] == max(final.values())
