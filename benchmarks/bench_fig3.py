"""Regenerate paper Fig. 3: per-thread workload vs window size."""

from conftest import save_result

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.experiments import figure3
from repro.analysis.tables import format_table


def test_figure3(benchmark):
    result = benchmark.pedantic(figure3, rounds=1, iterations=1)

    # render the full series grid, one row per window size
    sizes = result.curves[0].window_sizes
    headers = ["s"] + [f"{c.num_gpus} GPU(s)" for c in result.curves]
    rows = []
    for idx, s in enumerate(sizes):
        rows.append([s] + [f"{c.normalised_costs[idx]:.2f}" for c in result.curves])
    plot = ascii_plot(
        {
            f"{c.num_gpus}gpu": list(c.normalised_costs)
            for c in result.curves
        },
        title="normalised per-thread workload vs window size (log scale)",
        log_y=True,
        x_labels=[str(s) for s in sizes[::3]],
    )
    text = (
        format_table(headers, rows, title="Figure 3: normalised per-thread workload")
        + "\n\n" + result.render() + "\n\n" + plot
    )
    save_result("figure3", text)

    assert result.curves[0].optimal_s == 20  # paper's single-GPU optimum
    optima = [c.optimal_s for c in result.curves]
    assert optima == sorted(optima, reverse=True)  # shrinks with GPU count
