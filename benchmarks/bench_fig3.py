"""Regenerate paper Fig. 3: per-thread workload vs window size.

Writes the rendered table to ``results/figure3.txt`` and a
machine-readable record to ``results/BENCH_fig3.json`` (per-GPU-count
optimal window sizes plus the wall time of the sweep).  Runs under
pytest-benchmark (``make bench``) and standalone::

    PYTHONPATH=src python benchmarks/bench_fig3.py
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from conftest import save_result

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.experiments import figure3
from repro.analysis.tables import format_table

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def render_figure3(result) -> str:
    """The full series grid, one row per window size, plus the plot."""
    sizes = result.curves[0].window_sizes
    headers = ["s"] + [f"{c.num_gpus} GPU(s)" for c in result.curves]
    rows = []
    for idx, s in enumerate(sizes):
        rows.append([s] + [f"{c.normalised_costs[idx]:.2f}" for c in result.curves])
    plot = ascii_plot(
        {
            f"{c.num_gpus}gpu": list(c.normalised_costs)
            for c in result.curves
        },
        title="normalised per-thread workload vs window size (log scale)",
        log_y=True,
        x_labels=[str(s) for s in sizes[::3]],
    )
    return (
        format_table(headers, rows, title="Figure 3: normalised per-thread workload")
        + "\n\n" + result.render() + "\n\n" + plot
    )


def check_invariants(result) -> None:
    assert result.curves[0].optimal_s == 20  # paper's single-GPU optimum
    optima = [c.optimal_s for c in result.curves]
    assert optima == sorted(optima, reverse=True)  # shrinks with GPU count


def bench_record(result, wall_s: float) -> dict:
    return {
        "bench": "fig3",
        "smoke": True,  # the sweep is the same in every mode
        "wall_s": round(wall_s, 3),
        "window_sizes": list(result.curves[0].window_sizes),
        "optimal_s_by_gpus": {
            str(c.num_gpus): c.optimal_s for c in result.curves
        },
    }


def write_bench_json(payload: dict) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_fig3.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def test_figure3(benchmark):
    start = time.perf_counter()
    result = benchmark.pedantic(figure3, rounds=1, iterations=1)
    wall_s = time.perf_counter() - start
    save_result("figure3", render_figure3(result))
    check_invariants(result)
    write_bench_json(bench_record(result, wall_s))


def main(argv: list[str]) -> int:
    start = time.perf_counter()
    result = figure3()
    wall_s = time.perf_counter() - start
    check_invariants(result)
    text = render_figure3(result)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "figure3.txt").write_text(text + "\n")
    path = write_bench_json(bench_record(result, wall_s))
    optima = ", ".join(
        f"{gpus} gpu: s={s}"
        for gpus, s in bench_record(result, wall_s)["optimal_s_by_gpus"].items()
    )
    print(f"fig3: {optima} ({wall_s:.2f}s)")
    print(f"[saved to {path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
