"""Real timings of the zkSNARK stack: NTT, pairing, Groth16 phases."""

import random

import pytest

from repro.curves.params import curve_by_name
from repro.zksnark.groth16 import Groth16
from repro.zksnark.ntt import NttDomain
from repro.zksnark.pairing import (
    G1_GENERATOR,
    G2_GENERATOR,
    cast_g1_to_fq12,
    final_exponentiate,
    miller_loop,
    pairing,
    twist,
)
from repro.zksnark.workloads import hash_chain_circuit

BN_R = curve_by_name("BN254").r


@pytest.fixture(scope="module")
def ntt_domain():
    return NttDomain(BN_R, 1024)


@pytest.fixture(scope="module")
def ntt_input():
    rng = random.Random(5)
    return [rng.randrange(BN_R) for _ in range(1024)]


def test_ntt_1024(benchmark, ntt_domain, ntt_input):
    benchmark(ntt_domain.ntt, ntt_input)


def test_intt_1024(benchmark, ntt_domain, ntt_input):
    evals = ntt_domain.ntt(ntt_input)
    benchmark(ntt_domain.intt, evals)


def test_miller_loop(benchmark):
    q = twist(G2_GENERATOR)
    p = cast_g1_to_fq12(G1_GENERATOR)
    benchmark.pedantic(miller_loop, args=(q, p), rounds=3, iterations=1)


def test_final_exponentiation(benchmark):
    f = miller_loop(twist(G2_GENERATOR), cast_g1_to_fq12(G1_GENERATOR))
    benchmark.pedantic(final_exponentiate, args=(f,), rounds=3, iterations=1)


def test_full_pairing(benchmark):
    benchmark.pedantic(
        pairing, args=(G2_GENERATOR, G1_GENERATOR), rounds=3, iterations=1
    )


@pytest.fixture(scope="module")
def groth_system():
    r1cs, assignment = hash_chain_circuit(8, seed=3)
    groth = Groth16(r1cs)
    pk, vk = groth.setup(random.Random(7))
    return groth, pk, vk, r1cs, assignment


def test_groth16_prove(benchmark, groth_system):
    groth, pk, _, _, assignment = groth_system
    benchmark.pedantic(
        groth.prove, args=(pk, assignment, random.Random(8)), rounds=3, iterations=1
    )


def test_groth16_verify(benchmark, groth_system):
    groth, pk, vk, r1cs, assignment = groth_system
    proof = groth.prove(pk, assignment, random.Random(9))
    public = r1cs.public_inputs(assignment)
    valid = benchmark.pedantic(
        groth.verify, args=(vk, proof, public), rounds=3, iterations=1
    )
    assert valid
