#!/usr/bin/env python
"""Quickstart: multi-scalar multiplication through the public API.

Builds a random MSM instance on BN254, solves it three ways — the naive
reference, serial Pippenger, and the DistMSM engine on a simulated 8-GPU
DGX — and shows they agree bit-for-bit, along with the engine's modelled
execution-time breakdown.

Run:  python examples/quickstart.py
"""

from repro import DistMsm, MultiGpuSystem, curve_by_name, naive_msm, pippenger_msm
from repro.curves.sampling import msm_instance


def main() -> None:
    curve = curve_by_name("BN254")
    n = 256
    scalars, points = msm_instance(curve, n, seed=2024)
    print(f"MSM instance: {n} points on {curve.name} "
          f"({curve.scalar_bits}-bit scalars)\n")

    reference = naive_msm(scalars, points, curve)
    print(f"naive reference : ({reference.x:#x},\n                   {reference.y:#x})")

    pip = pippenger_msm(scalars, points, curve, window_size=8)
    print(f"serial Pippenger: {'MATCH' if pip == reference else 'MISMATCH'}")

    system = MultiGpuSystem(8)
    engine = DistMsm(system)
    result = engine.execute(scalars, points, curve)
    print(f"DistMSM (8 GPUs): "
          f"{'MATCH' if result.point == reference else 'MISMATCH'}\n")

    print(f"window size chosen: s = {result.window_size}")
    print(f"EC operations: {result.counters.pacc} PACC, "
          f"{result.counters.padd} PADD, {result.counters.pdbl} PDBL")
    print(f"scatter atomics: {result.counters.global_atomics} global, "
          f"{result.counters.shared_atomics} shared\n")

    print("modelled phase times (ms):")
    for phase, ms in result.times.as_dict().items():
        print(f"  {phase:<14s} {ms:10.4f}")

    # paper-scale estimate: no points needed, the analytic model answers
    big = engine.estimate(curve, 1 << 26)
    print(f"\nestimated time for N=2^26 on 8 x A100: {big.time_ms:.1f} ms "
          f"(paper Table 3: 56.15 ms)")


if __name__ == "__main__":
    main()
