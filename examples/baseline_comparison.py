#!/usr/bin/env python
"""Baseline comparison: reproduce one Table 3 row interactively.

Runs DistMSM and every compatible Table 2 baseline on the same MSM instance
across GPU counts, showing who wins where and why — the paper's central
evaluation, at whatever size you pick.

Run:  python examples/baseline_comparison.py [curve] [log_n]
"""

import sys

from repro import DistMsm, MultiGpuSystem, curve_by_name
from repro.baselines.registry import best_gpu, compatible_baselines


def main() -> None:
    curve_name = sys.argv[1] if len(sys.argv) > 1 else "BLS12-381"
    log_n = int(sys.argv[2]) if len(sys.argv) > 2 else 26
    curve = curve_by_name(curve_name)
    n = 1 << log_n

    baselines = compatible_baselines(curve)
    print(f"MSM on {curve.name}, N=2^{log_n}")
    print(f"compatible baselines: "
          f"{', '.join(f'{b.name}(#{b.ident})' for b in baselines)}\n")

    header = f"{'GPUs':>5} " + "".join(
        f"{b.name:>12}" for b in baselines
    ) + f"{'DistMSM':>12}  {'best/DistMSM':>12}"
    print(header)
    for gpus in (1, 4, 8, 16, 32):
        system = MultiGpuSystem(gpus)
        cells = []
        for baseline in baselines:
            cells.append(baseline.estimate(curve, n, system).time_ms)
        dist = DistMsm(system).estimate(curve, n).time_ms
        bg, winner = best_gpu(curve, n, system)
        row = f"{gpus:>5} " + "".join(f"{t:>11.1f} " for t in cells)
        row += f"{dist:>11.1f}  {bg.time_ms / dist:>10.2f}x"
        row += f"   (BG = {winner.name})"
        print(row)

    print("\ndesign traits behind the numbers:")
    for baseline in baselines:
        cfg = baseline.config
        traits = [
            f"window={'fixed ' + str(cfg.window_size) if cfg.window_size else baseline.window_policy}",
            f"scatter={cfg.scatter}",
            f"multi-GPU={cfg.multi_gpu}",
            f"signed={cfg.signed_digits}",
            f"precompute={cfg.precompute}",
            f"efficiency={baseline.efficiency_for(curve)}",
        ]
        print(f"  {baseline.name:<11s} " + ", ".join(traits))


if __name__ == "__main__":
    main()
