#!/usr/bin/env python
"""Kernel-level walkthrough: the paper's §4 techniques, executed live.

1. Exhaustive register scheduling of the PADD/PACC operation DAGs
   (11 -> 9 and 9 -> 7 live big integers);
2. explicit spilling to shared memory (PACC in 5 registers);
3. Montgomery multiplication on tensor cores — real byte-matrix math,
   including the on-the-fly compaction of the uint32 fragments.

Run:  python examples/kernel_tuning.py
"""

from repro.curves.params import curve_by_name
from repro.fields.montgomery import MontgomeryContext
from repro.kernels.compaction import (
    compact_accumulators,
    compacted_bits,
    compaction_cost,
    partials_to_int,
)
from repro.kernels.dag import build_pacc_dag, build_padd_dag, peak_live
from repro.kernels.montmul_tc import TensorCoreMontgomery
from repro.kernels.padd_kernel import KernelDescriptor, KernelOptimisations
from repro.kernels.scheduler import find_optimal_schedule
from repro.kernels.spill import plan_spills


def main() -> None:
    print("=== optimal execution sequencing (paper §4.2.1) ===")
    for build in (build_padd_dag, build_pacc_dag):
        dag = build()
        written = peak_live(dag)
        best = find_optimal_schedule(dag)
        print(f"{dag.name}: as written {written} live big integers; "
              f"exhaustive search -> {best.peak} "
              f"({best.states_visited} DP states)")
        print("  order:", " -> ".join(best.order))

    print("\n=== explicit spilling (paper §4.2.2) ===")
    dag = build_pacc_dag()
    order = list(find_optimal_schedule(dag).order)
    plan = plan_spills(dag, order, register_budget=5)
    print(f"PACC under a 5-register budget: feasible={plan.feasible}, "
          f"{plan.transfers} big-integer moves, "
          f"peak {plan.peak_shm_bigints} resident in shared memory")
    for op, kind, var in plan.moves[:6]:
        print(f"  at {op:<8s} {kind:<7s} {var}")

    print("\n=== per-curve register budgets ===")
    for name in ("BN254", "BLS12-377", "MNT4753"):
        curve = curve_by_name(name)
        base = KernelDescriptor(curve, KernelOptimisations.none())
        tuned = KernelDescriptor(curve, KernelOptimisations.all())
        print(f"{name:<10s} PADD as written: {base.registers_per_thread('padd'):3d} "
              f"regs/thread -> fully optimised PACC: "
              f"{tuned.registers_per_thread('pacc'):3d}")

    print("\n=== Montgomery multiplication on tensor cores (paper §4.3) ===")
    curve = curve_by_name("BN254")
    ctx = MontgomeryContext(curve.p)
    tc = TensorCoreMontgomery(ctx)
    a, b = 0xDEAD_BEEF_0123, 0xCAFE_F00D_4567
    result = tc.multiply(ctx.to_mont(a), ctx.to_mont(b))
    assert ctx.from_mont(result.product) == a * b % curve.p
    print(f"(a * b) mod p via TC path matches the reference: True")
    print(f"  {result.mma_ops} int8 MACs on the MMA unit, "
          f"{result.cuda_mul_ops} 32x32 multiplies left on CUDA cores")
    print(f"  raw fragment vector: {len(result.tc_accumulators)} uint32 words, "
          f"max {int(result.tc_accumulators.max()).bit_length()} significant bits")

    partials = compact_accumulators(result.tc_accumulators)
    assert partials_to_int(partials) == sum(
        int(c) << (8 * i) for i, c in enumerate(result.tc_accumulators)
    )
    print(f"  compacted in registers: {len(partials)} partials of "
          f"<= {compacted_bits(tc.num_bytes)} bits each")
    cost = compaction_cost(tc.num_bytes)
    print(f"  memory traffic: naive {cost.bytes_naive} B vs compacted "
          f"{cost.bytes_compacted} B ({cost.bytes_naive // cost.bytes_compacted}x)")


if __name__ == "__main__":
    main()
