#!/usr/bin/env python
"""Multi-GPU scaling study: window sizing, strategies, and speedups.

Reproduces the paper's §3 narrative interactively:

1. the per-thread workload model (Fig. 3) and how the optimal window size
   shrinks with GPU count;
2. the engine's own auto-tuned window choices;
3. scaling of DistMSM vs the naive single-GPU-design port (Fig. 8 / 10
   flavour), including where each multi-GPU strategy pays off.

Run:  python examples/multi_gpu_scaling.py
"""

from repro import DistMsm, DistMsmConfig, MultiGpuSystem, curve_by_name
from repro.analysis.experiments import no_opt_config
from repro.core.workload import figure3_series
from repro.kernels.padd_kernel import KernelOptimisations


def main() -> None:
    curve = curve_by_name("BLS12-381")
    n = 1 << 26

    print("=== per-thread workload model (paper Fig. 3) ===")
    for series in figure3_series():
        costs = dict(zip(series.window_sizes, series.normalised_costs))
        print(f"  {series.num_gpus:2d} GPU(s): optimal s = {series.optimal_s} "
              f"(normalised cost {costs[series.optimal_s]:.2f})")

    print("\n=== engine auto-tuned windows (model-optimal) ===")
    for gpus in (1, 4, 8, 16, 32):
        engine = DistMsm(MultiGpuSystem(gpus))
        s = engine.window_size_for(curve, n)
        print(f"  {gpus:2d} GPU(s): s = {s}")

    print(f"\n=== scaling on {curve.name}, N=2^26 ===")
    print(f"{'GPUs':>5} {'DistMSM ms':>12} {'speedup':>8} "
          f"{'single-GPU design ms':>22} {'speedup':>8}")
    base_cfg = no_opt_config(curve.name, n)
    t_dist_1 = t_noopt_1 = None
    for gpus in (1, 2, 4, 8, 16, 32):
        system = MultiGpuSystem(gpus)
        t_dist = DistMsm(system).estimate(curve, n).time_ms
        t_noopt = DistMsm(system, base_cfg).estimate(curve, n).time_ms
        t_dist_1 = t_dist_1 or t_dist
        t_noopt_1 = t_noopt_1 or t_noopt
        print(f"{gpus:>5} {t_dist:>12.1f} {t_dist_1 / t_dist:>7.1f}x "
              f"{t_noopt:>22.1f} {t_noopt_1 / t_noopt:>7.1f}x")

    print("\n=== multi-GPU strategy comparison at 32 GPUs ===")
    for strategy in ("bucket-split", "windows", "ndim"):
        cfg = DistMsmConfig(multi_gpu=strategy)
        t = DistMsm(MultiGpuSystem(32), cfg).estimate(curve, n).time_ms
        print(f"  {strategy:<13s} {t:8.1f} ms")

    print("\n=== what the kernel optimisations buy at 8 GPUs ===")
    for label, opts in (
        ("no kernel opts", KernelOptimisations.none()),
        ("full kernel opts", KernelOptimisations.all()),
    ):
        cfg = DistMsmConfig(kernel_opts=opts)
        t = DistMsm(MultiGpuSystem(8), cfg).estimate(curve, n).time_ms
        print(f"  {label:<17s} {t:8.1f} ms")


if __name__ == "__main__":
    main()
