#!/usr/bin/env python
"""Zero-knowledge set membership — the shielded-pool primitive.

Builds a Poseidon Merkle tree of "note commitments", then proves knowledge
of a leaf in the tree *without revealing which one*: the circuit takes the
root as its only public input; the leaf, its index, and the authentication
path all stay private.  This is the core relation behind Zcash-style
shielded transactions (the paper's Zcash-Sprout workload) — here proved
for real through the full Groth16 + pairing stack.

Run:  python examples/zk_merkle_membership.py
"""

import random
import time

from repro.zksnark.gadgets import merkle_membership_circuit, merkle_root
from repro.zksnark.groth16 import Groth16
from repro.zksnark.serialize import PROOF_BYTES, serialize_proof
from repro.curves.params import curve_by_name

P = curve_by_name("BN254").r


def main() -> None:
    rng = random.Random(0x5EC7)
    leaves = [rng.randrange(P) for _ in range(8)]
    secret_index = 5
    print(f"commitment tree: {len(leaves)} leaves, "
          f"root {merkle_root(leaves):#x}")
    print(f"prover's secret: leaf #{secret_index} "
          f"(never revealed to the verifier)\n")

    r1cs, assignment, root = merkle_membership_circuit(leaves, secret_index)
    print(f"membership circuit: {r1cs.num_constraints} constraints "
          f"({r1cs.num_variables} variables, 1 public input)")

    groth = Groth16(r1cs)
    t0 = time.time()
    pk, vk = groth.setup(random.Random(101))
    print(f"setup   {time.time() - t0:6.1f} s")

    t0 = time.time()
    proof = groth.prove(pk, assignment, random.Random(102))
    print(f"prove   {time.time() - t0:6.1f} s")

    t0 = time.time()
    ok = groth.verify(vk, proof, [root])
    print(f"verify  {time.time() - t0:6.1f} s -> {ok}")
    assert ok

    data = serialize_proof(proof)
    print(f"\nproof travels as {len(data)} bytes "
          f"(paper: 'proof sizes under 1 KB', 127 bytes): {data.hex()[:48]}...")

    # the verifier learns nothing about WHICH leaf: any prover holding a
    # different leaf of the same tree produces an indistinguishable proof
    r1cs2, assignment2, _ = merkle_membership_circuit(leaves, 2)
    proof2 = Groth16(r1cs2).prove(pk, assignment2, random.Random(103))
    print("a proof for a different secret leaf verifies against the same "
          f"root: {groth.verify(vk, proof2, [root])}")

    # and a forged root is rejected
    assert not groth.verify(vk, proof, [(root + 1) % P])
    print("a forged root is rejected: True")


if __name__ == "__main__":
    main()
