#!/usr/bin/env python
"""End-to-end zkSNARK: build a circuit, prove with Groth16, verify.

Proves knowledge of a hash-chain preimage — a reduced-scale instance of the
paper's Zcash-Sprout workload (Table 4) — using the full real pipeline:
R1CS -> QAP -> Groth16 prove (the commitments are multi-scalar
multiplications through this library's Pippenger) -> pairing-based verify.

Run:  python examples/zksnark_proof.py
"""

import random
import time

from repro.zksnark.groth16 import Groth16
from repro.zksnark.pipeline import estimate_end_to_end
from repro.zksnark.workloads import ZCASH_SPROUT, hash_chain_circuit


def main() -> None:
    print("building a hash-chain circuit (Zcash-Sprout flavour)...")
    r1cs, assignment = hash_chain_circuit(length=12, seed=7)
    print(f"  {r1cs}")
    assert r1cs.is_satisfied(assignment)

    groth = Groth16(r1cs)

    t0 = time.time()
    pk, vk = groth.setup(random.Random(0xCAFE))
    print(f"trusted setup     {time.time() - t0:6.2f} s "
          f"({len(pk.a_query)} variable queries, {len(pk.h_query)} H powers)")

    t0 = time.time()
    proof = groth.prove(pk, assignment, random.Random(0xBEEF))
    print(f"prove             {time.time() - t0:6.2f} s "
          f"(three G1 MSMs + one G2 MSM)")

    public = r1cs.public_inputs(assignment)
    t0 = time.time()
    valid = groth.verify(vk, proof, public)
    print(f"verify            {time.time() - t0:6.2f} s -> {valid}")
    assert valid

    # a cheater with the wrong public value is caught by the pairing check
    forged_public = [(public[0] + 1) % r1cs.modulus]
    assert not groth.verify(vk, proof, forged_public)
    print("forged public input rejected\n")

    # what the same pipeline costs at production scale (paper Table 4)
    est = estimate_end_to_end(ZCASH_SPROUT, num_gpus=8,
                              cpu_seconds=ZCASH_SPROUT.paper_libsnark_seconds)
    print(f"at production scale ({est.constraints:,} constraints):")
    print(f"  libsnark CPU  : {est.cpu_seconds:8.1f} s")
    print(f"  DistMSM 8xA100: {est.distmsm_seconds:8.1f} s "
          f"({est.speedup:.1f}x; paper: 25.0x)")
    print(f"  breakdown: MSM {est.msm_seconds:.2f} s, NTT {est.ntt_seconds:.2f} s, "
          f"others {est.others_seconds:.2f} s")


if __name__ == "__main__":
    main()
