# Local CI gate for the DistMSM reproduction.
#
# `make ci` runs, in order: ruff (lint), mypy (typecheck, scoped to the
# packages pyproject.toml names), the repro.analyze whole-program static
# analyzer (report written to results/analyze_report.json), the
# repro.verify pass, the smoke benchmarks, and the tier-1 test suite.  ruff and mypy are optional dev extras — when
# they are not installed the corresponding step is skipped with a notice
# instead of failing, so the gate works in offline environments that only
# carry the runtime deps.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: ci lint typecheck analyze verify bench-smoke bench-compare chaos-smoke byzantine-smoke serve-smoke cluster-smoke trace-smoke tune-smoke test

ci: lint typecheck analyze verify bench-smoke byzantine-smoke chaos-smoke serve-smoke cluster-smoke trace-smoke tune-smoke bench-compare test
	@echo "ci: all gates passed"

lint:
	@if $(PYTHON) -c "import ruff" 2>/dev/null || command -v ruff >/dev/null 2>&1; then \
		echo "== ruff check src/ tests/"; \
		$(PYTHON) -m ruff check src tests || exit 1; \
	else \
		echo "== ruff not installed; skipping lint (pip install ruff)"; \
	fi

typecheck:
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		echo "== mypy (packages from pyproject.toml)"; \
		$(PYTHON) -m mypy || exit 1; \
	else \
		echo "== mypy not installed; skipping typecheck (pip install mypy)"; \
	fi

analyze:
	@echo "== python -m repro.analyze src/repro"
	@$(PYTHON) -m repro.analyze src/repro --json -o results/analyze_report.json

verify:
	@echo "== python -m repro.verify"
	@$(PYTHON) -m repro.verify

bench-smoke:
	@echo "== pipeline-overlap smoke benchmark"
	@$(PYTHON) benchmarks/bench_pipeline_overlap.py --smoke
	@echo "== fig3 window-policy benchmark"
	@$(PYTHON) benchmarks/bench_fig3.py
	@echo "== vectorized backend + heap engine smoke benchmark"
	@$(PYTHON) benchmarks/bench_vectorized.py --smoke

bench-compare:
	@echo "== benchmark regression gate (results/ vs benchmarks/baselines/)"
	@$(PYTHON) benchmarks/compare_bench.py

chaos-smoke:
	@echo "== fault-recovery smoke benchmark"
	@$(PYTHON) benchmarks/bench_fault_recovery.py --smoke

byzantine-smoke:
	@echo "== byzantine-tolerance smoke benchmark"
	@$(PYTHON) benchmarks/bench_byzantine.py --smoke

serve-smoke:
	@echo "== serving-latency smoke benchmark"
	@$(PYTHON) benchmarks/bench_serving.py --smoke

cluster-smoke:
	@echo "== cluster-scaling smoke benchmark"
	@$(PYTHON) benchmarks/bench_cluster.py --smoke

trace-smoke:
	@echo "== traced-run smoke benchmark (observe audit)"
	@$(PYTHON) benchmarks/bench_trace.py --smoke

tune-smoke:
	@echo "== auto-tuner smoke benchmark (tuned vs analytic plans)"
	@$(PYTHON) benchmarks/bench_tune.py --smoke

test:
	@echo "== pytest (tier 1)"
	@$(PYTHON) -m pytest -x -q
