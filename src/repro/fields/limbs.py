"""Word-level big-integer arithmetic on 32-bit limb vectors.

The paper's GPU kernels operate on big integers stored as vectors of 32-bit
registers ("limbs"): a 254-bit BN254 element needs 8 limbs, a 753-bit MNT4753
element needs 24.  This module provides the limb representation together with
schoolbook word-level arithmetic, instrumented with an :class:`OpCounter` so
higher layers can account for exactly how many 32x32-bit multiplications and
additions a kernel performs.  Those counts feed the GPU timing model.

Limb vectors are little-endian lists of Python ints, each in ``[0, 2**32)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

WORD_BITS = 32
WORD_MASK = (1 << WORD_BITS) - 1


@dataclass
class OpCounter:
    """Tally of word-level operations performed by limb arithmetic.

    Attributes mirror the instruction classes the paper's cost analysis cares
    about: 32x32->64 multiplies (``mul``), 32-bit additions/subtractions with
    carry (``add``), and plain register moves (``mov``).
    """

    mul: int = 0
    add: int = 0
    mov: int = 0
    extra: dict = field(default_factory=dict)

    def merge(self, other: "OpCounter") -> None:
        """Accumulate another counter's tallies into this one."""
        self.mul += other.mul
        self.add += other.add
        self.mov += other.mov
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0) + value

    @property
    def total(self) -> int:
        """Total word operations (multiplies weighted as one op each)."""
        return self.mul + self.add + self.mov

    def reset(self) -> None:
        self.mul = 0
        self.add = 0
        self.mov = 0
        self.extra.clear()


def limb_count(bits: int) -> int:
    """Number of 32-bit limbs needed to store a ``bits``-bit integer."""
    if bits <= 0:
        raise ValueError(f"bit length must be positive, got {bits}")
    return -(-bits // WORD_BITS)


def to_limbs(value: int, n: int) -> list[int]:
    """Split a non-negative integer into ``n`` little-endian 32-bit limbs."""
    if value < 0:
        raise ValueError(f"cannot represent negative value {value} as limbs")
    if value >> (WORD_BITS * n):
        raise ValueError(f"value does not fit in {n} limbs: {value:#x}")
    return [(value >> (WORD_BITS * i)) & WORD_MASK for i in range(n)]


def from_limbs(limbs: list[int]) -> int:
    """Reassemble an integer from little-endian 32-bit limbs."""
    value = 0
    for i, limb in enumerate(limbs):
        if not 0 <= limb <= WORD_MASK:
            raise ValueError(f"limb {i} out of range: {limb:#x}")
        value |= limb << (WORD_BITS * i)
    return value


def limbs_add(a: list[int], b: list[int], counter: OpCounter | None = None) -> tuple[list[int], int]:
    """Add two equal-length limb vectors; return (sum limbs, carry-out).

    Models a chain of ``add.cc``/``addc`` instructions: one counted addition
    per limb.
    """
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    out = []
    carry = 0
    for x, y in zip(a, b):
        total = x + y + carry
        out.append(total & WORD_MASK)
        carry = total >> WORD_BITS
    if counter is not None:
        counter.add += len(a)
    return out, carry


def limbs_sub(a: list[int], b: list[int], counter: OpCounter | None = None) -> tuple[list[int], int]:
    """Subtract ``b`` from ``a`` limb-wise; return (difference, borrow-out)."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    out = []
    borrow = 0
    for x, y in zip(a, b):
        total = x - y - borrow
        out.append(total & WORD_MASK)
        borrow = 1 if total < 0 else 0
    if counter is not None:
        counter.add += len(a)
    return out, borrow


def limbs_mul(a: list[int], b: list[int], counter: OpCounter | None = None) -> list[int]:
    """Schoolbook multiply: ``len(a) + len(b)`` limbs of product.

    Each inner step is one 32x32->64 multiply plus the carry-chain additions,
    mirroring a ``mad.lo``/``mad.hi`` pair on a GPU.
    """
    na, nb = len(a), len(b)
    out = [0] * (na + nb)
    for i in range(na):
        carry = 0
        ai = a[i]
        for j in range(nb):
            total = out[i + j] + ai * b[j] + carry
            out[i + j] = total & WORD_MASK
            carry = total >> WORD_BITS
        out[i + nb] = carry
    if counter is not None:
        counter.mul += na * nb
        counter.add += 2 * na * nb  # lo and hi accumulate steps
    return out


def limbs_mul_word(a: list[int], w: int, counter: OpCounter | None = None) -> list[int]:
    """Multiply a limb vector by a single 32-bit word; returns len(a)+1 limbs."""
    if not 0 <= w <= WORD_MASK:
        raise ValueError(f"word out of range: {w:#x}")
    out = [0] * (len(a) + 1)
    carry = 0
    for i, x in enumerate(a):
        total = x * w + carry
        out[i] = total & WORD_MASK
        carry = total >> WORD_BITS
    out[len(a)] = carry
    if counter is not None:
        counter.mul += len(a)
        counter.add += len(a)
    return out


#: below this limb count Karatsuba's bookkeeping outweighs its savings
KARATSUBA_THRESHOLD = 8


def limbs_mul_karatsuba(
    a: list[int], b: list[int], counter: OpCounter | None = None
) -> list[int]:
    """Karatsuba multiplication: ~n^1.585 word multiplies.

    Splits each operand in half and trades one of the four half-products
    for extra additions.  For the paper's 24-limb MNT4753 operands this
    saves ~25% of the word multiplies over schoolbook; GPU kernels rarely
    use it (the irregular carry structure hurts SIMD), which is why it
    appears here as an ablation rather than in the kernel cost model.
    """
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    n = len(a)
    if n <= KARATSUBA_THRESHOLD or n % 2:
        return limbs_mul(a, b, counter)
    half = n // 2
    a_lo, a_hi = a[:half], a[half:]
    b_lo, b_hi = b[:half], b[half:]

    lo = limbs_mul_karatsuba(a_lo, b_lo, counter)  # n limbs
    hi = limbs_mul_karatsuba(a_hi, b_hi, counter)  # n limbs
    a_sum, a_carry = limbs_add(a_lo, a_hi, counter)
    b_sum, b_carry = limbs_add(b_lo, b_hi, counter)
    mid = limbs_mul_karatsuba(a_sum, b_sum, counter)  # n limbs
    # fold the carries of the half-sums back in:
    # (a_sum + ac*2^H)(b_sum + bc*2^H) = mid + (ac*b_sum + bc*a_sum)*2^H
    #                                    + ac*bc*2^2H
    mid_val = from_limbs(mid)
    if a_carry:
        mid_val += from_limbs(b_sum) << (WORD_BITS * half)
        if counter is not None:
            counter.add += half
    if b_carry:
        mid_val += from_limbs(a_sum) << (WORD_BITS * half)
        if counter is not None:
            counter.add += half
    if a_carry and b_carry:
        mid_val += 1 << (2 * WORD_BITS * half)

    lo_val = from_limbs(lo)
    hi_val = from_limbs(hi)
    cross = mid_val - lo_val - hi_val
    if counter is not None:
        counter.add += 4 * n  # the two wide subtractions
    total = lo_val + (cross << (WORD_BITS * half)) + (hi_val << (WORD_BITS * n))
    if counter is not None:
        counter.add += 2 * n
    return to_limbs(total, 2 * n)


def limbs_cmp(a: list[int], b: list[int]) -> int:
    """Three-way compare of equal-length limb vectors (-1, 0, or 1)."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    for x, y in zip(reversed(a), reversed(b)):
        if x != y:
            return -1 if x < y else 1
    return 0


def pack_limbs(values: list[list[int]]) -> "object":
    """Pack equal-length 32-bit limb vectors into a ``(N, L)`` uint64 array.

    Bridge from the scalar limb representation to the vectorized batch
    representation in :mod:`repro.fields.batch`.  numpy is imported lazily
    so the scalar limb layer stays importable without it.
    """
    import numpy as np

    if not values:
        return np.zeros((0, 0), dtype=np.uint64)
    width = len(values[0])
    if any(len(v) != width for v in values):
        raise ValueError("limb vectors must share one length")
    return np.asarray(values, dtype=np.uint64)


def unpack_limbs(array: "object") -> list[list[int]]:
    """Inverse of :func:`pack_limbs`: rows back to Python limb vectors."""
    return [[int(w) for w in row] for row in array.tolist()]  # type: ignore[attr-defined]
