"""Finite-field arithmetic substrate.

This package implements the big-integer and modular arithmetic layer the
paper's GPU kernels are built on:

* :mod:`repro.fields.limbs` — 32-bit limb vectors with word-level schoolbook
  arithmetic and operation counting (the counts drive the GPU cost model).
* :mod:`repro.fields.montgomery` — Montgomery-domain modular multiplication
  with the SOS / CIOS / FIOS word-level algorithms discussed in the paper's
  background (Algorithm 2).
* :mod:`repro.fields.prime_field` — the prime-field element API used by the
  curve and zkSNARK layers.
* :mod:`repro.fields.extension` — Fp2/Fp6/Fp12 towers for the BN254 pairing.
"""

from repro.fields.limbs import (
    OpCounter,
    WORD_BITS,
    WORD_MASK,
    from_limbs,
    limb_count,
    limbs_add,
    limbs_mul,
    limbs_sub,
    to_limbs,
)
from repro.fields.montgomery import MontgomeryContext
from repro.fields.prime_field import PrimeField

__all__ = [
    "OpCounter",
    "WORD_BITS",
    "WORD_MASK",
    "from_limbs",
    "limb_count",
    "limbs_add",
    "limbs_mul",
    "limbs_sub",
    "to_limbs",
    "MontgomeryContext",
    "PrimeField",
    "Fp2",
    "Fp6",
    "Fp12",
]


def __getattr__(name):
    """Lazy tower-field exports: the extension module needs the curve
    registry, which itself builds on this package (import-order cycle)."""
    if name in ("Fp2", "Fp6", "Fp12"):
        from repro.fields import extension

        return getattr(extension, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
