"""Prime-field element API used by the curve and zkSNARK layers.

The hot loops of the MSM engines work on raw Python integers for speed; this
module provides the ergonomic wrapper used by public APIs, the pairing tower
and Groth16, where readability matters more than the last microsecond.
"""

from __future__ import annotations

from repro.fields.limbs import limb_count


class FieldElement:
    """An element of a fixed prime field.

    Instances are immutable; all arithmetic returns new elements.  Operations
    between elements of different fields raise ``ValueError`` rather than
    silently coercing.
    """

    __slots__ = ("field", "value")

    def __init__(self, field: "PrimeField", value: int):
        self.field = field
        self.value = value % field.modulus

    def _coerce(self, other) -> "FieldElement":
        if isinstance(other, FieldElement):
            if other.field is not self.field and other.field.modulus != self.field.modulus:
                raise ValueError("cannot mix elements of different fields")
            return other
        if isinstance(other, int):
            return FieldElement(self.field, other)
        return NotImplemented

    def __add__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, self.value + other.value)

    __radd__ = __add__

    def __sub__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, self.value - other.value)

    def __rsub__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, other.value - self.value)

    def __mul__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, self.value * other.value)

    __rmul__ = __mul__

    def __neg__(self):
        return FieldElement(self.field, -self.value)

    def __truediv__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self * other.inverse()

    def __pow__(self, exponent: int):
        return FieldElement(self.field, pow(self.value, exponent, self.field.modulus))

    def inverse(self) -> "FieldElement":
        """Multiplicative inverse; raises ``ZeroDivisionError`` for zero."""
        if self.value == 0:
            raise ZeroDivisionError("zero has no multiplicative inverse")
        return FieldElement(self.field, pow(self.value, -1, self.field.modulus))

    def sqrt(self) -> "FieldElement | None":
        """A square root if one exists, else ``None`` (Tonelli–Shanks)."""
        root = self.field.sqrt(self.value)
        return None if root is None else FieldElement(self.field, root)

    def is_zero(self) -> bool:
        return self.value == 0

    def __eq__(self, other):
        if isinstance(other, FieldElement):
            return self.field.modulus == other.field.modulus and self.value == other.value
        if isinstance(other, int):
            return self.value == other % self.field.modulus
        return NotImplemented

    def __hash__(self):
        return hash((self.field.modulus, self.value))

    def __int__(self):
        return self.value

    def __repr__(self):
        return f"Fp({self.value:#x} mod {self.field.modulus:#x})"


class PrimeField:
    """A prime field ``GF(p)``; a factory for :class:`FieldElement`.

    >>> fp = PrimeField(13)
    >>> int(fp(7) * fp(8))
    4
    """

    def __init__(self, modulus: int):
        if modulus < 2:
            raise ValueError(f"modulus must be >= 2, got {modulus}")
        self.modulus = modulus
        self.num_limbs = limb_count(modulus.bit_length())
        self._batch = None

    def batch(self):
        """The shared :class:`repro.fields.batch.BatchPrimeField` for this
        field — lane-vectorized arithmetic over numpy ``(N, L)`` arrays.

        Imported lazily and cached: scalar users never pay for numpy, and
        vectorized users share one set of Montgomery constants.
        """
        if self._batch is None:
            from repro.fields.batch import BatchPrimeField

            self._batch = BatchPrimeField(self.modulus)
        return self._batch

    def __call__(self, value: int) -> FieldElement:
        return FieldElement(self, value)

    @property
    def zero(self) -> FieldElement:
        return FieldElement(self, 0)

    @property
    def one(self) -> FieldElement:
        return FieldElement(self, 1)

    def random(self, rng) -> FieldElement:
        """A uniformly random element drawn from ``rng`` (``random.Random``)."""
        return FieldElement(self, rng.randrange(self.modulus))

    def sqrt(self, a: int) -> int | None:
        """Integer square root of ``a`` mod p, or ``None`` if non-residue."""
        p = self.modulus
        a %= p
        if a == 0:
            return 0
        if p == 2:
            return a
        if pow(a, (p - 1) // 2, p) != 1:
            return None
        if p % 4 == 3:
            return pow(a, (p + 1) // 4, p)
        return self._tonelli_shanks(a)

    def _tonelli_shanks(self, a: int) -> int:
        p = self.modulus
        q, s = p - 1, 0
        while q % 2 == 0:
            q //= 2
            s += 1
        z = 2
        while pow(z, (p - 1) // 2, p) != p - 1:
            z += 1
        m, c, t, r = s, pow(z, q, p), pow(a, q, p), pow(a, (q + 1) // 2, p)
        while t != 1:
            t2i, i = t, 0
            while t2i != 1:
                t2i = (t2i * t2i) % p
                i += 1
            b = pow(c, 1 << (m - i - 1), p)
            m, c = i, (b * b) % p
            t = (t * c) % p
            r = (r * b) % p
        return r

    def __eq__(self, other):
        return isinstance(other, PrimeField) and other.modulus == self.modulus

    def __hash__(self):
        return hash(("PrimeField", self.modulus))

    def __repr__(self):
        return f"PrimeField(bits={self.modulus.bit_length()})"
