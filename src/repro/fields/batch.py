"""Limb-vectorized batch field arithmetic over numpy ``(N, n_limbs)`` arrays.

The scalar hot loops in :mod:`repro.core` pay the CPython interpreter once
per field element.  This module processes whole *columns* of field elements
per call: a batch of ``N`` residues is one ``(N, L)`` ``uint64`` array and
every arithmetic op is a short, fixed sequence of numpy kernels whose cost
is amortised across all ``N`` lanes.

Two representations are used, chosen by modulus size:

* **single-limb** (``p < 2^32``): residues live in a ``(N,)`` ``uint64``
  array in canonical form; products fit ``uint64`` so multiplication is a
  plain ``(a * b) % p``.  This covers the toy curves used by CI-sized
  differential tests and benchmarks.
* **Montgomery** (``p >= 2^32``): residues are ``(N, L)`` arrays of
  ``BATCH_LIMB_BITS``-bit limbs in the Montgomery domain (``x·R mod p``
  with ``R = 2^(B·L)``).  ``B = 26`` keeps every column accumulation in a
  schoolbook product strictly below ``2^63`` for all registered curves
  (up to the 753-bit MNT4753), so the SOS product + REDC interleave runs
  carry-free until a single final propagation pass.

Values entering and leaving a :class:`BatchPrimeField` are canonical Python
ints; the internal domain is an implementation detail, which is what makes
the vectorized MSM backend bit-identical to the scalar one at every
observable boundary.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: limb width (bits) of the generic Montgomery representation.  With B-bit
#: limbs a schoolbook column accumulates at most 2·L products of 2^(2B) plus
#: carries; B = 26 bounds that by 2·29·2^52 < 2^58 for L = 29 (MNT4753).
BATCH_LIMB_BITS = 26

_U64 = np.uint64


def batch_limb_count(modulus_bits: int, limb_bits: int = BATCH_LIMB_BITS) -> int:
    """Number of ``limb_bits``-bit limbs needed for ``modulus_bits`` bits."""
    if modulus_bits <= 0:
        raise ValueError(f"modulus_bits must be positive, got {modulus_bits}")
    return -(-modulus_bits // limb_bits)


def ints_to_words(values: Sequence[int], num_words: int) -> np.ndarray:
    """Pack non-negative ints into a ``(N, num_words)`` base-2^64 array."""
    nbytes = num_words * 8
    blob = b"".join(int(v).to_bytes(nbytes, "little") for v in values)
    out = np.frombuffer(blob, dtype="<u8").reshape(len(values), num_words)
    return out.astype(_U64, copy=True)


def words_to_ints(words: np.ndarray) -> list[int]:
    """Inverse of :func:`ints_to_words` for a ``(N, W)`` uint64 array."""
    buf = np.ascontiguousarray(words.astype("<u8")).tobytes()
    stride = words.shape[1] * 8
    return [
        int.from_bytes(buf[i * stride : (i + 1) * stride], "little")
        for i in range(words.shape[0])
    ]


def _words_to_limbs(words: np.ndarray, num_limbs: int, limb_bits: int) -> np.ndarray:
    """Re-chunk base-2^64 words into ``num_limbs`` ``limb_bits``-bit limbs."""
    n = words.shape[0]
    padded = np.zeros((n, words.shape[1] + 1), dtype=_U64)
    padded[:, : words.shape[1]] = words
    mask = _U64((1 << limb_bits) - 1)
    out = np.empty((n, num_limbs), dtype=_U64)
    for j in range(num_limbs):
        bit = j * limb_bits
        word, shift = bit // 64, bit % 64
        if shift == 0:
            out[:, j] = padded[:, word] & mask
        else:
            out[:, j] = (
                (padded[:, word] >> _U64(shift))
                | (padded[:, word + 1] << _U64(64 - shift))
            ) & mask
    return out


def _limbs_to_words(limbs: np.ndarray, limb_bits: int, num_words: int) -> np.ndarray:
    """Inverse of :func:`_words_to_limbs`; limbs must be normalized."""
    n = limbs.shape[0]
    out = np.zeros((n, num_words + 1), dtype=_U64)
    for j in range(limbs.shape[1]):
        bit = j * limb_bits
        word, shift = bit // 64, bit % 64
        out[:, word] |= limbs[:, j] << _U64(shift)
        if shift + limb_bits > 64:
            out[:, word + 1] |= limbs[:, j] >> _U64(64 - shift)
    return out[:, :num_words]


class BatchPrimeField:
    """Vectorized arithmetic in ``GF(p)`` over numpy lane arrays.

    All methods are elementwise over the leading (lane) axis and never
    mutate their inputs unless documented.  Construct via
    :meth:`repro.fields.prime_field.PrimeField.batch` to share instances.
    """

    def __init__(self, modulus: int, limb_bits: int = BATCH_LIMB_BITS):
        if modulus < 3:
            raise ValueError(f"modulus must be >= 3, got {modulus}")
        self.modulus = modulus
        self._num_words = -(-modulus.bit_length() // 64)
        self.small = modulus < (1 << 32)
        if self.small:
            self.limb_bits = 64
            self.num_limbs = 1
            self._p = _U64(modulus)
        else:
            if modulus % 2 == 0:
                raise ValueError("batch Montgomery arithmetic needs an odd modulus")
            if not 8 <= limb_bits <= 32:
                raise ValueError(f"limb_bits must be in [8, 32], got {limb_bits}")
            self.limb_bits = limb_bits
            self.num_limbs = batch_limb_count(modulus.bit_length(), limb_bits)
            if modulus.bit_length() == limb_bits * self.num_limbs:
                # guarantee one spare bit so a + b < 2p < R always holds
                self.num_limbs += 1
            self._mask = _U64((1 << limb_bits) - 1)
            self._shift = _U64(limb_bits)
            self.r = 1 << (limb_bits * self.num_limbs)
            base = 1 << limb_bits
            self._n0_prime = _U64((-pow(modulus, -1, base)) % base)
            self._p_limbs = self._int_to_limbs(modulus)
            self._r2_limbs = self._int_to_limbs((self.r * self.r) % modulus)

    # -- domain conversion -------------------------------------------------

    def encode(self, values: Sequence[int]) -> np.ndarray:
        """Canonical ints (already reduced mod p) -> internal lane array."""
        if self.small:
            try:
                # canonical inputs fit uint64 directly; the C-level array
                # conversion beats a per-element Python modulo by ~10x
                return np.asarray(values, dtype=_U64) % self._p
            except (OverflowError, TypeError):
                return np.asarray([v % self.modulus for v in values], dtype=_U64)
        words = ints_to_words(values, self._num_words)
        limbs = _words_to_limbs(words, self.num_limbs, self.limb_bits)
        return self._mont_mul(limbs, self._r2_limbs[None, :])

    def decode(self, lanes: np.ndarray) -> list[int]:
        """Internal lane array -> canonical Python ints."""
        if self.small:
            return [int(v) for v in lanes.tolist()]
        plain = self._redc(self._widen(lanes))
        words = _limbs_to_words(plain, self.limb_bits, self._num_words)
        return words_to_ints(words)

    def constant(self, value: int) -> np.ndarray:
        """A single value encoded as a broadcastable ``(1, ...)`` lane."""
        return self.encode([value % self.modulus])

    def zeros(self, n: int) -> np.ndarray:
        """``n`` lanes of field zero (zero in both representations)."""
        if self.small:
            return np.zeros(n, dtype=_U64)
        return np.zeros((n, self.num_limbs), dtype=_U64)

    # -- predicates and lane plumbing --------------------------------------

    def is_zero(self, a: np.ndarray) -> np.ndarray:
        """Boolean lane mask; field zero is all-zero limbs in both domains."""
        if self.small:
            return a == 0
        return (a == 0).all(axis=-1)

    def select(self, mask: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Lanewise ``mask ? a : b`` (mask is a boolean lane vector)."""
        if self.small:
            return np.where(mask, a, b)
        return np.where(mask[:, None], a, b)

    # -- arithmetic ---------------------------------------------------------

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.small:
            t = a + b
            return np.where(t >= self._p, t - self._p, t)
        t = a + b
        self._propagate(t)
        return self._cond_sub(t)

    def sub(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.small:
            t = a + self._p - b
            return np.where(t >= self._p, t - self._p, t)
        diff, borrow = self._borrow_sub(a, b)
        fix = diff + self._p_limbs
        self._propagate(fix)
        fix &= self._mask
        return np.where(borrow[:, None], fix, diff)

    def neg(self, a: np.ndarray) -> np.ndarray:
        if self.small:
            return np.where(a == 0, a, self._p - a)
        diff, _ = self._borrow_sub(np.broadcast_to(self._p_limbs, a.shape), a)
        return np.where(self.is_zero(a)[:, None], a, diff)

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.small:
            return (a * b) % self._p
        return self._mont_mul(a, b)

    def square(self, a: np.ndarray) -> np.ndarray:
        return self.mul(a, a)

    def double(self, a: np.ndarray) -> np.ndarray:
        return self.add(a, a)

    def triple(self, a: np.ndarray) -> np.ndarray:
        return self.add(self.double(a), a)

    def inv(self, values: Sequence[int]) -> list[int]:
        """Batch inversion of canonical ints via Montgomery's trick.

        One modular inversion total; zero inputs map to zero (callers mask
        identities out before dividing).  Works on ints rather than lane
        arrays because inversion only happens at batch boundaries.
        """
        p = self.modulus
        prefix: list[int] = []
        running = 1
        for v in values:
            prefix.append(running)
            if v % p:
                running = running * v % p
        inv_running = pow(running, -1, p)
        out = [0] * len(values)
        for i in range(len(values) - 1, -1, -1):
            v = values[i] % p
            if v:
                out[i] = inv_running * prefix[i] % p
                inv_running = inv_running * v % p
        return out

    # -- Montgomery internals ----------------------------------------------

    def _int_to_limbs(self, value: int) -> np.ndarray:
        words = ints_to_words([value], self._num_words_for(value))
        return _words_to_limbs(words, self.num_limbs, self.limb_bits)[0]

    def _num_words_for(self, value: int) -> int:
        return max(self._num_words, -(-max(value.bit_length(), 1) // 64))

    def _widen(self, a: np.ndarray) -> np.ndarray:
        """Place ``a`` in the low limbs of a fresh double-width accumulator."""
        lanes = a.shape[0]
        t = np.zeros((lanes, 2 * self.num_limbs + 1), dtype=_U64)
        t[:, : self.num_limbs] = a
        return t

    def _mont_mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """REDC(a·b): Montgomery product of two Montgomery-domain arrays."""
        lanes = max(a.shape[0], b.shape[0])
        ln = self.num_limbs
        t = np.zeros((lanes, 2 * ln + 1), dtype=_U64)
        for i in range(ln):
            t[:, i : i + ln] += a[:, i : i + 1] * b
        return self._redc(t)

    def _redc(self, t: np.ndarray) -> np.ndarray:
        """Montgomery reduction of a double-width accumulator ``t``.

        ``t`` holds unnormalized base-2^B columns (each < 2^63 by the limb
        width bound).  Divides by R = 2^(B·L) and conditionally subtracts p.
        """
        ln = self.num_limbs
        n0, mask, shift = self._n0_prime, self._mask, self._shift
        p_limbs = self._p_limbs
        for i in range(ln):
            m = (t[:, i] * n0) & mask
            t[:, i : i + ln] += m[:, None] * p_limbs
            t[:, i + 1] += t[:, i] >> shift
        hi = t[:, ln : 2 * ln]
        carry = np.zeros(t.shape[0], dtype=_U64)
        for j in range(ln):
            col = hi[:, j] + carry
            carry = col >> shift
            hi[:, j] = col & mask
        # carry-out means u >= 2^(B·L) = R > p: the subtract branch applies.
        diff, borrow = self._borrow_sub(hi, p_limbs[None, :])
        keep = np.logical_and(borrow, carry == 0)
        return np.where(keep[:, None], hi, diff)

    def _propagate(self, t: np.ndarray) -> None:
        """Normalize limbs of ``t`` in place (single carry sweep)."""
        shift, mask = self._shift, self._mask
        for j in range(t.shape[1] - 1):
            t[:, j + 1] += t[:, j] >> shift
            t[:, j] &= mask
        # masking the top limb reduces mod R = 2^(B·L); callers either have
        # no real carry (add: a+b < 2p < R) or want exactly mod-R wraparound
        # (sub: diff + p with the borrowed +R dropped).
        t[:, -1] &= mask

    def _cond_sub(self, t: np.ndarray) -> np.ndarray:
        """``t`` in [0, 2p) with normalized limbs -> canonical ``t mod p``."""
        diff, borrow = self._borrow_sub(t, self._p_limbs[None, :])
        return np.where(borrow[:, None], t, diff)

    def _borrow_sub(self, a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Limbwise ``a - b`` with borrow chain; returns (diff, borrow_out).

        Inputs must be limb-normalized; the difference wraps mod 2^B per
        limb, exactly like hardware subtract-with-borrow.
        """
        shape = np.broadcast_shapes(a.shape, b.shape)
        diff = np.empty(shape, dtype=_U64)
        borrow = np.zeros(shape[0], dtype=_U64)
        mask = self._mask
        for j in range(shape[-1]):
            need = b[..., j] + borrow
            diff[:, j] = (a[..., j] - need) & mask
            borrow = (a[..., j] < need).astype(_U64)
        return diff, borrow.astype(bool)
