"""Montgomery modular multiplication at the word level (paper Algorithm 2).

Montgomery multiplication replaces the expensive division in modular
multiplication with shifts by the word size.  The paper's kernels use the SOS
(Separated Operand Scanning) variant because its second big multiplication,
``m x n`` with the constant modulus ``n``, is the one DistMSM offloads to
tensor cores (§4.3).  CIOS and FIOS are implemented as well so the Montgomery
method ablation can compare word-operation counts, exactly as analysed by
Koc, Acar and Kaliski.

All three variants operate on 32-bit limb vectors and are validated against
plain integer arithmetic; an optional :class:`~repro.fields.limbs.OpCounter`
records the word-level multiply/add counts that feed the GPU timing model.
"""

from __future__ import annotations

from repro.fields.limbs import (
    WORD_BITS,
    WORD_MASK,
    OpCounter,
    from_limbs,
    limb_count,
    limbs_cmp,
    limbs_mul,
    limbs_sub,
    to_limbs,
)


def _invert_mod_2_32(x: int) -> int:
    """Inverse of an odd ``x`` modulo 2^32 via Newton iteration."""
    if x % 2 == 0:
        raise ValueError("modulus must be odd for Montgomery arithmetic")
    inv = x  # correct to 2^3
    for _ in range(5):
        inv = (inv * (2 - x * inv)) & WORD_MASK
    return inv


class MontgomeryContext:
    """Montgomery arithmetic for a fixed odd modulus.

    Parameters
    ----------
    modulus:
        The odd prime (or odd integer) ``n``.
    num_limbs:
        Limb count ``N``; defaults to the minimum that fits ``modulus``.
    """

    def __init__(self, modulus: int, num_limbs: int | None = None):
        if modulus <= 2 or modulus % 2 == 0:
            raise ValueError("Montgomery arithmetic needs an odd modulus > 2")
        self.modulus = modulus
        self.num_limbs = num_limbs if num_limbs is not None else limb_count(modulus.bit_length())
        if modulus >> (WORD_BITS * self.num_limbs):
            raise ValueError("modulus does not fit in the requested limb count")
        self.r = 1 << (WORD_BITS * self.num_limbs)
        self.r_mod = self.r % modulus
        self.r2_mod = (self.r * self.r) % modulus
        # n' with n * n' == -1 mod R; kernels only need n0' = n' mod 2^32.
        self.n0_prime = (-_invert_mod_2_32(modulus & WORD_MASK)) & WORD_MASK
        self.modulus_limbs = to_limbs(modulus, self.num_limbs)

    def batch(self, limb_bits: int | None = None):
        """A :class:`repro.fields.batch.BatchPrimeField` for this modulus.

        The batch representation uses narrower limbs than the 32-bit kernel
        model (so column sums fit uint64 without carry handling); it shares
        this context's modulus and Montgomery-domain semantics.
        """
        from repro.fields.batch import BATCH_LIMB_BITS, BatchPrimeField

        return BatchPrimeField(
            self.modulus,
            BATCH_LIMB_BITS if limb_bits is None else limb_bits,
        )

    # -- domain conversion ------------------------------------------------

    def to_mont(self, x: int) -> int:
        """Map ``x`` into the Montgomery domain: ``x * R mod n``."""
        return (x * self.r) % self.modulus

    def from_mont(self, x_mont: int) -> int:
        """Map a Montgomery-domain value back to the ordinary domain."""
        r_inv = pow(self.r, -1, self.modulus)
        return (x_mont * r_inv) % self.modulus

    # -- reference product -------------------------------------------------

    def mont_mul_int(self, a_mont: int, b_mont: int) -> int:
        """Reference Montgomery product using Python integers."""
        t = a_mont * b_mont
        m = (t * pow(-self.modulus, -1, self.r)) % self.r
        u = (t + m * self.modulus) >> (WORD_BITS * self.num_limbs)
        return u - self.modulus if u >= self.modulus else u

    # -- word-level variants ------------------------------------------------

    def mont_mul_sos(
        self,
        a: list[int],
        b: list[int],
        counter: OpCounter | None = None,
    ) -> list[int]:
        """SOS Montgomery multiplication (paper Algorithm 2).

        Phase 1 computes the full double-width product ``C = A x B``; phase 2
        adds ``m x n`` where ``m[i] = C[i] * n0' mod 2^32``.  Phase 2's big
        multiplication is the one DistMSM maps onto tensor cores.
        """
        n = self.num_limbs
        self._check_operands(a, b)
        c = limbs_mul(a, b, counter)  # 2N limbs
        c.append(0)  # carry word
        mod = self.modulus_limbs
        for i in range(n):
            m = (c[i] * self.n0_prime) & WORD_MASK
            if counter is not None:
                counter.mul += 1
            carry = 0
            for j in range(n):
                total = c[i + j] + m * mod[j] + carry
                c[i + j] = total & WORD_MASK
                carry = total >> WORD_BITS
            if counter is not None:
                counter.mul += n
                counter.add += 2 * n
            # propagate the carry through the remaining words
            k = i + n
            while carry:
                total = c[k] + carry
                c[k] = total & WORD_MASK
                carry = total >> WORD_BITS
                k += 1
                if counter is not None:
                    counter.add += 1
        return self._final_reduce(c[n : 2 * n], c[2 * n], counter)

    def mont_mul_cios(
        self,
        a: list[int],
        b: list[int],
        counter: OpCounter | None = None,
    ) -> list[int]:
        """CIOS (Coarsely Integrated Operand Scanning) Montgomery multiply.

        Interleaves multiplication and reduction per outer word, needing only
        ``N + 2`` words of intermediate storage — the variant CUDA-core
        implementations typically use.
        """
        n = self.num_limbs
        self._check_operands(a, b)
        mod = self.modulus_limbs
        t = [0] * (n + 2)
        for i in range(n):
            carry = 0
            bi = b[i]
            for j in range(n):
                total = t[j] + a[j] * bi + carry
                t[j] = total & WORD_MASK
                carry = total >> WORD_BITS
            total = t[n] + carry
            t[n] = total & WORD_MASK
            t[n + 1] = total >> WORD_BITS
            if counter is not None:
                counter.mul += n
                counter.add += 2 * n + 1

            m = (t[0] * self.n0_prime) & WORD_MASK
            total = t[0] + m * mod[0]
            carry = total >> WORD_BITS
            for j in range(1, n):
                total = t[j] + m * mod[j] + carry
                t[j - 1] = total & WORD_MASK
                carry = total >> WORD_BITS
            total = t[n] + carry
            t[n - 1] = total & WORD_MASK
            carry = total >> WORD_BITS
            t[n] = t[n + 1] + carry
            t[n + 1] = 0
            if counter is not None:
                counter.mul += n + 1
                counter.add += 2 * n + 2
        return self._final_reduce(t[:n], t[n], counter)

    def mont_mul_fios(
        self,
        a: list[int],
        b: list[int],
        counter: OpCounter | None = None,
    ) -> list[int]:
        """FIOS (Finely Integrated Operand Scanning) Montgomery multiply.

        Fuses the multiplication and reduction inner loops into a single pass
        per outer word; same asymptotic multiply count as CIOS with a
        different carry-handling profile.
        """
        n = self.num_limbs
        self._check_operands(a, b)
        mod = self.modulus_limbs
        t = [0] * (n + 2)
        for i in range(n):
            bi = b[i]
            total = t[0] + a[0] * bi
            carry_mul = total >> WORD_BITS
            low = total & WORD_MASK
            m = (low * self.n0_prime) & WORD_MASK
            total = low + m * mod[0]
            carry_red = total >> WORD_BITS
            if counter is not None:
                counter.mul += 3
                counter.add += 3
            for j in range(1, n):
                total = t[j] + a[j] * bi + carry_mul
                carry_mul = total >> WORD_BITS
                low = total & WORD_MASK
                total = low + m * mod[j] + carry_red
                t[j - 1] = total & WORD_MASK
                carry_red = total >> WORD_BITS
                if counter is not None:
                    counter.mul += 2
                    counter.add += 4
            total = t[n] + carry_mul + carry_red
            t[n - 1] = total & WORD_MASK
            t[n] = (total >> WORD_BITS) + t[n + 1]
            t[n + 1] = 0
            if counter is not None:
                counter.add += 2
        return self._final_reduce(t[:n], t[n], counter)

    # -- helpers -------------------------------------------------------------

    def _check_operands(self, a: list[int], b: list[int]) -> None:
        if len(a) != self.num_limbs or len(b) != self.num_limbs:
            raise ValueError(
                f"operands must have {self.num_limbs} limbs, "
                f"got {len(a)} and {len(b)}"
            )

    def _final_reduce(
        self,
        words: list[int],
        carry: int,
        counter: OpCounter | None,
    ) -> list[int]:
        """Conditional final subtraction: return ``words - n`` if needed."""
        if carry or limbs_cmp(words, self.modulus_limbs) >= 0:
            reduced, borrow = limbs_sub(words, self.modulus_limbs, counter)
            if carry != borrow:
                raise AssertionError("Montgomery reduction overflowed")
            return reduced
        return list(words)

    # -- convenience: integer in/out ------------------------------------------

    def mul(self, a_mont: int, b_mont: int, method: str = "sos", counter: OpCounter | None = None) -> int:
        """Montgomery-multiply two Montgomery-domain integers word-wise."""
        funcs = {
            "sos": self.mont_mul_sos,
            "cios": self.mont_mul_cios,
            "fios": self.mont_mul_fios,
        }
        if method not in funcs:
            raise ValueError(f"unknown Montgomery method {method!r}")
        a_limbs = to_limbs(a_mont, self.num_limbs)
        b_limbs = to_limbs(b_mont, self.num_limbs)
        return from_limbs(funcs[method](a_limbs, b_limbs, counter))
