"""Tower extension fields: Fp2 -> Fp6 -> Fp12 (BN254 layout).

The pairing in :mod:`repro.zksnark.pairing` uses a flat polynomial basis
(``Fp[w]/(w^12 - 18 w^6 + 82)``), which is simple but hides the tower
structure real implementations exploit.  This module builds the classic
tower explicitly —

* ``Fp2  = Fp[u]  / (u^2 + 1)``
* ``Fp6  = Fp2[v] / (v^3 - xi)``        with ``xi = 9 + u``
* ``Fp12 = Fp6[w] / (w^2 - v)``

— with Karatsuba-style multiplication at each level.  Tests verify the two
representations are isomorphic (the map sends tower ``w`` to the flat
basis element ``w``, hence ``v`` to ``w^2`` and ``u`` to ``w^6 - 9``),
which cross-validates both implementations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.curves.params import curve_by_name

P = curve_by_name("BN254").p

#: the Fp2 non-residue used for the sextic twist: xi = 9 + u
XI = (9, 1)


@dataclass(frozen=True)
class Fp2:
    """``a + b u`` with ``u^2 = -1``."""

    a: int
    b: int

    def __post_init__(self):
        object.__setattr__(self, "a", self.a % P)
        object.__setattr__(self, "b", self.b % P)

    @staticmethod
    def zero() -> "Fp2":
        return Fp2(0, 0)

    @staticmethod
    def one() -> "Fp2":
        return Fp2(1, 0)

    def __add__(self, other: "Fp2") -> "Fp2":
        return Fp2(self.a + other.a, self.b + other.b)

    def __sub__(self, other: "Fp2") -> "Fp2":
        return Fp2(self.a - other.a, self.b - other.b)

    def __neg__(self) -> "Fp2":
        return Fp2(-self.a, -self.b)

    def __mul__(self, other: "Fp2") -> "Fp2":
        # Karatsuba: 3 base multiplications
        t0 = self.a * other.a
        t1 = self.b * other.b
        t2 = (self.a + self.b) * (other.a + other.b)
        return Fp2(t0 - t1, t2 - t0 - t1)

    def scale(self, k: int) -> "Fp2":
        return Fp2(self.a * k, self.b * k)

    def mul_by_xi(self) -> "Fp2":
        """Multiply by the non-residue ``xi = 9 + u``."""
        return Fp2(9 * self.a - self.b, self.a + 9 * self.b)

    def square(self) -> "Fp2":
        # complex squaring: 2 base multiplications
        t = self.a * self.b
        return Fp2((self.a + self.b) * (self.a - self.b), 2 * t)

    def conjugate(self) -> "Fp2":
        return Fp2(self.a, -self.b)

    def inverse(self) -> "Fp2":
        norm = (self.a * self.a + self.b * self.b) % P
        if norm == 0:
            raise ZeroDivisionError("zero has no inverse in Fp2")
        inv = pow(norm, -1, P)
        return Fp2(self.a * inv, -self.b * inv)

    def is_zero(self) -> bool:
        return self.a == 0 and self.b == 0


@dataclass(frozen=True)
class Fp6:
    """``c0 + c1 v + c2 v^2`` with ``v^3 = xi`` and ``ci`` in Fp2."""

    c0: Fp2
    c1: Fp2
    c2: Fp2

    @staticmethod
    def zero() -> "Fp6":
        return Fp6(Fp2.zero(), Fp2.zero(), Fp2.zero())

    @staticmethod
    def one() -> "Fp6":
        return Fp6(Fp2.one(), Fp2.zero(), Fp2.zero())

    def __add__(self, other: "Fp6") -> "Fp6":
        return Fp6(self.c0 + other.c0, self.c1 + other.c1, self.c2 + other.c2)

    def __sub__(self, other: "Fp6") -> "Fp6":
        return Fp6(self.c0 - other.c0, self.c1 - other.c1, self.c2 - other.c2)

    def __neg__(self) -> "Fp6":
        return Fp6(-self.c0, -self.c1, -self.c2)

    def __mul__(self, other: "Fp6") -> "Fp6":
        # Toom-style 6-multiplication schoolbook with xi reductions
        a0, a1, a2 = self.c0, self.c1, self.c2
        b0, b1, b2 = other.c0, other.c1, other.c2
        t00 = a0 * b0
        t11 = a1 * b1
        t22 = a2 * b2
        c0 = t00 + ((a1 + a2) * (b1 + b2) - t11 - t22).mul_by_xi()
        c1 = (a0 + a1) * (b0 + b1) - t00 - t11 + t22.mul_by_xi()
        c2 = (a0 + a2) * (b0 + b2) - t00 - t22 + t11
        return Fp6(c0, c1, c2)

    def mul_by_v(self) -> "Fp6":
        """Multiply by ``v`` (shift with an xi reduction)."""
        return Fp6(self.c2.mul_by_xi(), self.c0, self.c1)

    def scale2(self, k: Fp2) -> "Fp6":
        return Fp6(self.c0 * k, self.c1 * k, self.c2 * k)

    def inverse(self) -> "Fp6":
        a, b, c = self.c0, self.c1, self.c2
        t0 = a.square() - (b * c).mul_by_xi()
        t1 = c.square().mul_by_xi() - a * b
        t2 = b.square() - a * c
        denom = a * t0 + (c * t1).mul_by_xi() + (b * t2).mul_by_xi()
        inv = denom.inverse()
        return Fp6(t0 * inv, t1 * inv, t2 * inv)

    def is_zero(self) -> bool:
        return self.c0.is_zero() and self.c1.is_zero() and self.c2.is_zero()


@dataclass(frozen=True)
class Fp12:
    """``d0 + d1 w`` with ``w^2 = v`` and ``di`` in Fp6."""

    d0: Fp6
    d1: Fp6

    @staticmethod
    def zero() -> "Fp12":
        return Fp12(Fp6.zero(), Fp6.zero())

    @staticmethod
    def one() -> "Fp12":
        return Fp12(Fp6.one(), Fp6.zero())

    def __add__(self, other: "Fp12") -> "Fp12":
        return Fp12(self.d0 + other.d0, self.d1 + other.d1)

    def __sub__(self, other: "Fp12") -> "Fp12":
        return Fp12(self.d0 - other.d0, self.d1 - other.d1)

    def __neg__(self) -> "Fp12":
        return Fp12(-self.d0, -self.d1)

    def __mul__(self, other: "Fp12") -> "Fp12":
        # Karatsuba over Fp6: 3 Fp6 multiplications
        t0 = self.d0 * other.d0
        t1 = self.d1 * other.d1
        t2 = (self.d0 + self.d1) * (other.d0 + other.d1)
        return Fp12(t0 + t1.mul_by_v(), t2 - t0 - t1)

    def square(self) -> "Fp12":
        return self * self

    def conjugate(self) -> "Fp12":
        """The ``Fp12 / Fp6`` conjugation (unitary inverse for pairings)."""
        return Fp12(self.d0, -self.d1)

    def inverse(self) -> "Fp12":
        denom = self.d0 * self.d0 - (self.d1 * self.d1).mul_by_v()
        inv = denom.inverse()
        return Fp12(self.d0 * inv, (-self.d1) * inv)

    def pow(self, exponent: int) -> "Fp12":
        if exponent < 0:
            return self.inverse().pow(-exponent)
        result = Fp12.one()
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base * base
            exponent >>= 1
        return result

    def is_zero(self) -> bool:
        return self.d0.is_zero() and self.d1.is_zero()


# -- conversion to the flat polynomial basis ---------------------------------
#
# flat basis: 1, w, w^2, ..., w^11 with w^12 = 18 w^6 - 82
# tower embedding: v = w^2, u = w^6 - 9
# an Fp2 element a + b u contributes a + b (w^6 - 9) at its position.


def tower_to_flat(x: Fp12) -> tuple:
    """Coefficients of ``x`` in the flat ``w``-power basis (length 12)."""
    coeffs = [0] * 12
    for six, w_off in ((x.d0, 0), (x.d1, 1)):
        for fp2, v_pow in ((six.c0, 0), (six.c1, 1), (six.c2, 2)):
            pos = 2 * v_pow + w_off  # v^k w^j = w^(2k + j)
            coeffs[pos] = (coeffs[pos] + fp2.a - 9 * fp2.b) % P
            coeffs[pos + 6] = (coeffs[pos + 6] + fp2.b) % P
    return tuple(coeffs)


def flat_to_tower(coeffs) -> Fp12:
    """Inverse of :func:`tower_to_flat`."""
    if len(coeffs) != 12:
        raise ValueError("need 12 coefficients")
    sixes = []
    for w_off in (0, 1):
        fp2s = []
        for v_pow in (0, 1, 2):
            pos = 2 * v_pow + w_off
            b = coeffs[pos + 6] % P
            a = (coeffs[pos] + 9 * b) % P
            fp2s.append(Fp2(a, b))
        sixes.append(Fp6(*fp2s))
    return Fp12(sixes[0], sixes[1])
