"""The six baselines of paper Table 2, with their design traits.

Efficiency factors are the implementation-quality multipliers calibrated so
the modelled single-GPU times track Table 3; every other trait (window
policy, scatter scheme, kernel optimisations, multi-GPU strategy) encodes
documented behaviour of the implementation:

* **Bellperson** (#1) — production Filecoin prover, OpenCL, conservative
  kernels, single-GPU design.
* **cuZK** (#2) — research system; sparse-matrix parallel Pippenger with
  good native multi-GPU distribution (near-linear to 8 GPUs).
* **Icicle** (#3) — broad curve support, solid single-GPU CUDA kernels.
* **Mina** (#4) — the gpu-groth16-prover; MNT4753 only, legacy kernels with
  severe register pressure.
* **Sppark** (#5) — Supranational's template library; signed digits, strong
  hand-tuned kernels.
* **Yrrid** (#6) — ZPrize winner: precomputation + signed digits, the best
  single-GPU BLS12-377 implementation; scales worst (the paper's Fig. 8).
"""

from __future__ import annotations

from repro.baselines.base import BaselineMsm
from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsmResult
from repro.curves.params import CurveParams
from repro.gpu.cluster import MultiGpuSystem
from repro.kernels.padd_kernel import KernelOptimisations

_NO_OPTS = KernelOptimisations.none()
#: mixed (affine) addition is standard practice in competitive kernels —
#: arithmetically equivalent to the dedicated PACC's 10 modmuls
_MIXED_ADD = KernelOptimisations(use_pacc=True)
#: ZPrize-winning code is scheduled by hand as well
_HAND_TUNED = KernelOptimisations(use_pacc=True, optimal_order=True)

BELLPERSON = BaselineMsm(
    name="Bellperson",
    ident=1,
    curves=("BLS12-381",),
    config=DistMsmConfig(
        window_size=16,
        scatter="naive",
        bucket_reduce_on_cpu=False,
        multi_gpu="ndim",
        kernel_opts=_NO_OPTS,
        efficiency=0.09,
        api="opencl",
    ),
)

CUZK = BaselineMsm(
    name="cuZK",
    ident=2,
    curves=("BLS12-377", "BLS12-381", "MNT4753"),
    config=DistMsmConfig(
        scatter="naive",
        bucket_reduce_on_cpu=False,
        multi_gpu="windows",
        kernel_opts=_MIXED_ADD,
        efficiency=0.437,
        api="cuda",
    ),
    window_policy="system",
    native_multi_gpu=True,
    curve_efficiency=(("MNT4753", 0.033),),
)

ICICLE = BaselineMsm(
    name="Icicle",
    ident=3,
    curves=("BN254", "BLS12-377", "BLS12-381"),
    config=DistMsmConfig(
        window_size=16,
        scatter="naive",
        bucket_reduce_on_cpu=False,
        multi_gpu="ndim",
        kernel_opts=_MIXED_ADD,
        efficiency=0.34,
        api="cuda",
    ),
)

MINA = BaselineMsm(
    name="Mina",
    ident=4,
    curves=("MNT4753",),
    config=DistMsmConfig(
        window_size=16,
        scatter="naive",
        bucket_reduce_on_cpu=False,
        multi_gpu="ndim",
        kernel_opts=_NO_OPTS,
        efficiency=0.197,
        api="cuda",
    ),
)

SPPARK = BaselineMsm(
    name="Sppark",
    ident=5,
    curves=("BN254", "BLS12-377", "BLS12-381"),
    config=DistMsmConfig(
        window_size=16,
        scatter="naive",
        bucket_reduce_on_cpu=False,
        multi_gpu="ndim",
        kernel_opts=_MIXED_ADD,
        signed_digits=True,
        efficiency=0.394,
        api="cuda",
    ),
)

YRRID = BaselineMsm(
    name="Yrrid",
    ident=6,
    curves=("BLS12-377",),
    config=DistMsmConfig(
        scatter="naive",
        bucket_reduce_on_cpu=False,
        multi_gpu="ndim",
        kernel_opts=_HAND_TUNED,
        signed_digits=True,
        precompute=True,
        efficiency=0.52,
        api="cuda",
    ),
    window_policy="autotune-frozen",
)

_ALL = (BELLPERSON, CUZK, ICICLE, MINA, SPPARK, YRRID)


def all_baselines() -> tuple:
    """All six baselines, in Table 2 order."""
    return _ALL


def baseline_by_name(name: str) -> BaselineMsm:
    for baseline in _ALL:
        if baseline.name.lower() == name.lower():
            return baseline
    raise KeyError(f"unknown baseline {name!r}")


def compatible_baselines(curve: CurveParams) -> list:
    """Baselines supporting a curve (Table 2's compatibility matrix)."""
    return [b for b in _ALL if b.supports(curve)]


def best_gpu(
    curve: CurveParams,
    n: int,
    system: MultiGpuSystem,
) -> tuple[DistMsmResult, BaselineMsm]:
    """The paper's *BG* column: the fastest compatible baseline's estimate."""
    candidates = compatible_baselines(curve)
    if not candidates:
        raise ValueError(f"no baseline supports {curve.name}")
    best_result, best_baseline = None, None
    for baseline in candidates:
        result = baseline.estimate(curve, n, system)
        if best_result is None or result.time_ms < best_result.time_ms:
            best_result, best_baseline = result, baseline
    return best_result, best_baseline
