"""The baseline interface: a named engine configuration + curve support."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm, DistMsmResult
from repro.core.workload import optimal_window_size
from repro.curves.params import CurveParams
from repro.gpu.cluster import MultiGpuSystem
from repro.gpu.specs import GpuSpec


@dataclass(frozen=True)
class BaselineMsm:
    """One published MSM implementation, as a simulator configuration.

    Attributes
    ----------
    name / ident:
        Display name and the numeric identifier of the paper's Table 2.
    curves:
        Supported curve names (Table 2's compatibility matrix).
    config:
        Engine policy encoding the implementation's design.
    window_policy:
        "single-gpu" — tuned for one GPU and kept when scaled out (the trait
        the paper criticises); "system" — re-tuned per GPU count.
    native_multi_gpu:
        Whether the implementation shipped multi-GPU support; when False the
        paper (and we) augment it by splitting along the N-dim.
    """

    name: str
    ident: int
    curves: tuple
    config: DistMsmConfig
    window_policy: str = "single-gpu"
    native_multi_gpu: bool = False
    #: per-curve efficiency overrides ((curve name, factor) pairs) — e.g.
    #: cuZK's sparse-matrix layout degrades disproportionately at 753 bits
    curve_efficiency: tuple = ()

    def supports(self, curve: CurveParams) -> bool:
        return curve.name in self.curves

    def efficiency_for(self, curve: CurveParams) -> float:
        for name, factor in self.curve_efficiency:
            if name == curve.name:
                return factor
        return self.config.efficiency

    def window_size_for(
        self, curve: CurveParams, n: int, num_gpus: int, spec: GpuSpec
    ) -> int | None:
        """The window size this implementation would pick.

        ``None`` means "let the engine auto-tune" (the ``autotune`` policy of
        well-engineered implementations like Yrrid's).
        """
        if self.config.window_size is not None:
            return self.config.window_size
        if self.window_policy == "autotune":
            return None
        if self.window_policy == "autotune-frozen":
            # precomputation bakes the window size into the offline tables
            # (2^{js} P_i), so the single-GPU choice is frozen at scale-out —
            # the root cause of Yrrid's poor multi-GPU scaling (Fig. 8)
            from repro.gpu.cluster import MultiGpuSystem

            probe = DistMsm(MultiGpuSystem(1, spec=spec), self.config)
            return probe.window_size_for(curve, n)
        threads = spec.concurrent_threads
        if self.window_policy == "single-gpu" or self.config.multi_gpu == "ndim":
            # tuned per GPU on its own point slice
            slice_n = max(2, n // (num_gpus if self.config.multi_gpu == "ndim" else 1))
            return optimal_window_size(slice_n, curve.scalar_bits, 1, threads)
        # "system": re-tuned per GPU count, capped at the practical s=16 of
        # shipping implementations
        return min(
            16, optimal_window_size(max(2, n), curve.scalar_bits, num_gpus, threads)
        )

    def engine(self, curve: CurveParams, n: int, system: MultiGpuSystem) -> DistMsm:
        """An engine instance configured for this baseline on this system."""
        if not self.supports(curve):
            raise ValueError(f"{self.name} does not support {curve.name}")
        s = self.window_size_for(curve, n, system.num_gpus, system.spec)
        return DistMsm(
            system,
            replace(self.config, window_size=s, efficiency=self.efficiency_for(curve)),
        )

    def estimate(self, curve: CurveParams, n: int, system: MultiGpuSystem) -> DistMsmResult:
        """Modelled execution time on the given system."""
        return self.engine(curve, n, system).estimate(curve, n)

    def execute(self, scalars, points, curve, system: MultiGpuSystem) -> DistMsmResult:
        """Functional execution (small inputs; exact results)."""
        return self.engine(curve, len(scalars), system).execute(scalars, points, curve)

    def __repr__(self):
        return f"BaselineMsm({self.name}, #{self.ident}, curves={list(self.curves)})"
