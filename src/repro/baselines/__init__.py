"""Baseline MSM systems (paper Table 2), modelled on the shared simulator.

Each baseline is a :class:`repro.baselines.base.BaselineMsm`: a named
configuration of the same engine/timing substrate DistMSM runs on, encoding
the design traits the paper attributes to it (window policy, scatter scheme,
kernel quality, multi-GPU strategy) plus an implementation-quality factor
calibrated against Table 3.  ``best_gpu`` reproduces the paper's *BG*
column: the fastest compatible baseline per (curve, size, GPU count) cell.
"""

from repro.baselines.base import BaselineMsm
from repro.baselines.registry import (
    all_baselines,
    baseline_by_name,
    best_gpu,
    compatible_baselines,
)

__all__ = [
    "BaselineMsm",
    "all_baselines",
    "baseline_by_name",
    "best_gpu",
    "compatible_baselines",
]
