"""repro.observe — unified tracing, profiling hooks, and trace export.

The observability substrate of the reproduction: one :class:`Tracer`
threads through ``engine.simulate`` (per-task spans), ``DistMsm``
(per-phase spans with window/chunk metadata), and the serving layer
(request life-cycle lanes); :class:`MetricsRegistry` unifies the serving
percentile logic and the GPU event counters; exports are Chrome
trace-event JSON (:func:`to_chrome_json`) and an ASCII flame-style
summary (``Tracer.summary``).  ``repro.verify.observecheck`` audits every
trace against the timeline it was recorded from.
"""

from repro.observe.chrome import to_chrome_json, to_chrome_trace
from repro.observe.record import phase_category, record_timeline
from repro.observe.stats import MetricsRegistry, percentile, summarize
from repro.observe.tracer import (
    NULL_TRACER,
    CounterSample,
    InstantEvent,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "InstantEvent",
    "CounterSample",
    "MetricsRegistry",
    "percentile",
    "summarize",
    "to_chrome_trace",
    "to_chrome_json",
    "phase_category",
    "record_timeline",
]
