"""Shared statistics helpers and the metrics registry.

This module is the single home of the nearest-rank percentile (it started
life private to ``serve/metrics.py``; the transitional alias there is gone
— import it from here) and of :class:`MetricsRegistry`, which unifies the
two ad-hoc metric styles that grew in earlier PRs:

* the serving layer's latency *series* with percentile summaries, and
* the GPU layer's monotone work *counters* (:class:`~repro.gpu.counters.EventCounters`).

A registry holds both kinds under dotted names and exports one sorted,
deterministic dict — the profile sidecar next to a Chrome trace.
"""

from __future__ import annotations

import json
import math
from typing import Any, Iterable

__all__ = ["percentile", "summarize", "MetricsRegistry"]


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile: the smallest value with ``q``% at or below.

    ``q`` in [0, 100]; empty input returns 0.0 (an empty SLO report, not
    an error).
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def summarize(values: Iterable[float]) -> dict[str, float]:
    """count/mean/min/max/p50/p95/p99 of a series (all 0.0 when empty)."""
    data = list(values)
    if not data:
        return {
            "count": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }
    return {
        "count": float(len(data)),
        "mean": sum(data) / len(data),
        "min": min(data),
        "max": max(data),
        "p50": percentile(data, 50.0),
        "p95": percentile(data, 95.0),
        "p99": percentile(data, 99.0),
    }


class MetricsRegistry:
    """Named counters and observation series with deterministic export.

    ``count(name, delta)`` accumulates monotone tallies (EC ops, bytes,
    kernel launches, sheds); ``observe(name, value)`` appends to a series
    that :func:`summarize` reduces to percentiles (latencies, span
    durations).  ``record_event_counters`` folds any object with an
    ``as_dict()`` of numeric fields — duck-typed so the GPU layer needs no
    import of this module and vice versa.
    """

    def __init__(self, label: str = "metrics") -> None:
        self.label = label
        self._counters: dict[str, float] = {}
        self._series: dict[str, list[float]] = {}

    # -- ingestion -----------------------------------------------------------

    def count(self, name: str, delta: float = 1.0) -> None:
        """Add ``delta`` to the counter ``name`` (created at zero)."""
        self._counters[name] = self._counters.get(name, 0.0) + delta

    def observe(self, name: str, value: float) -> None:
        """Append one observation to the series ``name``."""
        self._series.setdefault(name, []).append(value)

    def observe_many(self, name: str, values: Iterable[float]) -> None:
        """Append a batch of observations to the series ``name``."""
        self._series.setdefault(name, []).extend(values)

    def record_event_counters(self, counters: Any, prefix: str = "") -> None:
        """Fold an ``EventCounters``-like object (``as_dict()`` of numbers).

        Each field becomes the counter ``{prefix}{field}``; use a prefix
        like ``"gpu0."`` to keep per-device tallies separate.
        """
        for key, value in counters.as_dict().items():
            self.count(f"{prefix}{key}", float(value))

    # -- readout -------------------------------------------------------------

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def series(self, name: str) -> list[float]:
        return list(self._series.get(name, ()))

    def percentile(self, name: str, q: float) -> float:
        """Nearest-rank percentile of the series ``name``."""
        return percentile(self._series.get(name, []), q)

    def summary(self, name: str) -> dict[str, float]:
        """The :func:`summarize` reduction of the series ``name``."""
        return summarize(self._series.get(name, []))

    def as_dict(self) -> dict[str, Any]:
        """Deterministic export: counters plus summarized series, sorted."""
        return {
            "label": self.label,
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "series": {k: summarize(self._series[k]) for k in sorted(self._series)},
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({self.label!r}: {len(self._counters)} counters, "
            f"{len(self._series)} series)"
        )
