"""Chrome trace-event export (``chrome://tracing`` / Perfetto).

Maps a :class:`~repro.observe.tracer.Tracer` onto the trace-event JSON
format: one process for the whole run, one thread (tid) per track, "X"
complete events for spans, "i" instants, "C" counters, and ``thread_name``
metadata events so the viewer labels each lane.  Timestamps are exported
in microseconds (the format's unit); the simulation's milliseconds are
multiplied by 1e3.

The export is **byte-stable**: tid assignment follows sorted track names,
events are emitted in a fully deterministic order, and the JSON is dumped
with sorted keys — the golden-trace regression tests diff the bytes.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.observe.tracer import Tracer

__all__ = ["to_chrome_trace", "to_chrome_json"]

#: single simulated process id used for every event
PID = 1


def _track_tids(tracer: "Tracer") -> dict[str, int]:
    """tid per track, assigned in sorted-name order (deterministic)."""
    return {track: tid for tid, track in enumerate(tracer.tracks, start=1)}


def to_chrome_trace(tracer: "Tracer") -> dict[str, Any]:
    """The trace as a Chrome trace-event ``traceEvents`` dict."""
    tids = _track_tids(tracer)
    events: list[dict[str, Any]] = []

    for track, tid in tids.items():
        events.append({
            "args": {"name": track},
            "name": "thread_name",
            "ph": "M",
            "pid": PID,
            "tid": tid,
        })

    for span in sorted(
        tracer.spans, key=lambda s: (s.start_ms, tids[s.track], s.end_ms, s.name)
    ):
        event: dict[str, Any] = {
            "cat": span.cat or "span",
            "dur": span.duration_ms * 1e3,
            "name": span.name,
            "ph": "X",
            "pid": PID,
            "tid": tids[span.track],
            "ts": span.start_ms * 1e3,
        }
        if span.args:
            event["args"] = {k: span.args[k] for k in sorted(span.args)}
        events.append(event)

    for inst in sorted(
        tracer.instants, key=lambda e: (e.at_ms, tids[e.track], e.name)
    ):
        event = {
            "cat": inst.cat or "instant",
            "name": inst.name,
            "ph": "i",
            "pid": PID,
            "s": "t",
            "tid": tids[inst.track],
            "ts": inst.at_ms * 1e3,
        }
        if inst.args:
            event["args"] = {k: inst.args[k] for k in sorted(inst.args)}
        events.append(event)

    for sample in sorted(tracer.counters, key=lambda c: (c.at_ms, c.name)):
        events.append({
            "args": {"value": sample.value},
            "name": sample.name,
            "ph": "C",
            "pid": PID,
            "tid": 0,
            "ts": sample.at_ms * 1e3,
        })

    trace: dict[str, Any] = {
        "displayTimeUnit": "ms",
        "traceEvents": events,
    }
    if tracer.meta or tracer.label:
        trace["metadata"] = {
            "label": tracer.label,
            **{k: tracer.meta[k] for k in sorted(tracer.meta)},
        }
    return trace


def to_chrome_json(tracer: "Tracer", indent: int | None = None) -> str:
    """The trace as byte-stable Chrome trace-event JSON."""
    return json.dumps(to_chrome_trace(tracer), indent=indent, sort_keys=True)
