"""Recorders: turn engine timelines and serving runs into trace spans.

The engine's :class:`~repro.engine.timeline.Timeline` already carries
exact per-task intervals, attempts, and failures, so tracing a simulated
run is a *transcription*, not instrumentation: :func:`record_timeline`
copies every scheduled span onto the tracer (one span per executed task,
on the track named after its resource), failed-but-retried attempts onto
``retry`` spans, and terminal failures onto ``fault`` instants.  The
producers (engine/DistMSM/serve) call it once, after the event loop —
which is what keeps the hot scheduling path allocation-free when tracing
is off.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.engine.timeline import Timeline
from repro.observe.tracer import Tracer

__all__ = ["phase_category", "record_timeline"]

#: ordered (keyword, category) rules; first match wins, so the more
#: specific phases come before the generic ``reduce``
_PHASE_RULES: tuple[tuple[str, str], ...] = (
    ("scatter", "scatter"),
    ("bucket-sum", "bucket-sum"),
    (":sum", "bucket-sum"),
    ("transfer", "transfer"),
    ("xfer", "transfer"),
    ("commit", "commit"),
    (":verify", "verify"),
    ("window-reduce", "window-reduce"),
    ("bucket-reduce", "bucket-reduce"),
    ("host-reduce", "reduce"),
    ("reduce", "reduce"),
    ("launch", "launch"),
    ("sync", "sync"),
    ("gpu", "compute"),
)


def phase_category(task_name: str) -> str:
    """The MSM phase a task name belongs to (``"task"`` when unknown).

    Task names across the stack embed their phase (``msm:r0:scatter:g1``,
    ``req3.a0:xfer``, ``window-reduce:g0``); this keyword classifier is
    what groups them into the flame-style per-phase aggregation.
    """
    for keyword, category in _PHASE_RULES:
        if keyword in task_name:
            return category
    return "task"


def record_timeline(
    tracer: Tracer,
    timeline: Timeline,
    task_args: Mapping[str, Mapping[str, Any]] | None = None,
) -> None:
    """Transcribe a finished timeline onto ``tracer``.

    * every completed task → one span on its resource's track, categorised
      by :func:`phase_category`, annotated with its stage and any extra
      per-task args from ``task_args``;
    * every failed-but-retried attempt → a ``retry`` span named
      ``{task}#a{attempt}`` carrying the attempt number and backoff;
    * every terminal failure → a ``fault`` instant with the reason.

    No-op on a disabled tracer.
    """
    if not tracer.enabled:
        return
    extras = task_args or {}
    for span in sorted(
        timeline.spans.values(), key=lambda s: (s.start_ms, s.resource.name, s.task)
    ):
        args: dict[str, Any] = {}
        if span.stage:
            args["stage"] = span.stage
        args.update(extras.get(span.task, {}))
        tracer.add_span(
            span.task,
            span.resource.name,
            span.start_ms,
            span.end_ms,
            cat=phase_category(span.task),
            args=args,
        )
    for attempt in sorted(
        timeline.attempts, key=lambda a: (a.start_ms, a.resource.name, a.task, a.attempt)
    ):
        tracer.add_span(
            f"{attempt.task}#a{attempt.attempt}",
            attempt.resource.name,
            attempt.start_ms,
            attempt.end_ms,
            cat="retry",
            args={"attempt": attempt.attempt, "retry_at_ms": attempt.retry_at_ms},
        )
    for failure in sorted(
        timeline.failures, key=lambda f: (f.at_ms, f.resource.name, f.task)
    ):
        tracer.instant(
            failure.task,
            failure.resource.name,
            failure.at_ms,
            cat="fault",
            args={"reason": failure.reason, "attempt": failure.attempt},
        )
