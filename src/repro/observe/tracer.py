"""Structured span/event tracing for the simulated stack.

One :class:`Tracer` collects everything a performance investigation needs
from a simulated run — per-task spans on resource tracks, request
life-cycle spans on per-request lanes, instant events (faults, sheds),
counter samples — in *simulated* milliseconds, with explicit timestamps
(there is no wall clock anywhere in the reproduction).

Design rules:

* **Zero overhead when disabled.**  Producers guard every emission with
  ``if tracer is not None and tracer.enabled:`` (or hand out
  :data:`NULL_TRACER`, whose methods are no-ops), so an untraced run
  allocates no span, no dict, nothing — asserted by a test.
* **Append-only, deterministic.**  Spans are value objects; export orders
  are fully determined by (time, track, name), which is what makes the
  golden-trace regression tests byte-stable.
* **Auditable.**  :mod:`repro.verify.observecheck` re-derives nothing: it
  takes the finished trace (and optionally the engine timeline it was
  recorded from) and replays the invariants — well-formed nesting, one
  span per executed task, busy-time and makespan agreement.

The Chrome trace-event export lives in :mod:`repro.observe.chrome`; the
timeline/serve recording helpers in :mod:`repro.observe.record`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["Span", "InstantEvent", "CounterSample", "Tracer", "NullTracer", "NULL_TRACER"]


@dataclass(frozen=True)
class Span:
    """One traced interval on one track (a resource lane or request lane).

    ``cat`` is the phase category (``"scatter"``, ``"transfer"``,
    ``"request"``, ...) used for flame-style aggregation and Chrome
    colouring; ``args`` carries span metadata (window size, chunk round,
    batch id, ...), kept as a plain dict for export.
    """

    name: str
    track: str
    start_ms: float
    end_ms: float
    cat: str = ""
    args: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not (math.isfinite(self.start_ms) and math.isfinite(self.end_ms)):
            raise ValueError(f"span {self.name!r}: non-finite bounds")
        if self.end_ms < self.start_ms:
            raise ValueError(
                f"span {self.name!r}: ends at {self.end_ms} before start {self.start_ms}"
            )

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass(frozen=True)
class InstantEvent:
    """One point-in-time event (a fault, a shed decision, a completion)."""

    name: str
    track: str
    at_ms: float
    cat: str = ""
    args: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class CounterSample:
    """One sample of a named scalar counter at a point in simulated time."""

    name: str
    at_ms: float
    value: float


class Tracer:
    """Span/event collector with a per-track span stack and counters.

    Two emission styles:

    * ``add_span(name, track, start, end)`` — complete spans, what the
      timeline recorders use (the engine already knows both endpoints);
    * ``begin(name, track, at)`` / ``end(track, at)`` — a span *stack* per
      track for code that brackets phases as it goes; nesting is recorded
      and audited (a child must close before its parent).
    """

    enabled: bool = True

    def __init__(self, label: str = "trace") -> None:
        self.label = label
        self.spans: list[Span] = []
        self.instants: list[InstantEvent] = []
        self.counters: list[CounterSample] = []
        self.meta: dict[str, Any] = {}
        self._stack: dict[str, list[tuple[str, float, str, dict[str, Any]]]] = {}

    # -- emission ------------------------------------------------------------

    def add_span(
        self,
        name: str,
        track: str,
        start_ms: float,
        end_ms: float,
        cat: str = "",
        args: Mapping[str, Any] | None = None,
    ) -> Span:
        """Record one complete span."""
        span = Span(name, track, start_ms, end_ms, cat, dict(args or {}))
        self.spans.append(span)
        return span

    def begin(
        self,
        name: str,
        track: str,
        at_ms: float,
        cat: str = "",
        args: Mapping[str, Any] | None = None,
    ) -> None:
        """Open a span on ``track``'s stack; close it with :meth:`end`."""
        self._stack.setdefault(track, []).append((name, at_ms, cat, dict(args or {})))

    def end(self, track: str, at_ms: float) -> Span:
        """Close the innermost open span on ``track``."""
        stack = self._stack.get(track)
        if not stack:
            raise ValueError(f"end() on track {track!r} with no open span")
        name, start_ms, cat, args = stack.pop()
        return self.add_span(name, track, start_ms, at_ms, cat, args)

    def instant(
        self,
        name: str,
        track: str,
        at_ms: float,
        cat: str = "",
        args: Mapping[str, Any] | None = None,
    ) -> InstantEvent:
        """Record one point-in-time event."""
        event = InstantEvent(name, track, at_ms, cat, dict(args or {}))
        self.instants.append(event)
        return event

    def counter(self, name: str, at_ms: float, value: float) -> None:
        """Sample a named scalar counter."""
        self.counters.append(CounterSample(name, at_ms, value))

    def annotate(self, **meta: Any) -> None:
        """Attach run-level metadata (window size, GPU count, ...)."""
        self.meta.update(meta)

    # -- introspection -------------------------------------------------------

    def open_spans(self) -> list[tuple[str, str]]:
        """(track, name) of every span begun but never ended."""
        return [
            (track, name)
            for track, stack in sorted(self._stack.items())
            for (name, _start, _cat, _args) in stack
        ]

    @property
    def tracks(self) -> list[str]:
        """Every track that carries at least one span or instant, sorted."""
        names = {s.track for s in self.spans} | {e.track for e in self.instants}
        return sorted(names)

    def makespan_ms(self) -> float:
        """Latest timestamp across spans and instants (0 for an empty trace)."""
        return max(
            (
                *(s.end_ms for s in self.spans),
                *(e.at_ms for e in self.instants),
            ),
            default=0.0,
        )

    def busy_ms(self) -> dict[str, float]:
        """Total span wall-time per track."""
        busy: dict[str, float] = {}
        for span in self.spans:
            busy[span.track] = busy.get(span.track, 0.0) + span.duration_ms
        return busy

    def category_ms(self) -> dict[str, float]:
        """Total span wall-time per category (the flamegraph aggregation)."""
        totals: dict[str, float] = {}
        for span in self.spans:
            cat = span.cat or "uncategorised"
            totals[cat] = totals.get(cat, 0.0) + span.duration_ms
        return totals

    def spans_on(self, track: str) -> list[Span]:
        """Spans of one track, in (start, end, name) order."""
        return sorted(
            (s for s in self.spans if s.track == track),
            key=lambda s: (s.start_ms, s.end_ms, s.name),
        )

    # -- export --------------------------------------------------------------

    def to_chrome_json(self, indent: int | None = None) -> str:
        """Chrome trace-event JSON (``chrome://tracing`` / Perfetto)."""
        from repro.observe.chrome import to_chrome_json

        return to_chrome_json(self, indent=indent)

    def summary(self, width: int = 48) -> str:
        """ASCII flamegraph-style summary: per-category and per-track bars."""
        from repro.analysis.ascii_plot import ascii_bars

        lines = [f"trace {self.label!r}: {len(self.spans)} spans on "
                 f"{len(self.tracks)} tracks, makespan {self.makespan_ms():.3f} ms"]
        if self.meta:
            pairs = ", ".join(f"{k}={self.meta[k]}" for k in sorted(self.meta))
            lines.append(f"  meta: {pairs}")
        cats = self.category_ms()
        if cats:
            lines.append(ascii_bars(cats, width=width, title="span time by phase (ms)"))
        busy = self.busy_ms()
        if busy:
            lines.append(ascii_bars(busy, width=width, title="span time by track (ms)"))
        if self.instants:
            lines.append(f"  {len(self.instants)} instant event(s): " + ", ".join(
                f"{e.name}@{e.at_ms:.3f}" for e in sorted(
                    self.instants, key=lambda e: (e.at_ms, e.track, e.name)
                )[:8]
            ) + ("..." if len(self.instants) > 8 else ""))
        return "\n".join(lines)


class NullTracer(Tracer):
    """The disabled tracer: every method is a no-op, nothing is allocated.

    Producers may test ``tracer.enabled`` (all of them do) or call the
    emission API directly; either way no span, event, or dict is created.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(label="null")

    def add_span(self, name, track, start_ms, end_ms, cat="", args=None):  # type: ignore[override]
        return None  # type: ignore[return-value]

    def begin(self, name, track, at_ms, cat="", args=None):  # type: ignore[override]
        return None

    def end(self, track, at_ms):  # type: ignore[override]
        return None  # type: ignore[return-value]

    def instant(self, name, track, at_ms, cat="", args=None):  # type: ignore[override]
        return None  # type: ignore[return-value]

    def counter(self, name, at_ms, value):  # type: ignore[override]
        return None

    def annotate(self, **meta):  # type: ignore[override]
        return None


#: the shared disabled tracer — pass it anywhere a trace is optional
NULL_TRACER = NullTracer()
