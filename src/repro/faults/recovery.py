"""Failure detection and re-planning policy for the DistMSM orchestrator.

The recovery model (DESIGN.md §9):

* **Detection** is heartbeat-based: the host notices a GPU death only at
  the first heartbeat tick *after* it happens (:func:`detection_time_ms`).
  Work already queued behind the dead GPU fails on its own; detection
  gates when the re-planned work may start.
* **Re-planning** redistributes the dead GPU's *lost* assignments over the
  survivors round-robin (:func:`redistribute_assignments`), keeping the
  same window size ``s`` — partial bucket sums are ``s``-bound, so mixing
  window sizes would force recomputing everything from scratch.  The
  §3.1-optimal ``s`` for the reduced GPU count is still recomputed and
  reported (:attr:`FaultReport.replanned_window_size`) as the policy for
  the *next* MSM on the degraded cluster.
* **Accounting** stays honest: the recovered makespan includes the aborted
  work, the detection latency, and every retry's backoff gap; the
  :class:`FaultReport` carries the fault-free makespan alongside so the
  recovery overhead is a first-class output.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, replace
from typing import TYPE_CHECKING, Sequence

from repro.engine.faults import FaultEvent, FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.planner import Assignment

#: guard for float heartbeat-tick arithmetic
_TICK_EPS = 1e-9


def fault_event_dict(event: FaultEvent) -> dict:
    """One fault event as a plain dict tagged with its type name.

    The stable serialisation both :meth:`FaultReport.to_json` and chaos-run
    archiving use: field dict plus ``"type"``, so heterogeneous plans
    round-trip through sorted-key JSON deterministically.
    """
    record = asdict(event)
    record["type"] = type(event).__name__
    return record


class FaultRecoveryError(RuntimeError):
    """Raised when no recovery is possible (e.g. every GPU died)."""


def detection_time_ms(at_ms: float, heartbeat_ms: float) -> float:
    """When the host *notices* a failure that happened at ``at_ms``.

    The detector polls every ``heartbeat_ms``; a death at exactly a tick is
    caught by the *next* tick (the tick that fires at the death time still
    sees the GPU's last heartbeat).
    """
    if heartbeat_ms <= 0:
        raise ValueError(f"heartbeat_ms must be > 0, got {heartbeat_ms}")
    if at_ms < 0:
        raise ValueError(f"at_ms must be >= 0, got {at_ms}")
    return (math.floor(at_ms / heartbeat_ms + _TICK_EPS) + 1) * heartbeat_ms


def redistribute_assignments(
    assignments: Sequence["Assignment"],
    survivors: Sequence[int],
) -> list["Assignment"]:
    """Reassign lost work round-robin over ``survivors``.

    Each assignment keeps its window and fractional bucket/point ranges —
    only the owning GPU changes — so the recovered execution covers exactly
    the same (window, bucket-range, point-range) cells as the original
    plan, which is what makes bit-exact recovery possible.
    """
    if not survivors:
        raise FaultRecoveryError("no surviving GPUs to redistribute work onto")
    ordered = sorted(survivors)
    return [
        replace(a, gpu=ordered[i % len(ordered)]) for i, a in enumerate(assignments)
    ]


@dataclass(frozen=True)
class RecoveryRound:
    """One detect-and-re-plan round of a recovered execution."""

    round: int  #: 0 = the original plan, 1+ = re-plans
    gpus: tuple[int, ...]  #: GPUs executing in this round
    failed_gpus: tuple[int, ...]  #: GPUs lost *during* this round
    lost_chunks: tuple[tuple[int, int], ...]  #: (round, gpu) chunks to redo
    detected_at_ms: float  #: heartbeat tick that triggered the next round
    start_at_ms: float  #: earliest start of the re-planned work


@dataclass(frozen=True)
class FaultReport:
    """What happened during a faulted execution, attached to the result."""

    plan: FaultPlan
    rounds: tuple[RecoveryRound, ...]
    dead_gpus: tuple[int, ...]
    surviving_gpus: tuple[int, ...]
    fault_free_ms: float
    recovered_ms: float
    window_size: int  #: the s actually executed (original plan's s)
    replanned_window_size: int  #: §3.1-optimal s for the survivor count
    retries: int = 0  #: transfer retries that occurred across the run

    def __post_init__(self) -> None:
        if self.recovered_ms < 0 or self.fault_free_ms < 0:
            raise ValueError("makespans must be >= 0")

    @property
    def recovery_overhead_ms(self) -> float:
        """Extra wall-clock caused by faults (>= 0 up to float noise)."""
        return self.recovered_ms - self.fault_free_ms

    @property
    def degraded(self) -> bool:
        """True when at least one GPU was lost."""
        return bool(self.dead_gpus)

    def summary(self) -> str:
        parts = [
            f"{len(self.dead_gpus)} GPU(s) lost",
            f"{len(self.surviving_gpus)} survived",
            f"{self.retries} transfer retr{'y' if self.retries == 1 else 'ies'}",
            f"overhead {self.recovery_overhead_ms:+.3f} ms",
        ]
        if self.replanned_window_size != self.window_size:
            parts.append(
                f"next-MSM window {self.window_size}->{self.replanned_window_size}"
            )
        return ", ".join(parts)

    def to_json(self) -> str:
        """Deterministic JSON export (sorted keys) for archiving chaos runs.

        The fault plan's events are serialised as typed dicts
        (:func:`fault_event_dict`), so the archived record fully determines
        the run it came from.
        """
        record = {
            "plan": [fault_event_dict(e) for e in self.plan.events],
            "rounds": [
                {**asdict(r), "lost_chunks": [list(c) for c in r.lost_chunks],
                 "gpus": list(r.gpus), "failed_gpus": list(r.failed_gpus)}
                for r in self.rounds
            ],
            "dead_gpus": list(self.dead_gpus),
            "surviving_gpus": list(self.surviving_gpus),
            "fault_free_ms": self.fault_free_ms,
            "recovered_ms": self.recovered_ms,
            "window_size": self.window_size,
            "replanned_window_size": self.replanned_window_size,
            "retries": self.retries,
        }
        return json.dumps(record, sort_keys=True)
