"""Seeded chaos: reproducible random fault plans.

``random_fault_plan(seed, num_gpus, horizon_ms)`` is the single entry point
the property tests and the recovery benchmark use: the same seed always
yields the same :class:`~repro.engine.faults.FaultPlan`, so every chaos run
— and every failure it uncovers — is replayable from one integer.
"""

from __future__ import annotations

import random

from repro.engine.faults import (
    FaultEvent,
    FaultPlan,
    GpuFailure,
    Straggler,
    TransferError,
)


def random_fault_plan(
    seed: int,
    num_gpus: int,
    horizon_ms: float,
    gpus_per_node: int = 8,
    max_gpu_failures: int | None = None,
    straggler_probability: float = 0.3,
    transfer_error_probability: float = 0.5,
    max_slowdown: float = 4.0,
) -> FaultPlan:
    """Derive a reproducible fault schedule from ``seed``.

    Kills between 0 and ``max_gpu_failures`` GPUs (default: all but one —
    at least one GPU always survives, so recovery is always possible),
    optionally slows a few survivors, and sprinkles transfer errors
    (mostly transient) over the node links within ``[0, horizon_ms)``.
    """
    if num_gpus < 1:
        raise ValueError(f"need at least one GPU, got {num_gpus}")
    if horizon_ms <= 0:
        raise ValueError(f"horizon_ms must be > 0, got {horizon_ms}")
    rng = random.Random(seed)
    events: list[FaultEvent] = []

    cap = num_gpus - 1 if max_gpu_failures is None else min(max_gpu_failures, num_gpus - 1)
    n_kills = rng.randint(0, cap) if cap > 0 else 0
    victims = rng.sample(range(num_gpus), n_kills)
    for gpu_id in victims:
        events.append(GpuFailure(round(rng.uniform(0.0, horizon_ms), 6), gpu_id))

    for gpu_id in range(num_gpus):
        if gpu_id in victims:
            continue
        if rng.random() < straggler_probability:
            events.append(Straggler(gpu_id, round(rng.uniform(1.1, max_slowdown), 6)))

    nodes = -(-num_gpus // gpus_per_node)
    for node in range(nodes):
        if rng.random() < transfer_error_probability:
            for _ in range(rng.randint(1, 2)):
                events.append(
                    TransferError(
                        node,
                        round(rng.uniform(0.0, horizon_ms), 6),
                        transient=rng.random() < 0.9,
                    )
                )

    return FaultPlan(tuple(events))
