"""Seeded chaos: reproducible random fault plans.

``random_fault_plan(seed, num_gpus, horizon_ms)`` is the single entry point
the property tests and the recovery benchmark use: the same seed always
yields the same :class:`~repro.engine.faults.FaultPlan`, so every chaos run
— and every failure it uncovers — is replayable from one integer.

Generated plans are *always recoverable* by construction:

* transfer errors are always transient (a permanent error poisons a
  delivery unrecoverably, which is a policy decision for a hand-written
  plan, not random chaos);
* at most one straggler per GPU, never on a GPU that also dies;
* at most one Byzantine worker per GPU, never on a dead GPU, and at least
  one GPU always stays both alive and honest — so re-dispatching rejected
  chunks always has a trusted survivor to land on.
"""

from __future__ import annotations

import random

from repro.engine.faults import (
    BYZANTINE_MODES,
    ByzantineWorker,
    FaultEvent,
    FaultPlan,
    GpuFailure,
    Straggler,
    TransferError,
)


def random_fault_plan(
    seed: int,
    num_gpus: int,
    horizon_ms: float,
    gpus_per_node: int = 8,
    max_gpu_failures: int | None = None,
    straggler_probability: float = 0.3,
    transfer_error_probability: float = 0.5,
    max_slowdown: float = 4.0,
    byzantine_probability: float = 0.0,
    node_failure_probability: float = 0.0,
) -> FaultPlan:
    """Derive a reproducible fault schedule from ``seed``.

    Kills between 0 and ``max_gpu_failures`` GPUs (default: all but one —
    at least one GPU always survives, so recovery is always possible),
    optionally slows a few survivors (at most one :class:`Straggler` per
    GPU), sprinkles *transient* transfer errors over the node links within
    ``[0, horizon_ms)``, and — when ``byzantine_probability > 0`` — turns
    some surviving GPUs Byzantine with a random corruption mode (sometimes
    adaptively restricted to one round), always leaving at least one GPU
    alive *and* honest.

    ``node_failure_probability`` models a whole-box fail-stop for the
    cluster layer (:mod:`repro.cluster`): with that probability, every
    still-alive GPU of one randomly chosen node dies at the *same* event
    boundary — which is exactly the all-GPUs-dead signature
    :func:`repro.cluster.failover.split_fault_plan` detects as a
    :class:`~repro.cluster.failover.NodeDeath`.  The victim is never the
    last node with survivors, so the cluster always keeps a live box to
    fail over to.  All draws for this knob happen after the classic ones,
    so plans for existing seeds are unchanged when it is 0.
    """
    if num_gpus < 1:
        raise ValueError(f"need at least one GPU, got {num_gpus}")
    if horizon_ms <= 0:
        raise ValueError(f"horizon_ms must be > 0, got {horizon_ms}")
    if not 0.0 <= byzantine_probability <= 1.0:
        raise ValueError(
            f"byzantine_probability must be in [0, 1], got {byzantine_probability}"
        )
    if not 0.0 <= node_failure_probability <= 1.0:
        raise ValueError(
            f"node_failure_probability must be in [0, 1], "
            f"got {node_failure_probability}"
        )
    rng = random.Random(seed)
    events: list[FaultEvent] = []

    cap = num_gpus - 1 if max_gpu_failures is None else min(max_gpu_failures, num_gpus - 1)
    n_kills = rng.randint(0, cap) if cap > 0 else 0
    victims = set(rng.sample(range(num_gpus), n_kills))
    for gpu_id in sorted(victims):
        events.append(GpuFailure(round(rng.uniform(0.0, horizon_ms), 6), gpu_id))

    if node_failure_probability > 0.0 and rng.random() < node_failure_probability:
        members = {
            node: [
                g
                for g in range(node * gpus_per_node, min((node + 1) * gpus_per_node, num_gpus))
            ]
            for node in range(-(-num_gpus // gpus_per_node))
        }
        live_nodes = [
            node
            for node in sorted(members)
            if any(g not in victims for g in members[node])
        ]
        if len(live_nodes) >= 2:
            doomed = rng.choice(live_nodes)
            at_ms = round(rng.uniform(0.0, horizon_ms), 6)
            for gpu_id in members[doomed]:
                if gpu_id not in victims:
                    victims.add(gpu_id)
                    events.append(GpuFailure(at_ms, gpu_id))

    slowed: set[int] = set()
    for gpu_id in range(num_gpus):
        if gpu_id in victims or gpu_id in slowed:
            continue
        if rng.random() < straggler_probability:
            slowed.add(gpu_id)
            events.append(Straggler(gpu_id, round(rng.uniform(1.1, max_slowdown), 6)))

    nodes = -(-num_gpus // gpus_per_node)
    for node in range(nodes):
        if rng.random() < transfer_error_probability:
            for _ in range(rng.randint(1, 2)):
                events.append(
                    TransferError(
                        node,
                        round(rng.uniform(0.0, horizon_ms), 6),
                        transient=True,
                    )
                )

    if byzantine_probability > 0.0:
        alive = [g for g in range(num_gpus) if g not in victims]
        cheaters = [g for g in alive if rng.random() < byzantine_probability]
        if len(cheaters) == len(alive) and cheaters:
            # keep one alive GPU honest so rejected chunks have a trusted home
            cheaters.remove(rng.choice(cheaters))
        for gpu_id in cheaters:
            mode = rng.choice(BYZANTINE_MODES)
            rnd = rng.randint(0, 2) if rng.random() < 0.25 else None
            events.append(
                ByzantineWorker(
                    gpu_id, mode=mode, round=rnd, seed=rng.randrange(2**32)
                )
            )

    return FaultPlan(tuple(events))
