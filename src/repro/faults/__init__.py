"""repro.faults — deterministic fault injection and recovery policy.

The chaos layer of the reproduction (ROADMAP: production-scale robustness;
ZKProphet's observation that real ZKP-on-GPU deployments are dominated by
tail and failure effects rather than mean kernel time).  Four pieces:

* **Event types** (re-exported from :mod:`repro.engine.faults`, where the
  timeline simulator consumes them): :class:`GpuFailure`,
  :class:`Straggler`, :class:`TransferError` and the fail-*lying*
  :class:`ByzantineWorker`, bundled into a validated :class:`FaultPlan`,
  plus the :class:`RetryPolicy` governing transient transfer-error
  retries.
* **Recovery policy** (:mod:`repro.faults.recovery`): heartbeat-style
  detection times, redistribution of a dead GPU's assignments over the
  survivors, and the :class:`FaultReport` the orchestrator attaches to a
  recovered :class:`~repro.core.distmsm.DistMsmResult`.
* **Byzantine layer** (:mod:`repro.faults.byzantine`): the deterministic
  result-forgery modes (:func:`corrupt_partials`) and the
  :class:`ByzantineReport` verification audit; the protocol math lives in
  :mod:`repro.msm.outsource`.
* **Chaos generation** (:mod:`repro.faults.chaos`):
  :func:`random_fault_plan` derives a reproducible fault schedule from a
  seed — the property-test and benchmark entry point.

The orchestration itself lives in :meth:`repro.core.distmsm.DistMsm
.execute` / ``estimate`` (``faults=`` keyword); the independent audits in
:mod:`repro.verify.faultcheck` and :mod:`repro.verify.integritycheck`.
"""

from repro.engine.faults import (
    BYZANTINE_MODES,
    ByzantineWorker,
    FaultEvent,
    FaultPlan,
    GpuFailure,
    RetryPolicy,
    Straggler,
    TransferError,
    channel_resource_name,
    gpu_resource_name,
)
from repro.faults.byzantine import (
    ByzantineReport,
    ChunkOutcome,
    corrupt_partials,
)
from repro.faults.chaos import random_fault_plan
from repro.faults.recovery import (
    FaultRecoveryError,
    FaultReport,
    RecoveryRound,
    detection_time_ms,
    fault_event_dict,
    redistribute_assignments,
)

__all__ = [
    "BYZANTINE_MODES",
    "ByzantineWorker",
    "FaultEvent",
    "FaultPlan",
    "GpuFailure",
    "RetryPolicy",
    "Straggler",
    "TransferError",
    "channel_resource_name",
    "gpu_resource_name",
    "ByzantineReport",
    "ChunkOutcome",
    "corrupt_partials",
    "FaultRecoveryError",
    "FaultReport",
    "RecoveryRound",
    "detection_time_ms",
    "fault_event_dict",
    "redistribute_assignments",
    "random_fault_plan",
]
