"""Byzantine workers: deterministic result forgery and its audit trail.

A :class:`~repro.engine.faults.ByzantineWorker` event makes one GPU
return *forged* chunk results while meeting every deadline — the failure
mode the fail-stop machinery of PR 3 cannot see.  This module owns the
two halves that are not protocol math (that lives in
:mod:`repro.msm.outsource`):

* :func:`corrupt_partials` — the three corruption modes, applied
  deterministically (seeded per ``(seed, round, gpu)``) to the bucket
  partials a cheating worker delivers:

  - ``"wrong-result"`` — one weighted bucket replaced by an unrelated
    group element (a worker that skipped the work and made something up);
  - ``"bit-flip"`` — one bit flipped in a stored coordinate (silent
    memory corruption; the point may leave the curve entirely);
  - ``"off-by-one-bucket"`` — one slot's weighted buckets rotated by one
    index (the classic indexing bug, adversarially exploited).

  The function reports whether the corruption actually changed the
  chunk's *value* ``V = sum b * B_b``: a value-preserving corruption
  (e.g. only bucket 0, which has weight zero) provably cannot change the
  final MSM point, because every accumulation layer is linear in the
  chunk values — so "harmless" forgeries passing verification is
  soundness, not a gap.

* :class:`ByzantineReport` / :class:`ChunkOutcome` — the audit trail the
  orchestrator attaches to a :class:`~repro.core.distmsm.DistMsmResult`:
  every chunk's verdict and verification time, the quarantine decisions,
  and exactly which delivered execution each plan slot was consumed
  from.  :mod:`repro.verify.integritycheck` replays this trail against
  the timeline to prove no unverified or rejected result reached the
  returned point.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass

from repro.curves.params import CurveParams
from repro.curves.point import AffinePoint, XyzzPoint, pmul, to_affine
from repro.msm.outsource import chunk_value

__all__ = [
    "ByzantineReport",
    "ChunkOutcome",
    "VERDICT_ACCEPTED",
    "VERDICT_LOST",
    "VERDICT_REJECTED",
    "VERDICT_UNVERIFIED",
    "corrupt_partials",
]

#: chunk verdicts recorded in a :class:`ChunkOutcome`
VERDICT_ACCEPTED = "accepted"  #: delivered and passed the response check
VERDICT_REJECTED = "rejected"  #: delivered but failed the response check
VERDICT_UNVERIFIED = "unverified"  #: delivered with verification disabled
VERDICT_LOST = "lost"  #: transfer never completed (fail-stop territory)


def _rng(seed: int, rnd: int, gpu: int) -> random.Random:
    return random.Random((seed, "byzantine", rnd, gpu).__repr__())


def _weighted_positions(partials: list) -> list:
    """Every ``(slot_index, bucket_index)`` with accumulation weight >= 1."""
    return [
        (si, b)
        for si, sums in enumerate(partials)
        for b in range(1, len(sums))
    ]


def corrupt_partials(
    mode: str,
    seed: int,
    rnd: int,
    gpu: int,
    partials: list,
    curve: CurveParams,
) -> tuple[list, bool]:
    """Forge a chunk's bucket partials; returns ``(forged, value_changed)``.

    Deterministic in ``(seed, round, gpu)``.  ``value_changed`` is exact:
    the honest and forged chunk values are compared in affine
    coordinates, so the caller knows whether this forgery can possibly
    affect the final point (and therefore whether the verifier *must*
    reject it).
    """
    positions = _weighted_positions(partials)
    if not positions:
        return partials, False
    rng = _rng(seed, rnd, gpu)
    forged = [list(sums) for sums in partials]
    if mode == "wrong-result":
        si, b = positions[rng.randrange(len(positions))]
        k = rng.randrange(1, max(2, curve.r))
        forged[si][b] = XyzzPoint.from_affine(
            pmul(AffinePoint(curve.gx, curve.gy), k, curve)
        )
    elif mode == "bit-flip":
        hit = [(si, b) for si, b in positions if not partials[si][b].is_identity]
        if not hit:  # flipping a bit of the identity encoding changes nothing
            return partials, False
        si, b = hit[rng.randrange(len(hit))]
        victim = partials[si][b]
        forged[si][b] = XyzzPoint(victim.x ^ 1, victim.y, victim.zz, victim.zzz)
    elif mode == "off-by-one-bucket":
        si = rng.randrange(len(partials))
        sums = forged[si]
        if len(sums) > 2:  # rotate the weighted buckets [1, B) by one index
            sums[1:] = sums[2:] + [sums[1]]
    else:
        raise ValueError(f"unknown byzantine mode {mode!r}")
    changed = to_affine(chunk_value(partials, curve), curve) != to_affine(
        chunk_value(forged, curve), curve
    )
    return forged, changed


@dataclass(frozen=True)
class ChunkOutcome:
    """One chunk's fate in a Byzantine-aware execution."""

    round: int
    gpu: int
    slots: tuple[int, ...]
    corrupted: bool  #: a forgery was applied AND changed the chunk value
    delivered: bool  #: its host transfer completed
    verdict: str  #: one of the ``VERDICT_*`` constants
    dispatched_at_ms: float  #: earliest start of the chunk's tasks
    verified_at_ms: float = -1.0  #: response-check completion (-1 = never)

    def __post_init__(self) -> None:
        if self.verdict not in (
            VERDICT_ACCEPTED,
            VERDICT_REJECTED,
            VERDICT_UNVERIFIED,
            VERDICT_LOST,
        ):
            raise ValueError(f"unknown chunk verdict {self.verdict!r}")


@dataclass(frozen=True)
class ByzantineReport:
    """Verification audit of one execution, attached to the result.

    ``consumed`` records, per plan slot, the ``(slot, round, gpu)`` of
    the one delivered execution whose partial the accumulation actually
    used — the integrity checker's ground truth for conservation of
    verified mass.  ``quarantined`` carries ``(gpu, at_ms)`` pairs: from
    ``at_ms`` on, no further work may be dispatched to that GPU.
    """

    challenge_seed: int
    scheme: str  #: "2g2t-rlc" (batched) or "2g2t" (per-chunk checks)
    soundness_bits: int  #: ``floor(log2 r)`` of the curve executed on
    verified: bool  #: False when verification was disabled for the run
    cheaters: tuple[int, ...]  #: GPUs with a ByzantineWorker event
    quarantined: tuple[tuple[int, float], ...]
    chunks: tuple[ChunkOutcome, ...]
    consumed: tuple[tuple[int, int, int], ...]
    chunk_checks: int = 0  #: individual response checks performed
    batch_checks: int = 0  #: amortised RLC checks performed
    rejected: int = 0  #: chunks whose response check failed

    @property
    def caught(self) -> bool:
        """True when at least one forged chunk was rejected."""
        return self.rejected > 0

    @property
    def quarantined_gpus(self) -> tuple[int, ...]:
        return tuple(sorted(g for g, _ in self.quarantined))

    def outcome_for(self, rnd: int, gpu: int) -> ChunkOutcome | None:
        for chunk in self.chunks:
            if chunk.round == rnd and chunk.gpu == gpu:
                return chunk
        return None

    def summary(self) -> str:
        parts = [
            f"{len(self.cheaters)} cheater(s)",
            f"{self.rejected} chunk(s) rejected",
            f"{len(self.quarantined)} GPU(s) quarantined",
            f"{self.chunk_checks}+{self.batch_checks} checks "
            f"(chunk+batch, {self.soundness_bits}-bit soundness)",
        ]
        if not self.verified:
            parts.insert(0, "verification DISABLED")
        return ", ".join(parts)

    def to_json(self) -> str:
        """Deterministic JSON export (sorted keys) for archiving runs."""
        record = asdict(self)
        record["chunks"] = [asdict(c) for c in self.chunks]
        record["quarantined"] = [list(q) for q in self.quarantined]
        record["consumed"] = [list(c) for c in self.consumed]
        record["cheaters"] = list(self.cheaters)
        for chunk in record["chunks"]:
            chunk["slots"] = list(chunk["slots"])
        return json.dumps(record, sort_keys=True)
