"""Event-driven execution timeline: tasks, dependencies, resources.

One deterministic discrete-event simulator replaces the repo's previous
three ad-hoc timing models (serial phase sums, the private two-machine flow
shop in ``core.multi_msm``, and the Amdahl split in ``zksnark.pipeline``).
Producers *emit tasks* — a name, a :class:`~repro.engine.resources.Resource`,
a duration, dependency edges — and :func:`simulate` schedules them:

* a task becomes *ready* when all its dependencies have finished (and its
  ``not_before_ms`` release time has passed);
* each resource executes one task at a time, FIFO in readiness order
  (ties broken by submission order), like an in-order CUDA stream;
* the loop always dispatches the ready task with the smallest
  ``(ready_time, submission index)``, so results are fully deterministic.

The resulting :class:`Timeline` carries per-task spans, per-resource
utilization, and the critical path — the quantities Figs. 8/9 and the
§3.2.3 pipelining argument are really about.

Fault injection (:mod:`repro.engine.faults`): ``simulate`` optionally takes
a :class:`~repro.engine.faults.FaultPlan`.  Stragglers stretch task
durations on their resource; a dead resource kills its running task and
refuses everything after its failure time (tasks *requiring* a dead
resource — ``Task.requires_alive`` — die with it); transient transfer
errors fail the in-flight attempt and re-queue it under the
:class:`~repro.engine.faults.RetryPolicy`'s exponential backoff.  Failed
tasks cascade to their dependants, and every failure/retry is recorded on
the timeline (:class:`TaskFailure` / :class:`TaskAttempt`) so independent
checkers can audit the recovery — nothing is silently dropped.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, NamedTuple

from repro.engine.faults import FaultPlan, RetryPolicy, TransferError
from repro.engine.resources import Resource

if TYPE_CHECKING:
    from repro.observe.tracer import Tracer

#: scheduling/verification tolerance for time comparisons (milliseconds)
TIME_EPS = 1e-9


@dataclass(frozen=True)
class Task:
    """One unit of work bound to a resource.

    Attributes
    ----------
    name:
        Unique identifier within its timeline.
    resource:
        Where the task runs (a serially-executing unit).
    duration_ms:
        Modelled execution time; zero-duration marker tasks are allowed.
    deps:
        Names of tasks that must finish before this one may start.
    stage:
        Optional grouping label (pipeline phase) for reporting.
    not_before_ms:
        Earliest permitted start (release time) — how recovery rounds are
        pinned after a failure's detection heartbeat.
    requires_alive:
        Resource names (beyond the executing resource) that must stay
        alive through the task — a device-to-host copy requires the source
        GPU's memory, so the copy dies with the GPU.
    """

    name: str
    resource: Resource
    duration_ms: float
    deps: tuple[str, ...] = ()
    stage: str = ""
    not_before_ms: float = 0.0
    requires_alive: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.duration_ms < 0:
            raise ValueError(
                f"task {self.name!r}: negative duration {self.duration_ms}"
            )
        if self.not_before_ms < 0:
            raise ValueError(
                f"task {self.name!r}: negative release time {self.not_before_ms}"
            )


@dataclass(frozen=True)
class Stage:
    """A named group of tasks forming one pipeline phase (barrier group)."""

    name: str
    tasks: tuple[str, ...]


class TaskSpan(NamedTuple):
    """The scheduled interval of one task.

    A ``NamedTuple`` rather than a frozen dataclass: :func:`simulate`
    constructs one per completed task, and at 10^6-task scale tuple
    construction is about half the cost of a dataclass ``__init__``.
    Field access, equality, hashing, and repr are unchanged.
    """

    task: str
    resource: Resource
    start_ms: float
    end_ms: float
    stage: str = ""

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass(frozen=True)
class TaskFailure:
    """One task that did not complete, and why.

    ``reason`` is one of ``"killed"`` (resource died mid-task),
    ``"resource-dead"`` (a needed resource was already dead at dispatch),
    ``"transfer-error"`` (permanent transfer fault, or retries exhausted),
    or ``"dep-failed"`` (a dependency failed, so this task can never run).
    ``start_ms`` is the aborted attempt's start, ``None`` if it never ran.
    """

    task: str
    resource: Resource
    at_ms: float
    reason: str
    start_ms: float | None = None
    attempt: int = 1


@dataclass(frozen=True)
class TaskAttempt:
    """A failed-but-retried occupation of a resource (transient fault).

    The attempt held ``resource`` over ``[start_ms, end_ms)`` before the
    fault bit; the retry was released at ``retry_at_ms`` (failure time plus
    the policy's exponential backoff).
    """

    task: str
    resource: Resource
    start_ms: float
    end_ms: float
    attempt: int
    retry_at_ms: float


@dataclass
class Timeline:
    """A fully scheduled task graph.

    ``spans`` maps task name to its interval; ``total_ms`` is the makespan
    (max end over all spans, *aborted work included* — failed attempts and
    failure times count, so a chaos run's accounting stays honest; 0 for an
    empty timeline).  The original tasks (with their dependency edges) are
    retained so independent checkers (:mod:`repro.verify.timelinecheck`,
    :mod:`repro.verify.faultcheck`) can audit the schedule without
    re-running the simulator.
    """

    tasks: tuple[Task, ...]
    spans: dict[str, TaskSpan]
    total_ms: float
    stages: tuple[Stage, ...] = ()
    #: task name -> the predecessor (dependency or resource queue) that
    #: determined its start time; roots map to None
    binding: dict[str, str | None] = field(default_factory=dict)
    #: tasks that never completed (fault injection only; empty otherwise)
    failures: tuple[TaskFailure, ...] = ()
    #: failed-but-retried attempts (transient transfer errors)
    attempts: tuple[TaskAttempt, ...] = ()
    #: lazy per-task lookup indexes; built once on first use so audits that
    #: query every task (faultcheck walks the whole graph) are O(total)
    #: instead of O(tasks x attempts)
    _failure_index: dict[str, TaskFailure] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _attempt_index: dict[str, tuple[TaskAttempt, ...]] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def span(self, task: str) -> TaskSpan:
        return self.spans[task]

    @property
    def ok(self) -> bool:
        """True when every task completed (no fault losses)."""
        return not self.failures

    def failure_for(self, task: str) -> TaskFailure | None:
        """The terminal failure of ``task``, if it did not complete."""
        index = self._failure_index
        if index is None:
            index = {}
            for failure in self.failures:
                # first entry wins, matching the original linear scan
                index.setdefault(failure.task, failure)
            self._failure_index = index
        return index.get(task)

    def attempts_for(self, task: str) -> tuple[TaskAttempt, ...]:
        """The failed-but-retried attempts of ``task``, in attempt order."""
        index = self._attempt_index
        if index is None:
            grouped: dict[str, list[TaskAttempt]] = {}
            for attempt in self.attempts:
                grouped.setdefault(attempt.task, []).append(attempt)
            index = {
                name: tuple(sorted(group, key=lambda a: a.attempt))
                for name, group in grouped.items()
            }
            self._attempt_index = index
        return index.get(task, ())

    def busy_ms(self) -> dict[str, float]:
        """Total busy time per resource name."""
        busy: dict[str, float] = {}
        for span in self.spans.values():
            busy[span.resource.name] = busy.get(span.resource.name, 0.0) + span.duration_ms
        return busy

    def utilization(self) -> dict[str, float]:
        """Busy fraction of the makespan per resource name."""
        if self.total_ms <= 0:
            return {name: 0.0 for name in self.busy_ms()}
        return {name: b / self.total_ms for name, b in self.busy_ms().items()}

    def critical_path(self) -> list[str]:
        """Task names on the chain that sets the makespan, in time order.

        Follows each task's *binding* predecessor — the dependency or
        resource-queue neighbour whose completion gated its start — from
        the last-finishing task back to a root.
        """
        if not self.spans:
            return []
        last = max(self.spans.values(), key=lambda s: (s.end_ms, s.task)).task
        path = [last]
        seen = {last}
        while True:
            prev = self.binding.get(path[-1])
            # a retried task can bind to a successor that bound to its own
            # failed attempt, closing a loop; stop at the first revisit
            if prev is None or prev in seen:
                break
            path.append(prev)
            seen.add(prev)
        path.reverse()
        return path

    def stage_spans(self) -> dict[str, tuple[float, float]]:
        """Per-stage (start, end) envelopes, for phase-level reporting."""
        out: dict[str, tuple[float, float]] = {}
        for span in self.spans.values():
            if not span.stage:
                continue
            lo, hi = out.get(span.stage, (span.start_ms, span.end_ms))
            out[span.stage] = (min(lo, span.start_ms), max(hi, span.end_ms))
        return out

    def render(self, width: int = 60) -> str:
        """ASCII Gantt chart, one row per resource."""
        if not self.spans:
            return "(empty timeline)"
        end = self.total_ms or 1.0
        by_resource: dict[str, list[TaskSpan]] = {}
        for span in sorted(self.spans.values(), key=lambda s: (s.start_ms, s.task)):
            by_resource.setdefault(span.resource.name, []).append(span)
        label_w = max(len(name) for name in by_resource)
        lines = [f"timeline makespan {self.total_ms:.3f} ms"]
        for name in sorted(by_resource):
            row = [" "] * width
            for i, span in enumerate(by_resource[name]):
                lo = round(span.start_ms / end * width)
                hi = max(lo + 1, round(span.end_ms / end * width))
                mark = "#~=+*"[i % 5]
                for c in range(lo, min(hi, width)):
                    row[c] = mark
            lines.append(f"{name:>{label_w}} |{''.join(row)}")
        lines.append(" " * label_w + " +" + "-" * width)
        return "\n".join(lines)


def simulate(
    tasks: list[Task] | tuple[Task, ...],
    stages: tuple[Stage, ...] = (),
    faults: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
    tracer: "Tracer | None" = None,
) -> Timeline:
    """Schedule ``tasks`` over their resources; deterministic event loop.

    With a :class:`~repro.engine.faults.FaultPlan`, the loop additionally
    kills tasks on dead resources, stretches straggler durations, and
    retries transient transfer errors under ``retry`` (defaults to
    ``RetryPolicy()``); the returned timeline then carries ``failures``
    and ``attempts`` alongside the completed spans.

    With a :class:`~repro.observe.tracer.Tracer`, the finished timeline is
    transcribed onto it (one span per task, retries, fault instants) —
    after the event loop, so the scheduling path itself never pays for
    tracing; with ``tracer=None`` (the default) no tracing object of any
    kind is touched.

    The event loop works on integer task/resource ids with flat lists for
    every per-task quantity — string-keyed dictionaries appear only during
    validation and when the finished :class:`Timeline` is assembled.  The
    schedule it produces (spans, bindings, failures, attempts, makespan)
    is byte-for-byte the one the original dict-keyed loop computed; the
    differential tier pins this against
    :func:`repro.engine._reference.reference_simulate`.
    """
    task_list = tuple(tasks)
    n = len(task_list)
    names = [t.name for t in task_list]
    index: dict[str, int] = dict(zip(names, range(n)))
    if len(index) != n:
        seen: set[str] = set()
        for name in names:
            if name in seen:
                raise ValueError(f"duplicate task name {name!r}")
            seen.add(name)

    have_faults = faults is not None
    policy = retry if retry is not None else RetryPolicy()

    # -- int-indexed task tables (the hot loop never touches a Task) ------
    res_ids: dict[str, int] = {}
    # setdefault evaluates len() before the lookup, which is harmless: the
    # value is only stored (as the next fresh id) when the key is new
    res_of = [res_ids.setdefault(t.resource.name, len(res_ids)) for t in task_list]
    durations = [t.duration_ms for t in task_list]
    release = [t.not_before_ms for t in task_list]
    index_get = index.__getitem__
    try:
        deps_of: list[tuple[int, ...]] = [
            ()
            if not deps
            else (
                (index_get(deps[0]),)
                if len(deps) == 1
                else tuple(map(index_get, dict.fromkeys(deps)))
            )
            for deps in [t.deps for t in task_list]
        ]
    except KeyError:
        for task in task_list:
            for dep in task.deps:
                if dep not in index:
                    raise ValueError(
                        f"task {task.name!r} depends on unknown {dep!r}"
                    ) from None
        raise
    remaining = [len(deps) for deps in deps_of]
    dependants: list[list[int]] = [[] for _ in range(n)]
    for i, deps in enumerate(deps_of):
        for d in deps:
            dependants[d].append(i)
    # resources referenced only through requires_alive still need ids so
    # the death table below covers them
    req_of: list[tuple[int, ...]] = [()] * n
    if have_faults:
        for i, task in enumerate(task_list):
            if task.requires_alive:
                req_of[i] = tuple(
                    res_ids.setdefault(r, len(res_ids)) for r in task.requires_alive
                )

    # -- fault tables, re-keyed by resource id ----------------------------
    INF = float("inf")
    num_res = len(res_ids)
    death_at = [INF] * num_res
    slow = [1.0] * num_res
    #: per-resource consumable queues of transfer-error events (time order)
    err_queues: list[list[TransferError] | None] = [None] * num_res
    if have_faults:
        for rname, when in faults.death_times().items():
            rid = res_ids.get(rname)
            if rid is not None:
                death_at[rid] = when
        for rname, factor in faults.slowdowns().items():
            rid = res_ids.get(rname)
            if rid is not None:
                slow[rid] = factor
        for rname, queue in faults.transfer_errors().items():
            rid = res_ids.get(rname)
            if rid is not None and queue:
                err_queues[rid] = queue

    #: (ready_time, submission index) — the dispatch priority
    ready: list[tuple[float, int]] = [
        (release[i], i) for i in range(n) if remaining[i] == 0
    ]
    heapq.heapify(ready)

    free = [0.0] * num_res
    queue_tail = [-1] * num_res  # last task dispatched per resource (-1: none)
    ends = [0.0] * n
    starts = [0.0] * n
    scheduled = bytearray(n)
    failed = bytearray(n)
    done_order: list[int] = []  # dispatch order, for ordered Timeline assembly
    gate_of: list[int] = []  # parallel to done_order; -1 encodes None
    failures: list[TaskFailure] = []
    attempts: list[TaskAttempt] = []
    attempt_no: dict[int, int] = {}
    heappop, heappush = heapq.heappop, heapq.heappush
    done_append, gate_append = done_order.append, gate_of.append
    eps = TIME_EPS

    def fail_task(idx: int, at: float, reason: str, start: float | None) -> None:
        """Record a terminal failure and cascade it to all dependants."""
        stack: list[tuple[int, float, str, float | None]] = [(idx, at, reason, start)]
        while stack:
            ti, at_ms, why, started = stack.pop()
            if failed[ti] or scheduled[ti]:
                continue
            failed[ti] = 1
            victim = task_list[ti]
            failures.append(
                TaskFailure(
                    victim.name,
                    victim.resource,
                    at_ms,
                    why,
                    started,
                    attempt_no.get(ti, 1),
                )
            )
            for child in dependants[ti]:
                stack.append((child, at_ms, "dep-failed", None))

    if not have_faults:
        # fault-free fast loop: no task can fail, so the failure machinery
        # (failed bits, death/error scans) drops out of the per-dispatch cost.
        # Dependency ends are final by the time a task is pushed, so its
        # dependency-gate candidate (latest end, smallest index on ties) is
        # computed once at push time instead of rescanned at dispatch.
        gate_cand = [-1] * n
        gate_end = [0.0] * n
        while ready:
            ready_time, i = heappop(ready)
            rid = res_of[i]
            res_free = free[rid]
            start = ready_time if ready_time >= res_free else res_free
            end = start + durations[i]

            if gate_cand[i] >= 0 and gate_end[i] >= res_free - eps:
                gate = gate_cand[i]
            elif queue_tail[rid] >= 0 and res_free > ready_time - eps:
                gate = queue_tail[rid]
            else:
                gate = -1

            free[rid] = end
            queue_tail[rid] = i
            ends[i] = end
            starts[i] = start
            done_append(i)
            gate_append(gate)

            for child in dependants[i]:
                left = remaining[child] - 1
                remaining[child] = left
                if not left:
                    child_deps = deps_of[child]
                    if len(child_deps) == 1:
                        # the sole dependency is the task that just finished
                        latest, child_ready = i, end
                    else:
                        latest = child_deps[0]
                        child_ready = ends[latest]
                        for d in child_deps[1:]:
                            d_end = ends[d]
                            if d_end > child_ready or (
                                d_end == child_ready and d < latest
                            ):
                                latest, child_ready = d, d_end
                    gate_cand[child] = latest
                    gate_end[child] = child_ready
                    rel = release[child]
                    if rel > child_ready:
                        child_ready = rel
                    heappush(ready, (child_ready, child))
    else:
        while ready:
            ready_time, i = heappop(ready)
            if failed[i]:
                continue
            rid = res_of[i]
            res_free = free[rid]
            start = ready_time if ready_time >= res_free else res_free
            task = task_list[i]
            duration = durations[i] * slow[rid]

            # fail-stop hazards: the executing resource plus co-required ones
            dead_at = INF
            if death_at[rid] <= start + eps:
                dead_at = death_at[rid]
            for r in req_of[i]:
                when = death_at[r]
                if when <= start + eps and when < dead_at:
                    dead_at = when
            if dead_at != INF:
                fail_task(i, dead_at, "resource-dead", None)
                continue
            kill_at = death_at[rid]
            for r in req_of[i]:
                if death_at[r] < kill_at:
                    kill_at = death_at[r]
            end = start + duration

            # earliest transfer-error event landing inside this attempt
            hit: TransferError | None = None
            queue = err_queues[rid]
            if queue:
                for event in queue:
                    if event.at_ms >= end - eps:
                        break
                    if event.at_ms >= start - eps:
                        hit = event
                        break
            if hit is not None and hit.at_ms <= kill_at:
                queue.remove(hit)  # type: ignore[union-attr]
                k = attempt_no.get(i, 1)
                free[rid] = hit.at_ms
                queue_tail[rid] = i
                if hit.transient and k <= policy.max_retries:
                    retry_at = hit.at_ms + policy.delay_ms(k)
                    attempts.append(
                        TaskAttempt(task.name, task.resource, start, hit.at_ms, k, retry_at)
                    )
                    attempt_no[i] = k + 1
                    heappush(ready, (retry_at, i))
                else:
                    fail_task(i, hit.at_ms, "transfer-error", start)
                continue

            if kill_at < end - eps:  # the resource dies mid-task
                free[rid] = kill_at
                queue_tail[rid] = i
                fail_task(i, kill_at, "killed", start)
                continue

            # what gated the start: the resource queue, or the latest dependency
            gate = -1
            deps = deps_of[i]
            if deps:
                latest = deps[0]
                latest_end = ends[latest]
                for d in deps[1:]:
                    d_end = ends[d]
                    if d_end > latest_end or (d_end == latest_end and d < latest):
                        latest, latest_end = d, d_end
                if latest_end >= res_free - eps:
                    gate = latest
            if gate < 0 and queue_tail[rid] >= 0 and res_free > ready_time - eps:
                gate = queue_tail[rid]

            free[rid] = end
            queue_tail[rid] = i
            ends[i] = end
            starts[i] = start
            scheduled[i] = 1
            done_order.append(i)
            gate_of.append(gate)

            for child in dependants[i]:
                remaining[child] -= 1
                if remaining[child] == 0 and not failed[child]:
                    child_deps = deps_of[child]
                    child_ready = ends[child_deps[0]]
                    for d in child_deps[1:]:
                        d_end = ends[d]
                        if d_end > child_ready:
                            child_ready = d_end
                    if release[child] > child_ready:
                        child_ready = release[child]
                    heappush(ready, (child_ready, child))

    if len(done_order) + len(failures) != n:
        done_set = set(done_order)
        stuck = sorted(
            task_list[i].name
            for i in range(n)
            if i not in done_set and not failed[i]
        )
        raise ValueError(f"dependency cycle among tasks: {', '.join(stuck)}")

    total = max(
        (
            *(ends[i] for i in done_order),
            *(f.at_ms for f in failures),
            *(a.end_ms for a in attempts),
        ),
        default=0.0,
    )

    # assemble the string-keyed views in dispatch order, matching the
    # insertion order of the original loop (busy_ms sums in this order);
    # map/zip keep this O(n) pass at C speed
    done_names = [names[i] for i in done_order]
    binding: dict[str, str | None] = dict(
        zip(done_names, [names[g] if g >= 0 else None for g in gate_of])
    )
    resources = [t.resource for t in task_list]
    stage_of = [t.stage for t in task_list]
    # _make hands zip's ready-made tuples straight to tuple.__new__,
    # skipping the per-span keyword-processing layer of TaskSpan(...)
    spans: dict[str, TaskSpan] = dict(
        zip(
            done_names,
            map(
                TaskSpan._make,
                zip(
                    done_names,
                    [resources[i] for i in done_order],
                    [starts[i] for i in done_order],
                    [ends[i] for i in done_order],
                    [stage_of[i] for i in done_order],
                ),
            ),
        )
    )

    timeline = Timeline(
        task_list, spans, total, stages, binding, tuple(failures), tuple(attempts)
    )
    if tracer is not None and tracer.enabled:
        from repro.observe.record import record_timeline

        record_timeline(tracer, timeline)
    return timeline


class TimelineBuilder:
    """Incremental task-graph construction with barrier-stage support.

    ``add`` registers one task; ``barrier_stage`` opens a named stage whose
    tasks all depend on *every* task of the previous barrier stage — the
    phase-serial structure of the legacy timing model.  ``build`` runs the
    simulator.
    """

    def __init__(self) -> None:
        self._tasks: list[Task] = []
        self._stages: list[Stage] = []
        self._stage_tasks: list[str] = []
        self._prev_stage_tasks: tuple[str, ...] = ()
        self._stage_name: str | None = None

    def add(
        self,
        name: str,
        resource: Resource,
        duration_ms: float,
        deps: tuple[str, ...] = (),
        stage: str | None = None,
        not_before_ms: float = 0.0,
        requires_alive: tuple[str, ...] = (),
    ) -> str:
        """Register a task; inside a barrier stage, barrier deps are added."""
        label = stage if stage is not None else (self._stage_name or "")
        all_deps = deps
        if self._stage_name is not None and stage is None:
            all_deps = tuple(dict.fromkeys(deps + self._prev_stage_tasks))
        self._tasks.append(
            Task(name, resource, duration_ms, all_deps, label, not_before_ms, requires_alive)
        )
        if self._stage_name is not None and stage is None:
            self._stage_tasks.append(name)
        return name

    def barrier_stage(self, name: str) -> None:
        """Close the current barrier stage and open a new one."""
        self._close_stage()
        self._stage_name = name

    def _close_stage(self) -> None:
        if self._stage_name is not None:
            self._stages.append(Stage(self._stage_name, tuple(self._stage_tasks)))
            if self._stage_tasks:
                self._prev_stage_tasks = tuple(self._stage_tasks)
        self._stage_tasks = []

    @property
    def tasks(self) -> list[Task]:
        """The tasks registered so far (submission order), a copy."""
        return list(self._tasks)

    def build(
        self,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        tracer: "Tracer | None" = None,
    ) -> Timeline:
        self._close_stage()
        self._stage_name = None
        # pre-flight model check (repro.analyze): reject cycles, unknown
        # deps, and in-order-stream deadlocks before any partial scheduling
        from repro.analyze.modelcheck import check_plan

        check_plan(self._tasks, label="<timeline-builder plan>")
        return simulate(self._tasks, tuple(self._stages), faults, retry, tracer)
