"""Event-driven execution timeline: tasks, dependencies, resources.

One deterministic discrete-event simulator replaces the repo's previous
three ad-hoc timing models (serial phase sums, the private two-machine flow
shop in ``core.multi_msm``, and the Amdahl split in ``zksnark.pipeline``).
Producers *emit tasks* — a name, a :class:`~repro.engine.resources.Resource`,
a duration, dependency edges — and :func:`simulate` schedules them:

* a task becomes *ready* when all its dependencies have finished (and its
  ``not_before_ms`` release time has passed);
* each resource executes one task at a time, FIFO in readiness order
  (ties broken by submission order), like an in-order CUDA stream;
* the loop always dispatches the ready task with the smallest
  ``(ready_time, submission index)``, so results are fully deterministic.

The resulting :class:`Timeline` carries per-task spans, per-resource
utilization, and the critical path — the quantities Figs. 8/9 and the
§3.2.3 pipelining argument are really about.

Fault injection (:mod:`repro.engine.faults`): ``simulate`` optionally takes
a :class:`~repro.engine.faults.FaultPlan`.  Stragglers stretch task
durations on their resource; a dead resource kills its running task and
refuses everything after its failure time (tasks *requiring* a dead
resource — ``Task.requires_alive`` — die with it); transient transfer
errors fail the in-flight attempt and re-queue it under the
:class:`~repro.engine.faults.RetryPolicy`'s exponential backoff.  Failed
tasks cascade to their dependants, and every failure/retry is recorded on
the timeline (:class:`TaskFailure` / :class:`TaskAttempt`) so independent
checkers can audit the recovery — nothing is silently dropped.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.engine.faults import FaultPlan, RetryPolicy, TransferError
from repro.engine.resources import Resource

if TYPE_CHECKING:
    from repro.observe.tracer import Tracer

#: scheduling/verification tolerance for time comparisons (milliseconds)
TIME_EPS = 1e-9


@dataclass(frozen=True)
class Task:
    """One unit of work bound to a resource.

    Attributes
    ----------
    name:
        Unique identifier within its timeline.
    resource:
        Where the task runs (a serially-executing unit).
    duration_ms:
        Modelled execution time; zero-duration marker tasks are allowed.
    deps:
        Names of tasks that must finish before this one may start.
    stage:
        Optional grouping label (pipeline phase) for reporting.
    not_before_ms:
        Earliest permitted start (release time) — how recovery rounds are
        pinned after a failure's detection heartbeat.
    requires_alive:
        Resource names (beyond the executing resource) that must stay
        alive through the task — a device-to-host copy requires the source
        GPU's memory, so the copy dies with the GPU.
    """

    name: str
    resource: Resource
    duration_ms: float
    deps: tuple[str, ...] = ()
    stage: str = ""
    not_before_ms: float = 0.0
    requires_alive: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.duration_ms < 0:
            raise ValueError(
                f"task {self.name!r}: negative duration {self.duration_ms}"
            )
        if self.not_before_ms < 0:
            raise ValueError(
                f"task {self.name!r}: negative release time {self.not_before_ms}"
            )


@dataclass(frozen=True)
class Stage:
    """A named group of tasks forming one pipeline phase (barrier group)."""

    name: str
    tasks: tuple[str, ...]


@dataclass(frozen=True)
class TaskSpan:
    """The scheduled interval of one task."""

    task: str
    resource: Resource
    start_ms: float
    end_ms: float
    stage: str = ""

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass(frozen=True)
class TaskFailure:
    """One task that did not complete, and why.

    ``reason`` is one of ``"killed"`` (resource died mid-task),
    ``"resource-dead"`` (a needed resource was already dead at dispatch),
    ``"transfer-error"`` (permanent transfer fault, or retries exhausted),
    or ``"dep-failed"`` (a dependency failed, so this task can never run).
    ``start_ms`` is the aborted attempt's start, ``None`` if it never ran.
    """

    task: str
    resource: Resource
    at_ms: float
    reason: str
    start_ms: float | None = None
    attempt: int = 1


@dataclass(frozen=True)
class TaskAttempt:
    """A failed-but-retried occupation of a resource (transient fault).

    The attempt held ``resource`` over ``[start_ms, end_ms)`` before the
    fault bit; the retry was released at ``retry_at_ms`` (failure time plus
    the policy's exponential backoff).
    """

    task: str
    resource: Resource
    start_ms: float
    end_ms: float
    attempt: int
    retry_at_ms: float


@dataclass
class Timeline:
    """A fully scheduled task graph.

    ``spans`` maps task name to its interval; ``total_ms`` is the makespan
    (max end over all spans, *aborted work included* — failed attempts and
    failure times count, so a chaos run's accounting stays honest; 0 for an
    empty timeline).  The original tasks (with their dependency edges) are
    retained so independent checkers (:mod:`repro.verify.timelinecheck`,
    :mod:`repro.verify.faultcheck`) can audit the schedule without
    re-running the simulator.
    """

    tasks: tuple[Task, ...]
    spans: dict[str, TaskSpan]
    total_ms: float
    stages: tuple[Stage, ...] = ()
    #: task name -> the predecessor (dependency or resource queue) that
    #: determined its start time; roots map to None
    binding: dict[str, str | None] = field(default_factory=dict)
    #: tasks that never completed (fault injection only; empty otherwise)
    failures: tuple[TaskFailure, ...] = ()
    #: failed-but-retried attempts (transient transfer errors)
    attempts: tuple[TaskAttempt, ...] = ()

    def span(self, task: str) -> TaskSpan:
        return self.spans[task]

    @property
    def ok(self) -> bool:
        """True when every task completed (no fault losses)."""
        return not self.failures

    def failure_for(self, task: str) -> TaskFailure | None:
        """The terminal failure of ``task``, if it did not complete."""
        for failure in self.failures:
            if failure.task == task:
                return failure
        return None

    def attempts_for(self, task: str) -> tuple[TaskAttempt, ...]:
        """The failed-but-retried attempts of ``task``, in attempt order."""
        return tuple(
            sorted(
                (a for a in self.attempts if a.task == task),
                key=lambda a: a.attempt,
            )
        )

    def busy_ms(self) -> dict[str, float]:
        """Total busy time per resource name."""
        busy: dict[str, float] = {}
        for span in self.spans.values():
            busy[span.resource.name] = busy.get(span.resource.name, 0.0) + span.duration_ms
        return busy

    def utilization(self) -> dict[str, float]:
        """Busy fraction of the makespan per resource name."""
        if self.total_ms <= 0:
            return {name: 0.0 for name in self.busy_ms()}
        return {name: b / self.total_ms for name, b in self.busy_ms().items()}

    def critical_path(self) -> list[str]:
        """Task names on the chain that sets the makespan, in time order.

        Follows each task's *binding* predecessor — the dependency or
        resource-queue neighbour whose completion gated its start — from
        the last-finishing task back to a root.
        """
        if not self.spans:
            return []
        last = max(self.spans.values(), key=lambda s: (s.end_ms, s.task)).task
        path = [last]
        while True:
            prev = self.binding.get(path[-1])
            if prev is None:
                break
            path.append(prev)
        path.reverse()
        return path

    def stage_spans(self) -> dict[str, tuple[float, float]]:
        """Per-stage (start, end) envelopes, for phase-level reporting."""
        out: dict[str, tuple[float, float]] = {}
        for span in self.spans.values():
            if not span.stage:
                continue
            lo, hi = out.get(span.stage, (span.start_ms, span.end_ms))
            out[span.stage] = (min(lo, span.start_ms), max(hi, span.end_ms))
        return out

    def render(self, width: int = 60) -> str:
        """ASCII Gantt chart, one row per resource."""
        if not self.spans:
            return "(empty timeline)"
        end = self.total_ms or 1.0
        by_resource: dict[str, list[TaskSpan]] = {}
        for span in sorted(self.spans.values(), key=lambda s: (s.start_ms, s.task)):
            by_resource.setdefault(span.resource.name, []).append(span)
        label_w = max(len(name) for name in by_resource)
        lines = [f"timeline makespan {self.total_ms:.3f} ms"]
        for name in sorted(by_resource):
            row = [" "] * width
            for i, span in enumerate(by_resource[name]):
                lo = round(span.start_ms / end * width)
                hi = max(lo + 1, round(span.end_ms / end * width))
                mark = "#~=+*"[i % 5]
                for c in range(lo, min(hi, width)):
                    row[c] = mark
            lines.append(f"{name:>{label_w}} |{''.join(row)}")
        lines.append(" " * label_w + " +" + "-" * width)
        return "\n".join(lines)


def simulate(
    tasks: list[Task] | tuple[Task, ...],
    stages: tuple[Stage, ...] = (),
    faults: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
    tracer: "Tracer | None" = None,
) -> Timeline:
    """Schedule ``tasks`` over their resources; deterministic event loop.

    With a :class:`~repro.engine.faults.FaultPlan`, the loop additionally
    kills tasks on dead resources, stretches straggler durations, and
    retries transient transfer errors under ``retry`` (defaults to
    ``RetryPolicy()``); the returned timeline then carries ``failures``
    and ``attempts`` alongside the completed spans.

    With a :class:`~repro.observe.tracer.Tracer`, the finished timeline is
    transcribed onto it (one span per task, retries, fault instants) —
    after the event loop, so the scheduling path itself never pays for
    tracing; with ``tracer=None`` (the default) no tracing object of any
    kind is touched.
    """
    task_list = tuple(tasks)
    by_name: dict[str, Task] = {}
    for task in task_list:
        if task.name in by_name:
            raise ValueError(f"duplicate task name {task.name!r}")
        by_name[task.name] = task
    order = {task.name: i for i, task in enumerate(task_list)}
    for task in task_list:
        for dep in task.deps:
            if dep not in by_name:
                raise ValueError(f"task {task.name!r} depends on unknown {dep!r}")

    deaths: dict[str, float] = faults.death_times() if faults is not None else {}
    slowdowns: dict[str, float] = faults.slowdowns() if faults is not None else {}
    #: per-resource consumable queues of transfer-error events (time order)
    pending_errors: dict[str, list[TransferError]] = (
        faults.transfer_errors() if faults is not None else {}
    )
    policy = retry if retry is not None else RetryPolicy()

    remaining = {task.name: len(set(task.deps)) for task in task_list}
    dependants: dict[str, list[str]] = {task.name: [] for task in task_list}
    for task in task_list:
        for dep in dict.fromkeys(task.deps):
            dependants[dep].append(task.name)

    #: (ready_time, submission index, name) — the dispatch priority
    ready: list[tuple[float, int, str]] = [
        (by_name[name].not_before_ms, order[name], name)
        for name, n in remaining.items()
        if n == 0
    ]
    heapq.heapify(ready)

    free: dict[str, float] = {}
    queue_tail: dict[str, str] = {}  # resource name -> last task scheduled on it
    ends: dict[str, float] = {}
    spans: dict[str, TaskSpan] = {}
    binding: dict[str, str | None] = {}
    failures: list[TaskFailure] = []
    failed: set[str] = set()
    attempts: list[TaskAttempt] = []
    attempt_no: dict[str, int] = {}
    done = 0

    def fail_task(name: str, at: float, reason: str, start: float | None) -> None:
        """Record a terminal failure and cascade it to all dependants."""
        stack: list[tuple[str, float, str, float | None]] = [(name, at, reason, start)]
        while stack:
            task_name, at_ms, why, started = stack.pop()
            if task_name in failed or task_name in spans:
                continue
            failed.add(task_name)
            failures.append(
                TaskFailure(
                    task_name,
                    by_name[task_name].resource,
                    at_ms,
                    why,
                    started,
                    attempt_no.get(task_name, 1),
                )
            )
            for child in dependants[task_name]:
                stack.append((child, at_ms, "dep-failed", None))

    while ready:
        ready_time, _, name = heapq.heappop(ready)
        if name in failed:
            continue
        task = by_name[name]
        res = task.resource.name
        res_free = free.get(res, 0.0)
        start = max(ready_time, res_free)
        duration = task.duration_ms * slowdowns.get(res, 1.0)

        # fail-stop hazards: the executing resource plus every co-required one
        involved = (res, *task.requires_alive)
        dead_already = [
            (deaths[r], r) for r in involved if r in deaths and deaths[r] <= start + TIME_EPS
        ]
        if dead_already:
            at_ms, _victim = min(dead_already)
            fail_task(name, at_ms, "resource-dead", None)
            continue
        kill_at = min((deaths[r] for r in involved if r in deaths), default=float("inf"))
        end = start + duration

        # earliest transfer-error event landing inside this attempt
        hit: TransferError | None = None
        queue = pending_errors.get(res)
        if queue:
            for event in queue:
                if event.at_ms >= end - TIME_EPS:
                    break
                if event.at_ms >= start - TIME_EPS:
                    hit = event
                    break
        if hit is not None and hit.at_ms <= kill_at:
            queue.remove(hit)  # type: ignore[union-attr]
            k = attempt_no.get(name, 1)
            free[res] = hit.at_ms
            queue_tail[res] = name
            if hit.transient and k <= policy.max_retries:
                retry_at = hit.at_ms + policy.delay_ms(k)
                attempts.append(TaskAttempt(name, task.resource, start, hit.at_ms, k, retry_at))
                attempt_no[name] = k + 1
                heapq.heappush(ready, (retry_at, order[name], name))
            else:
                fail_task(name, hit.at_ms, "transfer-error", start)
            continue

        if kill_at < end - TIME_EPS:  # the resource dies mid-task
            free[res] = kill_at
            queue_tail[res] = name
            fail_task(name, kill_at, "killed", start)
            continue

        # what gated the start: the resource queue, or the latest dependency
        gate: str | None = None
        if task.deps:
            latest = max(task.deps, key=lambda d: (ends[d], -order[d]))
            if ends[latest] >= res_free - TIME_EPS:
                gate = latest
        if gate is None and res in queue_tail and res_free > ready_time - TIME_EPS:
            gate = queue_tail[res]
        binding[name] = gate

        free[res] = end
        queue_tail[res] = name
        ends[name] = end
        spans[name] = TaskSpan(name, task.resource, start, end, task.stage)
        done += 1

        for child in dependants[name]:
            remaining[child] -= 1
            if remaining[child] == 0 and child not in failed:
                child_ready = max(
                    max((ends[d] for d in by_name[child].deps), default=0.0),
                    by_name[child].not_before_ms,
                )
                heapq.heappush(ready, (child_ready, order[child], child))

    if done + len(failed) != len(task_list):
        stuck = sorted(n for n in remaining if n not in spans and n not in failed)
        raise ValueError(f"dependency cycle among tasks: {', '.join(stuck)}")

    total = max(
        (
            *(s.end_ms for s in spans.values()),
            *(f.at_ms for f in failures),
            *(a.end_ms for a in attempts),
        ),
        default=0.0,
    )
    timeline = Timeline(
        task_list, spans, total, stages, binding, tuple(failures), tuple(attempts)
    )
    if tracer is not None and tracer.enabled:
        from repro.observe.record import record_timeline

        record_timeline(tracer, timeline)
    return timeline


class TimelineBuilder:
    """Incremental task-graph construction with barrier-stage support.

    ``add`` registers one task; ``barrier_stage`` opens a named stage whose
    tasks all depend on *every* task of the previous barrier stage — the
    phase-serial structure of the legacy timing model.  ``build`` runs the
    simulator.
    """

    def __init__(self) -> None:
        self._tasks: list[Task] = []
        self._stages: list[Stage] = []
        self._stage_tasks: list[str] = []
        self._prev_stage_tasks: tuple[str, ...] = ()
        self._stage_name: str | None = None

    def add(
        self,
        name: str,
        resource: Resource,
        duration_ms: float,
        deps: tuple[str, ...] = (),
        stage: str | None = None,
        not_before_ms: float = 0.0,
        requires_alive: tuple[str, ...] = (),
    ) -> str:
        """Register a task; inside a barrier stage, barrier deps are added."""
        label = stage if stage is not None else (self._stage_name or "")
        all_deps = deps
        if self._stage_name is not None and stage is None:
            all_deps = tuple(dict.fromkeys(deps + self._prev_stage_tasks))
        self._tasks.append(
            Task(name, resource, duration_ms, all_deps, label, not_before_ms, requires_alive)
        )
        if self._stage_name is not None and stage is None:
            self._stage_tasks.append(name)
        return name

    def barrier_stage(self, name: str) -> None:
        """Close the current barrier stage and open a new one."""
        self._close_stage()
        self._stage_name = name

    def _close_stage(self) -> None:
        if self._stage_name is not None:
            self._stages.append(Stage(self._stage_name, tuple(self._stage_tasks)))
            if self._stage_tasks:
                self._prev_stage_tasks = tuple(self._stage_tasks)
        self._stage_tasks = []

    @property
    def tasks(self) -> list[Task]:
        """The tasks registered so far (submission order), a copy."""
        return list(self._tasks)

    def build(
        self,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        tracer: "Tracer | None" = None,
    ) -> Timeline:
        self._close_stage()
        self._stage_name = None
        # pre-flight model check (repro.analyze): reject cycles, unknown
        # deps, and in-order-stream deadlocks before any partial scheduling
        from repro.analyze.modelcheck import check_plan

        check_plan(self._tasks, label="<timeline-builder plan>")
        return simulate(self._tasks, tuple(self._stages), faults, retry, tracer)
