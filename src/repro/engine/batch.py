"""Batched MSM serving: independent requests interleaved on one cluster.

The ROADMAP's traffic-serving scenario: many proof requests arrive, each
needing MSMs, and the cluster should stay busy — GPU groups run different
requests' GPU phases concurrently while the host CPU pipelines their
bucket-reduces (§3.2.3 generalised from one proof's MSM sequence to an
arbitrary request stream).  :class:`BatchMsmScheduler` estimates each
request with the DistMSM model, emits its GPU and CPU stages as tasks, and
lets the event-driven timeline resolve the contention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.engine.resources import GPU_COMPUTE, HOST_CPU, Resource
from repro.engine.timeline import Task, Timeline, simulate

if TYPE_CHECKING:  # imported lazily at runtime to avoid a cycle with core
    from repro.curves.params import CurveParams
    from repro.gpu.cluster import MultiGpuSystem


@dataclass(frozen=True)
class MsmRequest:
    """One independent MSM to serve: a curve and a size, with a label."""

    label: str
    curve: "CurveParams"
    n: int


@dataclass
class BatchSchedule:
    """Outcome of scheduling a request batch over the cluster."""

    requests: list[MsmRequest]
    timeline: Timeline
    makespan_ms: float
    serial_ms: float
    #: per-request completion time (ms from batch start), request order
    completions_ms: list[float]

    @property
    def speedup(self) -> float:
        """Makespan improvement over running every stage back to back."""
        if self.makespan_ms == 0:
            return 1.0
        return self.serial_ms / self.makespan_ms

    @property
    def throughput_rps(self) -> float:
        """Requests per second at the schedule's steady rate."""
        if self.makespan_ms == 0:
            return 0.0
        return len(self.requests) / self.makespan_ms * 1e3

    @property
    def mean_latency_ms(self) -> float:
        if not self.completions_ms:
            return 0.0
        return sum(self.completions_ms) / len(self.completions_ms)


class BatchMsmScheduler:
    """Interleave multiple MSM requests over one :class:`MultiGpuSystem`.

    The cluster's GPUs are split into ``gpu_groups`` equal groups; each
    request's GPU phase runs on one group, its bucket-reduce on the shared
    host CPU.  ``gpu_groups=1`` reproduces the paper's single-proof
    pipelining (all GPUs per MSM, CPU overlapped); more groups trade
    per-request latency for batch throughput.

    ``policy`` picks the group per request: ``"round-robin"`` ignores
    request cost (the historical default), ``"least-loaded"`` assigns each
    request to the group with the least accumulated GPU work — with mixed
    request sizes, round-robin can pile the large MSMs onto one group
    while others idle, so least-loaded strictly shortens the makespan.
    """

    POLICIES = ("round-robin", "least-loaded")

    def __init__(
        self,
        system: "MultiGpuSystem",
        config: object | None = None,
        gpu_groups: int = 1,
        policy: str = "round-robin",
    ) -> None:
        if gpu_groups < 1:
            raise ValueError(f"gpu_groups must be >= 1, got {gpu_groups}")
        if gpu_groups > system.num_gpus:
            raise ValueError(
                f"{gpu_groups} groups need at least as many GPUs "
                f"(system has {system.num_gpus})"
            )
        if policy not in self.POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; expected one of {self.POLICIES}"
            )
        self.system = system
        self.config = config
        self.gpu_groups = gpu_groups
        self.policy = policy

    def _group_engines(self) -> list[object]:
        from repro.core.distmsm import DistMsm
        from repro.gpu.cluster import MultiGpuSystem

        group_size = max(1, self.system.num_gpus // self.gpu_groups)
        return [
            DistMsm(
                MultiGpuSystem(group_size, spec=self.system.spec, cpu=self.system.cpu),
                self.config,
            )
            for _ in range(self.gpu_groups)
        ]

    def emit_tasks(
        self, requests: list[MsmRequest]
    ) -> tuple[list[Task], float, list[str]]:
        """Estimate every request and emit its tasks, unsimulated.

        Returns ``(tasks, serial_ms, reduce_task_names)`` — the exact
        submission :meth:`schedule` resolves, exposed so the static
        analyzer's ``plan`` family can pre-flight-check it directly.
        """
        from repro.core.multi_msm import msm_job_from_estimate

        engines = self._group_engines()
        cpu = Resource("cpu", HOST_CPU)
        groups = [
            Resource(f"gpu-group{j}", GPU_COMPUTE, index=j)
            for j in range(self.gpu_groups)
        ]

        tasks: list[Task] = []
        serial = 0.0
        cpu_names: list[str] = []
        group_load = [0.0] * self.gpu_groups
        for i, req in enumerate(requests):
            if self.policy == "least-loaded":
                group = min(range(self.gpu_groups), key=lambda g: (group_load[g], g))
            else:
                group = i % self.gpu_groups
            job = msm_job_from_estimate(
                engines[group], req.curve, req.n, label=req.label
            )
            group_load[group] += job.gpu_ms
            gpu_name = f"{req.label}#{i}:gpu"
            cpu_name = f"{req.label}#{i}:reduce"
            tasks.append(Task(gpu_name, groups[group], job.gpu_ms, stage=req.label))
            tasks.append(
                Task(cpu_name, cpu, job.cpu_ms, deps=(gpu_name,), stage=req.label)
            )
            cpu_names.append(cpu_name)
            serial += job.gpu_ms + job.cpu_ms
        return tasks, serial, cpu_names

    def schedule(self, requests: list[MsmRequest]) -> BatchSchedule:
        """Estimate every request and resolve the shared-resource timeline."""
        from repro.analyze.modelcheck import check_plan

        tasks, serial, cpu_names = self.emit_tasks(requests)
        check_plan(tasks, label="<batch-msm plan>")
        timeline = simulate(tasks)
        completions = [timeline.span(name).end_ms for name in cpu_names]
        return BatchSchedule(
            requests=list(requests),
            timeline=timeline,
            makespan_ms=timeline.total_ms,
            serial_ms=serial,
            completions_ms=completions,
        )
