"""Deterministic fault events for the execution engine (paper §5 scale-out).

The simulated cluster historically assumed every GPU, transfer channel and
host survived every run.  This module is the chaos layer: a
:class:`FaultPlan` is a *fixed, validated schedule* of typed fault events
that :func:`repro.engine.timeline.simulate` injects into its event loop —
so a resource can die, slow down, or fail a task mid-timeline, and every
chaos run is exactly reproducible from the plan (and, one level up, from
the seed that generated it — :func:`repro.faults.chaos.random_fault_plan`).

Three event types, mirroring the failure modes that dominate real
multi-GPU ZKP deployments (ZKProphet's tail/variance observation):

* :class:`GpuFailure` — fail-stop: the GPU's compute stream dies at
  ``at_ms``; the running task is killed, queued tasks can never start, and
  in-flight transfers that *require* the GPU (its memory) die with it.
* :class:`Straggler` — the GPU survives but every task on it runs
  ``slowdown`` times longer (thermal throttling, a bad PCIe lane, a noisy
  neighbour).
* :class:`TransferError` — the node's host link corrupts whatever transfer
  is in flight at ``at_ms``; ``transient`` errors are retryable under a
  :class:`RetryPolicy` (exponential backoff), permanent ones are not.
* :class:`ByzantineWorker` — the GPU stays alive and on time but returns
  *forged* chunk results (wrong point, flipped bit, shifted bucket); the
  timeline simulator ignores it (timing is unaffected), the orchestrator
  corrupts that GPU's delivered partials deterministically and must catch
  the forgery through the :mod:`repro.msm.outsource` verification
  protocol (DESIGN.md §14).

Events address resources by the standard :func:`~repro.engine.resources.
system_resources` names (``"gpu3"``, ``"node0-link"``), which keeps the
engine generic: any task graph using those names can be chaos-tested.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def gpu_resource_name(gpu_id: int) -> str:
    """The engine resource name of one GPU's compute stream."""
    return f"gpu{gpu_id}"


def channel_resource_name(node: int) -> str:
    """The engine resource name of one node's host transfer link."""
    return f"node{node}-link"


@dataclass(frozen=True)
class GpuFailure:
    """GPU ``gpu_id`` fail-stops at ``at_ms`` (device and memory lost)."""

    at_ms: float
    gpu_id: int

    def __post_init__(self) -> None:
        if self.at_ms < 0 or not math.isfinite(self.at_ms):
            raise ValueError(f"GpuFailure.at_ms must be finite and >= 0, got {self.at_ms}")
        if self.gpu_id < 0:
            raise ValueError(f"GpuFailure.gpu_id must be >= 0, got {self.gpu_id}")

    @property
    def resource(self) -> str:
        return gpu_resource_name(self.gpu_id)


@dataclass(frozen=True)
class Straggler:
    """GPU ``gpu_id`` runs every task ``slowdown``x slower (but survives)."""

    gpu_id: int
    slowdown: float

    def __post_init__(self) -> None:
        if self.gpu_id < 0:
            raise ValueError(f"Straggler.gpu_id must be >= 0, got {self.gpu_id}")
        if self.slowdown < 1.0 or not math.isfinite(self.slowdown):
            raise ValueError(f"Straggler.slowdown must be finite and >= 1, got {self.slowdown}")

    @property
    def resource(self) -> str:
        return gpu_resource_name(self.gpu_id)


@dataclass(frozen=True)
class TransferError:
    """The transfer in flight on ``node``'s link at ``at_ms`` fails.

    A transient error is retryable (the orchestrator re-issues the copy
    after exponential backoff); a permanent one poisons the delivery, and
    recovery must re-plan the work elsewhere.  An error that fires while
    the link is idle hits nothing and expires silently.
    """

    node: int
    at_ms: float
    transient: bool = True

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"TransferError.node must be >= 0, got {self.node}")
        if self.at_ms < 0 or not math.isfinite(self.at_ms):
            raise ValueError(f"TransferError.at_ms must be finite and >= 0, got {self.at_ms}")

    @property
    def resource(self) -> str:
        return channel_resource_name(self.node)


#: corruption modes a Byzantine worker may apply to its chunk results
BYZANTINE_MODES = ("wrong-result", "bit-flip", "off-by-one-bucket")


@dataclass(frozen=True)
class ByzantineWorker:
    """GPU ``gpu_id`` forges its chunk results (but meets every deadline).

    ``mode`` picks the corruption applied to the delivered bucket partials
    (see :mod:`repro.faults.byzantine`); ``round`` restricts the cheating
    to one recovery round (the adaptive "cheat only on round r" attacker),
    ``None`` cheats on every chunk it is ever dispatched; ``seed`` drives
    the deterministic corruption PRG so every forgery is replayable.
    """

    gpu_id: int
    mode: str = "wrong-result"
    round: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.gpu_id < 0:
            raise ValueError(f"ByzantineWorker.gpu_id must be >= 0, got {self.gpu_id}")
        if self.mode not in BYZANTINE_MODES:
            raise ValueError(
                f"unknown byzantine mode {self.mode!r}; choose from {BYZANTINE_MODES}"
            )
        if self.round is not None and self.round < 0:
            raise ValueError(f"ByzantineWorker.round must be >= 0, got {self.round}")

    @property
    def resource(self) -> str:
        return gpu_resource_name(self.gpu_id)

    def cheats_in_round(self, rnd: int) -> bool:
        """Whether this worker forges the chunk it runs in round ``rnd``."""
        return self.round is None or self.round == rnd


FaultEvent = GpuFailure | Straggler | TransferError | ByzantineWorker


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry policy for transient transfer errors.

    After failed attempt ``k`` (1-based) the next attempt may start no
    earlier than ``fail_time + backoff_base_ms * 2**(k-1)``; at most
    ``max_retries`` retries are issued before the task fails permanently.
    """

    max_retries: int = 3
    backoff_base_ms: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_ms <= 0:
            raise ValueError(f"backoff_base_ms must be > 0, got {self.backoff_base_ms}")

    def delay_ms(self, failed_attempt: int) -> float:
        """Backoff before the retry that follows ``failed_attempt`` (1-based)."""
        if failed_attempt < 1:
            raise ValueError(f"attempt numbers are 1-based, got {failed_attempt}")
        return self.backoff_base_ms * (2.0 ** (failed_attempt - 1))


@dataclass(frozen=True)
class FaultPlan:
    """A validated, deterministic schedule of fault events.

    At most one :class:`GpuFailure`, one :class:`Straggler` and one
    :class:`ByzantineWorker` per GPU; any number of
    :class:`TransferError` events per link.  The plan is the
    single source of truth for a chaos run: the engine consumes it, the
    orchestrator re-plans around it, and the independent checker
    (:mod:`repro.verify.faultcheck`) audits the resulting timeline
    against it.
    """

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        dead: set[int] = set()
        slowed: set[int] = set()
        byzantine: set[int] = set()
        for event in self.events:
            if isinstance(event, GpuFailure):
                if event.gpu_id in dead:
                    raise ValueError(f"duplicate GpuFailure for gpu {event.gpu_id}")
                dead.add(event.gpu_id)
            elif isinstance(event, Straggler):
                if event.gpu_id in slowed:
                    raise ValueError(f"duplicate Straggler for gpu {event.gpu_id}")
                slowed.add(event.gpu_id)
            elif isinstance(event, ByzantineWorker):
                if event.gpu_id in byzantine:
                    raise ValueError(
                        f"duplicate ByzantineWorker for gpu {event.gpu_id}"
                    )
                byzantine.add(event.gpu_id)
            elif not isinstance(event, TransferError):
                raise TypeError(f"unknown fault event {event!r}")

    @classmethod
    def of(cls, *events: FaultEvent) -> "FaultPlan":
        return cls(tuple(events))

    @property
    def empty(self) -> bool:
        return not self.events

    def death_times(self) -> dict[str, float]:
        """Resource name -> fail-stop time."""
        return {e.resource: e.at_ms for e in self.events if isinstance(e, GpuFailure)}

    def gpu_death_times(self) -> dict[int, float]:
        """GPU id -> fail-stop time."""
        return {e.gpu_id: e.at_ms for e in self.events if isinstance(e, GpuFailure)}

    def slowdowns(self) -> dict[str, float]:
        """Resource name -> straggler slowdown factor."""
        return {e.resource: e.slowdown for e in self.events if isinstance(e, Straggler)}

    def transfer_errors(self) -> dict[str, list[TransferError]]:
        """Resource name -> its transfer-error events, in time order."""
        out: dict[str, list[TransferError]] = {}
        for event in sorted(
            (e for e in self.events if isinstance(e, TransferError)),
            key=lambda e: (e.at_ms, e.node),
        ):
            out.setdefault(event.resource, []).append(event)
        return out

    def byzantine_workers(self) -> dict[int, ByzantineWorker]:
        """GPU id -> its Byzantine event (the timing layers ignore these)."""
        return {
            e.gpu_id: e for e in self.events if isinstance(e, ByzantineWorker)
        }

    def gpu_failures(self) -> tuple[GpuFailure, ...]:
        """Every GPU failure, in time order."""
        return tuple(
            sorted(
                (e for e in self.events if isinstance(e, GpuFailure)),
                key=lambda e: (e.at_ms, e.gpu_id),
            )
        )
