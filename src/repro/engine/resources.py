"""Typed execution resources for the event-driven timeline (paper §3.2).

The paper's performance story is about distinct hardware resources racing:
each GPU's compute stream, each DGX node's host link (PCIe/NVLink), and the
host CPU that runs bucket-reduce.  A :class:`Resource` names one such unit;
:func:`system_resources` builds the standard set for an ``N``-GPU cluster
(one compute stream per GPU, one transfer channel per 8-GPU node, one host
CPU).  Resources behave like in-order queues — a resource executes one task
at a time, FIFO in readiness order — mirroring CUDA-stream semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

#: resource kinds understood by the timeline renderers / checkers
GPU_COMPUTE = "gpu-compute"
TRANSFER = "transfer"
HOST_CPU = "cpu"

#: GPUs per DGX node (fixes the transfer-channel grouping)
GPUS_PER_NODE = 8


@dataclass(frozen=True)
class Resource:
    """One serially-executing hardware unit on the timeline.

    Attributes
    ----------
    name:
        Unique identifier, e.g. ``"gpu0"``, ``"node0-link"``, ``"cpu"``.
    kind:
        One of :data:`GPU_COMPUTE`, :data:`TRANSFER`, :data:`HOST_CPU` (free
        strings are allowed for ad-hoc models, e.g. the two-machine flow
        shop's ``"gpu"`` / ``"cpu"``).
    index:
        Ordinal within its kind (GPU id, node id); purely informational.
    """

    name: str
    kind: str
    index: int = 0

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class SystemResources:
    """The resource set of one multi-GPU system."""

    gpus: tuple[Resource, ...]
    channels: tuple[Resource, ...]
    cpu: Resource
    gpus_per_node: int = GPUS_PER_NODE

    def gpu(self, i: int) -> Resource:
        return self.gpus[i]

    def channel_for_gpu(self, i: int) -> Resource:
        """The transfer channel (per-node host link) GPU ``i`` uses."""
        return self.channels[i // self.gpus_per_node]

    def all(self) -> tuple[Resource, ...]:
        return self.gpus + self.channels + (self.cpu,)


def system_resources(num_gpus: int, gpus_per_node: int = GPUS_PER_NODE) -> SystemResources:
    """Build the standard resource set for an ``num_gpus``-GPU cluster."""
    if num_gpus <= 0:
        raise ValueError(f"need at least one GPU, got {num_gpus}")
    if gpus_per_node <= 0:
        raise ValueError(f"need at least one GPU per node, got {gpus_per_node}")
    nodes = -(-num_gpus // gpus_per_node)
    return SystemResources(
        gpus=tuple(
            Resource(f"gpu{i}", GPU_COMPUTE, index=i) for i in range(num_gpus)
        ),
        channels=tuple(
            Resource(f"node{j}-link", TRANSFER, index=j) for j in range(nodes)
        ),
        cpu=Resource("cpu", HOST_CPU),
        gpus_per_node=gpus_per_node,
    )
