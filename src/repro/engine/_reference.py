"""The pre-optimisation simulate loop, preserved verbatim.

:func:`reference_simulate` is the event loop :mod:`repro.engine.timeline`
shipped before the int-indexed rewrite: string-keyed dictionaries for every
per-task and per-resource lookup, and dataclass attribute access on the hot
path.  It is kept (not re-exported) for two consumers only:

* the differential test tier (``tests/engine/test_simulate_differential``)
  pins the optimised :func:`repro.engine.timeline.simulate` byte-for-byte
  against this loop on random task DAGs, fault plans included;
* ``benchmarks/bench_vectorized.py`` measures the speedup against it.

Do not "fix" or optimise this module — its value is being frozen.
"""

from __future__ import annotations

import heapq

from repro.engine.faults import FaultPlan, RetryPolicy, TransferError
from repro.engine.timeline import (
    TIME_EPS,
    Stage,
    Task,
    TaskAttempt,
    TaskFailure,
    TaskSpan,
    Timeline,
)


def reference_simulate(
    tasks: list[Task] | tuple[Task, ...],
    stages: tuple[Stage, ...] = (),
    faults: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
) -> Timeline:
    """Schedule ``tasks`` with the original dict-keyed event loop."""
    task_list = tuple(tasks)
    by_name: dict[str, Task] = {}
    for task in task_list:
        if task.name in by_name:
            raise ValueError(f"duplicate task name {task.name!r}")
        by_name[task.name] = task
    order = {task.name: i for i, task in enumerate(task_list)}
    for task in task_list:
        for dep in task.deps:
            if dep not in by_name:
                raise ValueError(f"task {task.name!r} depends on unknown {dep!r}")

    deaths: dict[str, float] = faults.death_times() if faults is not None else {}
    slowdowns: dict[str, float] = faults.slowdowns() if faults is not None else {}
    pending_errors: dict[str, list[TransferError]] = (
        faults.transfer_errors() if faults is not None else {}
    )
    policy = retry if retry is not None else RetryPolicy()

    remaining = {task.name: len(set(task.deps)) for task in task_list}
    dependants: dict[str, list[str]] = {task.name: [] for task in task_list}
    for task in task_list:
        for dep in dict.fromkeys(task.deps):
            dependants[dep].append(task.name)

    ready: list[tuple[float, int, str]] = [
        (by_name[name].not_before_ms, order[name], name)
        for name, n in remaining.items()
        if n == 0
    ]
    heapq.heapify(ready)

    free: dict[str, float] = {}
    queue_tail: dict[str, str] = {}
    ends: dict[str, float] = {}
    spans: dict[str, TaskSpan] = {}
    binding: dict[str, str | None] = {}
    failures: list[TaskFailure] = []
    failed: set[str] = set()
    attempts: list[TaskAttempt] = []
    attempt_no: dict[str, int] = {}
    done = 0

    def fail_task(name: str, at: float, reason: str, start: float | None) -> None:
        stack: list[tuple[str, float, str, float | None]] = [(name, at, reason, start)]
        while stack:
            task_name, at_ms, why, started = stack.pop()
            if task_name in failed or task_name in spans:
                continue
            failed.add(task_name)
            failures.append(
                TaskFailure(
                    task_name,
                    by_name[task_name].resource,
                    at_ms,
                    why,
                    started,
                    attempt_no.get(task_name, 1),
                )
            )
            for child in dependants[task_name]:
                stack.append((child, at_ms, "dep-failed", None))

    while ready:
        ready_time, _, name = heapq.heappop(ready)
        if name in failed:
            continue
        task = by_name[name]
        res = task.resource.name
        res_free = free.get(res, 0.0)
        start = max(ready_time, res_free)
        duration = task.duration_ms * slowdowns.get(res, 1.0)

        involved = (res, *task.requires_alive)
        dead_already = [
            (deaths[r], r) for r in involved if r in deaths and deaths[r] <= start + TIME_EPS
        ]
        if dead_already:
            at_ms, _victim = min(dead_already)
            fail_task(name, at_ms, "resource-dead", None)
            continue
        kill_at = min((deaths[r] for r in involved if r in deaths), default=float("inf"))
        end = start + duration

        hit: TransferError | None = None
        queue = pending_errors.get(res)
        if queue:
            for event in queue:
                if event.at_ms >= end - TIME_EPS:
                    break
                if event.at_ms >= start - TIME_EPS:
                    hit = event
                    break
        if hit is not None and hit.at_ms <= kill_at:
            queue.remove(hit)  # type: ignore[union-attr]
            k = attempt_no.get(name, 1)
            free[res] = hit.at_ms
            queue_tail[res] = name
            if hit.transient and k <= policy.max_retries:
                retry_at = hit.at_ms + policy.delay_ms(k)
                attempts.append(TaskAttempt(name, task.resource, start, hit.at_ms, k, retry_at))
                attempt_no[name] = k + 1
                heapq.heappush(ready, (retry_at, order[name], name))
            else:
                fail_task(name, hit.at_ms, "transfer-error", start)
            continue

        if kill_at < end - TIME_EPS:
            free[res] = kill_at
            queue_tail[res] = name
            fail_task(name, kill_at, "killed", start)
            continue

        gate: str | None = None
        if task.deps:
            latest = max(task.deps, key=lambda d: (ends[d], -order[d]))
            if ends[latest] >= res_free - TIME_EPS:
                gate = latest
        if gate is None and res in queue_tail and res_free > ready_time - TIME_EPS:
            gate = queue_tail[res]
        binding[name] = gate

        free[res] = end
        queue_tail[res] = name
        ends[name] = end
        spans[name] = TaskSpan(name, task.resource, start, end, task.stage)
        done += 1

        for child in dependants[name]:
            remaining[child] -= 1
            if remaining[child] == 0 and child not in failed:
                child_ready = max(
                    max((ends[d] for d in by_name[child].deps), default=0.0),
                    by_name[child].not_before_ms,
                )
                heapq.heappush(ready, (child_ready, order[child], child))

    if done + len(failed) != len(task_list):
        stuck = sorted(n for n in remaining if n not in spans and n not in failed)
        raise ValueError(f"dependency cycle among tasks: {', '.join(stuck)}")

    total = max(
        (
            *(s.end_ms for s in spans.values()),
            *(f.at_ms for f in failures),
            *(a.end_ms for a in attempts),
        ),
        default=0.0,
    )
    return Timeline(
        task_list, spans, total, stages, binding, tuple(failures), tuple(attempts)
    )
