"""repro.engine — the unified event-driven execution timeline.

One scheduler for everything the reproduction times: DistMSM's own phases
(:mod:`repro.core.distmsm` emits its per-GPU scatter / bucket-sum / reduce /
transfer work as tasks), the cross-MSM flow shop of §3.2.3
(:func:`repro.core.multi_msm.schedule_pipeline` is two resources on this
timeline), the end-to-end proof model (:mod:`repro.zksnark.pipeline`), and
the batched-traffic primitive (:class:`~repro.engine.batch.BatchMsmScheduler`
interleaves independent MSM requests over one system).

Core pieces:

* :class:`~repro.engine.resources.Resource` / :func:`system_resources` —
  typed units: per-GPU compute streams, per-node transfer channels, host CPU.
* :class:`~repro.engine.timeline.Task` / :class:`Stage` /
  :class:`Timeline` and :func:`simulate` — the deterministic event loop.
* :class:`~repro.engine.timeline.TimelineBuilder` — incremental graph
  construction with barrier stages.
* :class:`~repro.engine.batch.BatchMsmScheduler` — multiple MSMs, one
  cluster, pipelined bucket-reduces.
* :class:`~repro.engine.faults.FaultPlan` and its typed events
  (:class:`GpuFailure` / :class:`Straggler` / :class:`TransferError`) —
  deterministic chaos schedules consumed by :func:`simulate`.
"""

from repro.engine.faults import (
    FaultEvent,
    FaultPlan,
    GpuFailure,
    RetryPolicy,
    Straggler,
    TransferError,
    channel_resource_name,
    gpu_resource_name,
)
from repro.engine.resources import (
    GPU_COMPUTE,
    HOST_CPU,
    TRANSFER,
    Resource,
    SystemResources,
    system_resources,
)
from repro.engine.timeline import (
    Stage,
    Task,
    TaskAttempt,
    TaskFailure,
    TaskSpan,
    Timeline,
    TimelineBuilder,
    simulate,
)
from repro.engine.batch import BatchMsmScheduler, BatchSchedule, MsmRequest

__all__ = [
    "GPU_COMPUTE",
    "HOST_CPU",
    "TRANSFER",
    "Resource",
    "SystemResources",
    "system_resources",
    "Stage",
    "Task",
    "TaskAttempt",
    "TaskFailure",
    "TaskSpan",
    "Timeline",
    "TimelineBuilder",
    "simulate",
    "BatchMsmScheduler",
    "BatchSchedule",
    "MsmRequest",
    "FaultEvent",
    "FaultPlan",
    "GpuFailure",
    "RetryPolicy",
    "Straggler",
    "TransferError",
    "channel_resource_name",
    "gpu_resource_name",
]
