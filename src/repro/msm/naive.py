"""Reference MSM: the definition, computed directly."""

from __future__ import annotations

from repro.curves.params import CurveParams
from repro.curves.point import (
    AffinePoint,
    XyzzPoint,
    pdbl,
    to_affine,
    xyzz_add,
)


def naive_msm(scalars: list[int], points: list[AffinePoint], curve: CurveParams) -> AffinePoint:
    """Compute ``sum(k_i * P_i)`` by double-and-add, sharing the doubling chain.

    Processes scalars bit-serially from the most significant bit: doubling the
    accumulator once per bit and adding every point whose bit is set.  This is
    O(λ·(1 + N/2)) group operations — slow, but independently correct, which
    is exactly what a reference needs.
    """
    if len(scalars) != len(points):
        raise ValueError(f"length mismatch: {len(scalars)} scalars, {len(points)} points")
    if any(k < 0 for k in scalars):
        raise ValueError("scalars must be non-negative")
    if not scalars:
        return AffinePoint.identity()

    max_bits = max((k.bit_length() for k in scalars), default=0)
    acc = XyzzPoint.identity()
    bases = [XyzzPoint.from_affine(pt) for pt in points]
    for bit in range(max_bits - 1, -1, -1):
        acc = pdbl(acc, curve)
        for k, base in zip(scalars, bases):
            if (k >> bit) & 1:
                acc = xyzz_add(acc, base, curve)
    return to_affine(acc, curve)
