"""Multi-scalar multiplication algorithms (functional references).

* :mod:`repro.msm.naive` — the definitionally correct ``sum(k_i * P_i)``.
* :mod:`repro.msm.pippenger` — serial Pippenger with unsigned or signed
  windows; the algorithmic baseline every engine is validated against.
* :mod:`repro.msm.precompute` — window-collapse precomputation tables
  (§2.3.1) used by competition-grade baselines.
* :mod:`repro.msm.outsource` — the 2G2T verifiable-outsourcing protocol:
  constant-size commitment checks over delivered chunk results, used by
  the multi-GPU engine's Byzantine-tolerant path (DESIGN.md §14).

The multi-GPU engine lives in :mod:`repro.core`; baselines in
:mod:`repro.baselines`.  Both must agree with :func:`repro.msm.naive.naive_msm`
on every input — tests enforce this.
"""

from repro.msm.batch_affine import msm_batch_affine
from repro.msm.naive import naive_msm
from repro.msm.outsource import (
    Challenge,
    ChunkClaim,
    batch_verify,
    chunk_value,
    make_response,
    sample_challenge,
    soundness_bits,
    verify_chunk,
)
from repro.msm.pippenger import PippengerStats, pippenger_msm

__all__ = [
    "naive_msm",
    "pippenger_msm",
    "PippengerStats",
    "msm_batch_affine",
    "Challenge",
    "ChunkClaim",
    "batch_verify",
    "chunk_value",
    "make_response",
    "sample_challenge",
    "soundness_bits",
    "verify_chunk",
]
