"""Pippenger over any abelian group, given its operations.

The bucket method only needs addition, negation and an identity — nothing
curve-specific.  This generic form serves groups our specialised engines do
not cover, most importantly **G2** (points over Fp2), whose multi-scalar
multiplication appears in every Groth16 proof's B-query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.curves.scalar import num_windows, signed_windows


@dataclass(frozen=True)
class GroupOps:
    """The group interface the generic Pippenger needs."""

    add: Callable  # add(a, b) -> element
    neg: Callable  # neg(a) -> element
    identity: object

    def double(self, a):
        return self.add(a, a)


def pippenger_generic(
    scalars: list[int],
    points: list,
    ops: GroupOps,
    scalar_bits: int,
    window_size: int = 8,
) -> object:
    """Signed-window Pippenger over an arbitrary group.

    Roughly ``windows * (N + 2^(s-1))`` group additions; for 253-bit G2
    scalars at s=8 that's ~40x cheaper than per-term double-and-add.
    """
    if len(scalars) != len(points):
        raise ValueError(
            f"length mismatch: {len(scalars)} scalars, {len(points)} points"
        )
    if not scalars:
        return ops.identity
    if window_size < 2:
        raise ValueError("window size must be >= 2 for signed digits")
    s = window_size
    n_win = num_windows(scalar_bits, s)
    digit_rows = [signed_windows(k, s, n_win) for k in scalars]
    total_windows = n_win + 1
    num_buckets = (1 << (s - 1)) + 1

    window_results = []
    for w in range(total_windows):
        buckets = [ops.identity] * num_buckets
        for digits, pt in zip(digit_rows, points):
            d = digits[w]
            if d > 0:
                buckets[d] = ops.add(buckets[d], pt)
            elif d < 0:
                buckets[-d] = ops.add(buckets[-d], ops.neg(pt))
        running = ops.identity
        total = ops.identity
        for b in range(num_buckets - 1, 0, -1):
            running = ops.add(running, buckets[b])
            total = ops.add(total, running)
        window_results.append(total)

    acc = ops.identity
    for result in reversed(window_results):
        for _ in range(s):
            acc = ops.double(acc)
        acc = ops.add(acc, result)
    return acc


def g2_group_ops() -> GroupOps:
    """The BN254 G2 group (affine over Fp2) as a :class:`GroupOps`."""
    from repro.zksnark import pairing as pr

    return GroupOps(add=pr.g2_add, neg=pr.point_neg, identity=None)


def g2_msm(scalars: list[int], points: list, window_size: int = 8):
    """Multi-scalar multiplication in BN254 G2 (Groth16's B-query)."""
    from repro.curves.params import curve_by_name

    bits = curve_by_name("BN254").scalar_bits
    return pippenger_generic(scalars, points, g2_group_ops(), bits, window_size)
