"""Batched-affine bucket accumulation — the ZPrize winners' trick (§6).

Affine point addition needs a modular inversion, which is normally fatal on
a GPU; but when *many independent* additions are performed at once, all the
inversions collapse into a single one via Montgomery's batch-inversion
trick (3 multiplications per element plus one shared inversion).  An
amortised affine addition then costs ~6 multiplications — cheaper than
XYZZ's 10-14 — which is why ZPrize-grade implementations (Yrrid, sppark)
accumulate buckets in rounds of pairwise batched affine additions.

This module implements the scheme for real (with all edge cases: identity
operands, doubling, inverse pairs) and exposes an MSM built on it, giving
the repository an executable reference for the baselines' arithmetic style.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.curves.params import CurveParams
from repro.curves.point import AffinePoint
from repro.curves.scalar import num_windows, unsigned_windows
from repro.msm.pippenger import PippengerStats, bucket_reduce, window_reduce
from repro.curves.point import XyzzPoint, to_affine


@dataclass
class BatchAffineStats:
    """Operation tallies for the batched-affine path."""

    additions: int = 0
    doublings: int = 0
    inversions: int = 0
    rounds: int = 0
    field_muls: int = 0


def batch_inverse(values: list[int], p: int, stats: BatchAffineStats | None = None) -> list[int]:
    """Invert many field elements with one modular inversion.

    Zeros are passed through as zeros (callers handle those cases
    separately).
    """
    nonzero = [(i, v % p) for i, v in enumerate(values) if v % p]
    out = [0] * len(values)
    if not nonzero:
        return out
    prefix = [1]
    for _, v in nonzero:
        prefix.append(prefix[-1] * v % p)
    inv = pow(prefix[-1], -1, p)
    if stats is not None:
        stats.inversions += 1
        stats.field_muls += 3 * len(nonzero)
    for idx in range(len(nonzero) - 1, -1, -1):
        i, v = nonzero[idx]
        out[i] = inv * prefix[idx] % p
        inv = inv * v % p
    return out


def batch_affine_add_pairs(
    pairs: list,
    curve: CurveParams,
    stats: BatchAffineStats | None = None,
) -> list[AffinePoint]:
    """Add many independent pairs of affine points with one inversion.

    Each element of ``pairs`` is ``(P, Q)``; the result list holds
    ``P + Q``.  Identity operands, doubling (P == Q) and inverse pairs are
    handled without joining the batched inversion.
    """
    p = curve.p
    denominators = []
    kinds = []  # "add" | "double" | "trivial"
    trivial_results: list = [None] * len(pairs)

    for idx, (lhs, rhs) in enumerate(pairs):
        if lhs.infinity:
            kinds.append("trivial")
            trivial_results[idx] = rhs
            denominators.append(0)
        elif rhs.infinity:
            kinds.append("trivial")
            trivial_results[idx] = lhs
            denominators.append(0)
        elif lhs.x == rhs.x:
            if (lhs.y + rhs.y) % p == 0:
                kinds.append("trivial")
                trivial_results[idx] = AffinePoint.identity()
                denominators.append(0)
            else:
                kinds.append("double")
                denominators.append(2 * lhs.y % p)
        else:
            kinds.append("add")
            denominators.append((rhs.x - lhs.x) % p)

    inverses = batch_inverse(denominators, p, stats)

    out = []
    for idx, (lhs, rhs) in enumerate(pairs):
        kind = kinds[idx]
        if kind == "trivial":
            out.append(trivial_results[idx])
            continue
        if kind == "double":
            slope = (3 * lhs.x * lhs.x + curve.a) * inverses[idx] % p
            if stats is not None:
                stats.doublings += 1
        else:
            slope = (rhs.y - lhs.y) * inverses[idx] % p
            if stats is not None:
                stats.additions += 1
        x3 = (slope * slope - lhs.x - rhs.x) % p
        y3 = (slope * (lhs.x - x3) - lhs.y) % p
        if stats is not None:
            stats.field_muls += 3  # slope product + slope^2 + final product
        out.append(AffinePoint(x3, y3))
    return out


def bucket_sums_batch_affine(
    buckets: list,
    curve: CurveParams,
    stats: BatchAffineStats | None = None,
) -> list[AffinePoint]:
    """Sum every bucket's members via rounds of batched pairwise additions.

    Per round, each bucket pairs up its remaining points; all pairs across
    all buckets share one inversion.  ``log2(max bucket)`` rounds total.
    """
    work = [list(members) for members in buckets]
    while any(len(m) > 1 for m in work):
        if stats is not None:
            stats.rounds += 1
        pair_refs = []
        pairs = []
        for b, members in enumerate(work):
            for i in range(0, len(members) - 1, 2):
                pair_refs.append((b, i // 2))
                pairs.append((members[i], members[i + 1]))
        results = batch_affine_add_pairs(pairs, curve, stats)
        next_work = [[] for _ in work]
        for (b, slot), result in zip(pair_refs, results):
            next_work[b].append(result)
        for b, members in enumerate(work):
            if len(members) % 2:
                next_work[b].append(members[-1])
        work = next_work
    return [m[0] if m else AffinePoint.identity() for m in work]


def msm_batch_affine(
    scalars: list[int],
    points: list[AffinePoint],
    curve: CurveParams,
    window_size: int = 8,
    stats: BatchAffineStats | None = None,
) -> AffinePoint:
    """Pippenger MSM with batched-affine bucket accumulation."""
    if len(scalars) != len(points):
        raise ValueError(
            f"length mismatch: {len(scalars)} scalars, {len(points)} points"
        )
    if not scalars:
        return AffinePoint.identity()
    if stats is None:
        stats = BatchAffineStats()
    s = window_size
    n_win = num_windows(curve.scalar_bits, s)
    num_buckets = 1 << s
    pip_stats = PippengerStats()

    window_results = []
    for w in range(n_win):
        buckets: list[list[AffinePoint]] = [[] for _ in range(num_buckets)]
        for k, pt in zip(scalars, points):
            digit = unsigned_windows(k, s, n_win)[w]
            if digit:
                buckets[digit].append(pt)
        sums = bucket_sums_batch_affine(buckets, curve, stats)
        xyzz = [XyzzPoint.from_affine(pt) for pt in sums]
        window_results.append(bucket_reduce(xyzz, curve, pip_stats))
    return to_affine(window_reduce(window_results, s, curve, pip_stats), curve)
