"""Window-collapse precomputation (paper §2.3.1).

For a fixed point vector, competition-grade implementations precompute
``2^{s} P_i, 2^{2s} P_i, ...`` so window ``j``'s contribution of ``P_i``
becomes a plain point that can be summed together with every other window's
points.  The whole MSM then collapses into a single logical window: one large
bucket-sum followed by one bucket-reduce, no window-reduce doublings.

The point vector being constant across proofs (§2.2) is what makes the table
reusable; its cost is amortised, so the evaluation treats it as offline.
"""

from __future__ import annotations

from repro.curves.params import CurveParams
from repro.curves.point import (
    AffinePoint,
    XyzzPoint,
    affine_neg,
    pdbl,
    to_affine,
    xyzz_acc,
)
from repro.curves.sampling import batch_to_affine
from repro.curves.scalar import num_windows, signed_windows, unsigned_windows
from repro.msm.pippenger import PippengerStats, bucket_reduce


def precompute_tables(
    points: list[AffinePoint],
    curve: CurveParams,
    window_size: int,
    windows: int,
) -> list[list[AffinePoint]]:
    """Build per-window shifted copies: table[j][i] = 2^(j*s) * P_i."""
    tables = [list(points)]
    current = [XyzzPoint.from_affine(pt) for pt in points]
    for _ in range(1, windows):
        shifted = []
        for pt in current:
            for _ in range(window_size):
                pt = pdbl(pt, curve)
            shifted.append(pt)
        tables.append(batch_to_affine(shifted, curve))
        current = shifted
    return tables


def msm_with_precompute(
    scalars: list[int],
    tables: list[list[AffinePoint]],
    curve: CurveParams,
    window_size: int,
    signed: bool = False,
    stats: PippengerStats | None = None,
) -> AffinePoint:
    """MSM over precomputed tables: one collapsed window (§2.3.1).

    ``tables`` must come from :func:`precompute_tables` with at least as many
    windows as the scalars need (one extra for ``signed=True``).
    """
    if stats is None:
        stats = PippengerStats()
    if not scalars:
        return AffinePoint.identity()
    lam = curve.scalar_bits
    n_win = num_windows(lam, window_size)
    needed = n_win + (1 if signed else 0)
    if len(tables) < needed:
        raise ValueError(f"need {needed} precomputed windows, got {len(tables)}")

    if signed:
        num_buckets = (1 << (window_size - 1)) + 1
        digit_rows = [signed_windows(k, window_size, n_win) for k in scalars]
        total_windows = n_win + 1
    else:
        num_buckets = 1 << window_size
        digit_rows = [unsigned_windows(k, window_size, n_win) for k in scalars]
        total_windows = n_win

    stats.windows = 1
    stats.window_size = window_size

    buckets: list[XyzzPoint] = [XyzzPoint.identity() for _ in range(num_buckets)]
    touched = [False] * num_buckets
    for point_id, digits in enumerate(digit_rows):
        for w in range(total_windows):
            digit = digits[w]
            if digit == 0:
                continue
            shifted = tables[w][point_id]
            if digit < 0:
                shifted = affine_neg(shifted, curve)
            buckets[abs(digit)] = xyzz_acc(buckets[abs(digit)], shifted, curve)
            stats.pacc += 1
            touched[abs(digit)] = True
    stats.buckets_touched = sum(touched)
    return to_affine(bucket_reduce(buckets, curve, stats), curve)
