"""Window-collapse precomputation (paper §2.3.1).

For a fixed point vector, competition-grade implementations precompute
``2^{s} P_i, 2^{2s} P_i, ...`` so window ``j``'s contribution of ``P_i``
becomes a plain point that can be summed together with every other window's
points.  The whole MSM then collapses into a single logical window: one large
bucket-sum followed by one bucket-reduce, no window-reduce doublings.

The point vector being constant across proofs (§2.2) is what makes the table
reusable; its cost is amortised, so the evaluation treats it as offline.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.curves.params import CurveParams
from repro.curves.point import (
    AffinePoint,
    XyzzPoint,
    affine_neg,
    pdbl,
    to_affine,
    xyzz_acc,
)
from repro.curves.sampling import batch_to_affine
from repro.curves.scalar import num_windows, signed_windows, unsigned_windows
from repro.msm.pippenger import PippengerStats, bucket_reduce


def precompute_tables(
    points: list[AffinePoint],
    curve: CurveParams,
    window_size: int,
    windows: int,
) -> list[list[AffinePoint]]:
    """Build per-window shifted copies: table[j][i] = 2^(j*s) * P_i."""
    tables = [list(points)]
    current = [XyzzPoint.from_affine(pt) for pt in points]
    for _ in range(1, windows):
        shifted = []
        for pt in current:
            for _ in range(window_size):
                pt = pdbl(pt, curve)
            shifted.append(pt)
        tables.append(batch_to_affine(shifted, curve))
        current = shifted
    return tables


@dataclass
class PrecomputeCacheStats:
    """Hit/miss accounting of one :class:`PrecomputeTableCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class PrecomputeTableCache:
    """LRU cache of precompute tables, keyed by (curve, s, point vector).

    The point vector being constant across proofs (§2.2) is the whole
    premise of precomputation — but :func:`precompute_tables` used to be
    recomputed on every call, paying ``windows * s`` doublings per point
    each time.  This cache memoizes the tables so repeated MSMs over the
    same fixed points (every proof of one circuit, every request of one
    serving workload) pay the doubling cost once.

    A cached entry with more windows than requested serves the request
    with its prefix (table ``j`` only depends on ``j``); a request for
    more windows than cached recomputes and replaces the entry.
    """

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = PrecomputeCacheStats()
        self._entries: OrderedDict[tuple, list[list[AffinePoint]]] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _key(points: list[AffinePoint], curve: CurveParams, window_size: int) -> tuple:
        return (curve.name, window_size, tuple(points))

    def tables_for(
        self,
        points: list[AffinePoint],
        curve: CurveParams,
        window_size: int,
        windows: int,
    ) -> list[list[AffinePoint]]:
        key = self._key(points, curve, window_size)
        cached = self._entries.get(key)
        if cached is not None and len(cached) >= windows:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return cached[:windows]
        self.stats.misses += 1
        tables = precompute_tables(points, curve, window_size, windows)
        self._entries[key] = tables
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return tables

    def clear(self) -> None:
        self._entries.clear()
        self.stats = PrecomputeCacheStats()


#: the process-wide default cache (what the DistMSM backends go through)
_DEFAULT_CACHE = PrecomputeTableCache()


def precompute_cache() -> PrecomputeTableCache:
    """The process-wide precompute table cache."""
    return _DEFAULT_CACHE


def cached_precompute_tables(
    points: list[AffinePoint],
    curve: CurveParams,
    window_size: int,
    windows: int,
) -> list[list[AffinePoint]]:
    """:func:`precompute_tables` through the process-wide LRU cache."""
    return _DEFAULT_CACHE.tables_for(points, curve, window_size, windows)


def msm_with_precompute(
    scalars: list[int],
    tables: list[list[AffinePoint]],
    curve: CurveParams,
    window_size: int,
    signed: bool = False,
    stats: PippengerStats | None = None,
) -> AffinePoint:
    """MSM over precomputed tables: one collapsed window (§2.3.1).

    ``tables`` must come from :func:`precompute_tables` with at least as many
    windows as the scalars need (one extra for ``signed=True``).
    """
    if stats is None:
        stats = PippengerStats()
    if not scalars:
        return AffinePoint.identity()
    lam = curve.scalar_bits
    n_win = num_windows(lam, window_size)
    needed = n_win + (1 if signed else 0)
    if len(tables) < needed:
        raise ValueError(f"need {needed} precomputed windows, got {len(tables)}")

    if signed:
        num_buckets = (1 << (window_size - 1)) + 1
        digit_rows = [signed_windows(k, window_size, n_win) for k in scalars]
        total_windows = n_win + 1
    else:
        num_buckets = 1 << window_size
        digit_rows = [unsigned_windows(k, window_size, n_win) for k in scalars]
        total_windows = n_win

    stats.windows = 1
    stats.window_size = window_size

    buckets: list[XyzzPoint] = [XyzzPoint.identity() for _ in range(num_buckets)]
    touched = [False] * num_buckets
    for point_id, digits in enumerate(digit_rows):
        for w in range(total_windows):
            digit = digits[w]
            if digit == 0:
                continue
            shifted = tables[w][point_id]
            if digit < 0:
                shifted = affine_neg(shifted, curve)
            buckets[abs(digit)] = xyzz_acc(buckets[abs(digit)], shifted, curve)
            stats.pacc += 1
            touched[abs(digit)] = True
    stats.buckets_touched = sum(touched)
    return to_affine(bucket_reduce(buckets, curve, stats), curve)
