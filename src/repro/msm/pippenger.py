"""Serial Pippenger's algorithm (paper §2.3) — the algorithmic reference.

The four phases match Figure 2 of the paper:

1. *bucket-scatter*: group point indices by their s-bit window digit;
2. *bucket-sum*: accumulate the points of each bucket (PACC operations);
3. *bucket-reduce*: combine buckets as ``sum(i * B_i)`` using the running
   suffix-sum trick (2·(2^s − 1) PADDs, no multiplications);
4. *window-reduce*: fold window results with s doublings between windows.

The implementation also records a :class:`PippengerStats` of group-operation
counts; the GPU cost models are validated against these counts on small
inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.curves.params import CurveParams
from repro.curves.point import (
    AffinePoint,
    XyzzPoint,
    affine_neg,
    pdbl,
    to_affine,
    xyzz_acc,
    xyzz_add,
)
from repro.curves.scalar import num_windows, signed_windows, unsigned_windows


@dataclass
class PippengerStats:
    """Group-operation tallies per Pippenger phase."""

    pacc: int = 0
    padd: int = 0
    pdbl: int = 0
    buckets_touched: int = 0
    windows: int = 0
    window_size: int = 0

    @property
    def total_ec_ops(self) -> int:
        return self.pacc + self.padd + self.pdbl


def default_window_size(n: int) -> int:
    """A serviceable single-threaded window size: ``~log2(N) - 3``.

    Matches the classic analysis minimising ``(λ/s)(N + 2^s)``.
    """
    if n <= 0:
        return 1
    return max(1, n.bit_length() - 3)


def scatter(
    digits_per_window: list[list[int]],
    num_buckets: int,
) -> list[list[list[int]]]:
    """Reference bucket scatter: per window, bucket id -> list of point ids.

    Bucket 0 (digit 0) is never materialised — multiplying by zero
    contributes nothing.
    """
    scattered = []
    for digits in digits_per_window:
        buckets: list[list[int]] = [[] for _ in range(num_buckets)]
        for point_id, digit in enumerate(digits):
            if digit != 0:
                buckets[digit].append(point_id)
        scattered.append(buckets)
    return scattered


def bucket_sum(
    buckets: list[list[int]],
    points: list[AffinePoint],
    curve: CurveParams,
    stats: PippengerStats,
) -> list[XyzzPoint]:
    """Accumulate each bucket's points with PACC operations."""
    sums = []
    for members in buckets:
        acc = XyzzPoint.identity()
        for point_id in members:
            acc = xyzz_acc(acc, points[point_id], curve)
            stats.pacc += 1
        if members:
            stats.buckets_touched += 1
        sums.append(acc)
    return sums


def bucket_reduce(bucket_sums: list[XyzzPoint], curve: CurveParams, stats: PippengerStats) -> XyzzPoint:
    """Compute ``sum(i * B_i)`` with the running suffix-sum trick.

    ``running`` accumulates ``B_max + ... + B_i`` while ``total`` accumulates
    the weighted sum; 2 PADDs per bucket, no scalar multiplications.
    Index 0 is skipped (its weight is zero).
    """
    running = XyzzPoint.identity()
    total = XyzzPoint.identity()
    for b in range(len(bucket_sums) - 1, 0, -1):
        running = xyzz_add(running, bucket_sums[b], curve)
        total = xyzz_add(total, running, curve)
        stats.padd += 2
    return total


def window_reduce(
    window_results: list[XyzzPoint],
    window_size: int,
    curve: CurveParams,
    stats: PippengerStats,
) -> XyzzPoint:
    """Fold window results most-significant first: s doublings per window."""
    acc = XyzzPoint.identity()
    for result in reversed(window_results):
        for _ in range(window_size):
            acc = pdbl(acc, curve)
            stats.pdbl += 1
        acc = xyzz_add(acc, result, curve)
        stats.padd += 1
    return acc


def pippenger_msm(
    scalars: list[int],
    points: list[AffinePoint],
    curve: CurveParams,
    window_size: int | None = None,
    signed: bool = False,
    stats: PippengerStats | None = None,
) -> AffinePoint:
    """Serial Pippenger MSM.

    Parameters
    ----------
    window_size:
        Window width ``s``; defaults to the classic ``log2(N) - 3`` heuristic.
    signed:
        Use signed-digit recoding, halving the bucket count (negative digits
        accumulate the negated point into bucket ``|d|``).
    stats:
        Optional tally of group operations, filled in place.
    """
    if len(scalars) != len(points):
        raise ValueError(f"length mismatch: {len(scalars)} scalars, {len(points)} points")
    if stats is None:
        stats = PippengerStats()
    if not scalars:
        return AffinePoint.identity()

    s = window_size if window_size is not None else default_window_size(len(scalars))
    if s < 1:
        raise ValueError(f"window size must be >= 1, got {s}")
    lam = curve.scalar_bits
    n_win = num_windows(lam, s)
    stats.windows = n_win + (1 if signed else 0)
    stats.window_size = s

    if signed:
        digit_rows = [signed_windows(k, s, n_win) for k in scalars]
        n_win += 1  # carry window
        num_buckets = (1 << (s - 1)) + 1
    else:
        digit_rows = [unsigned_windows(k, s, n_win) for k in scalars]
        num_buckets = 1 << s

    window_results = []
    for w in range(n_win):
        buckets: list[list[AffinePoint]] = [[] for _ in range(num_buckets)]
        for point_id, digits in enumerate(digit_rows):
            digit = digits[w]
            if digit > 0:
                buckets[digit].append(points[point_id])
            elif digit < 0:
                buckets[-digit].append(affine_neg(points[point_id], curve))
        sums = []
        for members in buckets:
            acc = XyzzPoint.identity()
            for pt in members:
                acc = xyzz_acc(acc, pt, curve)
                stats.pacc += 1
            if members:
                stats.buckets_touched += 1
            sums.append(acc)
        window_results.append(bucket_reduce(sums, curve, stats))

    return to_affine(window_reduce(window_results, s, curve, stats), curve)
