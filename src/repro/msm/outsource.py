"""Verifiable MSM outsourcing: constant-size chunk-result checks (2G2T).

The multi-GPU orchestrator dispatches scalar/point chunks to workers it
does not have to trust.  Following the 2G2T construction (PAPERS.md), the
dispatcher samples one random challenge scalar ``c`` per MSM; alongside
its real bucket pass over digits ``d_i``, every worker also runs the same
pass over the *blinded* digits ``y_i = c * d_i + m_i`` (the masks ``m_i``
are pseudorandom and known only to the dispatcher, folded into ``y_i`` so
the worker never sees ``c`` or ``m_i`` individually) and returns the
blinded chunk sum ``T = sum(y_i * P_i)``.  Writing a chunk's *value* as

    ``V = sum_{b >= 1} b * B_b``

(the weighted bucket sum the host's bucket-reduce consumes — bucket 0 has
weight zero), linearity gives ``T = c * V + M`` with the *mask
commitment* ``M = sum(m_i * P_i)`` computable by the dispatcher offline,
before any work is dispatched.  The dispatcher accepts a delivered chunk
iff

    ``c * V' + M == T'``

where ``V'`` is re-derived from the delivered bucket partials (that fold
is the same 2-PADD-per-bucket suffix sum the host performs during
accumulation anyway); the response check itself is O(1) group operations
— one scalar multiplication and one addition.  A forger who returns
``V' != V`` must produce ``T' = c * V' + M`` without knowing ``c``,
which succeeds with probability at most ``1/r`` over the challenge —
``log2(r)`` bits of soundness (:func:`soundness_bits`).

Because every layer of the accumulation (per-window combine, suffix-sum
bucket-reduce, window fold) is *linear* in the per-chunk values, a
corruption that preserves ``V`` provably cannot change the final MSM
point — verifying the chunk values is verifying the result.  That is the
"conservation of verified mass" invariant :mod:`repro.verify
.integritycheck` audits end to end.

Simulation shortcuts, documented honestly:

* the honest worker's response is computed here in collapsed form,
  ``T = c * V + M`` (:func:`make_response`) — algebraically identical to
  the blinded bucket pass but O(lambda) instead of O(n * lambda) Python
  group operations.  The *time* of the real blinded pass is still charged
  on the worker's GPU (``DistMsmConfig.verify_commit_factor``).
* the mask commitment is derived as ``M = h * G`` from a per-chunk
  pseudorandom scalar ``h`` (:func:`mask_point`) rather than as a literal
  mask MSM; any fixed secret point works for the algebra above, and
  ``h * G`` keeps it reproducible from the challenge seed.

Many chunks amortise into one check through a random linear combination:
``sum(rho_j * T_j) == c * sum(rho_j * V_j) + sum(rho_j * M_j)`` with
short pseudorandom coefficients ``rho_j`` (:func:`batch_verify`); on
failure the dispatcher falls back to per-chunk checks to localise the
cheater.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.curves.params import CurveParams
from repro.curves.point import (
    AffinePoint,
    XyzzPoint,
    pdbl,
    pmul,
    to_affine,
    xyzz_add,
)

__all__ = [
    "RHO_BITS",
    "Challenge",
    "ChunkClaim",
    "batch_verify",
    "chunk_value",
    "make_response",
    "mask_point",
    "mask_scalar",
    "response_padds",
    "rho_coeff",
    "sample_challenge",
    "soundness_bits",
    "verify_padds",
]

#: bit width of the batched check's random linear-combination coefficients
RHO_BITS = 16


@dataclass(frozen=True)
class Challenge:
    """One MSM's verification challenge: the secret scalar and its seed.

    The seed alone reproduces the challenge scalar, every per-chunk mask
    and every RLC coefficient, so a verification transcript is replayable
    from one integer (plus the curve).
    """

    seed: int
    c: int  #: challenge scalar in ``[1, r)``
    rho_bits: int = RHO_BITS

    def __post_init__(self) -> None:
        if self.c < 1:
            raise ValueError(f"challenge scalar must be >= 1, got {self.c}")
        if self.rho_bits < 1:
            raise ValueError(f"rho_bits must be >= 1, got {self.rho_bits}")


@dataclass(frozen=True)
class ChunkClaim:
    """What one worker returns for one chunk, beyond the bucket partials.

    Functional runs carry the real commitment response ``T``; analytic
    (modelled) runs carry ``response=None`` and the ground-truth
    ``modelled_corrupt`` flag instead — the detection outcome is then
    modelled as deterministic, which understates the true soundness error
    by exactly ``1/r`` (see DESIGN.md §14).
    """

    round: int
    gpu: int
    response: XyzzPoint | None = None
    modelled_corrupt: bool = False


def _rng(seed: int, *key: object) -> random.Random:
    """A deterministic PRG stream bound to ``(seed, key)``."""
    return random.Random((seed, *key).__repr__())


def sample_challenge(curve: CurveParams, seed: int) -> Challenge:
    """Sample the MSM's challenge: a uniform *unit* ``c`` in ``[1, r)``.

    On a prime-order group every nonzero scalar is a unit, so this is the
    textbook 2G2T challenge.  Insisting on ``gcd(c, r) == 1`` also keeps
    the check sound on *composite*-order groups (the toy test curve): a
    forged value differing by an on-curve element ``D != 0`` has
    ``c * D != 0`` exactly, because ``ord(D)`` divides ``r`` and ``c`` is
    invertible mod ``r`` — without the unit restriction, a ``D`` of small
    order ``d`` would slip through whenever ``d`` divides ``c``.
    """
    rng = _rng(seed, "challenge", curve.name)
    r = max(2, curve.r)
    while True:
        c = rng.randrange(1, r)
        if math.gcd(c, r) == 1:
            return Challenge(seed=seed, c=c)


def soundness_bits(curve: CurveParams) -> int:
    """Bits of soundness of one chunk check: ``floor(log2 r)``."""
    return max(0, curve.r.bit_length() - 1)


def mask_scalar(challenge: Challenge, rnd: int, gpu: int, curve: CurveParams) -> int:
    """The secret mask scalar ``h`` of chunk ``(round, gpu)``."""
    return _rng(challenge.seed, "mask", curve.name, rnd, gpu).randrange(
        1, max(2, curve.r)
    )


def mask_point(challenge: Challenge, rnd: int, gpu: int, curve: CurveParams) -> XyzzPoint:
    """The mask commitment ``M = h * G`` of chunk ``(round, gpu)``.

    Dispatcher-side and independent of the outsourced work, so in a real
    deployment it is precomputed offline before dispatch.
    """
    h = mask_scalar(challenge, rnd, gpu, curve)
    return XyzzPoint.from_affine(pmul(AffinePoint(curve.gx, curve.gy), h, curve))


def rho_coeff(challenge: Challenge, rnd: int, gpu: int) -> int:
    """Chunk ``(round, gpu)``'s short RLC coefficient in ``[1, 2^rho_bits)``."""
    return _rng(challenge.seed, "rho", rnd, gpu).randrange(1, 1 << challenge.rho_bits)


def _xyzz_mul(pt: XyzzPoint, k: int, curve: CurveParams) -> XyzzPoint:
    """``k * pt`` on an XYZZ point via double-and-add (k >= 0)."""
    acc = XyzzPoint.identity()
    base = pt
    while k:
        if k & 1:
            acc = xyzz_add(acc, base, curve)
        base = pdbl(base, curve)
        k >>= 1
    return acc


def chunk_value(partials: list, curve: CurveParams) -> XyzzPoint:
    """The chunk's value ``V = sum_slots sum_{b>=1} b * B_b``.

    The exact functional the host's accumulation consumes: the same
    2-PADD-per-bucket suffix-sum fold as :func:`repro.core.bucket_reduce
    .cpu_bucket_reduce`, summed over the chunk's assignment slots.
    """
    total = XyzzPoint.identity()
    for sums in partials:
        running = XyzzPoint.identity()
        for b in range(len(sums) - 1, 0, -1):
            running = xyzz_add(running, sums[b], curve)
            total = xyzz_add(total, running, curve)
    return total


def make_response(
    challenge: Challenge, value: XyzzPoint, rnd: int, gpu: int, curve: CurveParams
) -> XyzzPoint:
    """The honest worker's commitment response ``T = c * V + M``.

    Collapsed form of the blinded bucket pass ``sum(y_i * P_i)`` — see the
    module docstring for why the identity holds and why the simulation may
    use it (the real pass's cost is charged separately on the GPU).
    """
    return xyzz_add(
        _xyzz_mul(value, challenge.c, curve),
        mask_point(challenge, rnd, gpu, curve),
        curve,
    )


def verify_chunk(
    challenge: Challenge,
    value: XyzzPoint,
    response: XyzzPoint,
    rnd: int,
    gpu: int,
    curve: CurveParams,
) -> bool:
    """Accept iff ``c * value + M == response`` (compared in affine form).

    ``value`` must be re-derived by the dispatcher from the *delivered*
    bucket partials (:func:`chunk_value`), never taken from the worker —
    that is what binds the check to the data the accumulation consumes.
    """
    lhs = xyzz_add(
        _xyzz_mul(value, challenge.c, curve),
        mask_point(challenge, rnd, gpu, curve),
        curve,
    )
    return to_affine(lhs, curve) == to_affine(response, curve)


def batch_verify(
    challenge: Challenge,
    items: list,
    curve: CurveParams,
) -> bool:
    """One RLC check over many chunks: ``sum rho_j T_j == c sum rho_j V_j + sum rho_j M_j``.

    ``items`` is a list of ``(round, gpu, value, response)`` tuples.  A
    pass accepts every chunk at once; on failure the caller falls back to
    :func:`verify_chunk` per chunk to localise the forgery.  Trivially
    accepts an empty batch.
    """
    lhs = XyzzPoint.identity()
    values = XyzzPoint.identity()
    masks = XyzzPoint.identity()
    for rnd, gpu, value, response in items:
        rho = rho_coeff(challenge, rnd, gpu)
        lhs = xyzz_add(lhs, _xyzz_mul(response, rho, curve), curve)
        values = xyzz_add(values, _xyzz_mul(value, rho, curve), curve)
        masks = xyzz_add(
            masks, _xyzz_mul(mask_point(challenge, rnd, gpu, curve), rho, curve), curve
        )
    rhs = xyzz_add(_xyzz_mul(values, challenge.c, curve), masks, curve)
    return to_affine(lhs, curve) == to_affine(rhs, curve)


# -- cost model (consumed by the orchestrator's timing layer) ----------------


def response_padds(scalar_bits: int) -> int:
    """Worker-side group ops of the collapsed response: one ``c``-sized
    scalar multiplication (~1.5 PADD-equivalents per bit under
    double-and-add) plus the mask addition.  The blinded bucket pass
    itself is charged separately via ``verify_commit_factor``."""
    return (3 * scalar_bits) // 2 + 1


def verify_padds(buckets: int, scalar_bits: int, batched: bool, rho_bits: int = RHO_BITS) -> int:
    """Dispatcher-side group ops to verify one delivered chunk.

    Two parts: the value fold over the delivered buckets (2 PADDs per
    bucket — suffix-sum work the host's own bucket-reduce shares), and
    the response check — one full ``c``-sized scalar multiplication when
    checked individually, or one short ``rho``-sized multiplication as
    this chunk's share of the amortised RLC check.
    """
    fold = 2 * max(0, buckets)
    bits = rho_bits if batched else scalar_bits
    return fold + (3 * bits) // 2 + 2
