"""End-to-end integrity audit of Byzantine-aware MSM executions (DESIGN.md §14).

The orchestrator's claim after a verified run is strong: *no unverified or
rejected chunk result reached the returned point*.  This checker replays
the audit trail it attaches to the result — the
:class:`~repro.faults.byzantine.ByzantineReport` with its per-chunk
verdicts, quarantine decisions, and consumed-slot map — against the plan
and the recovered timeline, and proves the claim by conservation of
verified mass:

* **complete coverage** — the consumed map assigns every plan slot to
  exactly one delivered execution (no slot missing, none double-counted:
  every accumulation layer is linear in the chunk values, so one
  consumed execution per slot *is* the final point);
* **only verified mass** — every consumed execution's verdict is
  ``accepted`` (or ``unverified``, iff the report honestly declares
  verification was off); ``rejected`` and ``lost`` chunks never appear;
* **soundness honoured** — with verification on, no chunk whose forgery
  changed its value carries an ``accepted`` verdict (the response check
  must have caught it);
* **quarantine discipline** — every rejected chunk's GPU is quarantined,
  and nothing is dispatched to a quarantined GPU after its quarantine
  instant (results verified *before* the quarantine may stand: trust
  comes from the math, not the worker);
* **verify-before-consume** — on the timeline, the host accumulation
  (``msm:host-reduce``) starts no earlier than the response check of any
  consumed chunk completes;
* **honest bookkeeping** — the report's ``rejected`` counter matches its
  own verdicts, and an unverified run claims no accept/reject verdicts.

Violations use the shared :class:`~repro.verify.report.Violation` record
with ``checker="integrity"``; ``op`` carries ``r{round}:g{gpu}`` of the
offending chunk, ``address`` the slot when one is at fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.timeline import TIME_EPS, Timeline
from repro.faults.byzantine import (
    VERDICT_ACCEPTED,
    VERDICT_LOST,
    VERDICT_REJECTED,
    VERDICT_UNVERIFIED,
    ByzantineReport,
)
from repro.verify.report import Violation

__all__ = ["IntegrityCheckResult", "verify_msm_integrity"]

#: the host accumulation task gated on the consumed chunks' checks
_HOST_REDUCE = "msm:host-reduce"


@dataclass
class IntegrityCheckResult:
    """Outcome of auditing one Byzantine-aware execution."""

    subject: str
    chunks: int = 0
    consumed: int = 0
    rejected: int = 0
    quarantined: int = 0
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def _add(self, message: str, op: str | None = None, address: str | None = None):
        self.violations.append(
            Violation("integrity", self.subject, message, op=op, address=address)
        )


def verify_msm_integrity(
    result,
    subject: str = "msm-integrity",
    eps: float = TIME_EPS,
) -> IntegrityCheckResult:
    """Audit a :class:`~repro.core.distmsm.DistMsmResult`'s integrity trail.

    ``result`` must carry a ``byzantine_report`` (any verified or
    Byzantine-faulted execution does); its ``plan`` supplies the slot
    universe and its ``timeline`` the verify-before-consume ordering.
    A result without a report fails the audit — there is nothing to
    trust an execution on.
    """
    report: ByzantineReport | None = getattr(result, "byzantine_report", None)
    checked = IntegrityCheckResult(subject)
    if report is None:
        checked._add(
            "execution carries no ByzantineReport — nothing proves the "
            "result consumed only verified chunks"
        )
        return checked
    timeline: Timeline | None = getattr(result, "timeline", None)
    plan = getattr(result, "plan", None)

    checked.chunks = len(report.chunks)
    checked.consumed = len(report.consumed)
    checked.rejected = sum(
        1 for c in report.chunks if c.verdict == VERDICT_REJECTED
    )
    checked.quarantined = len(report.quarantined)
    outcomes = {(c.round, c.gpu): c for c in report.chunks}
    quarantine_at = dict(report.quarantined)

    # 1. complete coverage: every plan slot consumed exactly once
    if plan is not None:
        universe = set(range(len(plan.assignments)))
    else:
        universe = {s for c in report.chunks for s in c.slots}
    seen: dict[int, tuple[int, int]] = {}
    for slot, rnd, gpu in report.consumed:
        if slot in seen:
            checked._add(
                f"slot consumed twice (r{seen[slot][0]}:g{seen[slot][1]} "
                f"and r{rnd}:g{gpu}) — double-counted mass",
                op=f"r{rnd}:g{gpu}",
                address=f"slot:{slot}",
            )
        seen[slot] = (rnd, gpu)
        if slot not in universe:
            checked._add(
                "consumed slot does not exist in the plan",
                op=f"r{rnd}:g{gpu}",
                address=f"slot:{slot}",
            )
    for slot in sorted(universe - set(seen)):
        checked._add(
            "plan slot never consumed — the returned point is missing mass",
            address=f"slot:{slot}",
        )

    # 2. only verified mass reaches the accumulation
    for slot, rnd, gpu in report.consumed:
        outcome = outcomes.get((rnd, gpu))
        op = f"r{rnd}:g{gpu}"
        if outcome is None:
            checked._add(
                "consumed execution has no recorded chunk outcome",
                op=op, address=f"slot:{slot}",
            )
            continue
        if slot not in outcome.slots:
            checked._add(
                f"consumed slot was never assigned to this chunk "
                f"(its slots: {list(outcome.slots)})",
                op=op, address=f"slot:{slot}",
            )
        if not outcome.delivered:
            checked._add(
                "consumed chunk was never delivered",
                op=op, address=f"slot:{slot}",
            )
        if outcome.verdict in (VERDICT_REJECTED, VERDICT_LOST):
            checked._add(
                f"consumed chunk's verdict is {outcome.verdict!r} — "
                "rejected/lost results must never reach the point",
                op=op, address=f"slot:{slot}",
            )
        elif report.verified and outcome.verdict != VERDICT_ACCEPTED:
            checked._add(
                f"verified run consumed a chunk with verdict "
                f"{outcome.verdict!r} instead of {VERDICT_ACCEPTED!r}",
                op=op, address=f"slot:{slot}",
            )

    # 3. soundness honoured: a value-changing forgery cannot be accepted
    if report.verified:
        for c in report.chunks:
            if c.corrupted and c.verdict == VERDICT_ACCEPTED:
                checked._add(
                    "value-changing forgery passed the response check — "
                    "soundness failure",
                    op=f"r{c.round}:g{c.gpu}",
                )

    # 4. quarantine discipline
    for c in report.chunks:
        op = f"r{c.round}:g{c.gpu}"
        if c.verdict == VERDICT_REJECTED and c.gpu not in quarantine_at:
            checked._add(
                "chunk was rejected but its GPU was never quarantined", op=op
            )
        at = quarantine_at.get(c.gpu)
        if at is not None and c.dispatched_at_ms > at + eps:
            checked._add(
                f"chunk dispatched at {c.dispatched_at_ms} on a GPU "
                f"quarantined at {at}",
                op=op,
            )

    # 5. verify-before-consume on the timeline
    if report.verified and timeline is not None:
        reduce_span = timeline.spans.get(_HOST_REDUCE)
        if reduce_span is None:
            checked._add(
                "verified run's timeline has no host-reduce span to gate on",
                op=_HOST_REDUCE,
            )
        else:
            for slot, rnd, gpu in report.consumed:
                outcome = outcomes.get((rnd, gpu))
                if outcome is None or outcome.verified_at_ms < 0:
                    continue
                if reduce_span.start_ms < outcome.verified_at_ms - eps:
                    checked._add(
                        f"host-reduce starts at {reduce_span.start_ms}, before "
                        f"the consumed chunk's check completes at "
                        f"{outcome.verified_at_ms}",
                        op=f"r{rnd}:g{gpu}",
                        address=f"slot:{slot}",
                    )

    # 6. honest bookkeeping inside the report itself
    if report.rejected != checked.rejected:
        checked._add(
            f"report claims {report.rejected} rejected chunk(s) but records "
            f"{checked.rejected} rejected verdict(s)"
        )
    if not report.verified:
        for c in report.chunks:
            if c.verdict in (VERDICT_ACCEPTED, VERDICT_REJECTED):
                checked._add(
                    f"unverified run claims verdict {c.verdict!r} — without "
                    "checks there is nothing to accept or reject",
                    op=f"r{c.round}:g{c.gpu}",
                )
    for c in report.chunks:
        if not c.delivered and c.verdict != VERDICT_LOST:
            checked._add(
                f"undelivered chunk carries verdict {c.verdict!r} "
                f"instead of {VERDICT_LOST!r}",
                op=f"r{c.round}:g{c.gpu}",
            )
    return checked
