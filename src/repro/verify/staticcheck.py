"""Bridge from :mod:`repro.analyze` findings to verify violations.

The static analyzer reports :class:`~repro.analyze.finding.Finding`
values; the verification layer speaks
:class:`~repro.verify.report.Violation`.  :func:`check_findings` converts
one into the other so analyzer output rides the same report, CLI, and
injected-fault fixture machinery as the runtime checkers — a determinism
lint hit fails ``python -m repro.verify`` exactly like a register-peak
mismatch does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.verify.report import Violation

if TYPE_CHECKING:  # import kept lazy: verify must not pull analyze eagerly
    from repro.analyze.finding import Finding


@dataclass
class StaticCheckResult:
    """Outcome of running one static-analysis pass as a verify checker."""

    subject: str
    findings: int = 0
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def check_findings(
    findings: "list[Finding]", subject: str
) -> StaticCheckResult:
    """Wrap analyzer findings as a checker result (one violation each)."""
    result = StaticCheckResult(subject=subject, findings=len(findings))
    for finding in findings:
        result.violations.append(
            Violation(
                "analyze",
                subject,
                f"{finding.path}:{finding.line}: "
                f"[{finding.rule}] {finding.message}",
            )
        )
    return result
