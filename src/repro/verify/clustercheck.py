"""Independent audit of cluster runs (:class:`repro.cluster.router.ClusterResult`).

The cluster router *claims* a distribution story — every request routed
to exactly one node, shed work never executing anywhere, lost work
re-routed exactly once after a death — and this checker replays those
claims against the finished artifacts, trusting nothing the router said
about itself:

* **per-node honesty** — every node's :class:`~repro.serve.server.ServeResult`
  passes the full serving audit (:func:`repro.verify.servecheck.verify_serving`);
* **single-serve** — no request appears in two nodes' record sets (the
  distributed analogue of exactly-once);
* **cluster conservation** — records and cluster-level shed events
  partition the submitted requests, per cluster and per tenant;
* **shed never executes** — a request shed at the router owns no task on
  *any* node's timeline;
* **dispatch causality** — no dispatch precedes its request's cluster
  arrival, and each record's ``arrival <= dispatch <= complete``;
* **failover at-most-once** — at most one :class:`FailoverEvent` per
  request; its source actually died, its re-dispatch respects the
  heartbeat detection tick, and the request ended up served by the
  target or honestly shed — never by the dead node;
* **dead nodes stay dead** — no task on a dead node's timeline ends
  after the death instant, and no record completes there after it.

Violations use ``checker="cluster"``; per-node serving violations keep
their own subjects (``{subject}/node{k}``) so reports point at the box.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.metrics import tenant_name
from repro.cluster.router import ClusterResult
from repro.engine.timeline import TIME_EPS
from repro.verify.report import Violation
from repro.verify.servecheck import ServeCheckResult, request_id_of, verify_serving


@dataclass
class ClusterCheckResult:
    """Outcome of auditing one cluster serving run."""

    subject: str
    submitted: int
    served: int
    shed: int
    #: node id -> that node's serving audit
    node_checks: dict[int, ServeCheckResult] = field(default_factory=dict)
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and all(
            check.ok for check in self.node_checks.values()
        )

    def all_violations(self) -> list[Violation]:
        """Cluster-level plus per-node violations, node order first."""
        out: list[Violation] = []
        for node_id in sorted(self.node_checks):
            out.extend(self.node_checks[node_id].violations)
        out.extend(self.violations)
        return out

    def _add(self, message: str, op: str | None = None) -> None:
        self.violations.append(Violation("cluster", self.subject, message, op=op))


def verify_cluster(
    result: ClusterResult,
    subject: str = "cluster run",
    eps: float = TIME_EPS,
) -> ClusterCheckResult:
    """Audit one cluster run's artifacts against the distribution invariants."""
    check = ClusterCheckResult(
        subject,
        submitted=len(result.requests),
        served=len(result.records),
        shed=len(result.shed),
    )
    submitted = {r.req_id: r for r in result.requests}
    shed_ids = {e.request.req_id for e in result.shed}
    record_ids = {r.req_id for r in result.records}

    # 1. per-node serving audits (each node is an honest server on its own)
    for node_id in sorted(result.node_results):
        node_result = result.node_results[node_id]
        check.node_checks[node_id] = verify_serving(
            node_result.requests,
            node_result.records,
            node_result.shed,
            node_result.timeline,
            subject=f"{subject}/node{node_id}",
            eps=eps,
        )

    # 2. single-serve: exactly-once across the fleet
    served_by: dict[int, list[int]] = {}
    for node_id in sorted(result.node_results):
        for rec in result.node_results[node_id].records:
            served_by.setdefault(rec.req_id, []).append(node_id)
    for rid in sorted(served_by):
        nodes = served_by[rid]
        if len(nodes) > 1:
            check._add(
                f"request {rid} served by {len(nodes)} nodes {nodes} "
                "(must be exactly one)",
                op=f"req{rid}",
            )

    # 3. cluster conservation: records and shed partition the submissions
    for rid in sorted(record_ids & shed_ids):
        check._add(
            f"request {rid} both served and shed at cluster scope",
            op=f"req{rid}",
        )
    for rid in sorted((record_ids | shed_ids) - set(submitted)):
        check._add(f"artifact for unknown request {rid}", op=f"req{rid}")
    for rid in sorted(set(submitted) - record_ids - shed_ids):
        check._add(
            f"request {rid} neither served nor shed (lost in the cluster)",
            op=f"req{rid}",
        )

    # 3b. tenant conservation: the per-tenant ledgers add up
    per_tenant_sub: dict[str, int] = {}
    for request in result.requests:
        name = tenant_name(request.tenant)
        per_tenant_sub[name] = per_tenant_sub.get(name, 0) + 1
    per_tenant_out: dict[str, int] = {}
    for rec in result.records:
        per_tenant_out[rec.tenant] = per_tenant_out.get(rec.tenant, 0) + 1
    for event in result.shed:
        name = tenant_name(event.request.tenant)
        per_tenant_out[name] = per_tenant_out.get(name, 0) + 1
    for name in sorted(set(per_tenant_sub) | set(per_tenant_out)):
        got, want = per_tenant_out.get(name, 0), per_tenant_sub.get(name, 0)
        if got != want:
            check._add(
                f"tenant {name!r}: {want} submitted but {got} accounted "
                "(served + shed)",
                op=name,
            )

    # 4. shed never executes, on any node in the fleet
    for node_id in sorted(result.node_results):
        timeline = result.node_results[node_id].timeline
        for name in sorted(timeline.spans):
            rid = request_id_of(name)
            if rid is not None and rid in shed_ids:
                check._add(
                    f"cluster-shed request {rid} has task {name!r} on "
                    f"node {node_id}'s timeline",
                    op=name,
                )

    # 5. dispatch causality
    for dispatch in result.dispatches:
        request = submitted.get(dispatch.req_id)
        if request is None:
            check._add(
                f"dispatch of unknown request {dispatch.req_id}",
                op=f"req{dispatch.req_id}",
            )
            continue
        if dispatch.at_ms < request.arrival_ms - eps:
            check._add(
                f"request {dispatch.req_id} dispatched at {dispatch.at_ms:.6f} "
                f"ms before its arrival at {request.arrival_ms:.6f} ms",
                op=f"req{dispatch.req_id}",
            )
    for rec in result.records:
        if rec.dispatch_ms < rec.arrival_ms - eps:
            check._add(
                f"request {rec.req_id}: dispatch {rec.dispatch_ms:.6f} ms "
                f"precedes arrival {rec.arrival_ms:.6f} ms",
                op=f"req{rec.req_id}",
            )
        if rec.complete_ms < rec.dispatch_ms - eps:
            check._add(
                f"request {rec.req_id}: completion {rec.complete_ms:.6f} ms "
                f"precedes dispatch {rec.dispatch_ms:.6f} ms",
                op=f"req{rec.req_id}",
            )

    # 6. failover at-most-once, from a node that actually died
    deaths = {d.node_id: d for d in result.deaths}
    seen_failover: dict[int, int] = {}
    for event in result.failovers:
        seen_failover[event.req_id] = seen_failover.get(event.req_id, 0) + 1
    for rid in sorted(seen_failover):
        if seen_failover[rid] > 1:
            check._add(
                f"request {rid} failed over {seen_failover[rid]} times "
                "(at most once allowed)",
                op=f"req{rid}",
            )
    for event in result.failovers:
        label = f"req{event.req_id}"
        death = deaths.get(event.from_node)
        if death is None:
            check._add(
                f"request {event.req_id} failed over from node "
                f"{event.from_node}, which never died",
                op=label,
            )
        elif event.redispatch_ms < death.detect_ms - eps:
            check._add(
                f"request {event.req_id} re-dispatched at "
                f"{event.redispatch_ms:.6f} ms before node "
                f"{event.from_node}'s detection at {death.detect_ms:.6f} ms",
                op=label,
            )
        source = result.node_results.get(event.from_node)
        if source is not None and any(
            r.req_id == event.req_id for r in source.records
        ):
            check._add(
                f"request {event.req_id} failed over from node "
                f"{event.from_node} yet also served there",
                op=label,
            )
        target = result.node_results.get(event.to_node)
        landed = target is not None and any(
            r.req_id == event.req_id for r in target.records
        )
        if not landed and event.req_id not in shed_ids:
            check._add(
                f"request {event.req_id} failed over to node {event.to_node} "
                "but was neither served there nor shed",
                op=label,
            )

    # 7. dead nodes stay dead: nothing ends after the death instant
    for node_id in sorted(deaths):
        death = deaths[node_id]
        node_result = result.node_results.get(node_id)
        if node_result is None:
            continue
        for name in sorted(node_result.timeline.spans):
            span = node_result.timeline.spans[name]
            if span.end_ms > death.at_ms + eps:
                check._add(
                    f"dead node {node_id}: task {name!r} ends at "
                    f"{span.end_ms:.6f} ms, after the death at "
                    f"{death.at_ms:.6f} ms",
                    op=name,
                )
        for rec in node_result.records:
            if rec.complete_ms > death.at_ms + eps:
                check._add(
                    f"dead node {node_id}: request {rec.req_id} completes at "
                    f"{rec.complete_ms:.6f} ms, after the death at "
                    f"{death.at_ms:.6f} ms",
                    op=f"req{rec.req_id}",
                )
    return check
