"""Independent static analysis of the repro's kernel-level artifacts.

Everything the paper claims about the kernels is a statically checkable
property of a schedule, a spill plan, or a memory trace; this package
checks those properties without re-running (or trusting) the code that
produced them.  Three checkers:

* :mod:`repro.verify.schedule` — execution orders: topological validity,
  single assignment, in-place aliasing, an independent register-liveness
  recomputation cross-checked against claimed peaks, modmul budgets;
* :mod:`repro.verify.spillcheck` — spill plans: symbolic replay rejecting
  use-before-reload, double-spills, budget and shared-memory overflows;
* :mod:`repro.verify.races` — scatter/bucket-sum memory traces: a
  happens-before graph over blocks, barriers, warps, and atomics, flagging
  unsynchronised same-address conflicts;
* :mod:`repro.verify.timelinecheck` — engine schedules: coverage,
  dependency order, resource exclusivity, makespan claims (fault-aware);
* :mod:`repro.verify.faultcheck` — recovered chaos timelines: no
  post-mortem scheduling on dead resources, exponential-backoff spacing
  of transfer retries, honest makespan accounting;
* :mod:`repro.verify.integritycheck` — Byzantine audit trails: every plan
  slot consumed exactly once from a delivered, *accepted* execution, no
  value-changing forgery accepted, quarantine discipline, and the host
  accumulation gated behind the consumed chunks' response checks;
* :mod:`repro.verify.observecheck` — traces: well-formed nesting, one
  span per executed task, busy-time and makespan agreement with the
  timeline, phase-serial stage tiling;
* :mod:`repro.verify.staticcheck` — the bridge to :mod:`repro.analyze`:
  the whole-program static pass (determinism lint, unit dataflow,
  interval abstract interpretation, plan model checking) runs inside
  ``verify_all`` and its findings fail the gate like any other checker's.

``python -m repro.verify`` runs all of it over every registered kernel and
baseline; :mod:`repro.verify.fixtures` holds the injected faults that prove
each checker can actually fail.
"""

from repro.verify.driver import (
    verify_all,
    verify_bucket_sum,
    verify_byzantine,
    verify_fault_recovery,
    verify_kernel_schedules,
    verify_observability,
    verify_scatter_config,
    verify_spill_plans,
    verify_static_analysis,
)
from repro.verify.faultcheck import FaultCheckResult, verify_fault_timeline
from repro.verify.fixtures import FIXTURES, run_fixture
from repro.verify.integritycheck import IntegrityCheckResult, verify_msm_integrity
from repro.verify.observecheck import (
    ObserveCheckResult,
    verify_trace,
    verify_trace_against_timeline,
)
from repro.verify.races import (
    RaceCheckResult,
    detect_races,
    trace_bucket_sum,
    trace_hierarchical_scatter,
    trace_naive_scatter,
)
from repro.verify.report import VerificationReport, Violation
from repro.verify.schedule import (
    LiveInterval,
    ScheduleCheckResult,
    live_intervals,
    verify_schedule,
)
from repro.verify.spillcheck import (
    SpillCheckResult,
    max_spill_threads,
    spill_bytes_per_thread,
    verify_spill_plan,
)
from repro.verify.staticcheck import StaticCheckResult, check_findings

__all__ = [
    "FIXTURES",
    "FaultCheckResult",
    "IntegrityCheckResult",
    "LiveInterval",
    "ObserveCheckResult",
    "RaceCheckResult",
    "ScheduleCheckResult",
    "SpillCheckResult",
    "StaticCheckResult",
    "VerificationReport",
    "Violation",
    "check_findings",
    "detect_races",
    "live_intervals",
    "max_spill_threads",
    "run_fixture",
    "spill_bytes_per_thread",
    "trace_bucket_sum",
    "trace_hierarchical_scatter",
    "trace_naive_scatter",
    "verify_all",
    "verify_bucket_sum",
    "verify_byzantine",
    "verify_fault_recovery",
    "verify_fault_timeline",
    "verify_kernel_schedules",
    "verify_msm_integrity",
    "verify_observability",
    "verify_scatter_config",
    "verify_schedule",
    "verify_spill_plan",
    "verify_spill_plans",
    "verify_static_analysis",
    "verify_trace",
    "verify_trace_against_timeline",
]
