"""Independent audit of serving runs (:class:`repro.serve.server.ServeResult`).

The serving layer *claims* a causality story — requests queue, batch,
execute, complete — and an SLO report derived from it.  This checker takes
the finished artifacts (request records, shed events, the shared engine
timeline) and replays the invariants every honest serving run satisfies:

* **causality** — no task of a request occupies a resource before the
  request arrived; each record's life-cycle timestamps are monotone
  (``arrival <= formed <= admit <= start <= complete``);
* **shed means shed** — a shed request has no task on the timeline, no
  request record, and no result point (load shedding that still executes
  would be admission theater);
* **conservation** — every submitted request is accounted exactly once,
  as a record or a shed event, never both;
* **honest completion** — a record's ``complete_ms`` matches its final
  reduce span on the timeline, so reported latency is what the engine
  actually scheduled.

Violations use the shared :class:`~repro.verify.report.Violation` record
with ``checker="serve"``; ``op`` carries the request/task at fault.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.engine.timeline import TIME_EPS, Timeline
from repro.serve.admission import ShedEvent
from repro.serve.metrics import RequestRecord
from repro.serve.queue import ProofRequest
from repro.verify.report import Violation

#: serve task names: req{id}.a{attempt}:{unit}
_TASK_RE = re.compile(r"^req(\d+)\.a(\d+):")


def request_id_of(task_name: str) -> int | None:
    """The request id a serve task name belongs to, ``None`` otherwise."""
    match = _TASK_RE.match(task_name)
    return int(match.group(1)) if match else None


@dataclass
class ServeCheckResult:
    """Outcome of auditing one serving run."""

    subject: str
    requests: int
    served: int
    shed: int
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def _add(self, message: str, op: str | None = None) -> None:
        self.violations.append(Violation("serve", self.subject, message, op=op))


def verify_serving(
    requests: list[ProofRequest],
    records: list[RequestRecord],
    shed: list[ShedEvent],
    timeline: Timeline,
    subject: str = "serving run",
    eps: float = TIME_EPS,
) -> ServeCheckResult:
    """Audit one serving run's artifacts against the serving invariants."""
    result = ServeCheckResult(
        subject, requests=len(requests), served=len(records), shed=len(shed)
    )
    arrivals = {r.req_id: r.arrival_ms for r in requests}
    shed_ids = {e.request.req_id for e in shed}
    record_ids = {r.req_id for r in records}

    # 1. causality: no serve task touches a resource before its arrival;
    #    shed requests own no timeline work at all
    for name, span in timeline.spans.items():
        rid = request_id_of(name)
        if rid is None:
            continue
        if rid in shed_ids:
            result._add(
                f"shed request {rid} has task {name!r} on the timeline "
                "(shed requests must never execute)",
                op=name,
            )
        arrival = arrivals.get(rid)
        if arrival is None:
            result._add(f"task {name!r} belongs to unknown request {rid}", op=name)
        elif span.start_ms < arrival - eps:
            result._add(
                f"request {rid} task starts at {span.start_ms:.6f} ms, before "
                f"its arrival at {arrival:.6f} ms",
                op=name,
            )

    # 2. conservation: records and shed events partition the submissions
    for rid in sorted(record_ids & shed_ids):
        result._add(
            f"request {rid} both served and shed (must be exactly one)",
            op=f"req{rid}",
        )
    for rid in sorted(record_ids - set(arrivals)):
        result._add(f"record for unknown request {rid}", op=f"req{rid}")
    for rid in sorted(set(arrivals) - record_ids - shed_ids):
        result._add(
            f"request {rid} neither served nor shed (lost in the server)",
            op=f"req{rid}",
        )

    # 3. per-record life-cycle monotonicity and honest completion
    reduce_ends: dict[int, float] = {}
    for name, span in timeline.spans.items():
        rid = request_id_of(name)
        if rid is not None and name.endswith(":reduce"):
            reduce_ends[rid] = max(reduce_ends.get(rid, span.end_ms), span.end_ms)
    for record in records:
        label = f"req{record.req_id}"
        stamps = (
            ("arrival", record.arrival_ms),
            ("formed", record.formed_ms),
            ("admit", record.admit_ms),
            ("start", record.start_ms),
            ("complete", record.complete_ms),
        )
        for (a_name, a), (b_name, b) in zip(stamps, stamps[1:]):
            if b < a - eps:
                result._add(
                    f"request {record.req_id}: {b_name} at {b:.6f} ms precedes "
                    f"{a_name} at {a:.6f} ms",
                    op=label,
                )
        end = reduce_ends.get(record.req_id)
        if end is None:
            result._add(
                f"request {record.req_id} served without a reduce span on the "
                "timeline",
                op=label,
            )
        elif abs(end - record.complete_ms) > eps:
            result._add(
                f"request {record.req_id}: recorded completion "
                f"{record.complete_ms:.6f} ms != final reduce end {end:.6f} ms",
                op=label,
            )
    return result
