"""Static verifier for kernel execution schedules (paper §4.2.1 claims).

The scheduler in :mod:`repro.kernels.scheduler` *produces* orders and
claims a register peak for them; this module independently *checks* such
claims.  It shares no liveness code with the producer: where
``kernels.dag.peak_live`` simulates the live set incrementally op by op,
the verifier derives a closed-form live *interval* for every variable and
counts interval overlaps with an event sweep.  Agreement between two
implementations with different structure is the point — a bug in the
scheduler's liveness accounting will not silently propagate here.

Checked invariants for a schedule (an execution order of an ``OpDag``):

* the order is a permutation of the DAG's ops and topologically valid
  (every produced input is produced before use);
* single assignment — no op redefines a variable, including start-live ones;
* in-place aliasing hazards — an in-place op destroys its first input's
  register, so that value must have no later consumer and must not be a
  kernel output;
* the independently recomputed register peak does not exceed the claimed
  peak;
* the modular-multiplication count stays within the per-kernel budget
  (PADD ≤ 14, PACC ≤ 10 — the paper's Table in §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernels.dag import Op, OpDag
from repro.verify.report import Violation

_INF = float("inf")


@dataclass(frozen=True)
class LiveInterval:
    """One variable's register occupancy window in schedule positions.

    ``start`` is the position at which the value materialises (-1 for
    kernel-entry values); ``end`` is its last consuming position (``inf``
    for kernel outputs).
    """

    var: str
    start: float
    end: float


@dataclass
class ScheduleCheckResult:
    """Outcome of verifying one schedule."""

    subject: str
    violations: list[Violation] = field(default_factory=list)
    peak: int = 0
    peak_op: str | None = None
    modmuls: int = 0
    intervals: dict[str, LiveInterval] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations


def _ordered_ops(dag: OpDag, order: list[str] | None) -> list[Op] | Violation:
    name_to_op = {op.name: op for op in dag.ops}
    if order is None:
        return list(dag.ops)
    if sorted(order) != sorted(name_to_op):
        missing = set(name_to_op) - set(order)
        extra = set(order) - set(name_to_op)
        return Violation(
            checker="schedule",
            subject=dag.name,
            message=(
                "order is not a permutation of the DAG's ops "
                f"(missing {sorted(missing)}, unknown {sorted(extra)})"
            ),
        )
    return [name_to_op[n] for n in order]


def live_intervals(dag: OpDag, ops: list[Op]) -> dict[str, LiveInterval]:
    """Closed-form live interval of every variable under this order."""
    produced_at = {op.output: idx for idx, op in enumerate(ops)}
    last_use: dict[str, float] = {}
    first_use: dict[str, int] = {}
    for idx, op in enumerate(ops):
        for v in op.inputs:
            last_use[v] = idx
            first_use.setdefault(v, idx)
    for v in dag.live_at_end:
        last_use[v] = _INF

    intervals: dict[str, LiveInterval] = {}
    for v in dag.live_at_start:
        if v in last_use:
            intervals[v] = LiveInterval(v, -1, last_use[v])
    for v, idx in produced_at.items():
        intervals[v] = LiveInterval(v, idx, last_use.get(v, idx))
    for v in first_use:
        if v not in intervals:  # loaded operand: materialises at first use
            intervals[v] = LiveInterval(v, first_use[v], last_use[v])
    return intervals


def _sweep_peak(
    ops: list[Op], intervals: dict[str, LiveInterval]
) -> tuple[int, str | None]:
    """Peak concurrent intervals, counting each op's output temporary.

    At position ``p`` two quantities matter: *during* the op — values
    carried in (started earlier, not yet dead) plus operands materialising
    now plus the fresh output register of a non-in-place op — and *after*
    the op — every interval covering the gap to position ``p + 1``.
    """
    peak = sum(1 for iv in intervals.values() if iv.start < 0)  # entry set
    peak_op: str | None = None
    for p, op in enumerate(ops):
        carried = sum(
            1 for iv in intervals.values() if iv.start < p and iv.end >= p
        )
        materialising = sum(
            1
            for v in set(op.inputs)
            if intervals[v].start == p and v != op.output
        )
        during = carried + materialising + (0 if op.inplace else 1)
        after = sum(
            1 for iv in intervals.values() if iv.start <= p and iv.end > p
        )
        here = max(during, after)
        if here > peak:
            peak, peak_op = here, op.name
    return peak, peak_op


def verify_schedule(
    dag: OpDag,
    order: list[str] | None = None,
    claimed_peak: int | None = None,
    max_modmuls: int | None = None,
    subject: str | None = None,
) -> ScheduleCheckResult:
    """Verify one execution order of ``dag`` against all schedule invariants.

    ``order=None`` checks the DAG's written order.  ``claimed_peak`` is the
    register peak the producer (scheduler or hand analysis) asserts;
    ``max_modmuls`` is the kernel's multiplication budget.
    """
    subject = subject or dag.name
    result = ScheduleCheckResult(subject=subject)
    ops = _ordered_ops(dag, order)
    if isinstance(ops, Violation):
        result.violations.append(ops)
        return result

    # single assignment: each variable defined exactly once, never a
    # redefinition of a kernel input
    seen_outputs: set[str] = set()
    for op in ops:
        if op.output in seen_outputs:
            result.violations.append(
                Violation(
                    checker="schedule",
                    subject=subject,
                    message=f"variable {op.output!r} is assigned more than once",
                    op=op.name,
                )
            )
        if op.output in dag.live_at_start:
            result.violations.append(
                Violation(
                    checker="schedule",
                    subject=subject,
                    message=f"op redefines kernel-entry value {op.output!r}",
                    op=op.name,
                )
            )
        seen_outputs.add(op.output)

    # def-before-use / topological validity
    produced_at = {op.output: idx for idx, op in enumerate(ops)}
    for idx, op in enumerate(ops):
        for v in op.inputs:
            if v in produced_at and produced_at[v] >= idx and v != op.output:
                result.violations.append(
                    Violation(
                        checker="schedule",
                        subject=subject,
                        message=(
                            f"uses {v!r} before it is produced "
                            f"(producer runs at position {produced_at[v]}, "
                            f"use at {idx})"
                        ),
                        op=op.name,
                    )
                )

    # in-place aliasing hazards: the destination register is inputs[0]
    last_use: dict[str, int] = {}
    for idx, op in enumerate(ops):
        for v in op.inputs:
            last_use[v] = idx
    for idx, op in enumerate(ops):
        if not op.inplace:
            continue
        overwritten = op.inputs[0]
        if last_use.get(overwritten, idx) > idx:
            result.violations.append(
                Violation(
                    checker="schedule",
                    subject=subject,
                    message=(
                        f"in-place op destroys {overwritten!r}, which is "
                        f"still consumed at position {last_use[overwritten]}"
                    ),
                    op=op.name,
                )
            )
        if overwritten in dag.live_at_end:
            result.violations.append(
                Violation(
                    checker="schedule",
                    subject=subject,
                    message=(
                        f"in-place op destroys kernel output {overwritten!r}"
                    ),
                    op=op.name,
                )
            )

    if result.violations:
        # liveness over a malformed schedule would be meaningless
        return result

    # independent liveness recomputation
    result.intervals = live_intervals(dag, ops)
    result.peak, result.peak_op = _sweep_peak(ops, result.intervals)
    if claimed_peak is not None and result.peak > claimed_peak:
        result.violations.append(
            Violation(
                checker="schedule",
                subject=subject,
                message=(
                    f"recomputed register peak {result.peak} exceeds the "
                    f"claimed peak {claimed_peak}"
                ),
                op=result.peak_op,
            )
        )

    # modular-multiplication budget
    result.modmuls = sum(1 for op in ops if op.kind == "mul")
    if max_modmuls is not None and result.modmuls > max_modmuls:
        extra = [op.name for op in ops if op.kind == "mul"][max_modmuls:]
        result.violations.append(
            Violation(
                checker="schedule",
                subject=subject,
                message=(
                    f"{result.modmuls} modular multiplications exceed the "
                    f"budget of {max_modmuls}"
                ),
                op=extra[0] if extra else None,
            )
        )
    return result
