"""Symbolic replay checker for explicit spill plans (paper §4.2.2).

:mod:`repro.kernels.spill` *plans* register↔shared-memory moves; this
module replays a plan instruction by instruction against the schedule it
was made for and rejects every way such a plan can be wrong:

* an op consuming a value that currently sits in shared memory
  (use-before-reload);
* spilling a value that is not register-resident (double-spill), or
  reloading one that was never spilled;
* exceeding the register budget at any point despite the plan's moves;
* a kernel output left in shared memory at exit;
* claimed transfer / peak numbers that disagree with the replay;
* a spill area that cannot fit the launch geometry's shared memory
  (``gpu/specs.py`` limits) — every thread of a block needs its own copy
  of the spill slots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.specs import NVIDIA_A100, GpuSpec
from repro.kernels.dag import OpDag
from repro.kernels.spill import SpillPlan
from repro.verify.report import Violation

_INF = float("inf")


@dataclass
class SpillCheckResult:
    """Outcome of replaying one spill plan."""

    subject: str
    violations: list[Violation] = field(default_factory=list)
    transfers: int = 0
    peak_registers: int = 0
    peak_shm_bigints: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


def spill_bytes_per_thread(peak_shm_bigints: int, num_limbs: int) -> int:
    """Shared-memory bytes one thread's spill slots occupy."""
    return peak_shm_bigints * num_limbs * 4


def max_spill_threads(
    peak_shm_bigints: int, num_limbs: int, spec: GpuSpec = NVIDIA_A100
) -> int:
    """Largest warp-granular block size whose spill area fits one SM."""
    per_thread = spill_bytes_per_thread(peak_shm_bigints, num_limbs)
    if per_thread == 0:
        return spec.max_threads_per_sm
    capacity = spec.shared_mem_per_sm_kb * 1024
    return (capacity // per_thread // spec.warp_size) * spec.warp_size


def verify_spill_plan(
    dag: OpDag,
    order: list[str],
    plan: SpillPlan,
    num_limbs: int = 12,
    threads_per_block: int = 32,
    spec: GpuSpec = NVIDIA_A100,
    subject: str | None = None,
) -> SpillCheckResult:
    """Replay ``plan`` over ``order`` and report every broken invariant."""
    subject = subject or f"{dag.name} spill@{plan.register_budget}"
    result = SpillCheckResult(subject=subject)

    def violate(message: str, op: str | None = None, address: str | None = None) -> None:
        result.violations.append(
            Violation(
                checker="spill", subject=subject, message=message, op=op, address=address
            )
        )

    name_to_op = {op.name: op for op in dag.ops}
    if sorted(order) != sorted(name_to_op):
        violate("order is not a permutation of the DAG's ops")
        return result
    ops = [name_to_op[n] for n in order]
    produced = {op.output for op in ops}

    uses: dict[str, list[float]] = {}
    for idx, op in enumerate(ops):
        for v in op.inputs:
            uses.setdefault(v, []).append(idx)
    for v in dag.live_at_end:
        uses.setdefault(v, []).append(_INF)

    def next_use(v: str, after: int) -> float:
        return next((u for u in uses.get(v, []) if u >= after), _INF)

    moves_by_op: dict[str, list[tuple[str, str]]] = {}
    for op_name, kind, var in plan.moves:
        moves_by_op.setdefault(op_name, []).append((kind, var))
    known_ops = set(name_to_op) | {"<end>"}
    for op_name in moves_by_op:
        if op_name not in known_ops:
            violate(f"plan moves reference unknown op {op_name!r}", op=op_name)

    regs = {v for v in dag.live_at_start if uses.get(v)}
    shm: set[str] = set()
    replayed_transfers = 0

    def apply_moves(op_name: str) -> None:
        nonlocal replayed_transfers
        for kind, var in moves_by_op.get(op_name, []):
            replayed_transfers += 1
            if kind == "spill":
                if var not in regs:
                    where = "already in shared memory" if var in shm else "not resident"
                    violate(
                        f"spill of {var!r}, which is {where} "
                        "(double-spill or spill of an undefined value)",
                        op=op_name,
                        address=f"shared:spill[{var}]",
                    )
                    continue
                regs.discard(var)
                shm.add(var)
            elif kind == "reload":
                if var not in shm:
                    violate(
                        f"reload of {var!r}, which is not in shared memory",
                        op=op_name,
                        address=f"shared:spill[{var}]",
                    )
                    continue
                shm.discard(var)
                regs.add(var)
            else:
                violate(f"unknown move kind {kind!r}", op=op_name)

    for idx, op in enumerate(ops):
        apply_moves(op.name)
        for v in op.inputs:
            if v in shm:
                violate(
                    f"op consumes {v!r} while it is spilled to shared memory "
                    "(use before reload)",
                    op=op.name,
                    address=f"shared:spill[{v}]",
                )
            elif v not in regs:
                if v in produced or v in dag.live_at_start:
                    violate(
                        f"op consumes {v!r}, which is not materialised",
                        op=op.name,
                    )
                else:
                    regs.add(v)  # loaded operand arrives from device memory
        working = set(op.inputs) - shm
        need = len(regs | working) + (0 if op.inplace else 1)
        if need > plan.register_budget:
            violate(
                f"{need} registers needed with a budget of "
                f"{plan.register_budget}",
                op=op.name,
            )
        result.peak_registers = max(result.peak_registers, need)
        regs.add(op.output)
        for v in list(regs):
            if next_use(v, idx + 1) == _INF and v not in dag.live_at_end:
                regs.discard(v)
        for v in list(shm):
            if next_use(v, idx + 1) == _INF and v not in dag.live_at_end:
                shm.discard(v)
        result.peak_registers = max(result.peak_registers, len(regs))
        result.peak_shm_bigints = max(result.peak_shm_bigints, len(shm))

    apply_moves("<end>")
    for v in sorted(shm & dag.live_at_end):
        violate(
            f"kernel output {v!r} left in shared memory at exit",
            op="<end>",
            address=f"shared:spill[{v}]",
        )
    result.transfers = replayed_transfers

    # cross-check the plan's claimed numbers against the replay
    if plan.transfers != replayed_transfers:
        violate(
            f"plan claims {plan.transfers} transfers but replaying its moves "
            f"performs {replayed_transfers}"
        )
    if result.peak_shm_bigints > plan.peak_shm_bigints:
        violate(
            f"replay reaches {result.peak_shm_bigints} big integers in shared "
            f"memory, more than the claimed {plan.peak_shm_bigints}"
        )
    if result.peak_registers > plan.register_budget:
        violate(
            f"replay peak of {result.peak_registers} registers exceeds the "
            f"budget {plan.register_budget}"
        )

    # capacity: every thread of the block keeps its own spill slots
    needed = spill_bytes_per_thread(result.peak_shm_bigints, num_limbs) * threads_per_block
    capacity = spec.shared_mem_per_sm_kb * 1024
    if needed > capacity:
        violate(
            f"spill area needs {needed} B of shared memory for "
            f"{threads_per_block} threads x {result.peak_shm_bigints} big "
            f"integers x {num_limbs} limbs, capacity {capacity} B "
            f"({spec.name})",
            address=f"shared:spill[{needed}B]",
        )
    return result
