"""``python -m repro.verify`` — the static-analysis gate for CI.

Exit status 0 when every registered kernel and baseline passes all the
checkers (schedule, spill, race, timeline, faults); non-zero with pointed
diagnostics — the offending op or address — otherwise.  ``--inject-fault`` runs one of the
known-broken fixtures and *inverts* nothing: the fixture's violations are
printed and the exit status is non-zero, which is how the test suite (and
a sceptical operator) confirms the checkers actually bite.
"""

from __future__ import annotations

import argparse
import sys

from repro.verify.driver import verify_all
from repro.verify.fixtures import FIXTURES, run_fixture


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description=(
            "Statically verify kernel schedules, spill plans, and scatter "
            "synchronisation for every registered kernel and baseline."
        ),
    )
    parser.add_argument(
        "--inject-fault",
        choices=sorted(FIXTURES),
        metavar="FIXTURE",
        help=(
            "run one injected-fault fixture instead of the full pass "
            f"(choices: {', '.join(sorted(FIXTURES))}); exits non-zero "
            "when the fault is caught, exit 0 would mean a blind checker"
        ),
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="list every passing check, not just violations",
    )
    args = parser.parse_args(argv)

    if args.inject_fault:
        report = run_fixture(args.inject_fault)
        print(f"injected fault {args.inject_fault!r}:")
        print(report.render(verbose=args.verbose))
        if report.ok:
            print(
                "ERROR: the checker did not flag the injected fault — "
                "the verifier is blind",
                file=sys.stderr,
            )
            return 2
        return 1

    report = verify_all()
    print(report.render(verbose=args.verbose))
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
