"""Independent audit of traces (:class:`repro.observe.tracer.Tracer`).

The recorders in :mod:`repro.observe.record` *produce* traces; this
checker re-derives nothing from them — it takes the finished trace (and,
for the cross-check, the engine timeline it claims to transcribe) and
replays the invariants every honest trace must satisfy:

* every span is well-formed (finite, non-negative duration, not before
  t=0) and every ``begin`` was matched by an ``end``;
* on any one track, two spans are either disjoint or properly nested —
  a partial overlap means the span stack was corrupted;
* against a timeline: every executed task has exactly one span (on the
  track named after its resource, over exactly its scheduled interval),
  every failed-but-retried attempt has its ``#a{k}`` span, and nothing
  else occupies the resource tracks;
* per-resource span wall-times sum to the timeline's busy time, and the
  trace makespan equals the timeline makespan, both within ``eps``;
* for phase-serial (legacy barrier) schedules, the stage envelopes tile
  ``[0, makespan]`` — their durations *sum* to the reported makespan
  within 1e-9, the acceptance criterion of the observability layer.

Violations use the shared :class:`~repro.verify.report.Violation` record
with ``checker="observe"``; ``op`` carries the offending span or task
name, ``address`` the track.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.engine.timeline import TIME_EPS, Timeline
from repro.observe.tracer import Tracer
from repro.verify.report import Violation


@dataclass
class ObserveCheckResult:
    """Outcome of auditing one trace."""

    subject: str
    spans: int
    tracks: int
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def _add(self, message: str, op: str | None = None, address: str | None = None):
        self.violations.append(
            Violation("observe", self.subject, message, op=op, address=address)
        )


def verify_trace(
    trace: Tracer,
    subject: str = "trace",
    eps: float = TIME_EPS,
) -> ObserveCheckResult:
    """Audit one trace's internal consistency (no timeline needed)."""
    result = ObserveCheckResult(subject, spans=len(trace.spans), tracks=len(trace.tracks))

    for span in trace.spans:
        if not (math.isfinite(span.start_ms) and math.isfinite(span.end_ms)):
            result._add("span has non-finite bounds", op=span.name, address=span.track)
            continue
        if span.start_ms < -eps:
            result._add(
                f"span starts before t=0 (at {span.start_ms})",
                op=span.name, address=span.track,
            )
        if span.end_ms < span.start_ms - eps:
            result._add(
                f"span ends at {span.end_ms} before its start {span.start_ms}",
                op=span.name, address=span.track,
            )

    for track, name in trace.open_spans():
        result._add("span begun but never ended", op=name, address=track)

    # nesting well-formedness: on one track, spans are disjoint or nested
    def nested(outer, inner) -> bool:
        return (
            outer.start_ms <= inner.start_ms + eps
            and outer.end_ms >= inner.end_ms - eps
        )

    for track in trace.tracks:
        spans = trace.spans_on(track)
        for prev, cur in zip(spans, spans[1:]):
            overlap = cur.start_ms < prev.end_ms - eps
            if overlap and not (nested(prev, cur) or nested(cur, prev)):
                result._add(
                    f"spans {prev.name!r} and {cur.name!r} partially overlap "
                    f"([{prev.start_ms}, {prev.end_ms}) vs "
                    f"[{cur.start_ms}, {cur.end_ms}))",
                    op=cur.name,
                    address=f"track:{track}",
                )
    return result


def verify_trace_against_timeline(
    trace: Tracer,
    timeline: Timeline,
    subject: str = "trace vs timeline",
    eps: float = TIME_EPS,
    phase_serial: bool = False,
) -> ObserveCheckResult:
    """Cross-examine a trace against the timeline it claims to transcribe.

    ``phase_serial=True`` additionally asserts the barrier-stage tiling:
    stage envelopes are contiguous from 0 and their durations sum to the
    timeline makespan (the legacy phase-serial schedule's defining
    property).
    """
    result = verify_trace(trace, subject, eps)
    resource_tracks = {span.resource.name for span in timeline.spans.values()}
    retried = {f"{a.task}#a{a.attempt}" for a in timeline.attempts}

    # 1. exactly one span per executed task, on the right track, same interval
    by_name: dict[str, list] = {}
    for span in trace.spans:
        if span.track in resource_tracks:
            by_name.setdefault(span.name, []).append(span)
    for name, tspan in timeline.spans.items():
        recorded = by_name.get(name, [])
        if not recorded:
            result._add("executed task has no trace span", op=name)
            continue
        if len(recorded) > 1:
            result._add(
                f"executed task has {len(recorded)} trace spans (want exactly 1)",
                op=name,
            )
        span = recorded[0]
        if span.track != tspan.resource.name:
            result._add(
                f"span on track {span.track!r}, task ran on "
                f"{tspan.resource.name!r}",
                op=name, address=span.track,
            )
        if abs(span.start_ms - tspan.start_ms) > eps or abs(span.end_ms - tspan.end_ms) > eps:
            result._add(
                f"span interval [{span.start_ms}, {span.end_ms}) != scheduled "
                f"[{tspan.start_ms}, {tspan.end_ms})",
                op=name, address=span.track,
            )
    for name in by_name:
        if name not in timeline.spans and name not in retried:
            result._add(
                "trace span on a resource track matches no executed task "
                "or retried attempt",
                op=name,
            )

    # 2. per-resource busy-time agreement (retry spans are aborted work,
    # which Timeline.busy_ms excludes — exclude them here too)
    trace_busy: dict[str, float] = {}
    for span in trace.spans:
        if span.track in resource_tracks and span.cat != "retry":
            trace_busy[span.track] = trace_busy.get(span.track, 0.0) + span.duration_ms
    for res, busy in sorted(timeline.busy_ms().items()):
        recorded_busy = trace_busy.get(res, 0.0)
        if abs(recorded_busy - busy) > eps:
            result._add(
                f"trace busy time {recorded_busy} != timeline busy time "
                f"{busy}",
                address=f"resource:{res}",
            )

    # 3. makespan agreement
    if abs(trace.makespan_ms() - timeline.total_ms) > eps:
        result._add(
            f"trace makespan {trace.makespan_ms()} != timeline makespan "
            f"{timeline.total_ms}"
        )

    # 4. phase-serial tiling: stage envelope durations sum to the makespan
    if phase_serial:
        envelopes = sorted(timeline.stage_spans().values())
        if not envelopes:
            result._add("phase-serial audit requested but timeline has no stages")
        else:
            if abs(envelopes[0][0]) > eps:
                result._add(
                    f"first stage starts at {envelopes[0][0]}, not 0"
                )
            for (_, prev_hi), (lo, _) in zip(envelopes, envelopes[1:]):
                if abs(lo - prev_hi) > eps:
                    result._add(
                        f"stage envelopes not contiguous: gap between "
                        f"{prev_hi} and {lo}"
                    )
            total = sum(hi - lo for lo, hi in envelopes)
            if abs(total - timeline.total_ms) > eps:
                result._add(
                    f"stage envelope durations sum to {total} != makespan "
                    f"{timeline.total_ms}"
                )
    return result
