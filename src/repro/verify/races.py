"""Happens-before race detection over simulated memory traces (paper §3.2.1).

The hierarchical bucket scatter (Alg. 3) is only correct because every
same-address conflicting access is either atomic or separated by a block
barrier; SZKP's bucket-conflict analysis identifies exactly this as the
central correctness risk of Pippenger-style GPU designs.  This module
rebuilds the happens-before relation from a :class:`~repro.gpu.trace.
MemoryTrace` and flags every unsynchronised conflicting pair.

The memory model:

* *program order* — accesses of one (block, thread) are ordered;
* *barriers* — a block-wide barrier orders everything its block did before
  it with everything the block does after (``epoch`` in the trace);
* *atomics* — two atomic RMWs to the same address never race with each
  other (the hardware serialises them); an atomic against a plain access
  still races;
* *warp scope* — optionally, accesses of one warp are treated as
  lockstep-ordered (the legacy warp-synchronous assumption; off by
  default, since post-Volta independent thread scheduling voids it);
* *address spaces* — shared memory is per block: identical addresses in
  different blocks are distinct locations; global memory is device-wide,
  and no inter-block ordering exists short of kernel boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bucket_sum import bucket_sum
from repro.core.config import DistMsmConfig
from repro.core.scatter import hierarchical_scatter, naive_scatter
from repro.gpu.device import SimulatedGpu
from repro.gpu.specs import NVIDIA_A100, GpuSpec
from repro.gpu.trace import MemoryEvent, MemoryTrace, Space
from repro.verify.report import Violation


@dataclass
class RaceCheckResult:
    """Outcome of race-checking one trace."""

    subject: str
    violations: list[Violation] = field(default_factory=list)
    events: int = 0
    locations: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


def _location_key(event: MemoryEvent) -> tuple:
    if event.space is Space.SHARED:
        # shared memory is physically per block
        return (event.space, event.block, event.region, event.address)
    return (event.space, event.region, event.address)


def _ordered(a: MemoryEvent, b: MemoryEvent, warp_lockstep: bool) -> bool:
    """Happens-before between two accesses (``a.seq < b.seq``)."""
    if a.block == b.block:
        if a.thread == b.thread:
            return True  # program order
        if a.epoch != b.epoch:
            return True  # a block barrier fell between them
        if warp_lockstep and a.warp == b.warp:
            return True
    return False


def detect_races(
    trace: MemoryTrace,
    subject: str = "trace",
    warp_lockstep: bool = False,
    max_violations_per_location: int = 1,
) -> RaceCheckResult:
    """Find every unsynchronised same-address conflicting access pair.

    Reports at most ``max_violations_per_location`` violations per memory
    location (one racing pair is enough to condemn a location; the full
    pair count would drown the diagnostic).
    """
    result = RaceCheckResult(subject=subject, events=len(trace.events))
    by_location: dict[tuple, list[MemoryEvent]] = {}
    for event in trace.events:
        by_location.setdefault(_location_key(event), []).append(event)
    result.locations = len(by_location)

    for events in by_location.values():
        if len(events) < 2:
            continue
        reported = 0
        for j in range(1, len(events)):
            b = events[j]
            for i in range(j):
                a = events[i]
                if not (a.kind.writes or b.kind.writes):
                    continue  # two reads never conflict
                if a.block == b.block and a.thread == b.thread:
                    continue
                if a.atomic and b.atomic:
                    continue
                if _ordered(a, b, warp_lockstep):
                    continue
                result.violations.append(
                    Violation(
                        checker="race",
                        subject=subject,
                        message=(
                            f"unsynchronised {a.kind.value}"
                            f"{'' if a.atomic else ' (plain)'} by block "
                            f"{a.block} thread {a.thread} conflicts with "
                            f"{b.kind.value}"
                            f"{'' if b.atomic else ' (plain)'} by block "
                            f"{b.block} thread {b.thread} in the same "
                            "barrier epoch"
                        ),
                        address=a.location(),
                    )
                )
                reported += 1
                if reported >= max_violations_per_location:
                    break
            if reported >= max_violations_per_location:
                break
    return result


# -- trace builders for the shipped configurations ---------------------------


def trace_naive_scatter(
    digits: list[int],
    num_buckets: int,
    use_atomics: bool = True,
    spec: GpuSpec = NVIDIA_A100,
    threads_per_block: int = 1024,
) -> MemoryTrace:
    """Run the naive scatter under a tracer and return its trace."""
    tracer = MemoryTrace()
    gpu = SimulatedGpu(spec, tracer=tracer)
    naive_scatter(
        gpu,
        digits,
        num_buckets,
        threads_per_block=threads_per_block,
        use_atomics=use_atomics,
    )
    return tracer


def trace_hierarchical_scatter(
    digits: list[int],
    num_buckets: int,
    config: DistMsmConfig | None = None,
    spec: GpuSpec = NVIDIA_A100,
) -> MemoryTrace:
    """Run the hierarchical scatter under a tracer and return its trace."""
    config = config or DistMsmConfig(threads_per_block=32, points_per_thread=4)
    tracer = MemoryTrace()
    gpu = SimulatedGpu(spec, tracer=tracer)
    hierarchical_scatter(gpu, digits, num_buckets, config)
    return tracer


def trace_bucket_sum(
    buckets: list[list[int]],
    points: list,
    curve,
    n_threads: int,
) -> MemoryTrace:
    """Run the parallel bucket-sum under a tracer and return its trace."""
    tracer = MemoryTrace()
    bucket_sum(buckets, points, curve, n_threads, tracer=tracer)
    return tracer
