"""Violation records and report aggregation for the static verifiers.

Every checker in :mod:`repro.verify` reports problems as
:class:`Violation` values rather than raising: a verification run collects
*all* violations across all registered kernels and baselines, prints each
with enough context to act on (which checker, which subject, which op or
address), and the CLI maps a non-empty report to a non-zero exit status.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Violation:
    """One broken invariant found by a checker.

    Attributes
    ----------
    checker:
        ``"schedule"`` | ``"spill"`` | ``"race"`` — which pass found it.
    subject:
        What was being verified (a DAG/schedule name, a baseline name, a
        scatter configuration).
    message:
        Human-readable description of the broken invariant.
    op:
        The operation name at fault, when the checker can pin one down
        (schedule and spill violations).
    address:
        The memory location at fault, when one exists (race violations and
        shared-memory overflows), e.g. ``"global:bucket_sizes[3]"``.
    """

    checker: str
    subject: str
    message: str
    op: str | None = None
    address: str | None = None

    def __str__(self) -> str:
        where = []
        if self.op is not None:
            where.append(f"op {self.op}")
        if self.address is not None:
            where.append(f"address {self.address}")
        loc = f" ({', '.join(where)})" if where else ""
        return f"[{self.checker}] {self.subject}: {self.message}{loc}"


@dataclass
class VerificationReport:
    """Outcome of one verification run: every check run, every violation."""

    checks: list[str] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add_check(self, description: str) -> None:
        self.checks.append(description)

    def extend(self, violations: list[Violation]) -> None:
        self.violations.extend(violations)

    def merge(self, other: "VerificationReport") -> "VerificationReport":
        self.checks.extend(other.checks)
        self.violations.extend(other.violations)
        return self

    def render(self, verbose: bool = False) -> str:
        lines = []
        if verbose or self.ok:
            for check in self.checks:
                lines.append(f"  ok: {check}")
        for violation in self.violations:
            lines.append(f"  VIOLATION {violation}")
        status = "PASS" if self.ok else "FAIL"
        lines.append(
            f"{status}: {len(self.checks)} checks, {len(self.violations)} violations"
        )
        return "\n".join(lines)
