"""Injected-fault fixtures: artifacts each checker must reject.

A verifier that has never seen a violation is itself unverified.  Each
fixture here manufactures one specific, realistic fault — the kind a
regression in the producing layer would introduce — and the test suite
(and ``python -m repro.verify --inject-fault``) asserts the matching
checker rejects it with a diagnostic naming the offending op or address.

* ``register-peak`` — a schedule whose producer under-reports its register
  peak (a broken scheduler DP would do exactly this);
* ``use-before-reload`` — a spill plan missing one reload, so an op
  consumes a value that is still in shared memory (a broken Belady victim
  policy or an off-by-one in the reload placement);
* ``scatter-race`` — the naive scatter with its bucket-counter atomic
  replaced by a plain read-modify-write (a missed ``atomicAdd`` in a new
  scatter variant);
* ``timeline-overlap`` — an engine schedule whose CPU resource runs two
  bucket-reduces at once and whose makespan claim hides the second one (a
  broken resource queue in a new timeline mode would produce exactly this);
* ``post-mortem-schedule`` — a recovered timeline that keeps scheduling a
  task on a GPU after its fail-stop time (a re-planner that forgot to
  remove the dead GPU from the survivor set);
* ``backoff-violation`` — a retried transfer whose retry fires before the
  exponential backoff allows (a broken retry queue or an attempt counter
  stuck at 1);
* ``serve-before-arrival`` — a serving run whose timeline starts a
  request's GPU stage before the request arrived AND executes a request
  the admission controller shed (a batcher reading the trace instead of
  the queue would produce exactly this);
* ``trace-drift`` — a trace whose recorder stretched one span past its
  scheduled interval, so busy time and makespan no longer reconcile with
  the engine timeline (a recorder applying a unit conversion twice would
  produce exactly this);
* ``determinism-lint`` — source with an unseeded RNG, a wall-clock read,
  and a hash-ordered set comprehension feeding an exported list (the
  exact hygiene regressions a hurried new exporter would introduce);
* ``unit-mixing`` — source adding a ``_ms`` quantity to a ``_bytes``
  quantity (a cost model summing a latency and a payload size);
* ``interval-overflow`` — the PADD DAG abstractly interpreted with a
  modulus wider than its claimed limb allocation, so the Montgomery
  reduction sum escapes ``2pR`` (a curve registered with the wrong limb
  count would do exactly this);
* ``plan-deadlock`` — a task emission whose cross-stream dependencies
  deadlock under strict in-order CUDA streams even though the
  readiness-FIFO simulator would happily reorder around them (a batcher
  submitting out of topological order).
* ``cluster-double-serve`` — a cluster run whose fleet served one request
  on two nodes at once: a real 2-node run with one node's record replayed
  into the other node's result (a router retrying a dispatch it wrongly
  believed lost — or a failover that forgot the original node survived —
  would produce exactly this);
* ``forged-result`` — a Byzantine execution whose audit trail was doctored
  to launder the cheater's chunk: the rejected verdict rewritten to
  ``accepted`` and the consumed-slot map pointed at the forged delivery
  (an orchestrator consuming results before their response checks — or a
  cheating dispatcher — would produce exactly this).
"""

from __future__ import annotations

from repro.engine.faults import FaultPlan, GpuFailure, RetryPolicy, TransferError
from repro.engine.resources import GPU_COMPUTE, HOST_CPU, TRANSFER, Resource
from repro.engine.timeline import Task, TaskAttempt, TaskSpan, Timeline, simulate
from repro.kernels.dag import build_pacc_dag
from repro.kernels.scheduler import find_optimal_schedule
from repro.kernels.spill import SpillPlan, plan_spills
from repro.verify.faultcheck import FaultCheckResult, verify_fault_timeline
from repro.verify.races import RaceCheckResult, detect_races, trace_naive_scatter
from repro.verify.report import VerificationReport
from repro.verify.schedule import ScheduleCheckResult, verify_schedule
from repro.verify.spillcheck import SpillCheckResult, verify_spill_plan
from repro.verify.timelinecheck import TimelineCheckResult, verify_timeline


def broken_schedule_check() -> ScheduleCheckResult:
    """A schedule claiming a register peak below what it actually reaches.

    The PACC written order peaks at 9 live big integers; a producer
    claiming the optimal order's 7 for it must be caught.
    """
    dag = build_pacc_dag()
    return verify_schedule(
        dag,
        order=None,  # the written order, which peaks at 9
        claimed_peak=7,
        subject="PACC (written order, claimed peak 7)",
    )


def broken_spill_check() -> SpillCheckResult:
    """A spill plan with one reload deleted: use before reload.

    Plans PACC at the paper's budget of 5, then drops the first reload so
    a later op consumes the still-spilled value.
    """
    dag = build_pacc_dag()
    order = list(find_optimal_schedule(dag).order)
    plan = plan_spills(dag, order, register_budget=5)
    moves = list(plan.moves)
    victim = next(i for i, (_, kind, _v) in enumerate(moves) if kind == "reload")
    del moves[victim]
    broken = SpillPlan(
        register_budget=plan.register_budget,
        transfers=plan.transfers - 1,
        peak_shm_bigints=plan.peak_shm_bigints,
        peak_registers=plan.peak_registers,
        moves=moves,
    )
    return verify_spill_plan(
        dag, order, broken, subject="PACC spill@5 (reload deleted)"
    )


def broken_scatter_check() -> RaceCheckResult:
    """The naive scatter with plain RMWs on the shared bucket counters."""
    digits = [1 + (i % 3) for i in range(96)]
    trace = trace_naive_scatter(digits, num_buckets=4, use_atomics=False)
    return detect_races(trace, subject="naive scatter without atomics")


def broken_timeline_check() -> TimelineCheckResult:
    """An engine schedule with a double-booked CPU and a stale makespan.

    Two MSMs' bucket-reduces run concurrently on the one host CPU —
    impossible on a serial resource — and the reduce of the second MSM
    starts before its own GPU stage has finished; the claimed makespan
    also ignores the late finisher.
    """
    gpu = Resource("gpu", GPU_COMPUTE)
    cpu = Resource("cpu", HOST_CPU)
    tasks = (
        Task("msm0:gpu", gpu, 4.0),
        Task("msm1:gpu", gpu, 4.0),
        Task("msm0:reduce", cpu, 3.0, deps=("msm0:gpu",)),
        Task("msm1:reduce", cpu, 3.0, deps=("msm1:gpu",)),
    )
    spans = {
        "msm0:gpu": TaskSpan("msm0:gpu", gpu, 0.0, 4.0),
        "msm1:gpu": TaskSpan("msm1:gpu", gpu, 4.0, 8.0),
        "msm0:reduce": TaskSpan("msm0:reduce", cpu, 4.0, 7.0),
        # overlaps msm0:reduce on the CPU and precedes its own dependency
        "msm1:reduce": TaskSpan("msm1:reduce", cpu, 5.0, 8.0),
    }
    broken = Timeline(tasks=tasks, spans=spans, total_ms=7.0)
    return verify_timeline(broken, subject="batch of 2 MSMs (double-booked CPU)")


def broken_recovery_check() -> FaultCheckResult:
    """A recovered schedule that still uses a GPU after it died.

    GPU 0 fail-stops at t=5 but the "recovered" timeline schedules its
    round-1 bucket-sum on it at t=6 — the survivor set was never pruned.
    """
    gpu0 = Resource("gpu0", GPU_COMPUTE, 0)
    gpu1 = Resource("gpu1", GPU_COMPUTE, 1)
    tasks = (
        Task("msm:r0:sum:g0", gpu0, 3.0),
        Task("msm:r0:sum:g1", gpu1, 3.0),
        Task("msm:r1:sum:g0", gpu0, 3.0),
    )
    spans = {
        "msm:r0:sum:g0": TaskSpan("msm:r0:sum:g0", gpu0, 0.0, 3.0),
        "msm:r0:sum:g1": TaskSpan("msm:r0:sum:g1", gpu1, 0.0, 3.0),
        # scheduled on gpu0 a full millisecond after its death at t=5
        "msm:r1:sum:g0": TaskSpan("msm:r1:sum:g0", gpu0, 6.0, 9.0),
    }
    broken = Timeline(tasks=tasks, spans=spans, total_ms=9.0)
    return verify_fault_timeline(
        broken,
        FaultPlan.of(GpuFailure(5.0, 0)),
        subject="recovery onto a dead GPU",
    )


def broken_backoff_check() -> FaultCheckResult:
    """A retried transfer that restarts before its backoff window closes.

    The transfer fails at t=2 under a 1 ms base backoff, so the retry may
    start no earlier than t=3 — but the broken queue re-issues it at 2.1.
    """
    link = Resource("node0-link", TRANSFER, 0)
    tasks = (Task("msm:r0:transfer:g0", link, 1.0),)
    spans = {
        "msm:r0:transfer:g0": TaskSpan("msm:r0:transfer:g0", link, 2.1, 3.1),
    }
    attempts = (
        TaskAttempt("msm:r0:transfer:g0", link, 1.0, 2.0, attempt=1, retry_at_ms=2.1),
    )
    broken = Timeline(tasks=tasks, spans=spans, total_ms=3.1, attempts=attempts)
    return verify_fault_timeline(
        broken,
        FaultPlan.of(TransferError(0, 2.0)),
        retry=RetryPolicy(max_retries=3, backoff_base_ms=1.0),
        subject="retry before backoff",
    )


def broken_serving_check() -> "ServeCheckResult":
    """A serving run that executes early and executes the shed.

    Request 0 arrives at t=5 but its GPU stage is scheduled at t=3 — the
    batcher consumed the trace instead of waiting for the arrival — and
    request 1, shed as queue-full, still got its tasks onto the timeline.
    """
    from repro.curves.params import curve_by_name
    from repro.serve.admission import SHED_QUEUE_FULL, ShedEvent
    from repro.serve.metrics import RequestRecord
    from repro.serve.queue import ProofRequest
    from repro.verify.servecheck import ServeCheckResult, verify_serving

    curve = curve_by_name("BLS12-381")
    requests = [
        ProofRequest(0, curve, 1 << 12, arrival_ms=5.0),
        ProofRequest(1, curve, 1 << 12, arrival_ms=5.5),
    ]
    gpu = Resource("gpu0", GPU_COMPUTE, 0)
    cpu = Resource("cpu", HOST_CPU)
    tasks = (
        Task("req0.a0:gpu0", gpu, 2.0),
        Task("req0.a0:reduce", cpu, 1.0, deps=("req0.a0:gpu0",)),
        Task("req1.a0:gpu0", gpu, 2.0),
        Task("req1.a0:reduce", cpu, 1.0, deps=("req1.a0:gpu0",)),
    )
    spans = {
        # starts two milliseconds before the request arrives
        "req0.a0:gpu0": TaskSpan("req0.a0:gpu0", gpu, 3.0, 5.0),
        "req0.a0:reduce": TaskSpan("req0.a0:reduce", cpu, 5.0, 6.0),
        # the shed request executes anyway
        "req1.a0:gpu0": TaskSpan("req1.a0:gpu0", gpu, 6.0, 8.0),
        "req1.a0:reduce": TaskSpan("req1.a0:reduce", cpu, 8.0, 9.0),
    }
    timeline = Timeline(tasks=tasks, spans=spans, total_ms=9.0)
    records = [
        RequestRecord(
            req_id=0, label="req", n=1 << 12, arrival_ms=5.0, formed_ms=5.0,
            admit_ms=5.0, start_ms=3.0, complete_ms=6.0, batch_id=0, group=0,
        )
    ]
    shed = [ShedEvent(requests[1], 5.5, SHED_QUEUE_FULL)]
    return verify_serving(
        requests, records, shed, timeline,
        subject="serving run (pre-arrival start, shed executed)",
    )


def broken_trace_check() -> "ObserveCheckResult":
    """A transcription that drifted: one span stretched past its schedule.

    The trace of a two-GPU timeline has gpu1's bucket-sum span silently
    lengthened by half a millisecond, so its interval, the resource's
    busy time, and the trace makespan all disagree with the engine.
    """
    from repro.observe import Span, Tracer, record_timeline
    from repro.verify.observecheck import ObserveCheckResult, verify_trace_against_timeline

    gpu0 = Resource("gpu0", GPU_COMPUTE, 0)
    gpu1 = Resource("gpu1", GPU_COMPUTE, 1)
    timeline = simulate(
        (
            Task("msm:scatter:g0", gpu0, 2.0),
            Task("msm:scatter:g1", gpu1, 2.0),
            Task("msm:sum:g1", gpu1, 3.0, deps=("msm:scatter:g1",)),
        )
    )
    trace = Tracer("drifted")
    record_timeline(trace, timeline)
    victim = next(i for i, s in enumerate(trace.spans) if s.name == "msm:sum:g1")
    s = trace.spans[victim]
    # the drift: +0.5 ms appended to the recorded end
    trace.spans[victim] = Span(s.name, s.track, s.start_ms, s.end_ms + 0.5, s.cat, dict(s.args))
    return verify_trace_against_timeline(
        trace, timeline, subject="trace with a stretched span"
    )


def broken_determinism_check() -> "StaticCheckResult":
    """Source with the three classic determinism regressions.

    An unseeded ``random.random()``, a ``time.time()`` timestamp, and a
    set comprehension iterated into an exported list without ``sorted``
    — each must surface as its own finding.
    """
    import textwrap

    from repro.analyze import analyze_source
    from repro.verify.staticcheck import check_findings

    source = textwrap.dedent(
        """
        import random
        import time

        def export_rows(tags):
            noise = random.random()
            stamp = time.time()
            seen = {t.strip() for t in tags}
            return [(t, noise, stamp) for t in seen]
        """
    )
    findings = analyze_source(
        source, path="<unseeded-exporter>", families=("determinism",)
    )
    return check_findings(findings, "determinism lint (unseeded exporter)")


def broken_units_check() -> "StaticCheckResult":
    """Source that adds a millisecond quantity to a byte count."""
    import textwrap

    from repro.analyze import analyze_source
    from repro.verify.staticcheck import check_findings

    source = textwrap.dedent(
        """
        def transfer_budget(latency_ms, payload_bytes):
            total_ms = latency_ms + payload_bytes
            return total_ms
        """
    )
    findings = analyze_source(
        source, path="<mixed-cost-model>", families=("units",)
    )
    return check_findings(findings, "unit dataflow (ms + bytes)")


def broken_interval_check() -> "StaticCheckResult":
    """The PADD DAG interpreted with a modulus wider than its limbs.

    BLS12-381's 381-bit ``p`` squeezed into an 8-limb (256-bit)
    Montgomery pipeline: ``R = 2^256 < p``, so the reduction sum
    ``t = c + m*n`` escapes ``2pR`` and one conditional subtraction can
    no longer bound ``u = t/R`` — the interpreter must refuse the claim.
    """
    from types import SimpleNamespace

    from repro.analyze.intervals import interpret_dag
    from repro.curves.params import curve_by_name
    from repro.kernels.dag import build_padd_dag
    from repro.verify.staticcheck import check_findings

    real = curve_by_name("BLS12-381")
    truncated = SimpleNamespace(
        name="BLS12-381/8-limb", p=real.p, num_limbs=8
    )
    findings = interpret_dag(
        build_padd_dag(), truncated, label="<PADD @ truncated R>"
    )
    return check_findings(findings, "interval bounds with p >= R")


def broken_plan_check() -> "StaticCheckResult":
    """A cross-stream emission that only in-order streams deadlock on.

    Each GPU stream's first-submitted task depends on the *other*
    stream's second-submitted task: the dependency graph is acyclic, so
    the readiness-FIFO simulator resolves it — but strict in-order CUDA
    streams cannot start either second task before their stuck first
    one, and the pre-flight model checker must reject the emission.
    """
    from repro.analyze.modelcheck import PlanError, check_plan
    from repro.verify.staticcheck import check_findings

    gpu0 = Resource("gpu0", GPU_COMPUTE, 0)
    gpu1 = Resource("gpu1", GPU_COMPUTE, 1)
    tasks = [
        Task("a0", gpu0, 1.0, deps=("b1",)),
        Task("a1", gpu0, 1.0),
        Task("b0", gpu1, 1.0, deps=("a1",)),
        Task("b1", gpu1, 1.0),
    ]
    try:
        result = check_plan(tasks, label="<cross-stream emission>")
    except PlanError as exc:
        return check_findings(exc.findings, "pre-flight (FIFO deadlock)")
    return check_findings(
        list(result.findings), "pre-flight (FIFO deadlock, not raised)"
    )


def broken_integrity_check() -> "IntegrityCheckResult":
    """A Byzantine execution whose audit trail launders the forgery.

    Runs a real toy-curve execution with one wrong-result cheater — the
    response check rejects the forged chunk and quarantines the GPU —
    then doctors the attached report the way a broken (or dishonest)
    orchestrator would: the rejected verdict becomes ``accepted`` and the
    consumed-slot map is rewritten to consume the cheater's delivery.
    The integrity checker must refuse the laundered trail.
    """
    from dataclasses import replace

    from repro.core.config import DistMsmConfig
    from repro.core.distmsm import DistMsm
    from repro.curves.sampling import msm_instance
    from repro.curves.toy import toy_curve
    from repro.engine.faults import ByzantineWorker
    from repro.faults.byzantine import VERDICT_ACCEPTED, VERDICT_REJECTED
    from repro.gpu.cluster import MultiGpuSystem
    from repro.verify.integritycheck import IntegrityCheckResult, verify_msm_integrity

    toy = toy_curve()
    scalars, points = msm_instance(toy, 32, seed=41)
    engine = DistMsm(
        MultiGpuSystem(4),
        DistMsmConfig(window_size=4, threads_per_block=32, points_per_thread=4),
    )
    honest = engine.execute(scalars, points, toy,
                            faults=FaultPlan.of(ByzantineWorker(1, seed=5)))
    report = honest.byzantine_report
    assert report is not None and report.caught
    forged = next(c for c in report.chunks if c.verdict == VERDICT_REJECTED)
    # the laundering: accept the forgery, consume it, forget the quarantine
    doctored = replace(
        report,
        chunks=tuple(
            replace(c, verdict=VERDICT_ACCEPTED, verified_at_ms=0.0)
            if c is forged else c
            for c in report.chunks
        ),
        consumed=tuple(
            (slot, forged.round, forged.gpu) if slot in forged.slots
            else (slot, rnd, gpu)
            for slot, rnd, gpu in report.consumed
        ),
        quarantined=(),
        rejected=0,
    )
    laundered = replace(honest, byzantine_report=doctored)
    return verify_msm_integrity(
        laundered, subject="Byzantine run (laundered audit trail)"
    )


def broken_cluster_check() -> "ClusterCheckResult":
    """A cluster run where one request was served by two nodes at once.

    Runs a real 2-node cluster over a small workload, then replays one of
    node 0's request records into node 1's result — the distributed
    exactly-once claim is now false and the cluster auditor must say so.
    """
    from dataclasses import replace

    from repro.cluster import ProofCluster
    from repro.core.config import DistMsmConfig
    from repro.curves.params import curve_by_name
    from repro.serve.queue import ProofRequest
    from repro.verify.clustercheck import verify_cluster

    curve = curve_by_name("BLS12-381")
    requests = [
        ProofRequest(
            i, curve, 1 << 14, arrival_ms=0.5 * i,
            tenant="acme" if i % 2 else "zkmart",
        )
        for i in range(4)
    ]
    cluster = ProofCluster(2, gpus_per_node=1, config=DistMsmConfig(window_size=10))
    result = cluster.serve(requests)
    victim = result.node_results[0].records[0]
    # the double-serve: the same request "also" completed on node 1
    result.node_results[1].records.append(replace(victim))
    return verify_cluster(result, subject="2-node cluster (double-served request)")


#: fixture name -> callable returning a checker result that must FAIL
FIXTURES = {
    "register-peak": broken_schedule_check,
    "use-before-reload": broken_spill_check,
    "scatter-race": broken_scatter_check,
    "timeline-overlap": broken_timeline_check,
    "post-mortem-schedule": broken_recovery_check,
    "backoff-violation": broken_backoff_check,
    "serve-before-arrival": broken_serving_check,
    "trace-drift": broken_trace_check,
    "determinism-lint": broken_determinism_check,
    "unit-mixing": broken_units_check,
    "interval-overflow": broken_interval_check,
    "plan-deadlock": broken_plan_check,
    "cluster-double-serve": broken_cluster_check,
    "forged-result": broken_integrity_check,
}


def run_fixture(name: str) -> VerificationReport:
    """Run one injected-fault fixture as a report (violations expected)."""
    if name not in FIXTURES:
        raise KeyError(
            f"unknown fixture {name!r}; choose from {sorted(FIXTURES)}"
        )
    checked = FIXTURES[name]()
    report = VerificationReport()
    report.add_check(f"fixture {name}: ran its checker")
    report.extend(checked.violations)
    return report
