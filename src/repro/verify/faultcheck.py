"""Independent audit of recovered fault timelines (DESIGN.md §9).

:func:`verify_timeline` checks the generic schedule invariants; this
checker audits the *fault semantics* of a timeline simulated under a
:class:`~repro.engine.faults.FaultPlan`:

* **no post-mortem scheduling** — no span (or retry attempt) may overlap a
  resource past its fail-stop time, and nothing at all may start on it
  afterwards; the same applies to every resource a task required alive;
* **backoff spacing** — retry attempt ``k`` of a task must not restart
  before ``fail_time + backoff_base_ms * 2**(k-1)``, attempt numbers are
  dense from 1, and no task exceeds ``max_retries`` retries;
* **honest makespan** — the claimed total must not be *less* than any
  recorded span end, failure time, or aborted attempt end (losing work
  must never make the run look faster).

Violations use the shared :class:`~repro.verify.report.Violation` record
with ``checker="faults"``; ``op`` carries the offending task name.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.faults import FaultPlan, RetryPolicy
from repro.engine.timeline import TIME_EPS, Timeline
from repro.verify.report import Violation


@dataclass
class FaultCheckResult:
    """Outcome of auditing one recovered timeline."""

    subject: str
    tasks: int
    failures: int
    attempts: int
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def _add(self, message: str, op: str | None = None, address: str | None = None):
        self.violations.append(
            Violation("faults", self.subject, message, op=op, address=address)
        )


def verify_fault_timeline(
    timeline: Timeline,
    faults: FaultPlan,
    retry: RetryPolicy | None = None,
    subject: str = "fault-timeline",
    eps: float = TIME_EPS,
) -> FaultCheckResult:
    """Audit the fault semantics of a timeline simulated under ``faults``."""
    policy = retry if retry is not None else RetryPolicy()
    deaths = faults.death_times()
    by_name = {task.name: task for task in timeline.tasks}
    result = FaultCheckResult(
        subject,
        tasks=len(timeline.tasks),
        failures=len(timeline.failures),
        attempts=len(timeline.attempts),
    )

    # 1. no post-mortem scheduling on (or requiring) a dead resource
    occupancy = [
        (span.task, span.resource.name, span.start_ms, span.end_ms)
        for span in timeline.spans.values()
    ] + [
        (f"{a.task}#attempt{a.attempt}", a.resource.name, a.start_ms, a.end_ms)
        for a in timeline.attempts
    ]
    for label, res, start, end in occupancy:
        task = by_name.get(label.split("#", 1)[0])
        needs = (res, *(task.requires_alive if task is not None else ()))
        for needed in needs:
            death = deaths.get(needed)
            if death is None:
                continue
            if start >= death - eps:
                result._add(
                    f"scheduled on/with {needed!r} at {start} after its "
                    f"death at {death}",
                    op=label,
                    address=f"resource:{needed}",
                )
            elif end > death + eps:
                result._add(
                    f"runs past the death of {needed!r} at {death} "
                    f"(span [{start}, {end}))",
                    op=label,
                    address=f"resource:{needed}",
                )

    # 2. retries respect exponential backoff and the retry budget
    by_task: dict[str, list] = {}
    for a in timeline.attempts:
        by_task.setdefault(a.task, []).append(a)
    for name, attempts in sorted(by_task.items()):
        attempts.sort(key=lambda a: a.attempt)
        if attempts[-1].attempt > policy.max_retries:
            result._add(
                f"{attempts[-1].attempt} failed attempts exceed "
                f"max_retries={policy.max_retries}",
                op=name,
            )
        for i, a in enumerate(attempts, start=1):
            if a.attempt != i:
                result._add(
                    f"attempt numbering is not dense (expected {i}, "
                    f"got {a.attempt})",
                    op=name,
                )
                break
        for a in attempts:
            earliest = a.end_ms + policy.delay_ms(a.attempt)
            if a.retry_at_ms < earliest - eps:
                result._add(
                    f"retry after attempt {a.attempt} scheduled at "
                    f"{a.retry_at_ms}, before backoff allows {earliest}",
                    op=name,
                )
        # the surviving execution (or next attempt) must wait for the backoff
        for a, nxt in zip(attempts, attempts[1:]):
            if nxt.start_ms < a.retry_at_ms - eps:
                result._add(
                    f"attempt {nxt.attempt} starts at {nxt.start_ms}, before "
                    f"the scheduled retry time {a.retry_at_ms}",
                    op=name,
                )
        final = timeline.spans.get(name)
        if final is not None and final.start_ms < attempts[-1].retry_at_ms - eps:
            result._add(
                f"final execution starts at {final.start_ms}, before the "
                f"scheduled retry time {attempts[-1].retry_at_ms}",
                op=name,
            )
        if final is None and timeline.failure_for(name) is None:
            result._add("retried task neither completed nor failed", op=name)

    # 3. honest makespan: aborted work may not be dropped from the claim
    floor = max(
        (
            *(s.end_ms for s in timeline.spans.values()),
            *(f.at_ms for f in timeline.failures),
            *(a.end_ms for a in timeline.attempts),
        ),
        default=0.0,
    )
    if timeline.total_ms < floor - eps:
        result._add(
            f"claimed makespan {timeline.total_ms} hides work that ran "
            f"until {floor}"
        )
    return result
