"""Independent audit of engine schedules (:class:`repro.engine.timeline.Timeline`).

The event-loop in :mod:`repro.engine.timeline` *constructs* schedules; this
checker re-derives nothing from it — it takes the finished artifact (tasks
with their dependency edges, plus the claimed spans and makespan) and
replays the invariants every valid schedule must satisfy:

* every task got exactly one span, with the task's duration;
* no task starts before every dependency has ended;
* no resource runs two tasks at once (they are serial units);
* the claimed makespan equals the latest span end.

Fault-aware: pass the :class:`~repro.engine.faults.FaultPlan` the timeline
was simulated under and the checker scales expected durations by straggler
slowdowns, exempts failed tasks from the coverage rule (their absence is
the point), counts retry attempts as resource occupancy, and includes
failures/attempts in the makespan claim.  The fault-*specific* rules (no
post-mortem scheduling, backoff spacing) live in
:mod:`repro.verify.faultcheck`.

Violations use the shared :class:`~repro.verify.report.Violation` record
with ``checker="timeline"``; ``op`` carries the offending task name.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.faults import FaultPlan
from repro.engine.timeline import TIME_EPS, TaskSpan, Timeline
from repro.verify.report import Violation


@dataclass
class TimelineCheckResult:
    """Outcome of auditing one schedule."""

    subject: str
    tasks: int
    resources: int
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def _add(self, message: str, op: str | None = None, address: str | None = None):
        self.violations.append(
            Violation("timeline", self.subject, message, op=op, address=address)
        )


def verify_timeline(
    timeline: Timeline,
    subject: str = "timeline",
    eps: float = TIME_EPS,
    faults: FaultPlan | None = None,
) -> TimelineCheckResult:
    """Audit one scheduled timeline against the schedule invariants."""
    spans = timeline.spans
    by_name = {task.name: task for task in timeline.tasks}
    resources = {span.resource.name for span in spans.values()}
    result = TimelineCheckResult(subject, tasks=len(timeline.tasks), resources=len(resources))
    slowdowns = faults.slowdowns() if faults is not None else {}
    failed = {f.task for f in timeline.failures}

    # 1. span coverage and durations
    for name in spans:
        if name not in by_name:
            result._add(f"span for unknown task {name!r}", op=name)
    for task in timeline.tasks:
        span = spans.get(task.name)
        if span is None:
            if task.name not in failed:
                result._add("task has no span (never scheduled)", op=task.name)
            continue
        if task.name in failed:
            result._add(
                "task both completed and failed (double accounting)", op=task.name
            )
        if span.start_ms < -eps:
            result._add(f"starts before t=0 (at {span.start_ms})", op=task.name)
        expected = task.duration_ms * slowdowns.get(span.resource.name, 1.0)
        if abs(span.duration_ms - expected) > eps:
            result._add(
                f"span duration {span.duration_ms} != task duration "
                f"{expected}",
                op=task.name,
            )

    # 2. dependency ordering
    for task in timeline.tasks:
        span = spans.get(task.name)
        if span is None:
            continue
        for dep in task.deps:
            dep_span = spans.get(dep)
            if dep_span is None:
                result._add(f"dependency {dep!r} has no span", op=task.name)
            elif span.start_ms < dep_span.end_ms - eps:
                result._add(
                    f"starts at {span.start_ms} before dependency {dep!r} "
                    f"ends at {dep_span.end_ms}",
                    op=task.name,
                )

    # 3. resource exclusivity (serial units); retry attempts occupy too
    by_resource: dict[str, list] = {}
    for span in spans.values():
        by_resource.setdefault(span.resource.name, []).append(span)
    for attempt in timeline.attempts:
        by_resource.setdefault(attempt.resource.name, []).append(
            TaskSpan(
                f"{attempt.task}#attempt{attempt.attempt}",
                attempt.resource,
                attempt.start_ms,
                attempt.end_ms,
                "",
            )
        )
    for res, res_spans in sorted(by_resource.items()):
        res_spans.sort(key=lambda s: (s.start_ms, s.end_ms, s.task))
        for prev, cur in zip(res_spans, res_spans[1:]):
            if cur.start_ms < prev.end_ms - eps:
                result._add(
                    f"tasks {prev.task!r} and {cur.task!r} overlap "
                    f"([{prev.start_ms}, {prev.end_ms}) vs "
                    f"[{cur.start_ms}, {cur.end_ms}))",
                    op=cur.task,
                    address=f"resource:{res}",
                )

    # 4. makespan claim (aborted work and retries count)
    actual_total = max(
        (
            *(s.end_ms for s in spans.values()),
            *(f.at_ms for f in timeline.failures),
            *(a.end_ms for a in timeline.attempts),
        ),
        default=0.0,
    )
    if abs(timeline.total_ms - actual_total) > eps:
        result._add(
            f"claimed makespan {timeline.total_ms} != latest span end "
            f"{actual_total}"
        )
    return result
